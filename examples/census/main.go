// Census analytics: the paper's motivating scenario (§1) on the simulated
// IPUMS census stand-in.
//
// A statistics office collects demographic records under ε-LDP and answers
// analyst queries mixing range constraints on numerical attributes (age,
// income, hours worked) with point/set constraints on categorical ones
// (education, sex, marital status) — e.g. the paper's example
//
//	SELECT COUNT(*) FROM T
//	WHERE Age BETWEEN 30 AND 60
//	  AND Education IN ('Doctorate','Masters')
//	  AND Income <= 80k
//
// The example compares the OUG and OHG strategies against the exact
// answers across a small analyst workload.
//
// Run with: go run ./examples/census
package main

import (
	"fmt"
	"log"
	"math"

	"felip/internal/core"
	"felip/internal/dataset"
	"felip/internal/domain"
	"felip/internal/query"
)

func main() {
	// Census-like schema. Domains are the encoded bins: age in years,
	// income in 2k$ buckets, hours per week; education/marital/sex encoded
	// categoricals.
	schema := domain.MustSchema(
		domain.Attribute{Name: "age", Kind: domain.Numerical, Size: 96},
		domain.Attribute{Name: "income", Kind: domain.Numerical, Size: 128},
		domain.Attribute{Name: "hours", Kind: domain.Numerical, Size: 80},
		domain.Attribute{Name: "education", Kind: domain.Categorical, Size: 8},
		domain.Attribute{Name: "sex", Kind: domain.Categorical, Size: 2},
		domain.Attribute{Name: "marital", Kind: domain.Categorical, Size: 5},
	)
	const n = 300_000
	users := dataset.NewIPUMSSim().Generate(schema, n, 2024)

	age, _ := schema.Index("age")
	income, _ := schema.Index("income")
	hours, _ := schema.Index("hours")
	edu, _ := schema.Index("education")
	sex, _ := schema.Index("sex")

	workload := []struct {
		name string
		q    query.Query
	}{
		{"paper §1 example (age 30-60, postgrad, income ≤ 80k)", query.Query{Preds: []query.Predicate{
			query.NewRange(age, 30, 60),
			query.NewIn(edu, 0, 1), // the two most common post-secondary codes
			query.NewRange(income, 0, 40),
		}}},
		{"prime-age women", query.Query{Preds: []query.Predicate{
			query.NewRange(age, 25, 54),
			query.NewPoint(sex, 1),
		}}},
		{"overtime earners", query.Query{Preds: []query.Predicate{
			query.NewRange(hours, 45, 79),
			query.NewRange(income, 48, 127),
		}}},
		{"young graduates working full time", query.Query{Preds: []query.Predicate{
			query.NewRange(age, 22, 35),
			query.NewIn(edu, 0, 1, 2),
			query.NewRange(hours, 35, 45),
		}}},
	}

	cols := make([][]uint16, schema.Len())
	for i := range cols {
		cols[i] = users.Col(i)
	}

	fmt.Printf("census example: n=%d users, ε=1.0\n", n)
	fmt.Printf("%-52s %10s %10s %10s\n", "query", "exact", "OUG", "OHG")

	aggs := map[string]*core.Aggregator{}
	for name, strat := range map[string]core.Strategy{"OUG": core.OUG, "OHG": core.OHG} {
		agg, err := core.Collect(users, core.Options{Strategy: strat, Epsilon: 1.0, Seed: 99})
		if err != nil {
			log.Fatal(err)
		}
		aggs[name] = agg
	}

	var maeOUG, maeOHG float64
	for _, item := range workload {
		truth := query.Evaluate(item.q, cols)
		oug, err := aggs["OUG"].Answer(item.q)
		if err != nil {
			log.Fatal(err)
		}
		ohg, err := aggs["OHG"].Answer(item.q)
		if err != nil {
			log.Fatal(err)
		}
		maeOUG += math.Abs(oug - truth)
		maeOHG += math.Abs(ohg - truth)
		fmt.Printf("%-52s %10.4f %10.4f %10.4f\n", item.name, truth, oug, ohg)
	}
	fmt.Printf("\nworkload MAE: OUG=%.4f  OHG=%.4f\n",
		maeOUG/float64(len(workload)), maeOHG/float64(len(workload)))
	fmt.Println("\nOn skewed census-like data the hybrid strategy's auxiliary 1-D")
	fmt.Println("grids usually refine the range answers (paper §6.2).")
}
