// Loan-risk slicing: the Lending-Club-style scenario on the simulated loan
// dataset, showcasing the adaptive frequency oracle (paper §5.3).
//
// A lender collects loan applications under ε-LDP and estimates how the
// portfolio splits across rate/amount/grade slices. The example prints the
// grid plan FELIP chose — small grids get GRR, large ones OLH — and shows
// how accuracy responds to the privacy budget.
//
// Run with: go run ./examples/loans
package main

import (
	"fmt"
	"log"
	"math"

	"felip/internal/core"
	"felip/internal/dataset"
	"felip/internal/domain"
	"felip/internal/fo"
	"felip/internal/query"
)

func main() {
	schema := domain.MustSchema(
		domain.Attribute{Name: "amount", Kind: domain.Numerical, Size: 100}, // $500 buckets
		domain.Attribute{Name: "rate", Kind: domain.Numerical, Size: 64},    // 0.5% buckets
		domain.Attribute{Name: "income", Kind: domain.Numerical, Size: 128},
		domain.Attribute{Name: "grade", Kind: domain.Categorical, Size: 7}, // A..G
		domain.Attribute{Name: "term", Kind: domain.Categorical, Size: 2},  // 36/60 months
	)
	const n = 250_000
	loans := dataset.NewLoanSim().Generate(schema, n, 777)

	amount, _ := schema.Index("amount")
	rate, _ := schema.Index("rate")
	grade, _ := schema.Index("grade")
	term, _ := schema.Index("term")

	workload := []struct {
		name string
		q    query.Query
	}{
		{"high-rate long-term loans", query.Query{Preds: []query.Predicate{
			query.NewRange(rate, 40, 63),
			query.NewPoint(term, 1),
		}}},
		{"prime-grade big tickets", query.Query{Preds: []query.Predicate{
			query.NewIn(grade, 0, 1),
			query.NewRange(amount, 60, 99),
		}}},
		{"risky slice (grade E-G, rate > 20%)", query.Query{Preds: []query.Predicate{
			query.NewIn(grade, 4, 5, 6),
			query.NewRange(rate, 40, 63),
		}}},
	}

	cols := make([][]uint16, schema.Len())
	for i := range cols {
		cols[i] = loans.Col(i)
	}

	fmt.Printf("loan example: n=%d applications\n\n", n)

	// Show the adaptive frequency oracle at work for ε = 1.
	agg, err := core.Collect(loans, core.Options{Strategy: core.OHG, Epsilon: 1.0, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	grr, olh := 0, 0
	fmt.Println("grid plan at ε=1 (AFO chooses per grid):")
	for _, sp := range agg.Specs() {
		fmt.Printf("  %-18v L=%-5d → %v\n", sp, sp.L(), sp.Proto)
		if sp.Proto == fo.GRR {
			grr++
		} else {
			olh++
		}
	}
	fmt.Printf("AFO picked GRR for %d grids (small cell counts) and OLH for %d (large).\n\n", grr, olh)

	// Accuracy across privacy budgets.
	fmt.Printf("%-40s %10s", "query", "exact")
	budgets := []float64{0.5, 1.0, 2.0}
	for _, eps := range budgets {
		fmt.Printf("   ε=%.1f  ", eps)
	}
	fmt.Println()
	answers := make(map[float64]*core.Aggregator, len(budgets))
	for _, eps := range budgets {
		a, err := core.Collect(loans, core.Options{Strategy: core.OHG, Epsilon: eps, Seed: 5})
		if err != nil {
			log.Fatal(err)
		}
		answers[eps] = a
	}
	for _, item := range workload {
		truth := query.Evaluate(item.q, cols)
		fmt.Printf("%-40s %10.4f", item.name, truth)
		for _, eps := range budgets {
			got, err := answers[eps].Answer(item.q)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("   %7.4f", got)
		}
		fmt.Println()
	}

	var worst float64
	for _, item := range workload {
		truth := query.Evaluate(item.q, cols)
		got, _ := answers[2.0].Answer(item.q)
		if d := math.Abs(got - truth); d > worst {
			worst = d
		}
	}
	fmt.Printf("\nworst absolute error at ε=2: %.4f — utility improves as ε grows (paper Fig 1).\n", worst)
}
