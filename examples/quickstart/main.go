// Quickstart: the minimal FELIP round-trip.
//
// A population of users holds a 4-attribute record each. The aggregator
// plans optimized LDP grids, every user perturbs one report locally with
// ε-LDP, and the aggregator answers a multidimensional counting query from
// the perturbed reports alone.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"

	"felip/internal/core"
	"felip/internal/dataset"
	"felip/internal/query"
)

func main() {
	// 1. A dataset: 2 numerical + 2 categorical attributes, 100k users.
	//    (In a real deployment each user holds their own record; the
	//    Dataset stands in for the population.)
	schema := dataset.MixedSchema(2, 64, 2, 8)
	users := dataset.NewNormal().Generate(schema, 100_000, 1)

	// 2. One collection round under ε-LDP with the OHG strategy.
	agg, err := core.Collect(users, core.Options{
		Strategy: core.OHG,
		Epsilon:  1.0,
		Seed:     7,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Ask a mixed point/range counting query.
	q := query.Query{Preds: []query.Predicate{
		query.NewRange(0, 16, 47), // num0 BETWEEN 16 AND 47
		query.NewIn(2, 0, 1),      // cat0 IN (0, 1)
	}}
	estimate, err := agg.Answer(q)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Compare with the exact (non-private) answer.
	cols := make([][]uint16, schema.Len())
	for i := range cols {
		cols[i] = users.Col(i)
	}
	truth := query.Evaluate(q, cols)

	fmt.Printf("query            : %v\n", q)
	fmt.Printf("private estimate : %.4f\n", estimate)
	fmt.Printf("exact answer     : %.4f\n", truth)
	fmt.Printf("absolute error   : %.4f\n", math.Abs(estimate-truth))
}
