// Selectivity prior: FELIP lets the aggregator exploit knowledge of the
// query workload's selectivity when sizing grids (paper §5, contribution 3;
// §5.8). A wide range query touches many cells and every touched cell
// contributes perturbation noise, so when the aggregator knows the workload
// is broad (here s = 0.9) the optimizer picks coarser grids than the fixed
// s = 0.5 assumption TDG/HDG hard-code — and the accumulated noise drops.
//
// The example answers the same broad workload from two OHG collections, one
// sized with the true selectivity and one with the 0.5 default, averaged
// over several collection rounds to smooth perturbation noise.
//
// Run with: go run ./examples/selectivity
package main

import (
	"fmt"
	"log"

	"felip/internal/core"
	"felip/internal/dataset"
	"felip/internal/metrics"
	"felip/internal/query"
)

func main() {
	const (
		n          = 150_000
		trueSel    = 0.9 // the analyst's queries are broad: 90% of each domain
		numQueries = 30
		rounds     = 3
	)
	schema := dataset.MixedSchema(3, 256, 3, 8)
	users := dataset.NewIPUMSSim().Generate(schema, n, 31)

	qgen, err := query.NewGenerator(schema, trueSel, 63)
	if err != nil {
		log.Fatal(err)
	}
	workload, err := qgen.GenerateMany(numQueries, 2)
	if err != nil {
		log.Fatal(err)
	}
	cols := make([][]uint16, schema.Len())
	for i := range cols {
		cols[i] = users.Col(i)
	}
	truth := make([]float64, len(workload))
	for i, q := range workload {
		truth[i] = query.Evaluate(q, cols)
	}

	run := func(prior float64, seed uint64, report bool) float64 {
		agg, err := core.Collect(users, core.Options{
			Strategy:    core.OHG,
			Epsilon:     1.0,
			Selectivity: prior,
			Seed:        seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		if report {
			for _, sp := range agg.Specs() {
				if sp.Is1D() {
					fmt.Printf("  prior %.1f → 1-D grid over num0 has %d cells\n", prior, sp.L())
					break
				}
			}
		}
		answers := make([]float64, len(workload))
		for i, q := range workload {
			a, err := agg.Answer(q)
			if err != nil {
				log.Fatal(err)
			}
			answers[i] = a
		}
		mae, _ := metrics.MAE(answers, truth)
		return mae
	}

	fmt.Printf("selectivity example: n=%d, ε=1, %d random 2-D queries at s=%.1f, %d rounds\n\n",
		n, numQueries, trueSel, rounds)

	var maePrior, maeFixed float64
	for r := 0; r < rounds; r++ {
		seed := uint64(17 + 1000*r)
		maePrior += run(trueSel, seed, r == 0)
		maeFixed += run(0.5, seed, r == 0)
	}
	maePrior /= rounds
	maeFixed /= rounds

	fmt.Printf("\n%-36s %12s\n", "grid sizing", "workload MAE")
	fmt.Printf("%-36s %12.5f\n", "true selectivity prior (s=0.9)", maePrior)
	fmt.Printf("%-36s %12.5f\n", "fixed 0.5 assumption (TDG/HDG)", maeFixed)

	if maePrior < maeFixed {
		imp := 100 * (maeFixed - maePrior) / maeFixed
		fmt.Printf("\nknowing the workload's selectivity cut MAE by %.0f%%:\n", imp)
		fmt.Println("broad queries sum many cells, so the optimizer trades granularity")
		fmt.Println("for less accumulated perturbation noise.")
	} else {
		fmt.Println("\n(no improvement on this draw — the gap grows with the mismatch")
		fmt.Println("between assumed and true selectivity)")
	}
}
