// Streaming collection: the paper's future-work direction (§7) of answering
// queries over data streams with low-dimensional grids.
//
// Batches of fresh users arrive over time and the underlying population
// drifts (a promotion shifts loan amounts upward halfway through). Each
// batch runs one full ε-LDP FELIP round; the collector retains a window ring
// and answers the same query per window, over the whole horizon, and with
// exponential decay toward the present — showing how decay tracks the drift
// while the plain horizon average lags.
//
// Run with: go run ./examples/stream
package main

import (
	"fmt"
	"log"

	"felip/internal/core"
	"felip/internal/dataset"
	"felip/internal/query"
	"felip/internal/stream"
)

func main() {
	schema := dataset.MixedSchema(2, 64, 1, 4)
	const batchSize = 40_000

	col, err := stream.New(schema, stream.Options{
		Core:       core.Options{Strategy: core.OUG, Epsilon: 1.0, Seed: 9},
		MaxWindows: 8,
	})
	if err != nil {
		log.Fatal(err)
	}

	// "High amount" share: amount (attr 0) in the upper half.
	q := query.Query{Preds: []query.Predicate{
		query.NewRange(0, 32, 63),
		query.NewRange(1, 0, 63), // rate: any
	}}

	fmt.Println("streaming example: 6 batches of 40k users, drift after batch 3")
	fmt.Printf("%-8s %10s %10s %10s %10s\n", "window", "exact", "window", "horizon", "decayed")

	for w := 0; w < 6; w++ {
		// The population drifts: from batch 3 on, amounts shift upward.
		gen := dataset.NewNormal()
		batch := gen.Generate(schema, batchSize, uint64(100+w))
		if w >= 3 {
			// Shift attr 0 upward by a quarter domain to simulate the drift.
			shifted := dataset.New(schema, batchSize)
			for row := 0; row < batchSize; row++ {
				shifted.SetValue(row, 0, batch.Value(row, 0)+16)
				shifted.SetValue(row, 1, batch.Value(row, 1))
				shifted.SetValue(row, 2, batch.Value(row, 2))
			}
			batch = shifted
		}
		if err := col.Ingest(batch); err != nil {
			log.Fatal(err)
		}

		cols := make([][]uint16, schema.Len())
		for i := range cols {
			cols[i] = batch.Col(i)
		}
		truth := query.Evaluate(q, cols)
		latest, err := col.AnswerLatest(q)
		if err != nil {
			log.Fatal(err)
		}
		horizon, err := col.AnswerHorizon(q)
		if err != nil {
			log.Fatal(err)
		}
		decayed, err := col.AnswerDecayed(q, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8d %10.4f %10.4f %10.4f %10.4f\n", w, truth, latest, horizon, decayed)
	}

	fmt.Println("\nafter the drift the decayed estimate tracks the new regime while")
	fmt.Println("the plain horizon average still mixes in the old one.")
}
