// Package felip is a production-quality Go implementation of FELIP
// ("FELIP: A local Differentially Private approach to frequency estimation
// on multidimensional datasets", Costa Filho & Machado, EDBT 2023):
// answering multidimensional counting queries with point and range
// constraints over user data collected under ε-local differential privacy.
//
// The implementation lives under internal/:
//
//   - internal/core — the FELIP engine (OUG/OHG strategies, planning,
//     collection, post-processing, query answering), both as the one-call
//     simulated round (Collect) and as the deployment-grade split between
//     device-side Client and server-side Collector, with snapshot
//     persistence.
//   - internal/fo, grid, gridopt, postproc, estimate, query, dataset,
//     domain, metrics — the substrates: frequency oracles, variable-width
//     grids, error-model optimizers, Norm-Sub/consistency, response
//     matrices and λ-D IPF, the query model, and synthetic data.
//   - internal/baseline/hio and internal/baseline/hdg — the paper's
//     comparison systems, reimplemented from their original publications.
//   - internal/adaptive, internal/stream, internal/privacy — the paper's
//     future-work directions: two-phase equi-mass binning, windowed streams,
//     and multi-round budget accounting.
//   - internal/wire and internal/httpapi — the JSON wire protocol and HTTP
//     aggregator service with its Go client.
//
// The root package carries the repository-wide benchmark suite
// (bench_test.go — one benchmark per paper figure) and the cross-module
// integration tests (integration_test.go). See README.md for a tour,
// DESIGN.md for the architecture and per-experiment index, and
// EXPERIMENTS.md for measured-vs-paper results.
package felip
