GO ?= go

.PHONY: build test check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The full gate: vet plus the tier-1 suite under the race detector.
check:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .
