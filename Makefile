GO ?= go

.PHONY: build test check bench bench-fo bench-query bench-cluster bench-restart bench-ingest bench-modes bench-modes-smoke bench-longitudinal bench-longitudinal-smoke bench-megadomain bench-megadomain-smoke bench-smoke chaos-cluster chaos-archive chaos-failover chaos-idle chaos-longitudinal

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The full gate: vet plus the tier-1 suite under the race detector.
check:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...

# Aggregation-kernel benchmark: fold kernel vs sequential baseline, plus an
# end-to-end round, written to BENCH_PR2.json.
bench:
	$(GO) run ./cmd/felipbench -kernel -out BENCH_PR2.json

# Concurrent read-path benchmark: serve.Engine vs the legacy single-mutex
# Aggregator.Answer, written to BENCH_PR3.json.
bench-query:
	$(GO) run ./cmd/felipbench -query -qout BENCH_PR3.json

# Shard-scaling benchmark: ingest throughput and time-to-engine-ready for
# 1/2/4 in-process shards, written to BENCH_PR4.json.
bench-cluster:
	$(GO) run ./cmd/felipbench -cluster -cout BENCH_PR4.json

# Cold-restart benchmark: time-to-serving for WAL replay vs archive snapshot
# restore over the same finalized round, written to BENCH_PR5.json.
bench-restart:
	$(GO) run ./cmd/felipbench -restart -rout BENCH_PR5.json

# Batched binary ingest benchmark: frame path vs single-report JSON on one
# durable shard (plus in-process allocs/report), written to BENCH_PR7.json.
bench-ingest:
	$(GO) run ./cmd/felipbench -ingest -iout BENCH_PR7.json

# Reporting-mode shootout: FELIP vs SPL vs RS+FD accuracy (MSE against true
# frequencies) and wire bytes across ε and dimensionality, written to
# BENCH_PR8.json.
bench-modes:
	$(GO) run ./cmd/felipbench -modes -mout BENCH_PR8.json

# bench-modes at CI-smoke sizes, with a sanity gate: the shootout must cover
# all three modes across at least two domain sizes, SPL and RS+FD must pay the
# m-fold wire cost, and FELIP must be at least as accurate as SPL at the
# highest-ε cells.
bench-modes-smoke:
	$(GO) run ./cmd/felipbench -modes -smoke -mout /tmp/BENCH_smoke_modes.json
	@python3 -c "import json; r = json.load(open('/tmp/BENCH_smoke_modes.json')); \
	cells = r['cells']; modes = {c['mode'] for c in cells}; \
	assert modes == {'FELIP', 'SPL', 'RS+FD'}, f'modes covered: {modes}'; \
	assert len({c['epsilon'] for c in cells}) >= 2 and len({c['attrs'] for c in cells}) >= 2, 'sweep too small'; \
	assert len({c['domain'] for c in cells}) >= 2, 'domain sweep missing'; \
	felip = {(c['epsilon'], c['domain'], c['attrs']): c for c in cells if c['mode'] == 'FELIP'}; \
	spl = {(c['epsilon'], c['domain'], c['attrs']): c for c in cells if c['mode'] == 'SPL'}; \
	assert all(s['wire_bytes'] > f['wire_bytes'] for (k, s), f in ((i, felip[i[0]]) for i in spl.items())), 'SPL should pay more wire bytes than FELIP'; \
	top = max(c['epsilon'] for c in cells); \
	assert all(felip[k]['mse'] <= spl[k]['mse'] * 1.05 for k in felip if k[0] == top), 'FELIP lost to SPL at the top epsilon'; \
	print(f'bench-modes gate: {len(cells)} cells, 3 modes, {len({c[\"domain\"] for c in cells})} domains, FELIP accuracy holds at eps={top}')"

# Longitudinal benchmark: memoized two-stage reporting vs the fresh-ε baseline
# across rounds — per-round MSE and cumulative privacy spend, written to
# BENCH_PR9.json.
bench-longitudinal:
	$(GO) run ./cmd/felipbench -longitudinal -lout BENCH_PR9.json

# bench-longitudinal at CI-smoke sizes, with the PR's acceptance gate: the
# memoized arm's mean per-round MSE must stay within 2x of the fresh-ε
# baseline at equal per-round budget, and the cumulative spend must stay fixed
# at ε_perm + ε_1 in every round while the baseline grows r·ε_1.
bench-longitudinal-smoke:
	$(GO) run ./cmd/felipbench -longitudinal -smoke -lout /tmp/BENCH_smoke_long.json
	@python3 -c "import json; r = json.load(open('/tmp/BENCH_smoke_long.json')); \
	results = r['results']; assert results, 'no budget points'; \
	assert all(p['mse_ratio'] <= 2 for p in results), f'longitudinal MSE beyond 2x of fresh: {[p[\"mse_ratio\"] for p in results]}'; \
	assert all(rd['eps_cum_longitudinal'] == p['eps_perm'] + p['eps1'] for p in results for rd in p['rounds']), 'cumulative spend drifted'; \
	assert all(rd['eps_cum_fresh'] == rd['round'] * p['eps1'] for p in results for rd in p['rounds']), 'fresh baseline spend wrong'; \
	assert all(p['eps_cum_final'] < p['eps_fresh_final'] for p in results), 'memoization did not beat fresh spend by the last round'; \
	print(f'bench-longitudinal gate: {len(results)} budget points, mse ratios {[round(p[\"mse_ratio\"], 2) for p in results]}, cumulative spend fixed')"

# Mega-domain benchmark: every frequency oracle over 2^10..2^17 categorical
# domains — estimation MSE × bytes on the wire — written to BENCH_PR10.json.
bench-megadomain:
	$(GO) run ./cmd/felipbench -megadomain -dout BENCH_PR10.json

# bench-megadomain at CI-smoke sizes, with the PR's acceptance gates: HR must
# cost at most 16 bytes/user on the wire at L=2^17 (against OUE's O(L)
# bitset records) while keeping MSE within 2x of OLH at equal ε, and the AFO
# must pick HR on mega-domains only.
bench-megadomain-smoke:
	$(GO) run ./cmd/felipbench -megadomain -smoke -dout /tmp/BENCH_smoke_megadomain.json
	@python3 -c "import json; r = json.load(open('/tmp/BENCH_smoke_megadomain.json')); \
	cells = r['cells']; assert cells, 'no cells'; \
	protos = {c['proto'] for c in cells}; \
	assert protos == {'GRR', 'OLH', 'OUE', 'HR'}, f'oracles covered: {protos}'; \
	assert len({c['epsilon'] for c in cells}) >= 2 and len({c['domain'] for c in cells}) >= 3, 'sweep too small'; \
	top = max(c['domain'] for c in cells); assert top >= 1 << 17, f'largest domain {top} < 2^17'; \
	hr = {(c['domain'], c['epsilon']): c for c in cells if c['proto'] == 'HR'}; \
	olh = {(c['domain'], c['epsilon']): c for c in cells if c['proto'] == 'OLH'}; \
	oue = {(c['domain'], c['epsilon']): c for c in cells if c['proto'] == 'OUE'}; \
	assert all(c['bytes_per_user'] <= 16 for (d, e), c in hr.items() if d == top), \
	f'HR bytes/user at L=2^17: {[c[\"bytes_per_user\"] for (d, e), c in hr.items() if d == top]}'; \
	assert all(c['mse'] <= olh[k]['mse'] * 2 for k, c in hr.items()), \
	f'HR MSE beyond 2x OLH: {[(k, c[\"mse\"] / olh[k][\"mse\"]) for k, c in hr.items()]}'; \
	assert all(c['bytes_per_user'] >= (d / 8) for (d, e), c in oue.items()), 'OUE wire cost not O(L)'; \
	assert all(c['afo_choice'] == ('HR' if d >= 1 << 14 else 'OLH') for (d, e), c in hr.items()), \
	f'AFO choices: {[(d, c[\"afo_choice\"]) for (d, e), c in hr.items()]}'; \
	worst = max(c['mse'] / olh[k]['mse'] for k, c in hr.items()); \
	b = max(c['bytes_per_user'] for (d, e), c in hr.items() if d == top); \
	print(f'bench-megadomain gate: {len(cells)} cells, HR {b:.2f} bytes/user at L=2^17, worst HR/OLH mse ratio {worst:.2f}x')"

# All benchmarks at CI-smoke sizes (seconds, not minutes); reports land in
# /tmp so a smoke run never clobbers the checked-in numbers.
bench-smoke:
	$(GO) run ./cmd/felipbench -kernel -query -cluster -restart -ingest -smoke -reps 1 \
		-out /tmp/BENCH_smoke_kernel.json -qout /tmp/BENCH_smoke_query.json \
		-cout /tmp/BENCH_smoke_cluster.json -rout /tmp/BENCH_smoke_restart.json \
		-iout /tmp/BENCH_smoke_ingest.json
	@python3 -c "import json; r = json.load(open('/tmp/BENCH_smoke_ingest.json')); \
	assert r['speedup'] >= 5, f\"batch ingest speedup {r['speedup']:.1f}x < 5x\"; \
	assert r['allocs_per_report'] <= 4, f\"allocs/report regressed to {r['allocs_per_report']:.2f}\"; \
	assert r['bit_identical'], 'ingest paths diverged'; \
	print(f\"bench-ingest gate: {r['speedup']:.1f}x, {r['allocs_per_report']:.2f} allocs/report, bit-identical\")"

# Cluster chaos drill: kill a durable shard mid-round, restart it from its
# WAL, truncate the coordinator's state pulls, and require bit-identical
# answers — under the race detector.
chaos-cluster:
	$(GO) test -race -run 'TestClusterChaos|TestShardStateRepullAfterCrash' -v ./internal/cluster

# Archive chaos drill: corrupted and torn snapshots skipped on open, a crash
# in the window between snapshot fsync and WAL truncation recovered without
# double-counting, and a coordinator kill -9 survived with bit-identical
# current and historical answers — under the race detector.
chaos-archive:
	$(GO) test -race -v \
		-run 'TestOpenSkipsCorruptSnapshots|TestEnvelopeRejectsDamage|TestCrashBetweenSnapshotAndTruncate|TestArchiveRestartSnapshotPlusTail|TestCoordinatorArchiveRestart' \
		./internal/archive ./internal/httpapi ./internal/cluster

# Failover chaos drill: kill a primary mid-round with its WAL shipped to a
# follower, promote the follower after strict CRC-chain verification, reroute
# devices via a membership refresh, and require bit-identical answers and a
# bit-identical replayed shard state — under the race detector.
chaos-failover:
	$(GO) test -race -v \
		-run 'TestClusterFailoverBitIdentical|TestPromotedFollowerStateBitIdentical|TestPromotionRefusedOnCorruptSegment|TestMembershipHeartbeatFlappingAroundTimeout|TestShardJoinsWhileRoundIsSealing' \
		./internal/cluster

# Idle-round + batch-ingest chaos drill: restart and promotion replay chains
# crossing a zero-report round, truncated-segment refusal, and batch frames
# surviving mid-write crashes and seal straddling exactly-once — under the
# race detector.
chaos-idle:
	$(GO) test -race -v \
		-run 'TestRestartChainSpansIdleRound|TestEmptySealReplayRepullIdentical|TestPromotionChainSpansIdleRound|TestFollowerRefusesTruncatedArchivedRound|TestBatch' \
		./internal/httpapi ./internal/cluster

# Longitudinal chaos drill: kill a device (and, at the HTTP layer, the server
# and its memo-store handle) mid-sequence, restart both, and require the
# memoized permanent value to survive bit-identically with no fresh ε_perm
# spend — plus WAL cross-replay refusal in both directions — under the race
# detector.
chaos-longitudinal:
	$(GO) test -race -v \
		-run 'TestChaosDeviceRestartKeepsMemo|TestLongitudinalChaosRestartMidSequenceHTTP|TestLongitudinalWALCrossReplayRefused' \
		./internal/longitudinal ./internal/httpapi

# Raw go-bench microbenchmarks for the frequency-oracle kernel.
bench-fo:
	$(GO) test -bench=. -benchmem -run=^$$ ./internal/fo/
