GO ?= go

.PHONY: build test check bench bench-fo

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The full gate: vet plus the tier-1 suite under the race detector.
check:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...

# Aggregation-kernel benchmark: fold kernel vs sequential baseline, plus an
# end-to-end round, written to BENCH_PR2.json.
bench:
	$(GO) run ./cmd/felipbench -kernel -out BENCH_PR2.json

# Raw go-bench microbenchmarks for the frequency-oracle kernel.
bench-fo:
	$(GO) test -bench=. -benchmem -run=^$$ ./internal/fo/
