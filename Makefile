GO ?= go

.PHONY: build test check bench bench-fo bench-query bench-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The full gate: vet plus the tier-1 suite under the race detector.
check:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...

# Aggregation-kernel benchmark: fold kernel vs sequential baseline, plus an
# end-to-end round, written to BENCH_PR2.json.
bench:
	$(GO) run ./cmd/felipbench -kernel -out BENCH_PR2.json

# Concurrent read-path benchmark: serve.Engine vs the legacy single-mutex
# Aggregator.Answer, written to BENCH_PR3.json.
bench-query:
	$(GO) run ./cmd/felipbench -query -qout BENCH_PR3.json

# Both benchmarks at CI-smoke sizes (seconds, not minutes); reports land in
# /tmp so a smoke run never clobbers the checked-in numbers.
bench-smoke:
	$(GO) run ./cmd/felipbench -kernel -query -smoke -reps 1 \
		-out /tmp/BENCH_smoke_kernel.json -qout /tmp/BENCH_smoke_query.json

# Raw go-bench microbenchmarks for the frequency-oracle kernel.
bench-fo:
	$(GO) test -bench=. -benchmem -run=^$$ ./internal/fo/
