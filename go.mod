module felip

go 1.22
