package cluster

import (
	"fmt"
	"time"

	"felip/internal/wire"
)

// follower is a primary's attached replication target as the membership
// tracks it: its address, its liveness, and the replication positions its
// heartbeats carry (its own replayed position plus the primary position it
// last observed — the gap between them is the lag the status page reports).
type follower struct {
	base         string
	lastBeat     time.Time
	round        int
	pos          int64
	primaryRound int
	primaryPos   int64
}

// member is one logical shard. The name is the stable identity rendezvous
// routing hashes and devices' idempotency keys stick to; the base is the
// current primary's address and is what failover replaces.
type member struct {
	name string
	base string
	// static members were seeded from Config.Shards: a fixed fleet that
	// predates heartbeating, exempt from liveness eviction.
	static bool
	// joinedRound is the first collection round this shard's reports count
	// toward: a shard that registers while a round is sealing joins the next
	// round, so the in-flight seal's pull set is never moved under it.
	joinedRound int
	lastBeat    time.Time
	dead        bool
	round       int
	pos         int64
	follower    *follower
}

// Membership is the coordinator's cluster-membership state machine: logical
// shards keyed by name, each backed by a replaceable primary address and an
// optional follower, versioned by an epoch that bumps on every routable
// change (join, address replacement, promotion). Clients cache the routing
// map and use the epoch to notice it went stale. All methods are
// synchronized by the Coordinator's mu — Membership itself holds no lock so
// the coordinator can make registration decisions and round state agree
// under one critical section.
type Membership struct {
	now     func() time.Time
	timeout time.Duration
	epoch   int64
	// order holds member names in join order: the stable indexing the
	// per-shard gauges and status roll-ups use.
	order   []string
	members map[string]*member
}

// newMembership builds an empty membership. timeout <= 0 disables liveness
// eviction (heartbeats are still recorded).
func newMembership(now func() time.Time, timeout time.Duration) *Membership {
	if now == nil {
		now = time.Now
	}
	return &Membership{now: now, timeout: timeout, members: make(map[string]*member)}
}

// seed installs the fixed fleet from Config.Shards as static members named
// shard0..shardN-1 — the names a legacy cluster.Client derives for itself, so
// static and dynamic routing agree.
func (ms *Membership) seed(bases []string, round int) {
	for i, base := range bases {
		name := StaticShardName(i)
		ms.order = append(ms.order, name)
		ms.members[name] = &member{name: name, base: base, static: true, joinedRound: round}
	}
	if len(bases) > 0 {
		ms.epoch++
	}
}

// StaticShardName names the i-th statically configured shard. Exported so
// clients seeded from the same base list derive the same routing domain the
// coordinator publishes.
func StaticShardName(i int) string { return fmt.Sprintf("shard%d", i) }

// register applies one registration. joinRound is the first round a new
// primary's reports count toward (the coordinator computes it from its round
// state). Idempotent: re-registering an identical (name, base, role) answers
// the current epoch without bumping it, so a node retrying a lost
// acknowledgment is harmless. A primary re-registering under its name with a
// NEW base is accepted only while the old address is dead — that is a
// replacement restart, and bumps the epoch so clients re-resolve.
func (ms *Membership) register(msg wire.RegisterMessage, joinRound int) (int64, int, error) {
	if err := msg.Validate(); err != nil {
		return 0, 0, err
	}
	now := ms.now()
	if msg.Role == wire.RoleFollower {
		target, ok := ms.members[msg.Follows]
		if !ok {
			return 0, 0, fmt.Errorf("cluster: follower %q follows unknown shard %q", msg.Name, msg.Follows)
		}
		if target.follower != nil && target.follower.base != msg.Base {
			return 0, 0, fmt.Errorf("cluster: shard %q already has follower at %s", msg.Follows, target.follower.base)
		}
		if target.follower == nil {
			target.follower = &follower{base: msg.Base}
			ms.epoch++
		}
		target.follower.lastBeat = now
		return ms.epoch, target.joinedRound, nil
	}

	if m, ok := ms.members[msg.Name]; ok {
		if m.base == msg.Base {
			// A retried or restarted registration of the same node: refresh
			// liveness, keep the epoch.
			m.lastBeat = now
			m.dead = false
			return ms.epoch, m.joinedRound, nil
		}
		if !m.dead {
			return 0, 0, fmt.Errorf("cluster: shard %q already registered at %s (alive); refusing %s",
				msg.Name, m.base, msg.Base)
		}
		// Replacement restart at a new address for a dead primary.
		m.base = msg.Base
		m.dead = false
		m.lastBeat = now
		ms.epoch++
		return ms.epoch, m.joinedRound, nil
	}
	m := &member{name: msg.Name, base: msg.Base, joinedRound: joinRound, lastBeat: now}
	ms.members[msg.Name] = m
	ms.order = append(ms.order, msg.Name)
	ms.epoch++
	return ms.epoch, m.joinedRound, nil
}

// heartbeat records a liveness report. A beat from a primary the membership
// believes dead revives it as long as no failover replaced its address — a
// shard flapping around the timeout recovers by itself, but a beat from a
// superseded primary is refused so a partitioned old primary learns it was
// failed over instead of silently split-braining the shard.
func (ms *Membership) heartbeat(msg wire.HeartbeatMessage) (int64, error) {
	if err := msg.Validate(); err != nil {
		return 0, err
	}
	now := ms.now()
	if msg.Role == wire.RoleFollower {
		for _, m := range ms.members {
			if f := m.follower; f != nil && f.base == msg.Base {
				f.lastBeat = now
				f.round, f.pos = msg.Round, msg.WALPos
				f.primaryRound, f.primaryPos = msg.PrimaryRound, msg.PrimaryPos
				return ms.epoch, nil
			}
		}
		return 0, fmt.Errorf("cluster: heartbeat from unregistered follower %q (%s); register first", msg.Name, msg.Base)
	}
	m, ok := ms.members[msg.Name]
	if !ok {
		return 0, fmt.Errorf("cluster: heartbeat from unregistered shard %q; register first", msg.Name)
	}
	if m.base != msg.Base {
		return 0, fmt.Errorf("cluster: shard %q is served by %s now (heartbeat from superseded %s)",
			msg.Name, m.base, msg.Base)
	}
	m.lastBeat = now
	m.dead = false
	m.round, m.pos = msg.Round, msg.WALPos
	return ms.epoch, nil
}

// lapsed marks every dynamic primary whose heartbeat is older than the
// timeout dead and returns the candidates eligible for promotion: lapsed
// members with a follower whose own heartbeat is still fresh. Members that
// lapse with no live follower stay in the routing set, dead — rerouting
// their keys would silently reassign devices whose reports the dead shard
// already acknowledged, so the honest behavior is to keep failing their
// traffic until an operator (or a replacement registration) intervenes.
func (ms *Membership) lapsed() (candidates []promotion) {
	if ms.timeout <= 0 {
		return nil
	}
	now := ms.now()
	for _, name := range ms.order {
		m := ms.members[name]
		if m.static || now.Sub(m.lastBeat) <= ms.timeout {
			continue
		}
		m.dead = true
		if f := m.follower; f != nil && now.Sub(f.lastBeat) <= ms.timeout {
			candidates = append(candidates, promotion{name: name, followerBase: f.base})
		}
	}
	return candidates
}

// promotion names a failover the liveness check decided on: the logical
// shard and the follower address to promote.
type promotion struct {
	name         string
	followerBase string
}

// promote applies a completed failover: the follower's address becomes the
// logical shard's primary address, the follower slot empties, and the epoch
// bumps so routing clients re-resolve the name. Returns false if the
// membership changed under the in-flight promotion (the old primary revived,
// or another promotion won).
func (ms *Membership) promote(name, followerBase string) bool {
	m, ok := ms.members[name]
	if !ok || m.follower == nil || m.follower.base != followerBase || !m.dead {
		return false
	}
	m.base = followerBase
	m.dead = false
	m.lastBeat = ms.now()
	m.round, m.pos = m.follower.round, m.follower.pos
	m.follower = nil
	ms.epoch++
	return true
}

// pullSet returns the members whose partial states a finalize of the given
// round must merge: every primary that joined by that round, in join order.
// Dead members are included — their state is part of the round and a pull
// that fails reports the loss instead of silently under-counting.
func (ms *Membership) pullSet(round int) []*member {
	var set []*member
	for _, name := range ms.order {
		if m := ms.members[name]; m.joinedRound <= round {
			set = append(set, m)
		}
	}
	return set
}

// lagOf computes a follower's replication lag: whole segments (rounds)
// behind, plus bytes behind within the segment when caught up on rounds.
func lagOf(f *follower) (segments int, bytes int64) {
	if f == nil {
		return 0, 0
	}
	segments = f.primaryRound - f.round
	if segments < 0 {
		segments = 0
	}
	if segments == 0 {
		if bytes = f.primaryPos - f.pos; bytes < 0 {
			bytes = 0
		}
	}
	return segments, bytes
}

// snapshot renders the membership for the wire.
func (ms *Membership) snapshot(round int) wire.MembershipMessage {
	msg := wire.MembershipMessage{Epoch: ms.epoch, Round: round}
	for _, name := range ms.order {
		m := ms.members[name]
		info := wire.MemberInfo{
			Name:        m.name,
			Base:        m.base,
			Alive:       !m.dead,
			Static:      m.static,
			JoinedRound: m.joinedRound,
		}
		if m.follower != nil {
			segs, bytes := lagOf(m.follower)
			info.Follower = &wire.FollowerInfo{Base: m.follower.base, LagSegments: segs, LagBytes: bytes}
		}
		msg.Members = append(msg.Members, info)
	}
	return msg
}
