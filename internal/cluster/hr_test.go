package cluster

import (
	"context"
	"net/http/httptest"
	"testing"

	"felip/internal/core"
	"felip/internal/dataset"
	"felip/internal/fo"
	"felip/internal/httpapi"
)

// TestClusterHRMergeBitIdentical: the HR oracle's partial states ride the
// coordinator's checksummed state pull exactly like the other protocols'.
// A 3-shard cluster folding HR reports shard-locally and merging at finalize
// must answer every query bit-for-bit identically to one server that saw the
// same report multiset — possible because the aggregator's plus/minus counts
// are exact integers and the FWHT runs in integer arithmetic, so merge order
// cannot perturb a single bit.
func TestClusterHRMergeBitIdentical(t *testing.T) {
	const (
		k       = 3
		n       = 1800
		devSeed = 907
	)
	schema := dataset.MixedSchema(2, 32, 2, 4)
	ds := dataset.NewNormal().Generate(schema, n, 903)
	hrProto := fo.HR
	opts := core.Options{Strategy: core.OHG, Epsilon: 1.1, Seed: 901, ForceProtocol: &hrProto}
	ctx := context.Background()

	single := func() []float64 {
		srv, err := httpapi.NewServer(schema, n, opts)
		if err != nil {
			t.Fatal(err)
		}
		srv.SetLogger(t.Logf)
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		cl := httpapi.Dial(ts.URL, ts.Client())
		plan, err := cl.Plan(ctx)
		if err != nil {
			t.Fatal(err)
		}
		specs, err := plan.Specs()
		if err != nil {
			t.Fatal(err)
		}
		for _, spec := range specs {
			if spec.Proto != fo.HR {
				t.Fatalf("forced-HR plan contains %v grid", spec.Proto)
			}
		}
		for row := 0; row < n; row++ {
			id, rep := deviceReport(t, specs, opts.Epsilon, ds, row, devSeed)
			if _, err := cl.ReportWithID(ctx, id, rep); err != nil {
				t.Fatalf("single row %d: %v", row, err)
			}
		}
		if count, err := cl.Finalize(ctx); err != nil || count != n {
			t.Fatalf("single finalize: %d, %v", count, err)
		}
		ests := make([]float64, len(clusterQueries))
		for i, where := range clusterQueries {
			resp, err := cl.Query(ctx, where)
			if err != nil {
				t.Fatal(err)
			}
			ests[i] = resp.Estimate
		}
		return ests
	}()

	h := newHarness(t, k, n, opts, nil, fastRetry(4))
	plan, err := h.client.Plan(ctx)
	if err != nil {
		t.Fatal(err)
	}
	specs, err := plan.Specs()
	if err != nil {
		t.Fatal(err)
	}
	for row := 0; row < n; row++ {
		id, rep := deviceReport(t, specs, opts.Epsilon, ds, row, devSeed)
		if _, err := h.client.ReportWithID(ctx, id, rep); err != nil {
			t.Fatalf("cluster row %d: %v", row, err)
		}
	}
	count, err := h.client.Finalize(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("cluster finalized %d reports, want %d", count, n)
	}
	for i, where := range clusterQueries {
		resp, err := h.client.Query(ctx, where)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Estimate != single[i] {
			t.Fatalf("query %q: cluster %v != single %v (HR merge not bit-identical)",
				where, resp.Estimate, single[i])
		}
	}
}
