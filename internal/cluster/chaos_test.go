package cluster

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"felip/internal/core"
	"felip/internal/dataset"
	"felip/internal/faultinject"
	"felip/internal/httpapi"
	"felip/internal/reportlog"
)

// TestClusterChaosShardCrashBitIdentical is the cluster acceptance drill: a
// 3-shard round in which one durable shard is killed mid-round and restarted
// from its write-ahead log, devices resubmit the reports whose
// acknowledgments the crash swallowed, and the coordinator's state pulls are
// cut off mid-body twice. The finalized cluster must answer every query
// bit-for-bit identically to a fault-free single server that saw the same
// report multiset — faults may cost retries, never answers.
func TestClusterChaosShardCrashBitIdentical(t *testing.T) {
	const (
		k       = 3
		n       = 2400
		crashed = 1 // the shard that dies
		devSeed = 361
	)
	schema := dataset.MixedSchema(2, 32, 2, 4)
	ds := dataset.NewNormal().Generate(schema, n, 363)
	opts := core.Options{Strategy: core.OHG, Epsilon: 1.4, Seed: 365}
	ctx := context.Background()

	// ---- Fault-free single-node reference.
	refSrv, err := httpapi.NewServer(schema, n, opts)
	if err != nil {
		t.Fatal(err)
	}
	refSrv.SetLogger(t.Logf)
	refTS := httptest.NewServer(refSrv.Handler())
	defer refTS.Close()
	refCl := httpapi.Dial(refTS.URL, refTS.Client())
	plan, err := refCl.Plan(ctx)
	if err != nil {
		t.Fatal(err)
	}
	specs, err := plan.Specs()
	if err != nil {
		t.Fatal(err)
	}
	for row := 0; row < n; row++ {
		id, rep := deviceReport(t, specs, opts.Epsilon, ds, row, devSeed)
		if _, err := refCl.ReportWithID(ctx, id, rep); err != nil {
			t.Fatalf("reference row %d: %v", row, err)
		}
	}
	if count, err := refCl.Finalize(ctx); err != nil || count != n {
		t.Fatalf("reference finalize: %d, %v", count, err)
	}
	refEsts := make([]float64, len(clusterQueries))
	for i, where := range clusterQueries {
		resp, err := refCl.Query(ctx, where)
		if err != nil {
			t.Fatal(err)
		}
		refEsts[i] = resp.Estimate
	}

	// ---- The cluster. The crash-designated shard is durable; bootShard can
	// rebuild it from its WAL at the same address.
	walPath := filepath.Join(t.TempDir(), "shard1.wal")
	bootShard := func(addr string) (*httptest.Server, string) {
		srv, err := httpapi.NewServer(schema, n, opts)
		if err != nil {
			t.Fatal(err)
		}
		srv.SetLogger(t.Logf)
		srv.SetShardID(fmt.Sprintf("shard-%d", crashed))
		l, recs, err := reportlog.Open(walPath)
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.UseWAL(l, recs); err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewUnstartedServer(srv.Handler())
		if addr != "" {
			// Rebind the crashed shard's address: the cluster config names it.
			ln, err := net.Listen("tcp", addr)
			if err != nil {
				t.Fatal(err)
			}
			ts.Listener.Close()
			ts.Listener = ln
		}
		ts.Start()
		return ts, ts.Listener.Addr().String()
	}

	var bases []string
	var tss []*httptest.Server
	var shardAddr string
	for i := 0; i < k; i++ {
		if i == crashed {
			ts, addr := bootShard("")
			tss = append(tss, ts)
			bases = append(bases, "http://"+addr)
			shardAddr = addr
			continue
		}
		srv, err := httpapi.NewServer(schema, n, opts)
		if err != nil {
			t.Fatal(err)
		}
		srv.SetLogger(t.Logf)
		srv.SetShardID(fmt.Sprintf("shard-%d", i))
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		tss = append(tss, ts)
		bases = append(bases, ts.URL)
	}

	// The coordinator's first two state pulls die mid-transfer; its retry
	// policy must ride them out and receive identical states on the re-pull.
	pf := faultinject.NewPartialFetch(nil, "/v1/shard/state", 2)
	coord, err := New(Config{
		Schema:     schema,
		N:          n,
		Opts:       opts,
		Shards:     bases,
		HTTPClient: &http.Client{Transport: pf},
		Retry:      fastRetry(8),
		Logf:       t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	coordTS := httptest.NewServer(coord.Handler())
	defer coordTS.Close()
	ccl := NewClient(coordTS.URL, bases, nil, fastRetry(8))

	// First half of the population reports, then the shard dies.
	for row := 0; row < n/2; row++ {
		id, rep := deviceReport(t, specs, opts.Epsilon, ds, row, devSeed)
		if _, err := ccl.ReportWithID(ctx, id, rep); err != nil {
			t.Fatalf("cluster row %d: %v", row, err)
		}
	}
	tss[crashed].Close()

	// Restart from the WAL at the same address. Devices whose acknowledgment
	// the crash may have swallowed resubmit verbatim; the replayed dedup index
	// must recognize every one and recount none.
	ts2, _ := bootShard(shardAddr)
	defer ts2.Close()
	resubmitted := 0
	for row := 0; row < n/2 && resubmitted < 25; row++ {
		id, rep := deviceReport(t, specs, opts.Epsilon, ds, row, devSeed)
		if ShardFor(id, k) != crashed {
			continue
		}
		resubmitted++
		dup, err := ccl.ReportWithID(ctx, id, rep)
		if err != nil || !dup {
			t.Fatalf("resubmit row %d across shard restart: dup=%v err=%v", row, dup, err)
		}
	}
	if resubmitted == 0 {
		t.Fatal("no rows landed on the crashed shard; test is vacuous")
	}

	// Second half of the round, then the cluster finalize (which rides out the
	// truncated state pulls).
	for row := n / 2; row < n; row++ {
		id, rep := deviceReport(t, specs, opts.Epsilon, ds, row, devSeed)
		if _, err := ccl.ReportWithID(ctx, id, rep); err != nil {
			t.Fatalf("cluster row %d: %v", row, err)
		}
	}
	count, err := ccl.Finalize(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("cluster finalized %d reports for %d distinct users", count, n)
	}
	if pf.Injected() != 2 {
		t.Fatalf("injected %d partial fetches, want 2", pf.Injected())
	}

	// The crash must be visible in the coordinator's roll-up (the shard
	// replayed its half of the first n/2 rows) — and invisible in the answers.
	st := coord.Status()
	if st.Shards[crashed].WALReplayed == 0 {
		t.Fatalf("crashed shard reports no WAL replay: %+v", st.Shards[crashed])
	}
	if g := st.Metrics[fmt.Sprintf("cluster.shard%d.wal_replayed", crashed)]; g != int64(st.Shards[crashed].WALReplayed) {
		t.Fatalf("wal_replayed gauge %d != status %d", g, st.Shards[crashed].WALReplayed)
	}
	for i, where := range clusterQueries {
		resp, err := ccl.Query(ctx, where)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Estimate != refEsts[i] {
			t.Errorf("query %q: cluster %v != reference %v (crash left a trace)",
				where, resp.Estimate, refEsts[i])
		}
	}
}

// TestShardStateRepullAfterCrashIsIdentical drills the narrower invariant
// directly: seal a durable shard, pull its state, crash and restart it from
// the WAL, and pull again — the two messages must match checksum-for-checksum
// (only the replay counter, excluded from the checksum, may differ).
func TestShardStateRepullAfterCrashIsIdentical(t *testing.T) {
	const n = 600
	schema := dataset.MixedSchema(2, 32, 2, 4)
	ds := dataset.NewNormal().Generate(schema, n, 467)
	opts := core.Options{Strategy: core.OHG, Epsilon: 1.2, Seed: 461}
	ctx := context.Background()
	walPath := filepath.Join(t.TempDir(), "shard.wal")

	boot := func(addr string) (*httptest.Server, string) {
		srv, err := httpapi.NewServer(schema, n, opts)
		if err != nil {
			t.Fatal(err)
		}
		srv.SetLogger(t.Logf)
		srv.SetShardID("lone-shard")
		l, recs, err := reportlog.Open(walPath)
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.UseWAL(l, recs); err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewUnstartedServer(srv.Handler())
		if addr != "" {
			ln, err := net.Listen("tcp", addr)
			if err != nil {
				t.Fatal(err)
			}
			ts.Listener.Close()
			ts.Listener = ln
		}
		ts.Start()
		return ts, ts.Listener.Addr().String()
	}

	ts, addr := boot("")
	cl := httpapi.DialRetrying("http://"+addr, nil, fastRetry(4))
	plan, err := cl.Plan(ctx)
	if err != nil {
		t.Fatal(err)
	}
	specs, err := plan.Specs()
	if err != nil {
		t.Fatal(err)
	}
	for row := 0; row < n; row++ {
		id, rep := deviceReport(t, specs, opts.Epsilon, ds, row, 463)
		if _, err := cl.ReportWithID(ctx, id, rep); err != nil {
			t.Fatal(err)
		}
	}
	first, err := cl.ShardState(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if first.Reports != n || first.WALReplayed != 0 {
		t.Fatalf("first pull: %d reports, %d replayed", first.Reports, first.WALReplayed)
	}
	// A pull seals the round: fresh reports must now be refused.
	id, rep := deviceReport(t, specs, opts.Epsilon, ds, 0, 999)
	if _, err := cl.ReportWithID(ctx, id, rep); err == nil {
		t.Fatal("sealed shard accepted a new report")
	}

	ts.Close()
	ts2, _ := boot(addr)
	defer ts2.Close()

	second, err := cl.ShardState(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if second.WALReplayed != n {
		t.Fatalf("restarted shard replayed %d records, want %d", second.WALReplayed, n)
	}
	if second.Checksum != first.Checksum || second.Reports != first.Reports || second.Round != first.Round {
		t.Fatalf("re-pulled state differs: first %08x/%d, second %08x/%d",
			first.Checksum, first.Reports, second.Checksum, second.Reports)
	}
	// And a third pull from the same process serves the cache, verbatim.
	third, err := cl.ShardState(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if third.Checksum != second.Checksum || third.WALReplayed != second.WALReplayed {
		t.Fatal("cached re-pull differs from sealed state")
	}
}
