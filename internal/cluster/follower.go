package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"os"
	"sync"
	"time"

	"felip/internal/core"
	"felip/internal/domain"
	"felip/internal/httpapi"
	"felip/internal/reportlog"
	"felip/internal/wire"
)

// FollowerConfig describes one logical shard's replication target.
type FollowerConfig struct {
	// Schema, N and Opts must match the cluster's plan flags: the promoted
	// server rebuilds the identical plan from them.
	Schema *domain.Schema
	N      int
	Opts   core.Options
	// Name is the logical shard this node replicates — and the identity it
	// assumes on promotion, so routing, dedup keys, and the shard-state
	// checksum all survive the failover.
	Name string
	// Base is this node's own public base URL (what it registers and
	// heartbeats with, and what the coordinator routes to after promotion).
	Base string
	// Primary is the current primary's base URL; Coordinator the
	// coordinator's.
	Primary     string
	Coordinator string
	// WALPath is the base path of the local segment chain the shipped bytes
	// land in — the same layout a primary's -wal flag produces, which is what
	// makes takeover a plain restart-replay.
	WALPath string
	// HTTPClient and Retry configure the sync and heartbeat calls.
	HTTPClient *http.Client
	Retry      httpapi.RetryPolicy
	Logf       func(format string, args ...any)
}

// Follower replicates one primary's write-ahead log segment by segment and
// can take the primary's place: Register announces it to the coordinator,
// SyncOnce pulls and verifies the next chunk, Heartbeat reports its
// replication positions, and Promote — driven by the coordinator when the
// primary's heartbeat lapses — strictly re-verifies the local segment chain,
// replays it into a fresh shard server under the primary's logical identity,
// and starts serving. Because the shipped bytes are the primary's WAL bytes,
// the promoted shard's sealed partial state is bit-identical to what the
// lost primary would have exported.
type Follower struct {
	cfg     FollowerConfig
	logf    func(format string, args ...any)
	primary *httpapi.Client
	coord   *httpapi.Client
	segs    *reportlog.Segments

	mu sync.Mutex
	// round and off are the shipping cursor: the segment being replicated and
	// how many of its bytes are local.
	round int
	off   int64
	// primaryRound and primaryPos are the primary-side positions observed on
	// the last successful sync.
	primaryRound int
	primaryPos   int64
	// promoted is the shard server this node runs after takeover; promotion
	// is one-way.
	promoted *httpapi.Server
	handler  http.Handler
	resp     wire.PromoteResponse
}

// NewFollower builds a follower and resumes its shipping cursor from whatever
// segments a previous run left on disk.
func NewFollower(cfg FollowerConfig) (*Follower, error) {
	if cfg.Name == "" || cfg.Base == "" || cfg.Primary == "" || cfg.Coordinator == "" {
		return nil, fmt.Errorf("cluster: follower needs Name, Base, Primary and Coordinator")
	}
	if cfg.WALPath == "" {
		return nil, fmt.Errorf("cluster: follower needs a local WAL path to ship segments into")
	}
	logf := cfg.Logf
	if logf == nil {
		logf = log.Printf
	}
	f := &Follower{
		cfg:     cfg,
		logf:    logf,
		primary: httpapi.DialRetrying(cfg.Primary, cfg.HTTPClient, cfg.Retry),
		coord:   httpapi.DialRetrying(cfg.Coordinator, cfg.HTTPClient, cfg.Retry),
		segs:    reportlog.NewSegments(cfg.WALPath),
		round:   1,
	}
	rounds, err := f.segs.Existing()
	if err != nil {
		return nil, err
	}
	if len(rounds) > 0 {
		last := rounds[len(rounds)-1]
		st, err := os.Stat(f.segs.Path(last))
		if err != nil {
			return nil, err
		}
		f.round, f.off = last, st.Size()
	}
	return f, nil
}

// Register announces the follower to the coordinator's membership; the
// response's JoinRound is the primary's first round, which seeds the shipping
// cursor when no local segments exist yet.
func (f *Follower) Register(ctx context.Context) error {
	resp, err := f.coord.RegisterShard(ctx, wire.RegisterMessage{
		Name:    f.cfg.Name,
		Base:    f.cfg.Base,
		Role:    wire.RoleFollower,
		Follows: f.cfg.Name,
	})
	if err != nil {
		return err
	}
	f.mu.Lock()
	if f.off == 0 && f.round < resp.JoinRound {
		f.round = resp.JoinRound
	}
	f.mu.Unlock()
	return nil
}

// SyncOnce pulls one replication chunk from the primary, verifies it, appends
// it to the local segment, and — when the primary has sealed the segment and
// every byte is local — strictly re-verifies the whole local file before
// advancing to the next round's segment. Returns whether the follower is
// fully caught up (no segment lag, no byte lag).
func (f *Follower) SyncOnce(ctx context.Context) (caughtUp bool, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.promoted != nil {
		return true, nil
	}
	chunk, err := f.primary.ReplicaWAL(ctx, f.round, f.off)
	if err != nil {
		return false, err
	}
	if chunk.Truncated {
		// The primary archived this round and truncated its segment: the bytes
		// this follower still needs are gone. Skipping ahead would leave a hole
		// in the local chain and a later promotion would serve a history with
		// reports silently missing — refuse, loudly, until an operator
		// re-seeds the follower (or replaces it) from the archive snapshot.
		return false, fmt.Errorf("cluster: follower %q: primary archived round %d and truncated its segment; cannot replicate an already-archived round — re-seed this follower from the archive",
			f.cfg.Name, f.round)
	}
	if len(chunk.Data) > 0 {
		file, err := os.OpenFile(f.segs.Path(f.round), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return false, err
		}
		_, werr := file.Write(chunk.Data)
		if werr == nil {
			werr = file.Sync()
		}
		if cerr := file.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return false, fmt.Errorf("cluster: appending shipped bytes to %s: %w", f.segs.Path(f.round), werr)
		}
		f.off = chunk.Pos
	}
	f.primaryRound = chunk.CurrentRound
	if chunk.Round == chunk.CurrentRound {
		f.primaryPos = chunk.Pos
	} else {
		f.primaryPos = 0
	}
	if chunk.Sealed && f.off == chunk.Pos && chunk.CurrentRound > f.round {
		// Segment complete: re-verify the local bytes end to end before moving
		// the cursor — the CRC chain must hold on *our* disk, not just on the
		// wire, because promotion replays from disk.
		if f.off > 0 {
			raw, err := os.ReadFile(f.segs.Path(f.round))
			if err != nil {
				return false, err
			}
			if _, err := reportlog.VerifySegment(raw); err != nil {
				return false, fmt.Errorf("cluster: shipped segment %s failed verification: %w", f.segs.Path(f.round), err)
			}
		}
		f.logf("cluster: follower %q completed segment for round %d (%d bytes)", f.cfg.Name, f.round, f.off)
		f.round++
		f.off = 0
		return false, nil
	}
	return f.round == chunk.CurrentRound && f.off == chunk.Pos, nil
}

// Lag reports the follower's replication lag: whole segments behind the
// primary, plus bytes behind within the segment when caught up on rounds.
func (f *Follower) Lag() (segments int, bytes int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return lagOf(&follower{
		round: f.round, pos: f.off,
		primaryRound: f.primaryRound, primaryPos: f.primaryPos,
	})
}

// Heartbeat reports liveness and replication positions to the coordinator.
// After promotion it beats as the shard's primary instead.
func (f *Follower) Heartbeat(ctx context.Context) error {
	f.mu.Lock()
	msg := wire.HeartbeatMessage{
		Name:         f.cfg.Name,
		Base:         f.cfg.Base,
		Role:         wire.RoleFollower,
		Round:        f.round,
		WALPos:       f.off,
		PrimaryRound: f.primaryRound,
		PrimaryPos:   f.primaryPos,
	}
	if srv := f.promoted; srv != nil {
		msg.Role = wire.RolePrimary
		msg.Round = srv.Round()
		msg.PrimaryRound, msg.PrimaryPos = 0, 0
	}
	f.mu.Unlock()
	_, err := f.coord.ShardHeartbeat(ctx, msg)
	return err
}

// Promote performs the takeover: every local segment is strictly verified
// (any tear or corruption refuses the promotion — the coordinator keeps the
// shard dead rather than serve a state that is not bit-identical), then
// replayed into a fresh shard server exactly the way a restarted primary
// replays its own WAL chain. The server assumes the primary's logical shard
// identity and keeps appending to the same local segment chain, so it *is*
// the shard from here on. Idempotent: a second call returns the first
// takeover's response.
func (f *Follower) Promote(targetRound int) (wire.PromoteResponse, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.promoted != nil {
		return f.resp, nil
	}

	rounds, err := f.segs.Existing()
	if err != nil {
		return wire.PromoteResponse{}, err
	}
	replayed := 0
	for _, round := range rounds {
		raw, err := os.ReadFile(f.segs.Path(round))
		if err != nil {
			return wire.PromoteResponse{}, err
		}
		recs, err := reportlog.VerifySegment(raw)
		if err != nil {
			return wire.PromoteResponse{}, fmt.Errorf("cluster: refusing promotion: segment %s failed verification: %w",
				f.segs.Path(round), err)
		}
		replayed += len(recs)
	}

	srv, err := httpapi.NewServer(f.cfg.Schema, f.cfg.N, f.cfg.Opts)
	if err != nil {
		return wire.PromoteResponse{}, err
	}
	srv.SetLogger(f.logf)
	srv.SetShardID(f.cfg.Name)
	srv.SetSegments(f.segs)
	srv.SetWALFactory(func(round int) (*reportlog.Log, error) {
		l, recs, err := f.segs.Open(round)
		if err != nil {
			return nil, err
		}
		if len(recs) > 0 {
			l.Close()
			return nil, fmt.Errorf("segment %s already has %d records; refusing to reuse it for a new round",
				f.segs.Path(round), len(recs))
		}
		return l, nil
	})

	// Replay the chain like a restarted primary: the first segment attaches
	// via UseWAL, each later one via the idempotent resume. A shard that
	// joined mid-deployment has no segments for the earlier rounds — the
	// server fast-forwards to its first round before replay.
	first := f.round
	if len(rounds) > 0 {
		first = rounds[0]
	}
	if first > 1 {
		if err := srv.BeginAtRound(first); err != nil {
			return wire.PromoteResponse{}, err
		}
	}
	expect := first
	for i, round := range rounds {
		if round != expect {
			return wire.PromoteResponse{}, fmt.Errorf("cluster: refusing promotion: shipped chain has a gap: expected round %d, found %s",
				expect, f.segs.Path(round))
		}
		l, recs, err := f.segs.Open(round)
		if err != nil {
			return wire.PromoteResponse{}, err
		}
		if i == 0 {
			err = srv.UseWAL(l, recs)
		} else {
			_, err = srv.ResumeNextRound(l, recs)
		}
		if err != nil {
			return wire.PromoteResponse{}, fmt.Errorf("cluster: replaying shipped segment %s: %w", f.segs.Path(round), err)
		}
		expect++
	}
	if len(rounds) == 0 {
		// Nothing was ever shipped (the primary died before its first report):
		// take over as a fresh durable shard in the cursor round.
		l, recs, err := f.segs.Open(first)
		if err != nil {
			return wire.PromoteResponse{}, err
		}
		if err := srv.UseWAL(l, recs); err != nil {
			return wire.PromoteResponse{}, err
		}
	}
	if targetRound != 0 && srv.Round() != targetRound {
		return wire.PromoteResponse{}, fmt.Errorf("cluster: refusing promotion: replayed chain ends in round %d, cluster is in round %d",
			srv.Round(), targetRound)
	}
	if err := srv.WarmupServing(); err != nil {
		return wire.PromoteResponse{}, err
	}

	f.promoted = srv
	f.handler = srv.Handler()
	f.resp = wire.PromoteResponse{
		Name:     f.cfg.Name,
		Round:    srv.Round(),
		Reports:  replayed,
		Replayed: replayed,
	}
	f.logf("cluster: follower %q promoted: serving round %d after replaying %d records", f.cfg.Name, f.resp.Round, replayed)
	return f.resp, nil
}

// Handler is the follower's HTTP surface: the promotion endpoint, plus —
// once promoted — the full shard API delegated to the promoted server.
// Before promotion every shard route answers 503, so a client that routes to
// the follower too early retries rather than silently missing the shard.
func (f *Follower) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/replica/promote", func(w http.ResponseWriter, r *http.Request) {
		var req wire.PromoteRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeFollowerJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("invalid promote body: %v", err)})
			return
		}
		resp, err := f.Promote(req.Round)
		if err != nil {
			writeFollowerJSON(w, http.StatusConflict, map[string]string{"error": err.Error()})
			return
		}
		writeFollowerJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeFollowerJSON(w, http.StatusOK, map[string]bool{"ok": true})
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		h := f.handler
		f.mu.Unlock()
		if h == nil {
			writeFollowerJSON(w, http.StatusServiceUnavailable,
				map[string]string{"error": fmt.Sprintf("follower for %q is not promoted; reports go to the primary", f.cfg.Name)})
			return
		}
		h.ServeHTTP(w, r)
	})
	return mux
}

// Run drives the follower's loops until the context is cancelled: sync pulls
// at the sync interval, heartbeats at the heartbeat interval. Errors are
// logged and retried on the next tick — a follower outliving a dead primary
// is exactly the scenario it exists for.
func (f *Follower) Run(ctx context.Context, syncEvery, beatEvery time.Duration) {
	if syncEvery <= 0 {
		syncEvery = 200 * time.Millisecond
	}
	if beatEvery <= 0 {
		beatEvery = time.Second
	}
	go func() {
		t := time.NewTicker(syncEvery)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				if _, err := f.SyncOnce(ctx); err != nil && ctx.Err() == nil {
					f.logf("cluster: follower %q sync: %v", f.cfg.Name, err)
				}
			}
		}
	}()
	go func() {
		t := time.NewTicker(beatEvery)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				if err := f.Heartbeat(ctx); err != nil && ctx.Err() == nil {
					f.logf("cluster: follower %q heartbeat: %v", f.cfg.Name, err)
				}
			}
		}
	}()
}

func writeFollowerJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}
