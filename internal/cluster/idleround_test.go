package cluster

import (
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"felip/internal/archive"
	"felip/internal/core"
	"felip/internal/dataset"
	"felip/internal/httpapi"
	"felip/internal/reportlog"
)

// TestPromotionChainSpansIdleRound is the promotion half of the idle-round
// drill: the primary collects in rounds 1 and 3 but seals round 2 with zero
// reports. The follower ships all three segments — the idle one carries just
// the finalize-of-zero marker — and after the primary dies, Promote must
// replay the chain across the idle round and take over in round 3 with the
// dedup index intact. Before the fix the idle segment was empty, the replay
// chain broke at round 2, and the shard was unpromotable.
func TestPromotionChainSpansIdleRound(t *testing.T) {
	const (
		n       = 400
		devSeed = 733
	)
	schema := dataset.MixedSchema(2, 32, 2, 4)
	ds := dataset.NewNormal().Generate(schema, n, 739)
	opts := core.Options{Strategy: core.OHG, Epsilon: 1.5, Seed: 743}
	ctx := context.Background()
	dir := t.TempDir()

	_, ts0 := newDurableShard(t, "shard0", filepath.Join(dir, "primary.wal"), n, opts)
	cl := httpapi.DialRetrying(ts0.URL, ts0.Client(), fastRetry(3))
	plan, err := cl.Plan(ctx)
	if err != nil {
		t.Fatal(err)
	}
	specs, err := plan.Specs()
	if err != nil {
		t.Fatal(err)
	}

	// The follower never talks to a coordinator in this drill (promotion is
	// invoked directly); the address only has to be non-empty.
	fol, err := NewFollower(FollowerConfig{
		Schema: schema, N: n, Opts: opts,
		Name:        "shard0",
		Base:        "http://follower.invalid",
		Primary:     ts0.URL,
		Coordinator: "http://coordinator.invalid",
		WALPath:     filepath.Join(dir, "follower.wal"),
		Retry:       fastRetry(3),
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}

	submit := func(fromRow, count int) {
		t.Helper()
		for row := fromRow; row < fromRow+count; row++ {
			id, rep := deviceReport(t, specs, opts.Epsilon, ds, row, devSeed)
			if dup, err := cl.ReportWithID(ctx, id, rep); err != nil || dup {
				t.Fatalf("row %d: dup=%v err=%v", row, dup, err)
			}
		}
	}
	sealAndAdvance := func(target int) {
		t.Helper()
		if _, err := cl.ShardState(ctx); err != nil {
			t.Fatal(err)
		}
		if round, err := cl.NextRoundTo(ctx, target); err != nil || round != target {
			t.Fatalf("advance to %d: round=%d err=%v", target, round, err)
		}
	}

	submit(0, 60)
	sealAndAdvance(2)
	// Round 2: nobody reports. Seal it empty and move on.
	sealAndAdvance(3)
	submit(100, 40)

	// Ship the whole chain — the idle round's segment included.
	for i := 0; ; i++ {
		caughtUp, err := fol.SyncOnce(ctx)
		if err != nil {
			t.Fatalf("sync %d: %v", i, err)
		}
		if caughtUp {
			break
		}
		if i > 10000 {
			t.Fatal("follower never caught up")
		}
	}

	// The shipped idle segment is exactly one finalize-of-zero record.
	raw, err := os.ReadFile(fol.segs.Path(2))
	if err != nil {
		t.Fatal(err)
	}
	recs, err := reportlog.VerifySegment(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Type != reportlog.TypeFinalize || recs[0].Reports != 0 {
		t.Fatalf("shipped idle segment records = %+v, want one finalize(0)", recs)
	}

	// Kill the primary and promote. The replay chain must cross the idle
	// round: round 1 replays its reports and finalize, round 2 replays the
	// finalize-of-zero, round 3 replays its open tail.
	ts0.Close()
	resp, err := fol.Promote(3)
	if err != nil {
		t.Fatalf("promotion across idle round: %v", err)
	}
	if resp.Round != 3 {
		t.Fatalf("promoted into round %d, want 3", resp.Round)
	}

	folTS := httptest.NewServer(fol.Handler())
	defer folTS.Close()
	pcl := httpapi.Dial(folTS.URL, folTS.Client())
	st, err := pcl.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Round != 3 || st.Reports != 40 {
		t.Fatalf("promoted status round=%d reports=%d, want round 3 with 40 reports", st.Round, st.Reports)
	}

	// The promoted replica's dedup index survived the chain: resubmitting an
	// acknowledged round-3 report flags duplicate, never double-counts.
	id, rep := deviceReport(t, specs, opts.Epsilon, ds, 100, devSeed)
	dup, err := pcl.ReportWithID(ctx, id, rep)
	if err != nil {
		t.Fatal(err)
	}
	if !dup {
		t.Fatal("resubmission after promotion not flagged duplicate")
	}
}

// TestFollowerRefusesTruncatedArchivedRound pins the empty-versus-truncated
// distinction on the replication plane: a primary that archived a round and
// reclaimed its WAL segment must not answer a follower's pull for that round
// with an innocent empty chunk. The chunk says Truncated, and the follower
// refuses to replicate — a replica seeded from nothing cannot reconstruct an
// archived round, and silently skipping it would ship a chain that is not
// bit-identical to the primary's history.
func TestFollowerRefusesTruncatedArchivedRound(t *testing.T) {
	const (
		n       = 300
		devSeed = 809
	)
	schema := dataset.MixedSchema(2, 32, 2, 4)
	ds := dataset.NewNormal().Generate(schema, n, 811)
	opts := core.Options{Strategy: core.OHG, Epsilon: 1.8, Seed: 821}
	ctx := context.Background()
	dir := t.TempDir()

	srv, err := httpapi.NewServer(schema, n, opts)
	if err != nil {
		t.Fatal(err)
	}
	srv.SetLogger(t.Logf)
	srv.SetShardID("shard0")
	segs := reportlog.NewSegments(filepath.Join(dir, "primary.wal"))
	store, err := archive.Open(filepath.Join(dir, "arch"), archive.Options{
		PlanFingerprint: srv.PlanFingerprint(),
		Logf:            t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.UseArchive(store, segs); err != nil {
		t.Fatal(err)
	}
	srv.SetWALFactory(func(round int) (*reportlog.Log, error) {
		l, _, err := segs.Open(round)
		return l, err
	})
	l1, recs1, err := segs.Open(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.UseWAL(l1, recs1); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cl := httpapi.DialRetrying(ts.URL, ts.Client(), fastRetry(3))

	plan, err := cl.Plan(ctx)
	if err != nil {
		t.Fatal(err)
	}
	specs, err := plan.Specs()
	if err != nil {
		t.Fatal(err)
	}
	for row := 0; row < 120; row++ {
		id, rep := deviceReport(t, specs, opts.Epsilon, ds, row, devSeed)
		if _, err := cl.ReportWithID(ctx, id, rep); err != nil {
			t.Fatal(err)
		}
	}
	// Finalize archives round 1 and truncates its segment.
	if count, err := cl.Finalize(ctx); err != nil || count != 120 {
		t.Fatalf("finalize: %d, %v", count, err)
	}
	if _, err := os.Stat(segs.Path(1)); !os.IsNotExist(err) {
		t.Fatal("round-1 segment survived archiving; drill premise broken")
	}
	if _, err := cl.NextRound(ctx); err != nil {
		t.Fatal(err)
	}

	// A follower joining now asks for round 1 from byte 0. The primary must
	// mark the chunk truncated, not empty...
	chunk, err := cl.ReplicaWAL(ctx, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !chunk.Truncated {
		t.Fatalf("archived round served as chunk %+v, want Truncated", chunk)
	}
	if err := chunk.Verify(); err != nil {
		t.Fatalf("truncated chunk fails self-verification: %v", err)
	}

	// ...and the follower must refuse to replicate rather than skip the round.
	fol, err := NewFollower(FollowerConfig{
		Schema: schema, N: n, Opts: opts,
		Name:        "shard0",
		Base:        "http://follower.invalid",
		Primary:     ts.URL,
		Coordinator: "http://coordinator.invalid",
		WALPath:     filepath.Join(dir, "follower.wal"),
		Retry:       fastRetry(3),
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fol.SyncOnce(ctx); err == nil {
		t.Fatal("follower replicated past an archived round")
	} else if !strings.Contains(err.Error(), "archived") {
		t.Fatalf("refusal does not name the archive as the cause: %v", err)
	}
	// Nothing was written locally: the refusal left no segment to mislead a
	// later promotion.
	if rounds, err := fol.segs.Existing(); err != nil || len(rounds) != 0 {
		t.Fatalf("follower segments after refusal = %v (err %v), want none", rounds, err)
	}
}
