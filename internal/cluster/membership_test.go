package cluster

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"felip/internal/core"
	"felip/internal/dataset"
	"felip/internal/httpapi"
	"felip/internal/wire"
)

// fakeClock is a hand-driven time source for liveness tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1000, 0)} }

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// TestRendezvousStability pins the property elastic routing depends on:
// adding shard n+1 moves roughly 1/(n+1) of the keys, and every moved key
// moves TO the new shard — no key shuffles between surviving shards, so no
// surviving shard's dedup index ever sees a key it didn't own before.
func TestRendezvousStability(t *testing.T) {
	const keys = 6000
	names := []string{"shard0", "shard1", "shard2", "shard3"}
	grown := append(append([]string(nil), names...), "shard4")

	counts := make(map[int]int)
	moved := 0
	for i := 0; i < keys; i++ {
		id := fmt.Sprintf("user-%d", i)
		before := RendezvousFor(id, names)
		after := RendezvousFor(id, grown)
		counts[after]++
		if grown[after] != names[before] {
			moved++
			if grown[after] != "shard4" {
				t.Fatalf("key %q moved from %s to %s, not to the new shard", id, names[before], grown[after])
			}
		}
	}

	// Expected fraction moved is 1/5; allow generous sampling slack.
	frac := float64(moved) / keys
	if frac < 0.12 || frac > 0.28 {
		t.Fatalf("adding shard 5 moved %.1f%% of keys, want ~20%%", 100*frac)
	}
	// Every shard — including the new one — must carry real traffic.
	for i, name := range grown {
		if counts[i] < keys/(len(grown)*4) {
			t.Fatalf("shard %s owns only %d of %d keys", name, counts[i], keys)
		}
	}
	// Determinism and order-independence: the winner is a function of the name
	// set, not its order.
	reversed := []string{"shard3", "shard2", "shard1", "shard0"}
	for i := 0; i < 100; i++ {
		id := fmt.Sprintf("user-%d", i)
		if names[RendezvousFor(id, names)] != reversed[RendezvousFor(id, reversed)] {
			t.Fatalf("key %q routes differently under reordered membership", id)
		}
	}
}

func TestMembershipDuplicateAndReplacementRegistration(t *testing.T) {
	clk := newFakeClock()
	ms := newMembership(clk.now, 10*time.Second)

	reg := wire.RegisterMessage{Name: "s1", Base: "http://a", Role: wire.RolePrimary}
	epoch1, join, err := ms.register(reg, 3)
	if err != nil || join != 3 {
		t.Fatalf("first register: epoch %d join %d err %v", epoch1, join, err)
	}
	// Duplicate registration is idempotent: same epoch, join round preserved.
	epoch2, join2, err := ms.register(reg, 7)
	if err != nil || epoch2 != epoch1 || join2 != 3 {
		t.Fatalf("duplicate register: epoch %d join %d err %v (want epoch %d join 3)", epoch2, join2, err, epoch1)
	}
	// A different node claiming a live shard's name is refused.
	if _, _, err := ms.register(wire.RegisterMessage{Name: "s1", Base: "http://b", Role: wire.RolePrimary}, 7); err == nil {
		t.Fatal("conflicting registration for a live shard accepted")
	}
	// Once the primary is dead, a replacement at a new address is accepted and
	// bumps the epoch so clients re-resolve.
	if _, err := ms.heartbeat(wire.HeartbeatMessage{Name: "s1", Base: "http://a", Role: wire.RolePrimary}); err != nil {
		t.Fatal(err)
	}
	clk.advance(11 * time.Second)
	ms.lapsed()
	if !ms.members["s1"].dead {
		t.Fatal("lapsed primary not marked dead")
	}
	epoch3, join3, err := ms.register(wire.RegisterMessage{Name: "s1", Base: "http://b", Role: wire.RolePrimary}, 7)
	if err != nil || epoch3 <= epoch2 || join3 != 3 {
		t.Fatalf("replacement register: epoch %d join %d err %v", epoch3, join3, err)
	}
	if ms.members["s1"].base != "http://b" || ms.members["s1"].dead {
		t.Fatalf("replacement not applied: %+v", ms.members["s1"])
	}
}

func TestMembershipHeartbeatFlappingAroundTimeout(t *testing.T) {
	clk := newFakeClock()
	ms := newMembership(clk.now, 10*time.Second)

	if _, _, err := ms.register(wire.RegisterMessage{Name: "s1", Base: "http://p", Role: wire.RolePrimary}, 1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ms.register(wire.RegisterMessage{Name: "s1", Base: "http://f", Role: wire.RoleFollower, Follows: "s1"}, 1); err != nil {
		t.Fatal(err)
	}
	beat := func(base, role string) error {
		_, err := ms.heartbeat(wire.HeartbeatMessage{Name: "s1", Base: base, Role: role})
		return err
	}

	// t=0: both beat. t=8: only the follower beats. t=11: the primary is one
	// second past the timeout, the follower three seconds fresh — a promotion
	// candidate exists.
	if err := beat("http://p", wire.RolePrimary); err != nil {
		t.Fatal(err)
	}
	clk.advance(8 * time.Second)
	if err := beat("http://f", wire.RoleFollower); err != nil {
		t.Fatal(err)
	}
	clk.advance(3 * time.Second)
	cands := ms.lapsed()
	if len(cands) != 1 || cands[0].name != "s1" || cands[0].followerBase != "http://f" {
		t.Fatalf("candidates = %+v", cands)
	}

	// The primary flaps back before the promotion lands: its beat revives it,
	// and the now-stale promotion must be refused.
	if err := beat("http://p", wire.RolePrimary); err != nil {
		t.Fatalf("reviving beat refused: %v", err)
	}
	if ms.promote("s1", "http://f") {
		t.Fatal("promotion applied over a revived primary")
	}
	if ms.members["s1"].base != "http://p" {
		t.Fatal("revived primary lost its address")
	}

	// It lapses again with the follower still fresh; this time the promotion
	// applies, and the superseded primary's next beat is refused by name.
	clk.advance(11 * time.Second)
	if err := beat("http://f", wire.RoleFollower); err != nil {
		t.Fatal(err)
	}
	cands = ms.lapsed()
	if len(cands) != 1 {
		t.Fatalf("candidates after second lapse = %+v", cands)
	}
	epochBefore := ms.epoch
	if !ms.promote("s1", "http://f") {
		t.Fatal("promotion refused")
	}
	if ms.epoch <= epochBefore || ms.members["s1"].base != "http://f" || ms.members["s1"].follower != nil {
		t.Fatalf("promotion state: epoch %d member %+v", ms.epoch, ms.members["s1"])
	}
	if err := beat("http://p", wire.RolePrimary); err == nil {
		t.Fatal("superseded primary's heartbeat accepted: split brain")
	}
}

// TestShardJoinsWhileRoundIsSealing drills the registration race the join
// round exists for: a shard that registers while the coordinator is mid-pull
// joins the NEXT round — the in-flight merge's pull set never changes — and
// is driven from the next round on.
func TestShardJoinsWhileRoundIsSealing(t *testing.T) {
	const n = 600
	schema := dataset.MixedSchema(2, 32, 2, 4)
	opts := core.Options{Strategy: core.OHG, Epsilon: 1.2, Seed: 311}
	ctx := context.Background()

	srv, err := httpapi.NewServer(schema, n, opts)
	if err != nil {
		t.Fatal(err)
	}
	srv.SetLogger(t.Logf)
	srv.SetShardID("shard0")
	// Gate the state pull so the test can hold the round "sealing" open.
	gate := make(chan struct{})
	var gateOnce sync.Once
	inner := srv.Handler()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/shard/state" {
			<-gate
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)
	t.Cleanup(func() { gateOnce.Do(func() { close(gate) }) })

	coord, err := New(Config{
		Schema: schema, N: n, Opts: opts,
		Shards: []string{ts.URL},
		Retry:  fastRetry(3),
		Logf:   t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Feed the first shard a couple of reports so the round is non-empty.
	plan, err := httpapi.Dial(ts.URL, nil).Plan(ctx)
	if err != nil {
		t.Fatal(err)
	}
	specs, err := plan.Specs()
	if err != nil {
		t.Fatal(err)
	}
	ds := dataset.NewNormal().Generate(schema, 32, 313)
	cl := httpapi.Dial(ts.URL, nil)
	for row := 0; row < 32; row++ {
		id, rep := deviceReport(t, specs, opts.Epsilon, ds, row, 500)
		if _, err := cl.ReportWithID(ctx, id, rep); err != nil {
			t.Fatal(err)
		}
	}

	done := make(chan error, 1)
	go func() {
		_, err := coord.FinalizeRound(ctx)
		done <- err
	}()

	// Wait until the finalize is actually holding the seal open, then register
	// a new shard mid-seal.
	deadline := time.After(5 * time.Second)
	for {
		coord.mu.Lock()
		sealing := coord.sealing
		coord.mu.Unlock()
		if sealing {
			break
		}
		select {
		case <-deadline:
			t.Fatal("finalize never entered sealing")
		case <-time.After(time.Millisecond):
		}
	}

	joiner, err := httpapi.NewServer(schema, n, opts)
	if err != nil {
		t.Fatal(err)
	}
	joiner.SetLogger(t.Logf)
	joiner.SetShardID("shard-late")
	jts := httptest.NewServer(joiner.Handler())
	t.Cleanup(jts.Close)

	resp, err := coord.RegisterShard(wire.RegisterMessage{Name: "shard-late", Base: jts.URL, Role: wire.RolePrimary})
	if err != nil {
		t.Fatal(err)
	}
	if resp.JoinRound != 2 {
		t.Fatalf("registering mid-seal joined round %d, want 2", resp.JoinRound)
	}
	if err := joiner.BeginAtRound(resp.JoinRound); err != nil {
		t.Fatal(err)
	}

	// Release the seal; the merge must cover exactly the pre-join shard.
	gateOnce.Do(func() { close(gate) })
	if err := <-done; err != nil {
		t.Fatalf("finalize: %v", err)
	}
	st := coord.Status()
	if st.Reports != 32 || len(st.Shards) != 1 {
		t.Fatalf("round 1 merged %d reports over %d shards, want 32 over 1", st.Reports, len(st.Shards))
	}

	// Advancing to round 2 drives both shards; the joiner is already there.
	if round, err := coord.AdvanceRound(ctx, 2); err != nil || round != 2 {
		t.Fatalf("advance: %d, %v", round, err)
	}
	if joiner.Round() != 2 {
		t.Fatalf("joiner in round %d after advance", joiner.Round())
	}
	// And the joiner is now part of the membership the routing layer sees.
	names := coord.MembershipSnapshot().Names()
	if len(names) != 2 || names[1] != "shard-late" {
		t.Fatalf("membership after join = %v", names)
	}
}

// TestFinalizeCancelsSiblingPullsOnFatalError pins the context satellite: a
// wedged shard must not hold the round open once another shard's pull already
// failed for good, and a dead round deadline must abort the pull entirely.
func TestFinalizeCancelsSiblingPullsOnFatalError(t *testing.T) {
	schema := dataset.MixedSchema(2, 32, 2, 4)
	opts := core.Options{Strategy: core.OHG, Epsilon: 1.2, Seed: 317}

	// Shard A answers 404 (non-retryable) instantly; shard B wedges until its
	// request is cancelled.
	fatal := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"no such shard"}`, http.StatusNotFound)
	}))
	t.Cleanup(fatal.Close)
	wedged := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done()
	}))
	t.Cleanup(wedged.Close)

	coord, err := New(Config{
		Schema: schema, N: 100, Opts: opts,
		Shards: []string{fatal.URL, wedged.URL},
		Retry:  httpapi.RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond, Seed: 1},
		Logf:   t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	_, err = coord.FinalizeRound(context.Background())
	if err == nil {
		t.Fatal("finalize succeeded against a 404 shard")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("finalize took %v: the wedged sibling pull was not cancelled", elapsed)
	}

	// A round deadline that expires mid-pull aborts promptly too.
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	coord2, err := New(Config{
		Schema: schema, N: 100, Opts: opts,
		Shards: []string{wedged.URL},
		Retry:  httpapi.RetryPolicy{MaxAttempts: 10, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond, Seed: 1},
		Logf:   t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	start = time.Now()
	if _, err := coord2.FinalizeRound(ctx); err == nil {
		t.Fatal("finalize outlived its round deadline")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("deadline-bound finalize took %v", elapsed)
	}
}
