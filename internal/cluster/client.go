package cluster

import (
	"context"
	"fmt"
	"net/http"
	"sync"

	"felip/internal/core"
	"felip/internal/httpapi"
	"felip/internal/wire"
)

// Client is the cluster-aware device/analyst client: reports go straight to
// the owning shard (no proxy hop through the coordinator on the hot path),
// queries and lifecycle calls go to the coordinator. The owning shard is
// picked by rendezvous hashing the report's idempotency key over the logical
// shard *names*, so every retry — in-process or across a device restart —
// lands on the same logical shard and its dedup index, even after a failover
// moved that shard to a different node. The routing table is cached per
// membership epoch and refreshed from the coordinator when a submission hits
// a node that is gone (connection refused) or refuses the shard (409/503):
// a stale table costs one refresh, never a lost report.
type Client struct {
	coord  *httpapi.Client
	hc     *http.Client
	policy httpapi.RetryPolicy

	mu    sync.Mutex
	epoch int64
	names []string
	bases map[string]string
	dials map[string]*httpapi.Client
}

// NewClient dials the coordinator and seeds the routing table from a static
// base list, deriving the same shard0..shardN-1 logical names the coordinator
// seeds from its Config.Shards — so static clients and the membership agree
// on the routing domain without a fetch. The table still refreshes from the
// coordinator's membership endpoint when routing goes stale.
func NewClient(coordBase string, shardBases []string, hc *http.Client, policy httpapi.RetryPolicy) *Client {
	c := &Client{
		coord:  httpapi.DialRetrying(coordBase, hc, policy),
		hc:     hc,
		policy: policy,
		bases:  make(map[string]string),
		dials:  make(map[string]*httpapi.Client),
	}
	for i, base := range shardBases {
		name := StaticShardName(i)
		c.names = append(c.names, name)
		c.bases[name] = base
	}
	return c
}

// DialCluster dials the coordinator and fetches the live membership as the
// initial routing table — the elastic-cluster entry point: a device needs
// only the coordinator's address.
func DialCluster(ctx context.Context, coordBase string, hc *http.Client, policy httpapi.RetryPolicy) (*Client, error) {
	c := NewClient(coordBase, nil, hc, policy)
	if err := c.Refresh(ctx); err != nil {
		return nil, err
	}
	return c, nil
}

// Refresh replaces the routing table with the coordinator's current
// membership snapshot.
func (c *Client) Refresh(ctx context.Context) error {
	msg, err := c.coord.Membership(ctx)
	if err != nil {
		return err
	}
	c.mu.Lock()
	c.apply(msg)
	c.mu.Unlock()
	return nil
}

// apply installs a membership snapshot. Caller holds c.mu.
func (c *Client) apply(msg wire.MembershipMessage) {
	c.epoch = msg.Epoch
	c.names = msg.Names()
	c.bases = make(map[string]string, len(msg.Members))
	for _, m := range msg.Members {
		c.bases[m.Name] = m.Base
	}
}

// Epoch reports the membership epoch the routing table was built from (0 for
// a static table that has never refreshed).
func (c *Client) Epoch() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}

// Shards reports the routing table's logical shard count.
func (c *Client) Shards() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.names)
}

// route picks the owning logical shard's current base and dialed client.
func (c *Client) route(reportID string) (base string, cl *httpapi.Client) {
	c.mu.Lock()
	defer c.mu.Unlock()
	i := RendezvousFor(reportID, c.names)
	if i < 0 {
		return "", nil
	}
	base = c.bases[c.names[i]]
	return base, c.dialLocked(base)
}

// dialLocked returns the cached client for a base. Caller holds c.mu.
func (c *Client) dialLocked(base string) *httpapi.Client {
	cl, ok := c.dials[base]
	if !ok {
		cl = httpapi.DialRetrying(base, c.hc, c.policy)
		c.dials[base] = cl
	}
	return cl
}

// Shard returns the shard client that currently serves the given report ID's
// logical shard.
func (c *Client) Shard(reportID string) *httpapi.Client {
	_, cl := c.route(reportID)
	return cl
}

// Plan fetches the published collection plan from the coordinator (every
// node publishes the identical plan).
func (c *Client) Plan(ctx context.Context) (wire.PlanMessage, error) {
	return c.coord.Plan(ctx)
}

// Report submits one user's ε-LDP report under a fresh idempotency key,
// routed to the key's shard.
func (c *Client) Report(ctx context.Context, rep core.Report) error {
	_, err := c.ReportWithID(ctx, wire.NewReportID(), rep)
	return err
}

// ReportWithID submits a report under a caller-chosen idempotency key to the
// key's logical shard. duplicate reports whether the shard had already
// counted the key. If the submission fails — the node is gone, or answers
// that it no longer serves the shard — the client refreshes its membership
// from the coordinator and, when that moved the shard to a different node,
// retries the report once against the new one. Callers deriving the report's
// group should use httpapi.DeriveGroup on the same key — group and shard
// hashes are independent by construction.
func (c *Client) ReportWithID(ctx context.Context, id string, rep core.Report) (duplicate bool, err error) {
	base, cl := c.route(id)
	if cl == nil {
		if err := c.Refresh(ctx); err != nil {
			return false, err
		}
		if base, cl = c.route(id); cl == nil {
			return false, fmt.Errorf("cluster: no shards in routing table")
		}
	}
	dup, err := cl.ReportWithID(ctx, id, rep)
	if err == nil {
		return dup, nil
	}
	// The submission failed after the transport client's own retries. The
	// likeliest stale-routing causes — the primary died (connection refused)
	// or was superseded — are indistinguishable from transient faults out
	// here, so refresh unconditionally: if the membership moved the logical
	// shard to a new node, resubmit the same key there (the replicated dedup
	// index makes the resubmission exactly-once); if routing is unchanged,
	// the original error stands.
	if rerr := c.Refresh(ctx); rerr != nil {
		return false, err
	}
	newBase, newCl := c.route(id)
	if newCl == nil || newBase == base {
		return false, err
	}
	return newCl.ReportWithID(ctx, id, rep)
}

// Finalize closes the round cluster-wide via the coordinator; returns the
// merged accepted-report count.
func (c *Client) Finalize(ctx context.Context) (int, error) {
	return c.coord.Finalize(ctx)
}

// NextRound opens the next collection round cluster-wide.
func (c *Client) NextRound(ctx context.Context) (int, error) {
	return c.coord.NextRound(ctx)
}

// Query answers a WHERE expression against the merged round.
func (c *Client) Query(ctx context.Context, where string) (wire.QueryResponse, error) {
	return c.coord.Query(ctx, where)
}

// QueryBatch answers many WHERE expressions in one round trip.
func (c *Client) QueryBatch(ctx context.Context, wheres []string) (wire.BatchQueryResponse, error) {
	return c.coord.QueryBatch(ctx, wheres)
}
