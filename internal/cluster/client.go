package cluster

import (
	"context"
	"net/http"

	"felip/internal/core"
	"felip/internal/httpapi"
	"felip/internal/wire"
)

// Client is the cluster-aware device/analyst client: reports go straight to
// the owning shard (no proxy hop through the coordinator on the hot path),
// queries and lifecycle calls go to the coordinator. The shard is derived
// from the report's idempotency key, so every retry — in-process or across a
// device restart — lands on the same shard and its dedup index.
type Client struct {
	coord  *httpapi.Client
	shards []*httpapi.Client
}

// NewClient dials the coordinator and every shard with the same transport and
// retry policy. The shard order must match the coordinator's Config.Shards.
func NewClient(coordBase string, shardBases []string, hc *http.Client, policy httpapi.RetryPolicy) *Client {
	c := &Client{coord: httpapi.DialRetrying(coordBase, hc, policy)}
	for _, base := range shardBases {
		c.shards = append(c.shards, httpapi.DialRetrying(base, hc, policy))
	}
	return c
}

// Shards reports the cluster's shard count.
func (c *Client) Shards() int { return len(c.shards) }

// Shard returns the shard client that owns the given report ID.
func (c *Client) Shard(reportID string) *httpapi.Client {
	return c.shards[ShardFor(reportID, len(c.shards))]
}

// Plan fetches the published collection plan from the coordinator (every
// node publishes the identical plan).
func (c *Client) Plan(ctx context.Context) (wire.PlanMessage, error) {
	return c.coord.Plan(ctx)
}

// Report submits one user's ε-LDP report under a fresh idempotency key,
// routed to the key's shard.
func (c *Client) Report(ctx context.Context, rep core.Report) error {
	_, err := c.ReportWithID(ctx, wire.NewReportID(), rep)
	return err
}

// ReportWithID submits a report under a caller-chosen idempotency key to the
// key's shard. duplicate reports whether the shard had already counted the
// key. Callers deriving the report's group should use httpapi.DeriveGroup on
// the same key — group and shard hashes are independent by construction.
func (c *Client) ReportWithID(ctx context.Context, id string, rep core.Report) (duplicate bool, err error) {
	return c.Shard(id).ReportWithID(ctx, id, rep)
}

// Finalize closes the round cluster-wide via the coordinator; returns the
// merged accepted-report count.
func (c *Client) Finalize(ctx context.Context) (int, error) {
	return c.coord.Finalize(ctx)
}

// NextRound opens the next collection round cluster-wide.
func (c *Client) NextRound(ctx context.Context) (int, error) {
	return c.coord.NextRound(ctx)
}

// Query answers a WHERE expression against the merged round.
func (c *Client) Query(ctx context.Context, where string) (wire.QueryResponse, error) {
	return c.coord.Query(ctx, where)
}

// QueryBatch answers many WHERE expressions in one round trip.
func (c *Client) QueryBatch(ctx context.Context, wheres []string) (wire.BatchQueryResponse, error) {
	return c.coord.QueryBatch(ctx, wheres)
}
