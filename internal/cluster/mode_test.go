package cluster

import (
	"context"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"

	"felip/internal/core"
	"felip/internal/dataset"
	"felip/internal/fo"
	"felip/internal/httpapi"
)

// A shard that ran its round under a different reporting mode must be refused
// at merge time: its reports were perturbed under a different per-report
// budget (and, under RS+FD, carry fake data the FELIP inversion knows nothing
// about), so folding its partials would silently corrupt the round. The
// coordinator refuses loudly instead.
func TestMixedModeMergeRefused(t *testing.T) {
	const n = 600
	ctx := context.Background()
	schema := dataset.MixedSchema(2, 32, 2, 4)
	ds := dataset.NewNormal().Generate(schema, n, 71)
	felipOpts := core.Options{Strategy: core.OHG, Epsilon: 1.4, Seed: 73}
	splOpts := felipOpts
	splOpts.Mode = fo.ModeSPL

	// Shard 0 runs the cluster's FELIP plan; shard 1 is misconfigured to SPL.
	var bases []string
	var srvs []*httpapi.Server
	for i, opts := range []core.Options{felipOpts, splOpts} {
		srv, err := httpapi.NewServer(schema, n, opts)
		if err != nil {
			t.Fatal(err)
		}
		srv.SetLogger(t.Logf)
		srv.SetShardID(fmt.Sprintf("shard-%d", i))
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		srvs = append(srvs, srv)
		bases = append(bases, ts.URL)
	}
	coord, err := New(Config{
		Schema: schema,
		N:      n,
		Opts:   felipOpts,
		Shards: bases,
		Logf:   t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Feed each shard reports valid under its own mode, so the refusal can
	// only come from the merge-time mode check, not from empty shards or
	// per-report validation.
	for i, srv := range srvs {
		mode := fo.ModeFELIP
		if i == 1 {
			mode = fo.ModeSPL
		}
		cl := httpapi.Dial(bases[i], nil)
		plan, err := cl.Plan(ctx)
		if err != nil {
			t.Fatal(err)
		}
		specs, err := plan.Specs()
		if err != nil {
			t.Fatal(err)
		}
		device, err := core.NewModeClient(specs, mode, plan.Epsilon, 75+uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		for row := 0; row < n/2; row++ {
			id := fmt.Sprintf("mm-%d-%d", i, row)
			reps, err := device.PerturbAll(httpapi.DeriveGroup(id, len(specs)),
				func(attr int) int { return ds.Value(row, attr) })
			if err != nil {
				t.Fatal(err)
			}
			for j, rep := range reps {
				if _, err := cl.ReportModeWithID(ctx, fmt.Sprintf("%s-%d", id, j), mode, rep); err != nil {
					t.Fatalf("shard %d row %d: %v", i, row, err)
				}
			}
		}
		_ = srv
	}

	if _, err := coord.FinalizeRound(ctx); err == nil {
		t.Fatal("coordinator merged a FELIP shard with an SPL shard")
	} else if !strings.Contains(err.Error(), "mixed-mode") {
		t.Fatalf("refusal does not name the mixed-mode merge: %v", err)
	}
}
