package cluster

import (
	"context"
	"fmt"
	"math"
	"net/http/httptest"
	"strings"
	"testing"

	"felip/internal/core"
	"felip/internal/dataset"
	"felip/internal/fo"
	"felip/internal/httpapi"
	"felip/internal/longitudinal"
)

// TestClusterLongitudinalMergeAndAnswer runs a 2-shard cluster through a
// memoized two-stage round: every shard's PartialState carries the
// longitudinal budgets, the coordinator merges them into its own longitudinal
// plan, and the merged estimates answer queries sanely. The memos persist
// across two rounds — the second round replays them, and the merge still
// closes with every device counted.
func TestClusterLongitudinalMergeAndAnswer(t *testing.T) {
	const n = 800
	ctx := context.Background()
	opts := core.Options{
		Strategy:     core.OHG,
		Epsilon:      2,
		Seed:         81,
		Longitudinal: &fo.Longitudinal{EpsPerm: 3},
	}
	h := newHarness(t, 2, n, opts, nil, fastRetry(4))

	schema := dataset.MixedSchema(2, 32, 2, 4)
	ds := dataset.NewNormal().Generate(schema, n, 83)
	plan, err := h.client.Plan(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Longitudinal == nil {
		t.Fatal("cluster plan dropped the longitudinal budgets")
	}
	specs, err := plan.Specs()
	if err != nil {
		t.Fatal(err)
	}
	stages := make([]longitudinal.Stages, len(specs))
	for g, sp := range specs {
		if stages[g], err = longitudinal.NewStages(*plan.Longitudinal, sp.L()); err != nil {
			t.Fatal(err)
		}
	}

	// Memoize once; report the same memos in both rounds through the
	// coordinator's shard routing.
	rng := fo.NewRand(85)
	memos := make([]int, n)
	groups := make([]int, n)
	for dev := 0; dev < n; dev++ {
		id := fmt.Sprintf("cdev-%d", dev)
		groups[dev] = httpapi.DeriveGroup(id, len(specs))
		cell := specs[groups[dev]].CellOf(func(attr int) int { return ds.Value(dev, attr) })
		if memos[dev], err = stages[groups[dev]].Memoize(cell, rng); err != nil {
			t.Fatal(err)
		}
	}
	for round := 1; round <= 2; round++ {
		for dev := 0; dev < n; dev++ {
			id := fmt.Sprintf("cdev-%d", dev)
			v, err := stages[groups[dev]].Perturb(memos[dev], rng)
			if err != nil {
				t.Fatal(err)
			}
			shardCl := h.client.Shard(id)
			if _, err := shardCl.ReportLongitudinalWithID(ctx, fmt.Sprintf("%s-r%d", id, round),
				core.Report{Group: groups[dev], Proto: fo.GRR, Value: v}); err != nil {
				t.Fatalf("round %d device %d: %v", round, dev, err)
			}
		}
		count, err := h.coord.FinalizeRound(ctx)
		if err != nil {
			t.Fatalf("round %d merge: %v", round, err)
		}
		if count != n {
			t.Fatalf("round %d merged %d reports, want %d", round, count, n)
		}
		resp, err := h.client.Query(ctx, "num0=0..15")
		if err != nil {
			t.Fatal(err)
		}
		if math.IsNaN(resp.Estimate) || resp.Estimate < -0.5 || resp.Estimate > 1.5 {
			t.Fatalf("round %d estimate %v out of range", round, resp.Estimate)
		}
		if round == 1 {
			if _, err := h.coord.NextRound(ctx); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// A shard that ran its round one-shot must be refused when the cluster plan is
// longitudinal (and vice versa): its reports came from a different channel, so
// folding its partials would corrupt the two-stage inversion. Mirrors the
// mixed-mode merge refusal.
func TestClusterLongitudinalMismatchMergeRefused(t *testing.T) {
	const n = 400
	ctx := context.Background()
	schema := dataset.MixedSchema(2, 32, 2, 4)
	ds := dataset.NewNormal().Generate(schema, n, 91)
	longOpts := core.Options{
		Strategy:     core.OHG,
		Epsilon:      2,
		Seed:         93,
		Longitudinal: &fo.Longitudinal{EpsPerm: 3},
	}
	oneShotOpts := longOpts
	oneShotOpts.Longitudinal = nil

	// Shard 0 runs the cluster's longitudinal plan; shard 1 is misconfigured
	// to one-shot.
	var bases []string
	for i, opts := range []core.Options{longOpts, oneShotOpts} {
		srv, err := httpapi.NewServer(schema, n, opts)
		if err != nil {
			t.Fatal(err)
		}
		srv.SetLogger(t.Logf)
		srv.SetShardID(fmt.Sprintf("shard-%d", i))
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		bases = append(bases, ts.URL)
	}
	coord, err := New(Config{
		Schema: schema,
		N:      n,
		Opts:   longOpts,
		Shards: bases,
		Logf:   t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Feed each shard reports valid under its own plan, so the refusal can
	// only come from the merge-time longitudinal check.
	for i, base := range bases {
		cl := httpapi.Dial(base, nil)
		plan, err := cl.Plan(ctx)
		if err != nil {
			t.Fatal(err)
		}
		specs, err := plan.Specs()
		if err != nil {
			t.Fatal(err)
		}
		rng := fo.NewRand(95 + uint64(i))
		for dev := 0; dev < n/2; dev++ {
			id := fmt.Sprintf("mm-%d-%d", i, dev)
			group := httpapi.DeriveGroup(id, len(specs))
			if i == 0 {
				stg, err := longitudinal.NewStages(*plan.Longitudinal, specs[group].L())
				if err != nil {
					t.Fatal(err)
				}
				cell := specs[group].CellOf(func(attr int) int { return ds.Value(dev, attr) })
				b, err := stg.Memoize(cell, rng)
				if err != nil {
					t.Fatal(err)
				}
				v, err := stg.Perturb(b, rng)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := cl.ReportLongitudinalWithID(ctx, id, core.Report{Group: group, Proto: fo.GRR, Value: v}); err != nil {
					t.Fatal(err)
				}
			} else {
				device, err := core.NewClient(specs, plan.Epsilon, 97+uint64(dev))
				if err != nil {
					t.Fatal(err)
				}
				rep, err := device.Perturb(group, func(attr int) int { return ds.Value(dev, attr) })
				if err != nil {
					t.Fatal(err)
				}
				if _, err := cl.ReportWithID(ctx, id, rep); err != nil {
					t.Fatal(err)
				}
			}
		}
	}

	if _, err := coord.FinalizeRound(ctx); err == nil {
		t.Fatal("coordinator merged a longitudinal shard with a one-shot shard")
	} else if !strings.Contains(err.Error(), "longitudinal") || !strings.Contains(err.Error(), "refusing the merge") {
		t.Fatalf("refusal does not name the longitudinal mismatch: %v", err)
	}
}
