package cluster

import (
	"context"
	"fmt"
	"net/http/httptest"
	"testing"

	"felip/internal/archive"
	"felip/internal/core"
	"felip/internal/dataset"
	"felip/internal/httpapi"
	"felip/internal/wire"
)

// TestCoordinatorArchiveRestart is the cluster acceptance for the archive: a
// coordinator that archives each merged round and is then killed (its process
// state gone, only the archive directory and the shards surviving) must come
// back answering the current round bit-identically, keep every archived round
// queryable, and catch up with shards that had already advanced past it.
func TestCoordinatorArchiveRestart(t *testing.T) {
	const (
		k       = 3
		n       = 1200
		devSeed = 501
	)
	schema := dataset.MixedSchema(2, 32, 2, 4)
	ds := dataset.NewNormal().Generate(schema, n, 503)
	opts := core.Options{Strategy: core.OHG, Epsilon: 1.4, Seed: 505}
	ctx := context.Background()
	dir := t.TempDir()

	// The coordinator's plan fingerprint, the way cmd/felipserver derives it.
	fpCol, err := core.NewCollector(schema, n, opts)
	if err != nil {
		t.Fatal(err)
	}
	fp := wire.NewPlanMessage(schema, fpCol.Epsilon(), fpCol.Mode(), fpCol.Longitudinal(), fpCol.Specs()).Fingerprint()
	openStore := func() *archive.Store {
		st, err := archive.Open(dir, archive.Options{PlanFingerprint: fp, Logf: t.Logf})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}

	// Shards outlive the coordinator crash.
	var bases []string
	for i := 0; i < k; i++ {
		srv, err := httpapi.NewServer(schema, n, opts)
		if err != nil {
			t.Fatal(err)
		}
		srv.SetLogger(t.Logf)
		srv.SetShardID(fmt.Sprintf("shard-%d", i))
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		bases = append(bases, ts.URL)
	}
	newCoordinator := func() (*Coordinator, *httptest.Server, *Client) {
		coord, err := New(Config{
			Schema:  schema,
			N:       n,
			Opts:    opts,
			Shards:  bases,
			Archive: openStore(),
			Retry:   fastRetry(4),
			Logf:    t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(coord.Handler())
		return coord, ts, NewClient(ts.URL, bases, nil, fastRetry(4))
	}

	runRound := func(cl *Client, specs []core.GridSpec, roundSeed uint64, round int) []float64 {
		for row := 0; row < n; row++ {
			id, rep := deviceReport(t, specs, opts.Epsilon, ds, row, roundSeed)
			if _, err := cl.ReportWithID(ctx, id, rep); err != nil {
				t.Fatalf("row %d: %v", row, err)
			}
		}
		if count, err := cl.Finalize(ctx); err != nil || count != n {
			t.Fatalf("finalize round %d: %d, %v", round, count, err)
		}
		ests := make([]float64, len(clusterQueries))
		for i, where := range clusterQueries {
			resp, err := cl.Query(ctx, where)
			if err != nil {
				t.Fatal(err)
			}
			if resp.Round != round {
				t.Fatalf("answer from round %d, want %d", resp.Round, round)
			}
			ests[i] = resp.Estimate
		}
		return ests
	}

	coord1, ts1, cl1 := newCoordinator()
	plan, err := cl1.Plan(ctx)
	if err != nil {
		t.Fatal(err)
	}
	specs, err := plan.Specs()
	if err != nil {
		t.Fatal(err)
	}
	want1 := runRound(cl1, specs, devSeed, 1)

	// Advance the shards to round 2, then kill the coordinator: the worst
	// window — the cluster is past the round the archive holds.
	if round, err := cl1.NextRound(ctx); err != nil || round != 2 {
		t.Fatalf("nextround: %d, %v", round, err)
	}
	ts1.Close()
	_ = coord1 // nothing to close; a kill -9 leaves no goodbye either

	// Restart from nothing but the archive directory.
	coord2, ts2, cl2 := newCoordinator()
	defer ts2.Close()
	if coord2.Round() != 1 {
		t.Fatalf("restored coordinator in round %d, want 1", coord2.Round())
	}
	st := coord2.Status()
	if !st.Finalized || st.Reports != n || st.ServedRound != 1 {
		t.Fatalf("restored status = %+v", st)
	}
	for i, where := range clusterQueries {
		resp, err := cl2.Query(ctx, where)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Round != 1 || resp.Estimate != want1[i] {
			t.Fatalf("restored %q = %+v, want round-1 estimate %v (not bit-identical)", where, resp, want1[i])
		}
	}

	// Catch up: the shards are already in round 2, so the idempotent advance
	// brings the coordinator level without disturbing them.
	if round, err := cl2.NextRound(ctx); err != nil || round != 2 {
		t.Fatalf("catch-up nextround: %d, %v", round, err)
	}
	want2 := runRound(cl2, specs, devSeed+100000, 2)

	// Historical plane: round 1 stays queryable by round targeting after
	// round 2 takes over, bit-identical to what it answered before the crash.
	direct := httpapi.Dial(ts2.URL, ts2.Client())
	for i, where := range clusterQueries {
		resp, err := direct.QueryRound(ctx, 1, where)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Estimate != want1[i] {
			t.Fatalf("archived round-1 %q = %v, want %v", where, resp.Estimate, want1[i])
		}
	}
	rounds, err := direct.Rounds(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(rounds.Rounds) != 2 || rounds.Served != 2 || rounds.Current != 2 {
		t.Fatalf("rounds listing = %+v", rounds)
	}

	// One more kill-and-restore, now with two archived rounds: the newest one
	// is served and both stay queryable.
	ts2.Close()
	coord3, ts3, cl3 := newCoordinator()
	defer ts3.Close()
	if coord3.Round() != 2 {
		t.Fatalf("second restore landed in round %d, want 2", coord3.Round())
	}
	for i, where := range clusterQueries {
		resp, err := cl3.Query(ctx, where)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Round != 2 || resp.Estimate != want2[i] {
			t.Fatalf("second restore %q = %+v, want round-2 estimate %v", where, resp, want2[i])
		}
	}
	direct3 := httpapi.Dial(ts3.URL, ts3.Client())
	for i, where := range clusterQueries {
		resp, err := direct3.QueryRound(ctx, 1, where)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Estimate != want1[i] {
			t.Fatalf("round-1 after second restore: %q = %v, want %v", where, resp.Estimate, want1[i])
		}
	}
}
