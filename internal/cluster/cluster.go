// Package cluster scales FELIP collection horizontally without changing its
// output: a fleet of shard servers ingests disjoint slices of the user
// population, and a coordinator merges their sealed partial aggregates into
// the exact aggregator a single server would have built from every report.
//
// The exactness rests on one property: shards export raw integer count
// vectors (per-value support counts, *before* estimation — see
// fo.PartialState), and integer count folding commutes. Summing the shards'
// vectors yields bit-for-bit the vector one collector folding the union
// stream holds, and the coordinator runs the float estimation pipeline
// exactly once over that sum — so a 3-shard cluster's query answers are
// bit-identical to single-node collection, not merely statistically
// equivalent. The privacy argument is untouched: a partial state is a
// deterministic function of the ε-LDP reports it folded, so shipping it to
// the coordinator consumes no extra budget.
//
// Topology:
//
//	device ──report──▶ shard_i (i = ShardFor(report_id))   ingest plane
//	coordinator ──pull──▶ shard_i /v1/shard/state           round finalize
//	analyst ──query──▶ coordinator /v1/query                serving plane
//
// Every cross-process step is idempotent — reports carry idempotency keys,
// the state pull re-serves identical bytes, round transitions name their
// target round — so the coordinator drives the round lifecycle with plain
// retries and a shard that crashes mid-round replays its WAL and rejoins
// without the cluster noticing more than latency.
package cluster

import "hash/fnv"

// shardSalt keeps the shard hash independent of httpapi.DeriveGroup's group
// hash. Both partition by report ID; with the same hash a cluster of S shards
// running a plan of G groups would correlate the two partitions (in the worst
// case S == G, shard i would only ever see group i and every shard's plan
// coverage would collapse).
const shardSalt = "felip-shard\x00"

// mix64 is a splitmix64-style finalizer. FNV-1a mod 2^k is a function of the
// byte stream's low bits alone (xor and multiply never propagate downward),
// so the salt by itself does NOT decorrelate a modulo from DeriveGroup's —
// the finalizer spreads every input bit across the low bits first.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// ShardFor assigns a report to one of n shards by hashing its report ID —
// stateless and idempotent, like httpapi.DeriveGroup: a device retrying the
// same report always lands on the same shard, so the shard's idempotency
// index can do its job.
//
// ShardFor is the fixed-fleet scheme (hash mod n): correct while the shard
// list never changes, but adding shard n+1 reshuffles nearly every key.
// Elastic deployments route with RendezvousFor over the live membership
// instead.
func ShardFor(reportID string, n int) int {
	h := fnv.New64a()
	h.Write([]byte(shardSalt))
	h.Write([]byte(reportID))
	return int(mix64(h.Sum64()) % uint64(n))
}

// RendezvousFor assigns a report to one of the named logical shards by
// highest-random-weight (rendezvous) hashing: each (shard name, key) pair is
// hashed independently and the highest score owns the key. Two properties
// make this the elastic cluster's router:
//
//   - Stability under growth: adding shard n+1 re-scores every key against
//     one new name, so exactly the keys the new name wins — in expectation
//     1/(n+1) of them — move, and every other key keeps its owner. Removing
//     a name only redistributes that name's keys.
//   - Identity, not address: the domain is logical shard *names*, which
//     survive failover. A promoted follower inherits its primary's name, so
//     every key — and every device retry carrying an idempotency key the old
//     primary's replicated dedup index already knows — keeps routing to the
//     same logical shard.
//
// The score hash reuses shardSalt + mix64, so rendezvous routing stays
// decorrelated from httpapi.DeriveGroup's group assignment exactly like
// ShardFor. Ties (astronomically unlikely) break toward the lexically
// smallest name so every router agrees. names must be non-empty.
func RendezvousFor(reportID string, names []string) int {
	best := -1
	var bestScore uint64
	for i, name := range names {
		h := fnv.New64a()
		h.Write([]byte(shardSalt))
		h.Write([]byte(name))
		h.Write([]byte{0}) // separator: ("ab","c") must not collide with ("a","bc")
		h.Write([]byte(reportID))
		score := mix64(h.Sum64())
		if best < 0 || score > bestScore || (score == bestScore && name < names[best]) {
			best, bestScore = i, score
		}
	}
	return best
}
