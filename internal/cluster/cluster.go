// Package cluster scales FELIP collection horizontally without changing its
// output: a fleet of shard servers ingests disjoint slices of the user
// population, and a coordinator merges their sealed partial aggregates into
// the exact aggregator a single server would have built from every report.
//
// The exactness rests on one property: shards export raw integer count
// vectors (per-value support counts, *before* estimation — see
// fo.PartialState), and integer count folding commutes. Summing the shards'
// vectors yields bit-for-bit the vector one collector folding the union
// stream holds, and the coordinator runs the float estimation pipeline
// exactly once over that sum — so a 3-shard cluster's query answers are
// bit-identical to single-node collection, not merely statistically
// equivalent. The privacy argument is untouched: a partial state is a
// deterministic function of the ε-LDP reports it folded, so shipping it to
// the coordinator consumes no extra budget.
//
// Topology:
//
//	device ──report──▶ shard_i (i = ShardFor(report_id))   ingest plane
//	coordinator ──pull──▶ shard_i /v1/shard/state           round finalize
//	analyst ──query──▶ coordinator /v1/query                serving plane
//
// Every cross-process step is idempotent — reports carry idempotency keys,
// the state pull re-serves identical bytes, round transitions name their
// target round — so the coordinator drives the round lifecycle with plain
// retries and a shard that crashes mid-round replays its WAL and rejoins
// without the cluster noticing more than latency.
package cluster

import "hash/fnv"

// shardSalt keeps the shard hash independent of httpapi.DeriveGroup's group
// hash. Both partition by report ID; with the same hash a cluster of S shards
// running a plan of G groups would correlate the two partitions (in the worst
// case S == G, shard i would only ever see group i and every shard's plan
// coverage would collapse).
const shardSalt = "felip-shard\x00"

// ShardFor assigns a report to one of n shards by hashing its report ID —
// stateless and idempotent, like httpapi.DeriveGroup: a device retrying the
// same report always lands on the same shard, so the shard's idempotency
// index can do its job.
func ShardFor(reportID string, n int) int {
	h := fnv.New64a()
	h.Write([]byte(shardSalt))
	h.Write([]byte(reportID))
	x := h.Sum64()
	// FNV-1a mod 2^k is a function of the byte stream's low bits alone (xor
	// and multiply never propagate downward), so the salt by itself does NOT
	// decorrelate this modulo from DeriveGroup's — a splitmix64-style
	// finalizer spreads every input bit across the low bits first.
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int(x % uint64(n))
}
