package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"sync"

	"felip/internal/archive"
	"felip/internal/core"
	"felip/internal/domain"
	"felip/internal/httpapi"
	"felip/internal/metrics"
	"felip/internal/serve"
	"felip/internal/wire"
)

// Config describes a coordinator's cluster.
type Config struct {
	// Schema, N and Opts plan the round — identical on every node. BuildPlan
	// is deterministic in them, so the coordinator and every shard publish
	// the same plan without coordination.
	Schema *domain.Schema
	N      int
	Opts   core.Options
	// Shards are the shard servers' base URLs; their order is the cluster's
	// shard numbering (ShardFor indexes into it).
	Shards []string
	// HTTPClient carries the coordinator's shard calls (nil =
	// http.DefaultClient).
	HTTPClient *http.Client
	// Retry is the per-shard-call retry policy; state pulls and round
	// transitions are idempotent, so retrying is always safe.
	Retry httpapi.RetryPolicy
	// Archive, when non-nil, persists every merged round: the coordinator
	// restores the newest archived round at startup (answers stay
	// bit-identical across a kill -9) and serves historical queries from the
	// store. The store should be opened with the plan's fingerprint so a
	// drifted configuration is refused.
	Archive *archive.Store
	// Logf is the operational log (nil = log.Printf).
	Logf func(format string, args ...any)
}

// ShardInfo is the coordinator's per-shard roll-up, refreshed at each round
// finalize from the shards' state messages.
type ShardInfo struct {
	// ID is the shard's self-reported name; Base its URL.
	ID   string `json:"id"`
	Base string `json:"base"`
	// Reports and Rejected are the shard's accepted and refused totals for
	// the finalized round.
	Reports  int `json:"reports"`
	Rejected int `json:"rejected"`
	// WALReplayed is the shard's crash-recovery counter: report records it
	// replayed from its write-ahead log since startup.
	WALReplayed int `json:"wal_replayed"`
}

// Coordinator drives collection rounds across a fleet of shard servers and
// serves the merged result. One coordinator owns the round lifecycle:
// FinalizeRound pulls every shard's sealed partial state, merges the integer
// counts, estimates exactly once, and swaps the merged engine into its query
// plane; NextRound then walks every shard to the next round idempotently.
type Coordinator struct {
	schema  *domain.Schema
	planN   int
	opts    core.Options
	plan    wire.PlanMessage
	logf    func(format string, args ...any)
	bases   []string
	clients []*httpapi.Client
	qp      *httpapi.QueryPlane
	// store archives merged rounds; nil = archiving disabled.
	store *archive.Store

	// lifecycle serializes FinalizeRound/AdvanceRound so two operators cannot
	// interleave round transitions; mu guards the snapshot fields and is never
	// held across a network call.
	lifecycle sync.Mutex
	mu        sync.Mutex
	round     int
	finalized bool
	finalN    int
	shards    []ShardInfo
}

// New plans the round and dials the shards. The plan is computed locally —
// deterministically identical to every shard's — so devices may fetch it from
// the coordinator or any shard interchangeably.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("cluster: no shards configured")
	}
	col, err := core.NewCollector(cfg.Schema, cfg.N, cfg.Opts)
	if err != nil {
		return nil, err
	}
	logf := cfg.Logf
	if logf == nil {
		logf = log.Printf
	}
	c := &Coordinator{
		schema: cfg.Schema,
		planN:  cfg.N,
		opts:   cfg.Opts,
		plan:   wire.NewPlanMessage(cfg.Schema, col.Epsilon(), col.Specs()),
		logf:   logf,
		bases:  append([]string(nil), cfg.Shards...),
		qp:     httpapi.NewQueryPlane(cfg.Schema, logf),
		round:  1,
	}
	for _, base := range c.bases {
		c.clients = append(c.clients, httpapi.DialRetrying(base, cfg.HTTPClient, cfg.Retry))
	}
	if cfg.Archive != nil {
		c.store = cfg.Archive
		c.qp.SetHistory(cfg.Archive)
		if err := c.restoreLatest(); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// restoreLatest rebuilds the serving plane from the newest archived merged
// round, so a coordinator killed and restarted keeps answering — for the
// restored round and every archived one — bit-identically to before the
// crash. The round cursor lands on the restored round, finalized: if the
// cluster had already advanced past it, the next idempotent AdvanceRound
// simply catches the coordinator up (shards already in the target round
// answer 200).
func (c *Coordinator) restoreLatest() error {
	latest := c.store.LatestRound()
	if latest == 0 {
		return nil
	}
	snap, err := c.store.Load(latest)
	if err != nil {
		return fmt.Errorf("cluster: restoring archived round %d: %w", latest, err)
	}
	eng, err := serve.FromSnapshot(snap.Aggregate)
	if err == nil {
		err = eng.Warmup()
	}
	if err != nil {
		return fmt.Errorf("cluster: rebuilding round %d engine from archive: %w", latest, err)
	}
	c.mu.Lock()
	c.round = latest
	c.finalized = true
	c.finalN = snap.Reports
	c.mu.Unlock()
	c.qp.Serve(eng, latest)
	c.logf("cluster: restored round %d from archive (%d reports)", latest, snap.Reports)
	return nil
}

// archiveRound persists the merged round. Failures are logged, not returned:
// the shards' sealed states remain re-pullable, so a failed archive write
// never loses the round — re-running finalize after a restart reproduces it
// exactly.
func (c *Coordinator) archiveRound(col *core.Collector, agg *core.Aggregator, round int) {
	snap := archive.RoundSnapshot{
		Round:           round,
		PlanFingerprint: c.plan.Fingerprint(),
		Reports:         agg.N(),
		Aggregate:       agg.Snapshot(),
	}
	if parts, err := col.ExportPartials(); err != nil {
		c.logf("cluster: exporting merged round %d partial states for archive: %v", round, err)
	} else {
		snap.Partials = wire.GridStates(parts)
	}
	if err := c.store.WriteRound(snap); err != nil {
		c.logf("cluster: archiving merged round %d: %v", round, err)
	}
}

// Round reports the collection round the cluster is in (1-based).
func (c *Coordinator) Round() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.round
}

// shardGauge names a per-shard metric; shards are identified by cluster index
// so the gauge set is stable across shard restarts and renames.
func shardGauge(i int, what string) *metrics.Gauge {
	return metrics.GetGauge(fmt.Sprintf("cluster.shard%d.%s", i, what))
}

// FinalizeRound closes the round cluster-wide, exactly once: it pulls every
// shard's sealed partial-aggregate state (the first pull is what seals the
// shard), verifies each message's checksum and round, merges the integer
// count vectors into one collector, runs the estimation pipeline once over
// the sums, and swaps the resulting engine into the query plane fully warmed.
// Repeat calls return the same report count. The state pulls ride the
// client's retry policy; a pull that keeps failing aborts the finalize, which
// can simply be retried — no shard state is consumed by a failed attempt.
func (c *Coordinator) FinalizeRound(ctx context.Context) (int, error) {
	c.lifecycle.Lock()
	defer c.lifecycle.Unlock()
	c.mu.Lock()
	if c.finalized {
		n := c.finalN
		c.mu.Unlock()
		return n, nil
	}
	round := c.round
	c.mu.Unlock()

	// Pull every shard's state concurrently; each pull seals its shard. The
	// merge below runs in shard order, though order cannot matter: integer
	// count addition commutes.
	msgs := make([]wire.ShardStateMessage, len(c.clients))
	errs := make([]error, len(c.clients))
	var wg sync.WaitGroup
	for i, cl := range c.clients {
		wg.Add(1)
		go func(i int, cl *httpapi.Client) {
			defer wg.Done()
			msgs[i], errs[i] = cl.ShardState(ctx)
		}(i, cl)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return 0, fmt.Errorf("cluster: shard %d (%s) state pull: %w", i, c.bases[i], err)
		}
	}

	col, err := core.NewCollector(c.schema, c.planN, c.opts)
	if err != nil {
		return 0, err
	}
	infos := make([]ShardInfo, len(msgs))
	for i, msg := range msgs {
		if msg.Round != round {
			return 0, fmt.Errorf("cluster: shard %d (%s) is in round %d, coordinator in round %d",
				i, c.bases[i], msg.Round, round)
		}
		states, err := msg.States()
		if err != nil {
			return 0, fmt.Errorf("cluster: shard %d (%s): %w", i, c.bases[i], err)
		}
		if err := col.ImportPartials(states); err != nil {
			return 0, fmt.Errorf("cluster: merging shard %d (%s): %w", i, c.bases[i], err)
		}
		infos[i] = ShardInfo{
			ID:          msg.ShardID,
			Base:        c.bases[i],
			Reports:     msg.Reports,
			Rejected:    msg.Rejected,
			WALReplayed: msg.WALReplayed,
		}
		c.logf("cluster: shard %d (%s) round %d: %d reports, %d rejected, %d wal-replayed",
			i, msg.ShardID, round, msg.Reports, msg.Rejected, msg.WALReplayed)
	}

	agg, err := col.Finalize()
	if err != nil {
		return 0, fmt.Errorf("cluster: finalizing merged round %d: %w", round, err)
	}
	eng, err := serve.NewEngine(agg)
	if err == nil {
		err = eng.Warmup()
	}
	if err != nil {
		return 0, fmt.Errorf("cluster: building round %d engine: %w", round, err)
	}

	for i, info := range infos {
		shardGauge(i, "reports").Set(int64(info.Reports))
		shardGauge(i, "rejected").Set(int64(info.Rejected))
		shardGauge(i, "wal_replayed").Set(int64(info.WALReplayed))
	}
	c.mu.Lock()
	c.finalized = true
	c.finalN = agg.N()
	c.shards = infos
	c.mu.Unlock()
	// Swap in after the snapshot fields: a status probe may briefly see
	// finalized without a served round, never the reverse.
	c.qp.Serve(eng, round)
	if c.store != nil {
		c.archiveRound(col, agg, round)
	}
	return agg.N(), nil
}

// AdvanceRound opens the next collection round cluster-wide. target names the
// round the caller wants open (0 = current+1): an already-applied transition
// succeeds without side effects, a skip is refused. Each shard is driven with
// the same idempotent transition, so a coordinator that crashed after
// advancing only some shards simply retries — shards already in the target
// round answer 200 and the stragglers catch up.
func (c *Coordinator) AdvanceRound(ctx context.Context, target int) (int, error) {
	c.lifecycle.Lock()
	defer c.lifecycle.Unlock()
	c.mu.Lock()
	cur, finalized := c.round, c.finalized
	c.mu.Unlock()
	if target == cur {
		return cur, nil
	}
	if target != 0 && target != cur+1 {
		return 0, fmt.Errorf("cluster: round is %d; cannot jump to round %d", cur, target)
	}
	if !finalized {
		return 0, fmt.Errorf("cluster: round %d not finalized; finalize before opening the next round", cur)
	}
	next := cur + 1
	for i, cl := range c.clients {
		got, err := cl.NextRoundTo(ctx, next)
		if err != nil {
			return 0, fmt.Errorf("cluster: advancing shard %d (%s) to round %d: %w", i, c.bases[i], next, err)
		}
		if got != next {
			return 0, fmt.Errorf("cluster: shard %d (%s) reports round %d after transition to %d",
				i, c.bases[i], got, next)
		}
	}
	c.mu.Lock()
	c.round = next
	c.finalized = false
	c.finalN = 0
	c.mu.Unlock()
	return next, nil
}

// NextRound advances the cluster one round; the finalized round keeps
// serving queries from the coordinator while the shards collect the next.
func (c *Coordinator) NextRound(ctx context.Context) (int, error) {
	return c.AdvanceRound(ctx, 0)
}

// ClusterStatus is the operator view returned by the coordinator's
// GET /v1/status.
type ClusterStatus struct {
	// Round is the collection round the cluster is in; ServedRound the round
	// answering queries (0 until the first finalize).
	Round       int  `json:"round"`
	ServedRound int  `json:"served_round,omitempty"`
	Finalized   bool `json:"finalized"`
	// Reports is the merged accepted-report total of the finalized round.
	Reports int `json:"reports"`
	// Shards is the per-shard roll-up from the last finalize — including each
	// shard's rejected-submission and WAL-replay counters, so one status call
	// shows both misbehaving clients and crash recoveries anywhere in the
	// cluster.
	Shards []ShardInfo `json:"shards,omitempty"`
	// Metrics is the process-wide instrument snapshot (includes the
	// cluster.shardK.* gauges).
	Metrics map[string]int64 `json:"metrics,omitempty"`
}

// Status reports the cluster round state and per-shard counters.
func (c *Coordinator) Status() ClusterStatus {
	c.mu.Lock()
	st := ClusterStatus{
		Round:     c.round,
		Finalized: c.finalized,
		Reports:   c.finalN,
		Shards:    append([]ShardInfo(nil), c.shards...),
	}
	c.mu.Unlock()
	if round, ok := c.qp.ServedRound(); ok {
		st.ServedRound = round
	}
	st.Metrics = metrics.Snapshot()
	return st
}

// Handler returns the coordinator's HTTP surface: the plan and query
// endpoints a single-node server exposes (so analysts are oblivious to the
// topology), plus cluster-wide finalize, round transition, and status.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/plan", func(w http.ResponseWriter, _ *http.Request) {
		c.writeJSON(w, http.StatusOK, c.plan)
	})
	mux.HandleFunc("GET /v1/query", c.qp.HandleQuery)
	mux.HandleFunc("POST /v1/query", c.qp.HandleQueryBatch)
	mux.HandleFunc("GET /v1/rounds", c.qp.HandleRounds(c.Round))
	mux.HandleFunc("POST /v1/finalize", func(w http.ResponseWriter, r *http.Request) {
		n, err := c.FinalizeRound(r.Context())
		if err != nil {
			c.writeError(w, http.StatusBadGateway, err)
			return
		}
		c.writeJSON(w, http.StatusOK, map[string]int{"reports": n})
	})
	mux.HandleFunc("POST /v1/nextround", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Round int `json:"round"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil && !errors.Is(err, io.EOF) {
			c.writeError(w, http.StatusBadRequest, fmt.Errorf("invalid nextround body: %w", err))
			return
		}
		round, err := c.AdvanceRound(r.Context(), req.Round)
		if err != nil {
			c.writeError(w, http.StatusConflict, err)
			return
		}
		c.writeJSON(w, http.StatusOK, map[string]int{"round": round})
	})
	mux.HandleFunc("GET /v1/status", func(w http.ResponseWriter, _ *http.Request) {
		c.writeJSON(w, http.StatusOK, c.Status())
	})
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, _ *http.Request) {
		c.writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
	})
	return mux
}

func (c *Coordinator) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		c.logf("cluster: encoding %T response: %v", v, err)
	}
}

func (c *Coordinator) writeError(w http.ResponseWriter, status int, err error) {
	c.writeJSON(w, status, map[string]string{"error": err.Error()})
}
