package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"sync"
	"time"

	"felip/internal/archive"
	"felip/internal/core"
	"felip/internal/domain"
	"felip/internal/fo"
	"felip/internal/httpapi"
	"felip/internal/metrics"
	"felip/internal/serve"
	"felip/internal/wire"
)

// Config describes a coordinator's cluster.
type Config struct {
	// Schema, N and Opts plan the round — identical on every node. BuildPlan
	// is deterministic in them, so the coordinator and every shard publish
	// the same plan without coordination.
	Schema *domain.Schema
	N      int
	Opts   core.Options
	// Shards are statically configured shard base URLs, seeded into the
	// membership as logical shards shard0..shardN-1 — a fixed fleet exempt
	// from heartbeat eviction. May be empty: an elastic cluster starts with
	// no members and shards register themselves at POST /v1/shard/register.
	Shards []string
	// HeartbeatTimeout is how stale a registered shard's heartbeat may grow
	// before the coordinator declares it dead and promotes its follower
	// (0 disables liveness eviction; registrations are still accepted).
	HeartbeatTimeout time.Duration
	// Clock overrides the membership's time source (tests; nil = time.Now).
	Clock func() time.Time
	// HTTPClient carries the coordinator's shard calls (nil =
	// http.DefaultClient).
	HTTPClient *http.Client
	// Retry is the per-shard-call retry policy; state pulls and round
	// transitions are idempotent, so retrying is always safe.
	Retry httpapi.RetryPolicy
	// Archive, when non-nil, persists every merged round: the coordinator
	// restores the newest archived round at startup (answers stay
	// bit-identical across a kill -9) and serves historical queries from the
	// store. The store should be opened with the plan's fingerprint so a
	// drifted configuration is refused.
	Archive *archive.Store
	// Logf is the operational log (nil = log.Printf).
	Logf func(format string, args ...any)
}

// ShardInfo is the coordinator's per-shard roll-up, refreshed at each round
// finalize from the shards' state messages.
type ShardInfo struct {
	// ID is the shard's self-reported name; Name the logical membership name
	// it is registered under; Base its URL at pull time.
	ID   string `json:"id"`
	Name string `json:"name,omitempty"`
	Base string `json:"base"`
	// Reports and Rejected are the shard's accepted and refused totals for
	// the finalized round.
	Reports  int `json:"reports"`
	Rejected int `json:"rejected"`
	// WALReplayed is the shard's crash-recovery counter: report records it
	// replayed from its write-ahead log since startup.
	WALReplayed int `json:"wal_replayed"`
	// Mode is the reporting mode the shard ran the round under ("FELIP",
	// "SPL", "RS+FD"). Always the coordinator's own mode — a shard claiming
	// another mode fails the merge before any ShardInfo is published.
	Mode string `json:"mode"`
}

// Coordinator drives collection rounds across a fleet of shard servers and
// serves the merged result. One coordinator owns the round lifecycle:
// FinalizeRound pulls every shard's sealed partial state, merges the integer
// counts, estimates exactly once, and swaps the merged engine into its query
// plane; NextRound then walks every shard to the next round idempotently. It
// also owns the cluster's membership: shards register and heartbeat with it,
// and when a primary's heartbeat lapses it promotes the shard's follower.
type Coordinator struct {
	schema *domain.Schema
	planN  int
	opts   core.Options
	plan   wire.PlanMessage
	// mode is the cluster's reporting mode, fixed by the plan. Every shard
	// state pulled at finalize must claim it; a mixed-mode merge is refused.
	mode fo.ReportMode
	// long is the cluster's longitudinal two-stage configuration (nil =
	// one-shot). Every shard state pulled at finalize must carry the identical
	// budgets; a mixed longitudinal/one-shot merge is refused.
	long  *fo.Longitudinal
	logf  func(format string, args ...any)
	hc    *http.Client
	retry httpapi.RetryPolicy
	qp    *httpapi.QueryPlane
	// store archives merged rounds; nil = archiving disabled.
	store *archive.Store

	// lifecycle serializes FinalizeRound/AdvanceRound so two operators cannot
	// interleave round transitions; mu guards the snapshot fields plus the
	// membership and the dial cache, and is never held across a network call.
	lifecycle sync.Mutex
	mu        sync.Mutex
	round     int
	finalized bool
	// sealing is true while a FinalizeRound is pulling shard states: a shard
	// registering in that window joins the NEXT round, so the in-flight
	// seal's pull set never changes under it.
	sealing   bool
	finalN    int
	shards    []ShardInfo
	members   *Membership
	failovers int64
	dials     map[string]*httpapi.Client
}

// New plans the round and seeds the membership from cfg.Shards (which may be
// empty — an elastic cluster starts bare and shards register themselves).
// The plan is computed locally — deterministically identical to every
// shard's — so devices may fetch it from the coordinator or any shard
// interchangeably.
func New(cfg Config) (*Coordinator, error) {
	col, err := core.NewCollector(cfg.Schema, cfg.N, cfg.Opts)
	if err != nil {
		return nil, err
	}
	logf := cfg.Logf
	if logf == nil {
		logf = log.Printf
	}
	c := &Coordinator{
		schema:  cfg.Schema,
		planN:   cfg.N,
		opts:    cfg.Opts,
		plan:    wire.NewPlanMessage(cfg.Schema, col.Epsilon(), col.Mode(), col.Longitudinal(), col.Specs()),
		mode:    col.Mode(),
		long:    col.Longitudinal(),
		logf:    logf,
		hc:      cfg.HTTPClient,
		retry:   cfg.Retry,
		qp:      httpapi.NewQueryPlane(cfg.Schema, logf),
		round:   1,
		members: newMembership(cfg.Clock, cfg.HeartbeatTimeout),
		dials:   make(map[string]*httpapi.Client),
	}
	c.members.seed(cfg.Shards, 1)
	c.updateMembershipGaugesLocked()
	if cfg.Archive != nil {
		c.store = cfg.Archive
		c.qp.SetHistory(cfg.Archive)
		if err := c.restoreLatest(); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// dialLocked returns the cached client for a base URL. Caller holds c.mu.
func (c *Coordinator) dialLocked(base string) *httpapi.Client {
	cl, ok := c.dials[base]
	if !ok {
		cl = httpapi.DialRetrying(base, c.hc, c.retry)
		c.dials[base] = cl
	}
	return cl
}

// restoreLatest rebuilds the serving plane from the newest archived merged
// round, so a coordinator killed and restarted keeps answering — for the
// restored round and every archived one — bit-identically to before the
// crash. The round cursor lands on the restored round, finalized: if the
// cluster had already advanced past it, the next idempotent AdvanceRound
// simply catches the coordinator up (shards already in the target round
// answer 200).
func (c *Coordinator) restoreLatest() error {
	latest := c.store.LatestRound()
	if latest == 0 {
		return nil
	}
	snap, err := c.store.Load(latest)
	if err != nil {
		return fmt.Errorf("cluster: restoring archived round %d: %w", latest, err)
	}
	eng, err := serve.FromSnapshot(snap.Aggregate)
	if err == nil {
		err = eng.Warmup()
	}
	if err != nil {
		return fmt.Errorf("cluster: rebuilding round %d engine from archive: %w", latest, err)
	}
	c.mu.Lock()
	c.round = latest
	c.finalized = true
	c.finalN = snap.Reports
	c.mu.Unlock()
	c.qp.Serve(eng, latest)
	c.logf("cluster: restored round %d from archive (%d reports)", latest, snap.Reports)
	return nil
}

// archiveRound persists the merged round. Failures are logged, not returned:
// the shards' sealed states remain re-pullable, so a failed archive write
// never loses the round — re-running finalize after a restart reproduces it
// exactly.
func (c *Coordinator) archiveRound(col *core.Collector, agg *core.Aggregator, round int) {
	snap := archive.RoundSnapshot{
		Round:           round,
		PlanFingerprint: c.plan.Fingerprint(),
		Reports:         agg.N(),
		Aggregate:       agg.Snapshot(),
	}
	if parts, err := col.ExportPartials(); err != nil {
		c.logf("cluster: exporting merged round %d partial states for archive: %v", round, err)
	} else {
		snap.Partials = wire.GridStates(parts)
	}
	if err := c.store.WriteRound(snap); err != nil {
		c.logf("cluster: archiving merged round %d: %v", round, err)
	}
}

// Round reports the collection round the cluster is in (1-based).
func (c *Coordinator) Round() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.round
}

// RegisterShard applies a shard (or follower) registration. A primary that
// registers while a round is sealing — or after it sealed — joins the next
// round: the in-flight merge's pull set must not change under it, and the
// response's JoinRound tells the shard which round to open locally
// (httpapi.Server.BeginAtRound) so the cluster and the shard agree from the
// first report.
func (c *Coordinator) RegisterShard(msg wire.RegisterMessage) (wire.RegisterResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	join := c.round
	if c.sealing || c.finalized {
		join = c.round + 1
	}
	epoch, joined, err := c.members.register(msg, join)
	if err != nil {
		return wire.RegisterResponse{}, err
	}
	c.updateMembershipGaugesLocked()
	c.logf("cluster: registered %s %q at %s (epoch %d, joins round %d)", msg.Role, msg.Name, msg.Base, epoch, joined)
	return wire.RegisterResponse{Epoch: epoch, JoinRound: joined}, nil
}

// Heartbeat records a node's liveness report and refreshes the per-shard
// replication-lag gauges.
func (c *Coordinator) Heartbeat(msg wire.HeartbeatMessage) (wire.HeartbeatResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	epoch, err := c.members.heartbeat(msg)
	if err != nil {
		return wire.HeartbeatResponse{}, err
	}
	c.updateMembershipGaugesLocked()
	return wire.HeartbeatResponse{Epoch: epoch}, nil
}

// MembershipSnapshot renders the routable membership for clients.
func (c *Coordinator) MembershipSnapshot() wire.MembershipMessage {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.members.snapshot(c.round)
}

// Epoch reports the current membership epoch.
func (c *Coordinator) Epoch() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.members.epoch
}

// updateMembershipGaugesLocked refreshes the membership gauges. Caller holds
// c.mu.
func (c *Coordinator) updateMembershipGaugesLocked() {
	metrics.GetGauge("cluster.members").Set(int64(len(c.members.order)))
	metrics.GetGauge("cluster.epoch").Set(c.members.epoch)
	metrics.GetGauge("cluster.failovers_total").Set(c.failovers)
	for i, name := range c.members.order {
		segs, _ := lagOf(c.members.members[name].follower)
		shardGauge(i, "replication_lag_segments").Set(int64(segs))
	}
}

// CheckLiveness evaluates every registered primary's heartbeat age and fails
// over the lapsed ones that have a live follower: the follower is asked to
// verify its shipped-segment CRC chain, replay it, and take over
// (POST /v1/replica/promote); only after it acknowledges does the membership
// swap the logical shard's address to the follower and bump the epoch, so
// routing clients re-resolve the same shard name to the new node. A lapsed
// primary without a live follower stays dead in place — rerouting its keys
// would silently drop reports it already acknowledged. Returns the logical
// shards that failed over. felipserver runs this on a timer; tests drive it
// with an injected clock.
func (c *Coordinator) CheckLiveness(ctx context.Context) ([]string, error) {
	c.mu.Lock()
	candidates := c.members.lapsed()
	round := c.round
	clients := make([]*httpapi.Client, len(candidates))
	for i, cand := range candidates {
		clients[i] = c.dialLocked(cand.followerBase)
	}
	c.mu.Unlock()

	var promoted []string
	var firstErr error
	for i, cand := range candidates {
		if err := ctx.Err(); err != nil {
			return promoted, err
		}
		c.logf("cluster: shard %q heartbeat lapsed; promoting follower at %s", cand.name, cand.followerBase)
		resp, err := clients[i].PromoteReplica(ctx, round)
		if err != nil {
			c.logf("cluster: promoting %q follower at %s: %v (will retry next liveness check)",
				cand.name, cand.followerBase, err)
			if firstErr == nil {
				firstErr = fmt.Errorf("cluster: promoting %q follower: %w", cand.name, err)
			}
			continue
		}
		c.mu.Lock()
		if c.members.promote(cand.name, cand.followerBase) {
			c.failovers++
			promoted = append(promoted, cand.name)
			c.updateMembershipGaugesLocked()
			c.logf("cluster: promoted %q follower at %s (round %d, %d reports replayed, epoch %d)",
				cand.name, cand.followerBase, resp.Round, resp.Replayed, c.members.epoch)
		}
		c.mu.Unlock()
	}
	return promoted, firstErr
}

// StartLiveness runs CheckLiveness on a ticker until the context is
// cancelled. The interval defaults to a third of the heartbeat timeout.
func (c *Coordinator) StartLiveness(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		interval = c.members.timeout / 3
	}
	if interval <= 0 {
		return
	}
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				if _, err := c.CheckLiveness(ctx); err != nil && ctx.Err() == nil {
					c.logf("cluster: liveness check: %v", err)
				}
			}
		}
	}()
}

// shardGauge names a per-shard metric; shards are identified by membership
// index so the gauge set is stable across shard restarts and renames.
func shardGauge(i int, what string) *metrics.Gauge {
	return metrics.GetGauge(fmt.Sprintf("cluster.shard%d.%s", i, what))
}

// describeLongitudinal renders an optional longitudinal config for refusal
// messages.
func describeLongitudinal(l *fo.Longitudinal) string {
	if l == nil {
		return "one-shot"
	}
	return fmt.Sprintf("eps_perm=%v eps1=%v", l.EpsPerm, l.Eps1)
}

// FinalizeRound closes the round cluster-wide, exactly once: it pulls every
// member shard's sealed partial-aggregate state (the first pull is what seals
// the shard), verifies each message's checksum and round, merges the integer
// count vectors into one collector, runs the estimation pipeline once over
// the sums, and swaps the resulting engine into the query plane fully warmed.
// Repeat calls return the same report count. The state pulls ride the
// client's retry policy and honor ctx: the first pull to fail permanently
// cancels its siblings, so one wedged or dead shard cannot hold the round
// open past the caller's deadline. A failed finalize can simply be retried —
// no shard state is consumed by a failed attempt.
func (c *Coordinator) FinalizeRound(ctx context.Context) (int, error) {
	c.lifecycle.Lock()
	defer c.lifecycle.Unlock()
	c.mu.Lock()
	if c.finalized {
		n := c.finalN
		c.mu.Unlock()
		return n, nil
	}
	round := c.round
	c.sealing = true
	set := c.members.pullSet(round)
	if len(set) == 0 {
		c.sealing = false
		c.mu.Unlock()
		return 0, fmt.Errorf("cluster: no member shards to finalize round %d", round)
	}
	type target struct {
		name, base string
		cl         *httpapi.Client
	}
	targets := make([]target, len(set))
	for i, m := range set {
		targets[i] = target{name: m.name, base: m.base, cl: c.dialLocked(m.base)}
	}
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		c.sealing = false
		c.mu.Unlock()
	}()

	// Pull every shard's state concurrently; each pull seals its shard. The
	// first permanent failure cancels the remaining pulls — a wedged shard
	// must not keep the round open after the outcome is already decided. The
	// merge below runs in member order, though order cannot matter: integer
	// count addition commutes.
	pctx, cancel := context.WithCancel(ctx)
	defer cancel()
	msgs := make([]wire.ShardStateMessage, len(targets))
	errs := make([]error, len(targets))
	var wg sync.WaitGroup
	for i, tg := range targets {
		wg.Add(1)
		go func(i int, tg target) {
			defer wg.Done()
			msgs[i], errs[i] = tg.cl.ShardState(pctx)
			if errs[i] != nil {
				cancel()
			}
		}(i, tg)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return 0, fmt.Errorf("cluster: shard %q (%s) state pull: %w", targets[i].name, targets[i].base, err)
		}
	}

	col, err := core.NewCollector(c.schema, c.planN, c.opts)
	if err != nil {
		return 0, err
	}
	infos := make([]ShardInfo, len(msgs))
	for i, msg := range msgs {
		if msg.Round != round {
			return 0, fmt.Errorf("cluster: shard %q (%s) is in round %d, coordinator in round %d",
				targets[i].name, targets[i].base, msg.Round, round)
		}
		// Refuse a mixed-mode merge loudly: partial counts folded under
		// different reporting modes were perturbed at different budgets (and,
		// for RS+FD, mixed with fake data), so summing them would silently
		// corrupt every estimate. Checksums already verified, so a mismatch is
		// a misconfigured shard, not line damage.
		shardMode, err := msg.ReportMode()
		if err != nil {
			return 0, fmt.Errorf("cluster: shard %q (%s): %w", targets[i].name, targets[i].base, err)
		}
		if shardMode != c.mode {
			return 0, fmt.Errorf("cluster: shard %q (%s) ran round %d in mode %v; the cluster plan runs %v — refusing the mixed-mode merge",
				targets[i].name, targets[i].base, round, shardMode, c.mode)
		}
		// Same discipline for the longitudinal plane: counts drawn through a
		// memoized two-stage chain invert under (ε_perm, ε_1), not the one-shot
		// channel, so a shard whose longitudinal parameters disagree with the
		// plan's (or that ran one-shot against a longitudinal plan, or vice
		// versa) cannot be summed into this round.
		if !msg.Longitudinal.Equal(c.long) {
			return 0, fmt.Errorf("cluster: shard %q (%s) ran round %d with longitudinal parameters %v; the cluster plan has %v — refusing the merge",
				targets[i].name, targets[i].base, round, describeLongitudinal(msg.Longitudinal), describeLongitudinal(c.long))
		}
		states, err := msg.States()
		if err != nil {
			return 0, fmt.Errorf("cluster: shard %q (%s): %w", targets[i].name, targets[i].base, err)
		}
		if err := col.ImportPartials(states); err != nil {
			return 0, fmt.Errorf("cluster: merging shard %q (%s): %w", targets[i].name, targets[i].base, err)
		}
		infos[i] = ShardInfo{
			ID:          msg.ShardID,
			Name:        targets[i].name,
			Base:        targets[i].base,
			Reports:     msg.Reports,
			Rejected:    msg.Rejected,
			WALReplayed: msg.WALReplayed,
			Mode:        shardMode.String(),
		}
		c.logf("cluster: shard %q (%s) round %d: %d reports, %d rejected, %d wal-replayed",
			msg.ShardID, targets[i].base, round, msg.Reports, msg.Rejected, msg.WALReplayed)
	}

	agg, err := col.Finalize()
	if err != nil {
		return 0, fmt.Errorf("cluster: finalizing merged round %d: %w", round, err)
	}
	eng, err := serve.NewEngine(agg)
	if err == nil {
		err = eng.Warmup()
	}
	if err != nil {
		return 0, fmt.Errorf("cluster: building round %d engine: %w", round, err)
	}

	for i, info := range infos {
		shardGauge(i, "reports").Set(int64(info.Reports))
		shardGauge(i, "rejected").Set(int64(info.Rejected))
		shardGauge(i, "wal_replayed").Set(int64(info.WALReplayed))
		// Per-mode accepted/rejected gauges: one mode per round, so the
		// mode-qualified gauges mirror the totals under the mode's name and an
		// operator dashboard can break traffic down without parsing ShardInfo.
		shardGauge(i, "accepted."+info.Mode).Set(int64(info.Reports))
		shardGauge(i, "rejected."+info.Mode).Set(int64(info.Rejected))
	}
	c.mu.Lock()
	c.finalized = true
	c.finalN = agg.N()
	c.shards = infos
	c.mu.Unlock()
	// Swap in after the snapshot fields: a status probe may briefly see
	// finalized without a served round, never the reverse.
	c.qp.Serve(eng, round)
	if c.store != nil {
		c.archiveRound(col, agg, round)
	}
	return agg.N(), nil
}

// AdvanceRound opens the next collection round cluster-wide. target names the
// round the caller wants open (0 = current+1): an already-applied transition
// succeeds without side effects, a skip is refused. Each member shard is
// driven with the same idempotent transition, so a coordinator that crashed
// after advancing only some shards simply retries — shards already in the
// target round answer 200 and the stragglers catch up. Shards that joined
// for the next round are already there, and answer 200 the same way.
func (c *Coordinator) AdvanceRound(ctx context.Context, target int) (int, error) {
	c.lifecycle.Lock()
	defer c.lifecycle.Unlock()
	c.mu.Lock()
	cur, finalized := c.round, c.finalized
	c.mu.Unlock()
	if target == cur {
		return cur, nil
	}
	if target != 0 && target != cur+1 {
		return 0, fmt.Errorf("cluster: round is %d; cannot jump to round %d", cur, target)
	}
	if !finalized {
		return 0, fmt.Errorf("cluster: round %d not finalized; finalize before opening the next round", cur)
	}
	next := cur + 1
	c.mu.Lock()
	set := c.members.pullSet(next)
	type target2 struct {
		name, base string
		cl         *httpapi.Client
	}
	targets := make([]target2, len(set))
	for i, m := range set {
		targets[i] = target2{name: m.name, base: m.base, cl: c.dialLocked(m.base)}
	}
	c.mu.Unlock()
	for _, tg := range targets {
		if err := ctx.Err(); err != nil {
			return 0, fmt.Errorf("cluster: advancing to round %d: %w", next, err)
		}
		got, err := tg.cl.NextRoundTo(ctx, next)
		if err != nil {
			return 0, fmt.Errorf("cluster: advancing shard %q (%s) to round %d: %w", tg.name, tg.base, next, err)
		}
		if got != next {
			return 0, fmt.Errorf("cluster: shard %q (%s) reports round %d after transition to %d",
				tg.name, tg.base, got, next)
		}
	}
	c.mu.Lock()
	c.round = next
	c.finalized = false
	c.finalN = 0
	c.mu.Unlock()
	return next, nil
}

// NextRound advances the cluster one round; the finalized round keeps
// serving queries from the coordinator while the shards collect the next.
func (c *Coordinator) NextRound(ctx context.Context) (int, error) {
	return c.AdvanceRound(ctx, 0)
}

// ClusterStatus is the operator view returned by the coordinator's
// GET /v1/status.
type ClusterStatus struct {
	// Round is the collection round the cluster is in; ServedRound the round
	// answering queries (0 until the first finalize).
	Round       int  `json:"round"`
	ServedRound int  `json:"served_round,omitempty"`
	Finalized   bool `json:"finalized"`
	// Mode is the cluster's reporting mode ("FELIP", "SPL", "RS+FD") — fixed
	// by the plan and enforced against every shard at merge time.
	Mode string `json:"mode"`
	// Reports is the merged accepted-report total of the finalized round.
	Reports int `json:"reports"`
	// Epoch is the membership epoch; Members the live membership with
	// per-shard replication lag; Failovers how many follower promotions this
	// coordinator has performed.
	Epoch     int64             `json:"epoch"`
	Members   []wire.MemberInfo `json:"members,omitempty"`
	Failovers int64             `json:"failovers"`
	// Shards is the per-shard roll-up from the last finalize — including each
	// shard's rejected-submission and WAL-replay counters, so one status call
	// shows both misbehaving clients and crash recoveries anywhere in the
	// cluster.
	Shards []ShardInfo `json:"shards,omitempty"`
	// Metrics is the process-wide instrument snapshot (includes the
	// cluster.shardK.* gauges plus cluster.members / cluster.epoch /
	// cluster.failovers_total).
	Metrics map[string]int64 `json:"metrics,omitempty"`
}

// Status reports the cluster round state, membership, and per-shard counters.
func (c *Coordinator) Status() ClusterStatus {
	c.mu.Lock()
	c.updateMembershipGaugesLocked()
	st := ClusterStatus{
		Round:     c.round,
		Mode:      c.mode.String(),
		Finalized: c.finalized,
		Reports:   c.finalN,
		Epoch:     c.members.epoch,
		Members:   c.members.snapshot(c.round).Members,
		Failovers: c.failovers,
		Shards:    append([]ShardInfo(nil), c.shards...),
	}
	c.mu.Unlock()
	if round, ok := c.qp.ServedRound(); ok {
		st.ServedRound = round
	}
	st.Metrics = metrics.Snapshot()
	return st
}

// Handler returns the coordinator's HTTP surface: the plan and query
// endpoints a single-node server exposes (so analysts are oblivious to the
// topology), plus cluster-wide finalize, round transition, membership
// (register/heartbeat/snapshot) and status.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/plan", func(w http.ResponseWriter, _ *http.Request) {
		c.writeJSON(w, http.StatusOK, c.plan)
	})
	mux.HandleFunc("GET /v1/query", c.qp.HandleQuery)
	mux.HandleFunc("POST /v1/query", c.qp.HandleQueryBatch)
	mux.HandleFunc("GET /v1/rounds", c.qp.HandleRounds(c.Round))
	mux.HandleFunc("POST /v1/shard/register", func(w http.ResponseWriter, r *http.Request) {
		var msg wire.RegisterMessage
		if err := json.NewDecoder(r.Body).Decode(&msg); err != nil {
			c.writeError(w, http.StatusBadRequest, fmt.Errorf("invalid register body: %w", err))
			return
		}
		resp, err := c.RegisterShard(msg)
		if err != nil {
			c.writeError(w, http.StatusConflict, err)
			return
		}
		c.writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("POST /v1/shard/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		var msg wire.HeartbeatMessage
		if err := json.NewDecoder(r.Body).Decode(&msg); err != nil {
			c.writeError(w, http.StatusBadRequest, fmt.Errorf("invalid heartbeat body: %w", err))
			return
		}
		resp, err := c.Heartbeat(msg)
		if err != nil {
			c.writeError(w, http.StatusConflict, err)
			return
		}
		c.writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("GET /v1/membership", func(w http.ResponseWriter, _ *http.Request) {
		c.writeJSON(w, http.StatusOK, c.MembershipSnapshot())
	})
	mux.HandleFunc("POST /v1/finalize", func(w http.ResponseWriter, r *http.Request) {
		n, err := c.FinalizeRound(r.Context())
		if err != nil {
			c.writeError(w, http.StatusBadGateway, err)
			return
		}
		c.writeJSON(w, http.StatusOK, map[string]int{"reports": n})
	})
	mux.HandleFunc("POST /v1/nextround", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Round int `json:"round"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil && !errors.Is(err, io.EOF) {
			c.writeError(w, http.StatusBadRequest, fmt.Errorf("invalid nextround body: %w", err))
			return
		}
		round, err := c.AdvanceRound(r.Context(), req.Round)
		if err != nil {
			c.writeError(w, http.StatusConflict, err)
			return
		}
		c.writeJSON(w, http.StatusOK, map[string]int{"round": round})
	})
	mux.HandleFunc("GET /v1/status", func(w http.ResponseWriter, _ *http.Request) {
		c.writeJSON(w, http.StatusOK, c.Status())
	})
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, _ *http.Request) {
		c.writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
	})
	return mux
}

func (c *Coordinator) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		c.logf("cluster: encoding %T response: %v", v, err)
	}
}

func (c *Coordinator) writeError(w http.ResponseWriter, status int, err error) {
	c.writeJSON(w, status, map[string]string{"error": err.Error()})
}
