package cluster

import (
	"context"
	"fmt"

	"felip/internal/fo"
	"felip/internal/httpapi"
	"felip/internal/wire"
)

// ReportBatch submits a mixed batch of reports cluster-wide: the reports are
// grouped by their idempotency key's logical shard (the same rendezvous hash
// single submissions route by, so a device's retry of any report — batched
// or not — always lands on the shard holding its dedup entry) and each
// shard's group ships as one binary frame. The returned response carries
// per-report dispositions in the *caller's* order, reassembled from the
// per-shard answers.
//
// Shard failures follow the single-report policy: a failed frame triggers
// one membership refresh, and if that moved the shard to a new node the
// frame is re-sent there verbatim — the replicated dedup index makes the
// resubmission exactly-once. A frame that still fails leaves its reports'
// dispositions at 0 in the response and the first such error is returned;
// dispositions of the shards that answered are preserved, so the caller
// retries only what is actually unsettled.
func (c *Client) ReportBatch(ctx context.Context, reports []wire.BatchReport) (wire.BatchReportResponse, error) {
	return c.ReportBatchMode(ctx, fo.ModeFELIP, reports)
}

// ReportBatchMode is ReportBatch under a reporting mode: each shard's group
// ships as one mode-claiming frame (v1 bytes for FELIP, v2 with attribute
// indices otherwise), so the cluster path and the single-node path refuse and
// accept identically.
func (c *Client) ReportBatchMode(ctx context.Context, mode fo.ReportMode, reports []wire.BatchReport) (wire.BatchReportResponse, error) {
	resp := wire.BatchReportResponse{Dispositions: make([]int, len(reports))}
	if len(reports) == 0 {
		return resp, fmt.Errorf("cluster: empty batch")
	}

	c.mu.Lock()
	if len(c.names) == 0 {
		c.mu.Unlock()
		if err := c.Refresh(ctx); err != nil {
			return resp, err
		}
		c.mu.Lock()
	}
	names := c.names
	c.mu.Unlock()
	if len(names) == 0 {
		return resp, fmt.Errorf("cluster: no shards in routing table")
	}

	// Group by owning shard, remembering each report's slot in the caller's
	// batch so the per-shard answers reassemble in order.
	groups := make(map[string][]int)
	for i, br := range reports {
		if br.ID == "" {
			return resp, fmt.Errorf("cluster: batch report %d missing report_id", i)
		}
		name := names[RendezvousFor(br.ID, names)]
		groups[name] = append(groups[name], i)
	}

	var firstErr error
	for name, idxs := range groups {
		sub := make([]wire.BatchReport, len(idxs))
		for j, i := range idxs {
			sub[j] = reports[i]
		}
		shardResp, err := c.reportBatchShard(ctx, mode, name, sub)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("cluster: shard %s: %w", name, err)
			}
			continue
		}
		if resp.Round == 0 {
			resp.Round = shardResp.Round
		}
		for j, i := range idxs {
			resp.Dispositions[i] = shardResp.Dispositions[j]
		}
		resp.Accepted += shardResp.Accepted
		resp.Duplicate += shardResp.Duplicate
		resp.Conflict += shardResp.Conflict
		resp.Rejected += shardResp.Rejected
	}
	return resp, firstErr
}

// reportBatchShard ships one shard's frame with the refresh-and-retry-once
// policy single reports use.
func (c *Client) reportBatchShard(ctx context.Context, mode fo.ReportMode, name string, sub []wire.BatchReport) (wire.BatchReportResponse, error) {
	base, cl := c.shardByName(name)
	if cl == nil {
		return wire.BatchReportResponse{}, fmt.Errorf("no route")
	}
	resp, err := cl.ReportBatchMode(ctx, mode, sub)
	if err == nil {
		return resp, nil
	}
	if rerr := c.Refresh(ctx); rerr != nil {
		return wire.BatchReportResponse{}, err
	}
	newBase, newCl := c.shardByName(name)
	if newCl == nil || newBase == base {
		return wire.BatchReportResponse{}, err
	}
	return newCl.ReportBatchMode(ctx, mode, sub)
}

// shardByName resolves a logical shard name to its current node's client.
func (c *Client) shardByName(name string) (base string, cl *httpapi.Client) {
	c.mu.Lock()
	defer c.mu.Unlock()
	base, ok := c.bases[name]
	if !ok {
		return "", nil
	}
	return base, c.dialLocked(base)
}
