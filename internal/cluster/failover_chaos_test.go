package cluster

import (
	"context"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"felip/internal/core"
	"felip/internal/dataset"
	"felip/internal/httpapi"
	"felip/internal/reportlog"
	"felip/internal/wire"
)

// newDurableShard starts a WAL-backed shard server over real HTTP, wired the
// way felipserver boots one.
func newDurableShard(t *testing.T, name, walPath string, n int, opts core.Options) (*httpapi.Server, *httptest.Server) {
	t.Helper()
	schema := dataset.MixedSchema(2, 32, 2, 4)
	srv, err := httpapi.NewServer(schema, n, opts)
	if err != nil {
		t.Fatal(err)
	}
	srv.SetLogger(t.Logf)
	srv.SetShardID(name)
	segs := reportlog.NewSegments(walPath)
	l, recs, err := segs.Open(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.UseWAL(l, recs); err != nil {
		t.Fatal(err)
	}
	srv.SetWALFactory(func(round int) (*reportlog.Log, error) {
		l, recs, err := segs.Open(round)
		if err != nil {
			return nil, err
		}
		if len(recs) > 0 {
			l.Close()
			return nil, fmt.Errorf("segment %s not empty", segs.Path(round))
		}
		return l, nil
	})
	srv.SetSegments(segs)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// TestClusterFailoverBitIdentical is the PR's chaos acceptance drill: a
// primary is killed mid-round after its WAL was shipped to a follower; the
// coordinator notices the lapsed heartbeat and promotes the follower; devices
// whose acknowledged reports lived on the dead primary resubmit and are
// deduplicated by the promoted replica's replayed index; the finalized round
// answers every query bit-identically to a single-node server over the same
// report multiset.
func TestClusterFailoverBitIdentical(t *testing.T) {
	const (
		n       = 1200
		devSeed = 907
		timeout = 10 * time.Second
	)
	schema := dataset.MixedSchema(2, 32, 2, 4)
	ds := dataset.NewNormal().Generate(schema, n, 911)
	opts := core.Options{Strategy: core.OHG, Epsilon: 1.4, Seed: 913}
	ctx := context.Background()
	dir := t.TempDir()

	// Single-node reference over the full report multiset.
	reference := func() []float64 {
		srv, err := httpapi.NewServer(schema, n, opts)
		if err != nil {
			t.Fatal(err)
		}
		srv.SetLogger(t.Logf)
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		cl := httpapi.Dial(ts.URL, nil)
		plan, err := cl.Plan(ctx)
		if err != nil {
			t.Fatal(err)
		}
		specs, err := plan.Specs()
		if err != nil {
			t.Fatal(err)
		}
		for row := 0; row < n; row++ {
			id, rep := deviceReport(t, specs, opts.Epsilon, ds, row, devSeed)
			if _, err := cl.ReportWithID(ctx, id, rep); err != nil {
				t.Fatal(err)
			}
		}
		if count, err := cl.Finalize(ctx); err != nil || count != n {
			t.Fatalf("reference finalize: %d, %v", count, err)
		}
		ests := make([]float64, len(clusterQueries))
		for i, where := range clusterQueries {
			resp, err := cl.Query(ctx, where)
			if err != nil {
				t.Fatal(err)
			}
			ests[i] = resp.Estimate
		}
		return ests
	}()

	// Elastic cluster: no static shards; two primaries register themselves,
	// and shard0 gets a WAL-shipping follower. Liveness runs on a fake clock.
	clk := newFakeClock()
	coord, err := New(Config{
		Schema: schema, N: n, Opts: opts,
		HeartbeatTimeout: timeout,
		Clock:            clk.now,
		Retry:            fastRetry(3),
		Logf:             t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	coordTS := httptest.NewServer(coord.Handler())
	t.Cleanup(coordTS.Close)

	_, ts0 := newDurableShard(t, "shard0", filepath.Join(dir, "shard0.wal"), n, opts)
	_, ts1 := newDurableShard(t, "shard1", filepath.Join(dir, "shard1.wal"), n, opts)
	for name, ts := range map[string]*httptest.Server{"shard0": ts0, "shard1": ts1} {
		if _, err := coord.RegisterShard(wire.RegisterMessage{Name: name, Base: ts.URL, Role: wire.RolePrimary}); err != nil {
			t.Fatal(err)
		}
		if _, err := coord.Heartbeat(wire.HeartbeatMessage{Name: name, Base: ts.URL, Role: wire.RolePrimary, Round: 1}); err != nil {
			t.Fatal(err)
		}
	}

	fol, err := NewFollower(FollowerConfig{
		Schema: schema, N: n, Opts: opts,
		Name:        "shard0",
		Base:        "http://pending", // the real URL exists only once the handler is served; set below
		Primary:     ts0.URL,
		Coordinator: coordTS.URL,
		WALPath:     filepath.Join(dir, "follower0.wal"),
		Retry:       fastRetry(3),
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	folTS := httptest.NewServer(fol.Handler())
	t.Cleanup(folTS.Close)
	fol.cfg.Base = folTS.URL
	if err := fol.Register(ctx); err != nil {
		t.Fatal(err)
	}

	// Devices dial the coordinator and route by the live membership.
	client, err := DialCluster(ctx, coordTS.URL, nil, fastRetry(3))
	if err != nil {
		t.Fatal(err)
	}
	epochBefore := client.Epoch()
	plan, err := client.Plan(ctx)
	if err != nil {
		t.Fatal(err)
	}
	specs, err := plan.Specs()
	if err != nil {
		t.Fatal(err)
	}

	// First half reports, then replicate until the follower is caught up —
	// the drill's premise is an intact replica at kill time; a real
	// deployment gets the same guarantee from devices resubmitting whatever
	// the dead primary never acknowledged.
	half := n / 2
	for row := 0; row < half; row++ {
		id, rep := deviceReport(t, specs, opts.Epsilon, ds, row, devSeed)
		if dup, err := client.ReportWithID(ctx, id, rep); err != nil || dup {
			t.Fatalf("row %d: dup=%v err=%v", row, dup, err)
		}
	}
	for i := 0; ; i++ {
		caughtUp, err := fol.SyncOnce(ctx)
		if err != nil {
			t.Fatalf("sync %d: %v", i, err)
		}
		if caughtUp {
			break
		}
		if i > 10000 {
			t.Fatal("follower never caught up")
		}
	}
	if segs, bytes := fol.Lag(); segs != 0 || bytes != 0 {
		t.Fatalf("lag after catch-up: %d segments, %d bytes", segs, bytes)
	}
	if err := fol.Heartbeat(ctx); err != nil {
		t.Fatal(err)
	}
	// The follower's lag is on the status page.
	st := coord.Status()
	if st.Metrics["cluster.shard0.replication_lag_segments"] != 0 {
		t.Fatalf("replication lag gauge = %d", st.Metrics["cluster.shard0.replication_lag_segments"])
	}

	// Kill the primary mid-round. Time passes; the survivors keep beating,
	// the dead primary does not.
	ts0.Close()
	clk.advance(timeout + time.Second)
	if _, err := coord.Heartbeat(wire.HeartbeatMessage{Name: "shard1", Base: ts1.URL, Role: wire.RolePrimary, Round: 1}); err != nil {
		t.Fatal(err)
	}
	if err := fol.Heartbeat(ctx); err != nil {
		t.Fatal(err)
	}

	promoted, err := coord.CheckLiveness(ctx)
	if err != nil {
		t.Fatalf("liveness: %v", err)
	}
	if len(promoted) != 1 || promoted[0] != "shard0" {
		t.Fatalf("promoted = %v, want [shard0]", promoted)
	}
	st = coord.Status()
	if st.Failovers != 1 || st.Metrics["cluster.failovers_total"] != 1 {
		t.Fatalf("failovers = %d / gauge %d", st.Failovers, st.Metrics["cluster.failovers_total"])
	}
	if st.Epoch <= epochBefore {
		t.Fatalf("epoch did not advance on failover: %d", st.Epoch)
	}
	if st.Metrics["cluster.members"] != 2 {
		t.Fatalf("cluster.members gauge = %d", st.Metrics["cluster.members"])
	}
	for _, m := range st.Members {
		if m.Name == "shard0" && m.Base != folTS.URL {
			t.Fatalf("shard0 routed to %s after failover, want %s", m.Base, folTS.URL)
		}
	}

	// The routing client still holds the dead primary's address. Resubmit a
	// few already-acknowledged shard0 reports: the submission fails over to
	// the promoted replica, whose replayed dedup index flags every one as a
	// duplicate — the failover preserved exactly-once counting bit for bit.
	names := []string{"shard0", "shard1"}
	resubmitted := 0
	for row := 0; row < half && resubmitted < 25; row++ {
		id := fmt.Sprintf("user-%d-%d", row, devSeed)
		if names[RendezvousFor(id, names)] != "shard0" {
			continue
		}
		_, rep := deviceReport(t, specs, opts.Epsilon, ds, row, devSeed)
		dup, err := client.ReportWithID(ctx, id, rep)
		if err != nil {
			t.Fatalf("resubmit row %d after failover: %v", row, err)
		}
		if !dup {
			t.Fatalf("resubmit row %d not flagged duplicate: the promoted replica lost the dedup index", row)
		}
		resubmitted++
	}
	if resubmitted == 0 {
		t.Fatal("no shard0 rows found to resubmit")
	}
	if client.Epoch() <= epochBefore {
		t.Fatal("client never refreshed its membership")
	}

	// Second half lands on the promoted replica and the surviving primary.
	for row := half; row < n; row++ {
		id, rep := deviceReport(t, specs, opts.Epsilon, ds, row, devSeed)
		if dup, err := client.ReportWithID(ctx, id, rep); err != nil || dup {
			t.Fatalf("row %d after failover: dup=%v err=%v", row, dup, err)
		}
	}

	// Finalize merges the promoted replica's state with the survivor's; the
	// count and every query answer must match the single-node reference
	// exactly.
	count, err := client.Finalize(ctx)
	if err != nil {
		t.Fatalf("finalize after failover: %v", err)
	}
	if count != n {
		t.Fatalf("cluster finalized %d reports, want %d", count, n)
	}
	for i, where := range clusterQueries {
		resp, err := client.Query(ctx, where)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Estimate != reference[i] {
			t.Fatalf("query %q: failover cluster %v != single node %v (not bit-identical)",
				where, resp.Estimate, reference[i])
		}
	}
}

// TestPromotedFollowerStateBitIdentical pins the replication invariant at the
// state-message level: the follower's replayed shard state carries the same
// canonical checksum as the primary's sealed export.
func TestPromotedFollowerStateBitIdentical(t *testing.T) {
	const n = 300
	schema := dataset.MixedSchema(2, 32, 2, 4)
	ds := dataset.NewNormal().Generate(schema, n, 921)
	opts := core.Options{Strategy: core.OHG, Epsilon: 1.2, Seed: 923}
	ctx := context.Background()
	dir := t.TempDir()

	_, ts := newDurableShard(t, "shard0", filepath.Join(dir, "primary.wal"), n, opts)
	cl := httpapi.Dial(ts.URL, nil)
	plan, err := cl.Plan(ctx)
	if err != nil {
		t.Fatal(err)
	}
	specs, err := plan.Specs()
	if err != nil {
		t.Fatal(err)
	}
	for row := 0; row < n; row++ {
		id, rep := deviceReport(t, specs, opts.Epsilon, ds, row, 931)
		if _, err := cl.ReportWithID(ctx, id, rep); err != nil {
			t.Fatal(err)
		}
	}
	primaryState, err := cl.ShardState(ctx)
	if err != nil {
		t.Fatal(err)
	}

	// A follower needs no coordinator for this: point one at the primary and
	// ship until caught up (the sealed round's finalize record ships too).
	fol, err := NewFollower(FollowerConfig{
		Schema: schema, N: n, Opts: opts,
		Name: "shard0", Base: "http://unused", Primary: ts.URL, Coordinator: ts.URL,
		WALPath: filepath.Join(dir, "follower.wal"),
		Retry:   fastRetry(3),
		Logf:    t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; ; i++ {
		caughtUp, err := fol.SyncOnce(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if caughtUp {
			break
		}
		if i > 10000 {
			t.Fatal("follower never caught up")
		}
	}

	resp, err := fol.Promote(1)
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	if resp.Round != 1 {
		t.Fatalf("promoted into round %d", resp.Round)
	}
	folTS := httptest.NewServer(fol.Handler())
	t.Cleanup(folTS.Close)
	replicaState, err := httpapi.Dial(folTS.URL, nil).ShardState(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if replicaState.Checksum != primaryState.Checksum {
		t.Fatalf("replica state checksum %08x != primary %08x: promotion is not bit-identical",
			replicaState.Checksum, primaryState.Checksum)
	}
	if replicaState.ShardID != "shard0" || replicaState.Reports != n {
		t.Fatalf("replica state: %+v", replicaState)
	}

	// Promotion is idempotent.
	if again, err := fol.Promote(1); err != nil || again.Round != 1 {
		t.Fatalf("re-promote: %+v, %v", again, err)
	}
}

// TestPromotionRefusedOnCorruptSegment pins the "promote only after the
// shipped-segment CRC chain verifies" invariant: one flipped byte in the
// follower's local chain refuses the takeover.
func TestPromotionRefusedOnCorruptSegment(t *testing.T) {
	const n = 120
	schema := dataset.MixedSchema(2, 32, 2, 4)
	ds := dataset.NewNormal().Generate(schema, n, 941)
	opts := core.Options{Strategy: core.OHG, Epsilon: 1.2, Seed: 943}
	ctx := context.Background()
	dir := t.TempDir()

	_, ts := newDurableShard(t, "shard0", filepath.Join(dir, "primary.wal"), n, opts)
	cl := httpapi.Dial(ts.URL, nil)
	plan, err := cl.Plan(ctx)
	if err != nil {
		t.Fatal(err)
	}
	specs, err := plan.Specs()
	if err != nil {
		t.Fatal(err)
	}
	for row := 0; row < n; row++ {
		id, rep := deviceReport(t, specs, opts.Epsilon, ds, row, 947)
		if _, err := cl.ReportWithID(ctx, id, rep); err != nil {
			t.Fatal(err)
		}
	}

	walPath := filepath.Join(dir, "follower.wal")
	fol, err := NewFollower(FollowerConfig{
		Schema: schema, N: n, Opts: opts,
		Name: "shard0", Base: "http://unused", Primary: ts.URL, Coordinator: ts.URL,
		WALPath: walPath,
		Retry:   fastRetry(3),
		Logf:    t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; ; i++ {
		caughtUp, err := fol.SyncOnce(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if caughtUp {
			break
		}
		if i > 10000 {
			t.Fatal("follower never caught up")
		}
	}

	// Flip one byte in the middle of the shipped segment.
	raw, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x20
	if err := os.WriteFile(walPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := fol.Promote(1); err == nil {
		t.Fatal("promotion accepted a corrupt segment chain")
	}
}
