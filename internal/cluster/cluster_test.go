package cluster

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"felip/internal/core"
	"felip/internal/dataset"
	"felip/internal/httpapi"
)

// The evaluation workload: range and point predicates of the kind the
// paper's ipums experiments ask.
var clusterQueries = []string{
	"num0=0..15",
	"num0=8..23",
	"num0=24..31",
	"num1=16..31",
	"num1=4..11",
	"cat0=0,1",
	"cat1=2,3",
	"num0=0..15; cat0=0,1",
	"num0=8..23; num1=0..15",
	"num0=16..31; cat0=2",
	"num1=12..27; cat0=0,2",
	"cat0=1; cat1=2,3",
}

func fastRetry(attempts int) httpapi.RetryPolicy {
	return httpapi.RetryPolicy{
		MaxAttempts: attempts,
		BaseDelay:   time.Millisecond,
		MaxDelay:    8 * time.Millisecond,
		Timeout:     5 * time.Second,
		Seed:        99,
	}
}

// deviceReport builds row's deterministic ε-LDP report: the same id, device
// seed, group and perturbation whether the report is sent to a single node or
// a cluster — so both topologies receive the identical report multiset. The
// id carries the device seed, which the tests vary per round: the dedup index
// spans rounds by design, so a report key must be fresh each round.
func deviceReport(t *testing.T, specs []core.GridSpec, eps float64, ds *dataset.Dataset, row int, devSeed uint64) (string, core.Report) {
	t.Helper()
	id := fmt.Sprintf("user-%d-%d", row, devSeed)
	device, err := core.NewClient(specs, eps, devSeed+uint64(row))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := device.Perturb(httpapi.DeriveGroup(id, len(specs)),
		func(attr int) int { return ds.Value(row, attr) })
	if err != nil {
		t.Fatal(err)
	}
	return id, rep
}

// TestShardForCoversAndDecorrelates: every shard must receive traffic, and
// the shard partition must be independent of the group partition — with a
// shared hash a 4-shard cluster on a 4-group plan would pin each shard to a
// single group and starve the others.
func TestShardForCoversAndDecorrelates(t *testing.T) {
	const shards, groups, n = 4, 4, 4000
	seen := make(map[[2]int]int)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("user-%d", i)
		seen[[2]int{ShardFor(id, shards), httpapi.DeriveGroup(id, groups)}]++
	}
	for s := 0; s < shards; s++ {
		for g := 0; g < groups; g++ {
			if seen[[2]int{s, g}] == 0 {
				t.Errorf("shard %d never saw group %d: shard and group hashes are correlated", s, g)
			}
		}
	}
}

// harness is an in-process cluster: k shard servers plus a coordinator, all
// over real HTTP.
type harness struct {
	shardSrvs []*httpapi.Server
	shardTSs  []*httptest.Server
	bases     []string
	coord     *Coordinator
	coordTS   *httptest.Server
	client    *Client
}

func newHarness(t *testing.T, k, n int, opts core.Options, hc *http.Client, retry httpapi.RetryPolicy) *harness {
	t.Helper()
	schema := dataset.MixedSchema(2, 32, 2, 4)
	h := &harness{}
	for i := 0; i < k; i++ {
		srv, err := httpapi.NewServer(schema, n, opts)
		if err != nil {
			t.Fatal(err)
		}
		srv.SetLogger(t.Logf)
		srv.SetShardID(fmt.Sprintf("shard-%d", i))
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		h.shardSrvs = append(h.shardSrvs, srv)
		h.shardTSs = append(h.shardTSs, ts)
		h.bases = append(h.bases, ts.URL)
	}
	coord, err := New(Config{
		Schema:     schema,
		N:          n,
		Opts:       opts,
		Shards:     h.bases,
		HTTPClient: hc,
		Retry:      retry,
		Logf:       t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	h.coord = coord
	h.coordTS = httptest.NewServer(coord.Handler())
	t.Cleanup(h.coordTS.Close)
	h.client = NewClient(h.coordTS.URL, h.bases, hc, retry)
	return h
}

// TestClusterBitIdenticalToSingleNode is the tentpole acceptance: a 3-shard
// cluster collecting the same report multiset as one server must answer every
// query bit-for-bit identically, across two full rounds (finalize → advance →
// collect → finalize).
func TestClusterBitIdenticalToSingleNode(t *testing.T) {
	const (
		k       = 3
		n       = 2400
		devSeed = 265
	)
	schema := dataset.MixedSchema(2, 32, 2, 4)
	ds := dataset.NewNormal().Generate(schema, n, 263)
	opts := core.Options{Strategy: core.OHG, Epsilon: 1.4, Seed: 261}
	ctx := context.Background()

	runSingle := func(roundSeed uint64) []float64 {
		srv, err := httpapi.NewServer(schema, n, opts)
		if err != nil {
			t.Fatal(err)
		}
		srv.SetLogger(t.Logf)
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		cl := httpapi.Dial(ts.URL, ts.Client())
		plan, err := cl.Plan(ctx)
		if err != nil {
			t.Fatal(err)
		}
		specs, err := plan.Specs()
		if err != nil {
			t.Fatal(err)
		}
		for row := 0; row < n; row++ {
			id, rep := deviceReport(t, specs, opts.Epsilon, ds, row, roundSeed)
			if _, err := cl.ReportWithID(ctx, id, rep); err != nil {
				t.Fatalf("single row %d: %v", row, err)
			}
		}
		if count, err := cl.Finalize(ctx); err != nil || count != n {
			t.Fatalf("single finalize: %d, %v", count, err)
		}
		ests := make([]float64, len(clusterQueries))
		for i, where := range clusterQueries {
			resp, err := cl.Query(ctx, where)
			if err != nil {
				t.Fatal(err)
			}
			ests[i] = resp.Estimate
		}
		return ests
	}

	h := newHarness(t, k, n, opts, nil, fastRetry(4))
	plan, err := h.client.Plan(ctx)
	if err != nil {
		t.Fatal(err)
	}
	specs, err := plan.Specs()
	if err != nil {
		t.Fatal(err)
	}

	runCluster := func(roundSeed uint64, round int) []float64 {
		for row := 0; row < n; row++ {
			id, rep := deviceReport(t, specs, opts.Epsilon, ds, row, roundSeed)
			dup, err := h.client.ReportWithID(ctx, id, rep)
			if err != nil {
				t.Fatalf("cluster row %d: %v", row, err)
			}
			if dup {
				t.Fatalf("cluster row %d: fresh report flagged duplicate", row)
			}
		}
		count, err := h.client.Finalize(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if count != n {
			t.Fatalf("cluster finalized %d reports, want %d", count, n)
		}
		ests := make([]float64, len(clusterQueries))
		for i, where := range clusterQueries {
			resp, err := h.client.Query(ctx, where)
			if err != nil {
				t.Fatal(err)
			}
			if resp.Round != round {
				t.Fatalf("query served from round %d, want %d", resp.Round, round)
			}
			ests[i] = resp.Estimate
		}
		return ests
	}

	// Round 1.
	singleR1 := runSingle(devSeed)
	clusterR1 := runCluster(devSeed, 1)
	for i := range clusterR1 {
		if clusterR1[i] != singleR1[i] {
			t.Fatalf("round 1 query %q: cluster %v != single %v (not bit-identical)",
				clusterQueries[i], clusterR1[i], singleR1[i])
		}
	}

	// Cluster-wide status roll-up: every shard accounted, totals add up.
	st := h.coord.Status()
	if len(st.Shards) != k || !st.Finalized || st.Reports != n {
		t.Fatalf("cluster status after finalize: %+v", st)
	}
	total := 0
	for i, info := range st.Shards {
		if info.ID != fmt.Sprintf("shard-%d", i) {
			t.Fatalf("shard %d reports id %q", i, info.ID)
		}
		if info.Reports == 0 {
			t.Fatalf("shard %d ingested nothing: ShardFor is not spreading", i)
		}
		total += info.Reports
	}
	if total != n {
		t.Fatalf("per-shard reports sum to %d, want %d", total, n)
	}
	if st.Metrics["cluster.shard0.reports"] != int64(st.Shards[0].Reports) {
		t.Fatalf("shard gauge %d != status %d", st.Metrics["cluster.shard0.reports"], st.Shards[0].Reports)
	}

	// Advance to round 2; repeating the applied transition must be a no-op.
	if round, err := h.client.NextRound(ctx); err != nil || round != 2 {
		t.Fatalf("nextround: %d, %v", round, err)
	}
	if round, err := h.coord.AdvanceRound(ctx, 2); err != nil || round != 2 {
		t.Fatalf("replayed advance to 2: %d, %v", round, err)
	}
	if _, err := h.coord.AdvanceRound(ctx, 4); err == nil {
		t.Fatal("round skip 2 → 4 accepted")
	}

	// Round 2 collects a fresh perturbation of the same population.
	singleR2 := runSingle(devSeed + 100000)
	clusterR2 := runCluster(devSeed+100000, 2)
	for i := range clusterR2 {
		if clusterR2[i] != singleR2[i] {
			t.Fatalf("round 2 query %q: cluster %v != single %v (not bit-identical)",
				clusterQueries[i], clusterR2[i], singleR2[i])
		}
	}
}
