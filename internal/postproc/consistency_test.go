package postproc

import (
	"math"
	"testing"

	"felip/internal/grid"
)

func TestColumnsHelpers(t *testing.T) {
	c := Columns1D(3)
	if len(c) != 3 || c[1][0] != 1 {
		t.Errorf("Columns1D = %v", c)
	}
	cx := ColumnsX(2, 3)
	if len(cx) != 2 || len(cx[0]) != 3 || cx[1][2] != 5 {
		t.Errorf("ColumnsX = %v", cx)
	}
	cy := ColumnsY(2, 3)
	if len(cy) != 3 || len(cy[0]) != 2 || cy[2][1] != 5 {
		t.Errorf("ColumnsY = %v", cy)
	}
	// Every flat index appears exactly once per direction.
	seen := map[int]int{}
	for _, col := range cx {
		for _, idx := range col {
			seen[idx]++
		}
	}
	for idx := 0; idx < 6; idx++ {
		if seen[idx] != 1 {
			t.Errorf("ColumnsX covers index %d %d times", idx, seen[idx])
		}
	}
}

// Two 1-D grids with identical axes must end up with identical (weighted
// average) marginals, preserving total mass.
func TestHarmonizeAlignedGrids(t *testing.T) {
	ax := grid.MustAxis(8, 4)
	f1 := []float64{0.4, 0.3, 0.2, 0.1}
	f2 := []float64{0.2, 0.3, 0.3, 0.2}
	views := []View{
		{Axis: ax, Freq: f1, Cols: Columns1D(4), Var0: 1},
		{Axis: ax, Freq: f2, Cols: Columns1D(4), Var0: 1},
	}
	HarmonizeAttribute(views)
	for c := 0; c < 4; c++ {
		if math.Abs(f1[c]-f2[c]) > 1e-9 {
			t.Errorf("cell %d: %v vs %v not consistent", c, f1[c], f2[c])
		}
	}
	// Equal weights: result is the plain average of the originals.
	want := []float64{0.3, 0.3, 0.25, 0.15}
	for c := range want {
		if math.Abs(f1[c]-want[c]) > 1e-9 {
			t.Errorf("cell %d = %v, want %v", c, f1[c], want[c])
		}
	}
	if s := sum(f1); math.Abs(s-1) > 1e-9 {
		t.Errorf("mass not preserved: %v", s)
	}
}

// A low-variance view must dominate the consensus.
func TestHarmonizeWeighting(t *testing.T) {
	ax := grid.MustAxis(4, 2)
	precise := []float64{0.8, 0.2}
	noisy := []float64{0.2, 0.8}
	views := []View{
		{Axis: ax, Freq: precise, Cols: Columns1D(2), Var0: 1e-6},
		{Axis: ax, Freq: noisy, Cols: Columns1D(2), Var0: 1.0},
	}
	HarmonizeAttribute(views)
	if math.Abs(precise[0]-0.8) > 1e-3 {
		t.Errorf("precise view moved too much: %v", precise)
	}
	if math.Abs(noisy[0]-0.8) > 1e-3 {
		t.Errorf("noisy view not pulled to precise consensus: %v", noisy)
	}
}

// Consistency between a 1-D grid and the matching axis of a 2-D grid: the
// 2-D grid's x-marginal must equal the 1-D grid afterwards (aligned axes).
func TestHarmonize1DWith2D(t *testing.T) {
	ax := grid.MustAxis(8, 2)
	f1 := []float64{0.7, 0.3}
	// 2x2 grid, row-major by x: x-marginals are 0.5, 0.5.
	f2 := []float64{0.25, 0.25, 0.25, 0.25}
	views := []View{
		{Axis: ax, Freq: f1, Cols: Columns1D(2), Var0: 1},
		{Axis: ax, Freq: f2, Cols: ColumnsX(2, 2), Var0: 1},
	}
	HarmonizeAttribute(views)
	m0 := f2[0] + f2[1]
	m1 := f2[2] + f2[3]
	if math.Abs(f1[0]-m0) > 1e-9 || math.Abs(f1[1]-m1) > 1e-9 {
		t.Errorf("marginals disagree after harmonize: 1-D %v, 2-D marginal [%v %v]", f1, m0, m1)
	}
	// Mass preserved on both.
	if math.Abs(sum(f1)-1) > 1e-9 || math.Abs(sum(f2)-1) > 1e-9 {
		t.Errorf("mass changed: %v, %v", sum(f1), sum(f2))
	}
	// The correction within a 2-D column is spread equally.
	if math.Abs(f2[0]-f2[1]) > 1e-9 {
		t.Errorf("column correction not uniform: %v", f2)
	}
}

// Non-aligned axes (3 cells vs 2 cells over domain 6, boundaries {0,2,4,6}
// vs {0,3,6} share only the endpoints): no cross-view interval aligns, so
// harmonization must leave both views untouched rather than flatten them
// through the uniformity assumption (DESIGN.md §7).
func TestHarmonizeNonAlignedAxesNoop(t *testing.T) {
	a3 := grid.MustAxis(6, 3)
	a2 := grid.MustAxis(6, 2)
	f3 := []float64{0.5, 0.3, 0.2}
	f2 := []float64{0.3, 0.7}
	views := []View{
		{Axis: a3, Freq: f3, Cols: Columns1D(3), Var0: 1},
		{Axis: a2, Freq: f2, Cols: Columns1D(2), Var0: 1},
	}
	HarmonizeAttribute(views)
	if f3[0] != 0.5 || f3[1] != 0.3 || f3[2] != 0.2 {
		t.Errorf("non-aligned fine view changed: %v", f3)
	}
	if f2[0] != 0.3 || f2[1] != 0.7 {
		t.Errorf("non-aligned coarse view changed: %v", f2)
	}
}

// Nested axes (4 cells vs 2 cells over domain 8): the fine view aligns with
// every coarse interval, so the coarse view is pulled toward the fine view's
// (lower-variance) sums and both end up consistent on coarse intervals.
func TestHarmonizeNestedAxes(t *testing.T) {
	fine := grid.MustAxis(8, 4)   // boundaries 0,2,4,6,8
	coarse := grid.MustAxis(8, 2) // boundaries 0,4,8
	ff := []float64{0.4, 0.3, 0.2, 0.1}
	fc := []float64{0.5, 0.5}
	views := []View{
		{Axis: fine, Freq: ff, Cols: Columns1D(4), Var0: 1},
		{Axis: coarse, Freq: fc, Cols: Columns1D(2), Var0: 1},
	}
	HarmonizeAttribute(views)
	// Coarse interval [0,4): fine says 0.7 (var 2·1), coarse says 0.5 (var 1).
	// Inverse-variance consensus: (0.7/2 + 0.5/1)/(1/2+1/1) = 0.85/1.5.
	want := 0.85 / 1.5
	if math.Abs(fc[0]-want) > 1e-9 {
		t.Errorf("coarse cell 0 = %v, want %v", fc[0], want)
	}
	if math.Abs((ff[0]+ff[1])-want) > 1e-9 {
		t.Errorf("fine first-half mass = %v, want %v", ff[0]+ff[1], want)
	}
	if math.Abs(sum(ff)-1) > 1e-9 || math.Abs(sum(fc)-1) > 1e-9 {
		t.Errorf("mass not preserved: %v / %v", sum(ff), sum(fc))
	}
}

func TestHarmonizeSingleViewNoop(t *testing.T) {
	f := []float64{0.5, 0.5}
	HarmonizeAttribute([]View{{Axis: grid.MustAxis(4, 2), Freq: f, Cols: Columns1D(2), Var0: 1}})
	if f[0] != 0.5 || f[1] != 0.5 {
		t.Errorf("single view changed: %v", f)
	}
}

func TestHarmonizeMismatchedDomains(t *testing.T) {
	f1 := []float64{0.5, 0.5}
	f2 := []float64{0.5, 0.5}
	HarmonizeAttribute([]View{
		{Axis: grid.MustAxis(4, 2), Freq: f1, Cols: Columns1D(2), Var0: 1},
		{Axis: grid.MustAxis(6, 2), Freq: f2, Cols: Columns1D(2), Var0: 1},
	})
	if f1[0] != 0.5 || f2[0] != 0.5 {
		t.Error("mismatched-domain views should be left untouched")
	}
}

func TestPipelineEndsNonNegative(t *testing.T) {
	ax := grid.MustAxis(8, 2)
	f1 := []float64{1.4, -0.4}
	f2 := []float64{-0.2, 0.5, 0.4, 0.3}
	attrViews := [][]View{{
		{Axis: ax, Freq: f1, Cols: Columns1D(2), Var0: 1},
		{Axis: ax, Freq: f2, Cols: ColumnsX(2, 2), Var0: 1},
	}}
	Pipeline(attrViews, [][]float64{f1, f2}, 3)
	for _, f := range [][]float64{f1, f2} {
		if math.Abs(sum(f)-1) > 1e-6 {
			t.Errorf("grid sum = %v, want 1", sum(f))
		}
		for i, x := range f {
			if x < 0 {
				t.Errorf("negative estimate survived pipeline: f[%d]=%v", i, x)
			}
		}
	}
}

func TestPipelineZeroRoundsClamped(t *testing.T) {
	f := []float64{-1, 2}
	Pipeline(nil, [][]float64{f}, 0)
	if f[0] < 0 || math.Abs(sum(f)-1) > 1e-9 {
		t.Errorf("rounds=0 should still normalize: %v", f)
	}
}
