package postproc

import (
	"math"
	"testing"
	"testing/quick"
)

func sum(f []float64) float64 {
	var s float64
	for _, x := range f {
		s += x
	}
	return s
}

func TestNormSubBasic(t *testing.T) {
	f := NormSub([]float64{0.5, -0.1, 0.4, 0.3}, 1)
	if math.Abs(sum(f)-1) > 1e-9 {
		t.Errorf("sum = %v, want 1", sum(f))
	}
	for i, x := range f {
		if x < 0 {
			t.Errorf("f[%d] = %v < 0", i, x)
		}
	}
	if f[1] != 0 {
		t.Errorf("negative entry should be zeroed, got %v", f[1])
	}
}

func TestNormSubAlreadyValid(t *testing.T) {
	f := NormSub([]float64{0.25, 0.25, 0.25, 0.25}, 1)
	for _, x := range f {
		if math.Abs(x-0.25) > 1e-12 {
			t.Errorf("valid input changed: %v", f)
		}
	}
}

func TestNormSubAllNegative(t *testing.T) {
	f := NormSub([]float64{-0.3, -0.2, -0.5}, 1)
	for _, x := range f {
		if math.Abs(x-1.0/3) > 1e-9 {
			t.Errorf("all-negative input should become uniform: %v", f)
		}
	}
}

func TestNormSubAllZero(t *testing.T) {
	f := NormSub([]float64{0, 0}, 1)
	if math.Abs(f[0]-0.5) > 1e-9 || math.Abs(f[1]-0.5) > 1e-9 {
		t.Errorf("zero input should become uniform: %v", f)
	}
}

func TestNormSubEmpty(t *testing.T) {
	if f := NormSub(nil, 1); f != nil {
		t.Error("nil input should stay nil")
	}
}

func TestNormSubCascadingNegatives(t *testing.T) {
	// Large surplus makes small positives go negative after the shift; the
	// loop must keep iterating.
	f := NormSub([]float64{2.0, 0.01, 0.02, -0.5}, 1)
	if math.Abs(sum(f)-1) > 1e-9 {
		t.Errorf("sum = %v, want 1", sum(f))
	}
	for i, x := range f {
		if x < 0 {
			t.Errorf("f[%d] = %v < 0 after cascade", i, x)
		}
	}
}

func TestNormSubOtherTotal(t *testing.T) {
	f := NormSub([]float64{3, -1, 2}, 10)
	if math.Abs(sum(f)-10) > 1e-9 {
		t.Errorf("sum = %v, want 10", sum(f))
	}
}

// Property: output is always on the simplex {f ≥ 0, Σf = total} for any
// input, and entries that were ≥ their "fair share" stay positive.
func TestNormSubSimplexProperty(t *testing.T) {
	if err := quick.Check(func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		f := make([]float64, len(raw))
		for i, x := range raw {
			// Bound the magnitudes so the test is numerically meaningful.
			f[i] = math.Mod(x, 10)
			if math.IsNaN(f[i]) {
				f[i] = 0
			}
		}
		out := NormSub(f, 1)
		s := 0.0
		for _, x := range out {
			if x < 0 {
				return false
			}
			s += x
		}
		return math.Abs(s-1) < 1e-6
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Norm-Sub must be idempotent: applying it twice gives the same result.
func TestNormSubIdempotent(t *testing.T) {
	f := []float64{0.9, -0.4, 0.3, 0.2}
	first := NormSub(append([]float64(nil), f...), 1)
	second := NormSub(append([]float64(nil), first...), 1)
	for i := range first {
		if math.Abs(first[i]-second[i]) > 1e-9 {
			t.Errorf("not idempotent at %d: %v vs %v", i, first[i], second[i])
		}
	}
}

// Norm-Sub should preserve the ordering of the entries it keeps positive.
func TestNormSubPreservesOrder(t *testing.T) {
	f := NormSub([]float64{0.5, 0.3, -0.2, 0.6}, 1)
	if !(f[3] >= f[0] && f[0] >= f[1]) {
		t.Errorf("order not preserved: %v", f)
	}
}
