package postproc

import "felip/internal/grid"

// View describes how one estimated grid relates to a single attribute a: the
// axis that bins a in that grid, the grid's (shared, mutable) frequency
// vector, the flat indices forming each a-column, and the grid's per-cell
// noise variance.
//
// For a 1-D grid over a, Cols[c] = {c}. For a 2-D grid with a on the x axis
// of size lx×ly, Cols[cx] = {cx·ly + cy : cy ∈ [0,ly)}; symmetrically for the
// y axis.
type View struct {
	// Axis is the binning of attribute a inside this grid.
	Axis *grid.Axis
	// Freq is the grid's frequency vector, adjusted in place.
	Freq []float64
	// Cols lists, per axis cell, the flat Freq indices of that a-column.
	Cols [][]int
	// Var0 is the grid's per-cell estimation variance, used for weighting.
	Var0 float64
}

// colMass returns the total frequency mass of axis cell c.
func (v *View) colMass(c int) float64 {
	var s float64
	for _, idx := range v.Cols[c] {
		s += v.Freq[idx]
	}
	return s
}

// intervalEstimate returns this view's estimate of the attribute-mass on the
// half-open value interval [lo, hi) and the noise variance of that estimate,
// summing whole column masses exactly as Algorithm 2's S_{G(a,w)}(i). A view
// can only estimate an interval that aligns with its own cell boundaries
// (every cell fully inside or fully outside); for non-aligned intervals
// ok = false and the view is excluded from that consensus — the
// generalization that keeps Algorithm 2 sound when FELIP's per-grid sizes
// produce non-nesting partitions (DESIGN.md §7): a partially-overlapping
// cell would need the uniformity assumption and its bias would flatten
// peaked distributions.
func (v *View) intervalEstimate(lo, hi int) (mass, variance float64, ok bool) {
	for c := range v.Cols {
		cLo, cHi := v.Axis.CellRange(c)
		if cHi <= lo || cLo >= hi {
			continue
		}
		if cLo < lo || cHi > hi {
			return 0, 0, false // partial overlap: not aligned
		}
		mass += v.colMass(c)
		variance += float64(len(v.Cols[c])) * v.Var0
	}
	return mass, variance, true
}

// retargetInterval additively adjusts the view's cells inside the aligned
// interval [lo, hi) so their total mass equals target, spreading the
// correction equally over the flat cells — Algorithm 2's update step.
func (v *View) retargetInterval(lo, hi int, target float64) {
	var mass float64
	var flat int
	for c := range v.Cols {
		cLo, cHi := v.Axis.CellRange(c)
		if cLo >= lo && cHi <= hi {
			mass += v.colMass(c)
			flat += len(v.Cols[c])
		}
	}
	if flat == 0 {
		return
	}
	delta := (target - mass) / float64(flat)
	for c := range v.Cols {
		cLo, cHi := v.Axis.CellRange(c)
		if cLo >= lo && cHi <= hi {
			for _, idx := range v.Cols[c] {
				v.Freq[idx] += delta
			}
		}
	}
}

// HarmonizeAttribute makes the marginals of all views along one shared
// attribute consistent — the paper's Algorithm 2, generalized to grids whose
// cell boundaries do not necessarily align. Every view's own partition in
// turn provides the consensus intervals D(i): for each interval, every
// *aligned* view j estimates the attribute-mass S_j(i) by summing whole
// columns, the estimates are combined with inverse-variance weights
// θ_j ∝ 1/Var[S_j(i)] (the §5.4 weighting rule, which reduces to
// θ_j ∝ 1/|L_{G(a,w)}(j)| when Var0 is shared), and every aligned view is
// additively re-targeted to the consensus. Views whose cells only partially
// overlap an interval are excluded from that interval's consensus — a
// partial overlap would need the uniformity assumption, whose bias flattens
// peaked distributions (DESIGN.md §7). Updates are applied Gauss-Seidel
// style; the surrounding Pipeline iterates the pass, and when all views
// share identical boundaries the first pass already reproduces Algorithm 2
// verbatim.
func HarmonizeAttribute(views []View) {
	if len(views) < 2 {
		return
	}
	d := views[0].Axis.Domain()
	for i := range views {
		if views[i].Axis.Domain() != d {
			return // inconsistent views; refuse to adjust
		}
	}
	aligned := make([]int, 0, len(views))
	for owner := range views {
		v := &views[owner]
		for c := range v.Cols {
			lo, hi := v.Axis.CellRange(c)
			var num, den float64
			pinned := false
			aligned = aligned[:0]
			for j := range views {
				mass, variance, ok := views[j].intervalEstimate(lo, hi)
				if !ok {
					continue
				}
				aligned = append(aligned, j)
				if pinned {
					continue
				}
				if variance <= 0 {
					// An error-free view pins the consensus.
					num, den = mass, 1
					pinned = true
					continue
				}
				num += mass / variance
				den += 1 / variance
			}
			if len(aligned) < 2 || den <= 0 {
				continue // nothing to reconcile on this interval
			}
			target := num / den
			for _, j := range aligned {
				views[j].retargetInterval(lo, hi, target)
			}
		}
	}
}

// Pipeline runs the paper's full post-processing: `rounds` alternations of
// per-attribute consistency and per-grid Norm-Sub, ending with a final
// Norm-Sub so the output is non-negative (§5.4). attrViews groups the views
// by attribute; freqs lists every grid's frequency vector exactly once.
func Pipeline(attrViews [][]View, freqs [][]float64, rounds int) {
	if rounds < 1 {
		rounds = 1
	}
	for i := range freqs {
		NormSub(freqs[i], 1)
	}
	for r := 0; r < rounds; r++ {
		for _, views := range attrViews {
			HarmonizeAttribute(views)
		}
		for i := range freqs {
			NormSub(freqs[i], 1)
		}
	}
}

// Columns1D builds the trivial column index for a 1-D grid of l cells.
func Columns1D(l int) [][]int {
	cols := make([][]int, l)
	for c := range cols {
		cols[c] = []int{c}
	}
	return cols
}

// ColumnsX builds the column index along the x axis of an lx×ly grid stored
// row-major by x.
func ColumnsX(lx, ly int) [][]int {
	cols := make([][]int, lx)
	for cx := 0; cx < lx; cx++ {
		col := make([]int, ly)
		for cy := 0; cy < ly; cy++ {
			col[cy] = cx*ly + cy
		}
		cols[cx] = col
	}
	return cols
}

// ColumnsY builds the column index along the y axis of an lx×ly grid stored
// row-major by x.
func ColumnsY(lx, ly int) [][]int {
	cols := make([][]int, ly)
	for cy := 0; cy < ly; cy++ {
		col := make([]int, lx)
		for cx := 0; cx < lx; cx++ {
			col[cx] = cx*ly + cy
		}
		cols[cy] = col
	}
	return cols
}
