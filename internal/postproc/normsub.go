// Package postproc implements FELIP's estimation post-processing (paper
// §5.4): Norm-Sub removal of negative estimates (Algorithm 1) and cross-grid
// consistency of shared attributes (Algorithm 2, generalized to grids whose
// cell boundaries do not align — see DESIGN.md §7).
package postproc

// NormSub projects the frequency vector onto the simplex {f ≥ 0, Σf = total}
// using the paper's Algorithm 1: repeatedly clamp negative entries to zero
// and spread the remaining deficit (or surplus) equally over the positive
// entries, until the vector is non-negative and sums to total.
//
// The input slice is modified in place and returned. If every entry is
// non-positive the mass is distributed uniformly.
func NormSub(freq []float64, total float64) []float64 {
	if len(freq) == 0 {
		return freq
	}
	const tol = 1e-12
	for iter := 0; iter < 10*len(freq)+100; iter++ {
		positives := 0
		sum := 0.0
		for i, f := range freq {
			if f < 0 {
				freq[i] = 0
			} else if f > 0 {
				positives++
				sum += f
			}
		}
		if positives == 0 {
			u := total / float64(len(freq))
			for i := range freq {
				freq[i] = u
			}
			return freq
		}
		diff := (total - sum) / float64(positives)
		if diff > -tol && diff < tol {
			return freq
		}
		anyNegative := false
		for i, f := range freq {
			if f > 0 {
				freq[i] = f + diff
				if freq[i] < 0 {
					anyNegative = true
				}
			}
		}
		if !anyNegative {
			return freq
		}
	}
	// Defensive: clamp and rescale if the loop failed to settle.
	sum := 0.0
	for i, f := range freq {
		if f < 0 {
			freq[i] = 0
		} else {
			sum += f
		}
	}
	if sum > 0 {
		scale := total / sum
		for i := range freq {
			freq[i] *= scale
		}
	} else {
		u := total / float64(len(freq))
		for i := range freq {
			freq[i] = u
		}
	}
	return freq
}
