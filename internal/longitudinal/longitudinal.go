// Package longitudinal implements memoized two-stage LDP reporting for
// devices that report across many collection rounds (Ding et al.'s
// memoization; the L-GRR / LOLOHA family of Arcolezi et al.).
//
// One-shot LDP spends fresh ε every round, so a device reporting k rounds
// leaks k·ε to an observer of all rounds. The two-stage design caps that:
//
//   - Stage 1 (permanent, run once per device): the true value v is
//     randomized by GRR at ε_perm into B, and B is memoized — persisted on
//     the device and replayed every round. All subsequent traffic is a
//     function of B alone, so an unbounded observer of every round learns
//     about v only through one ε_perm-DP release.
//   - Stage 2 (fresh each round): B is perturbed by an explicit-(p₂, q₂)
//     randomized response chosen so the composed channel v → report is
//     *exactly* GRR(ε_1). A single round therefore reveals ε_1, and the
//     server inverts the chain with the ordinary GRR(ε_1) estimator.
//
// The per-round stage parametrization: with p₁ = e^ε_perm/(e^ε_perm+L−1),
// q₁ = (1−p₁)/(L−1) and the target composed truthful probability
// p* = e^ε_1/(e^ε_1+L−1),
//
//	p₂ = (p* − q₁)/(p₁ − q₁),  q₂ = (1 − p₂)/(L − 1)
//
// gives P[report = v | value = v] = q₁ + p₂(p₁−q₁) = p* and, by
// row-stochasticity, P[report = w | value = v] = (1−p*)/(L−1) for w ≠ v —
// the GRR(ε_1) channel exactly. p₂ stays in (1/L, 1] iff 0 < ε_1 ≤ ε_perm,
// which is why fo.Longitudinal.Validate refuses ε_1 > ε_perm.
package longitudinal

import (
	"fmt"
	"math"

	"felip/internal/fo"
)

// Stages holds the derived two-stage GRR probabilities for one grid's cell
// domain L: the permanent stage (P1, Q1) at ε_perm, the per-round stage
// (P2, Q2), and the composed single-round channel (PStar, QStar), which
// equals GRR(ε_1).
type Stages struct {
	L int
	// P1 is the permanent stage's truthful probability, Q1 its per-value
	// lying probability: GRR at ε_perm.
	P1, Q1 float64
	// P2 is the per-round probability of forwarding the memoized value
	// unchanged; Q2 the probability of emitting any other fixed value.
	P2, Q2 float64
	// PStar and QStar are the composed channel v → report: exactly the
	// GRR(ε_1) probabilities e^ε_1/(e^ε_1+L−1) and 1/(e^ε_1+L−1).
	PStar, QStar float64
}

// NewStages derives the two-stage probabilities for domain size L. A
// degenerate one-cell domain (the planner can emit 1×1 grids at small n) is a
// noiseless pass-through — there is only one possible value, so both stages
// forward it with probability 1 and the channel reveals nothing.
func NewStages(cfg fo.Longitudinal, L int) (Stages, error) {
	if err := (&cfg).Validate(); err != nil {
		return Stages{}, err
	}
	if L < 1 {
		return Stages{}, fmt.Errorf("longitudinal: domain size %d must be at least 1", L)
	}
	if L == 1 {
		return Stages{L: 1, P1: 1, P2: 1, PStar: 1}, nil
	}
	lf := float64(L)
	eePerm := math.Exp(cfg.EpsPerm)
	p1 := eePerm / (eePerm + lf - 1)
	q1 := (1 - p1) / (lf - 1)
	ee1 := math.Exp(cfg.Eps1)
	pStar := ee1 / (ee1 + lf - 1)
	p2 := (pStar - q1) / (p1 - q1)
	return Stages{
		L:  L,
		P1: p1, Q1: q1,
		P2: p2, Q2: (1 - p2) / (lf - 1),
		PStar: pStar, QStar: (1 - pStar) / (lf - 1),
	}, nil
}

// Memoize runs the permanent stage once: GRR(ε_perm) on the true value v.
// The caller must persist the result and never call Memoize again for the
// same device — re-randomizing spends fresh ε_perm.
func (s Stages) Memoize(v int, r *fo.Rand) (int, error) {
	if v < 0 || v >= s.L {
		return 0, fmt.Errorf("longitudinal: value %d outside domain [0,%d)", v, s.L)
	}
	if r.Float64() < s.P1 {
		return v, nil
	}
	x := r.IntN(s.L - 1)
	if x >= v {
		x++
	}
	return x, nil
}

// Perturb runs the per-round stage on the memoized value b: with probability
// P2 the memoized value is forwarded, otherwise a uniform other value is
// emitted. Fresh randomness every round; the composition with Memoize is
// exactly GRR(ε_1).
func (s Stages) Perturb(b int, r *fo.Rand) (int, error) {
	if b < 0 || b >= s.L {
		return 0, fmt.Errorf("longitudinal: memoized value %d outside domain [0,%d)", b, s.L)
	}
	if r.Float64() < s.P2 {
		return b, nil
	}
	x := r.IntN(s.L - 1)
	if x >= b {
		x++
	}
	return x, nil
}

// Estimates inverts the two-stage chain: with composed support probabilities
// (p*, q*) = (Q1 + P2·(P1−Q1), (1−p*)/(L−1)), the unbiased estimator is
// f̂_v = (c_v/n − q*)/(p* − q*). Because the composed channel equals
// GRR(ε_1), this coincides with the one-shot GRR(ε_1) inversion — the grid
// post-processing (IPF, norm-sub, response matrices) downstream is untouched.
func Estimates(cfg fo.Longitudinal, L int, counts []int64, n int) ([]float64, error) {
	s, err := NewStages(cfg, L)
	if err != nil {
		return nil, err
	}
	if len(counts) != L {
		return nil, fmt.Errorf("longitudinal: got %d counts for domain %d", len(counts), L)
	}
	est := make([]float64, L)
	if n == 0 {
		return est, nil
	}
	if L == 1 {
		// One-cell domain: the chain is the identity, the frequency is c/n.
		est[0] = float64(counts[0]) / float64(n)
		return est, nil
	}
	// Compose the chain explicitly rather than re-deriving GRR(ε_1): the
	// estimator inverts exactly the channel the client implements.
	pStar := s.Q1 + s.P2*(s.P1-s.Q1)
	qStar := (1 - pStar) / float64(L-1)
	nf := float64(n)
	for v, c := range counts {
		est[v] = (float64(c)/nf - qStar) / (pStar - qStar)
	}
	return est, nil
}

// Variance returns Var[f̂_v] at f_v = 0 for one grid of the plan under
// longitudinal reporting: q*(1−q*)/(n(p*−q*)²). Since the composed channel
// is GRR(ε_1), this equals fo.GRR.Variance(ε_1, L, n) — the planner needs no
// new noise formula, it sizes grids at ε_1 with GRR forced.
func Variance(cfg fo.Longitudinal, L, n int) float64 {
	s, err := NewStages(cfg, L)
	if err != nil {
		return math.Inf(1)
	}
	if L == 1 {
		return 0 // noiseless pass-through: the estimate is exact
	}
	pStar := s.Q1 + s.P2*(s.P1-s.Q1)
	qStar := (1 - pStar) / float64(L-1)
	return qStar * (1 - qStar) / (float64(n) * (pStar - qStar) * (pStar - qStar))
}

// Accountant reports the privacy spend of a longitudinal collection from the
// two observer positions the DESIGN.md §16 page describes.
type Accountant struct {
	Cfg fo.Longitudinal
}

// PerRound is what an observer of any single round learns: the composed
// channel is exactly ε_1-LDP.
func (a Accountant) PerRound() float64 { return a.Cfg.Eps1 }

// Cumulative is what an unbounded observer of all `rounds` rounds learns
// about the device's (static) true value. Every round is a post-processing
// of the one memoized ε_perm release plus per-round ε_1 noise; we report the
// conservative fixed bound ε_perm + ε_1 — crucially independent of rounds.
func (a Accountant) Cumulative(rounds int) float64 {
	if rounds <= 0 {
		return 0
	}
	return a.Cfg.EpsPerm + a.Cfg.Eps1
}

// FreshCumulative is the same observer's knowledge under the fresh-ε
// baseline at equal per-round budget: k·ε_1, growing without bound.
func (a Accountant) FreshCumulative(rounds int) float64 {
	if rounds <= 0 {
		return 0
	}
	return float64(rounds) * a.Cfg.Eps1
}
