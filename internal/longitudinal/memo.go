package longitudinal

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"

	"felip/internal/fo"
)

// Entry is one device's memoized permanent randomization: the plan
// fingerprint it was drawn under (a memo is only valid against the plan
// whose grids and budgets produced it), the grid/group the device reports,
// and the ε_perm-randomized cell value B.
type Entry struct {
	Device      string `json:"device"`
	Fingerprint string `json:"fingerprint"`
	Group       int    `json:"group"`
	Value       int    `json:"value"`
}

// MemoStore persists permanent randomizations so a device that crashes and
// restarts replays its memoized value instead of spending fresh ε_perm. The
// store is an append-only JSONL file: one line per memoization, fsynced
// before Put returns, so an entry handed to the caller is already durable —
// a crash between Put and the first report never loses the spend.
//
// Safe for concurrent use (one process, many device goroutines).
type MemoStore struct {
	mu      sync.Mutex
	path    string
	f       *os.File
	entries map[string]Entry
}

// OpenMemoStore opens or creates the store at path and replays existing
// entries. A torn final line (crash mid-append, no trailing newline or
// unparseable bytes) is dropped: its entry was never acknowledged, so the
// device legitimately re-memoizes.
func OpenMemoStore(path string) (*MemoStore, error) {
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("longitudinal: read memo store: %w", err)
	}
	entries := make(map[string]Entry)
	valid := 0
	for valid < len(data) {
		nl := bytes.IndexByte(data[valid:], '\n')
		if nl < 0 {
			break // no newline: the append never finished
		}
		line := bytes.TrimSpace(data[valid : valid+nl])
		if len(line) > 0 {
			var e Entry
			if err := json.Unmarshal(line, &e); err != nil || e.Device == "" {
				break // torn tail: keep everything before it, truncate the rest
			}
			entries[e.Device] = e
		}
		valid += nl + 1
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("longitudinal: open memo store: %w", err)
	}
	if err := f.Truncate(int64(valid)); err != nil {
		f.Close()
		return nil, fmt.Errorf("longitudinal: trim torn memo tail: %w", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, err
	}
	return &MemoStore{path: path, f: f, entries: entries}, nil
}

// Get returns the memoized entry for a device, if one exists.
func (s *MemoStore) Get(device string) (Entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[device]
	return e, ok
}

// Len returns the number of memoized devices.
func (s *MemoStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Put durably records a device's permanent randomization. The entry is
// appended and fsynced before Put returns; only then may the caller send a
// report derived from it.
func (s *MemoStore) Put(e Entry) error {
	if e.Device == "" {
		return fmt.Errorf("longitudinal: memo entry needs a device id")
	}
	line, err := json.Marshal(e)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if prev, ok := s.entries[e.Device]; ok {
		if prev != e {
			return fmt.Errorf("longitudinal: device %q already memoized (re-randomizing would spend fresh eps_perm)", e.Device)
		}
		return nil // idempotent re-put of the identical entry
	}
	if _, err := s.f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("longitudinal: append memo: %w", err)
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("longitudinal: sync memo store: %w", err)
	}
	s.entries[e.Device] = e
	return nil
}

// Close releases the store's file handle.
func (s *MemoStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Close()
}

// Device drives one reporter through rounds: memoize-once (through the
// store, durably, keyed by device id and plan fingerprint), then one fresh
// per-round perturbation per Report call.
type Device struct {
	ID     string
	Group  int
	stages Stages
	store  *MemoStore
	memo   int
	rng    *fo.Rand
}

// NewDevice binds a device to its grid's stages and the shared memo store.
// If the store already holds an entry for (id, fingerprint) the memoized
// value is reused — no ε_perm is spent; otherwise the true value is
// randomized once at ε_perm and durably recorded before NewDevice returns.
// A stored entry under a different plan fingerprint is an error: replaying a
// memo against grids it was not drawn for would corrupt the inversion.
func NewDevice(id, fingerprint string, group, value int, stages Stages, store *MemoStore, rng *fo.Rand) (*Device, error) {
	d := &Device{ID: id, Group: group, stages: stages, store: store, rng: rng}
	if e, ok := store.Get(id); ok {
		if e.Fingerprint != fingerprint {
			return nil, fmt.Errorf("longitudinal: device %q memoized under plan %q, not %q",
				id, e.Fingerprint, fingerprint)
		}
		if e.Group != group {
			return nil, fmt.Errorf("longitudinal: device %q memoized for group %d, not %d",
				id, e.Group, group)
		}
		d.memo = e.Value
		return d, nil
	}
	b, err := stages.Memoize(value, rng)
	if err != nil {
		return nil, err
	}
	if err := store.Put(Entry{Device: id, Fingerprint: fingerprint, Group: group, Value: b}); err != nil {
		return nil, err
	}
	d.memo = b
	return d, nil
}

// Memo exposes the memoized permanent value (tests assert it survives
// restarts bit-identically).
func (d *Device) Memo() int { return d.memo }

// Report draws one per-round report from the memoized value.
func (d *Device) Report() (int, error) {
	return d.stages.Perturb(d.memo, d.rng)
}
