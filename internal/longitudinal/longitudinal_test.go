package longitudinal

import (
	"math"
	"testing"

	"felip/internal/fo"
)

func mustStages(t *testing.T, epsPerm, eps1 float64, L int) Stages {
	t.Helper()
	s, err := NewStages(fo.Longitudinal{EpsPerm: epsPerm, Eps1: eps1}, L)
	if err != nil {
		t.Fatalf("NewStages(%v, %v, %d): %v", epsPerm, eps1, L, err)
	}
	return s
}

// The whole design rests on the composed channel being exactly GRR(ε_1):
// q1 + p2(p1−q1) = e^ε1/(e^ε1+L−1) and the off-diagonal (1−p*)/(L−1), with
// ratio p*/q* = e^ε1.
func TestComposedChannelIsExactlyEps1(t *testing.T) {
	for _, tc := range []struct {
		epsPerm, eps1 float64
		L             int
	}{
		{2.0, 0.5, 2}, {2.0, 0.5, 3}, {2.0, 2.0, 16}, {1.0, 0.1, 32},
		{4.0, 1.0, 128}, {0.5, 0.5, 5}, {8.0, 0.01, 7},
	} {
		s := mustStages(t, tc.epsPerm, tc.eps1, tc.L)
		lf := float64(tc.L)
		pStar := s.Q1 + s.P2*(s.P1-s.Q1)
		// Off-diagonal directly: report w≠v ⟺ (B=v, flip to w) + (B=w, keep) + (B=u∉{v,w}, flip to w).
		qStar := s.P1*s.Q2 + s.Q1*s.P2 + (lf-2)*s.Q1*s.Q2
		want := math.Exp(tc.eps1) / (math.Exp(tc.eps1) + lf - 1)
		if math.Abs(pStar-want) > 1e-12 {
			t.Errorf("(%v,%v,L=%d): composed p* = %v, want GRR(eps1) p = %v", tc.epsPerm, tc.eps1, tc.L, pStar, want)
		}
		if math.Abs(qStar-(1-want)/(lf-1)) > 1e-12 {
			t.Errorf("(%v,%v,L=%d): composed q* = %v, want %v", tc.epsPerm, tc.eps1, tc.L, qStar, (1-want)/(lf-1))
		}
		if ratio := pStar / qStar; math.Abs(ratio-math.Exp(tc.eps1)) > 1e-9 {
			t.Errorf("(%v,%v,L=%d): composed ratio %v, want e^eps1 = %v", tc.epsPerm, tc.eps1, tc.L, ratio, math.Exp(tc.eps1))
		}
		// Both stages must be proper channels.
		for _, pq := range [][2]float64{{s.P1, s.Q1}, {s.P2, s.Q2}} {
			if sum := pq[0] + (lf-1)*pq[1]; math.Abs(sum-1) > 1e-12 {
				t.Errorf("stage rows must sum to 1, got %v", sum)
			}
			if pq[0] < 0 || pq[0] > 1 || pq[1] < 0 || pq[1] > 1 {
				t.Errorf("stage probabilities outside [0,1]: %v", pq)
			}
		}
	}
}

func TestStagesRefusesEps1AboveEpsPerm(t *testing.T) {
	if _, err := NewStages(fo.Longitudinal{EpsPerm: 1.0, Eps1: 1.5}, 8); err == nil {
		t.Fatal("eps1 > eps_perm must be refused (p2 would exceed 1)")
	}
	if _, err := NewStages(fo.Longitudinal{EpsPerm: 0, Eps1: 0.5}, 8); err == nil {
		t.Fatal("eps_perm = 0 must be refused")
	}
	if _, err := NewStages(fo.Longitudinal{EpsPerm: 1, Eps1: 0}, 8); err == nil {
		t.Fatal("eps1 = 0 must be refused")
	}
	if _, err := NewStages(fo.Longitudinal{EpsPerm: 1, Eps1: 1}, 0); err == nil {
		t.Fatal("domain of size 0 must be refused")
	}
	// A one-cell domain is legal (the planner can emit 1×1 grids at small n)
	// and degenerates to a noiseless pass-through.
	one, err := NewStages(fo.Longitudinal{EpsPerm: 1, Eps1: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if one.P1 != 1 || one.P2 != 1 || one.PStar != 1 {
		t.Fatalf("one-cell stages %+v, want identity channel", one)
	}
	if est, err := Estimates(fo.Longitudinal{EpsPerm: 1, Eps1: 1}, 1, []int64{7}, 7); err != nil || est[0] != 1 {
		t.Fatalf("one-cell estimate %v err=%v, want exactly [1]", est, err)
	}
	if v := Variance(fo.Longitudinal{EpsPerm: 1, Eps1: 1}, 1, 100); v != 0 {
		t.Fatalf("one-cell variance %v, want 0", v)
	}
	// eps1 == eps_perm is the boundary: p2 = 1, the per-round stage forwards
	// the memo verbatim.
	s := mustStages(t, 2.0, 2.0, 8)
	if math.Abs(s.P2-1) > 1e-12 {
		t.Fatalf("at eps1 == eps_perm p2 should be 1, got %v", s.P2)
	}
}

// The longitudinal inversion must agree with the one-shot GRR(ε_1)
// aggregator on identical counts: same channel, same estimator.
func TestEstimatesMatchGRREps1(t *testing.T) {
	cfg := fo.Longitudinal{EpsPerm: 3.0, Eps1: 1.0}
	const L, n = 16, 10000
	counts := make([]int64, L)
	r := fo.NewRand(7)
	total := 0
	for v := range counts {
		c := int64(r.IntN(n / L * 2))
		counts[v] = c
		total += int(c)
	}
	got, err := Estimates(cfg, L, counts, total)
	if err != nil {
		t.Fatal(err)
	}
	agg := fo.NewGRRAggregator(cfg.Eps1, L)
	for v, c := range counts {
		for i := int64(0); i < c; i++ {
			agg.Add(v)
		}
	}
	want := agg.Estimates()
	for v := range got {
		if math.Abs(got[v]-want[v]) > 1e-9 {
			t.Fatalf("value %d: longitudinal estimate %v != GRR(eps1) estimate %v", v, got[v], want[v])
		}
	}
}

func TestVarianceMatchesGRREps1(t *testing.T) {
	cfg := fo.Longitudinal{EpsPerm: 2.5, Eps1: 0.8}
	for _, L := range []int{2, 8, 64} {
		got := Variance(cfg, L, 5000)
		want := fo.GRR.Variance(cfg.Eps1, L, 5000)
		if math.Abs(got-want) > 1e-12*want {
			t.Fatalf("L=%d: longitudinal variance %v != GRR(eps1) variance %v", L, got, want)
		}
	}
}

// End-to-end unbiasedness by simulation: memoize once, report many rounds,
// invert each round; the per-round estimates must track the true frequencies
// within sampling noise, in every round (not just the first).
func TestSimulatedRoundsUnbiased(t *testing.T) {
	cfg := fo.Longitudinal{EpsPerm: 3.0, Eps1: 1.5}
	const L, n, rounds = 8, 40000, 5
	s := mustStages(t, cfg.EpsPerm, cfg.Eps1, L)
	r := fo.NewRand(42)

	truth := make([]float64, L)
	values := make([]int, n)
	for i := range values {
		v := i % L
		if v >= L/2 {
			v = 0 // skewed: half the mass on value 0
		}
		values[i] = v
		truth[v] += 1.0 / n
	}
	memos := make([]int, n)
	for i, v := range values {
		b, err := s.Memoize(v, r)
		if err != nil {
			t.Fatal(err)
		}
		memos[i] = b
	}
	for round := 0; round < rounds; round++ {
		counts := make([]int64, L)
		for _, b := range memos {
			y, err := s.Perturb(b, r)
			if err != nil {
				t.Fatal(err)
			}
			counts[y]++
		}
		est, err := Estimates(cfg, L, counts, n)
		if err != nil {
			t.Fatal(err)
		}
		for v := range truth {
			if math.Abs(est[v]-truth[v]) > 0.03 {
				t.Fatalf("round %d value %d: estimate %v too far from truth %v", round, v, est[v], truth[v])
			}
		}
	}
}

func TestAccountantFixedCumulative(t *testing.T) {
	a := Accountant{Cfg: fo.Longitudinal{EpsPerm: 2.0, Eps1: 0.5}}
	if got := a.PerRound(); got != 0.5 {
		t.Fatalf("per-round spend %v, want eps1", got)
	}
	if got := a.Cumulative(0); got != 0 {
		t.Fatalf("cumulative before any round should be 0, got %v", got)
	}
	if a.Cumulative(1) != 2.5 || a.Cumulative(30) != 2.5 || a.Cumulative(1000) != 2.5 {
		t.Fatal("cumulative spend must stay fixed at eps_perm + eps1 regardless of rounds")
	}
	if a.FreshCumulative(30) != 15.0 {
		t.Fatalf("fresh baseline should grow k*eps1, got %v", a.FreshCumulative(30))
	}
}
