package longitudinal

import (
	"os"
	"path/filepath"
	"testing"

	"felip/internal/fo"
)

// The satellite-e chaos drill: a device memoizes, is killed (store closed,
// process state dropped), restarts against the same memo file — and the
// memoized permanent value survives bit-identically, with no fresh ε_perm
// randomization drawn. The rng assertion is the teeth: a re-memoization
// would consume draws, so the restarted device's rng stream must be exactly
// where a pure per-round reporter's would be.
func TestChaosDeviceRestartKeepsMemo(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "memo.jsonl")
	cfg := fo.Longitudinal{EpsPerm: 2.0, Eps1: 0.5}
	s, err := NewStages(cfg, 16)
	if err != nil {
		t.Fatal(err)
	}

	store, err := OpenMemoStore(path)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDevice("dev-7", "plan-A", 3, 11, s, store, fo.NewRand(99))
	if err != nil {
		t.Fatal(err)
	}
	memo := d.Memo()
	if _, err := d.Report(); err != nil { // mid-sequence: one round reported
		t.Fatal(err)
	}
	store.Close() // kill -9: the in-memory device and store are gone

	// Restart. Same device id, same plan, fresh rng.
	store2, err := OpenMemoStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	if store2.Len() != 1 {
		t.Fatalf("memo store lost entries across restart: %d", store2.Len())
	}
	rng := fo.NewRand(1234)
	want := *rng // copy: what the stream looks like before NewDevice
	d2, err := NewDevice("dev-7", "plan-A", 3, 11, s, store2, rng)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Memo() != memo {
		t.Fatalf("memoized value changed across restart: %d -> %d", memo, d2.Memo())
	}
	if *rng != want {
		t.Fatal("restart consumed randomness: a fresh eps_perm memoization was drawn")
	}
	if _, err := d2.Report(); err != nil {
		t.Fatal(err)
	}
}

func TestMemoStoreRefusesForeignPlanAndGroup(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "memo.jsonl")
	cfg := fo.Longitudinal{EpsPerm: 2.0, Eps1: 1.0}
	s, err := NewStages(cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	store, err := OpenMemoStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if _, err := NewDevice("d1", "plan-A", 0, 2, s, store, fo.NewRand(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := NewDevice("d1", "plan-B", 0, 2, s, store, fo.NewRand(2)); err == nil {
		t.Fatal("memo drawn under plan-A must not be replayed against plan-B")
	}
	if _, err := NewDevice("d1", "plan-A", 1, 2, s, store, fo.NewRand(3)); err == nil {
		t.Fatal("memo recorded for group 0 must not be replayed as group 1")
	}
}

func TestMemoStoreDropsTornTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "memo.jsonl")
	store, err := OpenMemoStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Put(Entry{Device: "a", Fingerprint: "f", Group: 0, Value: 1}); err != nil {
		t.Fatal(err)
	}
	if err := store.Put(Entry{Device: "b", Fingerprint: "f", Group: 1, Value: 2}); err != nil {
		t.Fatal(err)
	}
	store.Close()

	// Crash mid-append: half a JSON line, no newline.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"device":"c","fing`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	store2, err := OpenMemoStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	if store2.Len() != 2 {
		t.Fatalf("want 2 surviving entries, got %d", store2.Len())
	}
	if _, ok := store2.Get("a"); !ok {
		t.Fatal("entry a lost")
	}
	if e, ok := store2.Get("b"); !ok || e.Value != 2 {
		t.Fatalf("entry b lost or damaged: %+v", e)
	}
	// And the tail was truncated, so new appends produce a clean file.
	if err := store2.Put(Entry{Device: "c", Fingerprint: "f", Group: 2, Value: 3}); err != nil {
		t.Fatal(err)
	}
	store2.Close()
	store3, err := OpenMemoStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer store3.Close()
	if store3.Len() != 3 {
		t.Fatalf("want 3 entries after re-append, got %d", store3.Len())
	}
}

func TestMemoStoreRefusesRerandomize(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenMemoStore(filepath.Join(dir, "memo.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if err := store.Put(Entry{Device: "d", Fingerprint: "f", Group: 0, Value: 4}); err != nil {
		t.Fatal(err)
	}
	if err := store.Put(Entry{Device: "d", Fingerprint: "f", Group: 0, Value: 5}); err == nil {
		t.Fatal("overwriting a memo with a different value must be refused")
	}
	if err := store.Put(Entry{Device: "d", Fingerprint: "f", Group: 0, Value: 4}); err != nil {
		t.Fatalf("idempotent re-put of the identical entry should succeed: %v", err)
	}
}
