package core

import (
	"fmt"
	"math"

	"felip/internal/estimate"
	"felip/internal/query"
)

// Answer estimates the fractional answer f_q of a multidimensional query
// (§5.6): 1-D queries read the best marginal directly; λ ≥ 2 queries are
// split into all C(λ,2) associated 2-D queries, answered per pair (directly
// off the grid for OUG, via the response matrix for OHG), and recombined
// with Algorithm 4.
func (a *Aggregator) Answer(q query.Query) (float64, error) {
	if err := q.Validate(a.schema); err != nil {
		return 0, err
	}
	lambda := q.Lambda()
	if lambda == 1 {
		return a.answer1D(q.Preds[0])
	}

	attrs := q.Attrs()
	// Selections and their negations are materialized once per predicate, not
	// per associated pair: a λ-D query used to rebuild each predicate's
	// negation mask λ−1 times inside pairAnswer.
	sels := make(map[int][]bool, lambda)
	nots := make(map[int][]bool, lambda)
	for _, p := range q.Preds {
		sel := p.Selection(a.schema.Attr(p.Attr).Size)
		sels[p.Attr] = sel
		nots[p.Attr] = negate(sel)
	}

	var pairs []estimate.PairAnswer
	for ii := 0; ii < lambda; ii++ {
		for jj := ii + 1; jj < lambda; jj++ {
			ai, aj := attrs[ii], attrs[jj]
			pa, err := a.pairAnswer(ai, aj, sels[ai], sels[aj], nots[ai], nots[aj])
			if err != nil {
				return 0, err
			}
			pa.I, pa.J = ii, jj
			pairs = append(pairs, pa)
		}
	}
	return estimate.EstimateLambda(lambda, pairs, a.ipfThreshold(), a.opts.LambdaMaxIter)
}

// ExpectedError returns an analytic a-priori estimate of the query's root
// expected squared error, from the optimizer's per-grid minimized objectives
// (§5.7: noise + sampling + non-uniformity; the λ-D estimation error is
// dataset-dependent and not included). For λ = 1 it is the error of the
// attribute's most precise grid; for λ ≥ 2 the per-pair errors of the
// associated 2-D queries are summed. The estimate uses the selectivity prior
// the grids were sized with, so it is a planning-time figure — useful for
// choosing ε or judging whether a workload is feasible before collecting.
func (a *Aggregator) ExpectedError(q query.Query) (float64, error) {
	if err := q.Validate(a.schema); err != nil {
		return 0, err
	}
	attrs := q.Attrs()
	if len(attrs) == 1 {
		if e, ok := a.err1[attrs[0]]; ok {
			return math.Sqrt(e), nil
		}
		if key, ok := a.cover2[attrs[0]]; ok {
			return math.Sqrt(a.err2[key]), nil
		}
		return 0, fmt.Errorf("core: no grid covers attribute %d", attrs[0])
	}
	var total float64
	for i := 0; i < len(attrs); i++ {
		for j := i + 1; j < len(attrs); j++ {
			e, ok := a.err2[[2]int{attrs[i], attrs[j]}]
			if !ok {
				return 0, fmt.Errorf("core: no 2-D grid for pair (%d,%d)", attrs[i], attrs[j])
			}
			total += e
		}
	}
	return math.Sqrt(total), nil
}

// defaultIPFThreshold is the iterative-fitting convergence threshold used
// when the population size is unknown. It is tighter than 1/n for any
// realistic n, so fitting still converges (maxIter bounds the work).
const defaultIPFThreshold = 1e-9

// ipfThreshold returns the paper's < 1/n convergence threshold for the
// iterative fitting sweeps. An aggregator restored from a snapshot (or built
// programmatically) can carry n = 0; the unguarded 1/n would be +Inf, which
// makes every sweep "converged" and silently stops IPF after one pass.
func (a *Aggregator) ipfThreshold() float64 {
	if a.n <= 0 {
		return defaultIPFThreshold
	}
	return 1 / float64(a.n)
}

// IPFThreshold exposes the round's iterative-fitting convergence threshold so
// an external read path (the serving engine) fits matrices with exactly the
// parameters this aggregator would use.
func (a *Aggregator) IPFThreshold() float64 { return a.ipfThreshold() }

// Strategy returns the round's grid strategy.
func (a *Aggregator) Strategy() Strategy { return a.opts.Strategy }

// MatrixMaxIter returns the response-matrix fitting sweep cap (Algorithm 3).
func (a *Aggregator) MatrixMaxIter() int { return a.opts.MatrixMaxIter }

// LambdaMaxIter returns the λ-D estimation sweep cap (Algorithm 4).
func (a *Aggregator) LambdaMaxIter() int { return a.opts.LambdaMaxIter }

// buildIndex precomputes the query-time lookup structures that replace
// per-query linear scans over the spec list: per-pair and per-attribute
// expected errors, and each attribute's covering 2-D grid (the first one in
// spec order, preserving the deterministic grid choice of the scan it
// replaces). Called once when the aggregator is assembled or restored.
func (a *Aggregator) buildIndex() {
	a.err1 = make(map[int]float64)
	a.err2 = make(map[[2]int]float64)
	a.cover2 = make(map[int][2]int)
	for _, sp := range a.specs {
		if sp.Is1D() {
			if _, ok := a.err1[sp.AttrX]; !ok {
				a.err1[sp.AttrX] = sp.ExpectedErr
			}
			continue
		}
		key := [2]int{sp.AttrX, sp.AttrY}
		if _, ok := a.err2[key]; !ok {
			a.err2[key] = sp.ExpectedErr
		}
		if _, ok := a.cover2[sp.AttrX]; !ok {
			a.cover2[sp.AttrX] = key
		}
		if _, ok := a.cover2[sp.AttrY]; !ok {
			a.cover2[sp.AttrY] = key
		}
	}
}

// CoveringGrid2D returns the pair key of the first 2-D grid (in spec order)
// containing the attribute — the deterministic fallback marginal used when an
// attribute has no 1-D grid of its own.
func (a *Aggregator) CoveringGrid2D(attr int) ([2]int, bool) {
	key, ok := a.cover2[attr]
	return key, ok
}

// answer1D estimates a single-predicate query from the most precise marginal
// available: the attribute's own 1-D grid under OHG, otherwise the marginal
// of the first 2-D grid containing the attribute (precomputed covering
// index; the choice matches the former linear scan over specs).
func (a *Aggregator) answer1D(p query.Predicate) (float64, error) {
	sel := p.Selection(a.schema.Attr(p.Attr).Size)
	if g1, ok := a.grids1[p.Attr]; ok {
		return g1.Mass(sel), nil
	}
	if key, ok := a.cover2[p.Attr]; ok {
		g2 := a.grids2[key]
		marg, err := g2.ValueMarginal(p.Attr)
		if err != nil {
			return 0, err
		}
		return maskSum(marg, sel), nil
	}
	return 0, fmt.Errorf("core: no grid covers attribute %d", p.Attr)
}

func maskSum(vals []float64, sel []bool) float64 {
	var s float64
	for i, v := range vals {
		if sel[i] {
			s += v
		}
	}
	return s
}

// pairAnswer computes the four sign-combination answers of the associated
// 2-D query on attributes (i < j). Negation masks are supplied by the caller,
// computed once per predicate per query.
func (a *Aggregator) pairAnswer(i, j int, selI, selJ, notI, notJ []bool) (estimate.PairAnswer, error) {
	if a.opts.Strategy == OHG && a.NeedsMatrix(i, j) {
		m, err := a.responseMatrix(i, j)
		if err != nil {
			return estimate.PairAnswer{}, err
		}
		return estimate.PairAnswer{
			PP: m.MaskSum(selI, selJ),
			PN: m.MaskSum(selI, notJ),
			NP: m.MaskSum(notI, selJ),
			NN: m.MaskSum(notI, notJ),
		}, nil
	}

	g2, ok := a.grids2[[2]int{i, j}]
	if !ok {
		return estimate.PairAnswer{}, fmt.Errorf("core: no 2-D grid for pair (%d,%d)", i, j)
	}
	return estimate.PairAnswer{
		PP: g2.Mass(selI, selJ),
		PN: g2.Mass(selI, notJ),
		NP: g2.Mass(notI, selJ),
		NN: g2.Mass(notI, notJ),
	}, nil
}

func negate(sel []bool) []bool {
	out := make([]bool, len(sel))
	for i, b := range sel {
		out[i] = !b
	}
	return out
}

// NeedsMatrix reports whether the pair benefits from a response matrix: at
// least one related 1-D grid exists to refine the 2-D grid (§5.5). A
// categorical×categorical grid is already its own response matrix.
func (a *Aggregator) NeedsMatrix(i, j int) bool {
	_, okI := a.grids1[i]
	_, okJ := a.grids1[j]
	return okI || okJ
}

// PairConstraints assembles the Algorithm-3 constraint set of pair (i < j):
// every 2-D grid cell binds its value rectangle δ(c) to the cell's estimated
// frequency, and each related 1-D grid (Γ from §5.5) adds band constraints.
// The constraint order is deterministic (2-D cells row-major, then the i-side
// 1-D grid, then the j-side), so every consumer — the aggregator's own
// single-mutex cache and the serving engine — fits bit-identical matrices.
func (a *Aggregator) PairConstraints(i, j int) ([]estimate.Constraint, error) {
	key := [2]int{i, j}
	g2, ok := a.grids2[key]
	if !ok {
		return nil, fmt.Errorf("core: no 2-D grid for pair (%d,%d)", i, j)
	}
	di := a.schema.Attr(i).Size
	dj := a.schema.Attr(j).Size

	var cons []estimate.Constraint
	// 2-D grid cells: δ(c) is the value rectangle of the cell.
	lx, ly := g2.X.Cells(), g2.Y.Cells()
	for cx := 0; cx < lx; cx++ {
		xLo, xHi := g2.X.CellRange(cx)
		for cy := 0; cy < ly; cy++ {
			yLo, yHi := g2.Y.CellRange(cy)
			cons = append(cons, estimate.Constraint{
				R:      estimate.Rect{XLo: xLo, XHi: xHi, YLo: yLo, YHi: yHi},
				Target: g2.At(cx, cy),
			})
		}
	}
	// Related 1-D grids add band constraints (Γ from §5.5: both 1-D grids
	// for num×num, only the numerical one when the other attribute is
	// categorical).
	if g1, ok := a.grids1[i]; ok {
		for c := 0; c < g1.L(); c++ {
			lo, hi := g1.Axis.CellRange(c)
			cons = append(cons, estimate.Constraint{
				R:      estimate.Rect{XLo: lo, XHi: hi, YLo: 0, YHi: dj},
				Target: g1.Freq[c],
			})
		}
	}
	if g1, ok := a.grids1[j]; ok {
		for c := 0; c < g1.L(); c++ {
			lo, hi := g1.Axis.CellRange(c)
			cons = append(cons, estimate.Constraint{
				R:      estimate.Rect{XLo: 0, XHi: di, YLo: lo, YHi: hi},
				Target: g1.Freq[c],
			})
		}
	}
	return cons, nil
}

// responseMatrix returns the per-value response matrix M(i,j) built from the
// related grid set Γ (Algorithm 3), caching the result.
//
// This is the legacy single-mutex read path: the lock is held across the full
// matrix build and iterative fit, so a cache miss on one pair blocks every
// concurrent query, including cache hits on other pairs. It is preserved as
// the baseline the serving engine (internal/serve) is benchmarked against;
// heavy concurrent query traffic should go through serve.Engine, whose
// per-pair singleflight fits matrices without a global lock.
func (a *Aggregator) responseMatrix(i, j int) (*estimate.Matrix, error) {
	key := [2]int{i, j}
	a.mu.Lock()
	defer a.mu.Unlock()
	if m, ok := a.matrices[key]; ok {
		return m, nil
	}
	di := a.schema.Attr(i).Size
	dj := a.schema.Attr(j).Size
	m, err := estimate.NewMatrix(di, dj)
	if err != nil {
		return nil, err
	}
	cons, err := a.PairConstraints(i, j)
	if err != nil {
		return nil, err
	}
	m.Fit(cons, a.ipfThreshold(), a.opts.MatrixMaxIter)
	a.matrices[key] = m
	return m, nil
}
