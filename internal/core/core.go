// Package core implements FELIP (paper §5): locally differentially private
// frequency estimation on multidimensional datasets with categorical and
// numerical attributes, through optimized 1-D/2-D grids, per-grid adaptive
// frequency oracles, consistency post-processing, response matrices and λ-D
// query estimation.
//
// The two strategies of the paper are provided: Optimized Uniform Grid (OUG,
// 2-D grids only, uniformity assumption inside cells) and Optimized Hybrid
// Grid (OHG, auxiliary 1-D grids for numerical attributes refine the 2-D
// estimates via response matrices).
//
// The entry point is Collect, which simulates a full collection round over a
// dataset — planning the grids, partitioning the population, perturbing every
// user's report client-side under ε-LDP, aggregating, and post-processing —
// and returns an Aggregator that answers queries.
package core

import (
	"fmt"

	"felip/internal/fo"
)

// Strategy selects between the paper's two grid strategies.
type Strategy uint8

const (
	// OUG (Optimized Uniform Grid) collects one 2-D grid per attribute pair
	// and answers queries under the uniformity assumption.
	OUG Strategy = iota
	// OHG (Optimized Hybrid Grid) adds 1-D grids for numerical attributes and
	// refines answers through response matrices.
	OHG
)

// String returns "OUG" or "OHG".
func (s Strategy) String() string {
	switch s {
	case OUG:
		return "OUG"
	case OHG:
		return "OHG"
	default:
		return fmt.Sprintf("Strategy(%d)", uint8(s))
	}
}

// ReportMode re-exports fo.ReportMode: how the population spends its budget
// across the plan's grids. The zero value is ModeFELIP, the paper's design.
type ReportMode = fo.ReportMode

// The three reporting designs (see fo.ReportMode).
const (
	ModeFELIP = fo.ModeFELIP
	ModeSPL   = fo.ModeSPL
	ModeRSFD  = fo.ModeRSFD
)

// Options configures one FELIP collection round.
type Options struct {
	// Strategy is OUG or OHG.
	Strategy Strategy
	// Epsilon is the per-user privacy budget ε (> 0).
	Epsilon float64
	// Selectivity is the aggregator's prior on per-attribute query
	// selectivity used when sizing grids (paper §5, default 0.5).
	Selectivity float64
	// SelectivityByAttr optionally overrides Selectivity per attribute.
	SelectivityByAttr map[int]float64
	// Alpha1 and Alpha2 are the non-uniformity constants (default 0.7, 0.03).
	Alpha1, Alpha2 float64
	// Seed makes the whole round deterministic. Zero draws a fresh seed.
	Seed uint64
	// ForceProtocol disables the adaptive frequency oracle and uses the given
	// protocol for every grid (the OUG-OLH / OHG-OLH ablations of §6.3).
	ForceProtocol *fo.Protocol
	// Mode selects the reporting design: FELIP divides users across grids
	// (the paper's choice, Theorem 5.1, and the zero-value default), SPL
	// divides the budget ε/m across all grids, RS+FD sends every grid from
	// every user at the amplified ε' with fake data on the unsampled grids.
	// Non-FELIP modes plan their grids with mode-aware noise formulas.
	Mode ReportMode
	// Longitudinal enables memoized two-stage reporting for devices that
	// report across many rounds (see internal/longitudinal): a permanent
	// ε_perm randomization memoized per device, plus a per-round perturbation
	// whose composed channel is exactly GRR(Epsilon). Under longitudinal,
	// Epsilon IS the per-round budget ε_1 — planning, aggregation and
	// estimation all run at it, with GRR forced on every grid (the two-stage
	// chain is a GRR↦GRR composition). Eps1, if zero, is filled from Epsilon;
	// setting both to different values is an error. Longitudinal requires
	// Mode == ModeFELIP (one report per device per round) and no DivideBudget.
	// Nil is the one-shot path, bit-identical to v1 behavior.
	Longitudinal *fo.Longitudinal
	// DivideBudget reproduces the §5.1 partitioning ablation in Collect:
	// every user reports every grid with ε/m *on the FELIP-shaped plan*, so
	// the comparison isolates the division strategy at matched grids. This
	// differs from Mode == ModeSPL, which re-plans the grids for the ε/m
	// per-report budget. The incremental Collector has no matched-plan
	// ablation: it treats DivideBudget as Mode == ModeSPL. Combining
	// DivideBudget with a non-FELIP Mode is an error.
	DivideBudget bool
	// PostProcessRounds is the number of consistency ↔ Norm-Sub alternations
	// (§5.4). Default 3.
	PostProcessRounds int
	// MatrixMaxIter caps the weighted-update sweeps when building a response
	// matrix (Algorithm 3). Default 50.
	MatrixMaxIter int
	// LambdaMaxIter caps the IPF sweeps of λ-D estimation (Algorithm 4).
	// Default 100.
	LambdaMaxIter int
	// MarginalHint optionally supplies an estimated per-value marginal for
	// numerical attributes (keyed by schema index, length = domain size).
	// When present, the planner bins that attribute's axes equi-mass at the
	// hinted quantiles instead of equal width — the paper's §7 extension to
	// avoid cells with low true counts. Package adaptive produces the hints
	// from a first collection phase.
	MarginalHint map[int][]float64
	// StreamingAggregation makes the incremental Collector fold OLH reports
	// into support counts as they arrive (in batches) instead of buffering
	// raw reports until Finalize: aggregator memory stays O(grids·L) instead
	// of O(n), at the cost of paying the fold during collection. The
	// estimates are bit-identical either way. Only Collector reads this; the
	// simulated Collect path always folds at estimation time.
	StreamingAggregation bool
}

// withDefaults validates and normalizes the options.
func (o Options) withDefaults() (Options, error) {
	if o.Epsilon <= 0 {
		return o, fmt.Errorf("core: epsilon must be positive, got %v", o.Epsilon)
	}
	if o.Strategy != OUG && o.Strategy != OHG {
		return o, fmt.Errorf("core: unknown strategy %v", o.Strategy)
	}
	switch o.Mode {
	case fo.ModeFELIP, fo.ModeSPL, fo.ModeRSFD:
	default:
		return o, fmt.Errorf("core: unknown report mode %v", o.Mode)
	}
	if o.DivideBudget && o.Mode != fo.ModeFELIP {
		return o, fmt.Errorf("core: DivideBudget conflicts with mode %v", o.Mode)
	}
	if o.Longitudinal != nil {
		if o.Mode != fo.ModeFELIP {
			return o, fmt.Errorf("core: longitudinal reporting requires mode FELIP, got %v", o.Mode)
		}
		if o.DivideBudget {
			return o, fmt.Errorf("core: longitudinal reporting conflicts with DivideBudget")
		}
		if o.ForceProtocol != nil && *o.ForceProtocol != fo.GRR {
			return o, fmt.Errorf("core: longitudinal reporting is a GRR two-stage chain; cannot force %v", *o.ForceProtocol)
		}
		// Copy before filling defaults so the caller's struct is never mutated.
		l := *o.Longitudinal
		if l.Eps1 == 0 {
			l.Eps1 = o.Epsilon
		}
		if l.Eps1 != o.Epsilon {
			return o, fmt.Errorf("core: longitudinal eps1 %v disagrees with Epsilon %v (Epsilon is the per-round budget)",
				l.Eps1, o.Epsilon)
		}
		if err := (&l).Validate(); err != nil {
			return o, err
		}
		o.Longitudinal = &l
	}
	if o.Selectivity == 0 {
		o.Selectivity = 0.5
	}
	if o.Selectivity < 0 || o.Selectivity > 1 {
		return o, fmt.Errorf("core: selectivity %v outside (0,1]", o.Selectivity)
	}
	if o.Alpha1 == 0 {
		o.Alpha1 = 0.7
	}
	if o.Alpha2 == 0 {
		o.Alpha2 = 0.03
	}
	if o.Seed == 0 {
		o.Seed = fo.AutoSeed()
	}
	if o.PostProcessRounds <= 0 {
		o.PostProcessRounds = 3
	}
	if o.MatrixMaxIter <= 0 {
		o.MatrixMaxIter = 50
	}
	if o.LambdaMaxIter <= 0 {
		o.LambdaMaxIter = 100
	}
	return o, nil
}

// selectivityFor returns the sizing prior for one attribute.
func (o Options) selectivityFor(attr int) float64 {
	if s, ok := o.SelectivityByAttr[attr]; ok && s > 0 && s <= 1 {
		return s
	}
	return o.Selectivity
}
