package core

import (
	"encoding/json"
	"fmt"
	"io"

	"felip/internal/domain"
	"felip/internal/estimate"
	"felip/internal/fo"
	"felip/internal/grid"
)

// GridSnapshot is the serializable state of one post-processed grid.
type GridSnapshot struct {
	AttrX   int       `json:"attr_x"`
	AttrY   int       `json:"attr_y"` // -1 for 1-D grids
	BoundsX []int     `json:"bounds_x"`
	BoundsY []int     `json:"bounds_y,omitempty"`
	Proto   string    `json:"proto"`
	Freq    []float64 `json:"freq"`
	Var0    float64   `json:"var0"`
	// ExpectedErr preserves the optimizer's minimized objective so
	// Aggregator.ExpectedError keeps working after a restore.
	ExpectedErr float64 `json:"expected_err"`
}

// Snapshot is the full serializable state of a finished collection round:
// everything needed to answer queries later without re-collecting. Perturbed
// per-user reports are NOT retained — only the post-processed aggregate
// grids, which are safe to persist under the same ε-LDP guarantee
// (post-processing of a DP output).
type Snapshot struct {
	Version       int                `json:"version"`
	Strategy      string             `json:"strategy"`
	Epsilon       float64            `json:"epsilon"`
	N             int                `json:"n"`
	Attributes    []domain.Attribute `json:"attributes"`
	Grids         []GridSnapshot     `json:"grids"`
	MatrixMaxIter int                `json:"matrix_max_iter"`
	LambdaMaxIter int                `json:"lambda_max_iter"`
}

// snapshotVersion guards the on-disk format.
const snapshotVersion = 1

// Snapshot captures the aggregator's state for persistence.
func (a *Aggregator) Snapshot() Snapshot {
	s := Snapshot{
		Version:       snapshotVersion,
		Strategy:      a.opts.Strategy.String(),
		Epsilon:       a.opts.Epsilon,
		N:             a.n,
		Attributes:    a.schema.Attrs(),
		MatrixMaxIter: a.opts.MatrixMaxIter,
		LambdaMaxIter: a.opts.LambdaMaxIter,
	}
	for _, sp := range a.specs {
		gs := GridSnapshot{
			AttrX:       sp.AttrX,
			AttrY:       sp.AttrY,
			BoundsX:     sp.AxisX.Boundaries(),
			Proto:       sp.Proto.String(),
			ExpectedErr: sp.ExpectedErr,
		}
		if sp.Is1D() {
			g1 := a.grids1[sp.AttrX]
			gs.Freq = append([]float64(nil), g1.Freq...)
			gs.Var0 = a.var01[sp.AttrX]
		} else {
			gs.BoundsY = sp.AxisY.Boundaries()
			key := [2]int{sp.AttrX, sp.AttrY}
			g2 := a.grids2[key]
			gs.Freq = append([]float64(nil), g2.Freq...)
			gs.Var0 = a.var02[key]
		}
		s.Grids = append(s.Grids, gs)
	}
	return s
}

// Restore rebuilds a query-ready aggregator from a snapshot.
func Restore(s Snapshot) (*Aggregator, error) {
	if s.Version != snapshotVersion {
		return nil, fmt.Errorf("core: snapshot version %d not supported (want %d)", s.Version, snapshotVersion)
	}
	schema, err := domain.NewSchema(s.Attributes...)
	if err != nil {
		return nil, err
	}
	var strategy Strategy
	switch s.Strategy {
	case "OUG":
		strategy = OUG
	case "OHG":
		strategy = OHG
	default:
		return nil, fmt.Errorf("core: snapshot has unknown strategy %q", s.Strategy)
	}
	if s.Epsilon <= 0 || s.N < 1 {
		return nil, fmt.Errorf("core: snapshot has invalid epsilon %v / n %d", s.Epsilon, s.N)
	}
	opts, err := Options{
		Strategy:      strategy,
		Epsilon:       s.Epsilon,
		MatrixMaxIter: s.MatrixMaxIter,
		LambdaMaxIter: s.LambdaMaxIter,
	}.withDefaults()
	if err != nil {
		return nil, err
	}

	agg := &Aggregator{
		schema:   schema,
		opts:     opts,
		n:        s.N,
		grids1:   make(map[int]*grid.Grid1D),
		grids2:   make(map[[2]int]*grid.Grid2D),
		var01:    make(map[int]float64),
		var02:    make(map[[2]int]float64),
		matrices: make(map[[2]int]*estimate.Matrix),
	}
	for i, gs := range s.Grids {
		var proto fo.Protocol
		switch gs.Proto {
		case "GRR":
			proto = fo.GRR
		case "OLH":
			proto = fo.OLH
		case "OUE":
			proto = fo.OUE
		default:
			return nil, fmt.Errorf("core: grid %d: unknown protocol %q", i, gs.Proto)
		}
		if gs.AttrX < 0 || gs.AttrX >= schema.Len() {
			return nil, fmt.Errorf("core: grid %d: attr_x %d out of range", i, gs.AttrX)
		}
		axX, err := grid.NewCustomAxis(schema.Attr(gs.AttrX).Size, gs.BoundsX)
		if err != nil {
			return nil, fmt.Errorf("core: grid %d: %w", i, err)
		}
		sp := GridSpec{AttrX: gs.AttrX, AttrY: gs.AttrY, AxisX: axX, Proto: proto, ExpectedErr: gs.ExpectedErr}
		if gs.AttrY >= 0 {
			if gs.AttrY >= schema.Len() {
				return nil, fmt.Errorf("core: grid %d: attr_y %d out of range", i, gs.AttrY)
			}
			axY, err := grid.NewCustomAxis(schema.Attr(gs.AttrY).Size, gs.BoundsY)
			if err != nil {
				return nil, fmt.Errorf("core: grid %d: %w", i, err)
			}
			sp.AxisY = axY
		} else {
			sp.AttrY = -1
		}
		if len(gs.Freq) != sp.L() {
			return nil, fmt.Errorf("core: grid %d: freq length %d != cells %d", i, len(gs.Freq), sp.L())
		}
		freq := append([]float64(nil), gs.Freq...)
		if sp.Is1D() {
			g1 := grid.NewGrid1D(sp.AttrX, sp.AxisX)
			if err := g1.SetFreq(freq); err != nil {
				return nil, err
			}
			agg.grids1[sp.AttrX] = g1
			agg.var01[sp.AttrX] = gs.Var0
		} else {
			key := [2]int{sp.AttrX, sp.AttrY}
			g2 := grid.NewGrid2D(sp.AttrX, sp.AttrY, sp.AxisX, sp.AxisY)
			if err := g2.SetFreq(freq); err != nil {
				return nil, err
			}
			agg.grids2[key] = g2
			agg.var02[key] = gs.Var0
		}
		agg.specs = append(agg.specs, sp)
	}
	if len(agg.specs) == 0 {
		return nil, fmt.Errorf("core: snapshot has no grids")
	}
	agg.buildIndex()
	return agg, nil
}

// Save writes the aggregator's snapshot as JSON.
func (a *Aggregator) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(a.Snapshot())
}

// Load reads a JSON snapshot and rebuilds the aggregator.
func Load(r io.Reader) (*Aggregator, error) {
	var s Snapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("core: decoding snapshot: %w", err)
	}
	return Restore(s)
}
