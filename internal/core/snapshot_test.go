package core

import (
	"bytes"
	"math"
	"os"
	"strings"
	"testing"

	"felip/internal/query"
)

func TestSnapshotRoundTrip(t *testing.T) {
	agg, _ := collectFor(t, OHG, 20000, 51)
	var buf bytes.Buffer
	if err := agg.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.N() != agg.N() || restored.Schema().Len() != agg.Schema().Len() {
		t.Fatalf("metadata mismatch: %d/%d", restored.N(), restored.Schema().Len())
	}
	if len(restored.Specs()) != len(agg.Specs()) {
		t.Fatalf("spec count %d != %d", len(restored.Specs()), len(agg.Specs()))
	}
	// Identical answers for several queries, including matrix-backed pairs.
	for _, q := range []query.Query{
		{Preds: []query.Predicate{query.NewRange(0, 8, 23)}},
		{Preds: []query.Predicate{query.NewRange(0, 8, 23), query.NewIn(2, 0, 1)}},
		{Preds: []query.Predicate{query.NewRange(0, 4, 20), query.NewRange(1, 8, 30), query.NewIn(3, 1)}},
	} {
		want, err := agg.Answer(q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := restored.Answer(q)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("query %v: restored answer %v != original %v", q, got, want)
		}
	}
	// Expected-error metadata survives too.
	q := query.Query{Preds: []query.Predicate{query.NewRange(0, 8, 23), query.NewIn(2, 0, 1)}}
	weWant, err := agg.ExpectedError(q)
	if err != nil {
		t.Fatal(err)
	}
	weGot, err := restored.ExpectedError(q)
	if err != nil {
		t.Fatal(err)
	}
	if weGot != weWant {
		t.Errorf("expected error changed across restore: %v != %v", weGot, weWant)
	}
}

func TestRestoreValidation(t *testing.T) {
	agg, _ := collectFor(t, OUG, 5000, 53)
	good := agg.Snapshot()

	bad := good
	bad.Version = 99
	if _, err := Restore(bad); err == nil {
		t.Error("wrong version accepted")
	}

	bad = good
	bad.Strategy = "XYZ"
	if _, err := Restore(bad); err == nil {
		t.Error("unknown strategy accepted")
	}

	bad = good
	bad.Epsilon = 0
	if _, err := Restore(bad); err == nil {
		t.Error("eps=0 accepted")
	}

	bad = good
	bad.Grids = nil
	if _, err := Restore(bad); err == nil {
		t.Error("empty grids accepted")
	}

	bad = good
	bad.Grids = append([]GridSnapshot(nil), good.Grids...)
	bad.Grids[0].Proto = "???"
	if _, err := Restore(bad); err == nil {
		t.Error("unknown grid protocol accepted")
	}

	bad = good
	bad.Grids = append([]GridSnapshot(nil), good.Grids...)
	bad.Grids[0].Freq = bad.Grids[0].Freq[:1]
	if _, err := Restore(bad); err == nil {
		t.Error("wrong freq length accepted")
	}

	bad = good
	bad.Grids = append([]GridSnapshot(nil), good.Grids...)
	bad.Grids[0].AttrX = 99
	if _, err := Restore(bad); err == nil {
		t.Error("out-of-range attribute accepted")
	}
}

// TestLoadGoldenSnapshot pins the on-disk snapshot format: the committed
// fixture (written by `felipquery -save` with the v1 format) must keep
// loading and keep producing the same answer bit-for-bit. If this test
// breaks, the format changed — bump snapshotVersion and migrate instead.
func TestLoadGoldenSnapshot(t *testing.T) {
	f, err := os.Open("../../testdata/snapshot_v1.json")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	agg, err := Load(f)
	if err != nil {
		t.Fatal(err)
	}
	if agg.N() != 8000 || agg.Schema().Len() != 3 {
		t.Fatalf("fixture metadata: n=%d k=%d", agg.N(), agg.Schema().Len())
	}
	q := query.Query{Preds: []query.Predicate{query.NewRange(0, 8, 23)}}
	got, err := agg.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	const want = 0.714971174733
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("golden answer drifted: got %.12f, want %.12f", got, want)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Load(strings.NewReader(`{"version":1}`)); err == nil {
		t.Error("empty snapshot accepted")
	}
}
