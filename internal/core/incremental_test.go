package core

import (
	"math"
	"sync"
	"testing"

	"felip/internal/dataset"
	"felip/internal/fo"
	"felip/internal/query"
)

func TestNewClientValidation(t *testing.T) {
	specs, err := BuildPlan(mixedSchema(), 10000, Options{Strategy: OHG, Epsilon: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewClient(nil, 1, 1); err == nil {
		t.Error("empty plan accepted")
	}
	if _, err := NewClient(specs, 0, 1); err == nil {
		t.Error("eps=0 accepted")
	}
	c, err := NewClient(specs, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c.Groups() != len(specs) {
		t.Errorf("Groups = %d", c.Groups())
	}
	if _, err := c.Perturb(-1, func(int) int { return 0 }); err == nil {
		t.Error("negative group accepted")
	}
	if _, err := c.Perturb(len(specs), func(int) int { return 0 }); err == nil {
		t.Error("out-of-range group accepted")
	}
}

func TestNewCollectorValidation(t *testing.T) {
	if _, err := NewCollector(mixedSchema(), 10000, Options{Strategy: OHG}); err == nil {
		t.Error("eps=0 accepted")
	}
	// Budget-split plans are routed through the SPL mode rather than refused.
	col, err := NewCollector(mixedSchema(), 10000, Options{Strategy: OHG, Epsilon: 1, DivideBudget: true})
	if err != nil {
		t.Errorf("budget division should route through SPL mode: %v", err)
	} else if col.Mode() != ModeSPL {
		t.Errorf("DivideBudget collector mode = %v, want SPL", col.Mode())
	}
	if _, err := NewCollector(mixedSchema(), 10000, Options{Strategy: OHG, Epsilon: 1, DivideBudget: true, Mode: ModeRSFD}); err == nil {
		t.Error("DivideBudget + RS+FD accepted")
	}
	if _, err := NewCollector(mixedSchema(), 0, Options{Strategy: OHG, Epsilon: 1}); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestCollectorRejectsBadReports(t *testing.T) {
	col, err := NewCollector(mixedSchema(), 10000, Options{Strategy: OHG, Epsilon: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	specs := col.Specs()
	if err := col.Add(Report{Group: -1}); err == nil {
		t.Error("negative group accepted")
	}
	if err := col.Add(Report{Group: len(specs)}); err == nil {
		t.Error("unknown group accepted")
	}
	// Wrong protocol for the group.
	wrong := fo.GRR
	if specs[0].Proto == fo.GRR {
		wrong = fo.OLH
	}
	if err := col.Add(Report{Group: 0, Proto: wrong}); err == nil {
		t.Error("wrong-protocol report accepted")
	}
	// Out-of-range values.
	for g, sp := range specs {
		switch sp.Proto {
		case fo.GRR:
			if err := col.Add(Report{Group: g, Proto: fo.GRR, Value: sp.L()}); err == nil {
				t.Error("out-of-range GRR value accepted")
			}
		case fo.OLH:
			if err := col.Add(Report{Group: g, Proto: fo.OLH, Value: 255}); err == nil {
				t.Error("out-of-range OLH value accepted")
			}
		}
	}
	if _, err := col.Finalize(); err == nil {
		t.Error("finalize with zero reports accepted")
	}
}

func TestAssignGroupRoundRobin(t *testing.T) {
	col, err := NewCollector(mixedSchema(), 10000, Options{Strategy: OUG, Epsilon: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	m := len(col.Specs())
	counts := make([]int, m)
	for i := 0; i < 5*m+3; i++ {
		counts[col.AssignGroup()]++
	}
	for g, c := range counts {
		if c < 5 || c > 6 {
			t.Errorf("group %d assigned %d users, want 5-6", g, c)
		}
	}
}

// End-to-end through the report-level API: a population of simulated devices
// each fetches the plan, perturbs locally, submits; the finalized aggregator
// must answer accurately. This is the deployment path (client/server split),
// distinct from the simulated Collect path.
func TestIncrementalEndToEnd(t *testing.T) {
	s := mixedSchema()
	ds := dataset.NewNormal().Generate(s, 60000, 5)
	col, err := NewCollector(s, ds.N(), Options{Strategy: OHG, Epsilon: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewClient(col.Specs(), col.Epsilon(), 9)
	if err != nil {
		t.Fatal(err)
	}
	for row := 0; row < ds.N(); row++ {
		group := col.AssignGroup()
		rep, err := cl.Perturb(group, func(attr int) int { return ds.Value(row, attr) })
		if err != nil {
			t.Fatal(err)
		}
		if err := col.Add(rep); err != nil {
			t.Fatal(err)
		}
	}
	if col.N() != ds.N() {
		t.Fatalf("collector N = %d", col.N())
	}
	agg, err := col.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if err := col.Add(Report{Group: 0, Proto: col.Specs()[0].Proto}); err == nil {
		t.Error("Add after Finalize accepted")
	}

	cols := [][]uint16{ds.Col(0), ds.Col(1), ds.Col(2), ds.Col(3)}
	for _, q := range []query.Query{
		{Preds: []query.Predicate{query.NewRange(0, 8, 23)}},
		{Preds: []query.Predicate{query.NewRange(0, 8, 23), query.NewIn(2, 0, 1)}},
	} {
		truth := query.Evaluate(q, cols)
		got, err := agg.Answer(q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-truth) > 0.06 {
			t.Errorf("query %v: got %v, truth %v", q, got, truth)
		}
	}
}

// Failure injection: a fraction of devices send garbage (but wire-valid)
// reports. LDP aggregation has no way to detect them — the estimates shift —
// but the pipeline must stay numerically sane: finite, non-negative,
// normalized grids and bounded query answers.
func TestCollectorSurvivesGarbageReports(t *testing.T) {
	s := mixedSchema()
	ds := dataset.NewNormal().Generate(s, 20000, 61)
	col, err := NewCollector(s, ds.N(), Options{Strategy: OHG, Epsilon: 1, Seed: 63})
	if err != nil {
		t.Fatal(err)
	}
	specs := col.Specs()
	cl, err := NewClient(specs, col.Epsilon(), 65)
	if err != nil {
		t.Fatal(err)
	}
	rng := fo.NewRand(67)
	for row := 0; row < ds.N(); row++ {
		group := col.AssignGroup()
		var rep Report
		if row%10 == 0 {
			// Adversarial device: protocol-conformant but arbitrary values.
			sp := specs[group]
			rep = Report{Group: group, Proto: sp.Proto}
			switch sp.Proto {
			case fo.GRR:
				rep.Value = rng.IntN(sp.L())
			case fo.OLH:
				rep.Value = rng.IntN(fo.OptimalG(col.Epsilon()))
				rep.Seed = rng.Uint64()
			}
		} else {
			rep, err = cl.Perturb(group, func(attr int) int { return ds.Value(row, attr) })
			if err != nil {
				t.Fatal(err)
			}
		}
		if err := col.Add(rep); err != nil {
			t.Fatal(err)
		}
	}
	agg, err := col.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	for _, sp := range agg.Specs() {
		var freq []float64
		if sp.Is1D() {
			g, _ := agg.Grid1D(sp.AttrX)
			freq = g.Freq
		} else {
			g, _ := agg.Grid2D(sp.AttrX, sp.AttrY)
			freq = g.Freq
		}
		var sum float64
		for _, f := range freq {
			if math.IsNaN(f) || math.IsInf(f, 0) || f < -1e-9 {
				t.Fatalf("grid %v corrupted: %v", sp, f)
			}
			sum += f
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Fatalf("grid %v sums to %v", sp, sum)
		}
	}
	q := query.Query{Preds: []query.Predicate{query.NewRange(0, 8, 23), query.NewIn(2, 0, 1)}}
	got, err := agg.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	if got < -1e-9 || got > 1+1e-9 || math.IsNaN(got) {
		t.Fatalf("answer %v out of range", got)
	}
}

// Check validates without mutating; GroupCounts and ResumeAssignment expose
// the state a restarted aggregator needs to resume a round.
func TestCollectorResumeSurface(t *testing.T) {
	col, err := NewCollector(mixedSchema(), 10000, Options{Strategy: OHG, Epsilon: 1, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	specs := col.Specs()
	m := len(specs)
	cl, err := NewClient(specs, col.Epsilon(), 23)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := cl.Perturb(0, func(int) int { return 0 })
	if err != nil {
		t.Fatal(err)
	}
	if err := col.Check(rep); err != nil {
		t.Fatalf("Check rejected a valid report: %v", err)
	}
	if col.N() != 0 {
		t.Fatalf("Check mutated the collector: N = %d", col.N())
	}
	if err := col.Check(Report{Group: m}); err == nil {
		t.Error("Check accepted an unknown group")
	}

	const users = 17
	for i := 0; i < users; i++ {
		g := col.AssignGroup()
		rep, err := cl.Perturb(g, func(int) int { return 0 })
		if err != nil {
			t.Fatal(err)
		}
		if err := col.Add(rep); err != nil {
			t.Fatal(err)
		}
	}
	counts := col.GroupCounts()
	if len(counts) != m {
		t.Fatalf("GroupCounts len %d, want %d", len(counts), m)
	}
	var total int
	for g, c := range counts {
		if c < users/m || c > users/m+1 {
			t.Errorf("group %d holds %d reports, want %d-%d", g, c, users/m, users/m+1)
		}
		total += c
	}
	if total != users {
		t.Fatalf("GroupCounts sum %d, want %d", total, users)
	}

	// A fresh collector resumed at `users` continues the same round-robin
	// sequence the original would have produced.
	col2, err := NewCollector(mixedSchema(), 10000, Options{Strategy: OHG, Epsilon: 1, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	col2.ResumeAssignment(users)
	if got, want := col2.AssignGroup(), col.AssignGroup(); got != want {
		t.Errorf("resumed assignment %d, original %d", got, want)
	}
}

// The collector must tolerate concurrent submissions.
func TestCollectorConcurrentAdds(t *testing.T) {
	s := mixedSchema()
	ds := dataset.NewUniform().Generate(s, 8000, 11)
	col, err := NewCollector(s, ds.N(), Options{Strategy: OUG, Epsilon: 1, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl, err := NewClient(col.Specs(), col.Epsilon(), uint64(100+w))
			if err != nil {
				errCh <- err
				return
			}
			for row := w; row < ds.N(); row += workers {
				rep, err := cl.Perturb(col.AssignGroup(), func(attr int) int { return ds.Value(row, attr) })
				if err != nil {
					errCh <- err
					return
				}
				if err := col.Add(rep); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if col.N() != ds.N() {
		t.Fatalf("collector N = %d, want %d", col.N(), ds.N())
	}
	if _, err := col.Finalize(); err != nil {
		t.Fatal(err)
	}
}

// TestCollectorPartialsShardEquivalence: splitting a device population across
// shard collectors, exporting each shard's partial states, and importing them
// into a coordinator collector must finalize into an aggregator whose grids
// are bit-identical to a single collector that saw every report.
func TestCollectorPartialsShardEquivalence(t *testing.T) {
	s := mixedSchema()
	ds := dataset.NewNormal().Generate(s, 9000, 71)
	opts := Options{Strategy: OHG, Epsilon: 1.5, Seed: 73}

	single, err := NewCollector(s, ds.N(), opts)
	if err != nil {
		t.Fatal(err)
	}
	const k = 3
	shards := make([]*Collector, k)
	for i := range shards {
		if shards[i], err = NewCollector(s, ds.N(), opts); err != nil {
			t.Fatal(err)
		}
	}
	cl, err := NewClient(single.Specs(), single.Epsilon(), 75)
	if err != nil {
		t.Fatal(err)
	}
	m := len(single.Specs())
	for row := 0; row < ds.N(); row++ {
		rep, err := cl.Perturb(row%m, func(attr int) int { return ds.Value(row, attr) })
		if err != nil {
			t.Fatal(err)
		}
		if err := single.Add(rep); err != nil {
			t.Fatal(err)
		}
		if err := shards[row%k].Add(rep); err != nil {
			t.Fatal(err)
		}
	}

	coord, err := NewCollector(s, ds.N(), opts)
	if err != nil {
		t.Fatal(err)
	}
	for i, sh := range shards {
		states, err := sh.ExportPartials()
		if err != nil {
			t.Fatalf("shard %d export: %v", i, err)
		}
		// Export seals the shard.
		if err := sh.Add(Report{Group: 0, Proto: sh.Specs()[0].Proto}); err == nil {
			t.Fatalf("shard %d accepted a report after export", i)
		}
		// Export is idempotent: a re-pull returns the identical states.
		again, err := sh.ExportPartials()
		if err != nil {
			t.Fatal(err)
		}
		for g := range states {
			if states[g].N != again[g].N {
				t.Fatalf("shard %d re-export differs at grid %d", i, g)
			}
		}
		if err := coord.ImportPartials(states); err != nil {
			t.Fatalf("shard %d import: %v", i, err)
		}
	}
	if coord.N() != ds.N() {
		t.Fatalf("coordinator N = %d, want %d", coord.N(), ds.N())
	}

	aggSingle, err := single.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	aggCoord, err := coord.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if aggCoord.N() != aggSingle.N() {
		t.Fatalf("merged N = %d, single N = %d", aggCoord.N(), aggSingle.N())
	}
	for _, sp := range aggSingle.Specs() {
		if sp.Is1D() {
			g1, _ := aggSingle.Grid1D(sp.AttrX)
			g2, ok := aggCoord.Grid1D(sp.AttrX)
			if !ok {
				t.Fatalf("merged aggregator missing 1-D grid %d", sp.AttrX)
			}
			for v := range g1.Freq {
				if g1.Freq[v] != g2.Freq[v] {
					t.Fatalf("grid %d freq[%d]: merged %v != single %v (not bit-identical)",
						sp.AttrX, v, g2.Freq[v], g1.Freq[v])
				}
			}
		} else {
			g1, _ := aggSingle.Grid2D(sp.AttrX, sp.AttrY)
			g2, ok := aggCoord.Grid2D(sp.AttrX, sp.AttrY)
			if !ok {
				t.Fatalf("merged aggregator missing 2-D grid %d,%d", sp.AttrX, sp.AttrY)
			}
			for v := range g1.Freq {
				if g1.Freq[v] != g2.Freq[v] {
					t.Fatalf("grid %d,%d freq[%d]: merged %v != single %v (not bit-identical)",
						sp.AttrX, sp.AttrY, v, g2.Freq[v], g1.Freq[v])
				}
			}
		}
	}
}

// TestImportPartialsValidation: mismatched shapes and sealed collectors must
// refuse imports whole.
func TestImportPartialsValidation(t *testing.T) {
	opts := Options{Strategy: OHG, Epsilon: 1, Seed: 81}
	col, err := NewCollector(mixedSchema(), 10000, opts)
	if err != nil {
		t.Fatal(err)
	}
	shard, err := NewCollector(mixedSchema(), 10000, opts)
	if err != nil {
		t.Fatal(err)
	}
	states, err := shard.ExportPartials() // empty shard: zero counts, still importable
	if err != nil {
		t.Fatal(err)
	}
	if err := col.ImportPartials(states[:1]); err == nil {
		t.Error("short state list accepted")
	}
	bad := append([]fo.PartialState(nil), states...)
	bad[0].Epsilon = 9
	if err := col.ImportPartials(bad); err == nil {
		t.Error("mismatched epsilon accepted")
	}
	if col.N() != 0 {
		t.Errorf("failed imports left N = %d", col.N())
	}
	if err := col.ImportPartials(states); err != nil {
		t.Fatalf("empty-shard import refused: %v", err)
	}
	if _, err := col.ExportPartials(); err != nil {
		t.Fatal(err)
	}
	if err := col.ImportPartials(states); err == nil {
		t.Error("import into a sealed collector accepted")
	}
}
