package core

import (
	"fmt"
	"sync"

	"felip/internal/domain"
	"felip/internal/fo"
)

// Report is one user's ε-LDP submission: the grid (user group) it belongs to
// and the perturbed cell report in the grid's protocol. It is what actually
// travels from a device to the aggregator in a deployment.
type Report struct {
	// Group identifies the grid the user was assigned to.
	Group int
	// Proto is the grid's frequency-oracle protocol.
	Proto fo.Protocol
	// Value is the GRR report (perturbed cell index) when Proto == GRR, or
	// the GRR-perturbed hash when Proto == OLH.
	Value int
	// Seed identifies the OLH hash function when Proto == OLH.
	Seed uint64
}

// Client is the user-side of FELIP: it holds the grid plan published by the
// aggregator and produces one ε-LDP report for a user's record. A Client can
// serve any number of users; each Perturb call uses fresh randomness.
//
// Client is not safe for concurrent use; create one per goroutine (they are
// cheap) or synchronize externally.
type Client struct {
	specs []GridSpec
	eps   float64
	rng   *fo.Rand
	grr   map[int]*fo.GRRClient
	olh   map[int]*fo.OLHClient
}

// NewClient builds a client from the published plan. seed controls the
// perturbation randomness (0 draws a fresh seed).
func NewClient(specs []GridSpec, eps float64, seed uint64) (*Client, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("core: empty grid plan")
	}
	if eps <= 0 {
		return nil, fmt.Errorf("core: epsilon must be positive, got %v", eps)
	}
	if seed == 0 {
		seed = fo.AutoSeed()
	}
	return &Client{
		specs: specs,
		eps:   eps,
		rng:   fo.NewRand(seed),
		grr:   make(map[int]*fo.GRRClient),
		olh:   make(map[int]*fo.OLHClient),
	}, nil
}

// Groups returns the number of user groups m in the plan.
func (c *Client) Groups() int { return len(c.specs) }

// Perturb produces the ε-LDP report of a user assigned to the given group.
// record returns the user's true value for a schema attribute index; only
// the group's grid attributes are read, and only the perturbed cell leaves
// the client.
func (c *Client) Perturb(group int, record func(attr int) int) (Report, error) {
	if group < 0 || group >= len(c.specs) {
		return Report{}, fmt.Errorf("core: group %d outside plan of %d grids", group, len(c.specs))
	}
	spec := c.specs[group]
	cell := spec.CellOf(record)
	switch spec.Proto {
	case fo.GRR:
		cl, ok := c.grr[group]
		if !ok {
			var err error
			cl, err = fo.NewGRRClient(c.eps, spec.L())
			if err != nil {
				return Report{}, err
			}
			c.grr[group] = cl
		}
		v, err := cl.Perturb(cell, c.rng)
		if err != nil {
			return Report{}, err
		}
		return Report{Group: group, Proto: fo.GRR, Value: v}, nil
	case fo.OLH:
		cl, ok := c.olh[group]
		if !ok {
			var err error
			cl, err = fo.NewOLHClient(c.eps, spec.L())
			if err != nil {
				return Report{}, err
			}
			c.olh[group] = cl
		}
		rep, err := cl.Perturb(cell, c.rng)
		if err != nil {
			return Report{}, err
		}
		return Report{Group: group, Proto: fo.OLH, Value: int(rep.Value), Seed: rep.Seed}, nil
	default:
		return Report{}, fmt.Errorf("core: plan uses unsupported report protocol %v", spec.Proto)
	}
}

// Collector is the incremental server side of FELIP: it publishes the grid
// plan, assigns users to groups, accumulates their perturbed reports, and
// finalizes into an Aggregator once the round closes. It is safe for
// concurrent use.
type Collector struct {
	schema *domain.Schema
	opts   Options
	specs  []GridSpec

	mu        sync.Mutex
	nextGroup int
	rng       *fo.Rand
	grrAggs   map[int]*fo.GRRAggregator
	olhAggs   map[int]*fo.OLHAggregator
	added     int
	finalized bool
}

// NewCollector plans the grids for an expected population of n users and
// returns an open collector. The plan (Specs) is what the aggregator
// publishes to clients.
func NewCollector(schema *domain.Schema, n int, opts Options) (*Collector, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	if opts.DivideBudget {
		return nil, fmt.Errorf("core: the incremental collector divides users, not the budget")
	}
	specs, err := BuildPlan(schema, n, opts)
	if err != nil {
		return nil, err
	}
	c := &Collector{
		schema:  schema,
		opts:    opts,
		specs:   specs,
		rng:     fo.NewRand(opts.Seed),
		grrAggs: make(map[int]*fo.GRRAggregator),
		olhAggs: make(map[int]*fo.OLHAggregator),
	}
	for g, spec := range specs {
		switch spec.Proto {
		case fo.GRR:
			c.grrAggs[g] = fo.NewGRRAggregator(opts.Epsilon, spec.L())
		case fo.OLH:
			c.olhAggs[g] = fo.NewOLHAggregator(opts.Epsilon, spec.L())
		default:
			return nil, fmt.Errorf("core: plan uses unsupported report protocol %v", spec.Proto)
		}
	}
	return c, nil
}

// Specs returns the published grid plan.
func (c *Collector) Specs() []GridSpec {
	out := make([]GridSpec, len(c.specs))
	copy(out, c.specs)
	return out
}

// Epsilon returns the round's privacy budget.
func (c *Collector) Epsilon() float64 { return c.opts.Epsilon }

// AssignGroup hands out the next user's group. Round-robin keeps the groups
// balanced, matching the paper's uniform population division.
func (c *Collector) AssignGroup() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	g := c.nextGroup
	c.nextGroup = (c.nextGroup + 1) % len(c.specs)
	return g
}

// checkLocked validates a report against the plan without recording it.
// Callers hold c.mu.
func (c *Collector) checkLocked(rep Report) error {
	if c.finalized {
		return fmt.Errorf("core: collection round already finalized")
	}
	if rep.Group < 0 || rep.Group >= len(c.specs) {
		return fmt.Errorf("core: report for unknown group %d", rep.Group)
	}
	spec := c.specs[rep.Group]
	if rep.Proto != spec.Proto {
		return fmt.Errorf("core: group %d expects %v reports, got %v", rep.Group, spec.Proto, rep.Proto)
	}
	switch spec.Proto {
	case fo.GRR:
		if rep.Value < 0 || rep.Value >= spec.L() {
			return fmt.Errorf("core: GRR report %d outside [0,%d)", rep.Value, spec.L())
		}
	case fo.OLH:
		g := fo.OptimalG(c.opts.Epsilon)
		if rep.Value < 0 || rep.Value >= g {
			return fmt.Errorf("core: OLH report %d outside [0,%d)", rep.Value, g)
		}
	}
	return nil
}

// Check validates a report against the plan without recording it. A durable
// server calls Check before appending the report to its write-ahead log, so
// the log only ever holds reports Add is guaranteed to accept.
func (c *Collector) Check(rep Report) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.checkLocked(rep)
}

// Add records one user report.
func (c *Collector) Add(rep Report) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.checkLocked(rep); err != nil {
		return err
	}
	switch c.specs[rep.Group].Proto {
	case fo.GRR:
		c.grrAggs[rep.Group].Add(rep.Value)
	case fo.OLH:
		c.olhAggs[rep.Group].Add(fo.OLHReport{Seed: rep.Seed, Value: uint8(rep.Value)})
	}
	c.added++
	return nil
}

// N returns the number of reports accepted so far.
func (c *Collector) N() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.added
}

// GroupCounts returns the number of reports accepted so far per group. The
// counts let an operator watch group balance and let a restarted aggregator
// verify a replayed round.
func (c *Collector) GroupCounts() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	counts := make([]int, len(c.specs))
	for g, spec := range c.specs {
		switch spec.Proto {
		case fo.GRR:
			counts[g] = c.grrAggs[g].N()
		case fo.OLH:
			counts[g] = c.olhAggs[g].N()
		}
	}
	return counts
}

// ResumeAssignment positions the round-robin assignment cursor as if the
// given number of users had already been assigned — called after replaying a
// write-ahead log so a restarted round keeps the groups balanced.
func (c *Collector) ResumeAssignment(assigned int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if assigned < 0 {
		assigned = 0
	}
	c.nextGroup = assigned % len(c.specs)
}

// Finalize closes the round: estimates every grid's cell frequencies from
// the accumulated reports, post-processes (§5.4), and returns the query
// Aggregator. Further Add calls fail; Finalize is idempotent in effect but
// should be called once.
func (c *Collector) Finalize() (*Aggregator, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.added == 0 {
		return nil, fmt.Errorf("core: no reports collected")
	}
	c.finalized = true
	freqs := make([][]float64, len(c.specs))
	groupNs := make([]int, len(c.specs))
	for g, spec := range c.specs {
		switch spec.Proto {
		case fo.GRR:
			freqs[g] = c.grrAggs[g].Estimates()
			groupNs[g] = c.grrAggs[g].N()
		case fo.OLH:
			freqs[g] = c.olhAggs[g].Estimates()
			groupNs[g] = c.olhAggs[g].N()
		}
	}
	return assembleAggregator(c.schema, c.opts, c.specs, c.added, freqs, groupNs, c.opts.Epsilon)
}
