package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"felip/internal/domain"
	"felip/internal/fo"
	"felip/internal/longitudinal"
	"felip/internal/metrics"
)

// ErrFinalized reports that the collection round has already been closed;
// further reports are refused. The HTTP layer maps it to 409 Conflict.
var ErrFinalized = errors.New("core: collection round already finalized")

// finalizeTimer records wall-clock time spent estimating and post-processing
// at round close (see internal/metrics; exposed via /v1/status).
var finalizeTimer = metrics.GetTimer("core.finalize")

// testHookFinalizeEstimation, when non-nil, runs after Finalize releases the
// collector lock and before estimation starts. Tests use it to hold the
// estimation phase open deterministically while probing liveness.
var testHookFinalizeEstimation func()

// Report is one user's ε-LDP submission: the grid (user group) it belongs to
// and the perturbed cell report in the grid's protocol. It is what actually
// travels from a device to the aggregator in a deployment.
type Report struct {
	// Group identifies the grid the user was assigned to.
	Group int
	// Proto is the grid's frequency-oracle protocol.
	Proto fo.Protocol
	// Value is the GRR report (perturbed cell index) when Proto == GRR, the
	// GRR-perturbed hash when Proto == OLH, or the Hadamard row index when
	// Proto == HR.
	Value int
	// Seed identifies the OLH hash function when Proto == OLH. For HR it
	// carries the reported sign bit: 0 for +1, 1 for −1.
	Seed uint64
}

// ModeReport is one wire-level submission under a reporting mode: the ε-LDP
// report plus the grid's primary attribute id, which non-FELIP modes carry on
// the wire so the server can cross-check each of a user's m reports against
// the plan.
type ModeReport struct {
	Report
	// Attr is the grid's primary (x-axis) schema attribute index.
	Attr int
}

// Client is the user-side of FELIP: it holds the grid plan published by the
// aggregator and produces the ε-LDP report(s) for a user's record under the
// round's reporting mode. A Client can serve any number of users; each
// Perturb/PerturbAll call uses fresh randomness.
//
// Client is not safe for concurrent use; create one per goroutine (they are
// cheap) or synchronize externally.
type Client struct {
	specs []GridSpec
	mode  fo.ReportMode
	// eps is the per-report budget: the round's ε under FELIP, ε/m under SPL,
	// the amplified ε' under RS+FD.
	eps float64
	rng *fo.Rand
	grr map[int]*fo.GRRClient
	olh map[int]*fo.OLHClient
	hr  map[int]*fo.HRClient
}

// NewClient builds a FELIP-mode client from the published plan. seed controls
// the perturbation randomness (0 draws a fresh seed).
func NewClient(specs []GridSpec, eps float64, seed uint64) (*Client, error) {
	return NewModeClient(specs, fo.ModeFELIP, eps, seed)
}

// NewModeClient builds a client for the round's reporting mode. eps is the
// round's end-to-end budget ε as published in the plan; the client derives
// each report's budget from the mode (ε, ε/m or the amplified ε').
func NewModeClient(specs []GridSpec, mode fo.ReportMode, eps float64, seed uint64) (*Client, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("core: empty grid plan")
	}
	if eps <= 0 {
		return nil, fmt.Errorf("core: epsilon must be positive, got %v", eps)
	}
	if seed == 0 {
		seed = fo.AutoSeed()
	}
	return &Client{
		specs: specs,
		mode:  mode,
		eps:   fo.ReportEpsilon(mode, eps, len(specs)),
		rng:   fo.NewRand(seed),
		grr:   make(map[int]*fo.GRRClient),
		olh:   make(map[int]*fo.OLHClient),
		hr:    make(map[int]*fo.HRClient),
	}, nil
}

// Groups returns the number of user groups m in the plan.
func (c *Client) Groups() int { return len(c.specs) }

// Mode returns the client's reporting mode.
func (c *Client) Mode() fo.ReportMode { return c.mode }

// Perturb produces the ε-LDP report of a user assigned to the given group.
// record returns the user's true value for a schema attribute index; only
// the group's grid attributes are read, and only the perturbed cell leaves
// the client. Perturb is the FELIP-mode path — SPL and RS+FD users submit
// one report per grid via PerturbAll.
func (c *Client) Perturb(group int, record func(attr int) int) (Report, error) {
	if c.mode != fo.ModeFELIP {
		return Report{}, fmt.Errorf("core: Perturb is FELIP-only; mode %v clients use PerturbAll", c.mode)
	}
	if group < 0 || group >= len(c.specs) {
		return Report{}, fmt.Errorf("core: group %d outside plan of %d grids", group, len(c.specs))
	}
	return c.perturbCell(group, c.specs[group].CellOf(record))
}

// PerturbAll produces every report the user's record generates under the
// client's mode: one report for the assigned group under FELIP, one report
// per grid under SPL (each at ε/m) and RS+FD (each at ε', one true grid
// sampled uniformly, fake data elsewhere). group is only read in FELIP mode.
func (c *Client) PerturbAll(group int, record func(attr int) int) ([]ModeReport, error) {
	switch c.mode {
	case fo.ModeFELIP:
		if group < 0 || group >= len(c.specs) {
			return nil, fmt.Errorf("core: group %d outside plan of %d grids", group, len(c.specs))
		}
		rep, err := c.perturbCell(group, c.specs[group].CellOf(record))
		if err != nil {
			return nil, err
		}
		return []ModeReport{{Report: rep, Attr: c.specs[group].AttrX}}, nil
	case fo.ModeSPL:
		out := make([]ModeReport, 0, len(c.specs))
		for g, spec := range c.specs {
			rep, err := c.perturbCell(g, spec.CellOf(record))
			if err != nil {
				return nil, err
			}
			out = append(out, ModeReport{Report: rep, Attr: spec.AttrX})
		}
		return out, nil
	case fo.ModeRSFD:
		realG := c.rng.IntN(len(c.specs))
		out := make([]ModeReport, 0, len(c.specs))
		for g, spec := range c.specs {
			cell := spec.CellOf(record)
			if g != realG {
				cell = c.rng.IntN(spec.L())
			}
			rep, err := c.perturbCell(g, cell)
			if err != nil {
				return nil, err
			}
			out = append(out, ModeReport{Report: rep, Attr: spec.AttrX})
		}
		return out, nil
	default:
		return nil, fmt.Errorf("core: unknown report mode %v", c.mode)
	}
}

// perturbCell perturbs one grid cell under the client's per-report budget.
func (c *Client) perturbCell(group, cell int) (Report, error) {
	spec := c.specs[group]
	switch spec.Proto {
	case fo.GRR:
		cl, ok := c.grr[group]
		if !ok {
			var err error
			cl, err = fo.NewGRRClient(c.eps, spec.L())
			if err != nil {
				return Report{}, err
			}
			c.grr[group] = cl
		}
		v, err := cl.Perturb(cell, c.rng)
		if err != nil {
			return Report{}, err
		}
		return Report{Group: group, Proto: fo.GRR, Value: v}, nil
	case fo.OLH:
		cl, ok := c.olh[group]
		if !ok {
			var err error
			cl, err = fo.NewOLHClient(c.eps, spec.L())
			if err != nil {
				return Report{}, err
			}
			c.olh[group] = cl
		}
		rep, err := cl.Perturb(cell, c.rng)
		if err != nil {
			return Report{}, err
		}
		return Report{Group: group, Proto: fo.OLH, Value: int(rep.Value), Seed: rep.Seed}, nil
	case fo.HR:
		cl, ok := c.hr[group]
		if !ok {
			var err error
			cl, err = fo.NewHRClient(c.eps, spec.L())
			if err != nil {
				return Report{}, err
			}
			c.hr[group] = cl
		}
		rep, err := cl.Perturb(cell, c.rng)
		if err != nil {
			return Report{}, err
		}
		var sign uint64
		if rep.Sign < 0 {
			sign = 1
		}
		return Report{Group: group, Proto: fo.HR, Value: rep.Row, Seed: sign}, nil
	default:
		return Report{}, fmt.Errorf("core: plan uses unsupported report protocol %v", spec.Proto)
	}
}

// Collector is the incremental server side of FELIP: it publishes the grid
// plan, assigns users to groups, accumulates their perturbed reports, and
// finalizes into an Aggregator once the round closes. It is safe for
// concurrent use.
type Collector struct {
	schema *domain.Schema
	opts   Options
	specs  []GridSpec
	// reportEps is the budget each individual report is perturbed at: ε under
	// FELIP, ε/m under SPL, the amplified ε' under RS+FD. Aggregators,
	// validation and partial-state checks all run at this budget.
	reportEps float64

	mu        sync.Mutex
	nextGroup int
	rng       *fo.Rand
	grrAggs   map[int]*fo.GRRAggregator
	olhAggs   map[int]*fo.OLHAggregator
	hrAggs    map[int]*fo.HRAggregator
	added     int
	rejected  int
	finalized bool
	// finalDone is non-nil once a Finalize is in flight or complete; it
	// closes when finalAgg/finalErr hold the round's one result.
	finalDone chan struct{}
	finalAgg  *Aggregator
	finalErr  error
	// exportDone is non-nil once an ExportPartials is in flight or complete;
	// it closes when exportStates/exportErr hold the seal's one result. A
	// shard collector exports instead of finalizing: the round's raw count
	// vectors travel to the coordinator, which estimates once, globally.
	exportDone   chan struct{}
	exportStates []fo.PartialState
	exportErr    error
}

// NewCollector plans the grids for an expected population of n users and
// returns an open collector. The plan (Specs) is what the aggregator
// publishes to clients.
func NewCollector(schema *domain.Schema, n int, opts Options) (*Collector, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	// Budget-split plans ride the SPL mode: the incremental collector has no
	// matched-plan ablation (reports arrive from real clients against the
	// published plan), so DivideBudget means the real thing — every user
	// reports every grid, each report at ε/m, on SPL-planned grids.
	if opts.DivideBudget {
		opts.DivideBudget = false
		opts.Mode = fo.ModeSPL
	}
	specs, err := BuildPlan(schema, n, opts)
	if err != nil {
		return nil, err
	}
	// The aggregators run at the per-report budget in every mode.
	reportEps := fo.ReportEpsilon(opts.Mode, opts.Epsilon, len(specs))
	c := &Collector{
		schema:    schema,
		opts:      opts,
		specs:     specs,
		reportEps: reportEps,
		rng:       fo.NewRand(opts.Seed),
		grrAggs:   make(map[int]*fo.GRRAggregator),
		olhAggs:   make(map[int]*fo.OLHAggregator),
		hrAggs:    make(map[int]*fo.HRAggregator),
	}
	for g, spec := range specs {
		switch spec.Proto {
		case fo.GRR:
			c.grrAggs[g] = fo.NewGRRAggregator(reportEps, spec.L())
		case fo.OLH:
			if opts.StreamingAggregation {
				c.olhAggs[g] = fo.NewOLHAggregatorStreaming(reportEps, spec.L())
			} else {
				c.olhAggs[g] = fo.NewOLHAggregator(reportEps, spec.L())
			}
		case fo.HR:
			// RS+FD's fake-data inversion has no HR form (the planner never
			// emits one; only a forced protocol can get here).
			if opts.Mode == fo.ModeRSFD {
				return nil, fmt.Errorf("core: HR grids are not supported under RS+FD reporting")
			}
			c.hrAggs[g] = fo.NewHRAggregator(reportEps, spec.L())
		default:
			return nil, fmt.Errorf("core: plan uses unsupported report protocol %v", spec.Proto)
		}
	}
	return c, nil
}

// Specs returns the published grid plan.
func (c *Collector) Specs() []GridSpec {
	out := make([]GridSpec, len(c.specs))
	copy(out, c.specs)
	return out
}

// Epsilon returns the round's end-to-end (per-user) privacy budget ε.
func (c *Collector) Epsilon() float64 { return c.opts.Epsilon }

// Mode returns the round's reporting mode.
func (c *Collector) Mode() fo.ReportMode { return c.opts.Mode }

// Longitudinal returns the round's two-stage memoized-reporting parameters,
// or nil for a one-shot round.
func (c *Collector) Longitudinal() *fo.Longitudinal { return c.opts.Longitudinal }

// ReportEpsilon returns the budget each individual report is perturbed at
// under the round's mode (ε, ε/m or the amplified ε').
func (c *Collector) ReportEpsilon() float64 { return c.reportEps }

// AssignGroup hands out the next user's group. Round-robin keeps the groups
// balanced, matching the paper's uniform population division.
func (c *Collector) AssignGroup() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	g := c.nextGroup
	c.nextGroup = (c.nextGroup + 1) % len(c.specs)
	return g
}

// checkLocked validates a report against the plan without recording it.
// Callers hold c.mu. A validation failure (not counting the finalized-round
// refusal, which says nothing about the client) increments the rejected
// counter so malformed-client traffic stays visible to operators.
func (c *Collector) checkLocked(rep Report) error {
	if c.finalized {
		return ErrFinalized
	}
	if err := c.validateLocked(rep); err != nil {
		c.rejected++
		return err
	}
	return nil
}

func (c *Collector) validateLocked(rep Report) error {
	if rep.Group < 0 || rep.Group >= len(c.specs) {
		return fmt.Errorf("core: report for unknown group %d", rep.Group)
	}
	spec := c.specs[rep.Group]
	if rep.Proto != spec.Proto {
		return fmt.Errorf("core: group %d expects %v reports, got %v", rep.Group, spec.Proto, rep.Proto)
	}
	switch spec.Proto {
	case fo.GRR:
		if rep.Value < 0 || rep.Value >= spec.L() {
			return fmt.Errorf("core: GRR report %d outside [0,%d)", rep.Value, spec.L())
		}
	case fo.OLH:
		g := fo.OptimalG(c.reportEps)
		if rep.Value < 0 || rep.Value >= g {
			return fmt.Errorf("core: OLH report %d outside [0,%d)", rep.Value, g)
		}
	case fo.HR:
		k := fo.HRPaddedSize(spec.L())
		if rep.Value < 0 || rep.Value >= k {
			return fmt.Errorf("core: HR row %d outside [0,%d)", rep.Value, k)
		}
		if rep.Seed > 1 {
			return fmt.Errorf("core: HR sign bit %d outside {0,1}", rep.Seed)
		}
	}
	return nil
}

// Check validates a report against the plan without recording it. A durable
// server calls Check before appending the report to its write-ahead log, so
// the log only ever holds reports Add is guaranteed to accept.
func (c *Collector) Check(rep Report) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.checkLocked(rep)
}

// Add records one user report.
func (c *Collector) Add(rep Report) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.checkLocked(rep); err != nil {
		return err
	}
	switch c.specs[rep.Group].Proto {
	case fo.GRR:
		c.grrAggs[rep.Group].Add(rep.Value)
	case fo.OLH:
		c.olhAggs[rep.Group].Add(fo.OLHReport{Seed: rep.Seed, Value: uint8(rep.Value)})
	case fo.HR:
		c.hrAggs[rep.Group].Add(fo.HRReport{Row: rep.Value, Sign: hrSign(rep.Seed)})
	}
	c.added++
	return nil
}

// N returns the number of reports accepted so far.
func (c *Collector) N() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.added
}

// Rejected returns the number of reports refused by plan validation since the
// round opened (unknown group, wrong protocol, out-of-range value — the
// malformed-client traffic the round never counted), plus any out-of-range
// reports the per-grid aggregators refused directly.
func (c *Collector) Rejected() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	total := c.rejected
	for _, agg := range c.grrAggs {
		total += agg.Rejected()
	}
	for _, agg := range c.olhAggs {
		total += agg.Rejected()
	}
	for _, agg := range c.hrAggs {
		total += agg.Rejected()
	}
	return total
}

// hrSign maps the wire sign bit (Report.Seed) back to the HR report sign.
func hrSign(bit uint64) int8 {
	if bit == 0 {
		return 1
	}
	return -1
}

// GroupCounts returns the number of reports accepted so far per group. The
// counts let an operator watch group balance and let a restarted aggregator
// verify a replayed round.
func (c *Collector) GroupCounts() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	counts := make([]int, len(c.specs))
	for g, spec := range c.specs {
		switch spec.Proto {
		case fo.GRR:
			counts[g] = c.grrAggs[g].N()
		case fo.OLH:
			counts[g] = c.olhAggs[g].N()
		case fo.HR:
			counts[g] = c.hrAggs[g].N()
		}
	}
	return counts
}

// ResumeAssignment positions the round-robin assignment cursor as if the
// given number of users had already been assigned — called after replaying a
// write-ahead log so a restarted round keeps the groups balanced.
func (c *Collector) ResumeAssignment(assigned int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if assigned < 0 {
		assigned = 0
	}
	c.nextGroup = assigned % len(c.specs)
}

// Seal closes the round for ingest — Add and Check refuse from here on —
// without exporting or estimating anything. It is the cheap first half of
// ExportPartials, split out so a server can seal while holding its own lock
// (no report may slip between its durability log and a concurrent export)
// and run the heavier export after releasing it. Idempotent.
func (c *Collector) Seal() {
	c.mu.Lock()
	c.finalized = true
	c.mu.Unlock()
}

// ExportPartials seals the round — Add and Check refuse from here on — and
// returns every grid's exact partial-aggregate state (raw integer count
// vectors, *before* estimation; see fo.PartialState). This is a shard
// server's finalize: instead of estimating locally, the shard ships its
// partials to the merge coordinator, whose single global estimation over the
// summed counts is bit-identical to one collector having seen every report.
//
// ExportPartials is idempotent: every call, including concurrent ones,
// returns the same states — a coordinator whose fetch was lost in transit
// re-pulls the identical state. Unlike Finalize it permits an empty round
// (a shard may legitimately have received no reports).
func (c *Collector) ExportPartials() ([]fo.PartialState, error) {
	c.mu.Lock()
	if done := c.exportDone; done != nil {
		// An export is in flight or complete: wait for its result.
		c.mu.Unlock()
		<-done
		c.mu.Lock()
		defer c.mu.Unlock()
		return c.exportStates, c.exportErr
	}
	c.finalized = true // seal: Add/Check refuse, count vectors are frozen
	done := make(chan struct{})
	c.exportDone = done
	specs := c.specs
	grrAggs := c.grrAggs
	olhAggs := c.olhAggs
	hrAggs := c.hrAggs
	c.mu.Unlock()

	// The per-grid exports run outside c.mu (an OLH export folds any pending
	// reports, O(pending·L)) so N, GroupCounts and Rejected stay live.
	states := make([]fo.PartialState, len(specs))
	var err error
	for g, spec := range specs {
		switch spec.Proto {
		case fo.GRR:
			states[g], err = grrAggs[g].ExportState()
		case fo.OLH:
			states[g], err = olhAggs[g].ExportState()
		case fo.HR:
			states[g], err = hrAggs[g].ExportState()
		default:
			err = fmt.Errorf("core: plan uses unsupported report protocol %v", spec.Proto)
		}
		if err != nil {
			states = nil
			break
		}
	}

	c.mu.Lock()
	c.exportStates, c.exportErr = states, err
	c.mu.Unlock()
	close(done)
	return states, err
}

// ImportPartials folds shard-exported partial states into this collector's
// aggregators, exactly: one state per grid of the plan, in group order (the
// shape ExportPartials produces). After importing every shard, Finalize
// estimates over the summed counts — bit-identical to single-node collection
// of the union of the shards' report streams.
//
// The states are validated against the plan as a whole before any count is
// touched, so a bad shard state is refused without corrupting the merge.
func (c *Collector) ImportPartials(states []fo.PartialState) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.finalized {
		return ErrFinalized
	}
	if len(states) != len(c.specs) {
		return fmt.Errorf("core: %d partial states for a plan of %d grids", len(states), len(c.specs))
	}
	total := 0
	for g, st := range states {
		spec := c.specs[g]
		if err := st.Check(spec.Proto, c.reportEps, spec.L()); err != nil {
			return fmt.Errorf("core: grid %d: %w", g, err)
		}
		total += st.N
	}
	for g, st := range states {
		var err error
		switch c.specs[g].Proto {
		case fo.GRR:
			err = c.grrAggs[g].ImportState(st)
		case fo.OLH:
			err = c.olhAggs[g].ImportState(st)
		case fo.HR:
			err = c.hrAggs[g].ImportState(st)
		}
		if err != nil {
			// Check passed above; this is unreachable short of a bug.
			return fmt.Errorf("core: grid %d: %w", g, err)
		}
	}
	c.added += total
	return nil
}

// Finalize closes the round: estimates every grid's cell frequencies from
// the accumulated reports (fanned out across GOMAXPROCS via the same helper
// the simulated path uses), post-processes (§5.4), and returns the query
// Aggregator.
//
// The collector lock is held only long enough to mark the round closed and
// snapshot the aggregator set; the O(n·L) estimation runs outside it, so
// N, GroupCounts, Rejected and (failing) Add calls — the server's status and
// health surface — stay live while the round closes. Finalize is idempotent:
// every call, including concurrent ones, returns the same Aggregator.
func (c *Collector) Finalize() (*Aggregator, error) {
	c.mu.Lock()
	if done := c.finalDone; done != nil {
		// A finalization is in flight or complete: wait for its result.
		c.mu.Unlock()
		<-done
		c.mu.Lock()
		defer c.mu.Unlock()
		return c.finalAgg, c.finalErr
	}
	if c.added == 0 {
		c.mu.Unlock()
		return nil, fmt.Errorf("core: no reports collected")
	}
	c.finalized = true // Add/Check refuse from here on; aggregators are frozen
	done := make(chan struct{})
	c.finalDone = done
	added := c.added
	specs := c.specs
	grrAggs := c.grrAggs
	olhAggs := c.olhAggs
	hrAggs := c.hrAggs
	c.mu.Unlock()

	if hook := testHookFinalizeEstimation; hook != nil {
		hook()
	}

	start := time.Now()
	groupNs := make([]int, len(specs))
	freqs, err := estimateGrids(len(specs), func(g int) ([]float64, error) {
		if c.opts.Longitudinal != nil {
			// Longitudinal estimates invert the two-stage chain from the raw
			// counts: the composed channel is GRR(ε_1), but the inversion is
			// derived from the chain the clients actually ran (memoization at
			// ε_perm composed with the per-round stage).
			st, err := grrAggs[g].ExportState()
			if err != nil {
				return nil, err
			}
			groupNs[g] = st.N
			return longitudinal.Estimates(*c.opts.Longitudinal, specs[g].L(), st.Counts, st.N)
		}
		if c.opts.Mode == fo.ModeRSFD {
			// RS+FD estimates from the raw support counts: the standard
			// estimator at ε' is biased by the fake-data mix, so the
			// aggregator's counts are exported and inverted instead.
			var st fo.PartialState
			var err error
			switch specs[g].Proto {
			case fo.GRR:
				st, err = grrAggs[g].ExportState()
			case fo.OLH:
				st, err = olhAggs[g].ExportState()
			default:
				return nil, fmt.Errorf("core: plan uses unsupported report protocol %v", specs[g].Proto)
			}
			if err != nil {
				return nil, err
			}
			groupNs[g] = st.N
			return fo.RSFDEstimates(specs[g].Proto, c.opts.Epsilon, specs[g].L(), len(specs), st.Counts, st.N)
		}
		switch specs[g].Proto {
		case fo.GRR:
			groupNs[g] = grrAggs[g].N()
			return grrAggs[g].Estimates(), nil
		case fo.OLH:
			groupNs[g] = olhAggs[g].N()
			return olhAggs[g].Estimates(), nil
		case fo.HR:
			groupNs[g] = hrAggs[g].N()
			return hrAggs[g].Estimates(), nil
		default:
			return nil, fmt.Errorf("core: plan uses unsupported report protocol %v", specs[g].Proto)
		}
	})
	var agg *Aggregator
	if err == nil {
		// Under SPL and RS+FD every user contributed one report per grid, so
		// the population behind the round is added/m, not added.
		population := added
		if c.opts.Mode != fo.ModeFELIP {
			population = added / len(specs)
		}
		agg, err = assembleAggregator(c.schema, c.opts, specs, population, freqs, groupNs, c.reportEps)
	}
	finalizeTimer.Observe(time.Since(start))

	c.mu.Lock()
	c.finalAgg, c.finalErr = agg, err
	c.mu.Unlock()
	close(done)
	return agg, err
}
