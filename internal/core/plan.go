package core

import (
	"fmt"

	"felip/internal/domain"
	"felip/internal/fo"
	"felip/internal/grid"
	"felip/internal/gridopt"
)

// GridSpec is the configuration the aggregator sends to one user group: the
// grid's attributes, its binning, and the frequency-oracle protocol to
// perturb reports with (paper §5: "the aggregator sends to each user one
// grid configuration").
type GridSpec struct {
	// AttrX is the schema index of the grid's (first) attribute.
	AttrX int
	// AttrY is the schema index of the second attribute, or -1 for a 1-D grid.
	AttrY int
	// AxisX and AxisY are the binnings; AxisY is nil for 1-D grids.
	AxisX, AxisY *grid.Axis
	// Proto is the frequency oracle chosen by AFO for this grid.
	Proto fo.Protocol
	// ExpectedErr is the optimizer's minimized expected squared error.
	ExpectedErr float64
}

// Is1D reports whether the spec describes a 1-D grid.
func (s GridSpec) Is1D() bool { return s.AttrY < 0 }

// L returns the report domain size (total number of cells).
func (s GridSpec) L() int {
	if s.Is1D() {
		return s.AxisX.Cells()
	}
	return s.AxisX.Cells() * s.AxisY.Cells()
}

// CellOf projects a full user record onto this grid's report value.
func (s GridSpec) CellOf(record func(attr int) int) int {
	if s.Is1D() {
		return s.AxisX.CellOf(record(s.AttrX))
	}
	return s.AxisX.CellOf(record(s.AttrX))*s.AxisY.Cells() + s.AxisY.CellOf(record(s.AttrY))
}

// String renders e.g. "G(0,3) 12x8 OLH" or "G(2) 25 GRR".
func (s GridSpec) String() string {
	if s.Is1D() {
		return fmt.Sprintf("G(%d) %d %v", s.AttrX, s.AxisX.Cells(), s.Proto)
	}
	return fmt.Sprintf("G(%d,%d) %dx%d %v", s.AttrX, s.AttrY, s.AxisX.Cells(), s.AxisY.Cells(), s.Proto)
}

// BuildPlan computes the full grid plan for a schema under the given options
// and population size: which grids exist, their sizes and their protocols.
// The number of returned specs is the number of user groups m — C(k,2) for
// OUG, k_n + C(k,2) for OHG (§5.2).
func BuildPlan(schema *domain.Schema, n int, opts Options) ([]GridSpec, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	if schema.Len() < 2 {
		return nil, fmt.Errorf("core: need at least 2 attributes, got %d", schema.Len())
	}
	if n < 1 {
		return nil, fmt.Errorf("core: need at least 1 user")
	}

	if opts.Longitudinal != nil && opts.ForceProtocol == nil {
		// The two-stage chain is GRR∘GRR; OLH has no memoizable per-round
		// stage, so longitudinal plans force GRR on every grid (withDefaults
		// already refused a conflicting ForceProtocol).
		grr := fo.GRR
		opts.ForceProtocol = &grr
	}
	pairs := schema.Pairs()
	m := len(pairs)
	var oneD []int
	if opts.Strategy == OHG {
		oneD = schema.NumericalIndexes()
		m += len(oneD)
	}
	params := gridopt.Params{
		Epsilon: opts.Epsilon,
		N:       n,
		M:       m,
		Alpha1:  opts.Alpha1,
		Alpha2:  opts.Alpha2,
		Mode:    opts.Mode,
	}

	specs := make([]GridSpec, 0, m)
	for _, attr := range oneD {
		a := schema.Attr(attr)
		var pl gridopt.Plan
		if opts.ForceProtocol != nil {
			pl = gridopt.ForcedPlan(params, *opts.ForceProtocol, &a, nil, opts.selectivityFor(attr), 0)
		} else {
			pl = gridopt.Plan1D(params, a, opts.selectivityFor(attr))
		}
		ax, err := axisFor(a, attr, pl.Lx, opts)
		if err != nil {
			return nil, err
		}
		specs = append(specs, GridSpec{
			AttrX: attr, AttrY: -1, AxisX: ax,
			Proto: pl.Proto, ExpectedErr: pl.Err,
		})
	}
	for _, pq := range pairs {
		a, b := schema.Attr(pq[0]), schema.Attr(pq[1])
		ra, rb := opts.selectivityFor(pq[0]), opts.selectivityFor(pq[1])
		var pl gridopt.Plan
		if opts.ForceProtocol != nil {
			pl = gridopt.ForcedPlan(params, *opts.ForceProtocol, &a, &b, ra, rb)
		} else {
			pl = gridopt.Plan2D(params, a, b, ra, rb)
		}
		axX, err := axisFor(a, pq[0], pl.Lx, opts)
		if err != nil {
			return nil, err
		}
		axY, err := axisFor(b, pq[1], pl.Ly, opts)
		if err != nil {
			return nil, err
		}
		specs = append(specs, GridSpec{
			AttrX: pq[0], AttrY: pq[1], AxisX: axX, AxisY: axY,
			Proto: pl.Proto, ExpectedErr: pl.Err,
		})
	}
	return specs, nil
}

// axisFor builds the axis binning attribute attr with the planned cell
// count: equal-width by default, equi-mass when Options.MarginalHint carries
// an estimated marginal for a numerical attribute (§7 extension).
func axisFor(a domain.Attribute, attr, cells int, opts Options) (*grid.Axis, error) {
	if hint, ok := opts.MarginalHint[attr]; ok && a.IsNumerical() && len(hint) == a.Size && cells < a.Size {
		return grid.NewCustomAxis(a.Size, grid.EquiMassBoundaries(hint, cells))
	}
	return grid.NewAxis(a.Size, cells)
}
