package core

import (
	"fmt"
	"sync"

	"felip/internal/dataset"
	"felip/internal/domain"
	"felip/internal/estimate"
	"felip/internal/fo"
	"felip/internal/grid"
	"felip/internal/longitudinal"
	"felip/internal/postproc"
)

// estimateLongitudinal simulates one grid's two-stage longitudinal round:
// every value is memoized at ε_perm (stage 1) and perturbed by the per-round
// stage (stage 2), then the composed chain is inverted.
func estimateLongitudinal(cfg fo.Longitudinal, L int, values []int, seed uint64) ([]float64, error) {
	st, err := longitudinal.NewStages(cfg, L)
	if err != nil {
		return nil, err
	}
	r := fo.NewRand(seed)
	counts := make([]int64, L)
	for _, v := range values {
		b, err := st.Memoize(v, r)
		if err != nil {
			return nil, err
		}
		y, err := st.Perturb(b, r)
		if err != nil {
			return nil, err
		}
		counts[y]++
	}
	return longitudinal.Estimates(cfg, L, counts, len(values))
}

// Aggregator is the server side of FELIP after a completed collection round:
// it holds the post-processed grids and answers multidimensional queries.
// It is safe for concurrent use by multiple goroutines.
type Aggregator struct {
	schema *domain.Schema
	opts   Options
	specs  []GridSpec
	n      int

	grids1 map[int]*grid.Grid1D
	grids2 map[[2]int]*grid.Grid2D
	// var0 holds each grid's per-cell noise variance (keyed like grids).
	var01 map[int]float64
	var02 map[[2]int]float64

	// Query-time lookup index (buildIndex): per-grid expected errors and each
	// attribute's covering 2-D grid, replacing per-query spec scans.
	err1   map[int]float64
	err2   map[[2]int]float64
	cover2 map[int][2]int

	mu       sync.Mutex
	matrices map[[2]int]*estimate.Matrix
}

// Collect runs a full FELIP round over the dataset: plan the grids (§5.2,
// §5.3), divide the population into groups (§5.1), perturb every user's
// report client-side under ε-LDP, estimate every grid's cell frequencies,
// and post-process (§5.4). The returned Aggregator answers queries.
func Collect(ds *dataset.Dataset, opts Options) (*Aggregator, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	schema := ds.Schema()
	n := ds.N()
	specs, err := BuildPlan(schema, n, opts)
	if err != nil {
		return nil, err
	}

	m := len(specs)
	rng := fo.NewRand(opts.Seed)

	// Group sizes and per-grid report streams, per reporting mode. The legacy
	// DivideBudget ablation is the SPL stream shape on the FELIP-shaped plan
	// (BuildPlan saw Mode == ModeFELIP), so Theorem 5.1 is compared at
	// matched grids; Mode == ModeSPL runs the same streams on SPL-planned
	// grids.
	var groupValues [][]int
	var groupEps float64
	switch {
	case opts.DivideBudget || opts.Mode == fo.ModeSPL:
		// Budget split: every user reports every grid with ε/m.
		groupEps = opts.Epsilon / float64(m)
		groupValues = make([][]int, m)
		for g := range specs {
			vals := make([]int, n)
			spec := specs[g]
			for row := 0; row < n; row++ {
				vals[row] = spec.CellOf(func(attr int) int { return ds.Value(row, attr) })
			}
			groupValues[g] = vals
		}
	case opts.Mode == fo.ModeRSFD:
		// RS+FD: every user reports every grid at the amplified ε'; one
		// uniformly-sampled grid carries the true cell, the rest uniform fake
		// cells. All sampling runs on the round rng row-by-row, so the round
		// is deterministic under its seed.
		groupEps = fo.AmplifiedEpsilon(opts.Epsilon, m)
		groupValues = make([][]int, m)
		for g := range specs {
			groupValues[g] = make([]int, n)
		}
		for row := 0; row < n; row++ {
			realG := rng.IntN(m)
			for g := range specs {
				if g == realG {
					groupValues[g][row] = specs[g].CellOf(func(attr int) int { return ds.Value(row, attr) })
				} else {
					groupValues[g][row] = rng.IntN(specs[g].L())
				}
			}
		}
	default:
		// The paper's design: partition users uniformly into m groups.
		groupEps = opts.Epsilon
		assign := ds.Split(m, rng)
		groupValues = make([][]int, m)
		for g := range groupValues {
			groupValues[g] = make([]int, 0, n/m+1)
		}
		for row, g := range assign {
			spec := specs[g]
			groupValues[g] = append(groupValues[g], spec.CellOf(func(attr int) int { return ds.Value(row, attr) }))
		}
	}

	// Estimate all grids concurrently via the shared fan-out. Per-grid seeds
	// are drawn sequentially first, so results are bit-identical regardless
	// of scheduling.
	seeds := make([]uint64, len(specs))
	for g := range seeds {
		seeds[g] = rng.Uint64()
	}
	freqs, err := estimateGrids(len(specs), func(g int) ([]float64, error) {
		spec := specs[g]
		var est []float64
		var err error
		if opts.Longitudinal != nil {
			// Simulate the two-stage chain: memoize once at ε_perm, perturb at
			// the per-round stage, invert the composed channel. One round of
			// Collect is the device population's first round.
			est, err = estimateLongitudinal(*opts.Longitudinal, spec.L(), groupValues[g], seeds[g])
		} else if opts.Mode == fo.ModeRSFD {
			// Perturb at ε' and invert the fake-data mix at estimation.
			est, err = fo.EstimateRSFD(spec.Proto, opts.Epsilon, spec.L(), m, groupValues[g], seeds[g])
		} else {
			est, err = fo.Estimate(spec.Proto, groupEps, spec.L(), groupValues[g], seeds[g])
		}
		if err != nil {
			return nil, fmt.Errorf("core: grid %v: %w", spec, err)
		}
		return est, nil
	})
	if err != nil {
		return nil, err
	}

	groupNs := make([]int, m)
	for g := range groupValues {
		groupNs[g] = len(groupValues[g])
	}
	return assembleAggregator(schema, opts, specs, n, freqs, groupNs, groupEps)
}

// assembleAggregator attaches estimated frequency vectors to the planned
// grids and runs post-processing. It is shared by the simulated path
// (Collect) and the incremental report-driven path (Collector.Finalize).
func assembleAggregator(schema *domain.Schema, opts Options, specs []GridSpec, n int, freqs [][]float64, groupNs []int, groupEps float64) (*Aggregator, error) {
	agg := &Aggregator{
		schema:   schema,
		opts:     opts,
		specs:    specs,
		n:        n,
		grids1:   make(map[int]*grid.Grid1D),
		grids2:   make(map[[2]int]*grid.Grid2D),
		var01:    make(map[int]float64),
		var02:    make(map[[2]int]float64),
		matrices: make(map[[2]int]*estimate.Matrix),
	}
	for g, spec := range specs {
		freq := freqs[g]
		var var0 float64
		if opts.Longitudinal != nil {
			// The composed per-round channel is GRR(ε_1), so this equals the
			// GRR variance at the per-round budget — taken from the
			// longitudinal inversion so estimator and weights cannot drift.
			var0 = longitudinal.Variance(*opts.Longitudinal, spec.L(), max(groupNs[g], 1))
		} else if opts.Mode == fo.ModeRSFD {
			// The fake-data inversion inflates the per-cell variance beyond the
			// raw ε' protocol variance; use the corrected form.
			var0 = fo.RSFDVariance(spec.Proto, opts.Epsilon, spec.L(), len(specs), max(groupNs[g], 1))
		} else {
			var0 = spec.Proto.Variance(groupEps, spec.L(), max(groupNs[g], 1))
		}
		if spec.Is1D() {
			g1 := grid.NewGrid1D(spec.AttrX, spec.AxisX)
			if err := g1.SetFreq(freq); err != nil {
				return nil, err
			}
			agg.grids1[spec.AttrX] = g1
			agg.var01[spec.AttrX] = var0
		} else {
			key := [2]int{spec.AttrX, spec.AttrY}
			g2 := grid.NewGrid2D(spec.AttrX, spec.AttrY, spec.AxisX, spec.AxisY)
			if err := g2.SetFreq(freq); err != nil {
				return nil, err
			}
			agg.grids2[key] = g2
			agg.var02[key] = var0
		}
	}
	agg.postProcess()
	agg.buildIndex()
	return agg, nil
}

// postProcess runs the interleaved consistency and Norm-Sub rounds (§5.4).
func (a *Aggregator) postProcess() {
	// Iterate in spec order everywhere: map iteration order would make the
	// floating-point results run-to-run nondeterministic.
	var attrViews [][]postproc.View
	for attr := 0; attr < a.schema.Len(); attr++ {
		var views []postproc.View
		if g1, ok := a.grids1[attr]; ok {
			views = append(views, postproc.View{
				Axis: g1.Axis,
				Freq: g1.Freq,
				Cols: postproc.Columns1D(g1.L()),
				Var0: a.var01[attr],
			})
		}
		for _, sp := range a.specs {
			if sp.Is1D() {
				continue
			}
			key := [2]int{sp.AttrX, sp.AttrY}
			g2 := a.grids2[key]
			switch attr {
			case g2.XAttr:
				views = append(views, postproc.View{
					Axis: g2.X,
					Freq: g2.Freq,
					Cols: postproc.ColumnsX(g2.X.Cells(), g2.Y.Cells()),
					Var0: a.var02[key],
				})
			case g2.YAttr:
				views = append(views, postproc.View{
					Axis: g2.Y,
					Freq: g2.Freq,
					Cols: postproc.ColumnsY(g2.X.Cells(), g2.Y.Cells()),
					Var0: a.var02[key],
				})
			}
		}
		if len(views) > 1 {
			attrViews = append(attrViews, views)
		}
	}
	var freqs [][]float64
	for _, sp := range a.specs {
		if sp.Is1D() {
			freqs = append(freqs, a.grids1[sp.AttrX].Freq)
		} else {
			freqs = append(freqs, a.grids2[[2]int{sp.AttrX, sp.AttrY}].Freq)
		}
	}
	postproc.Pipeline(attrViews, freqs, a.opts.PostProcessRounds)
}

// Schema returns the schema the aggregator was built over.
func (a *Aggregator) Schema() *domain.Schema { return a.schema }

// N returns the population size of the collection round.
func (a *Aggregator) N() int { return a.n }

// Specs returns the grid plan of the round (one spec per user group).
func (a *Aggregator) Specs() []GridSpec {
	out := make([]GridSpec, len(a.specs))
	copy(out, a.specs)
	return out
}

// Grid1D returns the post-processed 1-D grid of a numerical attribute, if
// the strategy collected one.
func (a *Aggregator) Grid1D(attr int) (*grid.Grid1D, bool) {
	g, ok := a.grids1[attr]
	return g, ok
}

// Grid2D returns the post-processed 2-D grid of an attribute pair (i < j).
func (a *Aggregator) Grid2D(i, j int) (*grid.Grid2D, bool) {
	g, ok := a.grids2[[2]int{i, j}]
	return g, ok
}
