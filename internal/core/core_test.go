package core

import (
	"math"
	"strings"
	"testing"

	"felip/internal/dataset"
	"felip/internal/domain"
	"felip/internal/fo"
	"felip/internal/query"
)

func mixedSchema() *domain.Schema {
	return dataset.MixedSchema(2, 32, 2, 4)
}

func TestOptionsDefaults(t *testing.T) {
	o, err := Options{Strategy: OHG, Epsilon: 1}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if o.Selectivity != 0.5 || o.Alpha1 != 0.7 || o.Alpha2 != 0.03 ||
		o.PostProcessRounds != 3 || o.MatrixMaxIter != 50 || o.LambdaMaxIter != 100 || o.Seed == 0 {
		t.Errorf("defaults wrong: %+v", o)
	}
}

func TestOptionsValidation(t *testing.T) {
	if _, err := (Options{Strategy: OUG}).withDefaults(); err == nil {
		t.Error("eps=0 accepted")
	}
	if _, err := (Options{Strategy: OUG, Epsilon: -1}).withDefaults(); err == nil {
		t.Error("negative eps accepted")
	}
	if _, err := (Options{Strategy: Strategy(9), Epsilon: 1}).withDefaults(); err == nil {
		t.Error("unknown strategy accepted")
	}
	if _, err := (Options{Strategy: OUG, Epsilon: 1, Selectivity: 2}).withDefaults(); err == nil {
		t.Error("selectivity > 1 accepted")
	}
}

func TestStrategyString(t *testing.T) {
	if OUG.String() != "OUG" || OHG.String() != "OHG" {
		t.Error("strategy names wrong")
	}
	if !strings.Contains(Strategy(9).String(), "9") {
		t.Error("unknown strategy string")
	}
}

func TestBuildPlanGroupCounts(t *testing.T) {
	s := mixedSchema() // k=4: 2 numerical, 2 categorical
	specs, err := BuildPlan(s, 100000, Options{Strategy: OUG, Epsilon: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 6 { // C(4,2)
		t.Errorf("OUG specs = %d, want 6", len(specs))
	}
	for _, sp := range specs {
		if sp.Is1D() {
			t.Errorf("OUG produced 1-D grid %v", sp)
		}
	}

	specs, err = BuildPlan(s, 100000, Options{Strategy: OHG, Epsilon: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 8 { // k_n + C(4,2) = 2 + 6
		t.Errorf("OHG specs = %d, want 8", len(specs))
	}
	oneD := 0
	for _, sp := range specs {
		if sp.Is1D() {
			oneD++
			if !s.Attr(sp.AttrX).IsNumerical() {
				t.Errorf("1-D grid on categorical attribute: %v", sp)
			}
		}
	}
	if oneD != 2 {
		t.Errorf("OHG 1-D grids = %d, want 2", oneD)
	}
}

func TestBuildPlanCategoricalGridsFullDomain(t *testing.T) {
	s := mixedSchema()
	specs, err := BuildPlan(s, 100000, Options{Strategy: OHG, Epsilon: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, sp := range specs {
		if sp.Is1D() {
			continue
		}
		if s.Attr(sp.AttrX).IsCategorical() && sp.AxisX.Cells() != s.Attr(sp.AttrX).Size {
			t.Errorf("categorical axis binned: %v", sp)
		}
		if s.Attr(sp.AttrY).IsCategorical() && sp.AxisY.Cells() != s.Attr(sp.AttrY).Size {
			t.Errorf("categorical axis binned: %v", sp)
		}
	}
}

func TestBuildPlanErrors(t *testing.T) {
	one := domain.MustSchema(domain.Attribute{Name: "a", Kind: domain.Numerical, Size: 8})
	if _, err := BuildPlan(one, 100, Options{Strategy: OUG, Epsilon: 1}); err == nil {
		t.Error("single-attribute schema accepted")
	}
	if _, err := BuildPlan(mixedSchema(), 0, Options{Strategy: OUG, Epsilon: 1}); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := BuildPlan(mixedSchema(), 100, Options{Strategy: OUG}); err == nil {
		t.Error("bad options accepted")
	}
}

func TestBuildPlanForcedProtocol(t *testing.T) {
	olh := fo.OLH
	specs, err := BuildPlan(mixedSchema(), 100000, Options{Strategy: OHG, Epsilon: 1, Seed: 1, ForceProtocol: &olh})
	if err != nil {
		t.Fatal(err)
	}
	for _, sp := range specs {
		if sp.Proto != fo.OLH {
			t.Errorf("forced OLH but got %v for %v", sp.Proto, sp)
		}
	}
}

func TestGridSpecHelpers(t *testing.T) {
	specs, err := BuildPlan(mixedSchema(), 100000, Options{Strategy: OHG, Epsilon: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, sp := range specs {
		if sp.L() < 1 {
			t.Errorf("spec %v has L=%d", sp, sp.L())
		}
		str := sp.String()
		if !strings.Contains(str, "G(") {
			t.Errorf("String = %q", str)
		}
		record := func(attr int) int { return 0 }
		if cell := sp.CellOf(record); cell != 0 {
			t.Errorf("zero record should project to cell 0, got %d", cell)
		}
	}
}

func collectFor(t *testing.T, strat Strategy, n int, seed uint64) (*Aggregator, *dataset.Dataset) {
	t.Helper()
	s := mixedSchema()
	ds := dataset.NewNormal().Generate(s, n, seed)
	agg, err := Collect(ds, Options{Strategy: strat, Epsilon: 2.0, Seed: seed + 1})
	if err != nil {
		t.Fatal(err)
	}
	return agg, ds
}

func TestCollectAccessors(t *testing.T) {
	agg, _ := collectFor(t, OHG, 20000, 3)
	if agg.N() != 20000 {
		t.Errorf("N = %d", agg.N())
	}
	if agg.Schema().Len() != 4 {
		t.Error("Schema wrong")
	}
	if len(agg.Specs()) != 8 {
		t.Errorf("Specs = %d", len(agg.Specs()))
	}
	if _, ok := agg.Grid1D(0); !ok {
		t.Error("missing 1-D grid for numerical attr 0")
	}
	if _, ok := agg.Grid1D(2); ok {
		t.Error("unexpected 1-D grid for categorical attr")
	}
	if _, ok := agg.Grid2D(0, 1); !ok {
		t.Error("missing 2-D grid (0,1)")
	}
	if _, ok := agg.Grid2D(1, 0); ok {
		t.Error("reversed pair should not resolve")
	}
}

func TestCollectGridsAreDistributions(t *testing.T) {
	for _, strat := range []Strategy{OUG, OHG} {
		agg, _ := collectFor(t, strat, 20000, 7)
		for _, sp := range agg.Specs() {
			var freq []float64
			if sp.Is1D() {
				g, _ := agg.Grid1D(sp.AttrX)
				freq = g.Freq
			} else {
				g, _ := agg.Grid2D(sp.AttrX, sp.AttrY)
				freq = g.Freq
			}
			var sum float64
			for i, f := range freq {
				if f < -1e-9 {
					t.Errorf("%v strategy %v: negative freq[%d]=%v", strat, sp, i, f)
				}
				sum += f
			}
			if math.Abs(sum-1) > 1e-6 {
				t.Errorf("%v strategy %v: freq sums to %v", strat, sp, sum)
			}
		}
	}
}

func TestAnswer1D(t *testing.T) {
	agg, ds := collectFor(t, OHG, 60000, 11)
	for _, q := range []query.Query{
		{Preds: []query.Predicate{query.NewRange(0, 8, 23)}},
		{Preds: []query.Predicate{query.NewIn(2, 0, 1)}},
	} {
		truth := query.Evaluate(q, [][]uint16{ds.Col(0), ds.Col(1), ds.Col(2), ds.Col(3)})
		got, err := agg.Answer(q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-truth) > 0.05 {
			t.Errorf("query %v: got %v, truth %v", q, got, truth)
		}
	}
}

func TestAnswer2DAccuracy(t *testing.T) {
	for _, strat := range []Strategy{OUG, OHG} {
		agg, ds := collectFor(t, strat, 60000, 13)
		cols := [][]uint16{ds.Col(0), ds.Col(1), ds.Col(2), ds.Col(3)}
		qs := []query.Query{
			{Preds: []query.Predicate{query.NewRange(0, 8, 23), query.NewRange(1, 8, 23)}},
			{Preds: []query.Predicate{query.NewRange(0, 0, 15), query.NewIn(2, 0, 1)}},
			{Preds: []query.Predicate{query.NewIn(2, 0), query.NewIn(3, 1, 2)}},
		}
		for _, q := range qs {
			truth := query.Evaluate(q, cols)
			got, err := agg.Answer(q)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-truth) > 0.08 {
				t.Errorf("%v query %v: got %v, truth %v", strat, q, got, truth)
			}
		}
	}
}

func TestAnswer4DAccuracy(t *testing.T) {
	agg, ds := collectFor(t, OHG, 80000, 17)
	cols := [][]uint16{ds.Col(0), ds.Col(1), ds.Col(2), ds.Col(3)}
	q := query.Query{Preds: []query.Predicate{
		query.NewRange(0, 8, 23),
		query.NewRange(1, 4, 27),
		query.NewIn(2, 0, 1),
		query.NewIn(3, 0, 1, 2),
	}}
	truth := query.Evaluate(q, cols)
	got, err := agg.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-truth) > 0.1 {
		t.Errorf("4-D query: got %v, truth %v", got, truth)
	}
}

func TestAnswerValidation(t *testing.T) {
	agg, _ := collectFor(t, OUG, 5000, 19)
	if _, err := agg.Answer(query.Query{}); err == nil {
		t.Error("empty query accepted")
	}
	if _, err := agg.Answer(query.Query{Preds: []query.Predicate{query.NewRange(2, 0, 1)}}); err == nil {
		t.Error("BETWEEN on categorical accepted")
	}
}

func TestCollectDeterministicWithSeed(t *testing.T) {
	s := mixedSchema()
	ds := dataset.NewUniform().Generate(s, 10000, 5)
	q := query.Query{Preds: []query.Predicate{query.NewRange(0, 0, 15), query.NewRange(1, 0, 15)}}
	a1, err := Collect(ds, Options{Strategy: OHG, Epsilon: 1, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := Collect(ds, Options{Strategy: OHG, Epsilon: 1, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	r1, _ := a1.Answer(q)
	r2, _ := a2.Answer(q)
	if r1 != r2 {
		t.Errorf("same seed produced %v vs %v", r1, r2)
	}
}

// Theorem 5.1 empirically: dividing users must beat dividing the budget.
func TestDivideUsersBeatsDivideBudget(t *testing.T) {
	s := mixedSchema()
	ds := dataset.NewNormal().Generate(s, 40000, 23)
	cols := [][]uint16{ds.Col(0), ds.Col(1), ds.Col(2), ds.Col(3)}
	gen, err := query.NewGenerator(s, 0.5, 31)
	if err != nil {
		t.Fatal(err)
	}
	qs, err := gen.GenerateMany(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	maeOf := func(divideBudget bool) float64 {
		agg, err := Collect(ds, Options{Strategy: OUG, Epsilon: 1, Seed: 99, DivideBudget: divideBudget})
		if err != nil {
			t.Fatal(err)
		}
		var total float64
		for _, q := range qs {
			got, err := agg.Answer(q)
			if err != nil {
				t.Fatal(err)
			}
			total += math.Abs(got - query.Evaluate(q, cols))
		}
		return total / float64(len(qs))
	}
	users := maeOf(false)
	budget := maeOf(true)
	if users >= budget {
		t.Errorf("dividing users MAE %v not better than dividing budget MAE %v", users, budget)
	}
}

func TestExpectedError(t *testing.T) {
	agg, ds := collectFor(t, OHG, 30000, 41)
	_ = ds
	q1 := query.Query{Preds: []query.Predicate{query.NewRange(0, 8, 23)}}
	e1, err := agg.ExpectedError(q1)
	if err != nil {
		t.Fatal(err)
	}
	if !(e1 > 0 && e1 < 1) {
		t.Errorf("1-D expected error = %v", e1)
	}
	q2 := query.Query{Preds: []query.Predicate{query.NewRange(0, 8, 23), query.NewIn(2, 0, 1)}}
	e2, err := agg.ExpectedError(q2)
	if err != nil {
		t.Fatal(err)
	}
	q4 := query.Query{Preds: []query.Predicate{
		query.NewRange(0, 8, 23), query.NewRange(1, 8, 23),
		query.NewIn(2, 0, 1), query.NewIn(3, 0, 1),
	}}
	e4, err := agg.ExpectedError(q4)
	if err != nil {
		t.Fatal(err)
	}
	// More pairs → larger analytic error bound.
	if !(e4 > e2) {
		t.Errorf("4-D expected error %v not above 2-D %v", e4, e2)
	}
	// Larger population must shrink the a-priori error.
	big, _ := collectFor(t, OHG, 120000, 41)
	e2big, err := big.ExpectedError(q2)
	if err != nil {
		t.Fatal(err)
	}
	if !(e2big < e2) {
		t.Errorf("expected error did not shrink with n: %v vs %v", e2big, e2)
	}
	if _, err := agg.ExpectedError(query.Query{}); err == nil {
		t.Error("empty query accepted")
	}
}

func TestExpectedError1DOnOUG(t *testing.T) {
	// OUG has no 1-D grids; the 1-D expected error must fall back to a 2-D
	// grid containing the attribute.
	agg, _ := collectFor(t, OUG, 20000, 43)
	q := query.Query{Preds: []query.Predicate{query.NewRange(1, 0, 15)}}
	e, err := agg.ExpectedError(q)
	if err != nil {
		t.Fatal(err)
	}
	if !(e > 0) {
		t.Errorf("expected error = %v", e)
	}
}

// FELIP explicitly supports attributes with different domain sizes (§5.8),
// unlike TDG/HDG. Exercise planning and answering over a strongly
// heterogeneous schema.
func TestHeterogeneousDomains(t *testing.T) {
	s := domain.MustSchema(
		domain.Attribute{Name: "tiny", Kind: domain.Numerical, Size: 9},
		domain.Attribute{Name: "huge", Kind: domain.Numerical, Size: 700},
		domain.Attribute{Name: "bin", Kind: domain.Categorical, Size: 2},
		domain.Attribute{Name: "wide", Kind: domain.Categorical, Size: 12},
	)
	ds := dataset.NewIPUMSSim().Generate(s, 50000, 71)
	for _, strat := range []Strategy{OUG, OHG} {
		agg, err := Collect(ds, Options{Strategy: strat, Epsilon: 2, Seed: 73})
		if err != nil {
			t.Fatal(err)
		}
		for _, sp := range agg.Specs() {
			// Categorical axes stay at full domain even when mixed with the
			// 700-value numerical attribute.
			if !sp.Is1D() {
				if s.Attr(sp.AttrX).IsCategorical() && sp.AxisX.Cells() != s.Attr(sp.AttrX).Size {
					t.Errorf("%v: categorical x axis binned: %v", strat, sp)
				}
				if s.Attr(sp.AttrY).IsCategorical() && sp.AxisY.Cells() != s.Attr(sp.AttrY).Size {
					t.Errorf("%v: categorical y axis binned: %v", strat, sp)
				}
			}
		}
		cols := [][]uint16{ds.Col(0), ds.Col(1), ds.Col(2), ds.Col(3)}
		qs := []query.Query{
			{Preds: []query.Predicate{query.NewRange(0, 2, 6), query.NewRange(1, 100, 450)}},
			{Preds: []query.Predicate{query.NewRange(1, 0, 349), query.NewIn(3, 0, 1, 2)}},
			{Preds: []query.Predicate{query.NewPoint(2, 0), query.NewIn(3, 0, 5)}},
		}
		for _, q := range qs {
			truth := query.Evaluate(q, cols)
			got, err := agg.Answer(q)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-truth) > 0.08 {
				t.Errorf("%v query %v: got %v, truth %v", strat, q, got, truth)
			}
		}
	}
}

// SelectivityByAttr lets the aggregator size each attribute's grids with its
// own workload prior.
func TestSelectivityByAttr(t *testing.T) {
	s := mixedSchema()
	specsDefault, err := BuildPlan(s, 100000, Options{Strategy: OHG, Epsilon: 1, Seed: 75})
	if err != nil {
		t.Fatal(err)
	}
	specsPerAttr, err := BuildPlan(s, 100000, Options{
		Strategy: OHG, Epsilon: 1, Seed: 75,
		SelectivityByAttr: map[int]float64{0: 0.05},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Narrower prior on attr 0 → at least as fine a 1-D grid for it.
	var def, per int
	for i, sp := range specsDefault {
		if sp.Is1D() && sp.AttrX == 0 {
			def = sp.L()
			per = specsPerAttr[i].L()
		}
	}
	if per < def {
		t.Errorf("per-attribute narrow prior coarsened the grid: %d -> %d", def, per)
	}
}

// With huge ε the pipeline must reproduce near-exact answers: the remaining
// error is only binning bias.
func TestHighEpsilonNearExact(t *testing.T) {
	s := dataset.MixedSchema(2, 16, 1, 4)
	ds := dataset.NewUniform().Generate(s, 50000, 29)
	agg, err := Collect(ds, Options{Strategy: OHG, Epsilon: 5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	q := query.Query{Preds: []query.Predicate{query.NewRange(0, 0, 7), query.NewIn(2, 0, 1)}}
	truth := query.Evaluate(q, [][]uint16{ds.Col(0), ds.Col(1), ds.Col(2)})
	got, err := agg.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-truth) > 0.03 {
		t.Errorf("eps=5: got %v, truth %v", got, truth)
	}
}
