package core_test

import (
	"fmt"
	"log"
	"math"

	"felip/internal/core"
	"felip/internal/dataset"
	"felip/internal/query"
)

// ExampleCollect shows the simulated single-call round: a dataset stands in
// for the population, Collect runs planning, ε-LDP perturbation and
// aggregation, and the aggregator answers a mixed point/range query.
func ExampleCollect() {
	schema := dataset.MixedSchema(2, 64, 2, 8)
	users := dataset.NewNormal().Generate(schema, 50_000, 1)

	agg, err := core.Collect(users, core.Options{
		Strategy: core.OHG,
		Epsilon:  3.0,
		Seed:     7,
	})
	if err != nil {
		log.Fatal(err)
	}

	q := query.Query{Preds: []query.Predicate{
		query.NewRange(0, 16, 47), // num0 BETWEEN 16 AND 47
		query.NewIn(2, 0, 1),      // cat0 IN (0, 1)
	}}
	estimate, err := agg.Answer(q)
	if err != nil {
		log.Fatal(err)
	}

	cols := make([][]uint16, schema.Len())
	for i := range cols {
		cols[i] = users.Col(i)
	}
	truth := query.Evaluate(q, cols)
	fmt.Println("within 0.05 of the exact answer:", math.Abs(estimate-truth) < 0.05)
	// Output: within 0.05 of the exact answer: true
}

// ExampleCollector shows the deployment path: the aggregator publishes a
// plan, each device perturbs locally with core.Client and submits a single
// report, and the round is finalized server-side.
func ExampleCollector() {
	schema := dataset.MixedSchema(2, 64, 2, 8)
	users := dataset.NewNormal().Generate(schema, 20_000, 2)

	col, err := core.NewCollector(schema, users.N(), core.Options{
		Strategy: core.OHG,
		Epsilon:  2.0,
		Seed:     9,
	})
	if err != nil {
		log.Fatal(err)
	}
	device, err := core.NewClient(col.Specs(), col.Epsilon(), 11)
	if err != nil {
		log.Fatal(err)
	}
	for row := 0; row < users.N(); row++ {
		rep, err := device.Perturb(col.AssignGroup(), func(attr int) int {
			return users.Value(row, attr)
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := col.Add(rep); err != nil {
			log.Fatal(err)
		}
	}
	agg, err := col.Finalize()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("reports aggregated:", agg.N())
	// Output: reports aggregated: 20000
}
