package core

import (
	"runtime"
	"sync"
)

// FanOut runs f(0..n-1) across at most GOMAXPROCS concurrent workers and
// waits for all of them. f(i) must be safe to run concurrently with f(j) for
// i ≠ j. The first non-nil error wins, by index order, so callers see a
// deterministic error regardless of scheduling. It is the shared parallel
// substrate of grid estimation (Collect, Collector.Finalize) and of the
// serving engine's matrix warm-up and batch answering.
func FanOut(n int, f func(i int) error) error {
	errs := make([]error, n)
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			errs[i] = f(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// estimateGrids fans per-grid frequency estimation out across GOMAXPROCS
// workers and collects every grid's vector. est(g) must be safe to run
// concurrently with est(h) for g ≠ h and deterministic per grid — both the
// simulated path (Collect, which pre-draws per-grid seeds) and the
// report-driven path (Collector.Finalize, whose aggregators are independent)
// satisfy this, so the fan-out changes wall-clock time and nothing else.
// The first non-nil error wins, by grid order.
func estimateGrids(m int, est func(g int) ([]float64, error)) ([][]float64, error) {
	freqs := make([][]float64, m)
	err := FanOut(m, func(g int) error {
		var err error
		freqs[g], err = est(g)
		return err
	})
	if err != nil {
		return nil, err
	}
	return freqs, nil
}
