package core

import (
	"runtime"
	"sync"
)

// estimateGrids fans per-grid frequency estimation out across GOMAXPROCS
// workers and collects every grid's vector. est(g) must be safe to run
// concurrently with est(h) for g ≠ h and deterministic per grid — both the
// simulated path (Collect, which pre-draws per-grid seeds) and the
// report-driven path (Collector.Finalize, whose aggregators are independent)
// satisfy this, so the fan-out changes wall-clock time and nothing else.
// The first non-nil error wins, by grid order.
func estimateGrids(m int, est func(g int) ([]float64, error)) ([][]float64, error) {
	freqs := make([][]float64, m)
	errs := make([]error, m)
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for g := 0; g < m; g++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(g int) {
			defer wg.Done()
			defer func() { <-sem }()
			freqs[g], errs[g] = est(g)
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return freqs, nil
}
