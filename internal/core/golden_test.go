package core

import (
	"hash/fnv"
	"math"
	"testing"

	"felip/internal/dataset"
)

// hashAgg fingerprints an aggregator's post-processed grid frequencies: an
// FNV-64a over every float64's bit pattern in spec order. Any change to the
// planning, perturbation, estimation or post-processing float stream moves
// the hash.
func hashAgg(a *Aggregator) (uint64, []float64) {
	h := fnv.New64a()
	var buf [8]byte
	var samples []float64
	for _, sp := range a.specs {
		var freq []float64
		if sp.Is1D() {
			freq = a.grids1[sp.AttrX].Freq
		} else {
			freq = a.grids2[[2]int{sp.AttrX, sp.AttrY}].Freq
		}
		for _, f := range freq {
			bits := math.Float64bits(f)
			for i := 0; i < 8; i++ {
				buf[i] = byte(bits >> (8 * i))
			}
			h.Write(buf[:])
		}
		if len(freq) > 0 {
			samples = append(samples, freq[0])
		}
	}
	return h.Sum64(), samples
}

// TestFELIPBitIdentical pins the default FELIP path to the exact output it
// produced before the ReportMode refactor: the hashes below were captured on
// the pre-refactor tree with the identical datasets, seeds and options. A
// mismatch means the refactor changed the FELIP float stream — which the
// mode abstraction must never do.
func TestFELIPBitIdentical(t *testing.T) {
	ds := dataset.NewNormal().Generate(mixedSchema(), 4000, 123)
	for _, tc := range []struct {
		name       string
		opts       Options
		wantHash   uint64
		wantSample float64
	}{
		{"OUG", Options{Strategy: OUG, Epsilon: 1, Seed: 42}, 0xffd5ce6b3fefc5a5, 0.52108800178306014},
		{"OHG", Options{Strategy: OHG, Epsilon: 1, Seed: 42}, 0xb5ce71ca5f0dc4a6, 0.093992098307303373},
		// The §5.1 matched-plan budget ablation rides the FELIP plan shape and
		// must stay pinned too.
		{"OHG-budget", Options{Strategy: OHG, Epsilon: 1, Seed: 42, DivideBudget: true}, 0x521eba9b35abb579, 0.67880196130841575},
	} {
		agg, err := Collect(ds, tc.opts)
		if err != nil {
			t.Fatal(err)
		}
		h, samples := hashAgg(agg)
		if h != tc.wantHash {
			t.Errorf("%s: grid hash %#x, pre-refactor golden %#x", tc.name, h, tc.wantHash)
		}
		if len(samples) == 0 || samples[0] != tc.wantSample {
			t.Errorf("%s: first cell %v, pre-refactor golden %v", tc.name, samples, tc.wantSample)
		}
	}
}

// TestIncrementalFELIPBitIdentical pins the incremental (Collector/Client)
// FELIP path the same way.
func TestIncrementalFELIPBitIdentical(t *testing.T) {
	ds := dataset.NewNormal().Generate(mixedSchema(), 4000, 123)
	col, err := NewCollector(mixedSchema(), 3000, Options{Strategy: OHG, Epsilon: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewClient(col.Specs(), col.Epsilon(), 11)
	if err != nil {
		t.Fatal(err)
	}
	for dev := 0; dev < 3000; dev++ {
		row := dev
		rep, err := cl.Perturb(col.AssignGroup(), func(attr int) int { return ds.Value(row, attr) })
		if err != nil {
			t.Fatal(err)
		}
		if err := col.Add(rep); err != nil {
			t.Fatal(err)
		}
	}
	agg, err := col.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	h, samples := hashAgg(agg)
	const wantHash = 0x47cf6dffd2b6d185
	const wantSample = 0.48261113404096367
	if h != wantHash {
		t.Errorf("incremental grid hash %#x, pre-refactor golden %#x", h, wantHash)
	}
	if len(samples) < 3 || samples[2] != wantSample {
		t.Errorf("incremental samples %v, pre-refactor golden samples[2]=%v", samples, wantSample)
	}
}

// TestModeCollectDeterministic pins the new modes to determinism: the same
// seed must reproduce the identical float stream, and SPL/RS+FD must differ
// from FELIP (they are different designs, not aliases).
func TestModeCollectDeterministic(t *testing.T) {
	ds := dataset.NewNormal().Generate(mixedSchema(), 4000, 123)
	felipHash, _ := func() (uint64, []float64) {
		agg, err := Collect(ds, Options{Strategy: OHG, Epsilon: 1, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		return hashAgg(agg)
	}()
	for _, mode := range []ReportMode{ModeSPL, ModeRSFD} {
		run := func() uint64 {
			agg, err := Collect(ds, Options{Strategy: OHG, Epsilon: 1, Seed: 42, Mode: mode})
			if err != nil {
				t.Fatal(err)
			}
			h, _ := hashAgg(agg)
			return h
		}
		h1, h2 := run(), run()
		if h1 != h2 {
			t.Errorf("%v: same seed produced %#x then %#x", mode, h1, h2)
		}
		if h1 == felipHash {
			t.Errorf("%v: output identical to FELIP", mode)
		}
	}
}
