package core

import (
	"errors"
	"math"
	"sync"
	"testing"

	"felip/internal/dataset"
	"felip/internal/domain"
	"felip/internal/query"
)

// fillCollector feeds n perturbed reports from a normal dataset into col.
func fillCollector(t testing.TB, col *Collector, s *domain.Schema, n int) {
	t.Helper()
	ds := dataset.NewNormal().Generate(s, n, 5)
	cl, err := NewClient(col.Specs(), col.Epsilon(), 9)
	if err != nil {
		t.Fatal(err)
	}
	for row := 0; row < ds.N(); row++ {
		group := col.AssignGroup()
		rep, err := cl.Perturb(group, func(attr int) int { return ds.Value(row, attr) })
		if err != nil {
			t.Fatal(err)
		}
		if err := col.Add(rep); err != nil {
			t.Fatal(err)
		}
	}
}

// TestFinalizeIdempotent: the doc said "should be called once", but a second
// call used to silently re-run estimation on the finalized round. Repeat and
// concurrent calls must return the one cached Aggregator.
func TestFinalizeIdempotent(t *testing.T) {
	s := mixedSchema()
	col, err := NewCollector(s, 4000, Options{Strategy: OUG, Epsilon: 1, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	fillCollector(t, col, s, 4000)

	first, err := col.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	second, err := col.Finalize()
	if err != nil {
		t.Fatalf("second Finalize: %v", err)
	}
	if first != second {
		t.Fatal("second Finalize returned a different Aggregator (estimation re-ran)")
	}

	// Concurrent callers also converge on the same result.
	const callers = 8
	aggs := make([]*Aggregator, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			aggs[i], _ = col.Finalize()
		}(i)
	}
	wg.Wait()
	for i, a := range aggs {
		if a != first {
			t.Fatalf("concurrent Finalize %d returned a different Aggregator", i)
		}
	}
}

// TestCollectorLiveDuringFinalize pins the tentpole's liveness property
// deterministically: with the estimation phase held open by the test hook,
// N, GroupCounts, Rejected and (refused) Add must all complete — none of
// them can be serialized behind the finalization anymore.
func TestCollectorLiveDuringFinalize(t *testing.T) {
	s := mixedSchema()
	col, err := NewCollector(s, 3000, Options{Strategy: OUG, Epsilon: 1, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	fillCollector(t, col, s, 3000)

	probed := make(chan struct{})
	release := make(chan struct{})
	testHookFinalizeEstimation = func() {
		close(probed) // estimation phase reached, collector lock released
		<-release     // hold the finalize open until the probes are done
	}
	defer func() { testHookFinalizeEstimation = nil }()

	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := col.Finalize(); err != nil {
			t.Errorf("Finalize: %v", err)
		}
	}()

	<-probed
	// The round is closing: status surfaces must answer immediately, and new
	// reports must be refused with the sentinel, all while Finalize is
	// provably still in flight (release is unclosed).
	if got := col.N(); got != 3000 {
		t.Errorf("N during finalize = %d, want 3000", got)
	}
	counts := col.GroupCounts()
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 3000 {
		t.Errorf("GroupCounts during finalize sum to %d, want 3000", total)
	}
	if got := col.Rejected(); got != 0 {
		t.Errorf("Rejected during finalize = %d, want 0", got)
	}
	if err := col.Add(Report{Group: 0, Proto: col.Specs()[0].Proto}); !errors.Is(err, ErrFinalized) {
		t.Errorf("Add during finalize: err = %v, want ErrFinalized", err)
	}
	select {
	case <-done:
		t.Fatal("Finalize returned before the probes ran; hook did not hold it open")
	default:
	}
	close(release)
	<-done
}

// TestCollectorRaceDuringFinalize hammers the collector's read surface and
// Add path while Finalize estimates, from many goroutines. Its value is
// under -race (make check): any lock-protocol regression in the
// snapshot-then-estimate restructure shows up here.
func TestCollectorRaceDuringFinalize(t *testing.T) {
	s := mixedSchema()
	col, err := NewCollector(s, 2000, Options{Strategy: OUG, Epsilon: 1, Seed: 17, StreamingAggregation: true})
	if err != nil {
		t.Fatal(err)
	}
	fillCollector(t, col, s, 2000)

	start := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < 200; i++ {
				_ = col.N()
				_ = col.GroupCounts()
				_ = col.Rejected()
				_ = col.Add(Report{Group: 0, Proto: col.Specs()[0].Proto})
			}
		}()
	}
	var aggs [2]*Aggregator
	for i := range aggs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			aggs[i], _ = col.Finalize()
		}(i)
	}
	close(start)
	wg.Wait()
	if aggs[0] == nil || aggs[0] != aggs[1] {
		t.Fatalf("concurrent Finalize calls disagree: %p vs %p", aggs[0], aggs[1])
	}
}

// TestCollectorStreamingMatchesBuffered: the memory-bounded collector must
// produce exactly the estimates of the buffering one for the same reports.
func TestCollectorStreamingMatchesBuffered(t *testing.T) {
	s := mixedSchema()
	opts := Options{Strategy: OUG, Epsilon: 1, Seed: 19}
	optsStream := opts
	optsStream.StreamingAggregation = true

	build := func(o Options) *Aggregator {
		col, err := NewCollector(s, 3000, o)
		if err != nil {
			t.Fatal(err)
		}
		fillCollector(t, col, s, 3000)
		agg, err := col.Finalize()
		if err != nil {
			t.Fatal(err)
		}
		return agg
	}
	a, b := build(opts), build(optsStream)
	q, err := query.Parse("num0=2..9 and cat0=0,1", s)
	if err != nil {
		t.Fatal(err)
	}
	va, err := a.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	vb, err := b.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	if va != vb {
		t.Fatalf("streaming answer %v != buffered answer %v", vb, va)
	}
}

// TestCollectorCountsRejected: malformed reports must be counted, not
// silently swallowed into an error return the operator never aggregates.
func TestCollectorCountsRejected(t *testing.T) {
	col, err := NewCollector(mixedSchema(), 1000, Options{Strategy: OUG, Epsilon: 1, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	specs := col.Specs()
	bad := []Report{
		{Group: -1},
		{Group: len(specs)},
		{Group: 0, Proto: specs[0].Proto, Value: 1 << 20},
	}
	for _, rep := range bad {
		if err := col.Add(rep); err == nil {
			t.Fatalf("bad report %+v accepted", rep)
		}
	}
	if got := col.Rejected(); got != len(bad) {
		t.Errorf("Rejected = %d, want %d", got, len(bad))
	}
	if got := col.N(); got != 0 {
		t.Errorf("N = %d, want 0", got)
	}
}

// TestAnswerZeroPopulationConverges is the regression test for the unguarded
// threshold := 1/n: with n = 0 the threshold was +Inf, so IPF exited after a
// single sweep. The guard must fall back to a finite default and Answer must
// return a finite estimate.
func TestAnswerZeroPopulationConverges(t *testing.T) {
	s := mixedSchema()
	specs, err := BuildPlan(s, 10000, Options{Strategy: OUG, Epsilon: 1, Seed: 29})
	if err != nil {
		t.Fatal(err)
	}
	opts, err := Options{Strategy: OUG, Epsilon: 1, Seed: 29}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	freqs := make([][]float64, len(specs))
	groupNs := make([]int, len(specs))
	for g, sp := range specs {
		f := make([]float64, sp.L())
		for i := range f {
			f[i] = 1 / float64(len(f))
		}
		freqs[g] = f
	}
	agg, err := assembleAggregator(s, opts, specs, 0, freqs, groupNs, opts.Epsilon)
	if err != nil {
		t.Fatal(err)
	}
	if got := agg.ipfThreshold(); got != defaultIPFThreshold {
		t.Errorf("ipfThreshold with n=0 = %v, want %v", got, defaultIPFThreshold)
	}
	q, err := query.Parse("num0=2..9 and cat0=0,1 and num1=1..6", s)
	if err != nil {
		t.Fatal(err)
	}
	est, err := agg.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(est) || math.IsInf(est, 0) {
		t.Fatalf("Answer with n=0 not finite: %v", est)
	}
	// With n > 0 the threshold is the paper's 1/n.
	agg.n = 4000
	if got := agg.ipfThreshold(); got != 1/4000.0 {
		t.Errorf("ipfThreshold with n=4000 = %v, want %v", got, 1/4000.0)
	}
}
