package estimate

import (
	"math"
	"testing"

	"felip/internal/fo"
)

func randomMatrix(t *testing.T, dx, dy int, seed uint64) *Matrix {
	t.Helper()
	m, err := NewMatrix(dx, dy)
	if err != nil {
		t.Fatal(err)
	}
	r := fo.NewRand(seed)
	for i := range m.Vals {
		m.Vals[i] = r.Float64()
	}
	return m
}

// naiveRect is the reference O(area) rectangle sum.
func naiveRect(m *Matrix, xLo, xHi, yLo, yHi int) float64 {
	var s float64
	for x := xLo; x < xHi; x++ {
		for y := yLo; y < yHi; y++ {
			s += m.At(x, y)
		}
	}
	return s
}

func TestSummedAreaRectSum(t *testing.T) {
	m := randomMatrix(t, 37, 23, 1)
	sat, err := m.SummedArea()
	if err != nil {
		t.Fatal(err)
	}
	if dx, dy := sat.Dims(); dx != 37 || dy != 23 {
		t.Fatalf("Dims = (%d,%d), want (37,23)", dx, dy)
	}
	r := fo.NewRand(2)
	for trial := 0; trial < 500; trial++ {
		x1, x2 := r.IntN(m.Dx+1), r.IntN(m.Dx+1)
		if x1 > x2 {
			x1, x2 = x2, x1
		}
		y1, y2 := r.IntN(m.Dy+1), r.IntN(m.Dy+1)
		if y1 > y2 {
			y1, y2 = y2, y1
		}
		want := naiveRect(m, x1, x2, y1, y2)
		got := sat.RectSum(x1, x2, y1, y2)
		if math.Abs(got-want) > 1e-10 {
			t.Fatalf("RectSum(%d,%d,%d,%d) = %v, want %v", x1, x2, y1, y2, got, want)
		}
	}
	if got, want := sat.Total(), naiveRect(m, 0, m.Dx, 0, m.Dy); math.Abs(got-want) > 1e-10 {
		t.Fatalf("Total = %v, want %v", got, want)
	}
}

// TestSummedAreaMatchesMaskScan pins the serving-engine equivalence: the
// span-decomposed summed-area answer of a randomized contiguous-range
// selection must match the boolean mask scan (Matrix.MaskSum) the legacy read
// path performs, for both the selection and its complement.
func TestSummedAreaMatchesMaskScan(t *testing.T) {
	m := randomMatrix(t, 41, 29, 3)
	sat, err := m.SummedArea()
	if err != nil {
		t.Fatal(err)
	}
	r := fo.NewRand(4)
	randSpan := func(d int) Span {
		lo := r.IntN(d)
		hi := lo + 1 + r.IntN(d-lo)
		return Span{Lo: lo, Hi: hi}
	}
	mask := func(spans []Span, d int) []bool {
		sel := make([]bool, d)
		for _, s := range spans {
			for v := s.Lo; v < s.Hi; v++ {
				sel[v] = true
			}
		}
		return sel
	}
	for trial := 0; trial < 300; trial++ {
		sx := []Span{randSpan(m.Dx)}
		sy := []Span{randSpan(m.Dy)}
		nx := ComplementSpans(sx, m.Dx)
		ny := ComplementSpans(sy, m.Dy)
		cases := []struct {
			spansX, spansY []Span
		}{{sx, sy}, {sx, ny}, {nx, sy}, {nx, ny}}
		for _, c := range cases {
			want := m.MaskSum(mask(c.spansX, m.Dx), mask(c.spansY, m.Dy))
			got := sat.SpanSum(c.spansX, c.spansY)
			if math.Abs(got-want) > 1e-10 {
				t.Fatalf("trial %d: SpanSum(%v,%v) = %v, mask scan = %v", trial, c.spansX, c.spansY, got, want)
			}
		}
		if got, want := sat.RowSum(sx), m.MaskSum(mask(sx, m.Dx), mask([]Span{{0, m.Dy}}, m.Dy)); math.Abs(got-want) > 1e-10 {
			t.Fatalf("RowSum = %v, want %v", got, want)
		}
		if got, want := sat.ColSum(sy), m.MaskSum(mask([]Span{{0, m.Dx}}, m.Dx), mask(sy, m.Dy)); math.Abs(got-want) > 1e-10 {
			t.Fatalf("ColSum = %v, want %v", got, want)
		}
	}
}

func TestComplementSpans(t *testing.T) {
	cases := []struct {
		in   []Span
		d    int
		want []Span
	}{
		{nil, 5, []Span{{0, 5}}},
		{[]Span{{0, 5}}, 5, []Span{}},
		{[]Span{{1, 3}}, 5, []Span{{0, 1}, {3, 5}}},
		{[]Span{{0, 1}, {2, 3}}, 5, []Span{{1, 2}, {3, 5}}},
		{[]Span{{4, 5}}, 5, []Span{{0, 4}}},
	}
	for _, c := range cases {
		got := ComplementSpans(c.in, c.d)
		if len(got) != len(c.want) {
			t.Fatalf("ComplementSpans(%v, %d) = %v, want %v", c.in, c.d, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("ComplementSpans(%v, %d) = %v, want %v", c.in, c.d, got, c.want)
			}
		}
		if SpanTotal(got)+SpanTotal(c.in) != c.d {
			t.Fatalf("spans + complement don't cover [0,%d)", c.d)
		}
	}
}

func TestSummedAreaErrors(t *testing.T) {
	if _, err := NewSummedArea(0, 3, nil); err == nil {
		t.Fatal("dx=0 accepted")
	}
	if _, err := NewSummedArea(2, 2, make([]float64, 3)); err == nil {
		t.Fatal("length mismatch accepted")
	}
}
