package estimate

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewMatrix(t *testing.T) {
	m, err := NewMatrix(4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if m.Dx != 4 || m.Dy != 5 || len(m.Vals) != 20 {
		t.Fatalf("matrix %+v", m)
	}
	if math.Abs(m.Sum()-1) > 1e-12 {
		t.Errorf("initial sum = %v", m.Sum())
	}
	if math.Abs(m.At(2, 3)-0.05) > 1e-12 {
		t.Errorf("initial entry = %v, want 0.05", m.At(2, 3))
	}
	if _, err := NewMatrix(0, 3); err == nil {
		t.Error("0 dim accepted")
	}
	if _, err := NewMatrix(3, -1); err == nil {
		t.Error("negative dim accepted")
	}
}

func TestRectSumAndArea(t *testing.T) {
	m, _ := NewMatrix(4, 4)
	r := Rect{XLo: 1, XHi: 3, YLo: 0, YHi: 2}
	if r.Area() != 4 {
		t.Errorf("Area = %d", r.Area())
	}
	if got := m.RectSum(r); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("RectSum = %v, want 0.25", got)
	}
	full := Rect{0, 4, 0, 4}
	if got := m.RectSum(full); math.Abs(got-1) > 1e-12 {
		t.Errorf("full RectSum = %v", got)
	}
}

func TestFitSingleConstraint(t *testing.T) {
	m, _ := NewMatrix(4, 4)
	cons := []Constraint{
		{R: Rect{0, 2, 0, 4}, Target: 0.8},
		{R: Rect{2, 4, 0, 4}, Target: 0.2},
	}
	m.Fit(cons, 1e-9, 100)
	if got := m.RectSum(cons[0].R); math.Abs(got-0.8) > 1e-6 {
		t.Errorf("region mass = %v, want 0.8", got)
	}
	if got := m.RectSum(cons[1].R); math.Abs(got-0.2) > 1e-6 {
		t.Errorf("region mass = %v, want 0.2", got)
	}
	if math.Abs(m.Sum()-1) > 1e-6 {
		t.Errorf("total mass = %v", m.Sum())
	}
}

// A consistent set of 1-D and 2-D constraints (exact marginals of a known
// joint) must reconstruct the joint's rectangle masses well.
func TestFitReconstructsJoint(t *testing.T) {
	// True joint over 4x4: concentrated diagonal.
	truth := [][]float64{
		{0.20, 0.02, 0.01, 0.01},
		{0.02, 0.20, 0.02, 0.01},
		{0.01, 0.02, 0.20, 0.02},
		{0.01, 0.01, 0.02, 0.22},
	}
	var cons []Constraint
	// 2-D grid constraints: 2x2 cells of 2x2 values.
	for cx := 0; cx < 2; cx++ {
		for cy := 0; cy < 2; cy++ {
			r := Rect{cx * 2, cx*2 + 2, cy * 2, cy*2 + 2}
			var tgt float64
			for x := r.XLo; x < r.XHi; x++ {
				for y := r.YLo; y < r.YHi; y++ {
					tgt += truth[x][y]
				}
			}
			cons = append(cons, Constraint{R: r, Target: tgt})
		}
	}
	// Fine 1-D constraints along both axes.
	for x := 0; x < 4; x++ {
		var tgt float64
		for y := 0; y < 4; y++ {
			tgt += truth[x][y]
		}
		cons = append(cons, Constraint{R: Rect{x, x + 1, 0, 4}, Target: tgt})
	}
	for y := 0; y < 4; y++ {
		var tgt float64
		for x := 0; x < 4; x++ {
			tgt += truth[x][y]
		}
		cons = append(cons, Constraint{R: Rect{0, 4, y, y + 1}, Target: tgt})
	}
	m, _ := NewMatrix(4, 4)
	m.Fit(cons, 1e-10, 500)
	// Check every constraint is satisfied and coarse 2-D structure recovered.
	for _, c := range cons {
		if got := m.RectSum(c.R); math.Abs(got-c.Target) > 1e-3 {
			t.Errorf("constraint %+v: got %v", c, got)
		}
	}
	// Diagonal cells must carry clearly more mass than off-diagonal ones.
	if m.At(0, 0) < m.At(0, 3) {
		t.Errorf("diagonal structure lost: M[0,0]=%v <= M[0,3]=%v", m.At(0, 0), m.At(0, 3))
	}
}

func TestFitZeroTargetZeroesRegion(t *testing.T) {
	m, _ := NewMatrix(2, 2)
	m.Fit([]Constraint{{R: Rect{0, 1, 0, 2}, Target: 0}, {R: Rect{1, 2, 0, 2}, Target: 1}}, 1e-12, 50)
	if m.At(0, 0) != 0 || m.At(0, 1) != 0 {
		t.Errorf("zero-target region not cleared: %v", m.Vals)
	}
	if math.Abs(m.RectSum(Rect{1, 2, 0, 2})-1) > 1e-9 {
		t.Error("remaining region should hold all mass")
	}
}

func TestFitNegativeTargetTreatedAsZero(t *testing.T) {
	m, _ := NewMatrix(2, 2)
	m.Fit([]Constraint{{R: Rect{0, 1, 0, 2}, Target: -0.5}}, 1e-12, 10)
	if m.At(0, 0) != 0 {
		t.Errorf("negative target should clear region, got %v", m.At(0, 0))
	}
}

func TestFitSkipsEmptyRegions(t *testing.T) {
	m, _ := NewMatrix(2, 2)
	// Zero the first row, then constrain it to 0.5: cannot be satisfied and
	// must not panic or produce NaN.
	m.Fit([]Constraint{{R: Rect{0, 1, 0, 2}, Target: 0}}, 1e-12, 5)
	m.Fit([]Constraint{{R: Rect{0, 1, 0, 2}, Target: 0.5}}, 1e-12, 5)
	for _, v := range m.Vals {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("non-finite value: %v", m.Vals)
		}
	}
}

func TestMaskSum(t *testing.T) {
	m, _ := NewMatrix(3, 3)
	selX := []bool{true, false, true}
	selY := []bool{true, true, false}
	// 4 selected entries of 1/9 each.
	if got := m.MaskSum(selX, selY); math.Abs(got-4.0/9) > 1e-12 {
		t.Errorf("MaskSum = %v, want 4/9", got)
	}
}

// Property: Fit preserves non-negativity and, when constraints form a
// partition whose targets sum to 1, total mass 1.
func TestFitMassProperty(t *testing.T) {
	if err := quick.Check(func(t1, t2, t3 uint8) bool {
		a := float64(t1%100) + 1
		b := float64(t2%100) + 1
		c := float64(t3%100) + 1
		s := a + b + c
		m, _ := NewMatrix(6, 4)
		cons := []Constraint{
			{R: Rect{0, 2, 0, 4}, Target: a / s},
			{R: Rect{2, 4, 0, 4}, Target: b / s},
			{R: Rect{4, 6, 0, 4}, Target: c / s},
		}
		m.Fit(cons, 1e-12, 50)
		for _, v := range m.Vals {
			if v < 0 {
				return false
			}
		}
		return math.Abs(m.Sum()-1) < 1e-6
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
