// Package estimate implements FELIP's two estimation engines: the response
// matrix built from related grids by weighted update (paper Algorithm 3) and
// λ-dimensional query estimation from 2-D answers by iterative proportional
// fitting (paper Algorithm 4).
package estimate

import "fmt"

// Rect is a half-open rectangle [XLo,XHi)×[YLo,YHi) of per-value matrix
// entries — the set δ(c) of 2-D values contributing to one grid cell.
type Rect struct {
	XLo, XHi, YLo, YHi int
}

// Area returns the number of matrix entries inside the rectangle.
func (r Rect) Area() int { return (r.XHi - r.XLo) * (r.YHi - r.YLo) }

// Constraint binds a rectangle of matrix entries to an estimated frequency:
// after convergence the entries in R sum (approximately) to Target.
type Constraint struct {
	R      Rect
	Target float64
}

// Matrix is a dense row-major dx×dy response matrix of per-value frequency
// estimates for one attribute pair.
type Matrix struct {
	Dx, Dy int
	Vals   []float64
}

// NewMatrix allocates a dx×dy matrix initialized uniformly to 1/(dx·dy)
// (Algorithm 3 line 1).
func NewMatrix(dx, dy int) (*Matrix, error) {
	if dx < 1 || dy < 1 {
		return nil, fmt.Errorf("estimate: matrix dims %dx%d invalid", dx, dy)
	}
	m := &Matrix{Dx: dx, Dy: dy, Vals: make([]float64, dx*dy)}
	u := 1 / float64(dx*dy)
	for i := range m.Vals {
		m.Vals[i] = u
	}
	return m, nil
}

// At returns entry (x, y).
func (m *Matrix) At(x, y int) float64 { return m.Vals[x*m.Dy+y] }

// RectSum returns the total mass inside r.
func (m *Matrix) RectSum(r Rect) float64 {
	var s float64
	for x := r.XLo; x < r.XHi; x++ {
		row := m.Vals[x*m.Dy : (x+1)*m.Dy]
		for y := r.YLo; y < r.YHi; y++ {
			s += row[y]
		}
	}
	return s
}

// MaskSum returns the total mass of entries (x, y) with selX[x] && selY[y] —
// the response-matrix answer to a 2-D query with arbitrary predicates.
func (m *Matrix) MaskSum(selX, selY []bool) float64 {
	var s float64
	for x := 0; x < m.Dx; x++ {
		if !selX[x] {
			continue
		}
		row := m.Vals[x*m.Dy : (x+1)*m.Dy]
		for y := 0; y < m.Dy; y++ {
			if selY[y] {
				s += row[y]
			}
		}
	}
	return s
}

// Sum returns the total mass of the matrix.
func (m *Matrix) Sum() float64 {
	var s float64
	for _, v := range m.Vals {
		s += v
	}
	return s
}

// scaleRect multiplies entries in r by factor and returns the total absolute
// change.
func (m *Matrix) scaleRect(r Rect, factor float64) float64 {
	var change float64
	for x := r.XLo; x < r.XHi; x++ {
		row := m.Vals[x*m.Dy : (x+1)*m.Dy]
		for y := r.YLo; y < r.YHi; y++ {
			old := row[y]
			row[y] = old * factor
			if d := row[y] - old; d >= 0 {
				change += d
			} else {
				change -= d
			}
		}
	}
	return change
}

// Fit runs Algorithm 3's weighted update: for every constraint, the entries
// of its rectangle are rescaled so their sum matches the constraint's target,
// sweeping until the total absolute change of a sweep drops below threshold
// (the paper recommends threshold < 1/n) or maxIter sweeps elapse.
//
// Constraints with non-positive targets zero out their rectangle; rectangles
// that currently hold zero mass are skipped (Algorithm 3 line 8).
func (m *Matrix) Fit(cons []Constraint, threshold float64, maxIter int) {
	if maxIter < 1 {
		maxIter = 1
	}
	for iter := 0; iter < maxIter; iter++ {
		var change float64
		for _, c := range cons {
			s := m.RectSum(c.R)
			if s == 0 {
				continue
			}
			target := c.Target
			if target < 0 {
				target = 0
			}
			change += m.scaleRect(c.R, target/s)
		}
		if change < threshold {
			return
		}
	}
}
