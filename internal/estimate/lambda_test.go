package estimate

import (
	"math"
	"testing"
	"testing/quick"
)

// pairFromJoint computes the four exact sign-combination answers of pair
// (i, j) from a full joint over sign patterns.
func pairFromJoint(joint []float64, lambda, i, j int) PairAnswer {
	p := PairAnswer{I: i, J: j}
	for idx, v := range joint {
		hasI := idx&(1<<i) != 0
		hasJ := idx&(1<<j) != 0
		switch {
		case hasI && hasJ:
			p.PP += v
		case hasI:
			p.PN += v
		case hasJ:
			p.NP += v
		default:
			p.NN += v
		}
	}
	return p
}

func allPairs(joint []float64, lambda int) []PairAnswer {
	var out []PairAnswer
	for i := 0; i < lambda; i++ {
		for j := i + 1; j < lambda; j++ {
			out = append(out, pairFromJoint(joint, lambda, i, j))
		}
	}
	return out
}

func TestEstimateLambdaValidation(t *testing.T) {
	if _, err := EstimateLambda(1, nil, 1e-6, 10); err == nil {
		t.Error("lambda=1 accepted")
	}
	if _, err := EstimateLambda(25, nil, 1e-6, 10); err == nil {
		t.Error("lambda=25 accepted")
	}
	if _, err := EstimateLambda(3, []PairAnswer{{I: 1, J: 1}}, 1e-6, 10); err == nil {
		t.Error("I==J accepted")
	}
	if _, err := EstimateLambda(3, []PairAnswer{{I: 0, J: 5}}, 1e-6, 10); err == nil {
		t.Error("J out of range accepted")
	}
}

// Independent predicates: the λ-D answer must be the product of marginals.
func TestEstimateLambdaIndependent(t *testing.T) {
	lambda := 3
	marg := []float64{0.5, 0.3, 0.8}
	joint := make([]float64, 1<<lambda)
	for idx := range joint {
		v := 1.0
		for b := 0; b < lambda; b++ {
			if idx&(1<<b) != 0 {
				v *= marg[b]
			} else {
				v *= 1 - marg[b]
			}
		}
		joint[idx] = v
	}
	got, err := EstimateLambda(lambda, allPairs(joint, lambda), 1e-12, 500)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.5 * 0.3 * 0.8
	if math.Abs(got-want) > 1e-6 {
		t.Errorf("independent joint: got %v, want %v", got, want)
	}
}

// Perfectly correlated predicates: all-or-nothing joint.
func TestEstimateLambdaCorrelated(t *testing.T) {
	lambda := 4
	joint := make([]float64, 1<<lambda)
	joint[(1<<lambda)-1] = 0.3 // all predicates true
	joint[0] = 0.7             // none true
	got, err := EstimateLambda(lambda, allPairs(joint, lambda), 1e-12, 500)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.3) > 0.01 {
		t.Errorf("correlated joint: got %v, want 0.3", got)
	}
}

// λ=2: the answer must reproduce the single pair's PP directly.
func TestEstimateLambdaTwo(t *testing.T) {
	got, err := EstimateLambda(2, []PairAnswer{{I: 0, J: 1, PP: 0.42, PN: 0.18, NP: 0.13, NN: 0.27}}, 1e-12, 100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.42) > 1e-9 {
		t.Errorf("lambda=2: got %v, want 0.42", got)
	}
}

func TestEstimateLambdaNegativeInputsClamped(t *testing.T) {
	got, err := EstimateLambda(2, []PairAnswer{{I: 0, J: 1, PP: -0.1, PN: 0.5, NP: 0.4, NN: 0.2}}, 1e-12, 100)
	if err != nil {
		t.Fatal(err)
	}
	if got < 0 || math.IsNaN(got) {
		t.Errorf("negative input produced %v", got)
	}
}

func TestEstimateLambdaDegenerateAllZero(t *testing.T) {
	got, err := EstimateLambda(2, []PairAnswer{{I: 0, J: 1}}, 1e-12, 100)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(got) || got < 0 || got > 1 {
		t.Errorf("degenerate input produced %v", got)
	}
}

// Property: the estimate is always a valid probability for random
// (normalized) pair answers, and exact joints are recovered within IPF
// tolerance for λ=3.
func TestEstimateLambdaProbabilityProperty(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		// Random joint over 8 sign patterns.
		s := seed
		joint := make([]float64, 8)
		var tot float64
		for i := range joint {
			s = s*6364136223846793005 + 1442695040888963407
			joint[i] = float64(s>>40) + 1
			tot += joint[i]
		}
		for i := range joint {
			joint[i] /= tot
		}
		got, err := EstimateLambda(3, allPairs(joint, 3), 1e-12, 300)
		if err != nil {
			return false
		}
		if got < -1e-9 || got > 1+1e-9 || math.IsNaN(got) {
			return false
		}
		// IPF with all pairwise marginals of a 3-way joint is not exact in
		// general, but must be reasonably close.
		return math.Abs(got-joint[7]) < 0.15
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRegionOf(t *testing.T) {
	bitI, bitJ := 1<<0, 1<<1
	cases := map[int]int{
		0b11: 0, // both set: PP
		0b01: 1, // i set only: PN
		0b10: 2, // j set only: NP
		0b00: 3, // neither: NN
	}
	for idx, want := range cases {
		if got := regionOf(idx, bitI, bitJ); got != want {
			t.Errorf("regionOf(%b) = %d, want %d", idx, got, want)
		}
	}
}
