package estimate

import "fmt"

// PairAnswer carries the answers of the four sign combinations of one
// associated 2-D query q^(i,j): PP is the mass where both predicates hold,
// PN where i holds and j does not, and so on. I and J index the query's
// attribute list (0 ≤ I < J < λ).
type PairAnswer struct {
	I, J           int
	PP, PN, NP, NN float64
}

// normalized clamps negatives and rescales the four answers to sum to 1,
// making the IPF constraints mutually satisfiable.
func (p PairAnswer) normalized() PairAnswer {
	vals := [4]float64{p.PP, p.PN, p.NP, p.NN}
	var sum float64
	for i, v := range vals {
		if v < 0 {
			vals[i] = 0
		}
		sum += vals[i]
	}
	if sum <= 0 {
		vals = [4]float64{0.25, 0.25, 0.25, 0.25}
		sum = 1
	}
	return PairAnswer{I: p.I, J: p.J, PP: vals[0] / sum, PN: vals[1] / sum, NP: vals[2] / sum, NN: vals[3] / sum}
}

// EstimateLambda implements Algorithm 4: it reconstructs the answer of a λ-D
// query from its C(λ,2) associated 2-D answers. The vector z holds one entry
// per sign pattern over the λ predicates (bit t set ⇔ predicate t holds);
// each 2-D answer constrains the sum of the 2^(λ−2) entries matching its
// pair's signs, and iterative proportional fitting runs until the total
// change per sweep is below threshold (< 1/n per the paper) or maxIter
// sweeps. The estimated query answer is z[all bits set].
func EstimateLambda(lambda int, pairs []PairAnswer, threshold float64, maxIter int) (float64, error) {
	if lambda < 2 {
		return 0, fmt.Errorf("estimate: lambda %d < 2", lambda)
	}
	if lambda > 20 {
		return 0, fmt.Errorf("estimate: lambda %d too large", lambda)
	}
	size := 1 << lambda
	z := make([]float64, size)
	for i := range z {
		z[i] = 1 / float64(size)
	}
	norm := make([]PairAnswer, len(pairs))
	for i, p := range pairs {
		if p.I < 0 || p.J <= p.I || p.J >= lambda {
			return 0, fmt.Errorf("estimate: invalid pair (%d,%d) for lambda %d", p.I, p.J, lambda)
		}
		norm[i] = p.normalized()
	}
	if maxIter < 1 {
		maxIter = 1
	}
	for iter := 0; iter < maxIter; iter++ {
		var change float64
		for _, p := range norm {
			change += fitPair(z, lambda, p)
		}
		if change < threshold {
			break
		}
	}
	return z[size-1], nil
}

// fitPair rescales the four sign-regions of pair (I, J) to match the pair's
// answers and returns the total absolute change.
func fitPair(z []float64, lambda int, p PairAnswer) float64 {
	bitI := 1 << p.I
	bitJ := 1 << p.J
	var sums [4]float64
	for idx, v := range z {
		sums[regionOf(idx, bitI, bitJ)] += v
	}
	targets := [4]float64{p.PP, p.PN, p.NP, p.NN}
	var factors [4]float64
	for r := 0; r < 4; r++ {
		if sums[r] > 0 {
			factors[r] = targets[r] / sums[r]
		} else {
			factors[r] = 1
		}
	}
	var change float64
	for idx := range z {
		old := z[idx]
		z[idx] = old * factors[regionOf(idx, bitI, bitJ)]
		if d := z[idx] - old; d >= 0 {
			change += d
		} else {
			change -= d
		}
	}
	return change
}

// regionOf maps a sign pattern to its quadrant: 0=PP, 1=PN, 2=NP, 3=NN.
func regionOf(idx, bitI, bitJ int) int {
	r := 0
	if idx&bitI == 0 {
		r |= 2
	}
	if idx&bitJ == 0 {
		r |= 1
	}
	return r
}
