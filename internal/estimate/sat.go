package estimate

import "fmt"

// Span is a half-open index interval [Lo, Hi). A predicate selection over a
// domain decomposes into a short ascending list of disjoint spans: one span
// for a BETWEEN predicate, at most ⌈|values|⌉ for an IN predicate, and at
// most runs+1 for a complement. Query-time code works on spans instead of
// per-value boolean masks, so no O(d) mask is materialized per predicate.
type Span struct {
	Lo, Hi int
}

// Len returns the number of indexes inside the span.
func (s Span) Len() int { return s.Hi - s.Lo }

// ComplementSpans returns the ascending spans covering [0, d) \ spans. spans
// must be ascending and disjoint within [0, d).
func ComplementSpans(spans []Span, d int) []Span {
	out := make([]Span, 0, len(spans)+1)
	prev := 0
	for _, s := range spans {
		if s.Lo > prev {
			out = append(out, Span{Lo: prev, Hi: s.Lo})
		}
		prev = s.Hi
	}
	if prev < d {
		out = append(out, Span{Lo: prev, Hi: d})
	}
	return out
}

// SpanTotal returns the number of indexes covered by the spans.
func SpanTotal(spans []Span) int {
	total := 0
	for _, s := range spans {
		total += s.Len()
	}
	return total
}

// SummedArea is the 2-D prefix-sum (summed-area) table of a dense row-major
// dx×dy value matrix: P[x][y] holds the total mass of the rectangle
// [0,x)×[0,y), so the mass of any axis-aligned rectangle is four corner
// lookups — O(1) instead of the O(di·dj) scan of Matrix.MaskSum — and the
// mass of a product of span sets costs O(|spansX|·|spansY|) lookups. The
// table is immutable after construction and safe for concurrent readers,
// which is what lets the serving engine answer range predicates lock-free.
//
// Rectangle sums are computed by differencing, so they can differ from a
// direct left-to-right scan of the same entries in the last few ULPs
// (floating-point addition is not associative). The divergence is bounded by
// the usual O(dx·dy·machine-epsilon) prefix-sum error — orders of magnitude
// below the estimation noise of any LDP round.
type SummedArea struct {
	dx, dy int
	// p has (dx+1)·(dy+1) entries; p[x*(dy+1)+y] = Σ vals over [0,x)×[0,y).
	p []float64
}

// NewSummedArea builds the table over a row-major dx×dy value slice.
func NewSummedArea(dx, dy int, vals []float64) (*SummedArea, error) {
	if dx < 1 || dy < 1 {
		return nil, fmt.Errorf("estimate: summed-area dims %dx%d invalid", dx, dy)
	}
	if len(vals) != dx*dy {
		return nil, fmt.Errorf("estimate: summed-area needs %d values, got %d", dx*dy, len(vals))
	}
	w := dy + 1
	p := make([]float64, (dx+1)*w)
	for x := 0; x < dx; x++ {
		row := vals[x*dy : (x+1)*dy]
		above := p[x*w:]
		cur := p[(x+1)*w:]
		var rowSum float64
		for y := 0; y < dy; y++ {
			rowSum += row[y]
			cur[y+1] = above[y+1] + rowSum
		}
	}
	return &SummedArea{dx: dx, dy: dy, p: p}, nil
}

// SummedArea returns the matrix's summed-area table.
func (m *Matrix) SummedArea() (*SummedArea, error) {
	return NewSummedArea(m.Dx, m.Dy, m.Vals)
}

// Dims returns the underlying matrix dimensions.
func (s *SummedArea) Dims() (dx, dy int) { return s.dx, s.dy }

// Total returns the total mass of the matrix.
func (s *SummedArea) Total() float64 { return s.p[len(s.p)-1] }

// RectSum returns the mass of the rectangle [xLo,xHi)×[yLo,yHi) in four
// corner lookups. Bounds must satisfy 0 ≤ xLo ≤ xHi ≤ dx (and likewise for
// y); an empty rectangle yields 0.
func (s *SummedArea) RectSum(xLo, xHi, yLo, yHi int) float64 {
	if xLo >= xHi || yLo >= yHi {
		return 0
	}
	w := s.dy + 1
	return s.p[xHi*w+yHi] - s.p[xLo*w+yHi] - s.p[xHi*w+yLo] + s.p[xLo*w+yLo]
}

// SpanSum returns the mass of the product selection (∪spansX) × (∪spansY):
// one RectSum per span pair.
func (s *SummedArea) SpanSum(spansX, spansY []Span) float64 {
	var total float64
	for _, sx := range spansX {
		for _, sy := range spansY {
			total += s.RectSum(sx.Lo, sx.Hi, sy.Lo, sy.Hi)
		}
	}
	return total
}

// RowSum returns the mass of (∪spansX) × [0, dy) — the X-marginal of a span
// selection.
func (s *SummedArea) RowSum(spansX []Span) float64 {
	var total float64
	for _, sx := range spansX {
		total += s.RectSum(sx.Lo, sx.Hi, 0, s.dy)
	}
	return total
}

// ColSum returns the mass of [0, dx) × (∪spansY).
func (s *SummedArea) ColSum(spansY []Span) float64 {
	var total float64
	for _, sy := range spansY {
		total += s.RectSum(0, s.dx, sy.Lo, sy.Hi)
	}
	return total
}
