// Package domain models the attribute schema of a multidimensional dataset:
// named attributes that are either categorical (unordered, answered with IN
// predicates) or numerical (ordered, answered with BETWEEN predicates), each
// with a finite discrete domain [0, Size).
//
// Every other package in FELIP works with attribute values already encoded as
// small integers in [0, Size); package dataset performs the encoding.
package domain

import (
	"fmt"
	"strings"
)

// Kind distinguishes categorical from numerical attributes. Numerical
// attributes have an ordered domain and support range predicates; categorical
// attributes support set-membership predicates only.
type Kind uint8

const (
	// Categorical attributes have unordered domains (e.g. Education, Sex).
	Categorical Kind = iota
	// Numerical attributes have ordered domains (e.g. Age, Salary) that can
	// be binned into intervals.
	Numerical
)

// String returns "categorical" or "numerical".
func (k Kind) String() string {
	switch k {
	case Categorical:
		return "categorical"
	case Numerical:
		return "numerical"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Attribute describes one column of the dataset.
type Attribute struct {
	// Name identifies the attribute in queries and reports.
	Name string
	// Kind says whether the attribute is categorical or numerical.
	Kind Kind
	// Size is the domain size d: values are integers in [0, Size).
	Size int
}

// IsNumerical reports whether the attribute supports range predicates.
func (a Attribute) IsNumerical() bool { return a.Kind == Numerical }

// IsCategorical reports whether the attribute supports set predicates.
func (a Attribute) IsCategorical() bool { return a.Kind == Categorical }

// Validate checks that the attribute is usable.
func (a Attribute) Validate() error {
	if a.Name == "" {
		return fmt.Errorf("domain: attribute has empty name")
	}
	if a.Size < 1 {
		return fmt.Errorf("domain: attribute %q has domain size %d; need >= 1", a.Name, a.Size)
	}
	return nil
}

// Schema is an ordered list of attributes describing a dataset's columns.
type Schema struct {
	attrs  []Attribute
	byName map[string]int
}

// NewSchema builds a schema from the given attributes. Attribute names must
// be unique and every attribute must validate.
func NewSchema(attrs ...Attribute) (*Schema, error) {
	if len(attrs) == 0 {
		return nil, fmt.Errorf("domain: schema needs at least one attribute")
	}
	s := &Schema{
		attrs:  make([]Attribute, len(attrs)),
		byName: make(map[string]int, len(attrs)),
	}
	copy(s.attrs, attrs)
	for i, a := range s.attrs {
		if err := a.Validate(); err != nil {
			return nil, err
		}
		if _, dup := s.byName[a.Name]; dup {
			return nil, fmt.Errorf("domain: duplicate attribute name %q", a.Name)
		}
		s.byName[a.Name] = i
	}
	return s, nil
}

// MustSchema is like NewSchema but panics on error. Intended for tests,
// examples and literal schema declarations.
func MustSchema(attrs ...Attribute) *Schema {
	s, err := NewSchema(attrs...)
	if err != nil {
		panic(err)
	}
	return s
}

// Len returns the number of attributes k.
func (s *Schema) Len() int { return len(s.attrs) }

// Attr returns the i-th attribute.
func (s *Schema) Attr(i int) Attribute { return s.attrs[i] }

// Attrs returns a copy of the attribute list.
func (s *Schema) Attrs() []Attribute {
	out := make([]Attribute, len(s.attrs))
	copy(out, s.attrs)
	return out
}

// Index returns the position of the named attribute and whether it exists.
func (s *Schema) Index(name string) (int, bool) {
	i, ok := s.byName[name]
	return i, ok
}

// NumericalIndexes returns the indexes of all numerical attributes, in order.
func (s *Schema) NumericalIndexes() []int {
	var out []int
	for i, a := range s.attrs {
		if a.IsNumerical() {
			out = append(out, i)
		}
	}
	return out
}

// CategoricalIndexes returns the indexes of all categorical attributes.
func (s *Schema) CategoricalIndexes() []int {
	var out []int
	for i, a := range s.attrs {
		if a.IsCategorical() {
			out = append(out, i)
		}
	}
	return out
}

// NumNumerical returns k_n, the number of numerical attributes.
func (s *Schema) NumNumerical() int { return len(s.NumericalIndexes()) }

// Pairs returns all C(k,2) attribute index pairs (i, j) with i < j.
func (s *Schema) Pairs() [][2]int {
	k := len(s.attrs)
	out := make([][2]int, 0, k*(k-1)/2)
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			out = append(out, [2]int{i, j})
		}
	}
	return out
}

// String renders a compact description such as
// "Schema(age:num[64], sex:cat[2])".
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteString("Schema(")
	for i, a := range s.attrs {
		if i > 0 {
			b.WriteString(", ")
		}
		kind := "cat"
		if a.IsNumerical() {
			kind = "num"
		}
		fmt.Fprintf(&b, "%s:%s[%d]", a.Name, kind, a.Size)
	}
	b.WriteString(")")
	return b.String()
}
