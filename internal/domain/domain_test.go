package domain

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	if Categorical.String() != "categorical" || Numerical.String() != "numerical" {
		t.Error("kind strings wrong")
	}
	if !strings.Contains(Kind(9).String(), "9") {
		t.Error("unknown kind string should include the raw value")
	}
}

func TestAttributeValidate(t *testing.T) {
	if err := (Attribute{Name: "a", Kind: Numerical, Size: 10}).Validate(); err != nil {
		t.Errorf("valid attribute rejected: %v", err)
	}
	if err := (Attribute{Name: "", Size: 10}).Validate(); err == nil {
		t.Error("empty name accepted")
	}
	if err := (Attribute{Name: "a", Size: 0}).Validate(); err == nil {
		t.Error("zero domain accepted")
	}
}

func TestNewSchema(t *testing.T) {
	s, err := NewSchema(
		Attribute{Name: "age", Kind: Numerical, Size: 64},
		Attribute{Name: "sex", Kind: Categorical, Size: 2},
		Attribute{Name: "income", Kind: Numerical, Size: 128},
	)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	if i, ok := s.Index("sex"); !ok || i != 1 {
		t.Errorf("Index(sex) = %d,%v", i, ok)
	}
	if _, ok := s.Index("nope"); ok {
		t.Error("Index found missing attribute")
	}
	if got := s.NumericalIndexes(); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("NumericalIndexes = %v", got)
	}
	if got := s.CategoricalIndexes(); len(got) != 1 || got[0] != 1 {
		t.Errorf("CategoricalIndexes = %v", got)
	}
	if s.NumNumerical() != 2 {
		t.Errorf("NumNumerical = %d", s.NumNumerical())
	}
	if a := s.Attr(1); a.Name != "sex" || !a.IsCategorical() || a.IsNumerical() {
		t.Errorf("Attr(1) = %+v", a)
	}
}

func TestSchemaErrors(t *testing.T) {
	if _, err := NewSchema(); err == nil {
		t.Error("empty schema accepted")
	}
	if _, err := NewSchema(
		Attribute{Name: "a", Size: 2},
		Attribute{Name: "a", Size: 3},
	); err == nil {
		t.Error("duplicate names accepted")
	}
	if _, err := NewSchema(Attribute{Name: "a", Size: -1}); err == nil {
		t.Error("invalid attribute accepted")
	}
}

func TestMustSchemaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustSchema did not panic on invalid input")
		}
	}()
	MustSchema()
}

func TestPairs(t *testing.T) {
	s := MustSchema(
		Attribute{Name: "a", Size: 2},
		Attribute{Name: "b", Size: 2},
		Attribute{Name: "c", Size: 2},
		Attribute{Name: "d", Size: 2},
	)
	pairs := s.Pairs()
	if len(pairs) != 6 {
		t.Fatalf("got %d pairs, want C(4,2)=6", len(pairs))
	}
	seen := map[[2]int]bool{}
	for _, p := range pairs {
		if p[0] >= p[1] {
			t.Errorf("pair %v not ordered", p)
		}
		if seen[p] {
			t.Errorf("duplicate pair %v", p)
		}
		seen[p] = true
	}
}

func TestPairsCountProperty(t *testing.T) {
	if err := quick.Check(func(k8 uint8) bool {
		k := int(k8%12) + 1
		attrs := make([]Attribute, k)
		for i := range attrs {
			attrs[i] = Attribute{Name: string(rune('a' + i)), Size: 2}
		}
		s := MustSchema(attrs...)
		return len(s.Pairs()) == k*(k-1)/2
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAttrsReturnsCopy(t *testing.T) {
	s := MustSchema(Attribute{Name: "a", Size: 2})
	attrs := s.Attrs()
	attrs[0].Name = "mutated"
	if s.Attr(0).Name != "a" {
		t.Error("Attrs exposed internal slice")
	}
}

func TestSchemaString(t *testing.T) {
	s := MustSchema(
		Attribute{Name: "age", Kind: Numerical, Size: 64},
		Attribute{Name: "sex", Kind: Categorical, Size: 2},
	)
	got := s.String()
	for _, want := range []string{"age:num[64]", "sex:cat[2]"} {
		if !strings.Contains(got, want) {
			t.Errorf("String() = %q missing %q", got, want)
		}
	}
}
