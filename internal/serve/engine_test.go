package serve

import (
	"math"
	"sync"
	"testing"
	"time"

	"felip/internal/core"
	"felip/internal/dataset"
	"felip/internal/domain"
	"felip/internal/metrics"
	"felip/internal/query"
)

func testSchema() *domain.Schema {
	return dataset.MixedSchema(2, 32, 2, 4)
}

func collectFor(t *testing.T, strat core.Strategy, n int, seed uint64) *core.Aggregator {
	t.Helper()
	ds := dataset.NewNormal().Generate(testSchema(), n, seed)
	agg, err := core.Collect(ds, core.Options{Strategy: strat, Epsilon: 2.0, Seed: seed + 1})
	if err != nil {
		t.Fatal(err)
	}
	return agg
}

func engineFor(t *testing.T, agg *core.Aggregator) *Engine {
	t.Helper()
	e, err := NewEngine(agg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// workload generates a mixed-λ batch of random valid queries.
func workload(t *testing.T, s *domain.Schema, count int, seed uint64) []query.Query {
	t.Helper()
	gen, err := query.NewGenerator(s, 0.5, seed)
	if err != nil {
		t.Fatal(err)
	}
	var qs []query.Query
	for len(qs) < count {
		for _, lambda := range []int{1, 2, 3, 4} {
			q, err := gen.Generate(lambda)
			if err != nil {
				t.Fatal(err)
			}
			qs = append(qs, q)
		}
	}
	return qs[:count]
}

// The engine must reproduce the legacy Aggregator read path. λ ≤ 2 answers
// are compared at floating-point noise level (the summed-area tables add the
// same masses in a different order, so the last ULPs may differ); λ ≥ 3 goes
// through IPF whose iteration count may shift under such perturbations, so
// those agree to within the convergence threshold (1/n).
func TestEngineMatchesAggregator(t *testing.T) {
	for _, strat := range []core.Strategy{core.OUG, core.OHG} {
		agg := collectFor(t, strat, 20000, 101)
		eng := engineFor(t, agg)
		ipfTol := 10 / float64(agg.N())
		for i, q := range workload(t, agg.Schema(), 60, 202) {
			want, errW := agg.Answer(q)
			got, errG := eng.Answer(q)
			if (errW == nil) != (errG == nil) {
				t.Fatalf("%v query %d %v: aggregator err %v, engine err %v", strat, i, q, errW, errG)
			}
			if errW != nil {
				continue
			}
			tol := 1e-9
			if q.Lambda() >= 3 {
				tol = ipfTol
			}
			if math.Abs(got-want) > tol {
				t.Errorf("%v query %d %v (λ=%d): engine %v vs aggregator %v (Δ=%g)",
					strat, i, q, q.Lambda(), got, want, math.Abs(got-want))
			}
			ee1, err1 := agg.ExpectedError(q)
			ee2, err2 := eng.ExpectedError(q)
			if err1 != nil || err2 != nil || ee1 != ee2 {
				t.Errorf("%v query %d: ExpectedError mismatch: (%v,%v) vs (%v,%v)", strat, i, ee1, err1, ee2, err2)
			}
		}
	}
}

// Restored snapshots must serve identically to the live aggregator they came
// from: the engine reads only post-processed state that snapshots preserve.
func TestEngineFromRestoredSnapshot(t *testing.T) {
	agg := collectFor(t, core.OHG, 10000, 303)
	restored, err := core.Restore(agg.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	eng := engineFor(t, restored)
	if err := eng.Warmup(); err != nil {
		t.Fatal(err)
	}
	for _, q := range workload(t, agg.Schema(), 12, 404) {
		want, errW := agg.Answer(q)
		got, errG := eng.Answer(q)
		if (errW == nil) != (errG == nil) {
			t.Fatalf("query %v: err mismatch %v vs %v", q, errW, errG)
		}
		if errW == nil && math.Abs(got-want) > 10/float64(agg.N()) {
			t.Errorf("query %v: restored engine %v vs live aggregator %v", q, got, want)
		}
	}
}

// Regression test for the serialized read path this refactor removes: with
// the legacy single-mutex cache, a query that triggered one pair's matrix fit
// blocked every query on every other pair until the fit finished. The engine
// must let other pairs make progress while one pair's fit is held open.
func TestEngineConcurrentPairsProgress(t *testing.T) {
	agg := collectFor(t, core.OHG, 8000, 505)
	eng := engineFor(t, agg)

	held := [2]int{0, 1}
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	testHookMatrixFit = func(pair [2]int) {
		if pair == held {
			once.Do(func() { close(entered) })
			<-release
		}
	}
	defer func() { testHookMatrixFit = nil }()

	// Query A needs pair (0,1): its build parks in the hook.
	qA := query.Query{Preds: []query.Predicate{query.NewRange(0, 4, 19), query.NewRange(1, 8, 23)}}
	aDone := make(chan error, 1)
	go func() {
		_, err := eng.Answer(qA)
		aDone <- err
	}()
	<-entered

	// Query B needs pair (0,2) — also a lazy matrix pair, never built yet. It
	// must complete while A's fit is still held open.
	qB := query.Query{Preds: []query.Predicate{query.NewRange(0, 4, 19), query.NewIn(2, 0)}}
	bDone := make(chan error, 1)
	go func() {
		_, err := eng.Answer(qB)
		bDone <- err
	}()
	select {
	case err := <-bDone:
		if err != nil {
			t.Fatalf("query B failed: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("query on pair (0,2) blocked behind pair (0,1)'s matrix fit")
	}
	select {
	case err := <-aDone:
		t.Fatalf("query A finished while its fit was held (err=%v)", err)
	default:
	}

	close(release)
	if err := <-aDone; err != nil {
		t.Fatalf("query A failed after release: %v", err)
	}
}

// A pair's matrix is fitted exactly once: concurrent first queries on the
// same pair share one singleflight build, later queries are cache hits.
func TestEngineMatrixSingleflight(t *testing.T) {
	agg := collectFor(t, core.OHG, 8000, 606)
	eng := engineFor(t, agg)

	var mu sync.Mutex
	fits := map[[2]int]int{}
	testHookMatrixFit = func(pair [2]int) {
		mu.Lock()
		fits[pair]++
		mu.Unlock()
	}
	defer func() { testHookMatrixFit = nil }()

	q := query.Query{Preds: []query.Predicate{query.NewRange(0, 4, 19), query.NewRange(1, 8, 23)}}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := eng.Answer(q); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if got := fits[[2]int{0, 1}]; got != 1 {
		t.Errorf("pair (0,1) fitted %d times, want 1", got)
	}
	// Warmup after the fact must not refit pair (0,1), and must build the rest.
	if err := eng.Warmup(); err != nil {
		t.Fatal(err)
	}
	if got := fits[[2]int{0, 1}]; got != 1 {
		t.Errorf("Warmup refitted pair (0,1): %d fits", got)
	}
	mu.Lock()
	totalFits := 0
	for _, n := range fits {
		totalFits += n
	}
	mu.Unlock()
	// OHG on 2 numerical + 2 categorical attrs: 5 pairs touch a numerical
	// attribute and need matrices; (2,3) is static.
	if totalFits != 5 {
		t.Errorf("total fits = %d, want 5 (all lazy pairs exactly once)", totalFits)
	}
}

// Warmup records misses, subsequent queries record hits.
func TestEngineCacheCounters(t *testing.T) {
	agg := collectFor(t, core.OHG, 6000, 707)
	eng := engineFor(t, agg)
	hits0 := metrics.GetCounter("serve.matrix_cache.hit").Value()
	misses0 := metrics.GetCounter("serve.matrix_cache.miss").Value()
	if err := eng.Warmup(); err != nil {
		t.Fatal(err)
	}
	if d := metrics.GetCounter("serve.matrix_cache.miss").Value() - misses0; d != 5 {
		t.Errorf("Warmup misses = %d, want 5", d)
	}
	q := query.Query{Preds: []query.Predicate{query.NewRange(0, 4, 19), query.NewRange(1, 8, 23)}}
	if _, err := eng.Answer(q); err != nil {
		t.Fatal(err)
	}
	if d := metrics.GetCounter("serve.matrix_cache.hit").Value() - hits0; d < 1 {
		t.Errorf("post-warmup query recorded no cache hit")
	}
}

func TestEngineAnswerBatch(t *testing.T) {
	agg := collectFor(t, core.OHG, 10000, 808)
	eng := engineFor(t, agg)
	qs := workload(t, agg.Schema(), 16, 909)
	// Plant an invalid query mid-batch: its slot fails, everything else works.
	bad := query.Query{Preds: []query.Predicate{query.NewRange(2, 0, 1)}} // BETWEEN on categorical
	qs[7] = bad
	results := eng.AnswerBatch(qs)
	if len(results) != len(qs) {
		t.Fatalf("got %d results for %d queries", len(results), len(qs))
	}
	for i, r := range results {
		if i == 7 {
			if r.Err == nil {
				t.Error("invalid query in batch did not error")
			}
			continue
		}
		if r.Err != nil {
			t.Errorf("query %d failed: %v", i, r.Err)
			continue
		}
		want, err := eng.Answer(qs[i])
		if err != nil || r.Estimate != want {
			t.Errorf("query %d: batch %v vs direct %v (err %v)", i, r.Estimate, want, err)
		}
	}
}

func TestEngineValidation(t *testing.T) {
	agg := collectFor(t, core.OUG, 4000, 111)
	eng := engineFor(t, agg)
	if _, err := eng.Answer(query.Query{}); err == nil {
		t.Error("empty query accepted")
	}
	if _, err := eng.Answer(query.Query{Preds: []query.Predicate{query.NewRange(9, 0, 1)}}); err == nil {
		t.Error("out-of-schema attribute accepted")
	}
	if _, err := NewEngine(nil); err == nil {
		t.Error("NewEngine(nil) accepted")
	}
}

// Race-detector workout: mixed single queries, batches, and a late Warmup all
// running against a freshly built engine at once.
func TestEngineConcurrentMixedUse(t *testing.T) {
	agg := collectFor(t, core.OHG, 8000, 222)
	eng := engineFor(t, agg)
	qs := workload(t, agg.Schema(), 24, 333)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := eng.Warmup(); err != nil {
			t.Error(err)
		}
	}()
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < len(qs); i++ {
				q := qs[(i+w)%len(qs)]
				if _, err := eng.Answer(q); err != nil {
					t.Errorf("worker %d query %v: %v", w, q, err)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, r := range eng.AnswerBatch(qs) {
			if r.Err != nil {
				t.Error(r.Err)
			}
		}
	}()
	wg.Wait()
}
