// Package serve is FELIP's query-serving plane: an immutable, concurrency-
// first engine built once from a finalized collection round (a
// *core.Aggregator) and then hammered by query traffic.
//
// The split mirrors the paper's own structure — collection and estimation
// (§5.1–§5.4) happen once per round, while query answering over response
// matrices and IPF (§5.5–§5.6) is pure post-processing of the round's
// DP-protected output — and the architecture consistency-style LDP systems
// converge on: finalize into a read-only snapshot, then serve it lock-free.
//
// What the engine owns that the legacy Aggregator read path did not:
//
//   - an attr → covering-grid index and per-value marginals with prefix sums,
//     so 1-D queries are O(#spans) lookups instead of per-value mask scans;
//   - summed-area (2-D prefix-sum) tables over every pair's per-value
//     frequency surface, so each sign-combination answer of an associated
//     2-D query is O(1) corner lookups instead of an O(di·dj) scan;
//   - per-pair singleflight for response-matrix construction: a cache miss
//     fits one pair's matrix (Algorithm 3) while hits — and misses on other
//     pairs — proceed concurrently, where the Aggregator held one global
//     mutex across the full build and fit;
//   - a parallel Warmup that precomputes every response matrix up front, and
//     a batch answer API that fans a query workload across GOMAXPROCS.
//
// Engines are immutable once built: round k's engine keeps serving while
// round k+1 collects, and the HTTP layer swaps the new round's engine in
// atomically (see internal/httpapi).
package serve

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"felip/internal/core"
	"felip/internal/domain"
	"felip/internal/estimate"
	"felip/internal/grid"
	"felip/internal/metrics"
	"felip/internal/query"
)

// Instruments (surfaced through /v1/status via metrics.Snapshot).
var (
	queryTimer  = metrics.GetTimer("serve.query")
	cacheHits   = metrics.GetCounter("serve.matrix_cache.hit")
	cacheMisses = metrics.GetCounter("serve.matrix_cache.miss")
)

// testHookMatrixFit, when non-nil, runs during a cache-miss matrix build for
// the given pair — after the build slot is claimed (so concurrent queries on
// other pairs proceed) and before the iterative fit. Tests use it to hold one
// pair's build open deterministically while probing that other pairs make
// progress.
var testHookMatrixFit func(pair [2]int)

// marginal1D answers arbitrary span selections over one attribute's
// per-value marginal in O(#spans) via prefix sums.
type marginal1D struct {
	// prefix[v] = Σ marginal[0:v]; length d+1.
	prefix []float64
}

func newMarginal1D(vals []float64) *marginal1D {
	prefix := make([]float64, len(vals)+1)
	for v, x := range vals {
		prefix[v+1] = prefix[v] + x
	}
	return &marginal1D{prefix: prefix}
}

func (m *marginal1D) spanSum(spans []estimate.Span) float64 {
	var total float64
	for _, s := range spans {
		total += m.prefix[s.Hi] - m.prefix[s.Lo]
	}
	return total
}

// pairPlan is the static per-pair answering plan fixed at engine build.
type pairPlan struct {
	// lazy marks OHG pairs with at least one related 1-D grid: their
	// per-value surface is the response matrix (Algorithm 3), fitted on first
	// use (or Warmup) under per-pair singleflight.
	lazy bool
	// sat is the summed-area table over the pair's per-value frequency
	// surface; for non-lazy pairs it is the uniform expansion of the 2-D
	// grid, built eagerly here.
	sat *estimate.SummedArea
}

// matrixSlot is one pair's singleflight build: the first query to miss claims
// the slot and fits the matrix outside any shared lock; everyone else waits
// on ready.
type matrixSlot struct {
	ready chan struct{}
	sat   *estimate.SummedArea
	err   error
}

// Engine is the immutable query-serving side of one finalized FELIP round.
// All methods are safe for arbitrary concurrent use; none of them block on a
// shared lock beyond the per-pair singleflight of the first matrix fit.
type Engine struct {
	agg           *core.Aggregator
	schema        *domain.Schema
	n             int
	strategy      core.Strategy
	threshold     float64
	matrixMaxIter int
	lambdaMaxIter int

	// marginals holds each answerable attribute's prefix-summed per-value
	// marginal: its own 1-D grid when one was collected, otherwise the
	// marginal of its covering 2-D grid (same deterministic choice as the
	// aggregator's spec-order scan).
	marginals map[int]*marginal1D
	pairs     map[[2]int]*pairPlan

	mu       sync.Mutex
	matrices map[[2]int]*matrixSlot
}

// NewEngine builds the serving engine for a finalized round. The aggregator
// must not be mutated afterwards (finalized rounds never are). Static
// per-pair tables are built eagerly; response matrices are fitted lazily on
// first use — call Warmup to prepay all of them in parallel.
func NewEngine(agg *core.Aggregator) (*Engine, error) {
	if agg == nil {
		return nil, fmt.Errorf("serve: nil aggregator")
	}
	e := &Engine{
		agg:           agg,
		schema:        agg.Schema(),
		n:             agg.N(),
		strategy:      agg.Strategy(),
		threshold:     agg.IPFThreshold(),
		matrixMaxIter: agg.MatrixMaxIter(),
		lambdaMaxIter: agg.LambdaMaxIter(),
		marginals:     make(map[int]*marginal1D),
		pairs:         make(map[[2]int]*pairPlan),
		matrices:      make(map[[2]int]*matrixSlot),
	}
	for _, sp := range agg.Specs() {
		if sp.Is1D() {
			continue
		}
		key := [2]int{sp.AttrX, sp.AttrY}
		if _, ok := e.pairs[key]; ok {
			continue
		}
		plan := &pairPlan{}
		if e.strategy == core.OHG && agg.NeedsMatrix(sp.AttrX, sp.AttrY) {
			plan.lazy = true
		} else {
			g2, ok := agg.Grid2D(sp.AttrX, sp.AttrY)
			if !ok {
				return nil, fmt.Errorf("serve: spec names pair (%d,%d) but no grid exists", sp.AttrX, sp.AttrY)
			}
			sat, err := expandedSAT(g2)
			if err != nil {
				return nil, err
			}
			plan.sat = sat
		}
		e.pairs[key] = plan
	}
	for attr := 0; attr < e.schema.Len(); attr++ {
		if g1, ok := agg.Grid1D(attr); ok {
			e.marginals[attr] = newMarginal1D(g1.ValueMarginal())
			continue
		}
		if key, ok := agg.CoveringGrid2D(attr); ok {
			g2, _ := agg.Grid2D(key[0], key[1])
			vals, err := g2.ValueMarginal(attr)
			if err != nil {
				return nil, err
			}
			e.marginals[attr] = newMarginal1D(vals)
		}
	}
	return e, nil
}

// FromSnapshot rebuilds a serving engine from a persisted round snapshot.
// Because core.Snapshot captures the post-processed grids as exact float64
// values (Go's JSON encoding round-trips float64 losslessly), the restored
// engine answers bit-identically to the engine the round was serving when
// the snapshot was taken.
func FromSnapshot(s core.Snapshot) (*Engine, error) {
	agg, err := core.Restore(s)
	if err != nil {
		return nil, err
	}
	return NewEngine(agg)
}

// expandedSAT builds the summed-area table of a 2-D grid's uniform per-value
// expansion: value (v, w) carries freq(cell)/(wx·wy), so a span sum over the
// table equals Grid2D.Mass of the corresponding selection.
func expandedSAT(g *grid.Grid2D) (*estimate.SummedArea, error) {
	di, dj := g.X.Domain(), g.Y.Domain()
	vals := make([]float64, di*dj)
	lx, ly := g.X.Cells(), g.Y.Cells()
	for cx := 0; cx < lx; cx++ {
		xLo, xHi := g.X.CellRange(cx)
		for cy := 0; cy < ly; cy++ {
			yLo, yHi := g.Y.CellRange(cy)
			share := g.At(cx, cy) / float64((xHi-xLo)*(yHi-yLo))
			for v := xLo; v < xHi; v++ {
				row := vals[v*dj : (v+1)*dj]
				for w := yLo; w < yHi; w++ {
					row[w] = share
				}
			}
		}
	}
	return estimate.NewSummedArea(di, dj, vals)
}

// Schema returns the schema the engine serves.
func (e *Engine) Schema() *domain.Schema { return e.schema }

// N returns the population size of the served round.
func (e *Engine) N() int { return e.n }

// Aggregator returns the finalized round the engine was built from.
func (e *Engine) Aggregator() *core.Aggregator { return e.agg }

// Warmup fits every not-yet-built response matrix in parallel (via the same
// fan-out grid estimation uses), so the first query burst after a round swap
// never pays an Algorithm-3 fit inline. Idempotent and safe to run
// concurrently with queries; returns the first build error in pair order.
func (e *Engine) Warmup() error {
	var keys [][2]int
	for key, plan := range e.pairs {
		if plan.lazy {
			keys = append(keys, key)
		}
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a][0] != keys[b][0] {
			return keys[a][0] < keys[b][0]
		}
		return keys[a][1] < keys[b][1]
	})
	return core.FanOut(len(keys), func(i int) error {
		_, err := e.pairSAT(keys[i][0], keys[i][1])
		return err
	})
}

// Answer estimates the fractional answer f_q of a multidimensional query
// (§5.6) from the engine's prefix-summed surfaces: 1-D queries read the best
// marginal, λ ≥ 2 queries recombine all C(λ,2) associated 2-D answers with
// Algorithm 4. Answers agree with Aggregator.Answer up to floating-point
// summation order (the summed-area tables add the same masses by
// differencing rather than by scanning).
func (e *Engine) Answer(q query.Query) (float64, error) {
	start := time.Now()
	defer func() { queryTimer.Observe(time.Since(start)) }()
	if err := q.Validate(e.schema); err != nil {
		return 0, err
	}
	lambda := q.Lambda()
	if lambda == 1 {
		return e.answer1D(q.Preds[0])
	}

	attrs := q.Attrs()
	spans := make(map[int][]estimate.Span, lambda)
	compl := make(map[int][]estimate.Span, lambda)
	for _, p := range q.Preds {
		d := e.schema.Attr(p.Attr).Size
		s := p.Spans(d)
		spans[p.Attr] = s
		compl[p.Attr] = estimate.ComplementSpans(s, d)
	}

	pairs := make([]estimate.PairAnswer, 0, lambda*(lambda-1)/2)
	for ii := 0; ii < lambda; ii++ {
		for jj := ii + 1; jj < lambda; jj++ {
			ai, aj := attrs[ii], attrs[jj]
			pa, err := e.pairAnswer(ai, aj, spans[ai], spans[aj], compl[ai], compl[aj])
			if err != nil {
				return 0, err
			}
			pa.I, pa.J = ii, jj
			pairs = append(pairs, pa)
		}
	}
	return estimate.EstimateLambda(lambda, pairs, e.threshold, e.lambdaMaxIter)
}

// Result carries one batch entry's outcome.
type Result struct {
	Estimate float64
	Err      error
}

// AnswerBatch answers a workload concurrently across GOMAXPROCS workers and
// returns one Result per query, in input order. Individual query failures
// land in their Result; the batch itself never fails.
func (e *Engine) AnswerBatch(qs []query.Query) []Result {
	out := make([]Result, len(qs))
	core.FanOut(len(qs), func(i int) error {
		out[i].Estimate, out[i].Err = e.Answer(qs[i])
		return nil
	})
	return out
}

// ExpectedError returns the analytic a-priori error estimate of the query
// (identical to Aggregator.ExpectedError, which is already index-backed and
// lock-free).
func (e *Engine) ExpectedError(q query.Query) (float64, error) {
	return e.agg.ExpectedError(q)
}

// answer1D reads the attribute's prefix-summed marginal: O(#spans) corner
// lookups.
func (e *Engine) answer1D(p query.Predicate) (float64, error) {
	m, ok := e.marginals[p.Attr]
	if !ok {
		return 0, fmt.Errorf("serve: no grid covers attribute %d", p.Attr)
	}
	return m.spanSum(p.Spans(e.schema.Attr(p.Attr).Size)), nil
}

// pairAnswer computes the four sign-combination answers of the associated
// 2-D query on attributes (i < j) as span sums over the pair's summed-area
// table.
func (e *Engine) pairAnswer(i, j int, selI, selJ, notI, notJ []estimate.Span) (estimate.PairAnswer, error) {
	sat, err := e.pairSAT(i, j)
	if err != nil {
		return estimate.PairAnswer{}, err
	}
	return estimate.PairAnswer{
		PP: sat.SpanSum(selI, selJ),
		PN: sat.SpanSum(selI, notJ),
		NP: sat.SpanSum(notI, selJ),
		NN: sat.SpanSum(notI, notJ),
	}, nil
}

// pairSAT returns the pair's summed-area table, fitting the response matrix
// under per-pair singleflight on first use. The engine lock guards only the
// slot map — never the O(di·dj·iter) fit — so a miss on pair (a,b) cannot
// stall hits or misses on any other pair.
func (e *Engine) pairSAT(i, j int) (*estimate.SummedArea, error) {
	key := [2]int{i, j}
	plan, ok := e.pairs[key]
	if !ok {
		return nil, fmt.Errorf("serve: no 2-D grid for pair (%d,%d)", i, j)
	}
	if !plan.lazy {
		return plan.sat, nil
	}
	e.mu.Lock()
	if slot, ok := e.matrices[key]; ok {
		e.mu.Unlock()
		cacheHits.Inc()
		<-slot.ready
		return slot.sat, slot.err
	}
	slot := &matrixSlot{ready: make(chan struct{})}
	e.matrices[key] = slot
	e.mu.Unlock()
	cacheMisses.Inc()

	if hook := testHookMatrixFit; hook != nil {
		hook(key)
	}
	slot.sat, slot.err = e.buildMatrixSAT(i, j)
	close(slot.ready)
	return slot.sat, slot.err
}

// buildMatrixSAT fits pair (i, j)'s response matrix (Algorithm 3) with
// exactly the aggregator's constraints and parameters — the matrix entries
// are bit-identical to the legacy path's cache — then folds it into a
// summed-area table.
func (e *Engine) buildMatrixSAT(i, j int) (*estimate.SummedArea, error) {
	m, err := estimate.NewMatrix(e.schema.Attr(i).Size, e.schema.Attr(j).Size)
	if err != nil {
		return nil, err
	}
	cons, err := e.agg.PairConstraints(i, j)
	if err != nil {
		return nil, err
	}
	m.Fit(cons, e.threshold, e.matrixMaxIter)
	return m.SummedArea()
}
