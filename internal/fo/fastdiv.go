package fo

import "math/bits"

// fastMod computes x % d for a fixed small divisor d without the hardware
// divide instruction. The OLH support-count kernel evaluates one modulo per
// (report, domain value) pair — O(n·L) of them per grid — and on most cores a
// 64-bit DIV costs several times a multiply, so replacing it roughly doubles
// the kernel's single-thread throughput.
//
// The reduction is Lemire's multiply-based remainder ("Faster remainders when
// the divisor is a constant", 2019) lifted to 64-bit numerators: precompute
// M = ⌈2^128 / d⌉ as a 128-bit fixed-point reciprocal; then
//
//	x mod d = ⌊ ((M·x) mod 2^128) · d / 2^128 ⌋
//
// which is exact whenever the fraction width (128) is at least the numerator
// width (64) plus the divisor width (8 here: d ≤ 255). Powers of two take the
// mask shortcut. Exactness over the full uint64 range is what keeps the
// parallel kernel bit-identical to the pre-existing `% g` path; it is pinned
// by an exhaustive-over-d property test.
type fastMod struct {
	d      uint64
	m1, m0 uint64 // M = ⌈2^128/d⌉, big-endian word pair
	mask   uint64 // d−1 when d is a power of two
	pow2   bool
}

// newFastMod prepares the reduction for divisor d ≥ 1.
func newFastMod(d uint64) fastMod {
	if d == 0 {
		panic("fo: fastMod divisor must be positive")
	}
	if d&(d-1) == 0 {
		return fastMod{d: d, mask: d - 1, pow2: true}
	}
	// M = ⌊(2^128−1)/d⌋ + 1 via 128/64 long division. d does not divide
	// 2^128 (it is not a power of two), so this is exactly ⌈2^128/d⌉.
	q1, r := bits.Div64(0, ^uint64(0), d)
	q0, _ := bits.Div64(r, ^uint64(0), d)
	m0, carry := bits.Add64(q0, 1, 0)
	return fastMod{d: d, m1: q1 + carry, m0: m0}
}

// mod returns x % f.d.
func (f fastMod) mod(x uint64) uint64 {
	if f.pow2 {
		return x & f.mask
	}
	// lowbits = (M·x) mod 2^128.
	hi, lo := bits.Mul64(f.m0, x)
	hi += f.m1 * x // wraparound multiply: only the low 128 bits matter
	// ⌊lowbits·d / 2^128⌋ with d ≤ 2^8: the top word of the 192-bit product.
	aHi, aLo := bits.Mul64(hi, f.d)
	bHi, _ := bits.Mul64(lo, f.d)
	_, carry := bits.Add64(aLo, bHi, 0)
	return aHi + carry
}
