package fo

import (
	"fmt"
	"math"

	"felip/internal/metrics"
)

// oueRejectedTotal counts mismatched OUE reports process-wide (per-round
// counts live on each aggregator's Rejected).
var oueRejectedTotal = metrics.GetCounter("fo.oue.rejected")

// OUEReport is one user's Optimized Unary Encoding report: a perturbed
// one-hot encoding of the private value, packed as a bitset.
type OUEReport struct {
	bits []uint64
	l    int
}

// Bit reports whether position v is set.
func (r OUEReport) Bit(v int) bool {
	return r.bits[v>>6]&(1<<(uint(v)&63)) != 0
}

// OUEClient is the user-side algorithm of Optimized Unary Encoding
// (Wang et al., USENIX Sec'17). The value is one-hot encoded; the 1-bit is
// kept with probability p = 1/2 and every 0-bit is flipped to 1 with
// probability q = 1/(e^ε+1). OUE matches OLH's variance with a cheaper
// aggregator but an O(L)-bit report; FELIP's ablation benchmarks use it to
// show the AFO framework extends beyond the paper's two protocols.
type OUEClient struct {
	eps float64
	l   int
	q   float64
}

// NewOUEClient returns an OUE perturbation client for domain size L.
func NewOUEClient(eps float64, L int) (*OUEClient, error) {
	if err := validate(eps, L); err != nil {
		return nil, err
	}
	return &OUEClient{eps: eps, l: L, q: 1 / (math.Exp(eps) + 1)}, nil
}

// Epsilon returns the privacy budget.
func (c *OUEClient) Epsilon() float64 { return c.eps }

// L returns the domain size.
func (c *OUEClient) L() int { return c.l }

// Perturb applies OUE perturbation to the private value v.
func (c *OUEClient) Perturb(v int, r *Rand) (OUEReport, error) {
	if v < 0 || v >= c.l {
		return OUEReport{}, fmt.Errorf("fo: OUE value %d outside domain [0,%d)", v, c.l)
	}
	words := (c.l + 63) / 64
	rep := OUEReport{bits: make([]uint64, words), l: c.l}
	for i := 0; i < c.l; i++ {
		var bit bool
		if i == v {
			bit = r.Float64() < 0.5 // p = 1/2
		} else {
			bit = r.Float64() < c.q
		}
		if bit {
			rep.bits[i>>6] |= 1 << (uint(i) & 63)
		}
	}
	return rep, nil
}

// OUEAggregator sums the reported bit vectors and converts per-position
// counts into unbiased frequency estimates. It is not safe for concurrent
// use; the collector serializes access.
type OUEAggregator struct {
	eps      float64
	l        int
	counts   []int64
	n        int
	rejected int
}

// NewOUEAggregator returns an empty aggregator for domain size L.
func NewOUEAggregator(eps float64, L int) *OUEAggregator {
	return &OUEAggregator{eps: eps, l: L, counts: make([]int64, L)}
}

// Add records one user report. A report whose bitset length does not match
// the domain cannot have been produced by this round's Ψ_OUE; it is counted
// as rejected rather than silently dropped.
func (a *OUEAggregator) Add(rep OUEReport) {
	if rep.l != a.l {
		a.rejected++
		oueRejectedTotal.Inc()
		return
	}
	for v := 0; v < a.l; v++ {
		if rep.Bit(v) {
			a.counts[v]++
		}
	}
	a.n++
}

// N returns the number of reports recorded so far.
func (a *OUEAggregator) N() int { return a.n }

// Rejected returns the number of mismatched reports Add refused.
func (a *OUEAggregator) Rejected() int { return a.rejected }

// Merge adds another aggregator's counts into this one, exactly. Both must
// share ε and L. The other aggregator is left unchanged.
func (a *OUEAggregator) Merge(other *OUEAggregator) error {
	if other == a {
		return fmt.Errorf("fo: cannot merge an OUE aggregator with itself")
	}
	if a.eps != other.eps || a.l != other.l {
		return fmt.Errorf("fo: merging incompatible OUE aggregators (eps %v/%v, L %d/%d)",
			a.eps, other.eps, a.l, other.l)
	}
	for v, c := range other.counts {
		a.counts[v] += c
	}
	a.n += other.n
	a.rejected += other.rejected
	return nil
}

// Estimates returns the unbiased frequency estimate for every domain value:
// (C(v)/n − q)/(p − q) with p = 1/2, q = 1/(e^ε+1).
func (a *OUEAggregator) Estimates() []float64 {
	out := make([]float64, a.l)
	if a.n == 0 {
		return out
	}
	q := 1 / (math.Exp(a.eps) + 1)
	p := 0.5
	n := float64(a.n)
	for v, c := range a.counts {
		out[v] = (float64(c)/n - q) / (p - q)
	}
	return out
}
