package fo

import "fmt"

// Longitudinal carries the two-stage memoized-reporting budgets (Ding et al.'s
// memoization; Arcolezi et al.'s LOLOHA splits the same way). A device first
// randomizes its true value once at EpsPerm and memoizes the result forever;
// every round it perturbs the *memoized* value with a fresh draw whose
// composed channel (memoization ∘ per-round perturbation) is exactly an
// Eps1-LDP randomized response. An observer of any single round learns Eps1;
// an observer of every round forever learns at most EpsPerm + Eps1, instead
// of the k·ε a fresh-ε reporter leaks over k rounds.
//
// The struct doubles as the wire/JSON encoding: a plan or report without the
// field (nil pointer) is the one-shot v1 path, bit-identical to today.
type Longitudinal struct {
	// EpsPerm is the permanent (memoized) stage's budget ε_perm.
	EpsPerm float64 `json:"eps_perm"`
	// Eps1 is the per-round stage's budget ε_1. The composed per-round
	// channel is exactly ε_1-LDP, so ε_1 plays the role the one-shot path's
	// ε plays: planning, aggregation and estimation all run at ε_1.
	Eps1 float64 `json:"eps1"`
}

// Validate checks the two-stage budgets. Eps1 must not exceed EpsPerm: the
// per-round stage's truthful probability p₂ = (p* − q₁)/(p₁ − q₁) leaves
// [1/L, 1] exactly when ε_1 > ε_perm, i.e. no valid perturbation exists that
// is both a proper channel and composes to ε_1.
func (l *Longitudinal) Validate() error {
	if l == nil {
		return nil
	}
	if l.EpsPerm <= 0 {
		return fmt.Errorf("fo: longitudinal eps_perm must be positive, got %v", l.EpsPerm)
	}
	if l.Eps1 <= 0 {
		return fmt.Errorf("fo: longitudinal eps1 must be positive, got %v", l.Eps1)
	}
	if l.Eps1 > l.EpsPerm {
		return fmt.Errorf("fo: longitudinal eps1 %v exceeds eps_perm %v (per-round stage would need p2 > 1)",
			l.Eps1, l.EpsPerm)
	}
	return nil
}

// Equal reports whether two optional longitudinal configs agree, treating
// nil as "one-shot" (equal only to nil).
func (l *Longitudinal) Equal(other *Longitudinal) bool {
	if l == nil || other == nil {
		return l == other
	}
	return l.EpsPerm == other.EpsPerm && l.Eps1 == other.Eps1
}
