package fo

import (
	"math"
	"testing"
	"testing/quick"
)

// makeSkewed builds a deterministic value multiset over [0,L) with known
// frequencies: value 0 gets half the mass, the rest is uniform.
func makeSkewed(L, n int) ([]int, []float64) {
	vals := make([]int, 0, n)
	freq := make([]float64, L)
	for i := 0; i < n; i++ {
		var v int
		if i%2 == 0 {
			v = 0
		} else {
			v = 1 + (i/2)%max(L-1, 1)
		}
		if L == 1 {
			v = 0
		}
		vals = append(vals, v)
		freq[v]++
	}
	for i := range freq {
		freq[i] /= float64(n)
	}
	return vals, freq
}

func maxAbsDiff(a, b []float64) float64 {
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestEstimateAccuracy(t *testing.T) {
	// With a large population and generous ε each oracle's estimates must be
	// close to the true frequencies.
	const n = 60000
	for _, tc := range []struct {
		proto Protocol
		L     int
		eps   float64
		tol   float64
	}{
		{GRR, 8, 2.0, 0.02},
		{GRR, 32, 2.0, 0.05},
		{OLH, 8, 1.0, 0.03},
		{OLH, 64, 1.0, 0.03},
		{OUE, 16, 1.0, 0.03},
	} {
		vals, want := makeSkewed(tc.L, n)
		got, err := Estimate(tc.proto, tc.eps, tc.L, vals, 4242)
		if err != nil {
			t.Fatalf("%v: %v", tc.proto, err)
		}
		if len(got) != tc.L {
			t.Fatalf("%v: got %d estimates, want %d", tc.proto, len(got), tc.L)
		}
		if d := maxAbsDiff(got, want); d > tc.tol {
			t.Errorf("%v L=%d eps=%v: max abs error %.4f > tol %.4f", tc.proto, tc.L, tc.eps, d, tc.tol)
		}
	}
}

func TestEstimateSumsToApproxOne(t *testing.T) {
	const n, L = 40000, 20
	vals, _ := makeSkewed(L, n)
	for _, p := range []Protocol{GRR, OLH, OUE} {
		got, err := Estimate(p, 1.0, L, vals, 9)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, f := range got {
			sum += f
		}
		if math.Abs(sum-1) > 0.05 {
			t.Errorf("%v: estimates sum to %.4f, want ~1", p, sum)
		}
	}
}

func TestEstimateDeterministic(t *testing.T) {
	vals, _ := makeSkewed(16, 5000)
	for _, p := range []Protocol{GRR, OLH, OUE} {
		a, err := Estimate(p, 1.0, 16, vals, 77)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Estimate(p, 1.0, 16, vals, 77)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%v: same seed produced different estimates", p)
			}
		}
	}
}

func TestEstimateRejectsBadInput(t *testing.T) {
	if _, err := Estimate(GRR, 0, 4, []int{0}, 1); err == nil {
		t.Error("eps=0 accepted")
	}
	if _, err := Estimate(GRR, -1, 4, []int{0}, 1); err == nil {
		t.Error("negative eps accepted")
	}
	if _, err := Estimate(OLH, 1, 0, []int{0}, 1); err == nil {
		t.Error("L=0 accepted")
	}
	if _, err := Estimate(GRR, 1, 4, []int{4}, 1); err == nil {
		t.Error("out-of-domain value accepted by GRR")
	}
	if _, err := Estimate(OLH, 1, 4, []int{-1}, 1); err == nil {
		t.Error("out-of-domain value accepted by OLH")
	}
	if _, err := Estimate(OUE, 1, 4, []int{9}, 1); err == nil {
		t.Error("out-of-domain value accepted by OUE")
	}
	if _, err := Estimate(Protocol(99), 1, 4, []int{0}, 1); err == nil {
		t.Error("unknown protocol accepted")
	}
	if _, err := Estimate(GRR, math.NaN(), 4, []int{0}, 1); err == nil {
		t.Error("NaN eps accepted")
	}
}

// TestGRRSatisfiesLDP verifies the defining ε-LDP inequality empirically:
// for any pair of inputs and any output, Pr[Ψ(v)=x] ≤ e^ε·Pr[Ψ(v')=x].
// GRR's output distribution is known in closed form, so we check the
// empirical report distribution against p and q and then the ratio.
func TestGRRSatisfiesLDP(t *testing.T) {
	const L, eps, trials = 5, 1.0, 400000
	c, err := NewGRRClient(eps, L)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRand(31)
	counts := make([][]float64, L)
	for v := 0; v < L; v++ {
		counts[v] = make([]float64, L)
		for i := 0; i < trials/L; i++ {
			x, err := c.Perturb(v, r)
			if err != nil {
				t.Fatal(err)
			}
			counts[v][x]++
		}
		for x := range counts[v] {
			counts[v][x] /= float64(trials / L)
		}
	}
	// Check p and q empirically.
	if math.Abs(counts[2][2]-c.P()) > 0.01 {
		t.Errorf("empirical p = %.4f, want %.4f", counts[2][2], c.P())
	}
	if math.Abs(counts[2][0]-c.Q()) > 0.01 {
		t.Errorf("empirical q = %.4f, want %.4f", counts[2][0], c.Q())
	}
	// Pairwise ratio bound with slack for sampling noise.
	bound := math.Exp(eps) * 1.15
	for v := 0; v < L; v++ {
		for vp := 0; vp < L; vp++ {
			for x := 0; x < L; x++ {
				if counts[vp][x] == 0 {
					continue
				}
				if ratio := counts[v][x] / counts[vp][x]; ratio > bound {
					t.Errorf("LDP violated: Pr[%d|%d]/Pr[%d|%d] = %.3f > %.3f", x, v, x, vp, ratio, bound)
				}
			}
		}
	}
}

// TestOLHConditionalLDP checks that, conditioned on the hash seed, the
// reported hash value satisfies ε-LDP over the g-sized range (this is the GRR
// sub-step that carries OLH's privacy guarantee).
func TestOLHConditionalLDP(t *testing.T) {
	const eps = 1.0
	c, err := NewOLHClient(eps, 100)
	if err != nil {
		t.Fatal(err)
	}
	g := c.G()
	if g != int(math.Ceil(math.Exp(1)))+1 {
		t.Fatalf("g = %d, want ⌈e⌉+1 = %d", g, int(math.Ceil(math.E))+1)
	}
	// The report equals the true hash with prob p, any other with q=(1-p)/(g-1);
	// p/q must be ≤ e^ε (with equality by construction).
	p := math.Exp(eps) / (math.Exp(eps) + float64(g) - 1)
	q := (1 - p) / float64(g-1)
	if math.Abs(p/q-math.Exp(eps)) > 1e-9 {
		t.Errorf("OLH inner GRR ratio p/q = %v, want e^ε = %v", p/q, math.Exp(eps))
	}
}

// TestOUESatisfiesLDP checks OUE's per-bit privacy: the probability ratio of
// any single output bit given two different inputs is bounded by e^ε (bit is
// 1 with p=1/2 for the true position vs q=1/(e^ε+1) otherwise, and 0 with
// 1/2 vs e^ε/(e^ε+1)); the worst-case per-report ratio is exactly e^ε
// because only two positions differ between neighbouring one-hot encodings.
func TestOUESatisfiesLDP(t *testing.T) {
	const eps = 1.0
	q := 1 / (math.Exp(eps) + 1)
	p := 0.5
	// bit=1: p/q; bit=0: (1-p)/(1-q) — the privacy loss of a report flips
	// one bit pair, so the total ratio is (p/q)·((1-q)/(1-p)) = e^ε exactly.
	ratio := (p / q) * ((1 - q) / (1 - p))
	if math.Abs(ratio-math.Exp(eps)) > 1e-9 {
		t.Fatalf("OUE worst-case ratio %v, want e^ε = %v", ratio, math.Exp(eps))
	}
	// Empirically verify the bit probabilities.
	c, err := NewOUEClient(eps, 8)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRand(41)
	const trials = 100000
	var trueOnes, falseOnes int
	for i := 0; i < trials; i++ {
		rep, err := c.Perturb(2, r)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Bit(2) {
			trueOnes++
		}
		if rep.Bit(5) {
			falseOnes++
		}
	}
	if math.Abs(float64(trueOnes)/trials-p) > 0.01 {
		t.Errorf("true-bit rate %v, want %v", float64(trueOnes)/trials, p)
	}
	if math.Abs(float64(falseOnes)/trials-q) > 0.01 {
		t.Errorf("false-bit rate %v, want %v", float64(falseOnes)/trials, q)
	}
}

func TestOLHHashUniformity(t *testing.T) {
	// Hash values must be near-uniform over [0,g) across seeds for any fixed v.
	const g, draws = 5, 100000
	r := NewRand(8)
	counts := make([]int, g)
	for i := 0; i < draws; i++ {
		counts[olhHash(r.Uint64(), 12345, g)]++
	}
	want := float64(draws) / g
	for h, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("hash bucket %d: count %d, want ~%.0f", h, c, want)
		}
	}
}

func TestVarianceFormulas(t *testing.T) {
	eps := 1.0
	ee := math.E
	n := 1000
	if got, want := GRRVariance(eps, 10, n), (ee+8)/(1000*(ee-1)*(ee-1)); math.Abs(got-want) > 1e-12 {
		t.Errorf("GRRVariance = %v, want %v", got, want)
	}
	if got, want := OLHVariance(eps, n), 4*ee/(1000*(ee-1)*(ee-1)); math.Abs(got-want) > 1e-12 {
		t.Errorf("OLHVariance = %v, want %v", got, want)
	}
	if OUEVariance(eps, n) != OLHVariance(eps, n) {
		t.Error("OUE variance should equal OLH variance")
	}
}

func TestVarianceMonotonicity(t *testing.T) {
	// GRR variance grows with L; both shrink with n and eps.
	if !(GRRVariance(1, 100, 1000) > GRRVariance(1, 10, 1000)) {
		t.Error("GRR variance not increasing in L")
	}
	if !(GRRVariance(1, 10, 1000) > GRRVariance(1, 10, 10000)) {
		t.Error("GRR variance not decreasing in n")
	}
	if !(OLHVariance(0.5, 1000) > OLHVariance(2.0, 1000)) {
		t.Error("OLH variance not decreasing in eps")
	}
}

func TestChooseByVariance(t *testing.T) {
	// Small domains favour GRR, large domains favour OLH; the crossover is at
	// L = 3e^ε + 2.
	eps := 1.0
	cross := 3*math.Exp(eps) + 2 // ≈ 10.15
	if got := ChooseByVariance(eps, 4); got != GRR {
		t.Errorf("L=4: got %v, want GRR", got)
	}
	if got := ChooseByVariance(eps, 64); got != OLH {
		t.Errorf("L=64: got %v, want OLH", got)
	}
	if got := ChooseByVariance(eps, int(cross)+1); got != OLH {
		t.Errorf("just above crossover: got %v, want OLH", got)
	}
	// The choice must agree with the variance formulas for all L.
	if err := quick.Check(func(l16 uint16, e8 uint8) bool {
		L := int(l16%500) + 1
		eps := 0.1 + float64(e8%40)/10
		choice := ChooseByVariance(eps, L)
		grrV := GRRVariance(eps, L, 1000)
		olhV := OLHVariance(eps, 1000)
		if choice == GRR {
			return grrV <= olhV+1e-12
		}
		return olhV <= grrV+1e-12
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestProtocolString(t *testing.T) {
	for p, want := range map[Protocol]string{GRR: "GRR", OLH: "OLH", OUE: "OUE", HR: "HR", Protocol(7): "Protocol(7)"} {
		if p.String() != want {
			t.Errorf("String(%d) = %q, want %q", uint8(p), p.String(), want)
		}
	}
	if Kind := Protocol(9).Variance(1, 10, 100); Kind != OLHVariance(1, 100) {
		t.Error("unknown protocol variance should default to OLH")
	}
}

func TestGRRSingletonDomain(t *testing.T) {
	got, err := Estimate(GRR, 1.0, 1, []int{0, 0, 0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 {
		t.Errorf("singleton domain estimate = %v, want 1", got[0])
	}
}

func TestAggregatorsEmpty(t *testing.T) {
	if got := NewGRRAggregator(1, 4).Estimates(); len(got) != 4 || got[0] != 0 {
		t.Error("empty GRR aggregator should return zeros")
	}
	if got := NewOLHAggregator(1, 4).Estimates(); len(got) != 4 || got[0] != 0 {
		t.Error("empty OLH aggregator should return zeros")
	}
	if got := NewOUEAggregator(1, 4).Estimates(); len(got) != 4 || got[0] != 0 {
		t.Error("empty OUE aggregator should return zeros")
	}
}

// Property: GRR estimates are an affine transform of counts, so the estimate
// vector always sums to (1 - L·q)/(p - q)·(1/n)·n ... = exactly 1 when every
// report is within domain.
func TestGRREstimatesSumExactlyOne(t *testing.T) {
	if err := quick.Check(func(seed uint64, l8 uint8, n16 uint16) bool {
		L := int(l8%30) + 2
		n := int(n16%500) + 50
		r := NewRand(seed)
		agg := NewGRRAggregator(1.0, L)
		for i := 0; i < n; i++ {
			agg.Add(r.IntN(L))
		}
		var sum float64
		for _, f := range agg.Estimates() {
			sum += f
		}
		return math.Abs(sum-1) < 1e-9
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestOUEReportBit(t *testing.T) {
	c, err := NewOUEClient(8.0, 70) // huge eps: report ≈ exact one-hot half the time
	if err != nil {
		t.Fatal(err)
	}
	r := NewRand(3)
	ones := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		rep, err := c.Perturb(69, r)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Bit(69) {
			ones++
		}
	}
	// p = 1/2 exactly.
	if math.Abs(float64(ones)/trials-0.5) > 0.05 {
		t.Errorf("true-bit rate %.3f, want ~0.5", float64(ones)/trials)
	}
}

// TestGRREmpiricalVarianceMatchesFormula validates the variance formula
// (Eq 2) that drives the grid optimizer: the empirical variance of the GRR
// estimator across many repetitions must match (e^ε+L−2)/(n(e^ε−1)²).
func TestGRREmpiricalVarianceMatchesFormula(t *testing.T) {
	const (
		L    = 16
		eps  = 1.0
		n    = 2000
		reps = 300
	)
	// Fixed true distribution: everyone holds value 3.
	vals := make([]int, n)
	for i := range vals {
		vals[i] = 3
	}
	// Estimate the frequency of value 7 (true frequency 0) repeatedly.
	var sum, sumsq float64
	for r := 0; r < reps; r++ {
		est, err := Estimate(GRR, eps, L, vals, uint64(r+1))
		if err != nil {
			t.Fatal(err)
		}
		sum += est[7]
		sumsq += est[7] * est[7]
	}
	mean := sum / reps
	empVar := sumsq/reps - mean*mean
	want := GRRVariance(eps, L, n)
	// Mean must be ~0 (unbiased), variance within 30% (reps=300 gives
	// ~8% relative std on the variance estimate; 30% is a safe bound).
	if math.Abs(mean) > 4*math.Sqrt(want/reps) {
		t.Errorf("estimator biased: mean %v", mean)
	}
	if empVar < 0.7*want || empVar > 1.3*want {
		t.Errorf("empirical variance %v, formula %v", empVar, want)
	}
}

// TestOLHEmpiricalVarianceMatchesFormula does the same for OLH's
// 4e^ε/(n(e^ε−1)²).
func TestOLHEmpiricalVarianceMatchesFormula(t *testing.T) {
	const (
		L    = 32
		eps  = 1.0
		n    = 1000
		reps = 200
	)
	vals := make([]int, n)
	for i := range vals {
		vals[i] = 3
	}
	var sum, sumsq float64
	for r := 0; r < reps; r++ {
		est, err := Estimate(OLH, eps, L, vals, uint64(r+1))
		if err != nil {
			t.Fatal(err)
		}
		sum += est[20]
		sumsq += est[20] * est[20]
	}
	mean := sum / reps
	empVar := sumsq/reps - mean*mean
	want := OLHVariance(eps, n)
	if math.Abs(mean) > 4*math.Sqrt(want/reps) {
		t.Errorf("estimator biased: mean %v", mean)
	}
	if empVar < 0.65*want || empVar > 1.35*want {
		t.Errorf("empirical variance %v, formula %v", empVar, want)
	}
}

func TestOLHHashMatchesInternal(t *testing.T) {
	// The exported generic hash must agree with the dense-domain hash used by
	// the OLH aggregator, for any (seed, value, g).
	if err := quick.Check(func(seed uint64, v16 uint16, g8 uint8) bool {
		g := int(g8%16) + 2
		v := int(v16)
		return OLHHash(seed, uint64(v), g) == int(olhHash(seed, v, uint64(g)))
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOLHHashRange(t *testing.T) {
	r := NewRand(1)
	for i := 0; i < 10000; i++ {
		h := OLHHash(r.Uint64(), r.Uint64(), 7)
		if h < 0 || h >= 7 {
			t.Fatalf("hash %d out of [0,7)", h)
		}
	}
}

func TestMixIDDistinguishesTuples(t *testing.T) {
	// Different tuples must (practically always) get different ids, and the
	// combination must be order-sensitive.
	seen := map[uint64][2]uint64{}
	for a := uint64(0); a < 100; a++ {
		for b := uint64(0); b < 100; b++ {
			id := MixID(MixID(0xABCD, a), b)
			if prev, dup := seen[id]; dup {
				t.Fatalf("collision: (%d,%d) and (%d,%d)", a, b, prev[0], prev[1])
			}
			seen[id] = [2]uint64{a, b}
		}
	}
	if MixID(MixID(0xABCD, 1), 2) == MixID(MixID(0xABCD, 2), 1) {
		t.Error("MixID not order-sensitive")
	}
}

func TestOptimalG(t *testing.T) {
	if g := OptimalG(1.0); g != 4 {
		t.Errorf("OptimalG(1) = %d, want 4", g)
	}
	if g := OptimalG(0.01); g < 2 {
		t.Errorf("OptimalG(0.01) = %d, want >= 2", g)
	}
	if g := OptimalG(50); g != 255 {
		t.Errorf("OptimalG(50) = %d, want capped at 255", g)
	}
}
