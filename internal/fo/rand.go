package fo

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// Rand is a small, fast, deterministic pseudo-random generator built on
// splitmix64. It is the randomness source for all perturbation in this
// package: given the same seed the whole collection round is reproducible,
// which the experiment harness relies on.
//
// A Rand must not be shared between goroutines; use Split to derive
// independent streams for parallel work.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded with seed. Distinct seeds give streams
// that are independent for all practical purposes.
func NewRand(seed uint64) *Rand {
	// Avoid the all-zero fixed point and decorrelate nearby seeds.
	return &Rand{state: splitmix64(seed ^ 0x9E3779B97F4A7C15)}
}

// splitmix64 is Sebastiano Vigna's public-domain mixing function. It is a
// bijection on 64-bit integers whose output passes BigCrush; one application
// per draw gives a high-quality stream.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	z := x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// IntN returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) IntN(n int) int {
	if n <= 0 {
		panic("fo: IntN called with non-positive n")
	}
	// Lemire's nearly-divisionless bounded sampling.
	un := uint64(n)
	hi, lo := bits.Mul64(r.Uint64(), un)
	if lo < un {
		thresh := -un % un
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), un)
		}
	}
	return int(hi)
}

// NormFloat64 returns a standard normal variate (Box–Muller, polar form).
func (r *Rand) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Split derives a new generator whose stream is independent from the
// receiver's continued stream.
func (r *Rand) Split() *Rand {
	return NewRand(r.Uint64())
}

// Perm fills out with a uniform random permutation of [0, len(out)).
func (r *Rand) Perm(out []int) {
	for i := range out {
		out[i] = i
	}
	for i := len(out) - 1; i > 0; i-- {
		j := r.IntN(i + 1)
		out[i], out[j] = out[j], out[i]
	}
}

// globalSeq provides unique fallback seeds for callers that do not care
// about reproducibility.
var globalSeq atomic.Uint64

// AutoSeed returns a process-unique seed.
func AutoSeed() uint64 {
	return splitmix64(globalSeq.Add(0x9E3779B97F4A7C15))
}
