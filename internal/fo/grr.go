package fo

import (
	"fmt"
	"math"

	"felip/internal/metrics"
)

// grrRejectedTotal counts out-of-range GRR reports process-wide (per-round
// counts live on each aggregator's Rejected).
var grrRejectedTotal = metrics.GetCounter("fo.grr.rejected")

// GRRClient is the user-side algorithm Ψ_GRR of Generalized Randomized
// Response (paper §2.2.1). With probability p = e^ε/(e^ε+L−1) the true value
// is reported; otherwise a uniformly random *other* value is reported.
type GRRClient struct {
	eps float64
	l   int
	p   float64
}

// NewGRRClient returns a GRR perturbation client for domain size L and
// privacy budget eps.
func NewGRRClient(eps float64, L int) (*GRRClient, error) {
	if err := validate(eps, L); err != nil {
		return nil, err
	}
	ee := math.Exp(eps)
	return &GRRClient{
		eps: eps,
		l:   L,
		p:   ee / (ee + float64(L) - 1),
	}, nil
}

// Epsilon returns the privacy budget.
func (c *GRRClient) Epsilon() float64 { return c.eps }

// L returns the domain size.
func (c *GRRClient) L() int { return c.l }

// P returns the truthful-report probability p = e^ε/(e^ε+L−1).
func (c *GRRClient) P() float64 { return c.p }

// Q returns the per-value lying probability q = 1/(e^ε+L−1).
func (c *GRRClient) Q() float64 {
	if c.l == 1 {
		return 0
	}
	return (1 - c.p) / float64(c.l-1)
}

// Perturb applies Ψ_GRR to the private value v and returns the report.
func (c *GRRClient) Perturb(v int, r *Rand) (int, error) {
	if v < 0 || v >= c.l {
		return 0, fmt.Errorf("fo: GRR value %d outside domain [0,%d)", v, c.l)
	}
	if c.l == 1 {
		return 0, nil
	}
	if r.Float64() < c.p {
		return v, nil
	}
	// Uniform over the other L-1 values: draw from [0, L-1) and skip v.
	x := r.IntN(c.l - 1)
	if x >= v {
		x++
	}
	return x, nil
}

// GRRAggregator is the server-side algorithm Φ_GRR: it counts reports and
// converts counts into unbiased frequency estimates (paper Eq 1). It is not
// safe for concurrent use; the collector serializes access.
type GRRAggregator struct {
	eps      float64
	l        int
	counts   []int64
	n        int
	rejected int
}

// NewGRRAggregator returns an empty aggregator for domain size L.
func NewGRRAggregator(eps float64, L int) *GRRAggregator {
	return &GRRAggregator{eps: eps, l: L, counts: make([]int64, L)}
}

// Add records one user report. A report outside [0, L) cannot have been
// produced by Ψ_GRR; it is counted as rejected rather than silently
// discarded, so malformed-client traffic stays visible to operators.
func (a *GRRAggregator) Add(report int) {
	if report < 0 || report >= a.l {
		a.rejected++
		grrRejectedTotal.Inc()
		return
	}
	a.counts[report]++
	a.n++
}

// N returns the number of reports recorded so far.
func (a *GRRAggregator) N() int { return a.n }

// Rejected returns the number of out-of-range reports Add refused.
func (a *GRRAggregator) Rejected() int { return a.rejected }

// Merge adds another aggregator's counts into this one, exactly. Both must
// share ε and L. The other aggregator is left unchanged.
func (a *GRRAggregator) Merge(other *GRRAggregator) error {
	if other == a {
		return fmt.Errorf("fo: cannot merge a GRR aggregator with itself")
	}
	if a.eps != other.eps || a.l != other.l {
		return fmt.Errorf("fo: merging incompatible GRR aggregators (eps %v/%v, L %d/%d)",
			a.eps, other.eps, a.l, other.l)
	}
	for v, c := range other.counts {
		a.counts[v] += c
	}
	a.n += other.n
	a.rejected += other.rejected
	return nil
}

// Estimates returns the unbiased frequency estimate for every domain value:
// Φ_GRR(v) = (C(v)/n − q)/(p − q). Estimates may be negative; post-processing
// removes negativity. Returns a zero vector if no reports were added.
func (a *GRRAggregator) Estimates() []float64 {
	out := make([]float64, a.l)
	if a.n == 0 {
		return out
	}
	if a.l == 1 {
		out[0] = 1
		return out
	}
	ee := math.Exp(a.eps)
	p := ee / (ee + float64(a.l) - 1)
	q := 1 / (ee + float64(a.l) - 1)
	n := float64(a.n)
	for v, c := range a.counts {
		out[v] = (float64(c)/n - q) / (p - q)
	}
	return out
}
