package fo

import (
	"fmt"
	"math"
)

// olhHash maps value v into [0, g) under the hash function identified by
// seed. The family {H_seed} is a 64-bit mixing family with negligible
// collision bias, standing in for the universal family H of the paper.
func olhHash(seed uint64, v int, g uint64) uint64 {
	return splitmix64(seed^(uint64(v)+1)*0xD6E8FEB86659FD93) % g
}

// OLHHash exposes the OLH hash family for protocols that run local hashing
// over value identifiers outside a dense [0, L) domain (the HIO baseline
// hashes k-dimensional interval tuples). It maps (seed, vid) into [0, g).
func OLHHash(seed, vid uint64, g int) int {
	return int(splitmix64(seed^(vid+1)*0xD6E8FEB86659FD93) % uint64(g))
}

// MixID folds a component into a running 64-bit identifier; used to build
// collision-resistant ids for tuples of interval indexes.
func MixID(acc, component uint64) uint64 {
	return splitmix64(acc ^ (component+0x9E3779B97F4A7C15)*0xD6E8FEB86659FD93)
}

// OLHReport is one user's OLH report: the identifier of the hash function the
// user drew (its seed) and the GRR-perturbed hash of their value.
type OLHReport struct {
	// Seed identifies the user's hash function H ∈ ℍ.
	Seed uint64
	// Value is Ψ_GRR(H(v)) ∈ [0, g).
	Value uint8
}

// OLHClient is the user-side algorithm Ψ_OLH (paper §2.2.2): hash the value
// into a domain of size g = ⌈e^ε⌉+1, then apply GRR with the full budget ε to
// the hashed value, and report ⟨H, Ψ_GRR(H(v))⟩.
type OLHClient struct {
	eps float64
	l   int
	g   int
	p   float64
}

// NewOLHClient returns an OLH perturbation client for domain size L.
func NewOLHClient(eps float64, L int) (*OLHClient, error) {
	if err := validate(eps, L); err != nil {
		return nil, err
	}
	g := OptimalG(eps)
	ee := math.Exp(eps)
	return &OLHClient{
		eps: eps,
		l:   L,
		g:   g,
		p:   ee / (ee + float64(g) - 1),
	}, nil
}

// OptimalG returns the variance-minimizing hash range g = ⌈e^ε⌉ + 1,
// capped below at 2 (a hash into a single bucket carries no information).
func OptimalG(eps float64) int {
	gf := math.Ceil(math.Exp(eps)) + 1
	// Reports store the hashed value in a byte; cap g accordingly. ε ≥ ~5.5
	// would exceed the cap, at which point GRR dominates OLH anyway.
	if gf > 255 || math.IsInf(gf, 1) {
		return 255
	}
	g := int(gf)
	if g < 2 {
		g = 2
	}
	return g
}

// Epsilon returns the privacy budget.
func (c *OLHClient) Epsilon() float64 { return c.eps }

// L returns the original domain size.
func (c *OLHClient) L() int { return c.l }

// G returns the hash range g.
func (c *OLHClient) G() int { return c.g }

// Perturb applies Ψ_OLH to the private value v: draws a fresh hash function
// (seed), hashes v into [0,g), perturbs the hash with GRR(ε) over [0,g).
func (c *OLHClient) Perturb(v int, r *Rand) (OLHReport, error) {
	if v < 0 || v >= c.l {
		return OLHReport{}, fmt.Errorf("fo: OLH value %d outside domain [0,%d)", v, c.l)
	}
	seed := r.Uint64()
	h := int(olhHash(seed, v, uint64(c.g)))
	rep := h
	if r.Float64() >= c.p {
		x := r.IntN(c.g - 1)
		if x >= h {
			x++
		}
		rep = x
	}
	return OLHReport{Seed: seed, Value: uint8(rep)}, nil
}

// OLHAggregator is the server-side algorithm Φ_OLH: it keeps all reports and
// computes, for each domain value v, the support count
// C(v) = |{j : H_j(v) = x_j}| and its unbiased frequency estimate
// (C(v)/n − 1/g) / (p − 1/g).
type OLHAggregator struct {
	eps     float64
	l       int
	g       int
	reports []OLHReport
}

// NewOLHAggregator returns an empty aggregator for domain size L.
func NewOLHAggregator(eps float64, L int) *OLHAggregator {
	return &OLHAggregator{eps: eps, l: L, g: OptimalG(eps)}
}

// Add records one user report.
func (a *OLHAggregator) Add(rep OLHReport) {
	a.reports = append(a.reports, rep)
}

// N returns the number of reports recorded so far.
func (a *OLHAggregator) N() int { return len(a.reports) }

// Estimates returns the unbiased frequency estimate for every domain value.
// Cost is O(n·L) hash evaluations. Returns a zero vector with no reports.
func (a *OLHAggregator) Estimates() []float64 {
	out := make([]float64, a.l)
	n := len(a.reports)
	if n == 0 {
		return out
	}
	g := uint64(a.g)
	support := make([]int64, a.l)
	for _, rep := range a.reports {
		val := uint64(rep.Value)
		seed := rep.Seed
		for v := 0; v < a.l; v++ {
			if olhHash(seed, v, g) == val {
				support[v]++
			}
		}
	}
	ee := math.Exp(a.eps)
	p := ee / (ee + float64(a.g) - 1)
	invg := 1 / float64(a.g)
	nf := float64(n)
	for v := range out {
		out[v] = (float64(support[v])/nf - invg) / (p - invg)
	}
	return out
}
