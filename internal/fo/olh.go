package fo

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"felip/internal/metrics"
)

// olhHash maps value v into [0, g) under the hash function identified by
// seed. The family {H_seed} is a 64-bit mixing family with negligible
// collision bias, standing in for the universal family H of the paper.
func olhHash(seed uint64, v int, g uint64) uint64 {
	return splitmix64(seed^(uint64(v)+1)*0xD6E8FEB86659FD93) % g
}

// OLHHash exposes the OLH hash family for protocols that run local hashing
// over value identifiers outside a dense [0, L) domain (the HIO baseline
// hashes k-dimensional interval tuples). It maps (seed, vid) into [0, g).
func OLHHash(seed, vid uint64, g int) int {
	return int(splitmix64(seed^(vid+1)*0xD6E8FEB86659FD93) % uint64(g))
}

// MixID folds a component into a running 64-bit identifier; used to build
// collision-resistant ids for tuples of interval indexes.
func MixID(acc, component uint64) uint64 {
	return splitmix64(acc ^ (component+0x9E3779B97F4A7C15)*0xD6E8FEB86659FD93)
}

// OLHReport is one user's OLH report: the identifier of the hash function the
// user drew (its seed) and the GRR-perturbed hash of their value.
type OLHReport struct {
	// Seed identifies the user's hash function H ∈ ℍ.
	Seed uint64
	// Value is Ψ_GRR(H(v)) ∈ [0, g).
	Value uint8
}

// OLHClient is the user-side algorithm Ψ_OLH (paper §2.2.2): hash the value
// into a domain of size g = ⌈e^ε⌉+1, then apply GRR with the full budget ε to
// the hashed value, and report ⟨H, Ψ_GRR(H(v))⟩.
type OLHClient struct {
	eps float64
	l   int
	g   int
	p   float64
}

// NewOLHClient returns an OLH perturbation client for domain size L.
func NewOLHClient(eps float64, L int) (*OLHClient, error) {
	if err := validate(eps, L); err != nil {
		return nil, err
	}
	g := OptimalG(eps)
	ee := math.Exp(eps)
	return &OLHClient{
		eps: eps,
		l:   L,
		g:   g,
		p:   ee / (ee + float64(g) - 1),
	}, nil
}

// OptimalG returns the variance-minimizing hash range g = ⌈e^ε⌉ + 1,
// capped below at 2 (a hash into a single bucket carries no information).
func OptimalG(eps float64) int {
	gf := math.Ceil(math.Exp(eps)) + 1
	// Reports store the hashed value in a byte; cap g accordingly. ε ≥ ~5.5
	// would exceed the cap, at which point GRR dominates OLH anyway.
	if gf > 255 || math.IsInf(gf, 1) {
		return 255
	}
	g := int(gf)
	if g < 2 {
		g = 2
	}
	return g
}

// Epsilon returns the privacy budget.
func (c *OLHClient) Epsilon() float64 { return c.eps }

// L returns the original domain size.
func (c *OLHClient) L() int { return c.l }

// G returns the hash range g.
func (c *OLHClient) G() int { return c.g }

// Perturb applies Ψ_OLH to the private value v: draws a fresh hash function
// (seed), hashes v into [0,g), perturbs the hash with GRR(ε) over [0,g).
func (c *OLHClient) Perturb(v int, r *Rand) (OLHReport, error) {
	if v < 0 || v >= c.l {
		return OLHReport{}, fmt.Errorf("fo: OLH value %d outside domain [0,%d)", v, c.l)
	}
	seed := r.Uint64()
	h := int(olhHash(seed, v, uint64(c.g)))
	rep := h
	if r.Float64() >= c.p {
		x := r.IntN(c.g - 1)
		if x >= h {
			x++
		}
		rep = x
	}
	return OLHReport{Seed: seed, Value: uint8(rep)}, nil
}

// Kernel instruments (see internal/metrics): fold throughput and estimation
// latency, surfaced by the HTTP API's /v1/status.
var (
	olhFoldTimer     = metrics.GetTimer("fo.olh.fold")
	olhFoldReports   = metrics.GetCounter("fo.olh.fold_reports")
	olhEstimateTimer = metrics.GetTimer("fo.olh.estimate")
	olhMerges        = metrics.GetCounter("fo.olh.merges")
	olhRejectedTotal = metrics.GetCounter("fo.olh.rejected")
)

// foldParallelMin is the fold size (reports × domain values, i.e. hash
// evaluations) below which the worker fan-out costs more than it saves.
const foldParallelMin = 1 << 18

// streamFoldBatch is the pending-buffer size at which a streaming aggregator
// folds; it amortizes the O(L) fold sweep over a batch of reports while
// keeping the buffer — and therefore memory — O(1) in n.
const streamFoldBatch = 512

// OLHAggregator is the server-side algorithm Φ_OLH as a parallel, mergeable,
// memory-bounded kernel. Reports fold into a per-value support-count vector
// C(v) = |{j : H_j(v) = x_j}|; Estimates converts the counts into the
// unbiased frequency estimates (C(v)/n − 1/g) / (p − 1/g).
//
// In the default buffered mode Add is O(1) (reports queue in memory) and the
// O(n·L) fold runs once at Estimates time, fanned out across GOMAXPROCS
// workers over disjoint domain ranges. In streaming mode (NewOLHAggregator-
// Streaming) reports fold as they arrive, batch by batch, so memory stays
// O(L) instead of O(n) — the shape a long-lived shard wants.
//
// Because the support counts are integers and every report's contribution is
// folded exactly once, the kernel is bit-deterministic: buffered, streaming,
// parallel, and k-way Merge'd aggregations of the same report multiset all
// produce float-for-float identical estimates, equal to the sequential
// reference (OLHReferenceEstimates).
//
// An OLHAggregator is safe for concurrent use. Reports added concurrently
// with an Estimates call may or may not be included in that call's output.
type OLHAggregator struct {
	eps float64
	l   int
	g   int

	mu       sync.Mutex
	pending  []OLHReport // reports not yet folded
	support  []int64     // folded support counts, nil until first fold
	folded   int         // reports folded into support
	inflight int         // reports checked out by an in-progress fold
	rejected int         // out-of-range reports refused by Add
	foldAt   int         // fold when len(pending) reaches this (0: only at Estimates)
	pre      []uint64    // premultiplied per-value hash constants, built lazily
	fm       fastMod     // exact multiply-based reduction mod g
}

// NewOLHAggregator returns an empty buffered aggregator for domain size L:
// Add queues reports and the fold runs at Estimates time.
func NewOLHAggregator(eps float64, L int) *OLHAggregator {
	return &OLHAggregator{eps: eps, l: L, g: OptimalG(eps)}
}

// NewOLHAggregatorStreaming returns an empty streaming aggregator for domain
// size L: reports fold into the support vector as they arrive (in batches of
// streamFoldBatch), so memory is O(L) regardless of how many reports the
// round collects.
func NewOLHAggregatorStreaming(eps float64, L int) *OLHAggregator {
	a := NewOLHAggregator(eps, L)
	a.foldAt = streamFoldBatch
	return a
}

// tablesLocked lazily builds the shared fold tables. Callers hold a.mu; the
// returned slices are read-only after publication.
func (a *OLHAggregator) tablesLocked() ([]uint64, fastMod) {
	if a.pre == nil {
		pre := make([]uint64, a.l)
		for v := range pre {
			pre[v] = (uint64(v) + 1) * 0xD6E8FEB86659FD93
		}
		a.fm = newFastMod(uint64(a.g))
		a.pre = pre
	}
	return a.pre, a.fm
}

// Add records one user report. A report whose perturbed value lies outside
// [0, g) cannot have been produced by Ψ_OLH; it is counted as rejected
// (never silently folded, which would bias every estimate downward).
func (a *OLHAggregator) Add(rep OLHReport) {
	if uint64(rep.Value) >= uint64(a.g) {
		a.mu.Lock()
		a.rejected++
		a.mu.Unlock()
		olhRejectedTotal.Inc()
		return
	}
	a.mu.Lock()
	a.pending = append(a.pending, rep)
	if a.foldAt == 0 || len(a.pending) < a.foldAt {
		a.mu.Unlock()
		return
	}
	batch := a.pending
	a.pending = nil
	a.inflight += len(batch)
	pre, fm := a.tablesLocked()
	a.mu.Unlock()
	a.foldBatch(batch, pre, fm)
}

// foldBatch folds a checked-out batch into the support vector. The heavy
// O(len(batch)·L) sweep runs outside a.mu so N, Rejected and concurrent Adds
// stay responsive; only the final integer merge takes the lock.
func (a *OLHAggregator) foldBatch(batch []OLHReport, pre []uint64, fm fastMod) {
	if len(batch) == 0 {
		return
	}
	start := time.Now()
	local := make([]int64, a.l)
	foldReports(local, batch, pre, fm)
	a.mu.Lock()
	if a.support == nil {
		a.support = local
	} else {
		for v, c := range local {
			a.support[v] += c
		}
	}
	a.folded += len(batch)
	a.inflight -= len(batch)
	a.mu.Unlock()
	olhFoldTimer.Observe(time.Since(start))
	olhFoldReports.Add(int64(len(batch)))
}

// foldReports adds each report's support to the vector: support[v] gets one
// count per report j with H_j(v) = x_j. Workers split the domain into
// disjoint ranges, so they share the read-only report slice but never write
// the same element — no per-worker copies, no merge step, and integer
// addition keeps the outcome independent of scheduling.
func foldReports(support []int64, reports []OLHReport, pre []uint64, fm fastMod) {
	workers := runtime.GOMAXPROCS(0)
	if workers > len(support) {
		workers = len(support)
	}
	if workers < 2 || len(reports)*len(support) < foldParallelMin {
		foldRange(support, reports, pre, fm)
		return
	}
	step := (len(support) + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < len(support); lo += step {
		hi := min(lo+step, len(support))
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			foldRange(support[lo:hi], reports, pre[lo:hi], fm)
		}(lo, hi)
	}
	wg.Wait()
}

// foldRange is the sequential inner kernel over one domain range. It computes
// exactly olhHash(seed, v, g) == value per pair, with the (v+1)·C multiply
// precomputed in pre and the mod-g division replaced by the exact
// multiply-based reduction — bit-identical support counts, several times
// fewer cycles per hash. The match test is branchless: a hash matches with
// probability 1/g, far too often for the branch predictor, so the hit is
// computed arithmetically ((d−1)>>63 is 1 iff d == 0, exact because
// d = hash mod g XOR value < 2^63).
func foldRange(support []int64, reports []OLHReport, pre []uint64, fm fastMod) {
	pre = pre[:len(support)]
	if fm.pow2 {
		mask := fm.mask
		for _, rep := range reports {
			seed := rep.Seed
			val := uint64(rep.Value)
			for v, pv := range pre {
				d := (splitmix64(seed^pv) & mask) ^ val
				support[v] += int64((d - 1) >> 63)
			}
		}
		return
	}
	for _, rep := range reports {
		seed := rep.Seed
		val := uint64(rep.Value)
		for v, pv := range pre {
			d := fm.mod(splitmix64(seed^pv)) ^ val
			support[v] += int64((d - 1) >> 63)
		}
	}
}

// N returns the number of reports recorded so far.
func (a *OLHAggregator) N() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.folded + a.inflight + len(a.pending)
}

// Rejected returns the number of out-of-range reports Add refused.
func (a *OLHAggregator) Rejected() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.rejected
}

// Merge folds another aggregator's state into this one, exactly: the merged
// aggregator estimates as if it had received every report both shards did.
// Both must share ε and L. The other aggregator is left unchanged; it must
// not have an Estimates call in flight.
func (a *OLHAggregator) Merge(other *OLHAggregator) error {
	if other == a {
		return fmt.Errorf("fo: cannot merge an OLH aggregator with itself")
	}
	if a.eps != other.eps || a.l != other.l {
		return fmt.Errorf("fo: merging incompatible OLH aggregators (eps %v/%v, L %d/%d)",
			a.eps, other.eps, a.l, other.l)
	}
	other.mu.Lock()
	if other.inflight > 0 {
		other.mu.Unlock()
		return fmt.Errorf("fo: cannot merge an OLH aggregator with estimation in flight")
	}
	pending := append([]OLHReport(nil), other.pending...)
	var support []int64
	if other.support != nil {
		support = append([]int64(nil), other.support...)
	}
	folded := other.folded
	rejected := other.rejected
	other.mu.Unlock()

	a.mu.Lock()
	a.pending = append(a.pending, pending...)
	if support != nil {
		if a.support == nil {
			a.support = support
		} else {
			for v, c := range support {
				a.support[v] += c
			}
		}
	}
	a.folded += folded
	a.rejected += rejected
	a.mu.Unlock()
	olhMerges.Inc()
	return nil
}

// Estimates returns the unbiased frequency estimate for every domain value.
// Pending reports are folded first — O(pending·L) hash evaluations, fanned
// out across GOMAXPROCS workers. Returns a zero vector with no reports.
func (a *OLHAggregator) Estimates() []float64 {
	start := time.Now()
	a.mu.Lock()
	batch := a.pending
	a.pending = nil
	a.inflight += len(batch)
	pre, fm := a.tablesLocked()
	a.mu.Unlock()
	a.foldBatch(batch, pre, fm)

	out := make([]float64, a.l)
	a.mu.Lock()
	n := a.folded
	if n > 0 {
		ee := math.Exp(a.eps)
		p := ee / (ee + float64(a.g) - 1)
		invg := 1 / float64(a.g)
		nf := float64(n)
		for v := range out {
			out[v] = (float64(a.support[v])/nf - invg) / (p - invg)
		}
	}
	a.mu.Unlock()
	olhEstimateTimer.Observe(time.Since(start))
	return out
}

// OLHReferenceEstimates is the sequential Φ_OLH this kernel replaced: one
// report at a time, hardware division for the mod-g reduction. It is kept as
// the correctness oracle — equivalence tests pin the kernel's output to it
// bit for bit — and as the baseline the benchmark harness measures speedup
// against.
func OLHReferenceEstimates(eps float64, L int, reports []OLHReport) []float64 {
	out := make([]float64, L)
	n := len(reports)
	if n == 0 {
		return out
	}
	gi := OptimalG(eps)
	g := uint64(gi)
	support := make([]int64, L)
	for _, rep := range reports {
		val := uint64(rep.Value)
		seed := rep.Seed
		for v := 0; v < L; v++ {
			if olhHash(seed, v, g) == val {
				support[v]++
			}
		}
	}
	ee := math.Exp(eps)
	p := ee / (ee + float64(gi) - 1)
	invg := 1 / float64(gi)
	nf := float64(n)
	for v := range out {
		out[v] = (float64(support[v])/nf - invg) / (p - invg)
	}
	return out
}
