package fo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestRandSeedsDiffer(t *testing.T) {
	a, b := NewRand(1), NewRand(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws out of 100", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestIntNBounds(t *testing.T) {
	if err := quick.Check(func(seed uint64, n16 uint16) bool {
		n := int(n16%1000) + 1
		r := NewRand(seed)
		for i := 0; i < 50; i++ {
			v := r.IntN(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntNPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("IntN(0) did not panic")
		}
	}()
	NewRand(1).IntN(0)
}

func TestIntNUniformity(t *testing.T) {
	const n, draws = 10, 200000
	r := NewRand(99)
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.IntN(n)]++
	}
	want := float64(draws) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("value %d: count %d, want ~%.0f", v, c, want)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRand(123)
	const draws = 200000
	var sum, sumsq float64
	for i := 0; i < draws; i++ {
		x := r.NormFloat64()
		sum += x
		sumsq += x * x
	}
	mean := sum / draws
	variance := sumsq/draws - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestPerm(t *testing.T) {
	r := NewRand(5)
	p := make([]int, 57)
	r.Perm(p)
	seen := make([]bool, len(p))
	for _, v := range p {
		if v < 0 || v >= len(p) || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestSplitIndependence(t *testing.T) {
	r := NewRand(11)
	s := r.Split()
	if r.Uint64() == s.Uint64() {
		t.Fatal("split stream equals parent stream")
	}
}

func TestAutoSeedUnique(t *testing.T) {
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		s := AutoSeed()
		if seen[s] {
			t.Fatalf("AutoSeed repeated %d", s)
		}
		seen[s] = true
	}
}
