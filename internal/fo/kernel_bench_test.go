package fo

import (
	"fmt"
	"testing"
)

// benchOLHReports builds one shared report set per benchmark scale.
func benchOLHReports(b *testing.B, eps float64, L, n int) []OLHReport {
	b.Helper()
	return genOLHReports(b, eps, L, n, 1234)
}

// BenchmarkOLHEstimatesKernel measures the parallel fold kernel at the
// acceptance scale (n=100k, L=1024) and smaller points. hashes/s is the
// portable throughput figure: n·L hash evaluations per estimate.
func BenchmarkOLHEstimatesKernel(b *testing.B) {
	for _, sc := range []struct{ n, L int }{{10_000, 256}, {100_000, 1024}} {
		b.Run(fmt.Sprintf("n=%d/L=%d", sc.n, sc.L), func(b *testing.B) {
			reports := benchOLHReports(b, 1.0, sc.L, sc.n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				agg := NewOLHAggregator(1.0, sc.L)
				for _, rep := range reports {
					agg.Add(rep)
				}
				_ = agg.Estimates()
			}
			b.StopTimer()
			hashes := float64(sc.n) * float64(sc.L) * float64(b.N)
			b.ReportMetric(hashes/b.Elapsed().Seconds(), "hashes/s")
		})
	}
}

// BenchmarkOLHEstimatesReference is the pre-kernel sequential baseline the
// ≥2× acceptance criterion compares against.
func BenchmarkOLHEstimatesReference(b *testing.B) {
	for _, sc := range []struct{ n, L int }{{10_000, 256}, {100_000, 1024}} {
		b.Run(fmt.Sprintf("n=%d/L=%d", sc.n, sc.L), func(b *testing.B) {
			reports := benchOLHReports(b, 1.0, sc.L, sc.n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = OLHReferenceEstimates(1.0, sc.L, reports)
			}
			b.StopTimer()
			hashes := float64(sc.n) * float64(sc.L) * float64(b.N)
			b.ReportMetric(hashes/b.Elapsed().Seconds(), "hashes/s")
		})
	}
}

// BenchmarkOLHStreamingAdd measures the fold-at-Add path: per-report cost of
// the memory-bounded mode.
func BenchmarkOLHStreamingAdd(b *testing.B) {
	const L = 1024
	reports := benchOLHReports(b, 1.0, L, 100_000)
	b.ResetTimer()
	agg := NewOLHAggregatorStreaming(1.0, L)
	for i := 0; i < b.N; i++ {
		agg.Add(reports[i%len(reports)])
	}
}

func BenchmarkFastMod(b *testing.B) {
	fm := newFastMod(5)
	var acc uint64
	for i := 0; i < b.N; i++ {
		acc += fm.mod(uint64(i) * 0x9E3779B97F4A7C15)
	}
	sinkU64 = acc
}

func BenchmarkHardwareMod(b *testing.B) {
	d := uint64(5)
	var acc uint64
	for i := 0; i < b.N; i++ {
		acc += (uint64(i) * 0x9E3779B97F4A7C15) % d
	}
	sinkU64 = acc
}

var sinkU64 uint64
