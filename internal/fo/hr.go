package fo

import (
	"fmt"
	"math"
	"math/bits"
	"sync"
	"time"

	"felip/internal/metrics"
)

// Hadamard Response (HR) is the mega-domain frequency oracle: each user
// reports a single (row-index, sign) pair sampled from the implicit
// Sylvester–Hadamard matrix of the padded domain, so a report costs
// O(log L) bits regardless of L, and the aggregator folds it into two
// integer counters in O(1). Estimation inverts the whole signed count
// vector at once with a fast Walsh–Hadamard transform in O(K log K).
//
// The matrix is never materialized: entry H[j][x] of the K×K Sylvester
// matrix (K a power of two) is (−1)^popcount(j AND x), computable from the
// indexes alone. Value v ∈ [0, L) maps to column x = v+1 — column 0 is the
// all-ones column, which carries no information and is skipped.
//
// Mechanism (Acharya–Sun–Zhang, AISTATS'19 family; the "HR" entry in the
// Cormode–Maddock–Maple oracle benchmark): the client draws a uniform row
// j ∈ [0, K), computes the true sign b = H[j][x], and reports (j, b) with
// probability p = e^ε/(e^ε+1), or (j, −b) otherwise. Both outputs of the
// sign channel differ by a factor e^ε, so the report is ε-LDP.

// HRDomainThreshold is the grid-cell domain size at and above which the
// planner starts considering HR. Below it OLH strictly dominates on
// variance and its O(n·L) server fold is cheap; above it OLH's fold cost
// and OUE's L-bit reports grow linearly in L while HR stays at O(log L)
// report bits and O(1) fold work per report.
const HRDomainThreshold = 1 << 13

// HRMaxVarianceRatio bounds the accuracy the planner will trade for HR's
// constant-size reports: HR is selected over OLH only while its noise
// variance stays within this factor of OLH's. The ratio
// HRVariance/OLHVariance = (e^ε+1)²/(4e^ε) crosses 2 at ε = ln(3+2√2) ≈
// 1.76, so at higher budgets the planner falls back to OLH even on
// mega-domains.
const HRMaxVarianceRatio = 2.0

// HRPaddedSize returns the Hadamard order K for domain size L: the
// smallest power of two strictly greater than L, so columns 1..L all fit
// beside the skipped all-ones column 0.
func HRPaddedSize(L int) int {
	k := 2
	for k <= L {
		k <<= 1
	}
	return k
}

// HRVariance returns Var[Φ_HR(v)] for one value: (e^ε+1)²/(n(e^ε−1)²).
// Like OLH it is independent of the domain size; it exceeds OLH's
// 4e^ε/(n(e^ε−1)²) by the factor (e^ε+1)²/(4e^ε) ≥ 1, which stays below 2
// for ε ≤ ln(3+2√2) ≈ 1.76.
func HRVariance(eps float64, n int) float64 {
	ee := math.Exp(eps)
	r := (ee + 1) / (ee - 1)
	return r * r / float64(n)
}

// HRReport is one user's Hadamard Response report: a row of the implicit
// Hadamard matrix and the (perturbed) sign of the user's entry in it.
type HRReport struct {
	// Row is the uniformly drawn row index j ∈ [0, K).
	Row int
	// Sign is the reported matrix entry, +1 or −1.
	Sign int8
}

// hadamardSign returns the Sylvester-matrix entry H[j][x] ∈ {+1, −1}
// computed implicitly: (−1)^popcount(j AND x).
func hadamardSign(j, x int) int8 {
	if bits.OnesCount(uint(j&x))&1 == 0 {
		return 1
	}
	return -1
}

// HRClient is the user-side algorithm Ψ_HR: sample a row, read the true
// sign off the implicit matrix, and flip it with probability 1/(e^ε+1).
type HRClient struct {
	eps float64
	l   int
	k   int
	p   float64
}

// NewHRClient returns an HR perturbation client for domain size L.
func NewHRClient(eps float64, L int) (*HRClient, error) {
	if err := validate(eps, L); err != nil {
		return nil, err
	}
	ee := math.Exp(eps)
	return &HRClient{
		eps: eps,
		l:   L,
		k:   HRPaddedSize(L),
		p:   ee / (ee + 1),
	}, nil
}

// Epsilon returns the privacy budget.
func (c *HRClient) Epsilon() float64 { return c.eps }

// L returns the original domain size.
func (c *HRClient) L() int { return c.l }

// K returns the padded (power-of-two) Hadamard order.
func (c *HRClient) K() int { return c.k }

// Perturb applies Ψ_HR to the private value v: draw a uniform row j of the
// implicit matrix, report the true sign H[j][v+1] with probability
// p = e^ε/(e^ε+1) and the flipped sign otherwise.
func (c *HRClient) Perturb(v int, r *Rand) (HRReport, error) {
	if v < 0 || v >= c.l {
		return HRReport{}, fmt.Errorf("fo: HR value %d outside domain [0,%d)", v, c.l)
	}
	j := r.IntN(c.k)
	b := hadamardSign(j, v+1)
	if r.Float64() >= c.p {
		b = -b
	}
	return HRReport{Row: j, Sign: b}, nil
}

// Kernel instruments (see internal/metrics), surfaced by /v1/status.
var (
	hrEstimateTimer = metrics.GetTimer("fo.hr.estimate")
	hrMerges        = metrics.GetCounter("fo.hr.merges")
	hrRejectedTotal = metrics.GetCounter("fo.hr.rejected")
	hrStateImports  = metrics.GetCounter("fo.hr.state_imports")
)

// HRAggregator is the server-side algorithm Φ_HR. Unlike OLH there is no
// deferred fold: every report lands in two per-row integer counters at Add
// time (streaming fold-at-Add), so sealing a round needs no flush and the
// state ships as the exact (plus, minus) count vectors.
type HRAggregator struct {
	eps float64
	l   int
	k   int
	p   float64

	mu       sync.Mutex
	plus     []int64
	minus    []int64
	n        int
	rejected int
}

// NewHRAggregator returns an empty aggregator for reports produced by an
// HRClient with the same ε and L. It panics on invalid parameters, matching
// the other aggregator constructors.
func NewHRAggregator(eps float64, L int) *HRAggregator {
	if err := validate(eps, L); err != nil {
		panic(err)
	}
	k := HRPaddedSize(L)
	ee := math.Exp(eps)
	return &HRAggregator{
		eps:   eps,
		l:     L,
		k:     k,
		p:     ee / (ee + 1),
		plus:  make([]int64, k),
		minus: make([]int64, k),
	}
}

// Epsilon returns the privacy budget.
func (a *HRAggregator) Epsilon() float64 { return a.eps }

// L returns the original domain size.
func (a *HRAggregator) L() int { return a.l }

// K returns the padded (power-of-two) Hadamard order.
func (a *HRAggregator) K() int { return a.k }

// Add folds one report into the per-row sign counters. Reports with an
// out-of-range row or a sign outside {+1, −1} are rejected and counted.
func (a *HRAggregator) Add(rep HRReport) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if rep.Row < 0 || rep.Row >= a.k || (rep.Sign != 1 && rep.Sign != -1) {
		a.rejected++
		hrRejectedTotal.Inc()
		return
	}
	if rep.Sign > 0 {
		a.plus[rep.Row]++
	} else {
		a.minus[rep.Row]++
	}
	a.n++
}

// N returns the number of reports folded so far.
func (a *HRAggregator) N() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.n
}

// Rejected returns the number of out-of-range reports refused.
func (a *HRAggregator) Rejected() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.rejected
}

// Merge folds another aggregator's counts into this one, exactly: integer
// sign counts from disjoint report streams sum to the counts one
// aggregator seeing both streams would hold, so merged estimates are
// bit-identical to single-node aggregation.
func (a *HRAggregator) Merge(other *HRAggregator) error {
	if other == a {
		return fmt.Errorf("fo: cannot merge an HR aggregator with itself")
	}
	if a.eps != other.eps || a.l != other.l {
		return fmt.Errorf("fo: merging incompatible HR aggregators (eps %v vs %v, L %d vs %d)",
			a.eps, other.eps, a.l, other.l)
	}
	other.mu.Lock()
	plus := append([]int64(nil), other.plus...)
	minus := append([]int64(nil), other.minus...)
	n, rejected := other.n, other.rejected
	other.mu.Unlock()

	a.mu.Lock()
	for j := range plus {
		a.plus[j] += plus[j]
		a.minus[j] += minus[j]
	}
	a.n += n
	a.rejected += rejected
	a.mu.Unlock()
	hrMerges.Inc()
	return nil
}

// fwht applies the in-place fast Walsh–Hadamard transform (Sylvester
// ordering) to a. len(a) must be a power of two. The butterfly is pure
// integer arithmetic, so the transform of integer counts is exact.
func fwht(a []int64) {
	for h := 1; h < len(a); h <<= 1 {
		for i := 0; i < len(a); i += h << 1 {
			for j := i; j < i+h; j++ {
				x, y := a[j], a[j+h]
				a[j], a[j+h] = x+y, x-y
			}
		}
	}
}

// Estimates returns the unbiased frequency estimates for all L domain
// values. With signed[j] = plus[j] − minus[j], the transform
// W = H·signed satisfies E[W[x]] = n·(2p−1)·f_{x−1}, so
// f̂_v = W[v+1] / (n(2p−1)). One FWHT inverts every value at once.
func (a *HRAggregator) Estimates() []float64 {
	defer func(t0 time.Time) { hrEstimateTimer.Observe(time.Since(t0)) }(time.Now())
	a.mu.Lock()
	signed := make([]int64, a.k)
	for j := range signed {
		signed[j] = a.plus[j] - a.minus[j]
	}
	n := a.n
	a.mu.Unlock()

	out := make([]float64, a.l)
	if a.l == 1 {
		out[0] = 1
		return out
	}
	if n == 0 {
		return out
	}
	fwht(signed)
	denom := float64(n) * (2*a.p - 1)
	for v := 0; v < a.l; v++ {
		out[v] = float64(signed[v+1]) / denom
	}
	return out
}

// HRReferenceEstimates is the straightforward O(n + L·K) implementation of
// Φ_HR: fold the reports into signed row counts, then compute each
// transform coordinate by direct summation over the implicit matrix. Both
// paths do exact integer arithmetic before one float division, so the
// kernel (FWHT) estimator must match it bit for bit; tests use it as the
// correctness oracle.
func HRReferenceEstimates(eps float64, L int, reports []HRReport) ([]float64, error) {
	if err := validate(eps, L); err != nil {
		return nil, err
	}
	k := HRPaddedSize(L)
	signed := make([]int64, k)
	n := 0
	for _, rep := range reports {
		if rep.Row < 0 || rep.Row >= k || (rep.Sign != 1 && rep.Sign != -1) {
			continue
		}
		signed[rep.Row] += int64(rep.Sign)
		n++
	}
	out := make([]float64, L)
	if L == 1 {
		out[0] = 1
		return out, nil
	}
	if n == 0 {
		return out, nil
	}
	ee := math.Exp(eps)
	denom := float64(n) * (2*ee/(ee+1) - 1)
	for v := 0; v < L; v++ {
		var w int64
		for j := 0; j < k; j++ {
			w += signed[j] * int64(hadamardSign(j, v+1))
		}
		out[v] = float64(w) / denom
	}
	return out, nil
}
