package fo

import (
	"fmt"
	"math"
)

// RS+FD estimation (Arcolezi et al., arXiv:2205.02648). Every user reports
// every grid: one uniformly-sampled grid carries the true value, the other
// m−1 carry uniform fake data, and all m reports are perturbed at the
// amplified budget ε' = AmplifiedEpsilon(ε, m). The aggregator side therefore
// folds reports with the *standard* ε'-aggregators — the counts are ordinary
// support counts — and only the final inversion differs.
//
// Derivation: the value entering the perturbation for a given grid is the
// true value with probability 1/m and uniform over [0, L) with probability
// (m−1)/m, so the effective input frequency of value v is
// f_v/m + (m−1)/(mL). With the protocol's support probabilities (p, q) at ε',
//
//	P[report supports v] = q + (p−q)·(f_v/m + (m−1)/(mL))
//
// which inverts to the unbiased estimator
//
//	f̂_v = m·(c_v/n − q)/(p−q) − (m−1)/L.

// RSFDPQ returns the protocol's support probabilities (p, q) at the amplified
// budget epsAmp: p is the probability a report supports the user's input
// value, q the probability it supports any other fixed value.
func RSFDPQ(proto Protocol, epsAmp float64, L int) (p, q float64, err error) {
	if err := validate(epsAmp, L); err != nil {
		return 0, 0, err
	}
	ee := math.Exp(epsAmp)
	switch proto {
	case GRR:
		return ee / (ee + float64(L) - 1), 1 / (ee + float64(L) - 1), nil
	case OLH:
		g := float64(OptimalG(epsAmp))
		return ee / (ee + g - 1), 1 / g, nil
	case OUE:
		return 0.5, 1 / (ee + 1), nil
	default:
		return 0, 0, fmt.Errorf("fo: unknown protocol %v", proto)
	}
}

// RSFDEstimates inverts a standard ε'-aggregator's support counts into
// unbiased frequency estimates under RS+FD fake-data mixing. eps is the
// user's end-to-end budget; m the number of grids in the plan; counts the
// aggregator's per-value support counts over n reports for this grid.
func RSFDEstimates(proto Protocol, eps float64, L, m int, counts []int64, n int) ([]float64, error) {
	if m < 1 {
		return nil, fmt.Errorf("fo: RS+FD needs at least one grid, got %d", m)
	}
	if len(counts) != L {
		return nil, fmt.Errorf("fo: RS+FD got %d counts for domain %d", len(counts), L)
	}
	p, q, err := RSFDPQ(proto, AmplifiedEpsilon(eps, m), L)
	if err != nil {
		return nil, err
	}
	est := make([]float64, L)
	if n == 0 {
		return est, nil
	}
	mf := float64(m)
	fake := (mf - 1) / float64(L)
	for v, c := range counts {
		est[v] = mf*(float64(c)/float64(n)-q)/(p-q) - fake
	}
	return est, nil
}

// RSFDVariance returns Var[f̂_v] for one value at f_v = 0 under RS+FD:
// m²·P₀(1−P₀)/(n(p−q)²) with P₀ = q + (p−q)(m−1)/(mL), the support
// probability induced by fake data alone. This is the quantity the grid
// optimizer compares against FELIP's and SPL's noise variances.
func RSFDVariance(proto Protocol, eps float64, L, m, n int) float64 {
	if _, _, err := RSFDPQ(proto, AmplifiedEpsilon(eps, m), L); err != nil {
		return math.Inf(1)
	}
	return RSFDVarianceCont(proto, eps, float64(L), m, n)
}

// RSFDVarianceCont is RSFDVariance in continuous-L form, for optimizers (the
// grid planner's golden-section search) that evaluate the RS+FD objective at
// fractional cell counts. At integer L it matches RSFDVariance exactly —
// the expressions are identical, so the floats agree bit for bit.
func RSFDVarianceCont(proto Protocol, eps, L float64, m, n int) float64 {
	ee := math.Exp(AmplifiedEpsilon(eps, m))
	var p, q float64
	switch proto {
	case GRR:
		p, q = ee/(ee+L-1), 1/(ee+L-1)
	case OLH:
		g := float64(OptimalG(AmplifiedEpsilon(eps, m)))
		p, q = ee/(ee+g-1), 1/g
	case OUE:
		p, q = 0.5, 1/(ee+1)
	default:
		return math.Inf(1)
	}
	mf := float64(m)
	p0 := q + (p-q)*(mf-1)/(mf*L)
	return mf * mf * p0 * (1 - p0) / (float64(n) * (p - q) * (p - q))
}

// EstimateRSFD simulates a full RS+FD round for one grid: values are this
// grid's slot from every user (the true value where this grid was the user's
// sampled one, the uniform fake otherwise — the caller does the sampling so
// the per-user chain stays on one rng), perturbed at ε' and inverted. seed
// makes the round deterministic.
func EstimateRSFD(proto Protocol, eps float64, L, m int, values []int, seed uint64) ([]float64, error) {
	epsAmp := AmplifiedEpsilon(eps, m)
	st, err := rsfdFold(proto, epsAmp, L, values, seed)
	if err != nil {
		return nil, err
	}
	return RSFDEstimates(proto, eps, L, m, st.Counts, st.N)
}

// rsfdFold runs the standard client/aggregator pair at the amplified budget
// and exports the raw support counts.
func rsfdFold(proto Protocol, epsAmp float64, L int, values []int, seed uint64) (PartialState, error) {
	r := NewRand(seed)
	switch proto {
	case GRR:
		c, err := NewGRRClient(epsAmp, L)
		if err != nil {
			return PartialState{}, err
		}
		agg := NewGRRAggregator(epsAmp, L)
		for _, v := range values {
			rep, err := c.Perturb(v, r)
			if err != nil {
				return PartialState{}, err
			}
			agg.Add(rep)
		}
		return agg.ExportState()
	case OLH:
		c, err := NewOLHClient(epsAmp, L)
		if err != nil {
			return PartialState{}, err
		}
		agg := NewOLHAggregator(epsAmp, L)
		for _, v := range values {
			rep, err := c.Perturb(v, r)
			if err != nil {
				return PartialState{}, err
			}
			agg.Add(rep)
		}
		return agg.ExportState()
	case OUE:
		c, err := NewOUEClient(epsAmp, L)
		if err != nil {
			return PartialState{}, err
		}
		agg := NewOUEAggregator(epsAmp, L)
		for _, v := range values {
			rep, err := c.Perturb(v, r)
			if err != nil {
				return PartialState{}, err
			}
			agg.Add(rep)
		}
		return agg.ExportState()
	default:
		return PartialState{}, fmt.Errorf("fo: unknown protocol %v", proto)
	}
}
