package fo

import (
	"strings"
	"testing"
)

// TestOLHStateRoundTripEquivalence: exporting k shards' states and importing
// them into a fresh aggregator must estimate bit-identically to one
// aggregator folding every report — the property the cluster coordinator's
// exact merge rests on.
func TestOLHStateRoundTripEquivalence(t *testing.T) {
	const eps, L, n = 1.2, 96, 3000
	reports := genOLHReports(t, eps, L, n, 17)

	single := NewOLHAggregator(eps, L)
	for _, rep := range reports {
		single.Add(rep)
	}
	want := single.Estimates()

	for _, k := range []int{2, 3, 5} {
		shards := make([]*OLHAggregator, k)
		for i := range shards {
			// Mix modes: streaming shards export pre-folded support, buffered
			// shards must fold at export time.
			if i%2 == 0 {
				shards[i] = NewOLHAggregatorStreaming(eps, L)
			} else {
				shards[i] = NewOLHAggregator(eps, L)
			}
		}
		for j, rep := range reports {
			shards[j%k].Add(rep)
		}

		merged := NewOLHAggregator(eps, L)
		total := 0
		for _, sh := range shards {
			st, err := sh.ExportState()
			if err != nil {
				t.Fatalf("k=%d: export: %v", k, err)
			}
			total += st.N
			if err := merged.ImportState(st); err != nil {
				t.Fatalf("k=%d: import: %v", k, err)
			}
		}
		if total != n || merged.N() != n {
			t.Fatalf("k=%d: states carry %d reports, merged N %d, want %d", k, total, merged.N(), n)
		}
		got := merged.Estimates()
		for v := range got {
			if got[v] != want[v] {
				t.Fatalf("k=%d: estimate[%d] = %v, want %v (state merge not exact)", k, v, got[v], want[v])
			}
		}
	}
}

// TestOLHExportIdempotent: exporting twice must return the same state —
// the shard re-serves its partial state verbatim when the coordinator's
// first fetch is lost.
func TestOLHExportIdempotent(t *testing.T) {
	const eps, L = 1.0, 48
	agg := NewOLHAggregator(eps, L)
	for _, rep := range genOLHReports(t, eps, L, 700, 23) {
		agg.Add(rep)
	}
	first, err := agg.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	second, err := agg.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	if first.N != second.N || first.Rejected != second.Rejected {
		t.Fatalf("repeat export differs: n %d/%d rejected %d/%d", first.N, second.N, first.Rejected, second.Rejected)
	}
	for v := range first.Counts {
		if first.Counts[v] != second.Counts[v] {
			t.Fatalf("repeat export count[%d] %d != %d", v, first.Counts[v], second.Counts[v])
		}
	}
}

func TestGRRStateRoundTripEquivalence(t *testing.T) {
	const eps, L, n = 1.0, 32, 4000
	c, err := NewGRRClient(eps, L)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRand(29)
	single := NewGRRAggregator(eps, L)
	shards := []*GRRAggregator{NewGRRAggregator(eps, L), NewGRRAggregator(eps, L), NewGRRAggregator(eps, L)}
	for i := 0; i < n; i++ {
		rep, err := c.Perturb(i%L, r)
		if err != nil {
			t.Fatal(err)
		}
		single.Add(rep)
		shards[i%3].Add(rep)
	}
	merged := NewGRRAggregator(eps, L)
	for _, sh := range shards {
		st, err := sh.ExportState()
		if err != nil {
			t.Fatal(err)
		}
		if err := merged.ImportState(st); err != nil {
			t.Fatal(err)
		}
	}
	want, got := single.Estimates(), merged.Estimates()
	for v := range got {
		if got[v] != want[v] {
			t.Fatalf("estimate[%d]: merged %v != single %v", v, got[v], want[v])
		}
	}
}

func TestOUEStateRoundTripEquivalence(t *testing.T) {
	const eps, L, n = 1.0, 24, 1500
	c, err := NewOUEClient(eps, L)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRand(31)
	single := NewOUEAggregator(eps, L)
	shards := []*OUEAggregator{NewOUEAggregator(eps, L), NewOUEAggregator(eps, L)}
	for i := 0; i < n; i++ {
		rep, err := c.Perturb(i%L, r)
		if err != nil {
			t.Fatal(err)
		}
		single.Add(rep)
		shards[i%2].Add(rep)
	}
	merged := NewOUEAggregator(eps, L)
	for _, sh := range shards {
		st, err := sh.ExportState()
		if err != nil {
			t.Fatal(err)
		}
		if err := merged.ImportState(st); err != nil {
			t.Fatal(err)
		}
	}
	want, got := single.Estimates(), merged.Estimates()
	for v := range got {
		if got[v] != want[v] {
			t.Fatalf("estimate[%d]: merged %v != single %v", v, got[v], want[v])
		}
	}
}

// TestPartialStateCheckRefusesBadStates: a corrupt or mismatched state must
// be refused whole, leaving the importing aggregator untouched.
func TestPartialStateCheckRefusesBadStates(t *testing.T) {
	agg := NewGRRAggregator(1.0, 8)
	agg.Add(3)
	good, err := agg.ExportState()
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name   string
		mutate func(st *PartialState)
		errSub string
	}{
		{"proto mismatch", func(st *PartialState) { st.Proto = OLH }, "partial state is"},
		{"eps mismatch", func(st *PartialState) { st.Epsilon = 2 }, "epsilon"},
		{"domain mismatch", func(st *PartialState) { st.L = 9 }, "domain"},
		{"short counts", func(st *PartialState) { st.Counts = st.Counts[:4] }, "counts"},
		{"negative count", func(st *PartialState) { st.Counts[0] = -1 }, "outside"},
		{"count above n", func(st *PartialState) { st.Counts[0] = 99 }, "outside"},
		{"negative n", func(st *PartialState) { st.N = -1 }, "negative"},
		{"grr sum mismatch", func(st *PartialState) { st.N = 2 }, "sum"},
	}
	for _, tc := range cases {
		st := good
		st.Counts = append([]int64(nil), good.Counts...)
		tc.mutate(&st)
		target := NewGRRAggregator(1.0, 8)
		err := target.ImportState(st)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.errSub) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.errSub)
		}
		if target.N() != 0 {
			t.Errorf("%s: failed import mutated the aggregator (N=%d)", tc.name, target.N())
		}
	}
}
