package fo

import (
	"math"
	"testing"
)

func TestParseReportMode(t *testing.T) {
	cases := []struct {
		in   string
		want ReportMode
		ok   bool
	}{
		{"", ModeFELIP, true},
		{"FELIP", ModeFELIP, true},
		{"SPL", ModeSPL, true},
		{"RS+FD", ModeRSFD, true},
		{"RSFD", ModeRSFD, true},
		{"nope", ModeFELIP, false},
	}
	for _, tc := range cases {
		got, err := ParseReportMode(tc.in)
		if tc.ok && (err != nil || got != tc.want) {
			t.Errorf("ParseReportMode(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
		if !tc.ok && err == nil {
			t.Errorf("ParseReportMode(%q) accepted", tc.in)
		}
	}
	for _, m := range []ReportMode{ModeFELIP, ModeSPL, ModeRSFD} {
		back, err := ParseReportMode(m.String())
		if err != nil || back != m {
			t.Errorf("round trip %v: got %v, %v", m, back, err)
		}
	}
}

func TestAmplifiedEpsilon(t *testing.T) {
	if got := AmplifiedEpsilon(1.5, 1); math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("m=1 must not amplify: got %v", got)
	}
	prev := 0.0
	for m := 1; m <= 8; m++ {
		amp := AmplifiedEpsilon(1, m)
		if amp <= prev {
			t.Fatalf("amplified epsilon must increase in m: m=%d got %v after %v", m, amp, prev)
		}
		prev = amp
	}
	// ε' must stay below the naive m·ε bound that full composition would need.
	if amp := AmplifiedEpsilon(1, 4); amp >= 4 {
		t.Fatalf("amplification exceeded composition bound: %v", amp)
	}
}

func TestReportEpsilon(t *testing.T) {
	if got := ReportEpsilon(ModeFELIP, 2, 4); got != 2 {
		t.Errorf("FELIP report epsilon = %v, want 2", got)
	}
	if got := ReportEpsilon(ModeSPL, 2, 4); got != 0.5 {
		t.Errorf("SPL report epsilon = %v, want 0.5", got)
	}
	if got := ReportEpsilon(ModeRSFD, 2, 4); math.Abs(got-AmplifiedEpsilon(2, 4)) > 1e-15 {
		t.Errorf("RS+FD report epsilon = %v, want amplified", got)
	}
}

func TestRSFDPQ(t *testing.T) {
	for _, proto := range []Protocol{GRR, OLH, OUE} {
		p, q, err := RSFDPQ(proto, 1.2, 16)
		if err != nil {
			t.Fatalf("%v: %v", proto, err)
		}
		if !(p > q) || p <= 0 || q <= 0 || p > 1 || q > 1 {
			t.Fatalf("%v: implausible (p,q) = (%v,%v)", proto, p, q)
		}
	}
	if _, _, err := RSFDPQ(GRR, -1, 16); err == nil {
		t.Fatal("negative epsilon accepted")
	}
}

// TestRSFDUnbiased simulates the full RS+FD round for one grid of a plan of
// m grids — sampling the real grid per user, fake data otherwise — and checks
// the inverted estimates land on the true frequencies.
func TestRSFDUnbiased(t *testing.T) {
	const (
		n   = 200_000
		L   = 8
		m   = 3
		eps = 1.0
	)
	// True population: value v with weight v+1 (normalized).
	truth := make([]float64, L)
	var wsum float64
	for v := 0; v < L; v++ {
		truth[v] = float64(v + 1)
		wsum += truth[v]
	}
	for v := range truth {
		truth[v] /= wsum
	}
	for _, proto := range []Protocol{GRR, OLH, OUE} {
		r := NewRand(99)
		values := make([]int, n)
		for i := range values {
			// Draw the user's true value from the skewed distribution.
			u := r.Float64() * wsum
			v := 0
			for acc := truth[0] * wsum; u > acc && v < L-1; {
				v++
				acc += truth[v] * wsum
			}
			if r.IntN(m) == 0 {
				values[i] = v // this grid is the user's sampled real grid
			} else {
				values[i] = r.IntN(L) // uniform fake data
			}
		}
		est, err := EstimateRSFD(proto, eps, L, m, values, 7)
		if err != nil {
			t.Fatalf("%v: %v", proto, err)
		}
		for v := 0; v < L; v++ {
			if math.Abs(est[v]-truth[v]) > 0.05 {
				t.Errorf("%v: est[%d] = %v, truth %v", proto, v, est[v], truth[v])
			}
		}
	}
}

func TestRSFDVariancePositive(t *testing.T) {
	for _, proto := range []Protocol{GRR, OLH, OUE} {
		v := RSFDVariance(proto, 1, 16, 3, 10_000)
		if !(v > 0) || math.IsInf(v, 0) {
			t.Errorf("%v: variance %v", proto, v)
		}
		// More grids → more fake data and a bigger inversion factor; variance
		// must not shrink with m at fixed everything else.
		if v2 := RSFDVariance(proto, 1, 16, 6, 10_000); v2 <= v {
			t.Errorf("%v: variance should grow with m: m=3 %v, m=6 %v", proto, v, v2)
		}
	}
}

func TestRSFDEstimatesValidation(t *testing.T) {
	if _, err := RSFDEstimates(GRR, 1, 4, 0, make([]int64, 4), 10); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := RSFDEstimates(GRR, 1, 4, 2, make([]int64, 3), 10); err == nil {
		t.Error("short counts accepted")
	}
	est, err := RSFDEstimates(GRR, 1, 4, 2, make([]int64, 4), 0)
	if err != nil || len(est) != 4 {
		t.Errorf("n=0: %v, %v", est, err)
	}
}
