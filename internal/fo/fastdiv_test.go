package fo

import "testing"

// TestFastModExact pins the multiply-based reduction to the hardware %
// operator for every divisor the OLH kernel can see (g ∈ [2, 255], powers of
// two included) across boundary and pseudo-random 64-bit numerators. The
// parallel kernel's bit-identity to the sequential path rests on this.
func TestFastModExact(t *testing.T) {
	r := NewRand(0xFA57D1F)
	for d := uint64(1); d <= 255; d++ {
		fm := newFastMod(d)
		check := func(x uint64) {
			t.Helper()
			if got, want := fm.mod(x), x%d; got != want {
				t.Fatalf("fastMod(%d) of %#x = %d, want %d", d, x, got, want)
			}
		}
		// Boundaries: around 0, around multiples of d near 2^64, extremes.
		for _, x := range []uint64{0, 1, d - 1, d, d + 1, ^uint64(0), ^uint64(0) - 1} {
			check(x)
		}
		kMax := ^uint64(0) / d
		for _, k := range []uint64{1, 2, kMax - 1, kMax} {
			base := k * d
			check(base)
			check(base - 1)
			if base+1 != 0 {
				check(base + 1)
			}
		}
		// Full residue sweep plus random draws.
		for x := uint64(0); x < 2*d+2; x++ {
			check(x)
		}
		for i := 0; i < 2000; i++ {
			check(r.Uint64())
		}
	}
}

func TestFastModPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("newFastMod(0) did not panic")
		}
	}()
	newFastMod(0)
}
