package fo

import (
	"math"
	"testing"
)

func TestHRPaddedSize(t *testing.T) {
	cases := map[int]int{
		1: 2, 2: 4, 3: 4, 4: 8, 7: 8, 8: 16,
		1023: 1024, 1024: 2048, 100000: 131072, 1 << 17: 1 << 18,
	}
	for L, want := range cases {
		if got := HRPaddedSize(L); got != want {
			t.Errorf("HRPaddedSize(%d) = %d, want %d", L, got, want)
		}
	}
}

// The sign channel satisfies ε-LDP: for any value and any report, the two
// possible sign outputs differ in probability by exactly e^ε.
func TestHRSatisfiesLDP(t *testing.T) {
	const (
		eps    = 1.0
		L      = 6
		trials = 200000
	)
	c, err := NewHRClient(eps, L)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRand(51)
	// Count kept vs flipped signs for one value: the keep rate must be
	// p = e^ε/(e^ε+1) within sampling noise.
	kept := 0
	for i := 0; i < trials; i++ {
		rep, err := c.Perturb(3, r)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Sign == hadamardSign(rep.Row, 4) {
			kept++
		}
	}
	p := math.Exp(eps) / (math.Exp(eps) + 1)
	if got := float64(kept) / trials; math.Abs(got-p) > 0.005 {
		t.Errorf("keep rate %v, want %v", got, p)
	}
	if _, err := c.Perturb(L, r); err == nil {
		t.Error("out-of-domain value accepted")
	}
}

// The estimator is unbiased: over many users drawn from a known
// distribution, estimates converge to the true frequencies.
func TestHREstimateAccuracy(t *testing.T) {
	const (
		eps = 1.2
		L   = 10
		n   = 120000
	)
	truth := []float64{0.30, 0.22, 0.15, 0.10, 0.08, 0.06, 0.04, 0.03, 0.015, 0.005}
	c, err := NewHRClient(eps, L)
	if err != nil {
		t.Fatal(err)
	}
	agg := NewHRAggregator(eps, L)
	r := NewRand(97)
	for i := 0; i < n; i++ {
		u := r.Float64()
		v := 0
		for cum := truth[0]; v < L-1 && u >= cum; cum += truth[v] {
			v++
		}
		rep, err := c.Perturb(v, r)
		if err != nil {
			t.Fatal(err)
		}
		agg.Add(rep)
	}
	if agg.N() != n {
		t.Fatalf("folded %d reports, want %d", agg.N(), n)
	}
	est := agg.Estimates()
	sd := math.Sqrt(HRVariance(eps, n))
	for v := range truth {
		if math.Abs(est[v]-truth[v]) > 5*sd {
			t.Errorf("f̂[%d] = %v, truth %v (|Δ| > 5σ = %v)", v, est[v], truth[v], 5*sd)
		}
	}
}

// The FWHT estimator must match the direct-summation reference bit for bit:
// both paths are exact integer arithmetic up to the single final division.
func TestHREstimatesMatchReferenceBitwise(t *testing.T) {
	for _, L := range []int{2, 3, 17, 100, 1000} {
		const eps = 0.8
		c, err := NewHRClient(eps, L)
		if err != nil {
			t.Fatal(err)
		}
		agg := NewHRAggregator(eps, L)
		r := NewRand(uint64(L))
		reports := make([]HRReport, 0, 5000)
		for i := 0; i < 5000; i++ {
			rep, err := c.Perturb(i%L, r)
			if err != nil {
				t.Fatal(err)
			}
			agg.Add(rep)
			reports = append(reports, rep)
		}
		want, err := HRReferenceEstimates(eps, L, reports)
		if err != nil {
			t.Fatal(err)
		}
		got := agg.Estimates()
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("L=%d: FWHT estimate[%d] = %v, reference %v (not bit-identical)", L, v, got[v], want[v])
			}
		}
	}
}

// Empirical variance of the estimator matches the closed form within
// sampling tolerance.
func TestHREmpiricalVarianceMatchesFormula(t *testing.T) {
	const (
		eps    = 1.0
		L      = 8
		n      = 4000
		rounds = 120
		v      = 2
	)
	var sum, sumSq float64
	for round := 0; round < rounds; round++ {
		c, err := NewHRClient(eps, L)
		if err != nil {
			t.Fatal(err)
		}
		agg := NewHRAggregator(eps, L)
		r := NewRand(uint64(1000 + round))
		for i := 0; i < n; i++ {
			rep, err := c.Perturb(v, r)
			if err != nil {
				t.Fatal(err)
			}
			agg.Add(rep)
		}
		est := agg.Estimates()[v]
		sum += est
		sumSq += est * est
	}
	mean := sum / rounds
	variance := sumSq/rounds - mean*mean
	want := HRVariance(eps, n)
	if math.Abs(mean-1) > 4*math.Sqrt(want/rounds) {
		t.Errorf("mean estimate %v, want ~1", mean)
	}
	if variance < want/2 || variance > want*2 {
		t.Errorf("empirical variance %v, formula %v", variance, want)
	}
}

// Merge is exact: two aggregators over disjoint streams merge to the state
// one aggregator over the union holds, bit for bit.
func TestHRMergeBitIdentical(t *testing.T) {
	const (
		eps = 0.9
		L   = 300
		n   = 6000
	)
	c, err := NewHRClient(eps, L)
	if err != nil {
		t.Fatal(err)
	}
	whole := NewHRAggregator(eps, L)
	left := NewHRAggregator(eps, L)
	right := NewHRAggregator(eps, L)
	r := NewRand(77)
	for i := 0; i < n; i++ {
		rep, err := c.Perturb(i%L, r)
		if err != nil {
			t.Fatal(err)
		}
		whole.Add(rep)
		if i%2 == 0 {
			left.Add(rep)
		} else {
			right.Add(rep)
		}
	}
	if err := left.Merge(right); err != nil {
		t.Fatal(err)
	}
	if left.N() != whole.N() {
		t.Fatalf("merged N = %d, want %d", left.N(), whole.N())
	}
	a, b := left.Estimates(), whole.Estimates()
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("merged estimate[%d] = %v, single %v", v, a[v], b[v])
		}
	}
	if err := left.Merge(left); err == nil {
		t.Error("self-merge accepted")
	}
	if err := left.Merge(NewHRAggregator(eps, L+1)); err == nil {
		t.Error("merge of incompatible L accepted")
	}
	if err := left.Merge(NewHRAggregator(eps+0.1, L)); err == nil {
		t.Error("merge of incompatible eps accepted")
	}
}

// State export/import round-trips exactly, and the protocol-aware Check
// refuses corrupted shapes.
func TestHRStateRoundTrip(t *testing.T) {
	const (
		eps = 1.3
		L   = 50
		n   = 3000
	)
	c, err := NewHRClient(eps, L)
	if err != nil {
		t.Fatal(err)
	}
	src := NewHRAggregator(eps, L)
	r := NewRand(13)
	for i := 0; i < n; i++ {
		rep, err := c.Perturb(i%L, r)
		if err != nil {
			t.Fatal(err)
		}
		src.Add(rep)
	}
	st, err := src.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	if st.Proto != HR || st.N != n || len(st.Counts) != 2*HRPaddedSize(L) {
		t.Fatalf("exported state shape: proto=%v n=%d len=%d", st.Proto, st.N, len(st.Counts))
	}
	if err := st.Check(HR, eps, L); err != nil {
		t.Fatal(err)
	}

	dst := NewHRAggregator(eps, L)
	if err := dst.ImportState(st); err != nil {
		t.Fatal(err)
	}
	a, b := src.Estimates(), dst.Estimates()
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("round-tripped estimate[%d] = %v, want %v", v, b[v], a[v])
		}
	}

	bad := st
	bad.Counts = st.Counts[:L]
	if err := dst.ImportState(bad); err == nil {
		t.Error("truncated counts accepted")
	}
	bad = st
	bad.N = st.N + 1
	if err := dst.ImportState(bad); err == nil {
		t.Error("count-sum mismatch accepted")
	}
}

// Out-of-range reports are refused and counted, never folded.
func TestHRRejectsBadReports(t *testing.T) {
	agg := NewHRAggregator(1, 10)
	agg.Add(HRReport{Row: -1, Sign: 1})
	agg.Add(HRReport{Row: HRPaddedSize(10), Sign: 1})
	agg.Add(HRReport{Row: 0, Sign: 0})
	agg.Add(HRReport{Row: 0, Sign: 2})
	if agg.N() != 0 || agg.Rejected() != 4 {
		t.Fatalf("n=%d rejected=%d, want 0/4", agg.N(), agg.Rejected())
	}
	agg.Add(HRReport{Row: 0, Sign: -1})
	if agg.N() != 1 || agg.Rejected() != 4 {
		t.Fatalf("valid report after rejects: n=%d rejected=%d", agg.N(), agg.Rejected())
	}
}

func TestHRSingletonAndEmpty(t *testing.T) {
	agg := NewHRAggregator(1, 1)
	agg.Add(HRReport{Row: 0, Sign: 1})
	if est := agg.Estimates(); len(est) != 1 || est[0] != 1 {
		t.Fatalf("singleton estimates = %v", est)
	}
	empty := NewHRAggregator(1, 5)
	for _, e := range empty.Estimates() {
		if e != 0 {
			t.Fatalf("empty aggregator estimates = %v", empty.Estimates())
		}
	}
}

// The HR variance formula sits where the AFO threshold commentary says it
// does: within 2× of OLH for ε ≤ ln(3+2√2), beyond it afterwards, and
// independent of L.
func TestHRVarianceVsOLH(t *testing.T) {
	const n = 10000
	crossover := math.Log(3 + 2*math.Sqrt2)
	for _, eps := range []float64{0.3, 1.0, crossover - 0.01} {
		if ratio := HRVariance(eps, n) / OLHVariance(eps, n); ratio > HRMaxVarianceRatio {
			t.Errorf("eps=%v: HR/OLH variance ratio %v > %v", eps, ratio, HRMaxVarianceRatio)
		}
	}
	for _, eps := range []float64{crossover + 0.01, 3.0} {
		if ratio := HRVariance(eps, n) / OLHVariance(eps, n); ratio <= HRMaxVarianceRatio {
			t.Errorf("eps=%v: HR/OLH variance ratio %v should exceed %v", eps, ratio, HRMaxVarianceRatio)
		}
	}
	if HRVariance(1, n) != HR.Variance(1, 1<<17, n) {
		t.Error("Protocol.Variance(HR) does not dispatch to HRVariance")
	}
}
