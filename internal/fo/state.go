package fo

import (
	"fmt"

	"felip/internal/metrics"
)

// PartialState is the exportable aggregation state of one frequency-oracle
// aggregator: the exact integer count vector the estimator is computed from
// (per-value support counts for OLH, per-value report counts for GRR, per-bit
// counts for OUE), together with the report count it was folded from. It is
// the unit a shard server ships to the merge coordinator at round finalize.
//
// Partial states are exported *before* estimation on purpose: support-count
// folding commutes, so integer count vectors from disjoint report streams sum
// losslessly — an aggregator that imports every shard's state estimates
// float-for-float identically to one that saw every report itself. Exporting
// after estimation would not compose: the per-shard normalizations (divide by
// each shard's n) are not mergeable without reweighting error.
//
// A PartialState carries no more information than the ε-LDP reports it was
// folded from (it is a deterministic function of them), so shipping it to the
// coordinator consumes no additional privacy budget.
type PartialState struct {
	// Proto is the protocol the counts belong to.
	Proto Protocol
	// Epsilon is the privacy budget the reports were perturbed under.
	Epsilon float64
	// L is the domain size; Counts has length L, except for HR where it has
	// length 2·HRPaddedSize(L) (interleaved per-row plus/minus sign counts).
	L int
	// N is the number of reports folded into Counts.
	N int
	// Rejected is the number of out-of-range reports the aggregator refused;
	// it rides along so the coordinator can surface shard-side rejects.
	Rejected int
	// Counts is the integer count vector. For GRR it is the per-value report
	// counts (summing to N); for OLH the per-value hash-support counts; for
	// OUE the per-position bit counts; for HR the interleaved per-row sign
	// counts (Counts[2j] = +1 reports on row j, Counts[2j+1] = −1 reports).
	Counts []int64
}

// Check validates the state against the importing aggregator's parameters
// without mutating anything. Importers call it before touching their counts
// so a bad state is refused whole.
func (st PartialState) Check(proto Protocol, eps float64, L int) error {
	if st.Proto != proto {
		return fmt.Errorf("fo: partial state is %v, aggregator is %v", st.Proto, proto)
	}
	if st.Epsilon != eps {
		return fmt.Errorf("fo: partial state epsilon %v, aggregator epsilon %v", st.Epsilon, eps)
	}
	if st.L != L {
		return fmt.Errorf("fo: partial state domain %d, aggregator domain %d", st.L, L)
	}
	// HR counts live in the padded Hadamard order, two counters per row;
	// every other protocol carries one counter per domain value.
	want := L
	if proto == HR {
		want = 2 * HRPaddedSize(L)
	}
	if len(st.Counts) != want {
		return fmt.Errorf("fo: partial state carries %d counts for domain %d (%v wants %d)",
			len(st.Counts), L, proto, want)
	}
	if st.N < 0 || st.Rejected < 0 {
		return fmt.Errorf("fo: partial state with negative report counts (n=%d rejected=%d)", st.N, st.Rejected)
	}
	var sum int64
	for v, c := range st.Counts {
		if c < 0 || c > int64(st.N) {
			return fmt.Errorf("fo: partial state count[%d] = %d outside [0, %d]", v, c, st.N)
		}
		sum += c
	}
	// Each GRR report increments exactly one cell, and each HR report
	// exactly one of its row's two sign counters, so the counts must account
	// for exactly the claimed reports. (OLH/OUE reports may support any
	// number of values, so only the per-value bound applies there.)
	if (proto == GRR || proto == HR) && sum != int64(st.N) {
		return fmt.Errorf("fo: %v partial state counts sum to %d for %d reports", proto, sum, st.N)
	}
	return nil
}

// Equal reports whether two partial states carry the identical aggregation
// state — same protocol, budget, domain, report counts, and count vector.
// Archive round-trip tests use it to assert a snapshot restores the exact
// integer state that was written.
func (st PartialState) Equal(other PartialState) bool {
	if st.Proto != other.Proto || st.Epsilon != other.Epsilon ||
		st.L != other.L || st.N != other.N || st.Rejected != other.Rejected ||
		len(st.Counts) != len(other.Counts) {
		return false
	}
	for i, c := range st.Counts {
		if c != other.Counts[i] {
			return false
		}
	}
	return true
}

// clone returns a defensive copy of a count vector (nil-safe, always length L).
func cloneCounts(counts []int64, L int) []int64 {
	out := make([]int64, L)
	copy(out, counts)
	return out
}

// ExportState snapshots the aggregator's exact partial-aggregate state. The
// caller must have stopped feeding the aggregator (a sealed shard round).
func (a *GRRAggregator) ExportState() (PartialState, error) {
	return PartialState{
		Proto:    GRR,
		Epsilon:  a.eps,
		L:        a.l,
		N:        a.n,
		Rejected: a.rejected,
		Counts:   cloneCounts(a.counts, a.l),
	}, nil
}

// ImportState folds a shard's exported state into this aggregator, exactly:
// after the import it estimates as if it had received every report the shard
// did. The state is validated whole before any count is touched.
func (a *GRRAggregator) ImportState(st PartialState) error {
	if err := st.Check(GRR, a.eps, a.l); err != nil {
		return err
	}
	for v, c := range st.Counts {
		a.counts[v] += c
	}
	a.n += st.N
	a.rejected += st.Rejected
	return nil
}

// ExportState snapshots the aggregator's exact partial-aggregate state. The
// caller must have stopped feeding the aggregator (a sealed shard round).
func (a *OUEAggregator) ExportState() (PartialState, error) {
	return PartialState{
		Proto:    OUE,
		Epsilon:  a.eps,
		L:        a.l,
		N:        a.n,
		Rejected: a.rejected,
		Counts:   cloneCounts(a.counts, a.l),
	}, nil
}

// ImportState folds a shard's exported state into this aggregator, exactly.
// The state is validated whole before any count is touched.
func (a *OUEAggregator) ImportState(st PartialState) error {
	if err := st.Check(OUE, a.eps, a.l); err != nil {
		return err
	}
	for v, c := range st.Counts {
		a.counts[v] += c
	}
	a.n += st.N
	a.rejected += st.Rejected
	return nil
}

// ExportState snapshots the aggregator's exact partial-aggregate state: the
// interleaved (plus, minus) sign counts over the padded Hadamard order. The
// caller must have stopped feeding the aggregator (a sealed shard round).
func (a *HRAggregator) ExportState() (PartialState, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	counts := make([]int64, 2*a.k)
	for j := 0; j < a.k; j++ {
		counts[2*j] = a.plus[j]
		counts[2*j+1] = a.minus[j]
	}
	return PartialState{
		Proto:    HR,
		Epsilon:  a.eps,
		L:        a.l,
		N:        a.n,
		Rejected: a.rejected,
		Counts:   counts,
	}, nil
}

// ImportState folds a shard's exported sign counts into this aggregator,
// exactly: integer sign counts from disjoint report streams sum to the
// counts one aggregator folding both streams would hold, so the merged
// estimates are bit-identical to single-node folding. The state is
// validated whole before any count is touched.
func (a *HRAggregator) ImportState(st PartialState) error {
	if err := st.Check(HR, a.eps, a.l); err != nil {
		return err
	}
	a.mu.Lock()
	for j := 0; j < a.k; j++ {
		a.plus[j] += st.Counts[2*j]
		a.minus[j] += st.Counts[2*j+1]
	}
	a.n += st.N
	a.rejected += st.Rejected
	a.mu.Unlock()
	hrStateImports.Inc()
	return nil
}

// olhStateImports counts partial-state imports process-wide (the cluster
// coordinator's merge path; Merge covers in-process shard merges).
var olhStateImports = metrics.GetCounter("fo.olh.state_imports")

// ExportState folds any pending reports and snapshots the support-count
// state. Like Merge, it must not run concurrently with an Estimates call on
// the same aggregator; the shard seals its round before exporting.
func (a *OLHAggregator) ExportState() (PartialState, error) {
	a.mu.Lock()
	batch := a.pending
	a.pending = nil
	a.inflight += len(batch)
	pre, fm := a.tablesLocked()
	a.mu.Unlock()
	a.foldBatch(batch, pre, fm)

	a.mu.Lock()
	defer a.mu.Unlock()
	if a.inflight > 0 {
		return PartialState{}, fmt.Errorf("fo: cannot export an OLH aggregator with a fold in flight")
	}
	return PartialState{
		Proto:    OLH,
		Epsilon:  a.eps,
		L:        a.l,
		N:        a.folded,
		Rejected: a.rejected,
		Counts:   cloneCounts(a.support, a.l),
	}, nil
}

// ImportState folds a shard's exported support counts into this aggregator,
// exactly: integer support counts from disjoint report streams sum to the
// counts one aggregator folding both streams would hold, so the merged
// estimates are bit-identical to single-node folding. The state is validated
// whole before any count is touched.
func (a *OLHAggregator) ImportState(st PartialState) error {
	if err := st.Check(OLH, a.eps, a.l); err != nil {
		return err
	}
	a.mu.Lock()
	if a.support == nil {
		a.support = make([]int64, a.l)
	}
	for v, c := range st.Counts {
		a.support[v] += c
	}
	a.folded += st.N
	a.rejected += st.Rejected
	a.mu.Unlock()
	olhStateImports.Inc()
	return nil
}
