package fo

import (
	"fmt"
	"math"
)

// ReportMode selects how a multidimensional population spends its privacy
// budget across the plan's m grids (paper §3; Arcolezi et al.,
// arXiv:2205.02648 for RS+FD).
//
// The three modes trade reports-per-user against per-report budget:
//
//   - FELIP divides the *users*: each user is assigned one grid and reports
//     only that grid at the full ε. One report per user, n/m users per grid.
//   - SPL divides the *budget*: each user reports every grid, each report
//     perturbed at ε/m. m reports per user, n users per grid.
//   - RS+FD samples one grid uniformly per user to carry the true value and
//     fills the other m−1 grids with uniform fake data; every report is
//     perturbed at the amplified budget ε' = ln(m·(e^ε−1)+1). m reports per
//     user, n users per grid, and the estimator inverts the fake-data mix.
type ReportMode uint8

const (
	// ModeFELIP is the paper's user-division design (the default).
	ModeFELIP ReportMode = iota
	// ModeSPL splits the budget ε/m across all grids.
	ModeSPL
	// ModeRSFD is random sampling plus fake data at amplified ε'.
	ModeRSFD
)

// String returns the conventional mode name.
func (m ReportMode) String() string {
	switch m {
	case ModeFELIP:
		return "FELIP"
	case ModeSPL:
		return "SPL"
	case ModeRSFD:
		return "RS+FD"
	default:
		return fmt.Sprintf("ReportMode(%d)", uint8(m))
	}
}

// ParseReportMode parses a wire-level mode name. The empty string is FELIP:
// v1 peers never sent a mode, and every v1 artifact (JSON report, WAL record,
// shard checksum) must keep meaning the FELIP path.
func ParseReportMode(s string) (ReportMode, error) {
	switch s {
	case "", "FELIP":
		return ModeFELIP, nil
	case "SPL":
		return ModeSPL, nil
	case "RS+FD", "RSFD":
		return ModeRSFD, nil
	default:
		return ModeFELIP, fmt.Errorf("fo: unknown report mode %q", s)
	}
}

// AmplifiedEpsilon returns RS+FD's per-report budget ε' = ln(m·(e^ε−1)+1)
// (Arcolezi et al., Thm 1): because only one of the m reports carries the
// true value and the rest are data-independent fakes, each report may be
// perturbed at ε' > ε while the user's end-to-end guarantee stays ε.
func AmplifiedEpsilon(eps float64, m int) float64 {
	return math.Log(float64(m)*(math.Exp(eps)-1) + 1)
}

// ReportEpsilon returns the budget each individual report is perturbed at
// under the given mode, for a plan of m grids and an end-to-end budget eps.
func ReportEpsilon(mode ReportMode, eps float64, m int) float64 {
	switch mode {
	case ModeSPL:
		return eps / float64(m)
	case ModeRSFD:
		return AmplifiedEpsilon(eps, m)
	default:
		return eps
	}
}
