package fo

import (
	"math"
	"sync"
	"testing"
)

// genOLHReports perturbs a deterministic value stream into OLH reports.
func genOLHReports(t testing.TB, eps float64, L, n int, seed uint64) []OLHReport {
	t.Helper()
	c, err := NewOLHClient(eps, L)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRand(seed)
	reports := make([]OLHReport, n)
	for i := range reports {
		rep, err := c.Perturb(i%L, r)
		if err != nil {
			t.Fatal(err)
		}
		reports[i] = rep
	}
	return reports
}

// TestOLHKernelMatchesReferenceBitForBit is the contract that keeps every
// paper-scale experiment output unchanged: the parallel fold must reproduce
// the pre-kernel sequential estimates exactly, not approximately.
func TestOLHKernelMatchesReferenceBitForBit(t *testing.T) {
	for _, tc := range []struct {
		eps  float64
		L, n int
	}{
		{1.0, 64, 3000},
		{0.5, 257, 1000}, // L > 256 exercises multi-chunk folds
		{2.0, 1, 100},    // degenerate single-value domain
		{4.0, 33, 500},   // larger g
	} {
		reports := genOLHReports(t, tc.eps, tc.L, tc.n, 42)
		want := OLHReferenceEstimates(tc.eps, tc.L, reports)

		agg := NewOLHAggregator(tc.eps, tc.L)
		for _, rep := range reports {
			agg.Add(rep)
		}
		got := agg.Estimates()
		if len(got) != len(want) {
			t.Fatalf("eps=%v L=%d: length %d, want %d", tc.eps, tc.L, len(got), len(want))
		}
		for v := range got {
			if got[v] != want[v] {
				t.Fatalf("eps=%v L=%d: estimate[%d] = %v, want %v (not bit-identical)",
					tc.eps, tc.L, v, got[v], want[v])
			}
		}
	}
}

// TestOLHStreamingMatchesBuffered pins the fold-at-Add mode to the buffered
// mode bit for bit, including a batch-boundary-straddling report count.
func TestOLHStreamingMatchesBuffered(t *testing.T) {
	const eps, L = 1.0, 96
	n := 2*streamFoldBatch + 17
	reports := genOLHReports(t, eps, L, n, 7)

	buf := NewOLHAggregator(eps, L)
	str := NewOLHAggregatorStreaming(eps, L)
	for _, rep := range reports {
		buf.Add(rep)
		str.Add(rep)
	}
	if got, want := str.N(), buf.N(); got != want {
		t.Fatalf("streaming N = %d, buffered N = %d", got, want)
	}
	want := buf.Estimates()
	got := str.Estimates()
	for v := range got {
		if got[v] != want[v] {
			t.Fatalf("estimate[%d]: streaming %v != buffered %v", v, got[v], want[v])
		}
	}
}

// TestOLHMergeEquivalence is the merge-equivalence property: sharding the
// report stream k ways, folding some shards eagerly, and merging must be
// bit-for-bit the same as one aggregator seeing every report.
func TestOLHMergeEquivalence(t *testing.T) {
	const eps, L, n = 1.2, 128, 4000
	reports := genOLHReports(t, eps, L, n, 99)

	single := NewOLHAggregator(eps, L)
	for _, rep := range reports {
		single.Add(rep)
	}
	want := single.Estimates()

	for _, k := range []int{2, 3, 7} {
		shards := make([]*OLHAggregator, k)
		for i := range shards {
			// Mix modes: even shards stream (pre-folded state), odd buffer.
			if i%2 == 0 {
				shards[i] = NewOLHAggregatorStreaming(eps, L)
			} else {
				shards[i] = NewOLHAggregator(eps, L)
			}
		}
		for j, rep := range reports {
			shards[j%k].Add(rep)
		}
		// Fold one shard completely before merging: Merge must combine
		// support vectors and pending buffers interchangeably.
		shards[0].Estimates()

		merged := NewOLHAggregator(eps, L)
		for _, sh := range shards {
			if err := merged.Merge(sh); err != nil {
				t.Fatalf("k=%d: merge: %v", k, err)
			}
		}
		if got, want := merged.N(), n; got != want {
			t.Fatalf("k=%d: merged N = %d, want %d", k, got, want)
		}
		got := merged.Estimates()
		for v := range got {
			if got[v] != want[v] {
				t.Fatalf("k=%d: estimate[%d] = %v, want %v (merge not exact)", k, v, got[v], want[v])
			}
		}
	}
}

func TestOLHMergeRejectsMismatch(t *testing.T) {
	a := NewOLHAggregator(1.0, 64)
	if err := a.Merge(a); err == nil {
		t.Error("self-merge accepted")
	}
	if err := a.Merge(NewOLHAggregator(1.0, 65)); err == nil {
		t.Error("L mismatch accepted")
	}
	if err := a.Merge(NewOLHAggregator(1.5, 64)); err == nil {
		t.Error("eps mismatch accepted")
	}
}

// TestOLHAggregatorRejectsOutOfRange: a perturbed value ≥ g can never match
// any hash, so folding it would silently bias every estimate downward; it
// must surface in Rejected and stay out of N.
func TestOLHAggregatorRejectsOutOfRange(t *testing.T) {
	agg := NewOLHAggregator(1.0, 32) // g = ⌈e⌉+1 = 4
	agg.Add(OLHReport{Seed: 1, Value: 200})
	agg.Add(OLHReport{Seed: 2, Value: 3})
	if got := agg.N(); got != 1 {
		t.Errorf("N = %d, want 1", got)
	}
	if got := agg.Rejected(); got != 1 {
		t.Errorf("Rejected = %d, want 1", got)
	}
}

func TestGRRAggregatorRejectsOutOfRange(t *testing.T) {
	agg := NewGRRAggregator(1.0, 8)
	agg.Add(-1)
	agg.Add(8)
	agg.Add(3)
	if got := agg.N(); got != 1 {
		t.Errorf("N = %d, want 1", got)
	}
	if got := agg.Rejected(); got != 2 {
		t.Errorf("Rejected = %d, want 2", got)
	}
	est := agg.Estimates()
	if len(est) != 8 {
		t.Fatalf("estimates length %d", len(est))
	}
	for _, e := range est {
		if math.IsNaN(e) || math.IsInf(e, 0) {
			t.Fatalf("estimate not finite: %v", est)
		}
	}
}

func TestOUEAggregatorRejectsMismatchedLength(t *testing.T) {
	c, err := NewOUEClient(1.0, 16)
	if err != nil {
		t.Fatal(err)
	}
	cBig, err := NewOUEClient(1.0, 17)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRand(5)
	good, err := c.Perturb(3, r)
	if err != nil {
		t.Fatal(err)
	}
	bad, err := cBig.Perturb(3, r)
	if err != nil {
		t.Fatal(err)
	}
	agg := NewOUEAggregator(1.0, 16)
	agg.Add(good)
	agg.Add(bad)
	if got := agg.N(); got != 1 {
		t.Errorf("N = %d, want 1", got)
	}
	if got := agg.Rejected(); got != 1 {
		t.Errorf("Rejected = %d, want 1", got)
	}
}

func TestGRRMergeEquivalence(t *testing.T) {
	const eps, L, n = 1.0, 32, 5000
	c, err := NewGRRClient(eps, L)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRand(11)
	single := NewGRRAggregator(eps, L)
	shards := []*GRRAggregator{NewGRRAggregator(eps, L), NewGRRAggregator(eps, L), NewGRRAggregator(eps, L)}
	for i := 0; i < n; i++ {
		rep, err := c.Perturb(i%L, r)
		if err != nil {
			t.Fatal(err)
		}
		single.Add(rep)
		shards[i%3].Add(rep)
	}
	merged := NewGRRAggregator(eps, L)
	for _, sh := range shards {
		if err := merged.Merge(sh); err != nil {
			t.Fatal(err)
		}
	}
	want, got := single.Estimates(), merged.Estimates()
	for v := range got {
		if got[v] != want[v] {
			t.Fatalf("estimate[%d]: merged %v != single %v", v, got[v], want[v])
		}
	}
	if err := merged.Merge(NewGRRAggregator(eps, L+1)); err == nil {
		t.Error("L mismatch accepted")
	}
}

func TestOUEMergeEquivalence(t *testing.T) {
	const eps, L, n = 1.0, 24, 2000
	c, err := NewOUEClient(eps, L)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRand(13)
	single := NewOUEAggregator(eps, L)
	shards := []*OUEAggregator{NewOUEAggregator(eps, L), NewOUEAggregator(eps, L)}
	for i := 0; i < n; i++ {
		rep, err := c.Perturb(i%L, r)
		if err != nil {
			t.Fatal(err)
		}
		single.Add(rep)
		shards[i%2].Add(rep)
	}
	merged := NewOUEAggregator(eps, L)
	for _, sh := range shards {
		if err := merged.Merge(sh); err != nil {
			t.Fatal(err)
		}
	}
	want, got := single.Estimates(), merged.Estimates()
	for v := range got {
		if got[v] != want[v] {
			t.Fatalf("estimate[%d]: merged %v != single %v", v, got[v], want[v])
		}
	}
}

// TestOLHAggregatorConcurrent exercises the kernel's own synchronization:
// concurrent Adds, N/Rejected probes, and a final estimate must neither race
// (run under -race via make check) nor lose reports.
func TestOLHAggregatorConcurrent(t *testing.T) {
	const eps, L = 1.0, 64
	const workers, perWorker = 8, 400
	reports := genOLHReports(t, eps, L, workers*perWorker, 21)

	agg := NewOLHAggregatorStreaming(eps, L)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				agg.Add(reports[w*perWorker+i])
				if i%64 == 0 {
					_ = agg.N()
					_ = agg.Rejected()
				}
			}
		}(w)
	}
	wg.Wait()
	if got, want := agg.N(), workers*perWorker; got != want {
		t.Fatalf("N = %d, want %d", got, want)
	}

	// Order-insensitivity: the concurrent fold must equal the sequential one.
	want := OLHReferenceEstimates(eps, L, reports)
	got := agg.Estimates()
	for v := range got {
		if got[v] != want[v] {
			t.Fatalf("estimate[%d] = %v, want %v", v, got[v], want[v])
		}
	}
}

// TestOLHEstimatesIncludesLateReports: reports added after one Estimates call
// must fold into the next (the incremental collector relies on Estimates
// being callable on a live aggregator).
func TestOLHEstimatesRepeatable(t *testing.T) {
	const eps, L = 1.0, 48
	reports := genOLHReports(t, eps, L, 600, 31)
	agg := NewOLHAggregator(eps, L)
	for _, rep := range reports[:300] {
		agg.Add(rep)
	}
	first := agg.Estimates()
	again := agg.Estimates()
	for v := range first {
		if first[v] != again[v] {
			t.Fatalf("repeat Estimates differ at %d: %v vs %v", v, first[v], again[v])
		}
	}
	for _, rep := range reports[300:] {
		agg.Add(rep)
	}
	want := OLHReferenceEstimates(eps, L, reports)
	got := agg.Estimates()
	for v := range got {
		if got[v] != want[v] {
			t.Fatalf("estimate[%d] after late adds = %v, want %v", v, got[v], want[v])
		}
	}
}
