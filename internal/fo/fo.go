// Package fo implements locally differentially private frequency oracles:
// Generalized Randomized Response (GRR), Optimized Local Hashing (OLH),
// Optimized Unary Encoding (OUE) and Hadamard Response (HR), plus the
// adaptive selection rule used by FELIP (paper §2.2, §5.3).
//
// A frequency oracle is a pair of algorithms (Ψ, Φ): each user perturbs their
// private value v ∈ [0, L) locally with Ψ and sends only the perturbed report;
// the aggregator runs Φ over all reports to produce unbiased frequency
// estimates for every value in the domain. All oracles here satisfy ε-LDP.
//
// The package exposes, per protocol, a Client type (Ψ) and an Aggregator type
// (Φ) so that the user-side and server-side code paths are explicit, plus the
// Estimate convenience helper that simulates a full collection round.
package fo

import (
	"fmt"
	"math"
)

// Protocol identifies one of the implemented frequency oracles.
type Protocol uint8

const (
	// GRR is Generalized Randomized Response (direct perturbation).
	GRR Protocol = iota
	// OLH is Optimized Local Hashing (hash to g=⌈e^ε⌉+1 then GRR).
	OLH
	// OUE is Optimized Unary Encoding (perturbed one-hot bit vector).
	OUE
	// HR is Hadamard Response (implicit-matrix row index plus perturbed
	// sign; O(log L) report bits for mega-domains).
	HR
)

// String returns the conventional protocol name.
func (p Protocol) String() string {
	switch p {
	case GRR:
		return "GRR"
	case OLH:
		return "OLH"
	case OUE:
		return "OUE"
	case HR:
		return "HR"
	default:
		return fmt.Sprintf("Protocol(%d)", uint8(p))
	}
}

// GRRVariance returns Var[Φ_GRR(v)] for one value: (e^ε+L−2)/(n(e^ε−1)²)
// (paper Eq 2). It grows linearly in the domain size L.
func GRRVariance(eps float64, L, n int) float64 {
	ee := math.Exp(eps)
	return (ee + float64(L) - 2) / (float64(n) * (ee - 1) * (ee - 1))
}

// OLHVariance returns Var[Φ_OLH(v)] for one value: 4e^ε/(n(e^ε−1)²)
// (paper §2.2.2). It is independent of the domain size.
func OLHVariance(eps float64, n int) float64 {
	ee := math.Exp(eps)
	return 4 * ee / (float64(n) * (ee - 1) * (ee - 1))
}

// OUEVariance returns Var[Φ_OUE(v)] for one value, which matches OLH's
// asymptotic variance 4e^ε/(n(e^ε−1)²) (Wang et al., USENIX Sec'17).
func OUEVariance(eps float64, n int) float64 {
	return OLHVariance(eps, n)
}

// Variance returns the single-value estimation variance of the protocol for a
// domain of size L and n reports.
func (p Protocol) Variance(eps float64, L, n int) float64 {
	switch p {
	case GRR:
		return GRRVariance(eps, L, n)
	case OUE:
		return OUEVariance(eps, n)
	case HR:
		return HRVariance(eps, n)
	default:
		return OLHVariance(eps, n)
	}
}

// ChooseByVariance returns the protocol with the lower single-value variance
// for a domain of size L (paper Eq 13): GRR wins iff L < 3e^ε + 2, otherwise
// OLH. This is the pure noise-variance rule; the grid optimizer refines it by
// also accounting for non-uniformity error at each protocol's optimal size.
func ChooseByVariance(eps float64, L int) Protocol {
	if float64(L) < 3*math.Exp(eps)+2 {
		return GRR
	}
	return OLH
}

// Estimate simulates a full collection round: each value in values (all in
// [0, L)) is perturbed client-side under ε-LDP with the given protocol, and
// the aggregator's unbiased frequency estimates for all L domain values are
// returned. seed makes the round deterministic.
//
// Estimate is the path used by the FELIP engines and baselines; tests also
// exercise the Client/Aggregator pairs directly.
func Estimate(p Protocol, eps float64, L int, values []int, seed uint64) ([]float64, error) {
	switch p {
	case GRR:
		c, err := NewGRRClient(eps, L)
		if err != nil {
			return nil, err
		}
		agg := NewGRRAggregator(eps, L)
		r := NewRand(seed)
		for _, v := range values {
			rep, err := c.Perturb(v, r)
			if err != nil {
				return nil, err
			}
			agg.Add(rep)
		}
		return agg.Estimates(), nil
	case OLH:
		c, err := NewOLHClient(eps, L)
		if err != nil {
			return nil, err
		}
		agg := NewOLHAggregator(eps, L)
		r := NewRand(seed)
		for _, v := range values {
			rep, err := c.Perturb(v, r)
			if err != nil {
				return nil, err
			}
			agg.Add(rep)
		}
		return agg.Estimates(), nil
	case OUE:
		c, err := NewOUEClient(eps, L)
		if err != nil {
			return nil, err
		}
		agg := NewOUEAggregator(eps, L)
		r := NewRand(seed)
		for _, v := range values {
			rep, err := c.Perturb(v, r)
			if err != nil {
				return nil, err
			}
			agg.Add(rep)
		}
		return agg.Estimates(), nil
	case HR:
		c, err := NewHRClient(eps, L)
		if err != nil {
			return nil, err
		}
		agg := NewHRAggregator(eps, L)
		r := NewRand(seed)
		for _, v := range values {
			rep, err := c.Perturb(v, r)
			if err != nil {
				return nil, err
			}
			agg.Add(rep)
		}
		return agg.Estimates(), nil
	default:
		return nil, fmt.Errorf("fo: unknown protocol %v", p)
	}
}

func validate(eps float64, L int) error {
	if !(eps > 0) || math.IsInf(eps, 0) || math.IsNaN(eps) {
		return fmt.Errorf("fo: privacy budget must be a positive finite number, got %v", eps)
	}
	if L < 1 {
		return fmt.Errorf("fo: domain size must be >= 1, got %d", L)
	}
	return nil
}
