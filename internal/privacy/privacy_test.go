package privacy

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestSequentialComposition(t *testing.T) {
	if got := SequentialComposition([]float64{1, 0.5, 0.25}); math.Abs(got-1.75) > 1e-12 {
		t.Errorf("sum = %v", got)
	}
	if SequentialComposition(nil) != 0 {
		t.Error("empty composition should be 0")
	}
}

func TestAdvancedComposition(t *testing.T) {
	// k=1 must be at least ε₀ but not absurdly larger.
	got, err := AdvancedComposition(1.0, 1, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if got < 1.0 {
		t.Errorf("k=1 advanced composition %v < eps0", got)
	}
	// For many rounds of a small budget, advanced beats sequential.
	eps0, k := 0.1, 100
	adv, err := AdvancedComposition(eps0, k, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	seq := eps0 * float64(k)
	if adv >= seq {
		t.Errorf("advanced %v not below sequential %v for k=%d small eps", adv, seq, k)
	}
	// Monotone in k.
	adv2, _ := AdvancedComposition(eps0, 2*k, 1e-6)
	if adv2 <= adv {
		t.Errorf("not monotone in k: %v vs %v", adv2, adv)
	}
	// Validation.
	if _, err := AdvancedComposition(0, 1, 0.1); err == nil {
		t.Error("eps0=0 accepted")
	}
	if _, err := AdvancedComposition(1, -1, 0.1); err == nil {
		t.Error("negative k accepted")
	}
	if _, err := AdvancedComposition(1, 1, 0); err == nil {
		t.Error("delta=0 accepted")
	}
	if _, err := AdvancedComposition(1, 1, 1); err == nil {
		t.Error("delta=1 accepted")
	}
	if got, err := AdvancedComposition(1, 0, 0.1); err != nil || got != 0 {
		t.Errorf("k=0 should cost 0: %v, %v", got, err)
	}
}

func TestAdvancedCompositionFormula(t *testing.T) {
	if err := quick.Check(func(e8, k8 uint8, d8 uint8) bool {
		eps0 := 0.01 + float64(e8%200)/100
		k := int(k8%50) + 1
		delta := 0.001 + float64(d8%90)/100
		got, err := AdvancedComposition(eps0, k, delta)
		if err != nil {
			return false
		}
		kf := float64(k)
		want := eps0*math.Sqrt(2*kf*math.Log(1/delta)) + kf*eps0*(math.Exp(eps0)-1)
		return math.Abs(got-want) < 1e-9*(1+want)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAccountant(t *testing.T) {
	if _, err := NewAccountant(0); err == nil {
		t.Error("zero ceiling accepted")
	}
	a, err := NewAccountant(2.0)
	if err != nil {
		t.Fatal(err)
	}
	if a.Ceiling() != 2.0 {
		t.Error("Ceiling wrong")
	}
	if err := a.Spend("u1", 1.0); err != nil {
		t.Fatal(err)
	}
	if err := a.Spend("u1", 1.0); err != nil {
		t.Fatal(err)
	}
	if err := a.Spend("u1", 0.1); err == nil {
		t.Error("over-ceiling spend accepted")
	}
	if got := a.Spent("u1"); math.Abs(got-2.0) > 1e-12 {
		t.Errorf("Spent = %v", got)
	}
	if got := a.Remaining("u1"); got != 0 {
		t.Errorf("Remaining = %v", got)
	}
	if got := a.Remaining("fresh"); got != 2.0 {
		t.Errorf("fresh Remaining = %v", got)
	}
	if err := a.Spend("u2", -1); err == nil {
		t.Error("negative spend accepted")
	}
	if a.Users() != 1 {
		t.Errorf("Users = %d", a.Users())
	}
}

func TestAccountantConcurrent(t *testing.T) {
	a, err := NewAccountant(100)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_ = a.Spend("shared", 0.1)
			}
		}()
	}
	wg.Wait()
	// 8×100×0.1 = 80 ≤ 100: every spend must have succeeded.
	if got := a.Spent("shared"); math.Abs(got-80) > 1e-9 {
		t.Errorf("concurrent spends lost: %v", got)
	}
}

// A rejected spend must not be recorded even partially.
func TestAccountantAtomicRejection(t *testing.T) {
	a, _ := NewAccountant(1)
	if err := a.Spend("u", 0.9); err != nil {
		t.Fatal(err)
	}
	if err := a.Spend("u", 0.2); err == nil {
		t.Fatal("over spend accepted")
	}
	if got := a.Spent("u"); math.Abs(got-0.9) > 1e-12 {
		t.Errorf("rejected spend leaked: %v", got)
	}
	// An exact-fit spend still succeeds.
	if err := a.Spend("u", 0.1); err != nil {
		t.Errorf("exact-fit spend rejected: %v", err)
	}
}
