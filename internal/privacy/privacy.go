// Package privacy provides per-user privacy-budget accounting for
// deployments that run more than one FELIP round over the same population
// (e.g. repeated streaming windows that cannot guarantee disjoint users).
//
// Within one FELIP round every user reports exactly once with budget ε, so
// the round is ε-LDP by construction (paper §5.7). Across rounds the
// guarantees compose: k rounds of ε-LDP are k·ε-LDP by sequential
// composition, or (ε', δ)-LDP with the tighter advanced-composition bound
// ε' = ε·√(2k·ln(1/δ)) + k·ε·(e^ε−1) (Dwork–Rothblum–Vadhan). The Accountant
// tracks spends per user and enforces a configured ceiling.
package privacy

import (
	"fmt"
	"math"
	"sync"
)

// SequentialComposition returns the pure-LDP budget consumed by the given
// per-round budgets: their sum.
func SequentialComposition(epsilons []float64) float64 {
	var total float64
	for _, e := range epsilons {
		total += e
	}
	return total
}

// AdvancedComposition returns the (ε, δ)-LDP budget of k uses of an ε₀
// mechanism under the advanced composition theorem:
// ε = ε₀·√(2k·ln(1/δ)) + k·ε₀·(e^{ε₀}−1). It requires δ ∈ (0, 1).
func AdvancedComposition(eps0 float64, k int, delta float64) (float64, error) {
	if eps0 <= 0 {
		return 0, fmt.Errorf("privacy: per-round epsilon must be positive, got %v", eps0)
	}
	if k < 0 {
		return 0, fmt.Errorf("privacy: negative round count %d", k)
	}
	if delta <= 0 || delta >= 1 {
		return 0, fmt.Errorf("privacy: delta must be in (0,1), got %v", delta)
	}
	kf := float64(k)
	return eps0*math.Sqrt(2*kf*math.Log(1/delta)) + kf*eps0*(math.Expm1(eps0)), nil
}

// Accountant tracks per-user cumulative (sequential-composition) budget and
// refuses spends that would exceed the ceiling. It is safe for concurrent
// use.
type Accountant struct {
	ceiling float64
	mu      sync.Mutex
	spent   map[string]float64
}

// NewAccountant returns an accountant with the given total per-user budget
// ceiling.
func NewAccountant(ceiling float64) (*Accountant, error) {
	if ceiling <= 0 {
		return nil, fmt.Errorf("privacy: ceiling must be positive, got %v", ceiling)
	}
	return &Accountant{ceiling: ceiling, spent: make(map[string]float64)}, nil
}

// Ceiling returns the per-user budget ceiling.
func (a *Accountant) Ceiling() float64 { return a.ceiling }

// Spend records a user spending eps; it fails (and records nothing) if the
// user's cumulative budget would exceed the ceiling.
func (a *Accountant) Spend(user string, eps float64) error {
	if eps <= 0 {
		return fmt.Errorf("privacy: spend must be positive, got %v", eps)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.spent[user]+eps > a.ceiling+1e-12 {
		return fmt.Errorf("privacy: user %q would exceed budget: spent %.4g + %.4g > ceiling %.4g",
			user, a.spent[user], eps, a.ceiling)
	}
	a.spent[user] += eps
	return nil
}

// Spent returns the user's cumulative budget.
func (a *Accountant) Spent(user string) float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.spent[user]
}

// Remaining returns the user's remaining budget.
func (a *Accountant) Remaining(user string) float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	r := a.ceiling - a.spent[user]
	if r < 0 {
		return 0
	}
	return r
}

// Users returns how many distinct users have spent anything.
func (a *Accountant) Users() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.spent)
}
