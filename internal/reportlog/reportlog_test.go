package reportlog

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func tmpLog(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "round.wal")
}

func appendReports(t *testing.T, l *Log, from, to int) {
	t.Helper()
	for i := from; i < to; i++ {
		rec := ReportRecord("id-"+string(rune('a'+i%26))+"-"+itoa(i), i%5, "GRR", i, uint64(i))
		if err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

func TestAppendReplayRoundTrip(t *testing.T) {
	path := tmpLog(t)
	l, recs, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh log replayed %d records", len(recs))
	}
	appendReports(t, l, 0, 100)
	if err := l.Append(FinalizeRecord(100)); err != nil {
		t.Fatal(err)
	}
	pos := l.Pos()
	if pos <= 0 {
		t.Fatalf("pos = %d", pos)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, recs, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(recs) != 101 {
		t.Fatalf("replayed %d records, want 101", len(recs))
	}
	if l2.Pos() != pos {
		t.Fatalf("reopened pos %d, want %d", l2.Pos(), pos)
	}
	for i := 0; i < 100; i++ {
		r := recs[i]
		if r.Type != TypeReport || r.Group != i%5 || r.Value != i || r.Seed != uint64(i) || r.Proto != "GRR" {
			t.Fatalf("record %d = %+v", i, r)
		}
	}
	last := recs[100]
	if last.Type != TypeFinalize || last.Reports != 100 {
		t.Fatalf("finalize record %+v", last)
	}
}

// A crash can tear the final record; replay must drop exactly that record and
// leave the log appendable.
func TestTornTailRecovery(t *testing.T) {
	path := tmpLog(t)
	l, _, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	appendReports(t, l, 0, 10)
	full := l.Pos()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	for _, chop := range []int64{1, 5, headerLen, full/2 + 3} {
		if err := os.Truncate(path, full-chop); err != nil {
			t.Fatal(err)
		}
		l, recs, err := Open(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) >= 10 {
			t.Fatalf("chop %d: replayed %d records from a torn log", chop, len(recs))
		}
		// The torn tail must be gone: appending and reopening round-trips.
		appendReports(t, l, len(recs), 10)
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		l, recs, err = Open(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != 10 {
			t.Fatalf("chop %d: after repair replayed %d records, want 10", chop, len(recs))
		}
		full = l.Pos()
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// A flipped byte invalidates its record's checksum; everything from that
// record on is discarded (nothing after a corrupt record can be trusted).
func TestChecksumCatchesCorruption(t *testing.T) {
	path := tmpLog(t)
	l, _, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	appendReports(t, l, 0, 10)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)/2] ^= 0xFF
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	l, recs, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if len(recs) >= 10 {
		t.Fatalf("replayed %d records from a corrupt log", len(recs))
	}
	for i, r := range recs {
		if r.Value != i {
			t.Fatalf("surviving prefix out of order: record %d = %+v", i, r)
		}
	}
}

// Trailing garbage (a crash mid-header, or junk) must not be parsed.
func TestGarbageTailIgnored(t *testing.T) {
	path := tmpLog(t)
	l, _, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	appendReports(t, l, 0, 5)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	l, recs, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if len(recs) != 5 {
		t.Fatalf("replayed %d records, want 5", len(recs))
	}
}

func TestConcurrentAppends(t *testing.T) {
	path := tmpLog(t)
	l, _, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	const workers, per = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := l.Append(ReportRecord(itoa(w*per+i), w, "OLH", i, 1)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l, recs, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if len(recs) != workers*per {
		t.Fatalf("replayed %d records, want %d", len(recs), workers*per)
	}
	ids := make(map[string]bool, len(recs))
	for _, r := range recs {
		if ids[r.ReportID] {
			t.Fatalf("duplicate record %q after concurrent appends", r.ReportID)
		}
		ids[r.ReportID] = true
	}
}
