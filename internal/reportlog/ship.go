package reportlog

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
)

// This file is the segment-shipping side of the write-ahead log: a primary
// serves raw log bytes from any offset (ReadFrom), and a follower verifies
// what it received frame-by-frame before trusting it (VerifySegment). The
// log's framing makes this safe to do at arbitrary byte granularity: Append
// writes whole frames in a single Write and Pos only ever advances by whole
// frames, so any [0, Pos) byte range a primary serves is a sequence of
// complete frames and two nodes holding the same byte range hold the same
// records — which is what makes a promoted follower's replayed state
// bit-identical to the primary's.

// ReadFrom returns a copy of the log's bytes in [off, Pos), together with the
// current end offset. It is the primary-side read of WAL shipping: the bytes
// are exactly what Append wrote, so a follower appending them to its own file
// reconstructs a bit-identical segment. Reading holds the log's lock (the
// file offset is shared with Append), so callers should ship in chunks rather
// than let one giant read starve ingest.
func (l *Log) ReadFrom(off int64) ([]byte, int64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if off < 0 || off > l.pos {
		return nil, l.pos, fmt.Errorf("reportlog: read offset %d outside log [0,%d]", off, l.pos)
	}
	if off == l.pos {
		return nil, l.pos, nil
	}
	if _, err := l.f.Seek(off, io.SeekStart); err != nil {
		return nil, l.pos, fmt.Errorf("reportlog: %w", err)
	}
	buf := make([]byte, l.pos-off)
	_, err := io.ReadFull(l.f, buf)
	// Restore the append position before reporting any read error: the log
	// must stay writable either way.
	if _, serr := l.f.Seek(l.pos, io.SeekStart); serr != nil && err == nil {
		err = serr
	}
	if err != nil {
		return nil, l.pos, fmt.Errorf("reportlog: reading [%d,%d): %w", off, l.pos, err)
	}
	return buf, l.pos, nil
}

// VerifySegment strictly parses a shipped segment's bytes: every frame's
// header, checksum, and encoding must be valid and the data must end exactly
// on a frame boundary. Unlike Open — which forgives a torn tail, because a
// local crash legitimately tears the final record — shipped bytes were whole
// frames when they left the primary, so anything short of a perfect parse is
// corruption and the segment must not be replayed. This is the "shipped
// -segment CRC chain verifies" half of the promotion invariant.
func VerifySegment(data []byte) ([]Record, error) {
	var recs []Record
	rd := bytes.NewReader(data)
	var header [headerLen]byte
	for off := int64(0); ; {
		if _, err := io.ReadFull(rd, header[:]); err != nil {
			if err == io.EOF {
				return recs, nil // clean frame boundary
			}
			return nil, fmt.Errorf("reportlog: segment torn mid-header at offset %d", off)
		}
		length := binary.BigEndian.Uint32(header[0:4])
		sum := binary.BigEndian.Uint32(header[4:8])
		if length == 0 || length > maxPayload {
			return nil, fmt.Errorf("reportlog: segment frame at offset %d claims %d payload bytes", off, length)
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(rd, payload); err != nil {
			return nil, fmt.Errorf("reportlog: segment torn mid-payload at offset %d", off)
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return nil, fmt.Errorf("reportlog: segment frame at offset %d fails its checksum", off)
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			return nil, fmt.Errorf("reportlog: segment frame at offset %d: %w", off, err)
		}
		recs = append(recs, rec)
		off += headerLen + int64(length)
	}
}
