// Package reportlog implements the aggregator's durable write-ahead report
// log. Every report the collection round accepts is appended before it is
// acknowledged to the device, so a crashed aggregator can replay the log on
// startup and resume the round exactly where it stopped — the deployment
// property FELIP's estimator depends on (each user counted exactly once).
//
// On-disk format: a sequence of records, each
//
//	[4-byte big-endian payload length][4-byte CRC32-IEEE of payload][payload]
//
// where the payload is the JSON encoding of a Record. Each Append issues a
// single Write, so a crash can only tear the final record. Replay stops at
// the first record whose header, checksum, or encoding is invalid and
// truncates the file there: a torn tail is by construction a report that was
// never acknowledged, so dropping it is safe — the device will retry it.
package reportlog

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"strconv"
	"sync"
)

// Record types.
const (
	// TypeReport is one accepted ε-LDP report.
	TypeReport = "report"
	// TypeFinalize marks the round closed; no reports follow it.
	TypeFinalize = "finalize"
)

// Record is one durable event of a collection round.
type Record struct {
	Type     string `json:"type"`
	ReportID string `json:"report_id,omitempty"`
	Group    int    `json:"group,omitempty"`
	Proto    string `json:"proto,omitempty"`
	Value    int    `json:"value,omitempty"`
	Seed     uint64 `json:"seed,omitempty"`
	// Mode is the report's reporting mode in wire name form; "" is FELIP, so
	// every v1 segment (written before modes existed) replays as FELIP and
	// FELIP rounds keep writing byte-identical v1 records. Replay validates it
	// against the round's plan.
	Mode string `json:"mode,omitempty"`
	// Longitudinal marks a report produced by the memoized two-stage chain;
	// absent (false) on every one-shot record, so v1 segments keep writing and
	// replaying byte-identical records. Replay validates the flag against the
	// round's plan: a longitudinal segment must never fold into a one-shot
	// round, or vice versa.
	Longitudinal bool `json:"longitudinal,omitempty"`
	// Reports is the accepted-report count at finalization (TypeFinalize).
	Reports int `json:"reports,omitempty"`
}

// File is the storage a Log writes through; *os.File satisfies it. It is a
// parameter (rather than a hard-wired *os.File) so tests can interpose
// fault-injecting wrappers.
type File interface {
	io.ReadWriteCloser
	Sync() error
	Truncate(size int64) error
	Seek(offset int64, whence int) (int64, error)
}

const (
	headerLen = 8
	// maxPayload bounds a single record; anything larger during replay is
	// treated as corruption, not an allocation request.
	maxPayload = 1 << 20
)

// Log is an append-only, checksummed record log. It is safe for concurrent
// use.
type Log struct {
	mu  sync.Mutex
	f   File
	pos int64
	// batchBuf is AppendBatch's reusable encode buffer: the batch ingest path
	// appends thousands of records per call and must not pay an allocation per
	// record. Only ever used while encoding a batch (guarded by mu for
	// ownership handoff).
	batchBuf []byte
}

// Open opens (creating if absent) the log at path, replays every intact
// record, truncates any torn or corrupt tail, and returns the log positioned
// for appending together with the replayed records.
func Open(path string) (*Log, []Record, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("reportlog: %w", err)
	}
	l, recs, err := OpenFile(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	return l, recs, nil
}

// OpenFile is Open over an already-opened File (for tests and fault
// injection). The file is rewound, replayed, and truncated past the last
// intact record.
func OpenFile(f File) (*Log, []Record, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, nil, fmt.Errorf("reportlog: %w", err)
	}
	var (
		recs   []Record
		pos    int64 // end of the last intact record
		header [headerLen]byte
	)
	for {
		if _, err := io.ReadFull(f, header[:]); err != nil {
			break // clean EOF or torn header — either way the tail ends here
		}
		length := binary.BigEndian.Uint32(header[0:4])
		sum := binary.BigEndian.Uint32(header[4:8])
		if length == 0 || length > maxPayload {
			break
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(f, payload); err != nil {
			break
		}
		if crc32.ChecksumIEEE(payload) != sum {
			break
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			break
		}
		recs = append(recs, rec)
		pos += headerLen + int64(length)
	}
	if err := f.Truncate(pos); err != nil {
		return nil, nil, fmt.Errorf("reportlog: truncating torn tail: %w", err)
	}
	if _, err := f.Seek(pos, io.SeekStart); err != nil {
		return nil, nil, fmt.Errorf("reportlog: %w", err)
	}
	return &Log{f: f, pos: pos}, recs, nil
}

// Append encodes and writes one record. The record is handed to the OS in a
// single Write call, so it survives a process crash immediately; call Sync to
// also survive an OS crash.
func (l *Log) Append(rec Record) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("reportlog: %w", err)
	}
	if len(payload) > maxPayload {
		return fmt.Errorf("reportlog: record of %d bytes exceeds %d", len(payload), maxPayload)
	}
	buf := make([]byte, headerLen+len(payload))
	binary.BigEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	copy(buf[headerLen:], payload)

	l.mu.Lock()
	defer l.mu.Unlock()
	n, err := l.f.Write(buf)
	l.pos += int64(n)
	if err != nil {
		return fmt.Errorf("reportlog: append: %w", err)
	}
	return nil
}

// AppendBatch encodes every record into one buffer and hands it to the OS in
// a single Write call — the batch-ingest durability step: one write (and one
// caller-issued Sync) per frame instead of per report. The on-disk format is
// unchanged — the same framed records Append writes, so replay, shipping,
// and verification cannot tell a batch from a run of singles. A crash can
// tear the batch mid-write; whole records before the tear replay normally
// (Open truncates at the tear), and a retried frame's dedup keys make the
// re-ingest exactly-once.
//
// Report records are encoded with a hand-rolled JSON writer (no per-record
// json.Marshal allocation) that produces what encoding/json parses back to
// the identical Record; other record types fall back to json.Marshal.
func (l *Log) AppendBatch(recs []Record) error {
	if len(recs) == 0 {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	buf := l.batchBuf[:0]
	var err error
	for i := range recs {
		buf, err = appendFramedRecord(buf, &recs[i])
		if err != nil {
			return err
		}
	}
	l.batchBuf = buf[:0] // keep the grown buffer for the next batch
	n, err := l.f.Write(buf)
	l.pos += int64(n)
	if err != nil {
		return fmt.Errorf("reportlog: append batch: %w", err)
	}
	return nil
}

// appendFramedRecord appends one record's frame (header + JSON payload) to
// buf, avoiding json.Marshal for the report records the batch hot path
// writes.
func appendFramedRecord(buf []byte, rec *Record) ([]byte, error) {
	frameStart := len(buf)
	buf = append(buf, make([]byte, headerLen)...)
	payloadStart := len(buf)
	if rec.Type == TypeReport && jsonSafe(rec.ReportID) && jsonSafe(rec.Proto) && jsonSafe(rec.Mode) {
		buf = append(buf, `{"type":"report","report_id":"`...)
		buf = append(buf, rec.ReportID...)
		buf = append(buf, `","group":`...)
		buf = strconv.AppendInt(buf, int64(rec.Group), 10)
		buf = append(buf, `,"proto":"`...)
		buf = append(buf, rec.Proto...)
		buf = append(buf, `","value":`...)
		buf = strconv.AppendInt(buf, int64(rec.Value), 10)
		buf = append(buf, `,"seed":`...)
		buf = strconv.AppendUint(buf, rec.Seed, 10)
		if rec.Mode != "" {
			buf = append(buf, `,"mode":"`...)
			buf = append(buf, rec.Mode...)
			buf = append(buf, '"')
		}
		if rec.Longitudinal {
			buf = append(buf, `,"longitudinal":true`...)
		}
		buf = append(buf, '}')
	} else {
		payload, err := json.Marshal(rec)
		if err != nil {
			return nil, fmt.Errorf("reportlog: %w", err)
		}
		buf = append(buf, payload...)
	}
	n := len(buf) - payloadStart
	if n > maxPayload {
		return nil, fmt.Errorf("reportlog: record of %d bytes exceeds %d", n, maxPayload)
	}
	binary.BigEndian.PutUint32(buf[frameStart:], uint32(n))
	binary.BigEndian.PutUint32(buf[frameStart+4:], crc32.ChecksumIEEE(buf[payloadStart:]))
	return buf, nil
}

// jsonSafe reports whether s can be embedded in a JSON string without
// escaping — true for every ID wire.NewReportID mints; anything exotic
// falls back to the standard encoder.
func jsonSafe(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < 0x20 || c >= 0x7F || c == '"' || c == '\\' {
			return false
		}
	}
	return true
}

// Sync flushes the log to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.f.Sync()
}

// Pos returns the current end-of-log byte offset.
func (l *Log) Pos() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.pos
}

// Close syncs and closes the underlying file.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.f.Sync(); err != nil {
		l.f.Close()
		return fmt.Errorf("reportlog: %w", err)
	}
	return l.f.Close()
}

// ReportRecord builds the Record for one accepted report (FELIP mode — the
// only mode v1 segments could hold).
func ReportRecord(id string, group int, proto string, value int, seed uint64) Record {
	return Record{Type: TypeReport, ReportID: id, Group: group, Proto: proto, Value: value, Seed: seed}
}

// ReportRecordMode builds the Record for one accepted report under a
// reporting mode (wire name form; "" = FELIP, producing a byte-identical v1
// record).
func ReportRecordMode(id string, group int, proto string, value int, seed uint64, mode string) Record {
	return Record{Type: TypeReport, ReportID: id, Group: group, Proto: proto, Value: value, Seed: seed, Mode: mode}
}

// ReportRecordLongitudinal builds the Record for one accepted memoized
// two-stage report.
func ReportRecordLongitudinal(id string, group int, proto string, value int, seed uint64) Record {
	return Record{Type: TypeReport, ReportID: id, Group: group, Proto: proto, Value: value, Seed: seed, Longitudinal: true}
}

// FinalizeRecord builds the Record closing a round of n accepted reports.
func FinalizeRecord(n int) Record {
	return Record{Type: TypeFinalize, Reports: n}
}
