package reportlog

import (
	"os"
	"path/filepath"
	"testing"
)

func TestSegmentsNaming(t *testing.T) {
	s := NewSegments("/tmp/round.wal")
	if s.Base() != "/tmp/round.wal" {
		t.Fatalf("base = %q", s.Base())
	}
	if s.Path(1) != "/tmp/round.wal" {
		t.Fatalf("round 1 path = %q", s.Path(1))
	}
	if s.Path(3) != "/tmp/round.wal.r3" {
		t.Fatalf("round 3 path = %q", s.Path(3))
	}
}

func TestSegmentsExistingAndTruncate(t *testing.T) {
	dir := t.TempDir()
	s := NewSegments(filepath.Join(dir, "round.wal"))

	appendOne := func(round int, id string) {
		t.Helper()
		l, _, err := s.Open(round)
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Append(Record{Type: TypeReport, ReportID: id, Proto: "GRR"}); err != nil {
			t.Fatal(err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
	}
	for _, round := range []int{1, 2, 3, 5} { // gap at 4, like a truncated chain
		appendOne(round, "u1")
	}
	// Foreign files in the same directory are not segments.
	if err := os.WriteFile(filepath.Join(dir, "round.wal.bak"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "other.wal"), nil, 0o644); err != nil {
		t.Fatal(err)
	}

	got, err := s.Existing()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 || got[0] != 1 || got[1] != 2 || got[2] != 3 || got[3] != 5 {
		t.Fatalf("existing = %v, want [1 2 3 5]", got)
	}

	removed, err := s.TruncateThrough(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 3 || removed[0] != 1 || removed[1] != 2 || removed[2] != 3 {
		t.Fatalf("removed = %v, want [1 2 3]", removed)
	}
	got, err = s.Existing()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 5 {
		t.Fatalf("existing after truncate = %v, want [5]", got)
	}
	// Idempotent: re-running the same truncation removes nothing.
	removed, err = s.TruncateThrough(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 0 {
		t.Fatalf("second truncate removed %v", removed)
	}
	// The surviving tail still replays.
	l, recs, err := s.Open(5)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if len(recs) != 1 || recs[0].ReportID != "u1" {
		t.Fatalf("tail records = %+v", recs)
	}
}
