package reportlog

import (
	"path/filepath"
	"testing"
)

func shipRecord(id string) Record {
	return Record{Type: TypeReport, ReportID: id, Group: 1, Proto: "grr", Value: 3, Seed: 7}
}

func TestReadFromServesAppendedBytesAndKeepsAppending(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ship.wal")
	l, recs, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if len(recs) != 0 {
		t.Fatalf("fresh log replayed %d records", len(recs))
	}
	for i := 0; i < 3; i++ {
		if err := l.Append(shipRecord(string(rune('a' + i)))); err != nil {
			t.Fatal(err)
		}
	}
	mid := l.Pos()
	if err := l.Append(shipRecord("d")); err != nil {
		t.Fatal(err)
	}

	// Full read from 0 parses back every record.
	data, pos, err := l.ReadFrom(0)
	if err != nil {
		t.Fatal(err)
	}
	if pos != l.Pos() || int64(len(data)) != pos {
		t.Fatalf("ReadFrom(0) = %d bytes, end %d; log pos %d", len(data), pos, l.Pos())
	}
	got, err := VerifySegment(data)
	if err != nil {
		t.Fatalf("VerifySegment on shipped bytes: %v", err)
	}
	if len(got) != 4 || got[3].ReportID != "d" {
		t.Fatalf("verified %d records, want 4 ending in d", len(got))
	}

	// Partial read starts exactly at the requested frame boundary.
	tail, pos2, err := l.ReadFrom(mid)
	if err != nil {
		t.Fatal(err)
	}
	if pos2 != pos || int64(len(tail)) != pos-mid {
		t.Fatalf("ReadFrom(%d) = %d bytes, end %d", mid, len(tail), pos2)
	}
	if tr, err := VerifySegment(tail); err != nil || len(tr) != 1 || tr[0].ReportID != "d" {
		t.Fatalf("tail verify = %v records, err %v", tr, err)
	}

	// The read must not disturb the append position: a record appended after
	// a ReadFrom must land intact at the end of the file.
	if err := l.Append(shipRecord("e")); err != nil {
		t.Fatalf("append after ReadFrom: %v", err)
	}
	all, _, err := l.ReadFrom(0)
	if err != nil {
		t.Fatal(err)
	}
	final, err := VerifySegment(all)
	if err != nil {
		t.Fatalf("segment after interleaved read/append: %v", err)
	}
	if len(final) != 5 || final[4].ReportID != "e" {
		t.Fatalf("replayed %d records after interleaved read/append, want 5 ending in e", len(final))
	}
}

func TestReadFromRejectsOffsetPastEnd(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ship.wal")
	l, _, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append(shipRecord("a")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := l.ReadFrom(l.Pos() + 1); err == nil {
		t.Fatal("ReadFrom past end succeeded")
	}
}

func TestVerifySegmentRejectsTornAndCorruptBytes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ship.wal")
	l, _, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := l.Append(shipRecord(string(rune('a' + i)))); err != nil {
			t.Fatal(err)
		}
	}
	data, _, err := l.ReadFrom(0)
	if err != nil {
		t.Fatal(err)
	}
	l.Close()

	// A torn tail — tolerated by Open, fatal for a shipped segment.
	if _, err := VerifySegment(data[:len(data)-3]); err == nil {
		t.Fatal("VerifySegment accepted a torn tail")
	}
	// A single flipped payload byte breaks the CRC chain.
	bad := append([]byte(nil), data...)
	bad[len(bad)-2] ^= 0x40
	if _, err := VerifySegment(bad); err == nil {
		t.Fatal("VerifySegment accepted a corrupted payload")
	}
	// Empty segments are trivially intact.
	if recs, err := VerifySegment(nil); err != nil || len(recs) != 0 {
		t.Fatalf("VerifySegment(nil) = %v, %v", recs, err)
	}
}
