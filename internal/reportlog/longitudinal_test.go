package reportlog

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
)

// TestLongitudinalRecordWriterParity pins the hand-rolled batch writer against
// encoding/json for longitudinal records: the bytes it emits must parse back
// to the identical Record, and a batch-written log must replay exactly like a
// single-append log of the same records.
func TestLongitudinalRecordWriterParity(t *testing.T) {
	recs := []Record{
		ReportRecordLongitudinal("dev-0-r1", 0, "GRR", 3, 0),
		ReportRecordLongitudinal("dev-1-r1", 2, "GRR", 0, 7),
		ReportRecord("one-shot", 1, "GRR", 5, 0),
		FinalizeRecord(3),
	}

	var buf []byte
	var err error
	for i := range recs {
		buf, err = appendFramedRecord(buf, &recs[i])
		if err != nil {
			t.Fatal(err)
		}
	}

	batchPath := tmpLog(t)
	lb, _, err := Open(batchPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := lb.AppendBatch(recs); err != nil {
		t.Fatal(err)
	}
	if err := lb.Close(); err != nil {
		t.Fatal(err)
	}
	singlePath := tmpLog(t)
	ls, _, err := Open(singlePath)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := ls.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := ls.Close(); err != nil {
		t.Fatal(err)
	}
	_, fromBatch, err := Open(batchPath)
	if err != nil {
		t.Fatal(err)
	}
	_, fromSingles, err := Open(singlePath)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromBatch, fromSingles) {
		t.Fatalf("batch replay %+v != single replay %+v", fromBatch, fromSingles)
	}
	if !reflect.DeepEqual(fromBatch, recs) {
		t.Fatalf("replay %+v != appended %+v", fromBatch, recs)
	}
}

// TestLongitudinalFlagRoundTripsAndStaysOffOneShot pins the two JSON
// contracts: a longitudinal record's payload parses back with the flag set,
// and a one-shot record's payload contains no trace of the field (v1
// byte-identity).
func TestLongitudinalFlagRoundTripsAndStaysOffOneShot(t *testing.T) {
	long := ReportRecordLongitudinal("dev-3-r2", 1, "GRR", 4, 0)
	payload, err := json.Marshal(long)
	if err != nil {
		t.Fatal(err)
	}
	var decoded Record
	if err := json.Unmarshal(payload, &decoded); err != nil {
		t.Fatal(err)
	}
	if !decoded.Longitudinal {
		t.Fatal("longitudinal flag lost in JSON round trip")
	}

	oneShot := ReportRecordMode("dev-4", 0, "GRR", 2, 0, "")
	payload, err = json.Marshal(oneShot)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(payload, []byte("longitudinal")) {
		t.Fatalf("one-shot record JSON mentions longitudinal: %s", payload)
	}
	buf, err := appendFramedRecord(nil, &oneShot)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(buf, []byte("longitudinal")) {
		t.Fatalf("one-shot hand-rolled frame mentions longitudinal: %s", buf[headerLen:])
	}
}
