package reportlog

import (
	"os"
	"reflect"
	"testing"
)

// TestAppendBatchReplaysLikeSingles pins the batch append's on-disk
// compatibility: a batch-written log replays record-for-record identical to
// a single-append log of the same records, including IDs that need JSON
// escaping (which take the fallback encoder).
func TestAppendBatchReplaysLikeSingles(t *testing.T) {
	recs := []Record{
		ReportRecord("plain-hex-0123", 0, "OLH", 3, 42),
		ReportRecord("", 1, "GRR", 0, 0), // empty id: still a legal record here
		ReportRecord(`needs "escaping"\and`+string(rune(0x01)), 2, "OUE", 7, 9),
		ReportRecord("unicode-α-β", 1, "OLH", 2, 77),
		FinalizeRecord(4),
	}

	batchPath := tmpLog(t)
	lb, _, err := Open(batchPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := lb.AppendBatch(recs); err != nil {
		t.Fatal(err)
	}
	if err := lb.Close(); err != nil {
		t.Fatal(err)
	}

	singlePath := tmpLog(t)
	ls, _, err := Open(singlePath)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := ls.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := ls.Close(); err != nil {
		t.Fatal(err)
	}

	_, fromBatch, err := Open(batchPath)
	if err != nil {
		t.Fatal(err)
	}
	_, fromSingles, err := Open(singlePath)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromBatch, fromSingles) {
		t.Fatalf("batch replay %+v != single replay %+v", fromBatch, fromSingles)
	}
	if !reflect.DeepEqual(fromBatch, recs) {
		t.Fatalf("replay %+v != appended %+v", fromBatch, recs)
	}
}

// TestAppendBatchAdvancesPos pins that Pos moves by whole frames so WAL
// shipping (which reads [from, Pos)) serves complete records after a batch.
func TestAppendBatchAdvancesPos(t *testing.T) {
	path := tmpLog(t)
	l, _, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	recs := []Record{
		ReportRecord("a", 0, "GRR", 1, 0),
		ReportRecord("b", 1, "OLH", 2, 5),
	}
	if err := l.AppendBatch(recs); err != nil {
		t.Fatal(err)
	}
	data, pos, err := l.ReadFrom(0)
	if err != nil {
		t.Fatal(err)
	}
	if pos != l.Pos() || int64(len(data)) != pos {
		t.Fatalf("ReadFrom end %d, Pos %d, data %d bytes", pos, l.Pos(), len(data))
	}
	parsed, err := VerifySegment(data)
	if err != nil {
		t.Fatalf("batch-appended bytes fail strict verification: %v", err)
	}
	if !reflect.DeepEqual(parsed, recs) {
		t.Fatalf("verified %+v, want %+v", parsed, recs)
	}
}

// TestAppendBatchTornMidWrite pins the crash contract: a batch torn
// mid-write replays its whole-record prefix and drops the tear — exactly
// the single-append behavior, so a retried frame (same idempotency keys)
// re-ingests exactly-once.
func TestAppendBatchTornMidWrite(t *testing.T) {
	path := tmpLog(t)
	l, _, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	warm := []Record{ReportRecord("w0", 0, "GRR", 1, 0)}
	if err := l.AppendBatch(warm); err != nil {
		t.Fatal(err)
	}
	warmEnd := l.Pos()
	batch := []Record{
		ReportRecord("b0", 0, "GRR", 1, 0),
		ReportRecord("b1", 1, "OLH", 2, 5),
		ReportRecord("b2", 2, "OUE", 3, 6),
	}
	if err := l.AppendBatch(batch); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the file inside the batch's third record — the shape a crash
	// mid-Write leaves behind.
	var twoRecs []byte
	for i := range batch[:2] {
		twoRecs, err = appendFramedRecord(twoRecs, &batch[i])
		if err != nil {
			t.Fatal(err)
		}
	}
	tearAt := warmEnd + int64(len(twoRecs)) + 7
	if err := os.Truncate(path, tearAt); err != nil {
		t.Fatal(err)
	}

	l2, recs, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	want := []Record{warm[0], batch[0], batch[1]}
	if !reflect.DeepEqual(recs, want) {
		t.Fatalf("after tear replayed %+v, want %+v", recs, want)
	}
	if l2.Pos() != warmEnd+int64(len(twoRecs)) {
		t.Fatalf("tear not truncated: pos %d, want %d", l2.Pos(), warmEnd+int64(len(twoRecs)))
	}
}

// TestAppendBatchEmpty is a no-op, not an error: a frame whose every report
// was a duplicate appends nothing.
func TestAppendBatchEmpty(t *testing.T) {
	path := tmpLog(t)
	l, _, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.AppendBatch(nil); err != nil {
		t.Fatal(err)
	}
	if l.Pos() != 0 {
		t.Fatalf("empty batch moved pos to %d", l.Pos())
	}
}
