package reportlog

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Segments names the per-round write-ahead log segment chain of one server:
// round 1 lives in the base file, round k in <base>.r<k>. The naming scheme
// predates this type (cmd/felipserver invented it); Segments centralizes it
// so the server, the archive recovery path, and the truncation policy all
// agree on which file holds which round.
type Segments struct {
	base string
}

// NewSegments returns the segment chain rooted at base.
func NewSegments(base string) *Segments {
	return &Segments{base: base}
}

// Base returns the chain's root path (round 1's segment).
func (s *Segments) Base() string { return s.base }

// Path returns the segment file path for the given round.
func (s *Segments) Path(round int) string {
	if round == 1 {
		return s.base
	}
	return fmt.Sprintf("%s.r%d", s.base, round)
}

// Open opens (creating if absent) the given round's segment, replaying its
// intact records like Open does.
func (s *Segments) Open(round int) (*Log, []Record, error) {
	return Open(s.Path(round))
}

// Existing returns the rounds whose segment files are present on disk, in
// ascending order. Gaps are legal: once a snapshot covers rounds 1..k their
// segments are truncated, leaving only the tail.
func (s *Segments) Existing() ([]int, error) {
	dir, name := filepath.Split(s.base)
	if dir == "" {
		dir = "."
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("reportlog: listing segments: %w", err)
	}
	var rounds []int
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		switch {
		case e.Name() == name:
			rounds = append(rounds, 1)
		case strings.HasPrefix(e.Name(), name+".r"):
			k, err := strconv.Atoi(strings.TrimPrefix(e.Name(), name+".r"))
			if err != nil || k < 2 {
				continue // not one of ours
			}
			rounds = append(rounds, k)
		}
	}
	sort.Ints(rounds)
	return rounds, nil
}

// TruncateThrough deletes every segment file for rounds <= round and returns
// the rounds it removed. This is the WAL reclamation step of the archive
// design, and its safety rests entirely on the caller honoring one ordering
// invariant: a segment may only be truncated after a snapshot covering its
// round has been fsynced to stable storage ("snapshot fsync happens-before
// WAL truncate"). A crash between the snapshot and the truncate merely leaves
// stale segments behind; recovery prefers the snapshot and re-runs the
// truncation. The containing directory is synced so the removals themselves
// are durable.
func (s *Segments) TruncateThrough(round int) ([]int, error) {
	existing, err := s.Existing()
	if err != nil {
		return nil, err
	}
	var removed []int
	for _, k := range existing {
		if k > round {
			continue
		}
		if err := os.Remove(s.Path(k)); err != nil {
			return removed, fmt.Errorf("reportlog: truncating segment %d: %w", k, err)
		}
		removed = append(removed, k)
	}
	if len(removed) > 0 {
		if err := syncDir(filepath.Dir(s.base)); err != nil {
			return removed, err
		}
	}
	return removed, nil
}

// syncDir fsyncs a directory so renames and removals inside it are durable.
func syncDir(dir string) error {
	if dir == "" {
		dir = "."
	}
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("reportlog: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("reportlog: syncing %s: %w", dir, err)
	}
	return nil
}
