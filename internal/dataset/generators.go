package dataset

import (
	"fmt"

	"felip/internal/domain"
	"felip/internal/fo"
)

// A Generator produces a synthetic dataset over any schema. The four
// implementations correspond to the paper's four evaluation datasets.
type Generator interface {
	// Name identifies the generator in experiment output.
	Name() string
	// Generate draws n rows over the schema, deterministically in seed.
	Generate(schema *domain.Schema, n int, seed uint64) *Dataset
}

// shapeGenerator draws every column from a per-column Shape, with one shared
// standard-normal latent factor per row inducing cross-column correlation.
type shapeGenerator struct {
	name   string
	shapes func(schema *domain.Schema) []Shape
}

func (g shapeGenerator) Name() string { return g.name }

func (g shapeGenerator) Generate(schema *domain.Schema, n int, seed uint64) *Dataset {
	d := New(schema, n)
	shapes := g.shapes(schema)
	r := fo.NewRand(seed)
	for row := 0; row < n; row++ {
		z := r.NormFloat64()
		for a := 0; a < schema.Len(); a++ {
			d.set(row, a, shapes[a](r, schema.Attr(a).Size, z))
		}
	}
	return d
}

// NewUniform returns the paper's Uniform dataset generator: every attribute
// value sampled uniformly and independently.
func NewUniform() Generator {
	return shapeGenerator{
		name: "uniform",
		shapes: func(schema *domain.Schema) []Shape {
			shapes := make([]Shape, schema.Len())
			for i := range shapes {
				shapes[i] = UniformShape
			}
			return shapes
		},
	}
}

// NewNormal returns the paper's Normal dataset generator: every attribute
// drawn from a truncated normal centred on the middle of its domain and
// covering the whole domain, mildly correlated across columns.
func NewNormal() Generator {
	return shapeGenerator{
		name: "normal",
		shapes: func(schema *domain.Schema) []Shape {
			shapes := make([]Shape, schema.Len())
			for i := range shapes {
				shapes[i] = NormalShape
			}
			return shapes
		},
	}
}

// NewIPUMSSim returns the census stand-in (DESIGN.md §6): skewed and
// multi-modal numerical columns plus low- and high-cardinality skewed
// categorical columns, correlated through a shared socioeconomic latent
// factor. Shapes are assigned round-robin per attribute kind so the
// generator works for any schema the experiments request.
func NewIPUMSSim() Generator {
	return shapeGenerator{
		name: "ipums-sim",
		shapes: func(schema *domain.Schema) []Shape {
			numShapes := []Shape{
				AgeShape,                // age pyramid
				HeavyTailShape(0.55),    // income
				SpikedShape(0.55, 0.35), // usual hours worked, spiked near 40
				HeavyTailShape(0.3),     // capital gain
				NormalShape,             // weeks worked
			}
			catShapes := []Shape{
				ZipfShape(1.2, 0.5), // education, correlated with status
				BalancedCatShape,    // sex
				ZipfShape(1.6, 0.2), // race
				ZipfShape(0.9, 0.3), // marital status
				ZipfShape(1.1, 0),   // state / region
			}
			return assignShapes(schema, numShapes, catShapes)
		},
	}
}

// NewLoanSim returns the Lending Club stand-in (DESIGN.md §6): bunched loan
// amounts, bimodal interest rates, two-valued term, skewed grades and
// purposes, heavy-tailed income, correlated through a credit-quality latent
// factor.
func NewLoanSim() Generator {
	return shapeGenerator{
		name: "loan-sim",
		shapes: func(schema *domain.Schema) []Shape {
			numShapes := []Shape{
				SpikedShape(0.4, 0.15), // loan amount bunched at round values
				BimodalShape(0.6),      // interest rate by grade cluster
				HeavyTailShape(0.45),   // annual income
				NormalShape,            // dti
				HeavyTailShape(0.25),   // revolving balance
			}
			catShapes := []Shape{
				ZipfShape(1.0, 0.6),  // grade, strongly tied to credit quality
				BalancedCatShape,     // term (36/60 months)
				ZipfShape(1.4, 0.1),  // purpose
				ZipfShape(1.1, 0),    // state
				ZipfShape(0.8, 0.25), // home ownership
			}
			return assignShapes(schema, numShapes, catShapes)
		},
	}
}

// assignShapes walks the schema assigning numerical and categorical shape
// palettes round-robin to the matching attribute kinds.
func assignShapes(schema *domain.Schema, numShapes, catShapes []Shape) []Shape {
	shapes := make([]Shape, schema.Len())
	ni, ci := 0, 0
	for i := 0; i < schema.Len(); i++ {
		if schema.Attr(i).IsNumerical() {
			shapes[i] = numShapes[ni%len(numShapes)]
			ni++
		} else {
			shapes[i] = catShapes[ci%len(catShapes)]
			ci++
		}
	}
	return shapes
}

// ByName returns the generator with the given name.
func ByName(name string) (Generator, error) {
	switch name {
	case "uniform":
		return NewUniform(), nil
	case "normal":
		return NewNormal(), nil
	case "ipums-sim", "ipums":
		return NewIPUMSSim(), nil
	case "loan-sim", "loan":
		return NewLoanSim(), nil
	default:
		return nil, fmt.Errorf("dataset: unknown generator %q (want uniform|normal|ipums-sim|loan-sim)", name)
	}
}

// All returns the paper's four generators in presentation order.
func All() []Generator {
	return []Generator{NewUniform(), NewNormal(), NewIPUMSSim(), NewLoanSim()}
}

// MixedSchema builds the default experiment schema: kNum numerical
// attributes of domain dNum followed by kCat categorical attributes of
// domain dCat (DESIGN.md §7 item 6).
func MixedSchema(kNum, dNum, kCat, dCat int) *domain.Schema {
	attrs := make([]domain.Attribute, 0, kNum+kCat)
	for i := 0; i < kNum; i++ {
		attrs = append(attrs, domain.Attribute{
			Name: fmt.Sprintf("num%d", i),
			Kind: domain.Numerical,
			Size: dNum,
		})
	}
	for i := 0; i < kCat; i++ {
		attrs = append(attrs, domain.Attribute{
			Name: fmt.Sprintf("cat%d", i),
			Kind: domain.Categorical,
			Size: dCat,
		})
	}
	return domain.MustSchema(attrs...)
}

// NumericSchema builds an all-numerical schema of k attributes with domain d
// (the Fig 7 range-only setting).
func NumericSchema(k, d int) *domain.Schema {
	attrs := make([]domain.Attribute, k)
	for i := range attrs {
		attrs[i] = domain.Attribute{
			Name: fmt.Sprintf("num%d", i),
			Kind: domain.Numerical,
			Size: d,
		}
	}
	return domain.MustSchema(attrs...)
}
