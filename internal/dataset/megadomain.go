package dataset

import (
	"bufio"
	"fmt"
	"io"

	"felip/internal/fo"
)

// Mega-domain generation: a single categorical attribute whose domain is far
// past what Dataset's packed uint16 columns can hold (10^5+ values — URL
// hosts, app ids, tokens). The paper's grids never reach that size because
// FELIP bins numerical axes, but the HR oracle exists exactly for this
// regime, so the generator lives beside the paper's evaluation shapes rather
// than inside Dataset: one int slice, one Zipf profile, no schema.

// MegaDomain is a single-column categorical sample over [0, L).
type MegaDomain struct {
	// L is the domain size.
	L int
	// Values holds one drawn value per row.
	Values []int
}

// GenerateMegaDomain draws n Zipf(s)-distributed values over [0, L): value 0
// most frequent, the tail polynomially rare. The same (L, n, s, seed) always
// produces the identical sample.
func GenerateMegaDomain(L, n int, s float64, seed uint64) (*MegaDomain, error) {
	if L < 2 {
		return nil, fmt.Errorf("dataset: mega-domain size %d, need >= 2", L)
	}
	if n <= 0 {
		return nil, fmt.Errorf("dataset: mega-domain rows %d, need > 0", n)
	}
	if s <= 0 {
		return nil, fmt.Errorf("dataset: Zipf exponent %v, need > 0", s)
	}
	shape := ZipfShape(s, 0)
	r := fo.NewRand(seed)
	m := &MegaDomain{L: L, Values: make([]int, n)}
	for i := range m.Values {
		m.Values[i] = shape(r, L, 0)
	}
	return m, nil
}

// N returns the number of rows.
func (m *MegaDomain) N() int { return len(m.Values) }

// Frequencies returns the empirical distribution over the full domain — the
// ground truth a frequency oracle's estimates are scored against.
func (m *MegaDomain) Frequencies() []float64 {
	f := make([]float64, m.L)
	inc := 1 / float64(len(m.Values))
	for _, v := range m.Values {
		f[v] += inc
	}
	return f
}

// WriteCSV writes the sample as a one-column CSV with header "value".
func (m *MegaDomain) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "value"); err != nil {
		return err
	}
	for _, v := range m.Values {
		if _, err := fmt.Fprintln(bw, v); err != nil {
			return err
		}
	}
	return bw.Flush()
}
