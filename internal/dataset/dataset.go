// Package dataset provides the data substrate for FELIP experiments: a
// column-major in-memory table of encoded attribute values, synthetic
// generators reproducing the paper's four evaluation datasets (Uniform,
// Normal, and simulated stand-ins for the IPUMS census and Lending Club loan
// extracts — see DESIGN.md §6 for the substitution rationale), sampling, and
// CSV import/export.
package dataset

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"felip/internal/domain"
	"felip/internal/fo"
)

// Dataset is an immutable-after-construction column-major table. Values are
// stored as uint16 indexes into each attribute's domain [0, Size); all
// supported domains (≤ 2¹⁰ in the paper, ≤ 65535 here) fit.
type Dataset struct {
	schema *domain.Schema
	cols   [][]uint16
}

// New allocates an all-zero dataset with n rows over the schema.
func New(schema *domain.Schema, n int) *Dataset {
	cols := make([][]uint16, schema.Len())
	for i := range cols {
		cols[i] = make([]uint16, n)
	}
	return &Dataset{schema: schema, cols: cols}
}

// Schema returns the dataset's schema.
func (d *Dataset) Schema() *domain.Schema { return d.schema }

// N returns the number of rows (users).
func (d *Dataset) N() int {
	if len(d.cols) == 0 {
		return 0
	}
	return len(d.cols[0])
}

// Col returns the backing column for attribute i. The caller must not
// modify it.
func (d *Dataset) Col(i int) []uint16 { return d.cols[i] }

// Value returns the value of attribute attr in row row.
func (d *Dataset) Value(row, attr int) int { return int(d.cols[attr][row]) }

// SetValue stores a value, clamping into the attribute's domain. Intended
// for building bespoke datasets; generated datasets should not be mutated
// after collection.
func (d *Dataset) SetValue(row, attr, v int) { d.set(row, attr, v) }

// set stores a value, clamping into the attribute's domain.
func (d *Dataset) set(row, attr, v int) {
	size := d.schema.Attr(attr).Size
	if v < 0 {
		v = 0
	}
	if v >= size {
		v = size - 1
	}
	d.cols[attr][row] = uint16(v)
}

// Sample returns a uniform random sample (without replacement) of n rows.
// If n >= N() a copy of the whole dataset is returned.
func (d *Dataset) Sample(n int, r *fo.Rand) *Dataset {
	total := d.N()
	if n > total {
		n = total
	}
	idx := make([]int, total)
	r.Perm(idx)
	out := New(d.schema, n)
	for a := range d.cols {
		src, dst := d.cols[a], out.cols[a]
		for i := 0; i < n; i++ {
			dst[i] = src[idx[i]]
		}
	}
	return out
}

// Partition randomly splits the rows into two disjoint datasets, the first
// holding a fraction frac of the users (rounded, clamped so both halves are
// non-empty when possible). Used by the two-phase adaptive extension, where
// each user participates in exactly one phase.
func (d *Dataset) Partition(frac float64, r *fo.Rand) (*Dataset, *Dataset) {
	total := d.N()
	nA := int(frac*float64(total) + 0.5)
	if nA < 1 {
		nA = 1
	}
	if nA >= total {
		nA = total - 1
	}
	if total < 2 {
		return d.Sample(total, r), New(d.schema, 0)
	}
	idx := make([]int, total)
	r.Perm(idx)
	a := New(d.schema, nA)
	b := New(d.schema, total-nA)
	for col := range d.cols {
		src := d.cols[col]
		for i := 0; i < nA; i++ {
			a.cols[col][i] = src[idx[i]]
		}
		for i := nA; i < total; i++ {
			b.cols[col][i-nA] = src[idx[i]]
		}
	}
	return a, b
}

// Split partitions the rows into parts contiguous groups after a random
// shuffle, returning the per-row group assignment. It implements FELIP's
// population partitioning (§5.1): each user belongs to exactly one group.
func (d *Dataset) Split(parts int, r *fo.Rand) []int {
	n := d.N()
	assign := make([]int, n)
	perm := make([]int, n)
	r.Perm(perm)
	for i, p := range perm {
		assign[p] = i * parts / n
	}
	return assign
}

// WriteCSV writes the dataset with a header row of attribute names.
func (d *Dataset) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for i := 0; i < d.schema.Len(); i++ {
		if i > 0 {
			if _, err := bw.WriteString(","); err != nil {
				return err
			}
		}
		if _, err := bw.WriteString(d.schema.Attr(i).Name); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("\n"); err != nil {
		return err
	}
	n := d.N()
	for row := 0; row < n; row++ {
		for a := 0; a < d.schema.Len(); a++ {
			if a > 0 {
				if err := bw.WriteByte(','); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(strconv.Itoa(int(d.cols[a][row]))); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses a dataset written by WriteCSV. The header must match the
// schema's attribute names in order; values outside an attribute's domain
// are rejected.
func ReadCSV(r io.Reader, schema *domain.Schema) (*Dataset, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	if !sc.Scan() {
		return nil, fmt.Errorf("dataset: empty CSV input")
	}
	header := strings.Split(strings.TrimSpace(sc.Text()), ",")
	if len(header) != schema.Len() {
		return nil, fmt.Errorf("dataset: CSV has %d columns, schema has %d", len(header), schema.Len())
	}
	for i, name := range header {
		if name != schema.Attr(i).Name {
			return nil, fmt.Errorf("dataset: CSV column %d is %q, schema expects %q", i, name, schema.Attr(i).Name)
		}
	}
	var rows [][]uint16
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		fields := strings.Split(text, ",")
		if len(fields) != schema.Len() {
			return nil, fmt.Errorf("dataset: line %d has %d fields, want %d", line, len(fields), schema.Len())
		}
		row := make([]uint16, len(fields))
		for a, f := range fields {
			v, err := strconv.Atoi(f)
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d field %d: %v", line, a, err)
			}
			if v < 0 || v >= schema.Attr(a).Size {
				return nil, fmt.Errorf("dataset: line %d: value %d outside domain of %s", line, v, schema.Attr(a).Name)
			}
			row[a] = uint16(v)
		}
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := New(schema, len(rows))
	for i, row := range rows {
		for a, v := range row {
			out.cols[a][i] = v
		}
	}
	return out, nil
}

// Histogram1D returns the exact per-value frequency of attribute attr.
func (d *Dataset) Histogram1D(attr int) []float64 {
	size := d.schema.Attr(attr).Size
	out := make([]float64, size)
	n := d.N()
	if n == 0 {
		return out
	}
	for _, v := range d.cols[attr] {
		out[v]++
	}
	inv := 1 / float64(n)
	for i := range out {
		out[i] *= inv
	}
	return out
}
