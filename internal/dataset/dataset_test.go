package dataset

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"felip/internal/domain"
	"felip/internal/fo"
)

func testSchema() *domain.Schema {
	return MixedSchema(2, 32, 2, 4)
}

func TestNewAndAccessors(t *testing.T) {
	s := testSchema()
	d := New(s, 10)
	if d.N() != 10 {
		t.Fatalf("N = %d", d.N())
	}
	if d.Schema() != s {
		t.Error("Schema not returned")
	}
	d.set(3, 0, 17)
	if d.Value(3, 0) != 17 {
		t.Errorf("Value = %d", d.Value(3, 0))
	}
	if d.Col(0)[3] != 17 {
		t.Error("Col not backed by same storage")
	}
}

func TestSetClamps(t *testing.T) {
	d := New(testSchema(), 2)
	d.set(0, 0, -5)
	if d.Value(0, 0) != 0 {
		t.Error("negative not clamped to 0")
	}
	d.set(0, 0, 99)
	if d.Value(0, 0) != 31 {
		t.Error("overflow not clamped to Size-1")
	}
}

func TestSample(t *testing.T) {
	s := testSchema()
	d := New(s, 100)
	for i := 0; i < 100; i++ {
		d.set(i, 0, i%32)
	}
	r := fo.NewRand(1)
	sm := d.Sample(30, r)
	if sm.N() != 30 {
		t.Fatalf("sample N = %d", sm.N())
	}
	// Oversampling returns the full size.
	if d.Sample(500, r).N() != 100 {
		t.Error("oversample should cap at N")
	}
}

func TestPartition(t *testing.T) {
	s := testSchema()
	d := New(s, 1000)
	for i := 0; i < 1000; i++ {
		d.set(i, 0, i%32)
	}
	r := fo.NewRand(3)
	a, b := d.Partition(0.3, r)
	if a.N() != 300 || b.N() != 700 {
		t.Fatalf("partition sizes %d/%d, want 300/700", a.N(), b.N())
	}
	// Together they hold exactly the original multiset of attr-0 values.
	counts := make([]int, 32)
	for row := 0; row < a.N(); row++ {
		counts[a.Value(row, 0)]++
	}
	for row := 0; row < b.N(); row++ {
		counts[b.Value(row, 0)]++
	}
	for v, c := range counts {
		want := 1000 / 32
		if v < 1000%32 {
			want++
		}
		if c != want {
			t.Errorf("value %d count %d, want %d", v, c, want)
		}
	}
	// Extreme fractions keep both halves non-empty.
	a, b = d.Partition(0.0001, r)
	if a.N() < 1 || b.N() < 1 {
		t.Errorf("tiny fraction: %d/%d", a.N(), b.N())
	}
	a, b = d.Partition(0.9999, r)
	if a.N() != 999 || b.N() != 1 {
		t.Errorf("huge fraction: %d/%d", a.N(), b.N())
	}
}

func TestSplit(t *testing.T) {
	d := New(testSchema(), 1000)
	r := fo.NewRand(2)
	assign := d.Split(7, r)
	counts := make([]int, 7)
	for _, g := range assign {
		if g < 0 || g >= 7 {
			t.Fatalf("group %d out of range", g)
		}
		counts[g]++
	}
	for g, c := range counts {
		if c < 1000/7-1 || c > 1000/7+1 {
			t.Errorf("group %d has %d users, want ~%d", g, c, 1000/7)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	s := testSchema()
	d := NewUniform().Generate(s, 50, 123)
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, s)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != 50 {
		t.Fatalf("round trip N = %d", got.N())
	}
	for row := 0; row < 50; row++ {
		for a := 0; a < s.Len(); a++ {
			if got.Value(row, a) != d.Value(row, a) {
				t.Fatalf("row %d attr %d: %d != %d", row, a, got.Value(row, a), d.Value(row, a))
			}
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	s := testSchema()
	cases := []string{
		"",                                // empty
		"wrong,header,x,y\n0,0,0,0\n",     // header mismatch
		"num0,num1\n0,0\n",                // wrong column count
		"num0,num1,cat0,cat1\n0,0,0\n",    // short row
		"num0,num1,cat0,cat1\nx,0,0,0\n",  // non-numeric
		"num0,num1,cat0,cat1\n99,0,0,0\n", // out of domain
		"num0,num1,cat0,cat1\n-1,0,0,0\n", // negative
	}
	for _, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c), s); err == nil {
			t.Errorf("input %q accepted", c)
		}
	}
	// Blank lines are skipped.
	ok := "num0,num1,cat0,cat1\n1,2,3,1\n\n4,5,0,0\n"
	d, err := ReadCSV(strings.NewReader(ok), s)
	if err != nil {
		t.Fatal(err)
	}
	if d.N() != 2 || d.Value(1, 1) != 5 {
		t.Errorf("parsed %d rows", d.N())
	}
}

func TestHistogram1D(t *testing.T) {
	s := domain.MustSchema(domain.Attribute{Name: "a", Kind: domain.Categorical, Size: 4})
	d := New(s, 4)
	d.set(0, 0, 0)
	d.set(1, 0, 0)
	d.set(2, 0, 1)
	d.set(3, 0, 3)
	h := d.Histogram1D(0)
	want := []float64{0.5, 0.25, 0, 0.25}
	for i := range want {
		if math.Abs(h[i]-want[i]) > 1e-12 {
			t.Errorf("hist = %v, want %v", h, want)
		}
	}
	var sum float64
	for _, f := range h {
		sum += f
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("hist sums to %v", sum)
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	s := testSchema()
	for _, g := range All() {
		a := g.Generate(s, 100, 7)
		b := g.Generate(s, 100, 7)
		for row := 0; row < 100; row++ {
			for attr := 0; attr < s.Len(); attr++ {
				if a.Value(row, attr) != b.Value(row, attr) {
					t.Fatalf("%s not deterministic", g.Name())
				}
			}
		}
		c := g.Generate(s, 100, 8)
		same := true
		for row := 0; row < 100 && same; row++ {
			for attr := 0; attr < s.Len(); attr++ {
				if a.Value(row, attr) != c.Value(row, attr) {
					same = false
					break
				}
			}
		}
		if same {
			t.Errorf("%s: different seeds gave identical data", g.Name())
		}
	}
}

func TestGeneratorsInDomain(t *testing.T) {
	s := MixedSchema(3, 100, 3, 5)
	for _, g := range All() {
		d := g.Generate(s, 2000, 99)
		for a := 0; a < s.Len(); a++ {
			size := s.Attr(a).Size
			for row := 0; row < d.N(); row++ {
				if v := d.Value(row, a); v < 0 || v >= size {
					t.Fatalf("%s attr %d: value %d outside [0,%d)", g.Name(), a, v, size)
				}
			}
		}
	}
}

func TestUniformIsRoughlyUniform(t *testing.T) {
	s := domain.MustSchema(domain.Attribute{Name: "a", Kind: domain.Numerical, Size: 16})
	d := NewUniform().Generate(s, 64000, 5)
	h := d.Histogram1D(0)
	for v, f := range h {
		if math.Abs(f-1.0/16) > 0.01 {
			t.Errorf("uniform freq[%d] = %v, want ~1/16", v, f)
		}
	}
}

func TestNormalIsCentred(t *testing.T) {
	s := domain.MustSchema(domain.Attribute{Name: "a", Kind: domain.Numerical, Size: 64})
	d := NewNormal().Generate(s, 50000, 5)
	h := d.Histogram1D(0)
	// Middle must be clearly denser than the edges.
	if h[32] < 3*h[1] {
		t.Errorf("normal not centred: mid %v vs edge %v", h[32], h[1])
	}
	// Mean near the centre.
	var mean float64
	for v, f := range h {
		mean += float64(v) * f
	}
	if mean < 26 || mean > 38 {
		t.Errorf("normal mean = %v, want ~32", mean)
	}
}

func TestIPUMSSimSkewedCategorical(t *testing.T) {
	s := MixedSchema(0, 1, 1, 8)
	// Schema with only one categorical: first cat shape is education (zipf).
	d := NewIPUMSSim().Generate(s, 30000, 11)
	h := d.Histogram1D(0)
	if h[0] < h[7] {
		t.Errorf("zipf-shaped categorical not skewed: %v", h)
	}
}

func TestLoanSimBimodalRate(t *testing.T) {
	// Second numerical column of loan-sim is the bimodal interest rate.
	s := MixedSchema(2, 64, 0, 1)
	d := NewLoanSim().Generate(s, 50000, 13)
	h := d.Histogram1D(1)
	// Two humps around 0.3d and 0.7d, dip between.
	lo, mid, hi := h[19], h[32], h[44]
	if !(lo > mid && hi > mid) {
		t.Errorf("interest rate not bimodal: lo=%v mid=%v hi=%v", lo, mid, hi)
	}
}

func TestCorrelationInducedByLatentFactor(t *testing.T) {
	// loan-sim grade (cat, ρ=0.6) and interest rate (num, bimodal ρ=0.6)
	// must correlate: low grades (0 = best) should see lower rates.
	s := domain.MustSchema(
		domain.Attribute{Name: "rate", Kind: domain.Numerical, Size: 64},
		domain.Attribute{Name: "amount", Kind: domain.Numerical, Size: 64},
		domain.Attribute{Name: "grade", Kind: domain.Categorical, Size: 7},
	)
	// In loan-sim, numerical shapes are assigned in order: amount, rate...
	// Use ipums-sim instead: education (zipf ρ=0.5) vs income (heavytail ρ=0.55).
	s2 := domain.MustSchema(
		domain.Attribute{Name: "age", Kind: domain.Numerical, Size: 64},
		domain.Attribute{Name: "income", Kind: domain.Numerical, Size: 64},
		domain.Attribute{Name: "edu", Kind: domain.Categorical, Size: 8},
	)
	d := NewIPUMSSim().Generate(s2, 40000, 17)
	// Pearson correlation between income column and (negated) education rank.
	var sx, sy, sxx, syy, sxy float64
	n := float64(d.N())
	for row := 0; row < d.N(); row++ {
		x := float64(d.Value(row, 1))
		y := -float64(d.Value(row, 2)) // low rank = high education = high z
		sx += x
		sy += y
		sxx += x * x
		syy += y * y
		sxy += x * y
	}
	corr := (sxy - sx*sy/n) / math.Sqrt((sxx-sx*sx/n)*(syy-sy*sy/n))
	if corr < 0.1 {
		t.Errorf("income/education correlation = %v, want clearly positive", corr)
	}
	_ = s
}

func TestByName(t *testing.T) {
	for _, name := range []string{"uniform", "normal", "ipums-sim", "ipums", "loan-sim", "loan"} {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestSchemaBuilders(t *testing.T) {
	s := MixedSchema(3, 64, 2, 8)
	if s.Len() != 5 || s.NumNumerical() != 3 {
		t.Errorf("MixedSchema wrong: %v", s)
	}
	if s.Attr(3).Size != 8 || !s.Attr(3).IsCategorical() {
		t.Errorf("categorical attrs wrong: %+v", s.Attr(3))
	}
	ns := NumericSchema(4, 100)
	if ns.Len() != 4 || ns.NumNumerical() != 4 || ns.Attr(0).Size != 100 {
		t.Errorf("NumericSchema wrong: %v", ns)
	}
}
