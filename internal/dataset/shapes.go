package dataset

import (
	"math"

	"felip/internal/fo"
)

// A Shape draws one encoded value in [0, d) with a characteristic
// distribution shape, given a standard-normal latent factor z that induces
// correlation between columns sharing it (ρ weights how strongly the column
// follows the latent factor; ρ=0 means independent).
type Shape func(r *fo.Rand, d int, z float64) int

func clampVal(v, d int) int {
	if v < 0 {
		return 0
	}
	if v >= d {
		return d - 1
	}
	return v
}

// mix blends the shared latent factor with fresh noise: the result is again
// standard normal, correlated with z at level rho.
func mix(r *fo.Rand, z, rho float64) float64 {
	return rho*z + math.Sqrt(1-rho*rho)*r.NormFloat64()
}

// UniformShape draws uniformly over the domain.
func UniformShape(r *fo.Rand, d int, _ float64) int {
	return r.IntN(d)
}

// NormalShape draws a truncated normal centred on the middle of the domain
// with the paper's "covers all the domain" spread (σ = d/6), following the
// shared latent factor at ρ = 0.3.
func NormalShape(r *fo.Rand, d int, z float64) int {
	x := float64(d)/2 + mix(r, z, 0.3)*float64(d)/6
	return clampVal(int(math.Floor(x)), d)
}

// HeavyTailShape draws a lognormal-like value bunched near the low end with
// a long upper tail (income, capital gain, loan amount).
func HeavyTailShape(rho float64) Shape {
	return func(r *fo.Rand, d int, z float64) int {
		// exp of a normal, scaled so the bulk sits in the lower third.
		x := math.Exp(mix(r, z, rho)*0.8) - 0.3
		v := int(x * float64(d) / 4)
		return clampVal(v, d)
	}
}

// BimodalShape draws from a two-component normal mixture (e.g. interest
// rates clustered by loan grade).
func BimodalShape(rho float64) Shape {
	return func(r *fo.Rand, d int, z float64) int {
		g := mix(r, z, rho)
		var center float64
		if g > 0 {
			center = 0.7 * float64(d)
		} else {
			center = 0.3 * float64(d)
		}
		x := center + r.NormFloat64()*float64(d)/12
		return clampVal(int(math.Floor(x)), d)
	}
}

// SpikedShape concentrates a fraction of the mass on one value (hours worked
// ≈ 40, term = 36 months) and spreads the rest like a truncated normal.
func SpikedShape(spikeAt float64, spikeMass float64) Shape {
	return func(r *fo.Rand, d int, z float64) int {
		if r.Float64() < spikeMass {
			return clampVal(int(spikeAt*float64(d)), d)
		}
		return NormalShape(r, d, z)
	}
}

// ZipfShape draws categorical indexes with a Zipf(s) frequency profile —
// index 0 most common. Correlation enters by shifting the rank via the
// latent factor. The cumulative weights are cached per domain size, so
// repeated draws for one column cost a binary search.
func ZipfShape(s, rho float64) Shape {
	var (
		cachedD int
		cum     []float64
	)
	return func(r *fo.Rand, d int, z float64) int {
		if d != cachedD {
			cum = make([]float64, d)
			var total float64
			for i := 0; i < d; i++ {
				total += 1 / math.Pow(float64(i+1), s)
				cum[i] = total
			}
			cachedD = d
		}
		u := r.Float64() * cum[d-1]
		lo, hi := 0, d-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] < u {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		idx := lo
		if rho != 0 {
			// Nudge rank by the latent factor: high-z rows skew to low ranks.
			shift := int(math.Round(mix(r, z, rho) * float64(d) / 3))
			idx = clampVal(idx-shift, d)
		}
		return idx
	}
}

// AgeShape is a mixture of two truncated normals approximating an adult age
// pyramid (young-adult bulge plus a broad middle-age mass).
func AgeShape(r *fo.Rand, d int, z float64) int {
	var x float64
	if r.Float64() < 0.45 {
		x = 0.25*float64(d) + r.NormFloat64()*float64(d)/10
	} else {
		x = 0.55*float64(d) + mix(r, z, 0.2)*float64(d)/7
	}
	return clampVal(int(math.Floor(x)), d)
}

// BalancedCatShape draws a nearly balanced categorical value (sex) with a
// slight skew.
func BalancedCatShape(r *fo.Rand, d int, _ float64) int {
	if d == 1 {
		return 0
	}
	if r.Float64() < 0.52 {
		return r.IntN((d + 1) / 2)
	}
	return (d+1)/2 + r.IntN(d/2)
}
