package wire

import (
	"encoding/hex"
	"testing"

	"felip/internal/core"
	"felip/internal/fo"
)

// HR records ride the frame in a compact form: proto byte 3, then group u32,
// row u32, sign u8 — 10 tail bytes against the 17 every other protocol's
// seed-carrying record needs. These tests pin that layout the same way
// goldenV1Frame pins the pre-HR format, and prove the compact records
// coexist with full records inside one frame.

// goldenHRFrame is a FELIPBF1 frame holding two HR records around a GRR one:
// ids dev-a/dev-b/dev-c, groups 0/1/2, (row 9, sign −1), (value 3, seed 0),
// (row 130977, sign +1). Recorded once; re-encoding must reproduce it
// byte for byte forever.
const goldenHRFrame = "46454c49504246310300000037000000869bab85056465762d610300000000090000000105" +
	"6465762d620001000000030000000000000000000000056465762d630302000000a1ff010000"

func hrFrameReports() []BatchReport {
	return []BatchReport{
		{ID: "dev-a", Report: core.Report{Group: 0, Proto: fo.HR, Value: 9, Seed: 1}},
		{ID: "dev-b", Report: core.Report{Group: 1, Proto: fo.GRR, Value: 3, Seed: 0}},
		{ID: "dev-c", Report: core.Report{Group: 2, Proto: fo.HR, Value: 130977, Seed: 0}},
	}
}

func TestFrameHRGoldenPinned(t *testing.T) {
	frame, err := hex.DecodeString(goldenHRFrame)
	if err != nil {
		t.Fatal(err)
	}
	want := hrFrameReports()
	var r FrameReader
	n, err := r.Reset(frame)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(want) || r.Mode != fo.ModeFELIP {
		t.Fatalf("recorded HR frame: n=%d mode=%v", n, r.Mode)
	}
	// Per-record wire cost: 1 id-length byte + 5-byte id + tail (10 compact
	// for HR, 17 full otherwise).
	wantBytes := []int{16, 23, 16}
	for i := 0; r.Next(); i++ {
		if string(r.ID) != want[i].ID || r.Report != want[i].Report {
			t.Fatalf("record %d: id=%q rep=%+v, want id=%q rep=%+v",
				i, r.ID, r.Report, want[i].ID, want[i].Report)
		}
		if r.Attr != -1 {
			t.Fatalf("record %d: FELIP record answered attr %d", i, r.Attr)
		}
		if got := r.RecordBytes(); got != wantBytes[i] {
			t.Fatalf("record %d: RecordBytes = %d, want %d", i, got, wantBytes[i])
		}
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	reencoded, err := EncodeFrame(want)
	if err != nil {
		t.Fatal(err)
	}
	if hex.EncodeToString(reencoded) != goldenHRFrame {
		t.Fatalf("HR frame encoding drifted:\n  want %s\n  got  %x", goldenHRFrame, reencoded)
	}
	if got := FrameSizeMode(fo.ModeFELIP, want); got != len(frame) {
		t.Fatalf("FrameSizeMode = %d, want %d", got, len(frame))
	}
}

// goldenHRModeFrame is a FELIPBF2 SPL frame with one HR record: id dev-a,
// group 0, row 7, sign −1, attr 2. The v2 tail adds the u16 attr after the
// sign byte (12 tail bytes).
const goldenHRModeFrame = "46454c4950424632010100000012000000376f84cc056465762d61030000000007000000010200"

func TestFrameModeHRGoldenPinned(t *testing.T) {
	frame, err := hex.DecodeString(goldenHRModeFrame)
	if err != nil {
		t.Fatal(err)
	}
	want := []BatchReport{
		{ID: "dev-a", Attr: 2, Report: core.Report{Group: 0, Proto: fo.HR, Value: 7, Seed: 1}},
	}
	var r FrameReader
	if _, err := r.Reset(frame); err != nil {
		t.Fatal(err)
	}
	if r.Mode != fo.ModeSPL {
		t.Fatalf("mode %v, want SPL", r.Mode)
	}
	if !r.Next() {
		t.Fatalf("no record: %v", r.Err())
	}
	if string(r.ID) != "dev-a" || r.Report != want[0].Report || r.Attr != 2 {
		t.Fatalf("decoded id=%q rep=%+v attr=%d", r.ID, r.Report, r.Attr)
	}
	if got := r.RecordBytes(); got != 1+5+12 {
		t.Fatalf("v2 HR RecordBytes = %d, want 18", got)
	}
	reencoded, err := EncodeFrameMode(fo.ModeSPL, want)
	if err != nil {
		t.Fatal(err)
	}
	if hex.EncodeToString(reencoded) != goldenHRModeFrame {
		t.Fatalf("v2 HR encoding drifted:\n  want %s\n  got  %x", goldenHRModeFrame, reencoded)
	}
}

// An HR report's seed field is a sign bit; the encoder refuses anything
// outside {0, 1} rather than truncate it into a valid-looking record.
func TestFrameHRRejectsBadSign(t *testing.T) {
	bad := []BatchReport{
		{ID: "dev-x", Report: core.Report{Group: 0, Proto: fo.HR, Value: 1, Seed: 2}},
	}
	if _, err := EncodeFrame(bad); err == nil {
		t.Fatal("HR record with sign byte 2 encoded")
	}
	if _, err := EncodeFrameMode(fo.ModeSPL, bad); err == nil {
		t.Fatal("v2 HR record with sign byte 2 encoded")
	}
}

// The HR protocol name rides the JSON report path and the plan fingerprint:
// a plan that swaps a grid to HR must hash differently, while the pre-HR
// golden fingerprint (TestPlanFingerprintPinnedOneShot) stays bit-identical
// with HR registered.
func TestPlanFingerprintBindsHRProto(t *testing.T) {
	base := goldenPlan()
	hr := goldenPlan()
	hr.Grids[1].Proto = "HR"
	if base.Fingerprint() == hr.Fingerprint() {
		t.Fatal("switching a grid to HR does not change the plan fingerprint")
	}
	msg := ReportMessage{ReportID: "r1", Group: 0, Proto: "HR", Value: 5, Seed: 1}
	rep, err := msg.Report()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Proto != fo.HR || rep.Value != 5 || rep.Seed != 1 {
		t.Fatalf("HR report message decoded to %+v", rep)
	}
	if got := NewReportMessage("r1", rep); got.Proto != "HR" {
		t.Fatalf("HR report message encodes proto %q", got.Proto)
	}
}
