package wire

import (
	"bytes"
	"encoding/hex"
	"strings"
	"testing"

	"felip/internal/core"
	"felip/internal/fo"
)

func sampleModeBatch(n int) []BatchReport {
	out := sampleBatch(n)
	for i := range out {
		out[i].Attr = (i * 7) % 5
	}
	return out
}

func TestFrameModeRoundTrip(t *testing.T) {
	for _, mode := range []fo.ReportMode{fo.ModeSPL, fo.ModeRSFD} {
		reports := sampleModeBatch(201)
		frame, err := EncodeFrameMode(mode, reports)
		if err != nil {
			t.Fatalf("%v: EncodeFrameMode: %v", mode, err)
		}
		if !bytes.HasPrefix(frame, []byte(FrameMagicV2)) {
			t.Fatalf("%v: frame does not start with %q", mode, FrameMagicV2)
		}
		if got, want := len(frame), FrameSizeMode(mode, reports); got != want {
			t.Fatalf("%v: frame is %d bytes, FrameSizeMode says %d", mode, got, want)
		}
		if got := FrameReportCount(frame); got != len(reports) {
			t.Fatalf("%v: FrameReportCount = %d, want %d", mode, got, len(reports))
		}
		var r FrameReader
		n, err := r.Reset(frame)
		if err != nil {
			t.Fatalf("%v: Reset: %v", mode, err)
		}
		if n != len(reports) {
			t.Fatalf("%v: frame claims %d reports, encoded %d", mode, n, len(reports))
		}
		if r.Mode != mode {
			t.Fatalf("frame decodes as mode %v, want %v", r.Mode, mode)
		}
		i := 0
		for r.Next() {
			if got, want := string(r.ID), reports[i].ID; got != want {
				t.Fatalf("%v report %d: id %q, want %q", mode, i, got, want)
			}
			if r.Report != reports[i].Report {
				t.Fatalf("%v report %d: %+v, want %+v", mode, i, r.Report, reports[i].Report)
			}
			if r.Attr != reports[i].Attr {
				t.Fatalf("%v report %d: attr %d, want %d", mode, i, r.Attr, reports[i].Attr)
			}
			i++
		}
		if err := r.Err(); err != nil {
			t.Fatalf("%v: Err after iteration: %v", mode, err)
		}
		if i != len(reports) {
			t.Fatalf("%v: iterated %d reports, want %d", mode, i, len(reports))
		}
	}
}

// A FELIP batch must encode to the identical v1 bytes whichever API builds
// it: the mode refactor may not disturb a single bit of the default path.
func TestFrameModeFELIPByteIdentical(t *testing.T) {
	reports := sampleModeBatch(64)
	v1, err := EncodeFrame(reports)
	if err != nil {
		t.Fatal(err)
	}
	viaMode, err := EncodeFrameMode(fo.ModeFELIP, reports)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(v1, viaMode) {
		t.Fatalf("EncodeFrameMode(FELIP) diverged from EncodeFrame:\n  v1  %x\n  got %x", v1, viaMode)
	}
	if got, want := FrameSizeMode(fo.ModeFELIP, reports), len(v1); got != want {
		t.Fatalf("FrameSizeMode(FELIP) = %d, want %d", got, want)
	}
}

// goldenV1Frame is a FELIPBF1 frame recorded before the mode refactor: three
// reports, ids dev-a/dev-b/dev-c, groups 0/1/2, protocols GRR/OLH/GRR,
// values 3/5/0, seeds 0/0x0123456789abcdef/7. Decoding it must keep working
// forever, and must answer FELIP mode with no attribute.
const goldenV1Frame = "46454c49504246310300000045000000111635fb056465762d61000000000003000000000000" +
	"0000000000056465762d62010100000005000000efcdab8967452301056465762d6300020000" +
	"00000000000700000000000000"

func TestFrameV1GoldenDecodesAsFELIP(t *testing.T) {
	frame, err := hex.DecodeString(goldenV1Frame)
	if err != nil {
		t.Fatal(err)
	}
	want := []BatchReport{
		{ID: "dev-a", Report: core.Report{Group: 0, Proto: fo.GRR, Value: 3, Seed: 0}},
		{ID: "dev-b", Report: core.Report{Group: 1, Proto: fo.OLH, Value: 5, Seed: 0x0123456789abcdef}},
		{ID: "dev-c", Report: core.Report{Group: 2, Proto: fo.GRR, Value: 0, Seed: 7}},
	}
	if got := FrameReportCount(frame); got != len(want) {
		t.Fatalf("FrameReportCount = %d, want %d", got, len(want))
	}
	var r FrameReader
	n, err := r.Reset(frame)
	if err != nil {
		t.Fatalf("Reset on recorded v1 frame: %v", err)
	}
	if n != len(want) {
		t.Fatalf("recorded frame claims %d reports, want %d", n, len(want))
	}
	if r.Mode != fo.ModeFELIP {
		t.Fatalf("recorded v1 frame decodes as mode %v, want FELIP", r.Mode)
	}
	for i := 0; r.Next(); i++ {
		if string(r.ID) != want[i].ID || r.Report != want[i].Report {
			t.Fatalf("record %d: id=%q rep=%+v, want id=%q rep=%+v",
				i, r.ID, r.Report, want[i].ID, want[i].Report)
		}
		if r.Attr != -1 {
			t.Fatalf("record %d: v1 record answered attr %d, want -1 (none)", i, r.Attr)
		}
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	// And re-encoding the same reports today still produces the recorded
	// bytes: the v1 format is pinned, not just still readable.
	reencoded, err := EncodeFrame(want)
	if err != nil {
		t.Fatal(err)
	}
	if hex.EncodeToString(reencoded) != goldenV1Frame {
		t.Fatalf("v1 encoding drifted:\n  want %s\n  got  %x", goldenV1Frame, reencoded)
	}
}

func TestFrameModeEncodeRefusals(t *testing.T) {
	if _, err := EncodeFrameMode(fo.ModeSPL, nil); err == nil {
		t.Fatal("empty SPL frame encoded")
	}
	bad := sampleModeBatch(2)
	bad[1].Attr = MaxFrameAttr + 1
	if _, err := EncodeFrameMode(fo.ModeSPL, bad); err == nil || !strings.Contains(err.Error(), "attr") {
		t.Fatalf("oversized attr accepted: %v", err)
	}
	neg := sampleModeBatch(2)
	neg[0].Attr = -1
	if _, err := EncodeFrameMode(fo.ModeRSFD, neg); err == nil || !strings.Contains(err.Error(), "attr") {
		t.Fatalf("negative attr accepted: %v", err)
	}
	if _, err := EncodeFrameMode(fo.ReportMode(9), sampleModeBatch(1)); err == nil {
		t.Fatal("unknown mode encoded")
	}
}

func TestFrameModeUnknownModeByteRefused(t *testing.T) {
	frame, err := EncodeFrameMode(fo.ModeSPL, sampleModeBatch(3))
	if err != nil {
		t.Fatal(err)
	}
	frame[len(FrameMagicV2)] = 9 // the mode byte
	var r FrameReader
	if _, err := r.Reset(frame); err == nil || !strings.Contains(err.Error(), "mode") {
		t.Fatalf("unknown mode byte accepted: %v", err)
	}
}
