package wire

import (
	"bytes"
	"encoding/json"
	"testing"

	"felip/internal/core"
	"felip/internal/fo"
)

// goldenPlan is a fixed plan literal whose fingerprint is pinned below. It
// exists so the one-shot wire format can never drift: any change that alters
// what a v1 (pre-longitudinal) plan hashes to breaks this test.
func goldenPlan() PlanMessage {
	return PlanMessage{
		Epsilon: 1.5,
		Attributes: []AttributeDTO{
			{Name: "age", Kind: "numerical", Size: 64},
			{Name: "color", Kind: "categorical", Size: 8},
		},
		Grids: []GridDTO{
			{AttrX: 0, AttrY: 1, BoundsX: []int{8, 16, 24, 32, 40, 48, 56, 64}, BoundsY: []int{1, 2, 3, 4, 5, 6, 7, 8}, Proto: "GRR"},
			{AttrX: 0, AttrY: -1, BoundsX: []int{16, 32, 48, 64}, Proto: "OLH"},
		},
	}
}

// TestPlanFingerprintPinnedOneShot pins the exact fingerprint a
// non-longitudinal plan hashed to before the longitudinal field existed.
// Absence of the field must stay bit-identical to v1 forever.
func TestPlanFingerprintPinnedOneShot(t *testing.T) {
	const want = 0x2097ce31
	if got := goldenPlan().Fingerprint(); got != want {
		t.Fatalf("one-shot plan fingerprint drifted: got 0x%08x, want 0x%08x", got, want)
	}
}

// TestPlanLongitudinalChangesFingerprint verifies the longitudinal budgets are
// bound into the fingerprint — a memo or archive keyed by the fingerprint can
// never silently match a plan with different two-stage budgets.
func TestPlanLongitudinalChangesFingerprint(t *testing.T) {
	base := goldenPlan()
	long := base
	long.Longitudinal = &fo.Longitudinal{EpsPerm: 2.0, Eps1: 1.5}
	if long.Fingerprint() == base.Fingerprint() {
		t.Fatal("longitudinal plan fingerprints identically to the one-shot plan")
	}
	other := base
	other.Longitudinal = &fo.Longitudinal{EpsPerm: 3.0, Eps1: 1.5}
	if other.Fingerprint() == long.Fingerprint() {
		t.Fatal("different eps_perm produced the same fingerprint")
	}
}

// TestPlanJSONOmitsLongitudinalWhenNil verifies a one-shot plan's JSON carries
// no trace of the longitudinal field — the byte-identity contract for v1
// clients that hash or diff the plan body.
func TestPlanJSONOmitsLongitudinalWhenNil(t *testing.T) {
	buf, err := json.Marshal(goldenPlan())
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(buf, []byte("longitudinal")) {
		t.Fatalf("one-shot plan JSON mentions longitudinal: %s", buf)
	}
}

// TestPlanLongitudinalRoundTrip verifies the budgets survive the wire.
func TestPlanLongitudinalRoundTrip(t *testing.T) {
	msg := goldenPlan()
	msg.Longitudinal = &fo.Longitudinal{EpsPerm: 2.5, Eps1: 1.5}
	buf, err := json.Marshal(msg)
	if err != nil {
		t.Fatal(err)
	}
	var decoded PlanMessage
	if err := json.Unmarshal(buf, &decoded); err != nil {
		t.Fatal(err)
	}
	if !decoded.Longitudinal.Equal(msg.Longitudinal) {
		t.Fatalf("longitudinal round trip %+v -> %+v", msg.Longitudinal, decoded.Longitudinal)
	}
	if decoded.Fingerprint() != msg.Fingerprint() {
		t.Fatal("fingerprint changed across JSON round trip")
	}
}

// TestShardStateSumPinnedOneShot pins the exact checksum a non-longitudinal
// shard state summed to before the longitudinal field existed.
func TestShardStateSumPinnedOneShot(t *testing.T) {
	const want = 0xb670a23b
	st := NewShardStateMessage("shard-golden", 3, 1.5, fo.ModeFELIP, nil, 2, 1, []fo.PartialState{
		{Proto: fo.GRR, Epsilon: 1.5, L: 4, N: 10, Rejected: 1, Counts: []int64{4, 3, 2, 1}},
	})
	if got := st.Sum(); got != want {
		t.Fatalf("one-shot shard state checksum drifted: got 0x%08x, want 0x%08x", got, want)
	}
	if err := st.Verify(); err != nil {
		t.Fatal(err)
	}
	buf, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(buf, []byte("longitudinal")) {
		t.Fatalf("one-shot shard state JSON mentions longitudinal: %s", buf)
	}
}

// TestShardStateLongitudinalBoundIntoSum verifies the budgets change the
// checksum and survive a JSON round trip with Verify still passing.
func TestShardStateLongitudinalBoundIntoSum(t *testing.T) {
	parts := []fo.PartialState{
		{Proto: fo.GRR, Epsilon: 1.5, L: 4, N: 10, Rejected: 1, Counts: []int64{4, 3, 2, 1}},
	}
	long := &fo.Longitudinal{EpsPerm: 2.0, Eps1: 1.5}
	st := NewShardStateMessage("shard-golden", 3, 1.5, fo.ModeFELIP, long, 2, 1, parts)
	bare := NewShardStateMessage("shard-golden", 3, 1.5, fo.ModeFELIP, nil, 2, 1, parts)
	if st.Sum() == bare.Sum() {
		t.Fatal("longitudinal budgets not bound into the shard state checksum")
	}
	if err := st.Verify(); err != nil {
		t.Fatal(err)
	}
	buf, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var decoded ShardStateMessage
	if err := json.Unmarshal(buf, &decoded); err != nil {
		t.Fatal(err)
	}
	if err := decoded.Verify(); err != nil {
		t.Fatal(err)
	}
	if !decoded.Longitudinal.Equal(long) {
		t.Fatalf("longitudinal round trip %+v -> %+v", long, decoded.Longitudinal)
	}
}

// TestShardStateVerifyRefusesInvalidLongitudinal verifies a state claiming
// impossible budgets (ε_1 > ε_perm) fails verification even with a consistent
// checksum — a misconfigured shard must be caught before the merge.
func TestShardStateVerifyRefusesInvalidLongitudinal(t *testing.T) {
	st := NewShardStateMessage("s1", 1, 2.0, fo.ModeFELIP,
		&fo.Longitudinal{EpsPerm: 1.0, Eps1: 2.0}, 0, 0, []fo.PartialState{
			{Proto: fo.GRR, Epsilon: 2.0, L: 4, N: 0, Counts: []int64{0, 0, 0, 0}},
		})
	if err := st.Verify(); err == nil {
		t.Fatal("shard state with eps1 > eps_perm verified")
	}
}

// TestLongitudinalReportMessage verifies the report encoding: the claim
// travels, validates as GRR-only, and refuses to coexist with a mode.
func TestLongitudinalReportMessage(t *testing.T) {
	msg := NewLongitudinalReportMessage("dev-1-r3", core.Report{Group: 2, Proto: fo.GRR, Value: 5})
	if !msg.Longitudinal {
		t.Fatal("longitudinal claim missing")
	}
	if err := msg.Validate(); err != nil {
		t.Fatal(err)
	}
	buf, err := json.Marshal(msg)
	if err != nil {
		t.Fatal(err)
	}
	var decoded ReportMessage
	if err := json.Unmarshal(buf, &decoded); err != nil {
		t.Fatal(err)
	}
	if !decoded.Longitudinal {
		t.Fatal("longitudinal claim lost in round trip")
	}

	bad := msg
	bad.Mode = "SPL"
	if err := bad.Validate(); err == nil {
		t.Error("longitudinal report claiming a mode accepted")
	}
	bad = msg
	bad.Proto = "OLH"
	if err := bad.Validate(); err == nil {
		t.Error("longitudinal OLH report accepted")
	}

	oneShot := NewReportMessage("dev-2", core.Report{Group: 0, Proto: fo.GRR, Value: 1})
	buf, err = json.Marshal(oneShot)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(buf, []byte("longitudinal")) {
		t.Fatalf("one-shot report JSON mentions longitudinal: %s", buf)
	}
}
