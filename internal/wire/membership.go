package wire

import (
	"fmt"
	"hash/crc32"
)

// Shard roles a node can register under. A primary ingests reports for one
// logical shard; a follower replicates a primary's write-ahead log and is the
// coordinator's promotion target when the primary's heartbeat lapses.
const (
	RolePrimary  = "primary"
	RoleFollower = "follower"
)

// RegisterMessage announces a node to the coordinator's membership. Name is
// the *logical* shard identity — stable across failover, and what rendezvous
// routing hashes — while Base is the node's current, replaceable address. A
// follower registers under the logical shard it replicates via Follows.
type RegisterMessage struct {
	Name string `json:"name"`
	Base string `json:"base"`
	Role string `json:"role"`
	// Follows names the logical shard a follower replicates (follower role
	// only; must match an already-registered primary's Name).
	Follows string `json:"follows,omitempty"`
}

// Validate checks the message shape before it reaches the membership state
// machine.
func (m RegisterMessage) Validate() error {
	if m.Name == "" {
		return fmt.Errorf("wire: register without a shard name")
	}
	if m.Base == "" {
		return fmt.Errorf("wire: register %q without a base URL", m.Name)
	}
	switch m.Role {
	case RolePrimary:
		if m.Follows != "" {
			return fmt.Errorf("wire: primary %q cannot follow %q", m.Name, m.Follows)
		}
	case RoleFollower:
		if m.Follows == "" {
			return fmt.Errorf("wire: follower %q must name the shard it follows", m.Name)
		}
	default:
		return fmt.Errorf("wire: register %q with unknown role %q", m.Name, m.Role)
	}
	return nil
}

// RegisterResponse acknowledges a registration: the membership epoch the
// node joined at, and — for primaries — the first collection round the
// shard's reports will count toward. A fresh shard opens that round locally
// (httpapi.Server.BeginAtRound) so it never disagrees with the cluster about
// which round is collecting.
type RegisterResponse struct {
	Epoch     int64 `json:"epoch"`
	JoinRound int   `json:"join_round"`
}

// HeartbeatMessage is a node's periodic liveness report. Primaries carry
// their collection round and WAL position; followers additionally carry the
// primary position they last observed, which is what the coordinator turns
// into the per-shard replication-lag gauges.
type HeartbeatMessage struct {
	Name string `json:"name"`
	Base string `json:"base"`
	Role string `json:"role"`
	// Round and WALPos describe this node's own log: for a primary the open
	// collection round and its segment's end offset, for a follower the round
	// and offset it has replicated through.
	Round  int   `json:"round"`
	WALPos int64 `json:"wal_pos"`
	// PrimaryRound and PrimaryPos are the primary-side positions a follower
	// observed on its last successful sync (follower role only).
	PrimaryRound int   `json:"primary_round,omitempty"`
	PrimaryPos   int64 `json:"primary_pos,omitempty"`
}

// Validate checks the heartbeat shape.
func (m HeartbeatMessage) Validate() error {
	if m.Name == "" || m.Base == "" {
		return fmt.Errorf("wire: heartbeat without name or base")
	}
	if m.Role != RolePrimary && m.Role != RoleFollower {
		return fmt.Errorf("wire: heartbeat %q with unknown role %q", m.Name, m.Role)
	}
	return nil
}

// HeartbeatResponse acknowledges a heartbeat with the current membership
// epoch, so a node can cheaply notice membership changed and refresh.
type HeartbeatResponse struct {
	Epoch int64 `json:"epoch"`
}

// MemberInfo is one logical shard in the membership snapshot.
type MemberInfo struct {
	Name string `json:"name"`
	Base string `json:"base"`
	// Alive reports the liveness verdict (static members are always alive:
	// they predate heartbeating and are exempt from eviction).
	Alive  bool `json:"alive"`
	Static bool `json:"static,omitempty"`
	// JoinedRound is the first round this shard's reports count toward.
	JoinedRound int `json:"joined_round"`
	// Follower is the shard's replication target, when one is attached.
	Follower *FollowerInfo `json:"follower,omitempty"`
}

// FollowerInfo describes a primary's attached follower.
type FollowerInfo struct {
	Base string `json:"base"`
	// LagSegments is how many WAL segments (rounds) the follower trails its
	// primary by; LagBytes the byte gap within the current segment.
	LagSegments int   `json:"lag_segments"`
	LagBytes    int64 `json:"lag_bytes"`
}

// MembershipMessage is the coordinator's routable-membership snapshot served
// at GET /v1/membership. Clients route reports by rendezvous hashing over the
// member names; the epoch tells them when to rebuild that map.
type MembershipMessage struct {
	Epoch int64 `json:"epoch"`
	// Round is the collection round the cluster is in.
	Round   int          `json:"round"`
	Members []MemberInfo `json:"members"`
}

// Names returns the logical shard names in snapshot order — the rendezvous
// routing domain.
func (m MembershipMessage) Names() []string {
	names := make([]string, len(m.Members))
	for i, mem := range m.Members {
		names[i] = mem.Name
	}
	return names
}

// SegmentChunk is one slice of a primary's write-ahead log on the replication
// wire: raw, already-framed reportlog bytes from offset From of the given
// round's segment, checksummed end to end so a follower never appends bytes
// damaged in transit.
type SegmentChunk struct {
	ShardID string `json:"shard_id"`
	Round   int    `json:"round"`
	From    int64  `json:"from"`
	Data    []byte `json:"data,omitempty"`
	// Sum is CRC32-IEEE over Data.
	Sum uint32 `json:"sum"`
	// Pos is the segment's end offset at serve time (From + len(Data)).
	Pos int64 `json:"pos"`
	// Sealed means no byte will ever be appended to this round's segment
	// again (the primary has moved to a later round); a follower that has
	// consumed through Pos may advance to the next segment.
	Sealed bool `json:"sealed"`
	// Truncated means the round's segment bytes no longer exist on the
	// primary — they were archived into a snapshot and the segment file was
	// truncated. A truncated chunk carries no data and is NOT the same as an
	// empty round: a follower cannot verify or replay this round's history
	// from the primary's log and must refuse to silently skip it.
	Truncated bool `json:"truncated,omitempty"`
	// CurrentRound is the primary's open collection round.
	CurrentRound int `json:"current_round"`
}

// NewSegmentChunk checksums a chunk for the wire.
func NewSegmentChunk(shardID string, round int, from int64, data []byte, pos int64, sealed bool, currentRound int) SegmentChunk {
	return SegmentChunk{
		ShardID:      shardID,
		Round:        round,
		From:         from,
		Data:         data,
		Sum:          crc32.ChecksumIEEE(data),
		Pos:          pos,
		Sealed:       sealed,
		CurrentRound: currentRound,
	}
}

// NewTruncatedSegmentChunk marks a round whose segment bytes were archived
// away on the primary: there is nothing left to ship, and the follower must
// treat the round as unverifiable from the log, not as empty. Pos equals
// From because the original segment length is gone with the bytes.
func NewTruncatedSegmentChunk(shardID string, round int, from int64, currentRound int) SegmentChunk {
	c := NewSegmentChunk(shardID, round, from, nil, from, true, currentRound)
	c.Truncated = true
	return c
}

// Verify checks the chunk's internal consistency and checksum. A follower
// verifies before appending a single byte: replicated segments must be
// bit-identical to the primary's, or promotion would not be.
func (c SegmentChunk) Verify() error {
	if c.Round < 1 || c.From < 0 {
		return fmt.Errorf("wire: segment chunk round %d offset %d out of range", c.Round, c.From)
	}
	if c.From+int64(len(c.Data)) != c.Pos {
		return fmt.Errorf("wire: segment chunk spans [%d,%d) but claims end %d", c.From, c.From+int64(len(c.Data)), c.Pos)
	}
	if got := crc32.ChecksumIEEE(c.Data); got != c.Sum {
		return fmt.Errorf("wire: segment chunk checksum %08x, message claims %08x", got, c.Sum)
	}
	return nil
}

// PromoteRequest asks a follower to take over its logical shard: verify the
// shipped-segment CRC chain, replay it, and begin serving as the primary for
// the given collection round.
type PromoteRequest struct {
	Round int `json:"round"`
}

// PromoteResponse reports a completed promotion.
type PromoteResponse struct {
	Name string `json:"name"`
	// Round is the collection round the promoted shard is now serving.
	Round int `json:"round"`
	// Reports is how many reports the replayed chain reconstructed.
	Reports int `json:"reports"`
	// Replayed is how many WAL records were replayed during takeover.
	Replayed int `json:"replayed"`
}
