// Package wire defines the JSON messages exchanged between FELIP clients
// (user devices) and the aggregator service: the published collection plan,
// individual ε-LDP reports, and query responses. It converts between the
// wire representation and the in-memory types of internal/core.
package wire

import (
	cryptorand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"math"

	"felip/internal/core"
	"felip/internal/domain"
	"felip/internal/fo"
	"felip/internal/grid"
)

// AttributeDTO describes one schema attribute on the wire.
type AttributeDTO struct {
	Name string `json:"name"`
	Kind string `json:"kind"` // "numerical" | "categorical"
	Size int    `json:"size"`
}

// GridDTO describes one grid of the plan on the wire. Axes travel as
// explicit boundary lists, so variable-width (equi-mass) cells round-trip
// exactly.
type GridDTO struct {
	AttrX   int    `json:"attr_x"`
	AttrY   int    `json:"attr_y"` // -1 for 1-D grids
	BoundsX []int  `json:"bounds_x"`
	BoundsY []int  `json:"bounds_y,omitempty"`
	Proto   string `json:"proto"` // "GRR" | "OLH" | "HR"
}

// PlanMessage is the aggregator's published plan: everything a device needs
// to produce its report(s). Mode names the round's reporting mode ("SPL",
// "RS+FD"); it is empty for FELIP so v1 plans keep their exact JSON and
// fingerprint.
type PlanMessage struct {
	Epsilon float64 `json:"epsilon"`
	Mode    string  `json:"mode,omitempty"`
	// Longitudinal carries the round's two-stage memoized-reporting budgets;
	// absent (nil) on every one-shot plan, so v1 plans keep their exact JSON
	// and fingerprint. When set, Epsilon is the per-round budget ε_1.
	Longitudinal *fo.Longitudinal `json:"longitudinal,omitempty"`
	Attributes   []AttributeDTO   `json:"attributes"`
	Grids        []GridDTO        `json:"grids"`
}

// ReportMode parses the plan's reporting mode (empty = FELIP).
func (m PlanMessage) ReportMode() (fo.ReportMode, error) {
	return fo.ParseReportMode(m.Mode)
}

// ModeName returns a mode's wire spelling: the empty string for FELIP (v1
// artifacts never carried a mode and must keep decoding as FELIP), the
// conventional name otherwise.
func ModeName(mode fo.ReportMode) string {
	if mode == fo.ModeFELIP {
		return ""
	}
	return mode.String()
}

// ReportMessage is one user's ε-LDP report on the wire.
//
// ReportID is a device-chosen idempotency key: the aggregator counts at most
// one report per key, so a device that never saw its acknowledgment can
// resubmit the same message safely. The key is minted independently of the
// user's true value (see NewReportID), so it carries no information the
// ε-LDP report doesn't already reveal.
type ReportMessage struct {
	ReportID string `json:"report_id"`
	Group    int    `json:"group"`
	Proto    string `json:"proto"`
	Value    int    `json:"value"`
	Seed     uint64 `json:"seed,omitempty"`
	// Mode names the reporting mode the report was produced under; empty
	// means FELIP, so v1 reports decode unchanged.
	Mode string `json:"mode,omitempty"`
	// Attr is the reported grid's primary attribute index; nil when absent
	// (FELIP v1 clients never send it). Non-FELIP reports carry it so the
	// server can cross-check each of a user's m reports against the plan.
	Attr *int `json:"attr,omitempty"`
	// Longitudinal marks a report produced by the memoized two-stage chain.
	// A longitudinal server refuses reports without the claim, and a one-shot
	// server refuses reports carrying it: mixing the two within a round would
	// corrupt the estimator's inversion. Absent on every v1 report.
	Longitudinal bool `json:"longitudinal,omitempty"`
}

// QueryResponse carries a query answer. Round identifies the collection
// round the answer came from — under multi-round serving the aggregator keeps
// answering from the last finalized round while the next one collects.
type QueryResponse struct {
	Query         string  `json:"query"`
	Estimate      float64 `json:"estimate"`
	ExpectedError float64 `json:"expected_error,omitempty"`
	N             int     `json:"n"`
	Round         int     `json:"round,omitempty"`
}

// BatchQueryRequest asks the aggregator to answer many WHERE expressions in
// one round trip (POST /v1/query); the server answers them concurrently.
// Round optionally targets a specific archived collection round (0 = the
// round currently serving); servers without an archive refuse any other
// round rather than silently answering from the current one.
type BatchQueryRequest struct {
	Queries []string `json:"queries"`
	Round   int      `json:"round,omitempty"`
}

// BatchQueryItem is one batch entry's outcome: either an estimate (with the
// optional a-priori expected error) or a per-query error. A failed query
// never fails the batch.
type BatchQueryItem struct {
	Query         string  `json:"query"`
	Estimate      float64 `json:"estimate"`
	ExpectedError float64 `json:"expected_error,omitempty"`
	Error         string  `json:"error,omitempty"`
}

// BatchQueryResponse carries the batch's results in request order, all
// answered from the same collection round.
type BatchQueryResponse struct {
	Round   int              `json:"round"`
	N       int              `json:"n"`
	Results []BatchQueryItem `json:"results"`
}

func protoName(p fo.Protocol) string { return p.String() }

func protoFromName(s string) (fo.Protocol, error) {
	switch s {
	case "GRR":
		return fo.GRR, nil
	case "OLH":
		return fo.OLH, nil
	case "OUE":
		return fo.OUE, nil
	case "HR":
		return fo.HR, nil
	default:
		return 0, fmt.Errorf("wire: unknown protocol %q", s)
	}
}

// NewPlanMessage encodes a schema and grid plan for publication under the
// round's reporting mode and (optionally) longitudinal parameters; long is
// nil for one-shot rounds, keeping the message byte-identical to v1.
func NewPlanMessage(schema *domain.Schema, eps float64, mode fo.ReportMode, long *fo.Longitudinal, specs []core.GridSpec) PlanMessage {
	msg := PlanMessage{Epsilon: eps, Mode: ModeName(mode), Longitudinal: long}
	for i := 0; i < schema.Len(); i++ {
		a := schema.Attr(i)
		msg.Attributes = append(msg.Attributes, AttributeDTO{
			Name: a.Name,
			Kind: a.Kind.String(),
			Size: a.Size,
		})
	}
	for _, sp := range specs {
		dto := GridDTO{
			AttrX:   sp.AttrX,
			AttrY:   sp.AttrY,
			BoundsX: sp.AxisX.Boundaries(),
			Proto:   protoName(sp.Proto),
		}
		if !sp.Is1D() {
			dto.BoundsY = sp.AxisY.Boundaries()
		}
		msg.Grids = append(msg.Grids, dto)
	}
	return msg
}

// Fingerprint returns a CRC32-IEEE over the plan's canonical serialization:
// epsilon, every attribute, and every grid's axes and protocol in fixed
// order. Two nodes (or two restarts of one node) produce the same fingerprint
// iff they planned the identical round, so a durable snapshot stamped with it
// can refuse to restore into a server whose flags drifted.
func (m PlanMessage) Fingerprint() uint32 {
	h := crc32.NewIEEE()
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	str := func(s string) {
		put(uint64(len(s)))
		h.Write([]byte(s))
	}
	put(math.Float64bits(m.Epsilon))
	put(uint64(len(m.Attributes)))
	for _, a := range m.Attributes {
		str(a.Name)
		str(a.Kind)
		put(uint64(a.Size))
	}
	put(uint64(len(m.Grids)))
	for _, g := range m.Grids {
		put(uint64(uint32(int32(g.AttrX))))
		put(uint64(uint32(int32(g.AttrY))))
		str(g.Proto)
		put(uint64(len(g.BoundsX)))
		for _, b := range g.BoundsX {
			put(uint64(uint32(int32(b))))
		}
		put(uint64(len(g.BoundsY)))
		for _, b := range g.BoundsY {
			put(uint64(uint32(int32(b))))
		}
	}
	// The mode joins the canonical form only when set, so every FELIP plan —
	// including those fingerprinted by v1 snapshots — keeps its exact value.
	if m.Mode != "" {
		str("mode")
		str(m.Mode)
	}
	// Likewise the longitudinal budgets: one-shot plans (nil) keep their v1
	// fingerprint; longitudinal plans bind ε_perm and ε_1 into it, so a memo
	// or snapshot drawn under different budgets can never silently match.
	if m.Longitudinal != nil {
		str("longitudinal")
		put(math.Float64bits(m.Longitudinal.EpsPerm))
		put(math.Float64bits(m.Longitudinal.Eps1))
	}
	return h.Sum32()
}

// Schema reconstructs the schema from the plan.
func (m PlanMessage) Schema() (*domain.Schema, error) {
	attrs := make([]domain.Attribute, len(m.Attributes))
	for i, dto := range m.Attributes {
		var kind domain.Kind
		switch dto.Kind {
		case "numerical":
			kind = domain.Numerical
		case "categorical":
			kind = domain.Categorical
		default:
			return nil, fmt.Errorf("wire: attribute %q has unknown kind %q", dto.Name, dto.Kind)
		}
		attrs[i] = domain.Attribute{Name: dto.Name, Kind: kind, Size: dto.Size}
	}
	return domain.NewSchema(attrs...)
}

// Specs reconstructs the grid plan from the message, validating it against
// the reconstructed schema.
func (m PlanMessage) Specs() ([]core.GridSpec, error) {
	schema, err := m.Schema()
	if err != nil {
		return nil, err
	}
	specs := make([]core.GridSpec, 0, len(m.Grids))
	for i, dto := range m.Grids {
		proto, err := protoFromName(dto.Proto)
		if err != nil {
			return nil, fmt.Errorf("wire: grid %d: %w", i, err)
		}
		if dto.AttrX < 0 || dto.AttrX >= schema.Len() {
			return nil, fmt.Errorf("wire: grid %d: attr_x %d out of range", i, dto.AttrX)
		}
		axX, err := grid.NewCustomAxis(schema.Attr(dto.AttrX).Size, dto.BoundsX)
		if err != nil {
			return nil, fmt.Errorf("wire: grid %d: %w", i, err)
		}
		sp := core.GridSpec{AttrX: dto.AttrX, AttrY: dto.AttrY, AxisX: axX, Proto: proto}
		if dto.AttrY >= 0 {
			if dto.AttrY >= schema.Len() {
				return nil, fmt.Errorf("wire: grid %d: attr_y %d out of range", i, dto.AttrY)
			}
			axY, err := grid.NewCustomAxis(schema.Attr(dto.AttrY).Size, dto.BoundsY)
			if err != nil {
				return nil, fmt.Errorf("wire: grid %d: %w", i, err)
			}
			sp.AxisY = axY
		} else {
			sp.AttrY = -1
		}
		specs = append(specs, sp)
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("wire: plan has no grids")
	}
	return specs, nil
}

// NewReportMessage encodes a core report for the wire under the given
// idempotency key (see NewReportID).
func NewReportMessage(id string, r core.Report) ReportMessage {
	return ReportMessage{ReportID: id, Group: r.Group, Proto: protoName(r.Proto), Value: r.Value, Seed: r.Seed}
}

// NewModeReportMessage encodes one mode-produced report: FELIP reports stay
// byte-identical to NewReportMessage (no mode, no attr), non-FELIP reports
// carry the mode name and the grid's attribute index.
func NewModeReportMessage(id string, mode fo.ReportMode, r core.ModeReport) ReportMessage {
	msg := NewReportMessage(id, r.Report)
	if mode != fo.ModeFELIP {
		msg.Mode = ModeName(mode)
		attr := r.Attr
		msg.Attr = &attr
	}
	return msg
}

// NewLongitudinalReportMessage encodes one memoized two-stage report. The
// longitudinal claim travels with the report so the server can refuse a
// one-shot report into a longitudinal round (and vice versa) instead of
// silently folding values drawn from a different channel.
func NewLongitudinalReportMessage(id string, r core.Report) ReportMessage {
	msg := NewReportMessage(id, r)
	msg.Longitudinal = true
	return msg
}

// MaxReportIDLen bounds the device-chosen idempotency key.
const MaxReportIDLen = 128

// NewReportID mints a fresh idempotency key from the device's entropy pool.
// The key is drawn independently of the user's record, so its reuse across
// retries reveals only "same submission", never anything about the value.
func NewReportID() string {
	var b [16]byte
	if _, err := cryptorand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; refusing to produce
		// a weak or colliding key is the only safe reaction.
		panic(fmt.Sprintf("wire: reading entropy for report id: %v", err))
	}
	return hex.EncodeToString(b[:])
}

// Validate checks the wire-level invariants every report must satisfy before
// it is considered: key present and bounded, protocol known, group and value
// non-negative. Range checks against the round's actual plan (group count,
// grid sizes) are the collector's job.
func (m ReportMessage) Validate() error {
	if m.ReportID == "" {
		return fmt.Errorf("wire: report missing report_id")
	}
	if len(m.ReportID) > MaxReportIDLen {
		return fmt.Errorf("wire: report_id of %d bytes exceeds %d", len(m.ReportID), MaxReportIDLen)
	}
	if _, err := protoFromName(m.Proto); err != nil {
		return err
	}
	if m.Group < 0 {
		return fmt.Errorf("wire: negative group %d", m.Group)
	}
	if m.Value < 0 {
		return fmt.Errorf("wire: negative report value %d", m.Value)
	}
	if _, err := fo.ParseReportMode(m.Mode); err != nil {
		return err
	}
	if m.Attr != nil && *m.Attr < 0 {
		return fmt.Errorf("wire: negative attr %d", *m.Attr)
	}
	if m.Longitudinal {
		if m.Mode != "" {
			return fmt.Errorf("wire: longitudinal report cannot also claim mode %q", m.Mode)
		}
		if m.Proto != "GRR" {
			return fmt.Errorf("wire: longitudinal reports are GRR two-stage chains, got %q", m.Proto)
		}
	}
	return nil
}

// Report decodes the wire message into a core report.
func (m ReportMessage) Report() (core.Report, error) {
	proto, err := protoFromName(m.Proto)
	if err != nil {
		return core.Report{}, err
	}
	return core.Report{Group: m.Group, Proto: proto, Value: m.Value, Seed: m.Seed}, nil
}
