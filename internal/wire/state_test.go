package wire

import (
	"encoding/json"
	"testing"

	"felip/internal/fo"
)

// addReport feeds one perturbed report for value v into the protocol's
// aggregators (the single-node reference and the owning shard).
func perturbInto(t *testing.T, proto fo.Protocol, eps float64, L, n, shards int, seed uint64) (single any, shardAggs []any) {
	t.Helper()
	r := fo.NewRand(seed)
	switch proto {
	case fo.GRR:
		c, err := fo.NewGRRClient(eps, L)
		if err != nil {
			t.Fatal(err)
		}
		s := fo.NewGRRAggregator(eps, L)
		aggs := make([]any, shards)
		for i := range aggs {
			aggs[i] = fo.NewGRRAggregator(eps, L)
		}
		for i := 0; i < n; i++ {
			rep, err := c.Perturb(i%L, r)
			if err != nil {
				t.Fatal(err)
			}
			s.Add(rep)
			aggs[i%shards].(*fo.GRRAggregator).Add(rep)
		}
		return s, aggs
	case fo.OLH:
		c, err := fo.NewOLHClient(eps, L)
		if err != nil {
			t.Fatal(err)
		}
		s := fo.NewOLHAggregator(eps, L)
		aggs := make([]any, shards)
		for i := range aggs {
			// Mix modes: even shards pre-fold (streaming), odd buffer.
			if i%2 == 0 {
				aggs[i] = fo.NewOLHAggregatorStreaming(eps, L)
			} else {
				aggs[i] = fo.NewOLHAggregator(eps, L)
			}
		}
		for i := 0; i < n; i++ {
			rep, err := c.Perturb(i%L, r)
			if err != nil {
				t.Fatal(err)
			}
			s.Add(rep)
			aggs[i%shards].(*fo.OLHAggregator).Add(rep)
		}
		return s, aggs
	case fo.OUE:
		c, err := fo.NewOUEClient(eps, L)
		if err != nil {
			t.Fatal(err)
		}
		s := fo.NewOUEAggregator(eps, L)
		aggs := make([]any, shards)
		for i := range aggs {
			aggs[i] = fo.NewOUEAggregator(eps, L)
		}
		for i := 0; i < n; i++ {
			rep, err := c.Perturb(i%L, r)
			if err != nil {
				t.Fatal(err)
			}
			s.Add(rep)
			aggs[i%shards].(*fo.OUEAggregator).Add(rep)
		}
		return s, aggs
	}
	t.Fatalf("unknown protocol %v", proto)
	return nil, nil
}

func export(t *testing.T, agg any) fo.PartialState {
	t.Helper()
	var st fo.PartialState
	var err error
	switch a := agg.(type) {
	case *fo.GRRAggregator:
		st, err = a.ExportState()
	case *fo.OLHAggregator:
		st, err = a.ExportState()
	case *fo.OUEAggregator:
		st, err = a.ExportState()
	}
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func estimates(t *testing.T, agg any) []float64 {
	t.Helper()
	switch a := agg.(type) {
	case *fo.GRRAggregator:
		return a.Estimates()
	case *fo.OLHAggregator:
		return a.Estimates()
	case *fo.OUEAggregator:
		return a.Estimates()
	}
	t.Fatalf("unknown aggregator %T", agg)
	return nil
}

// TestShardStateWireMergeEquivalence extends the TestOLHMergeEquivalence
// family through the wire: for all three frequency oracles, shard-split
// report streams exported as ShardStateMessages, JSON round-tripped,
// checksum-verified, decoded, and imported into a fresh aggregator must
// estimate bit-identically to single-node folding. This is the exactness
// property the sharded ingest cluster is built on.
func TestShardStateWireMergeEquivalence(t *testing.T) {
	const eps, L, n = 1.1, 64, 3000
	for _, proto := range []fo.Protocol{fo.GRR, fo.OLH, fo.OUE} {
		for _, shards := range []int{2, 3, 5} {
			single, shardAggs := perturbInto(t, proto, eps, L, n, shards, 43)
			want := estimates(t, single)

			var merged any
			switch proto {
			case fo.GRR:
				merged = fo.NewGRRAggregator(eps, L)
			case fo.OLH:
				merged = fo.NewOLHAggregator(eps, L)
			case fo.OUE:
				merged = fo.NewOUEAggregator(eps, L)
			}
			total := 0
			for i, sh := range shardAggs {
				msg := NewShardStateMessage("shard-0", 1, eps, fo.ModeFELIP, nil, 0, 0, []fo.PartialState{export(t, sh)})
				// The full wire path: marshal, unmarshal, verify, decode.
				raw, err := json.Marshal(msg)
				if err != nil {
					t.Fatal(err)
				}
				var back ShardStateMessage
				if err := json.Unmarshal(raw, &back); err != nil {
					t.Fatal(err)
				}
				if err := back.Verify(); err != nil {
					t.Fatalf("%v shard %d: %v", proto, i, err)
				}
				states, err := back.States()
				if err != nil {
					t.Fatal(err)
				}
				total += back.Reports
				var impErr error
				switch m := merged.(type) {
				case *fo.GRRAggregator:
					impErr = m.ImportState(states[0])
				case *fo.OLHAggregator:
					impErr = m.ImportState(states[0])
				case *fo.OUEAggregator:
					impErr = m.ImportState(states[0])
				}
				if impErr != nil {
					t.Fatalf("%v shard %d: import: %v", proto, i, impErr)
				}
			}
			if total != n {
				t.Fatalf("%v k=%d: wire states carry %d reports, want %d", proto, shards, total, n)
			}
			got := estimates(t, merged)
			for v := range got {
				if got[v] != want[v] {
					t.Fatalf("%v k=%d: estimate[%d] = %v, want %v (wire merge not exact)",
						proto, shards, v, got[v], want[v])
				}
			}
		}
	}
}

// TestShardStateChecksumCatchesCorruption: any mutation of a merge-relevant
// field must fail Verify — a damaged state must never reach the merge.
func TestShardStateChecksumCatchesCorruption(t *testing.T) {
	agg := fo.NewGRRAggregator(1.0, 8)
	agg.Add(3)
	agg.Add(5)
	st, err := agg.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	good := NewShardStateMessage("s1", 2, 1.0, fo.ModeFELIP, nil, 1, 0, []fo.PartialState{st})
	if err := good.Verify(); err != nil {
		t.Fatalf("freshly encoded state fails verify: %v", err)
	}

	for name, mutate := range map[string]func(m *ShardStateMessage){
		"count":    func(m *ShardStateMessage) { m.Grids[0].Counts[0]++ },
		"n":        func(m *ShardStateMessage) { m.Grids[0].N++ },
		"round":    func(m *ShardStateMessage) { m.Round = 3 },
		"epsilon":  func(m *ShardStateMessage) { m.Epsilon = 2 },
		"shard id": func(m *ShardStateMessage) { m.ShardID = "s2" },
		"reports":  func(m *ShardStateMessage) { m.Reports++ },
	} {
		bad := good
		bad.Grids = append([]GridStateDTO(nil), good.Grids...)
		bad.Grids[0].Counts = append([]int64(nil), good.Grids[0].Counts...)
		mutate(&bad)
		if err := bad.Verify(); err == nil {
			t.Errorf("mutated %s passes verify", name)
		}
	}

	// WALReplayed is operational metadata: a crashed-and-recovered shard
	// re-serves the same state with a different replay count, and that must
	// still verify.
	recovered := good
	recovered.WALReplayed = 1234
	if err := recovered.Verify(); err != nil {
		t.Errorf("WAL replay count change fails verify: %v", err)
	}

	// A version from the future must be refused before the checksum is even
	// consulted.
	future := good
	future.Version = ShardStateVersion + 1
	future.Checksum = future.Sum()
	if err := future.Verify(); err == nil {
		t.Error("future version accepted")
	}

	// Non-dense grids must be refused at decode.
	sparse := good
	sparse.Grids = append([]GridStateDTO(nil), good.Grids...)
	sparse.Grids[0].Group = 1
	if _, err := sparse.States(); err == nil {
		t.Error("non-dense grid list accepted")
	}
}
