package wire

// RoundInfo describes one collection round a server can answer queries from:
// either the currently served round or an archived (time-travel) one.
type RoundInfo struct {
	Round   int `json:"round"`
	Reports int `json:"reports"`
	// SnapshotBytes is the on-disk size of the round's archive snapshot
	// (0 for a round that is served but not archived).
	SnapshotBytes int64 `json:"snapshot_bytes,omitempty"`
	// Served marks the round the live query plane currently answers from.
	Served bool `json:"served,omitempty"`
	// Archived marks rounds restorable from the archive after a restart.
	Archived bool `json:"archived,omitempty"`
}

// RoundsResponse is the GET /v1/rounds listing: every queryable round in
// ascending order, plus the collection and serving cursors.
type RoundsResponse struct {
	Rounds []RoundInfo `json:"rounds"`
	// Current is the round currently collecting reports.
	Current int `json:"current"`
	// Served is the round the query plane answers from (0 before the first
	// finalize).
	Served int `json:"served"`
}
