package wire

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"felip/internal/fo"
)

// ShardStateVersion is the partial-aggregate wire-format version. A
// coordinator refuses states from a different version instead of merging
// counts whose meaning may have drifted.
const ShardStateVersion = 1

// GridStateDTO is one grid's partial-aggregate state on the wire: the exact
// integer count vector the shard folded its reports into (see
// fo.PartialState), *before* estimation — which is what makes shard states
// losslessly mergeable.
type GridStateDTO struct {
	Group    int     `json:"group"`
	Proto    string  `json:"proto"`
	L        int     `json:"l"`
	N        int     `json:"n"`
	Rejected int     `json:"rejected,omitempty"`
	Counts   []int64 `json:"counts"`
}

// ShardStateMessage is a shard server's sealed round state: one partial
// aggregate per grid of the plan, plus the shard's operational counters. The
// coordinator pulls one per shard at round finalize, verifies the checksum,
// and merges the grids into its own collector.
//
// The message is a deterministic function of the set of reports the shard
// accepted, so a shard that crashed and replayed its WAL re-serves the same
// message — the coordinator may fetch it any number of times.
type ShardStateMessage struct {
	Version int    `json:"version"`
	ShardID string `json:"shard_id"`
	// Round is the collection round the state belongs to (1-based).
	Round   int     `json:"round"`
	Epsilon float64 `json:"epsilon"`
	// Mode is the shard's reporting mode (ModeName form; "" = FELIP, keeping
	// v1 messages and their checksums byte-identical). The coordinator refuses
	// to merge shard states whose modes disagree with its own plan: partial
	// counts folded under different perturbation budgets are not mergeable.
	Mode string `json:"mode,omitempty"`
	// Longitudinal carries the shard's two-stage memoized-reporting budgets;
	// nil on every one-shot shard (keeping v1 messages and checksums
	// byte-identical). The coordinator refuses to merge shard states whose
	// longitudinal parameters disagree with its own: counts drawn through
	// different two-stage chains invert differently.
	Longitudinal *fo.Longitudinal `json:"longitudinal,omitempty"`
	// Reports is the shard's accepted-report total (the sum of the grid Ns).
	Reports int `json:"reports"`
	// Rejected is the shard's refused-submission total (wire-level plus
	// plan-level) — surfaced so the coordinator's status roll-up does not
	// lose it inside the shard process.
	Rejected int `json:"rejected"`
	// WALReplayed is how many report records the shard replayed from its
	// write-ahead log since startup — nonzero means the shard recovered from
	// a crash during this round.
	WALReplayed int            `json:"wal_replayed,omitempty"`
	Grids       []GridStateDTO `json:"grids"`
	// Checksum is CRC32-IEEE over the canonical serialization of every
	// merge-relevant field (all of the above except WALReplayed, which is
	// operational metadata and legitimately changes across a crash).
	Checksum uint32 `json:"checksum"`
}

// GridStates encodes partial-aggregate states for the wire (or a durable
// snapshot), in group order — the collector's export order.
func GridStates(states []fo.PartialState) []GridStateDTO {
	out := make([]GridStateDTO, 0, len(states))
	for g, st := range states {
		out = append(out, GridStateDTO{
			Group:    g,
			Proto:    protoName(st.Proto),
			L:        st.L,
			N:        st.N,
			Rejected: st.Rejected,
			Counts:   append([]int64(nil), st.Counts...),
		})
	}
	return out
}

// ParseGridStates decodes per-grid partial aggregates, in group order. The
// grids must be dense (group g at index g) — the shape GridStates produces
// and the only shape a merge can consume positionally.
func ParseGridStates(grids []GridStateDTO, eps float64) ([]fo.PartialState, error) {
	out := make([]fo.PartialState, len(grids))
	for i, g := range grids {
		if g.Group != i {
			return nil, fmt.Errorf("wire: grid state %d carries group %d; grids must be dense and ordered", i, g.Group)
		}
		proto, err := protoFromName(g.Proto)
		if err != nil {
			return nil, fmt.Errorf("wire: grid state %d: %w", i, err)
		}
		out[i] = fo.PartialState{
			Proto:    proto,
			Epsilon:  eps,
			L:        g.L,
			N:        g.N,
			Rejected: g.Rejected,
			Counts:   append([]int64(nil), g.Counts...),
		}
	}
	return out, nil
}

// NewShardStateMessage encodes a sealed shard round for the wire. states must
// be in group order (the collector's export order).
func NewShardStateMessage(shardID string, round int, eps float64, mode fo.ReportMode, long *fo.Longitudinal, rejected, walReplayed int, states []fo.PartialState) ShardStateMessage {
	m := ShardStateMessage{
		Version:      ShardStateVersion,
		ShardID:      shardID,
		Round:        round,
		Epsilon:      eps,
		Mode:         ModeName(mode),
		Longitudinal: long,
		Rejected:     rejected,
		WALReplayed:  walReplayed,
		Grids:        GridStates(states),
	}
	for _, st := range states {
		m.Reports += st.N
	}
	m.Checksum = m.Sum()
	return m
}

// Sum computes the message's canonical CRC32-IEEE checksum: every
// merge-relevant field in fixed order, little-endian, length-prefixed
// strings. WALReplayed and Checksum itself are excluded.
func (m ShardStateMessage) Sum() uint32 {
	h := crc32.NewIEEE()
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	str := func(s string) {
		put(uint64(len(s)))
		h.Write([]byte(s))
	}
	put(uint64(m.Version))
	str(m.ShardID)
	put(uint64(m.Round))
	put(math.Float64bits(m.Epsilon))
	// Mode entered the message after v1 shipped; folding it in only when set
	// keeps every FELIP ("" mode) checksum identical to its v1 value.
	if m.Mode != "" {
		str("mode")
		str(m.Mode)
	}
	// Same discipline for the longitudinal budgets: absent (nil) leaves every
	// one-shot checksum at its v1 value; present binds both stage budgets.
	if m.Longitudinal != nil {
		str("longitudinal")
		put(math.Float64bits(m.Longitudinal.EpsPerm))
		put(math.Float64bits(m.Longitudinal.Eps1))
	}
	put(uint64(m.Reports))
	put(uint64(m.Rejected))
	put(uint64(len(m.Grids)))
	for _, g := range m.Grids {
		put(uint64(g.Group))
		str(g.Proto)
		put(uint64(g.L))
		put(uint64(g.N))
		put(uint64(g.Rejected))
		put(uint64(len(g.Counts)))
		for _, c := range g.Counts {
			put(uint64(c))
		}
	}
	return h.Sum32()
}

// Verify checks the wire-format version and the checksum. A coordinator
// verifies before decoding: a state damaged in transit or produced by an
// incompatible shard must never reach the merge.
func (m ShardStateMessage) Verify() error {
	if m.Version != ShardStateVersion {
		return fmt.Errorf("wire: shard state version %d, want %d", m.Version, ShardStateVersion)
	}
	if got := m.Sum(); got != m.Checksum {
		return fmt.Errorf("wire: shard %q state checksum %08x, message claims %08x", m.ShardID, got, m.Checksum)
	}
	if _, err := fo.ParseReportMode(m.Mode); err != nil {
		return fmt.Errorf("wire: shard %q state: %w", m.ShardID, err)
	}
	if err := m.Longitudinal.Validate(); err != nil {
		return fmt.Errorf("wire: shard %q state: %w", m.ShardID, err)
	}
	return nil
}

// ReportMode decodes the message's mode field ("" reads as FELIP, the only
// mode v1 shards could run).
func (m ShardStateMessage) ReportMode() (fo.ReportMode, error) {
	return fo.ParseReportMode(m.Mode)
}

// States decodes the per-grid partial aggregates, in group order. The grids
// must be dense (group g at index g) — the shape the collector exports and
// the only shape the coordinator can merge positionally.
func (m ShardStateMessage) States() ([]fo.PartialState, error) {
	out := make([]fo.PartialState, len(m.Grids))
	for i, g := range m.Grids {
		if g.Group != i {
			return nil, fmt.Errorf("wire: shard state grid %d carries group %d; grids must be dense and ordered", i, g.Group)
		}
		proto, err := protoFromName(g.Proto)
		if err != nil {
			return nil, fmt.Errorf("wire: shard state grid %d: %w", i, err)
		}
		out[i] = fo.PartialState{
			Proto:    proto,
			Epsilon:  m.Epsilon,
			L:        g.L,
			N:        g.N,
			Rejected: g.Rejected,
			Counts:   append([]int64(nil), g.Counts...),
		}
	}
	return out, nil
}
