package wire

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"strings"
	"testing"

	"felip/internal/core"
	"felip/internal/fo"
)

func sampleBatch(n int) []BatchReport {
	out := make([]BatchReport, n)
	for i := range out {
		proto := fo.GRR
		if i%2 == 1 {
			proto = fo.OLH
		}
		out[i] = BatchReport{
			ID: fmt.Sprintf("device-%04d", i),
			Report: core.Report{
				Group: i % 3,
				Proto: proto,
				Value: i % 7,
				Seed:  uint64(i) * 0x9e3779b97f4a7c15,
			},
		}
	}
	return out
}

func TestFrameRoundTrip(t *testing.T) {
	reports := sampleBatch(257)
	frame, err := EncodeFrame(reports)
	if err != nil {
		t.Fatalf("EncodeFrame: %v", err)
	}
	var r FrameReader
	n, err := r.Reset(frame)
	if err != nil {
		t.Fatalf("Reset: %v", err)
	}
	if n != len(reports) {
		t.Fatalf("frame claims %d reports, encoded %d", n, len(reports))
	}
	i := 0
	for r.Next() {
		if got, want := string(r.ID), reports[i].ID; got != want {
			t.Fatalf("report %d: id %q, want %q", i, got, want)
		}
		if r.Report != reports[i].Report {
			t.Fatalf("report %d: %+v, want %+v", i, r.Report, reports[i].Report)
		}
		i++
	}
	if err := r.Err(); err != nil {
		t.Fatalf("Err after iteration: %v", err)
	}
	if i != len(reports) {
		t.Fatalf("iterated %d reports, want %d", i, len(reports))
	}
}

func TestFrameRejectsDamage(t *testing.T) {
	frame, err := EncodeFrame(sampleBatch(16))
	if err != nil {
		t.Fatal(err)
	}
	var r FrameReader

	flip := append([]byte(nil), frame...)
	flip[len(flip)-3] ^= 0xFF
	if _, err := r.Reset(flip); err == nil {
		t.Fatal("flipped payload byte accepted")
	}

	torn := frame[:len(frame)-5]
	if _, err := r.Reset(torn); err == nil {
		t.Fatal("torn frame accepted")
	}

	badMagic := append([]byte(nil), frame...)
	copy(badMagic, "XXXXXXXX")
	if _, err := r.Reset(badMagic); err == nil {
		t.Fatal("bad magic accepted")
	}

	hostile := append([]byte(nil), frame...)
	binary.LittleEndian.PutUint32(hostile[len(FrameMagic)+4:], 1<<31)
	if _, err := r.Reset(hostile); err == nil {
		t.Fatal("hostile payload length accepted")
	}

	if _, err := r.Reset(nil); err == nil {
		t.Fatal("empty buffer accepted")
	}
}

func TestFrameRejectsMalformedRecords(t *testing.T) {
	// A frame whose envelope checksum holds but whose record stream lies:
	// hand-build a payload with a bad protocol byte.
	reports := sampleBatch(2)
	frame, err := EncodeFrame(reports)
	if err != nil {
		t.Fatal(err)
	}
	// Protocol byte of record 0 sits right after idlen + id.
	protoOff := frameHeaderLen + 1 + len(reports[0].ID)
	bad := append([]byte(nil), frame...)
	bad[protoOff] = 0x7F
	// Re-stamp the checksum so only the record is wrong, not the envelope.
	binary.LittleEndian.PutUint32(bad[len(FrameMagic)+8:], crc32OfPayload(bad))
	var r FrameReader
	if _, err := r.Reset(bad); err != nil {
		t.Fatalf("envelope should verify: %v", err)
	}
	if r.Next() {
		t.Fatal("malformed record iterated")
	}
	if r.Err() == nil {
		t.Fatal("malformed record left no error")
	}
}

func crc32OfPayload(frame []byte) uint32 {
	return crc32.ChecksumIEEE(frame[frameHeaderLen:])
}

func TestFrameEncodeRefusesIllegalReports(t *testing.T) {
	cases := []struct {
		name string
		br   BatchReport
	}{
		{"empty id", BatchReport{ID: "", Report: core.Report{Proto: fo.GRR}}},
		{"oversized id", BatchReport{ID: strings.Repeat("x", MaxReportIDLen+1), Report: core.Report{Proto: fo.GRR}}},
		{"negative group", BatchReport{ID: "a", Report: core.Report{Group: -1, Proto: fo.GRR}}},
		{"negative value", BatchReport{ID: "a", Report: core.Report{Value: -1, Proto: fo.GRR}}},
		{"unknown proto", BatchReport{ID: "a", Report: core.Report{Proto: fo.Protocol(9)}}},
	}
	for _, tc := range cases {
		if _, err := EncodeFrame([]BatchReport{tc.br}); err == nil {
			t.Errorf("%s: encoded", tc.name)
		}
	}
	if _, err := EncodeFrame(nil); err == nil {
		t.Error("empty batch encoded")
	}
}

func TestFrameReportCount(t *testing.T) {
	frame, err := EncodeFrame(sampleBatch(37))
	if err != nil {
		t.Fatal(err)
	}
	if got := FrameReportCount(frame); got != 37 {
		t.Fatalf("FrameReportCount = %d, want 37", got)
	}
	// A damaged payload still reports the header's claim; a destroyed header
	// reports 1.
	flip := append([]byte(nil), frame...)
	flip[len(flip)-1] ^= 0xFF
	if got := FrameReportCount(flip); got != 37 {
		t.Fatalf("FrameReportCount on damaged payload = %d, want 37", got)
	}
	if got := FrameReportCount([]byte("short")); got != 1 {
		t.Fatalf("FrameReportCount on garbage = %d, want 1", got)
	}
	hostile := append([]byte(nil), frame...)
	binary.LittleEndian.PutUint32(hostile[len(FrameMagic):], 1<<30)
	if got := FrameReportCount(hostile); got != MaxFrameReports {
		t.Fatalf("FrameReportCount on hostile count = %d, want %d", got, MaxFrameReports)
	}
}

func TestFrameDecodeAllocs(t *testing.T) {
	reports := sampleBatch(512)
	frame, err := EncodeFrame(reports)
	if err != nil {
		t.Fatal(err)
	}
	var r FrameReader
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := r.Reset(frame); err != nil {
			t.Fatal(err)
		}
		for r.Next() {
		}
		if err := r.Err(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("frame decode allocates %.1f times per 512-report frame, want 0", allocs)
	}
}

func TestFrameTrailingBytesRefused(t *testing.T) {
	frame, err := EncodeFrame(sampleBatch(3))
	if err != nil {
		t.Fatal(err)
	}
	// Claim 2 reports but keep 3 records' bytes: the reader must notice the
	// payload does not end on the last claimed record.
	bad := append([]byte(nil), frame...)
	binary.LittleEndian.PutUint32(bad[len(FrameMagic):], 2)
	binary.LittleEndian.PutUint32(bad[len(FrameMagic)+8:], crc32OfPayload(bad))
	var r FrameReader
	if _, err := r.Reset(bad); err != nil {
		t.Fatalf("envelope should verify: %v", err)
	}
	n := 0
	for r.Next() {
		n++
	}
	if r.Err() == nil {
		t.Fatalf("trailing payload bytes accepted after %d reports", n)
	}
	if !bytes.Contains([]byte(r.Err().Error()), []byte("trailing")) {
		t.Fatalf("unexpected error: %v", r.Err())
	}
}
