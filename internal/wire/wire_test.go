package wire

import (
	"encoding/json"
	"testing"

	"felip/internal/core"
	"felip/internal/dataset"
	"felip/internal/fo"
)

func testPlan(t *testing.T) ([]core.GridSpec, PlanMessage) {
	t.Helper()
	schema := dataset.MixedSchema(2, 64, 2, 8)
	specs, err := core.BuildPlan(schema, 50000, core.Options{Strategy: core.OHG, Epsilon: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	return specs, NewPlanMessage(schema, 1.0, fo.ModeFELIP, nil, specs)
}

func TestPlanRoundTrip(t *testing.T) {
	specs, msg := testPlan(t)

	// JSON round trip.
	buf, err := json.Marshal(msg)
	if err != nil {
		t.Fatal(err)
	}
	var decoded PlanMessage
	if err := json.Unmarshal(buf, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Epsilon != 1.0 || len(decoded.Grids) != len(specs) || len(decoded.Attributes) != 4 {
		t.Fatalf("decoded plan %+v", decoded)
	}

	schema, err := decoded.Schema()
	if err != nil {
		t.Fatal(err)
	}
	if schema.Len() != 4 || !schema.Attr(0).IsNumerical() || !schema.Attr(2).IsCategorical() {
		t.Fatalf("schema %v", schema)
	}

	got, err := decoded.Specs()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(specs) {
		t.Fatalf("got %d specs, want %d", len(got), len(specs))
	}
	for i, sp := range got {
		want := specs[i]
		if sp.AttrX != want.AttrX || sp.AttrY != want.AttrY || sp.Proto != want.Proto {
			t.Fatalf("spec %d: %+v vs %+v", i, sp, want)
		}
		if sp.L() != want.L() {
			t.Fatalf("spec %d: L %d vs %d", i, sp.L(), want.L())
		}
		// Axis behaviour must be identical: same cell for every value.
		dx := sp.AxisX.Domain()
		for v := 0; v < dx; v++ {
			if sp.AxisX.CellOf(v) != want.AxisX.CellOf(v) {
				t.Fatalf("spec %d: CellOf(%d) differs after round trip", i, v)
			}
		}
	}
}

func TestPlanValidation(t *testing.T) {
	_, msg := testPlan(t)

	bad := msg
	bad.Attributes = append([]AttributeDTO(nil), msg.Attributes...)
	bad.Attributes[0].Kind = "weird"
	if _, err := bad.Schema(); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := bad.Specs(); err == nil {
		t.Error("specs with bad schema accepted")
	}

	bad = msg
	bad.Grids = append([]GridDTO(nil), msg.Grids...)
	bad.Grids[0].Proto = "XYZ"
	if _, err := bad.Specs(); err == nil {
		t.Error("unknown protocol accepted")
	}

	bad = msg
	bad.Grids = append([]GridDTO(nil), msg.Grids...)
	bad.Grids[0].AttrX = 99
	if _, err := bad.Specs(); err == nil {
		t.Error("out-of-range attr accepted")
	}

	bad = msg
	bad.Grids = append([]GridDTO(nil), msg.Grids...)
	bad.Grids[0].BoundsX = []int{5, 1}
	if _, err := bad.Specs(); err == nil {
		t.Error("invalid boundaries accepted")
	}

	bad = msg
	bad.Grids = nil
	if _, err := bad.Specs(); err == nil {
		t.Error("empty plan accepted")
	}
}

func TestReportRoundTrip(t *testing.T) {
	for _, rep := range []core.Report{
		{Group: 3, Proto: fo.GRR, Value: 7},
		{Group: 0, Proto: fo.OLH, Value: 2, Seed: 0xDEADBEEF},
	} {
		msg := NewReportMessage(NewReportID(), rep)
		if err := msg.Validate(); err != nil {
			t.Fatal(err)
		}
		buf, err := json.Marshal(msg)
		if err != nil {
			t.Fatal(err)
		}
		var decoded ReportMessage
		if err := json.Unmarshal(buf, &decoded); err != nil {
			t.Fatal(err)
		}
		if decoded.ReportID != msg.ReportID {
			t.Errorf("report_id %q -> %q", msg.ReportID, decoded.ReportID)
		}
		got, err := decoded.Report()
		if err != nil {
			t.Fatal(err)
		}
		if got != rep {
			t.Errorf("round trip %+v -> %+v", rep, got)
		}
	}
	if _, err := (ReportMessage{Proto: "???"}).Report(); err == nil {
		t.Error("unknown protocol accepted")
	}
}

func TestReportValidation(t *testing.T) {
	ok := NewReportMessage(NewReportID(), core.Report{Group: 1, Proto: fo.GRR, Value: 2})
	for name, mutate := range map[string]func(*ReportMessage){
		"missing report_id": func(m *ReportMessage) { m.ReportID = "" },
		"oversized report_id": func(m *ReportMessage) {
			for len(m.ReportID) <= MaxReportIDLen {
				m.ReportID += "x"
			}
		},
		"unknown proto":  func(m *ReportMessage) { m.Proto = "RAPPOR" },
		"negative group": func(m *ReportMessage) { m.Group = -1 },
		"negative value": func(m *ReportMessage) { m.Value = -3 },
	} {
		bad := ok
		mutate(&bad)
		if err := bad.Validate(); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid report rejected: %v", err)
	}
}

func TestNewReportIDUnique(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		id := NewReportID()
		if len(id) == 0 || len(id) > MaxReportIDLen {
			t.Fatalf("id %q out of bounds", id)
		}
		if seen[id] {
			t.Fatalf("duplicate id %q", id)
		}
		seen[id] = true
	}
}
