package wire

import (
	"strings"
	"testing"
)

func TestRegisterMessageValidate(t *testing.T) {
	cases := []struct {
		name string
		msg  RegisterMessage
		ok   bool
	}{
		{"primary", RegisterMessage{Name: "s1", Base: "http://a", Role: RolePrimary}, true},
		{"follower", RegisterMessage{Name: "s1", Base: "http://b", Role: RoleFollower, Follows: "s1"}, true},
		{"no name", RegisterMessage{Base: "http://a", Role: RolePrimary}, false},
		{"no base", RegisterMessage{Name: "s1", Role: RolePrimary}, false},
		{"bad role", RegisterMessage{Name: "s1", Base: "http://a", Role: "observer"}, false},
		{"primary follows", RegisterMessage{Name: "s1", Base: "http://a", Role: RolePrimary, Follows: "s2"}, false},
		{"follower without target", RegisterMessage{Name: "s1", Base: "http://b", Role: RoleFollower}, false},
	}
	for _, tc := range cases {
		if err := tc.msg.Validate(); (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

func TestSegmentChunkVerify(t *testing.T) {
	data := []byte("framed wal bytes")
	chunk := NewSegmentChunk("shard0", 2, 10, data, 10+int64(len(data)), false, 2)
	if err := chunk.Verify(); err != nil {
		t.Fatalf("fresh chunk: %v", err)
	}

	flipped := chunk
	flipped.Data = append([]byte(nil), data...)
	flipped.Data[3] ^= 1
	if err := flipped.Verify(); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("corrupted data verified: %v", err)
	}

	short := chunk
	short.Pos = chunk.Pos + 1
	if err := short.Verify(); err == nil {
		t.Fatal("inconsistent span verified")
	}

	empty := NewSegmentChunk("shard0", 1, 0, nil, 0, true, 3)
	if err := empty.Verify(); err != nil {
		t.Fatalf("empty sealed chunk: %v", err)
	}
}
