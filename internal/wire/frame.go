package wire

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"felip/internal/core"
	"felip/internal/fo"
)

// This file is the batched binary ingest wire: a length-prefixed,
// CRC32-checked frame carrying N ε-LDP reports in one POST /v1/reports
// request. At millions of devices the ingest bottleneck is protocol
// overhead — one JSON POST per report costs a request, a decoder
// allocation, and a map churn each — so the batch path moves whole frames:
// one HTTP exchange, one checksum, one WAL write, one fsync per N reports.
//
// Frame layout (all integers little-endian):
//
//	magic   "FELIPBF1"                  (8 bytes)
//	count   u32   number of reports
//	paylen  u32   payload length in bytes
//	crc     u32   CRC32-IEEE of the payload
//	payload count records, each:
//	  idlen u8    report_id length (1..MaxReportIDLen)
//	  id    idlen bytes
//	  proto u8    0=GRR 1=OLH 2=OUE 3=HR
//	  group u32
//	  value u32
//	  seed  u64   (HR records: sign u8 instead — see below)
//
// HR records are compact: an HR report carries only a Hadamard row index
// (value) and a sign bit, so the u64 seed field shrinks to one sign byte
// (0=+1, 1=−1) and an HR record tail is 10 bytes instead of 17. The
// decoder branches on the proto byte it just read; records of the other
// protocols keep their exact pre-HR byte layout.
//
// The envelope discipline is the archive's FELIPSNP one — magic, explicit
// length, checksum over the payload — so a torn or damaged frame is refused
// before a single report inside it is trusted. Reports inside a frame keep
// their individual idempotency keys: the batch is a transport optimization,
// not a semantic unit, and every report gets the same accept/duplicate/
// conflict disposition it would get on the single-report path.

// FrameMagic opens every v1 batch report frame.
const FrameMagic = "FELIPBF1"

// FrameMagicV2 opens a v2 frame: the header gains a mode byte and every
// record a u16 attribute index, so SPL and RS+FD batches carry their mode on
// the wire. FELIP batches keep emitting v1 frames byte-identically (see
// EncodeFrameMode), and v1 frames always decode as FELIP mode.
//
//	magic   "FELIPBF2"                  (8 bytes)
//	mode    u8    0=FELIP 1=SPL 2=RS+FD
//	count   u32   number of reports
//	paylen  u32   payload length in bytes
//	crc     u32   CRC32-IEEE of the payload
//	payload count records, each:
//	  idlen u8    report_id length (1..MaxReportIDLen)
//	  id    idlen bytes
//	  proto u8    0=GRR 1=OLH 2=OUE 3=HR
//	  group u32
//	  value u32
//	  seed  u64   (HR records: sign u8 instead)
//	  attr  u16   grid's primary attribute index
const FrameMagicV2 = "FELIPBF2"

// frameHeaderLen is magic + count u32 + paylen u32 + crc u32.
const frameHeaderLen = len(FrameMagic) + 12

// frameHeaderLenV2 adds the mode byte.
const frameHeaderLenV2 = len(FrameMagicV2) + 13

// MaxFrameAttr bounds a record's attribute index: it travels as a u16.
const MaxFrameAttr = 1<<16 - 1

// MaxFrameReports bounds the reports one frame may carry; a client batcher
// flushes at or below it, and a server refuses a frame claiming more.
const MaxFrameReports = 16384

// MaxFramePayload bounds a frame's payload bytes (a report encodes to at
// most 1+128+1+4+4+8 = 146 bytes, so the cap is generous for any legal
// frame but refuses a hostile length field before any allocation).
const MaxFramePayload = MaxFrameReports * 160

// Per-report disposition codes in a BatchReportResponse, deliberately the
// HTTP statuses the single-report path answers: a batch entry and a lone
// POST /v1/report of the same report always agree.
const (
	DispositionAccepted  = 204 // counted now, durable before the ack
	DispositionDuplicate = 200 // already counted under this key (honest retry)
	DispositionConflict  = 409 // key reused with a different payload, or round closed
	DispositionRejected  = 400 // failed wire or plan validation
)

// BatchReport is one report of a batch frame: the device's idempotency key
// plus its ε-LDP report. Attr is the grid's primary attribute index; it only
// travels in v2 frames (non-FELIP modes) and is ignored by the v1 encoder.
type BatchReport struct {
	ID     string
	Report core.Report
	Attr   int
}

// BatchReportResponse answers POST /v1/reports: per-report dispositions in
// frame order plus the tallies. A device-side batcher treats Accepted and
// Duplicate entries as settled and may drop them; Conflict and Rejected
// entries are misbehavior (or a closed round) and retrying them verbatim
// will not change the answer.
type BatchReportResponse struct {
	Round        int   `json:"round"`
	Accepted     int   `json:"accepted"`
	Duplicate    int   `json:"duplicate"`
	Conflict     int   `json:"conflict"`
	Rejected     int   `json:"rejected"`
	Dispositions []int `json:"dispositions"`
}

func protoByte(p fo.Protocol) (byte, error) {
	switch p {
	case fo.GRR, fo.OLH, fo.OUE, fo.HR:
		return byte(p), nil
	default:
		return 0, fmt.Errorf("wire: unknown protocol %v", p)
	}
}

// AppendFrame encodes the reports as one binary frame appended to dst
// (which may be nil) and returns the extended slice. Every report is
// validated to the same wire-level invariants ReportMessage.Validate
// enforces, so an encoded frame never carries a report the server would
// refuse for shape alone.
func AppendFrame(dst []byte, reports []BatchReport) ([]byte, error) {
	if len(reports) == 0 {
		return nil, fmt.Errorf("wire: empty batch frame")
	}
	if len(reports) > MaxFrameReports {
		return nil, fmt.Errorf("wire: batch of %d reports exceeds %d", len(reports), MaxFrameReports)
	}
	start := len(dst)
	dst = append(dst, FrameMagic...)
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(reports)))
	dst = append(dst, hdr[:]...) // count + paylen + crc, patched below
	payloadStart := len(dst)

	var fixed [18]byte // proto + group + value + seed + idlen
	for i, br := range reports {
		if br.ID == "" {
			return nil, fmt.Errorf("wire: batch report %d missing report_id", i)
		}
		if len(br.ID) > MaxReportIDLen {
			return nil, fmt.Errorf("wire: batch report %d report_id of %d bytes exceeds %d", i, len(br.ID), MaxReportIDLen)
		}
		pb, err := protoByte(br.Report.Proto)
		if err != nil {
			return nil, fmt.Errorf("wire: batch report %d: %w", i, err)
		}
		if br.Report.Group < 0 {
			return nil, fmt.Errorf("wire: batch report %d: negative group %d", i, br.Report.Group)
		}
		if br.Report.Value < 0 {
			return nil, fmt.Errorf("wire: batch report %d: negative value %d", i, br.Report.Value)
		}
		fixed[0] = byte(len(br.ID))
		dst = append(dst, fixed[0])
		dst = append(dst, br.ID...)
		fixed[0] = pb
		binary.LittleEndian.PutUint32(fixed[1:5], uint32(br.Report.Group))
		binary.LittleEndian.PutUint32(fixed[5:9], uint32(br.Report.Value))
		if br.Report.Proto == fo.HR {
			if br.Report.Seed > 1 {
				return nil, fmt.Errorf("wire: batch report %d: HR sign bit %d outside {0,1}", i, br.Report.Seed)
			}
			fixed[9] = byte(br.Report.Seed)
			dst = append(dst, fixed[:10]...)
		} else {
			binary.LittleEndian.PutUint64(fixed[9:17], br.Report.Seed)
			dst = append(dst, fixed[:17]...)
		}
	}

	payload := dst[payloadStart:]
	if len(payload) > MaxFramePayload {
		return nil, fmt.Errorf("wire: frame payload of %d bytes exceeds %d", len(payload), MaxFramePayload)
	}
	binary.LittleEndian.PutUint32(dst[start+len(FrameMagic)+4:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[start+len(FrameMagic)+8:], crc32.ChecksumIEEE(payload))
	return dst, nil
}

// EncodeFrame is AppendFrame into a fresh buffer.
func EncodeFrame(reports []BatchReport) ([]byte, error) {
	return AppendFrame(nil, reports)
}

// AppendFrameMode encodes the reports as one frame under the given reporting
// mode. FELIP batches emit the v1 layout byte-for-byte — a mode-aware sender
// talking to a v1 server (or shipping WAL bytes to a v1 follower) stays
// wire-compatible — while SPL and RS+FD batches emit a v2 frame carrying the
// mode and each record's attribute index.
func AppendFrameMode(dst []byte, mode fo.ReportMode, reports []BatchReport) ([]byte, error) {
	if mode == fo.ModeFELIP {
		return AppendFrame(dst, reports)
	}
	if mode != fo.ModeSPL && mode != fo.ModeRSFD {
		return nil, fmt.Errorf("wire: unknown report mode %v", mode)
	}
	if len(reports) == 0 {
		return nil, fmt.Errorf("wire: empty batch frame")
	}
	if len(reports) > MaxFrameReports {
		return nil, fmt.Errorf("wire: batch of %d reports exceeds %d", len(reports), MaxFrameReports)
	}
	start := len(dst)
	dst = append(dst, FrameMagicV2...)
	dst = append(dst, byte(mode))
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(reports)))
	dst = append(dst, hdr[:]...) // count + paylen + crc, patched below
	payloadStart := len(dst)

	var fixed [19]byte // proto + group + value + seed + attr
	for i, br := range reports {
		if br.ID == "" {
			return nil, fmt.Errorf("wire: batch report %d missing report_id", i)
		}
		if len(br.ID) > MaxReportIDLen {
			return nil, fmt.Errorf("wire: batch report %d report_id of %d bytes exceeds %d", i, len(br.ID), MaxReportIDLen)
		}
		pb, err := protoByte(br.Report.Proto)
		if err != nil {
			return nil, fmt.Errorf("wire: batch report %d: %w", i, err)
		}
		if br.Report.Group < 0 {
			return nil, fmt.Errorf("wire: batch report %d: negative group %d", i, br.Report.Group)
		}
		if br.Report.Value < 0 {
			return nil, fmt.Errorf("wire: batch report %d: negative value %d", i, br.Report.Value)
		}
		if br.Attr < 0 || br.Attr > MaxFrameAttr {
			return nil, fmt.Errorf("wire: batch report %d: attr %d outside [0,%d]", i, br.Attr, MaxFrameAttr)
		}
		dst = append(dst, byte(len(br.ID)))
		dst = append(dst, br.ID...)
		fixed[0] = pb
		binary.LittleEndian.PutUint32(fixed[1:5], uint32(br.Report.Group))
		binary.LittleEndian.PutUint32(fixed[5:9], uint32(br.Report.Value))
		if br.Report.Proto == fo.HR {
			if br.Report.Seed > 1 {
				return nil, fmt.Errorf("wire: batch report %d: HR sign bit %d outside {0,1}", i, br.Report.Seed)
			}
			fixed[9] = byte(br.Report.Seed)
			binary.LittleEndian.PutUint16(fixed[10:12], uint16(br.Attr))
			dst = append(dst, fixed[:12]...)
		} else {
			binary.LittleEndian.PutUint64(fixed[9:17], br.Report.Seed)
			binary.LittleEndian.PutUint16(fixed[17:19], uint16(br.Attr))
			dst = append(dst, fixed[:]...)
		}
	}

	payload := dst[payloadStart:]
	if len(payload) > MaxFramePayload {
		return nil, fmt.Errorf("wire: frame payload of %d bytes exceeds %d", len(payload), MaxFramePayload)
	}
	binary.LittleEndian.PutUint32(dst[start+len(FrameMagicV2)+5:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[start+len(FrameMagicV2)+9:], crc32.ChecksumIEEE(payload))
	return dst, nil
}

// EncodeFrameMode is AppendFrameMode into a fresh buffer.
func EncodeFrameMode(mode fo.ReportMode, reports []BatchReport) ([]byte, error) {
	return AppendFrameMode(nil, mode, reports)
}

// FrameSizeMode returns the exact encoded size of the frame EncodeFrameMode
// would produce, without encoding — what a batcher charges its wire-byte
// accounting per flush.
func FrameSizeMode(mode fo.ReportMode, reports []BatchReport) int {
	size := frameHeaderLen
	attr := 0
	if mode != fo.ModeFELIP {
		attr = 2 // attr u16
		size = frameHeaderLenV2
	}
	for _, br := range reports {
		recTail := 17 // proto + group + value + seed
		if br.Report.Proto == fo.HR {
			recTail = 10 // proto + group + value + sign u8
		}
		size += 1 + len(br.ID) + recTail + attr
	}
	return size
}

// FrameReportCount peeks a (possibly damaged) frame's claimed report count
// without trusting anything past the header — what a server charges its
// rejection counter with when the frame as a whole is refused: a refused
// batch is N refused reports, not one refused request. Returns 1 when even
// the header is unreadable (the claim itself is gone, but at least one
// submission was refused).
func FrameReportCount(b []byte) int {
	countAt := -1
	switch {
	case len(b) >= frameHeaderLen && string(b[:len(FrameMagic)]) == FrameMagic:
		countAt = len(FrameMagic)
	case len(b) >= frameHeaderLenV2 && string(b[:len(FrameMagicV2)]) == FrameMagicV2:
		countAt = len(FrameMagicV2) + 1 // skip the mode byte
	}
	if countAt < 0 {
		return 1
	}
	n := int(binary.LittleEndian.Uint32(b[countAt:]))
	if n < 1 {
		return 1
	}
	if n > MaxFrameReports {
		return MaxFrameReports
	}
	return n
}

// FrameReader iterates a binary batch frame without allocating per report:
// Reset validates the envelope (magic, bounds, checksum) up front, and each
// Next fills the reader's reusable ID/Report fields in place — ID aliases
// the frame buffer and is only valid until the following Next.
type FrameReader struct {
	payload []byte
	count   int
	next    int
	off      int
	v2       bool
	recBytes int
	err      error

	// Mode is the frame's reporting mode: the v2 header's mode byte, or
	// ModeFELIP for every v1 frame.
	Mode fo.ReportMode
	// ID is the current report's idempotency key, aliasing the frame buffer.
	ID []byte
	// Report is the current report, decoded.
	Report core.Report
	// Attr is the current report's attribute index (v2 frames), or -1 for v1
	// records, which do not carry one.
	Attr int
}

// Reset validates the frame envelope and positions the reader at the first
// report. Both magics are accepted — a v1 frame reads back as Mode FELIP —
// and any damage (bad magic, hostile lengths, a checksum mismatch, an
// unknown mode byte) refuses the whole frame before a single report is
// surfaced.
func (r *FrameReader) Reset(b []byte) (count int, err error) {
	*r = FrameReader{Attr: -1}
	hdrLen := frameHeaderLen
	countAt := len(FrameMagic)
	switch {
	case len(b) >= len(FrameMagic) && string(b[:len(FrameMagic)]) == FrameMagic:
	case len(b) >= len(FrameMagicV2) && string(b[:len(FrameMagicV2)]) == FrameMagicV2:
		r.v2 = true
		hdrLen = frameHeaderLenV2
		countAt = len(FrameMagicV2) + 1
	default:
		if len(b) < len(FrameMagic) {
			return 0, fmt.Errorf("wire: frame of %d bytes is shorter than the %d-byte header", len(b), frameHeaderLen)
		}
		return 0, fmt.Errorf("wire: bad frame magic %q", b[:len(FrameMagic)])
	}
	if len(b) < hdrLen {
		return 0, fmt.Errorf("wire: frame of %d bytes is shorter than the %d-byte header", len(b), hdrLen)
	}
	if r.v2 {
		mode := fo.ReportMode(b[len(FrameMagicV2)])
		if mode != fo.ModeFELIP && mode != fo.ModeSPL && mode != fo.ModeRSFD {
			return 0, fmt.Errorf("wire: frame claims unknown mode byte %d", b[len(FrameMagicV2)])
		}
		r.Mode = mode
	}
	n := int(binary.LittleEndian.Uint32(b[countAt:]))
	paylen := int(binary.LittleEndian.Uint32(b[countAt+4:]))
	sum := binary.LittleEndian.Uint32(b[countAt+8:])
	if n < 1 || n > MaxFrameReports {
		return 0, fmt.Errorf("wire: frame claims %d reports (limit %d)", n, MaxFrameReports)
	}
	if paylen < 0 || paylen > MaxFramePayload {
		return 0, fmt.Errorf("wire: frame claims %d payload bytes (limit %d)", paylen, MaxFramePayload)
	}
	if len(b) != hdrLen+paylen {
		return 0, fmt.Errorf("wire: frame of %d bytes does not match header+%d-byte payload", len(b), paylen)
	}
	payload := b[hdrLen:]
	if got := crc32.ChecksumIEEE(payload); got != sum {
		return 0, fmt.Errorf("wire: frame checksum %08x, header claims %08x", got, sum)
	}
	r.payload = payload
	r.count = n
	return n, nil
}

// Next decodes the next report into the reader's ID and Report fields.
// Returns false at the end of the frame or on a malformed record (check
// Err). A record-level parse failure poisons the whole frame: the envelope
// checksum passed, so a bad record means a buggy or hostile encoder, not
// line noise, and none of the frame's reports should be trusted.
func (r *FrameReader) Next() bool {
	if r.err != nil || r.next >= r.count {
		return false
	}
	p, off := r.payload, r.off
	if off >= len(p) {
		r.err = fmt.Errorf("wire: frame record %d: payload exhausted after %d of %d reports", r.next, r.next, r.count)
		return false
	}
	idLen := int(p[off])
	off++
	if idLen < 1 || idLen > MaxReportIDLen || off+idLen+1 > len(p) {
		r.err = fmt.Errorf("wire: frame record %d: malformed (id length %d)", r.next, idLen)
		return false
	}
	r.ID = p[off : off+idLen]
	off += idLen
	proto := fo.Protocol(p[off])
	if proto != fo.GRR && proto != fo.OLH && proto != fo.OUE && proto != fo.HR {
		r.err = fmt.Errorf("wire: frame record %d: unknown protocol byte %d", r.next, p[off])
		return false
	}
	// The record tail depends on the protocol just read: HR records are
	// compact (one sign byte where the others carry a u64 seed).
	tail := 17 // proto + group + value + seed
	if proto == fo.HR {
		tail = 10 // proto + group + value + sign u8
	}
	if r.v2 {
		tail += 2 // + attr u16
	}
	if off+tail > len(p) {
		r.err = fmt.Errorf("wire: frame record %d: truncated %v record", r.next, proto)
		return false
	}
	var seed uint64
	if proto == fo.HR {
		if p[off+9] > 1 {
			r.err = fmt.Errorf("wire: frame record %d: HR sign byte %d outside {0,1}", r.next, p[off+9])
			return false
		}
		seed = uint64(p[off+9])
	} else {
		seed = binary.LittleEndian.Uint64(p[off+9:])
	}
	r.Report = core.Report{
		Proto: proto,
		Group: int(int32(binary.LittleEndian.Uint32(p[off+1:]))),
		Value: int(int32(binary.LittleEndian.Uint32(p[off+5:]))),
		Seed:  seed,
	}
	if r.v2 {
		r.Attr = int(binary.LittleEndian.Uint16(p[off+tail-2:]))
	}
	r.recBytes = 1 + idLen + tail
	r.off = off + tail
	r.next++
	if r.Report.Group < 0 || r.Report.Value < 0 {
		r.err = fmt.Errorf("wire: frame record %d: negative group or value", r.next-1)
		return false
	}
	if r.next == r.count && r.off != len(p) {
		r.err = fmt.Errorf("wire: frame payload has %d trailing bytes after the last report", len(p)-r.off)
		return false
	}
	return true
}

// Err returns the record-level decode failure, if iteration stopped on one.
func (r *FrameReader) Err() error { return r.err }

// RecordBytes returns the encoded size of the record the last Next decoded
// (idlen byte + id + protocol-dependent tail) — what a server charges its
// per-protocol wire-byte accounting for that report.
func (r *FrameReader) RecordBytes() int { return r.recBytes }

// ProtoName returns the wire name of a frame protocol byte's protocol —
// what the dedup index keys payloads by, shared with the JSON path.
func ProtoName(p fo.Protocol) string { return protoName(p) }
