package grid

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewAxisValidation(t *testing.T) {
	if _, err := NewAxis(0, 1); err == nil {
		t.Error("domain 0 accepted")
	}
	if _, err := NewAxis(-3, 1); err == nil {
		t.Error("negative domain accepted")
	}
	a := MustAxis(10, 0)
	if a.Cells() != 1 {
		t.Errorf("l=0 should clamp to 1, got %d", a.Cells())
	}
	a = MustAxis(10, 99)
	if a.Cells() != 10 {
		t.Errorf("l>d should clamp to d, got %d", a.Cells())
	}
}

func TestMustAxisPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustAxis(0,1) did not panic")
		}
	}()
	MustAxis(0, 1)
}

func TestAxisCoverage(t *testing.T) {
	// Cells must exactly partition [0, d) with widths differing by at most 1.
	for _, tc := range [][2]int{{10, 3}, {50, 7}, {100, 11}, {64, 64}, {1, 1}, {1600, 41}, {7, 5}} {
		d, l := tc[0], tc[1]
		a := MustAxis(d, l)
		prev := 0
		minW, maxW := d+1, 0
		for i := 0; i < a.Cells(); i++ {
			lo, hi := a.CellRange(i)
			if lo != prev {
				t.Fatalf("d=%d l=%d: cell %d starts at %d, want %d", d, l, i, lo, prev)
			}
			if hi <= lo {
				t.Fatalf("d=%d l=%d: cell %d empty [%d,%d)", d, l, i, lo, hi)
			}
			w := hi - lo
			if w < minW {
				minW = w
			}
			if w > maxW {
				maxW = w
			}
			prev = hi
		}
		if prev != d {
			t.Fatalf("d=%d l=%d: cells end at %d, want %d", d, l, prev, d)
		}
		if maxW-minW > 1 {
			t.Errorf("d=%d l=%d: cell widths range [%d,%d], want spread <= 1", d, l, minW, maxW)
		}
	}
}

func TestCellOfMatchesLinearScan(t *testing.T) {
	for _, tc := range [][2]int{{10, 3}, {50, 7}, {100, 100}, {64, 5}, {1600, 37}, {3, 2}} {
		d, l := tc[0], tc[1]
		a := MustAxis(d, l)
		for v := 0; v < d; v++ {
			want := -1
			for i := 0; i < a.Cells(); i++ {
				lo, hi := a.CellRange(i)
				if v >= lo && v < hi {
					want = i
					break
				}
			}
			if got := a.CellOf(v); got != want {
				t.Fatalf("d=%d l=%d CellOf(%d) = %d, want %d", d, l, v, got, want)
			}
		}
	}
}

func TestCellOfProperty(t *testing.T) {
	if err := quick.Check(func(d16, l16 uint16, v16 uint16) bool {
		d := int(d16%2000) + 1
		l := int(l16%200) + 1
		a := MustAxis(d, l)
		v := int(v16) % d
		c := a.CellOf(v)
		lo, hi := a.CellRange(c)
		return v >= lo && v < hi
	}, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestCellOfClamping(t *testing.T) {
	a := MustAxis(10, 3)
	if a.CellOf(-5) != 0 {
		t.Error("negative value should clamp to first cell")
	}
	if a.CellOf(100) != 2 {
		t.Error("overflow value should clamp to last cell")
	}
}

func TestOverlapFraction(t *testing.T) {
	a := MustAxis(10, 2) // cells [0,5), [5,10)
	if got := a.OverlapFraction(0, 0, 9); got != 1 {
		t.Errorf("full cover = %v, want 1", got)
	}
	if got := a.OverlapFraction(0, 0, 1); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("partial = %v, want 0.4", got)
	}
	if got := a.OverlapFraction(0, 7, 9); got != 0 {
		t.Errorf("disjoint = %v, want 0", got)
	}
	if got := a.OverlapFraction(1, 6, 6); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("single value = %v, want 0.2", got)
	}
	if got := a.OverlapFraction(1, 9, 2); got != 0 {
		t.Errorf("inverted range = %v, want 0", got)
	}
}

func TestSelectedFraction(t *testing.T) {
	a := MustAxis(6, 2) // cells [0,3), [3,6)
	sel := []bool{true, false, true, false, false, true}
	if got := a.SelectedFraction(0, sel); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("cell 0 fraction = %v, want 2/3", got)
	}
	if got := a.SelectedFraction(1, sel); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("cell 1 fraction = %v, want 1/3", got)
	}
}

func TestBoundaries(t *testing.T) {
	a := MustAxis(10, 3)
	b := a.Boundaries()
	want := []int{0, 3, 6, 10}
	if len(b) != len(want) {
		t.Fatalf("boundaries = %v", b)
	}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("boundaries = %v, want %v", b, want)
		}
	}
}

func TestAxisString(t *testing.T) {
	if got := MustAxis(50, 7).String(); got != "Axis(d=50,l=7)" {
		t.Errorf("String = %q", got)
	}
}

func TestNewCustomAxisValidation(t *testing.T) {
	if _, err := NewCustomAxis(0, []int{0, 1}); err == nil {
		t.Error("domain 0 accepted")
	}
	if _, err := NewCustomAxis(10, []int{0}); err == nil {
		t.Error("single boundary accepted")
	}
	if _, err := NewCustomAxis(10, []int{1, 10}); err == nil {
		t.Error("boundaries not starting at 0 accepted")
	}
	if _, err := NewCustomAxis(10, []int{0, 5}); err == nil {
		t.Error("boundaries not ending at d accepted")
	}
	if _, err := NewCustomAxis(10, []int{0, 5, 5, 10}); err == nil {
		t.Error("non-increasing boundaries accepted")
	}
	if _, err := NewCustomAxis(10, []int{0, 7, 3, 10}); err == nil {
		t.Error("decreasing boundaries accepted")
	}
}

func TestCustomAxisBehaviour(t *testing.T) {
	// Unequal cells: [0,1), [1,2), [2,7), [7,10).
	a, err := NewCustomAxis(10, []int{0, 1, 2, 7, 10})
	if err != nil {
		t.Fatal(err)
	}
	if a.Cells() != 4 || a.Domain() != 10 {
		t.Fatalf("axis %v", a)
	}
	wantCells := []int{0, 1, 2, 2, 2, 2, 2, 3, 3, 3}
	for v, want := range wantCells {
		if got := a.CellOf(v); got != want {
			t.Errorf("CellOf(%d) = %d, want %d", v, got, want)
		}
	}
	if a.CellOf(-1) != 0 || a.CellOf(99) != 3 {
		t.Error("clamping wrong on custom axis")
	}
	if w := a.Width(2); w != 5 {
		t.Errorf("Width(2) = %d, want 5", w)
	}
	b := a.Boundaries()
	want := []int{0, 1, 2, 7, 10}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("Boundaries = %v, want %v", b, want)
		}
	}
	// OverlapFraction on an unequal cell.
	if got := a.OverlapFraction(2, 3, 4); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("OverlapFraction = %v, want 0.4", got)
	}
}

func TestCustomAxisBoundariesCopied(t *testing.T) {
	bounds := []int{0, 5, 10}
	a, err := NewCustomAxis(10, bounds)
	if err != nil {
		t.Fatal(err)
	}
	bounds[1] = 7
	if lo, _ := a.CellRange(1); lo != 5 {
		t.Error("custom axis aliases caller's slice")
	}
}

func TestCustomAxisCellOfProperty(t *testing.T) {
	if err := quick.Check(func(seed uint64, d16 uint16) bool {
		d := int(d16%500) + 2
		// Random boundary subset.
		bounds := []int{0}
		x := seed
		for v := 1; v < d; v++ {
			x = x*6364136223846793005 + 1442695040888963407
			if x%3 == 0 {
				bounds = append(bounds, v)
			}
		}
		bounds = append(bounds, d)
		a, err := NewCustomAxis(d, bounds)
		if err != nil {
			return false
		}
		for v := 0; v < d; v++ {
			c := a.CellOf(v)
			lo, hi := a.CellRange(c)
			if v < lo || v >= hi {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// The paper's motivating example (§3.2): an optimal granularity of 25 must be
// usable directly instead of snapping to 32, and 11×11 instead of 8×8.
func TestNoPowerOfTwoSnapping(t *testing.T) {
	a := MustAxis(100, 25)
	if a.Cells() != 25 {
		t.Fatalf("granularity 25 not preserved: %d", a.Cells())
	}
	b := MustAxis(100, 11)
	if b.Cells() != 11 {
		t.Fatalf("granularity 11 not preserved: %d", b.Cells())
	}
}
