package grid

import (
	"math"
	"testing"
	"testing/quick"
)

func rangeSel(d, lo, hi int) []bool {
	sel := make([]bool, d)
	for v := lo; v <= hi && v < d; v++ {
		if v >= 0 {
			sel[v] = true
		}
	}
	return sel
}

func TestGrid1DBasics(t *testing.T) {
	g := NewGrid1D(2, MustAxis(10, 2))
	if g.L() != 2 {
		t.Fatalf("L = %d", g.L())
	}
	if g.CellOf(7) != 1 || g.CellOf(0) != 0 {
		t.Error("CellOf wrong")
	}
	if err := g.SetFreq([]float64{0.25}); err == nil {
		t.Error("wrong-length freq accepted")
	}
	if err := g.SetFreq([]float64{0.25, 0.75}); err != nil {
		t.Fatal(err)
	}
	if got := g.RangeMass(0, 9); math.Abs(got-1) > 1e-12 {
		t.Errorf("full range mass = %v", got)
	}
	// Half of the first cell under uniformity: 0.25*0.4 = 0.1 (values 0,1).
	if got := g.RangeMass(0, 1); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("partial range mass = %v, want 0.1", got)
	}
	if got := g.Mass(rangeSel(10, 0, 1)); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("Mass = %v, want 0.1", got)
	}
}

func TestGrid1DValueMarginal(t *testing.T) {
	g := NewGrid1D(0, MustAxis(10, 2))
	if err := g.SetFreq([]float64{0.4, 0.6}); err != nil {
		t.Fatal(err)
	}
	m := g.ValueMarginal()
	if len(m) != 10 {
		t.Fatalf("marginal length %d", len(m))
	}
	for v := 0; v < 5; v++ {
		if math.Abs(m[v]-0.08) > 1e-12 {
			t.Errorf("m[%d] = %v, want 0.08", v, m[v])
		}
	}
	for v := 5; v < 10; v++ {
		if math.Abs(m[v]-0.12) > 1e-12 {
			t.Errorf("m[%d] = %v, want 0.12", v, m[v])
		}
	}
}

func TestGrid2DIndexRoundTrip(t *testing.T) {
	g := NewGrid2D(0, 1, MustAxis(10, 3), MustAxis(8, 4))
	if g.L() != 12 {
		t.Fatalf("L = %d", g.L())
	}
	for cell := 0; cell < g.L(); cell++ {
		cx, cy := g.CellXY(cell)
		loX, _ := g.X.CellRange(cx)
		loY, _ := g.Y.CellRange(cy)
		if got := g.CellOf(loX, loY); got != cell {
			t.Fatalf("round trip cell %d -> (%d,%d) -> %d", cell, cx, cy, got)
		}
	}
}

func TestGrid2DMass(t *testing.T) {
	// 2x2 grid over 4x4 domain, uniform frequency 0.25 per cell.
	g := NewGrid2D(0, 1, MustAxis(4, 2), MustAxis(4, 2))
	if err := g.SetFreq([]float64{0.25, 0.25, 0.25, 0.25}); err != nil {
		t.Fatal(err)
	}
	if got := g.Mass(rangeSel(4, 0, 3), rangeSel(4, 0, 3)); math.Abs(got-1) > 1e-12 {
		t.Errorf("full mass = %v", got)
	}
	// Quadrant [0,1]x[0,1] is exactly cell (0,0).
	if got := g.Mass(rangeSel(4, 0, 1), rangeSel(4, 0, 1)); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("quadrant mass = %v, want 0.25", got)
	}
	// Single value (0,0) = quarter of cell (0,0) under uniformity.
	if got := g.Mass(rangeSel(4, 0, 0), rangeSel(4, 0, 0)); math.Abs(got-0.0625) > 1e-12 {
		t.Errorf("point mass = %v, want 0.0625", got)
	}
}

func TestGrid2DMarginals(t *testing.T) {
	g := NewGrid2D(3, 5, MustAxis(4, 2), MustAxis(6, 3))
	freq := []float64{0.1, 0.2, 0.05, 0.15, 0.25, 0.25}
	if err := g.SetFreq(freq); err != nil {
		t.Fatal(err)
	}
	xm := g.XMarginal()
	if math.Abs(xm[0]-0.35) > 1e-12 || math.Abs(xm[1]-0.65) > 1e-12 {
		t.Errorf("XMarginal = %v", xm)
	}
	ym := g.YMarginal()
	want := []float64{0.25, 0.45, 0.3}
	for i := range want {
		if math.Abs(ym[i]-want[i]) > 1e-12 {
			t.Errorf("YMarginal = %v, want %v", ym, want)
		}
	}
	if _, err := g.MarginalAxis(4); err == nil {
		t.Error("MarginalAxis accepted foreign attribute")
	}
	if ax, err := g.MarginalAxis(5); err != nil || ax != g.Y {
		t.Error("MarginalAxis(YAttr) wrong")
	}
	vm, err := g.ValueMarginal(3)
	if err != nil {
		t.Fatal(err)
	}
	var s float64
	for _, f := range vm {
		s += f
	}
	if math.Abs(s-1) > 1e-12 {
		t.Errorf("value marginal sums to %v", s)
	}
	if _, err := g.ValueMarginal(99); err == nil {
		t.Error("ValueMarginal accepted foreign attribute")
	}
}

func TestGrid2DSetFreqValidates(t *testing.T) {
	g := NewGrid2D(0, 1, MustAxis(4, 2), MustAxis(4, 2))
	if err := g.SetFreq(make([]float64, 3)); err == nil {
		t.Error("wrong-length freq accepted")
	}
}

// Property: for any grid and any rectangle, Mass is between 0 and the total
// grid mass, and the full-domain rectangle returns exactly the total.
func TestGrid2DMassBounds(t *testing.T) {
	if err := quick.Check(func(seed uint64, dx8, dy8, lx8, ly8 uint8, a16, b16, c16, d16 uint16) bool {
		dx := int(dx8%30) + 1
		dy := int(dy8%30) + 1
		g := NewGrid2D(0, 1, MustAxis(dx, int(lx8%10)+1), MustAxis(dy, int(ly8%10)+1))
		freq := make([]float64, g.L())
		s := seed
		var total float64
		for i := range freq {
			s = s*6364136223846793005 + 1442695040888963407
			freq[i] = float64(s%1000) / 1000 / float64(len(freq))
			total += freq[i]
		}
		if err := g.SetFreq(freq); err != nil {
			return false
		}
		loX, hiX := int(a16)%dx, int(b16)%dx
		if loX > hiX {
			loX, hiX = hiX, loX
		}
		loY, hiY := int(c16)%dy, int(d16)%dy
		if loY > hiY {
			loY, hiY = hiY, loY
		}
		m := g.Mass(rangeSel(dx, loX, hiX), rangeSel(dy, loY, hiY))
		if m < -1e-12 || m > total+1e-12 {
			return false
		}
		full := g.Mass(rangeSel(dx, 0, dx-1), rangeSel(dy, 0, dy-1))
		return math.Abs(full-total) < 1e-9
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEquiMassBoundariesBalanced(t *testing.T) {
	// Mass concentrated on [0,4): the first cells must be narrow there.
	marg := make([]float64, 16)
	for v := 0; v < 4; v++ {
		marg[v] = 0.225 // 0.9 total
	}
	for v := 4; v < 16; v++ {
		marg[v] = 0.1 / 12
	}
	b := EquiMassBoundaries(marg, 4)
	if len(b) != 5 || b[0] != 0 || b[4] != 16 {
		t.Fatalf("bounds = %v", b)
	}
	// Each of the first three cells should be ≤ 2 values wide (dense zone).
	if b[1]-b[0] > 2 || b[2]-b[1] > 2 {
		t.Errorf("dense zone not finely binned: %v", b)
	}
	// The last cell covers the sparse tail.
	if b[4]-b[3] < 8 {
		t.Errorf("sparse tail not coarsened: %v", b)
	}
	// Masses roughly equal (within one value's worth of mass).
	ax, err := NewCustomAxis(16, b)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < ax.Cells(); c++ {
		lo, hi := ax.CellRange(c)
		var mass float64
		for v := lo; v < hi; v++ {
			mass += marg[v]
		}
		if mass < 0.25-0.23 || mass > 0.25+0.23 {
			t.Errorf("cell %d mass %v far from 0.25: bounds %v", c, mass, b)
		}
	}
}

func TestEquiMassBoundariesUniformIsEqualWidth(t *testing.T) {
	marg := make([]float64, 12)
	for v := range marg {
		marg[v] = 1.0 / 12
	}
	b := EquiMassBoundaries(marg, 4)
	want := []int{0, 3, 6, 9, 12}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("uniform bounds = %v, want %v", b, want)
		}
	}
}

func TestEquiMassBoundariesDegenerate(t *testing.T) {
	if b := EquiMassBoundaries(nil, 3); b != nil {
		t.Errorf("nil marginal: %v", b)
	}
	// All-zero marginal: equal width fallback.
	b := EquiMassBoundaries(make([]float64, 10), 2)
	if len(b) != 3 || b[0] != 0 || b[2] != 10 {
		t.Errorf("zero marginal bounds = %v", b)
	}
	// All mass on one value: the rest padded, still valid strictly
	// increasing boundaries.
	marg := make([]float64, 8)
	marg[3] = 1
	b = EquiMassBoundaries(marg, 4)
	if _, err := NewCustomAxis(8, b); err != nil {
		t.Errorf("point-mass bounds invalid: %v (%v)", b, err)
	}
	if len(b) != 5 {
		t.Errorf("point-mass bounds should pad to 4 cells: %v", b)
	}
	// l clamps.
	b = EquiMassBoundaries(marg, 99)
	if len(b) != 9 {
		t.Errorf("l>d should clamp to d cells: %v", b)
	}
	b = EquiMassBoundaries(marg, 0)
	if len(b) != 2 {
		t.Errorf("l<1 should clamp to 1 cell: %v", b)
	}
}

// Property: EquiMassBoundaries always yields valid custom-axis boundaries.
func TestEquiMassBoundariesAlwaysValid(t *testing.T) {
	if err := quick.Check(func(seed uint64, d8, l8 uint8) bool {
		d := int(d8%200) + 1
		l := int(l8%50) + 1
		marg := make([]float64, d)
		x := seed
		for v := range marg {
			x = x*6364136223846793005 + 1442695040888963407
			if x%4 == 0 {
				marg[v] = float64(x % 1000)
			}
		}
		b := EquiMassBoundaries(marg, l)
		_, err := NewCustomAxis(d, b)
		return err == nil
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSum(t *testing.T) {
	if got := Sum([]float64{0.5, 0.25, 0.25}); math.Abs(got-1) > 1e-12 {
		t.Errorf("Sum = %v", got)
	}
	if Sum(nil) != 0 {
		t.Error("Sum(nil) != 0")
	}
}
