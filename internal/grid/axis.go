// Package grid provides the binned 1-D and 2-D grid substrate FELIP maps user
// values onto. A grid partitions an attribute domain (or the product of two
// domains) into cells; users report the cell containing their private value
// through a frequency oracle, and the aggregator attaches estimated
// frequencies to cells.
//
// Unlike TDG/HDG, cell widths need not be equal: an Axis splits a domain of
// size d into any l ≤ d cells whose widths differ by at most one, so the
// optimizer's granularity is never snapped to a divisor of d (paper §5.8).
package grid

import "fmt"

// Axis is the binning of a single attribute domain [0, d) into l contiguous
// cells. By default cell boundaries follow bounds[i] = ⌊i·d/l⌋, so widths
// are ⌊d/l⌋ or ⌈d/l⌉ and the cells exactly cover the domain; a custom axis
// (NewCustomAxis) carries arbitrary strictly-increasing boundaries instead,
// enabling data-aware equi-mass binning (the paper's §7 extension to avoid
// cells with low true counts).
type Axis struct {
	domain int
	cells  int
	// bounds holds the cells+1 explicit boundaries of a custom axis; nil for
	// the default equal-width binning.
	bounds []int
}

// NewAxis creates an axis over domain size d with l cells. l is clamped into
// [1, d]; an error is returned only for non-positive d.
func NewAxis(d, l int) (*Axis, error) {
	if d < 1 {
		return nil, fmt.Errorf("grid: axis domain must be >= 1, got %d", d)
	}
	if l < 1 {
		l = 1
	}
	if l > d {
		l = d
	}
	return &Axis{domain: d, cells: l}, nil
}

// MustAxis is NewAxis panicking on error, for literals in tests and examples.
func MustAxis(d, l int) *Axis {
	a, err := NewAxis(d, l)
	if err != nil {
		panic(err)
	}
	return a
}

// Domain returns the domain size d.
func (a *Axis) Domain() int { return a.domain }

// Cells returns the number of cells l.
func (a *Axis) Cells() int { return a.cells }

// NewCustomAxis creates an axis over domain size d with the explicit cell
// boundaries 0 = bounds[0] < bounds[1] < … < bounds[l] = d.
func NewCustomAxis(d int, bounds []int) (*Axis, error) {
	if d < 1 {
		return nil, fmt.Errorf("grid: axis domain must be >= 1, got %d", d)
	}
	if len(bounds) < 2 {
		return nil, fmt.Errorf("grid: custom axis needs at least 2 boundaries, got %d", len(bounds))
	}
	if bounds[0] != 0 || bounds[len(bounds)-1] != d {
		return nil, fmt.Errorf("grid: custom axis boundaries must start at 0 and end at %d, got [%d..%d]",
			d, bounds[0], bounds[len(bounds)-1])
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			return nil, fmt.Errorf("grid: custom axis boundaries not strictly increasing at %d", i)
		}
	}
	cp := make([]int, len(bounds))
	copy(cp, bounds)
	return &Axis{domain: d, cells: len(bounds) - 1, bounds: cp}, nil
}

// lowerBound returns the first value of cell i (valid for i in [0, l]; i = l
// yields d).
func (a *Axis) lowerBound(i int) int {
	if a.bounds != nil {
		return a.bounds[i]
	}
	return i * a.domain / a.cells
}

// CellRange returns the half-open value interval [lo, hi) covered by cell i.
func (a *Axis) CellRange(i int) (lo, hi int) {
	return a.lowerBound(i), a.lowerBound(i + 1)
}

// Width returns the number of domain values inside cell i.
func (a *Axis) Width(i int) int {
	lo, hi := a.CellRange(i)
	return hi - lo
}

// CellOf returns the index of the cell containing value v. v must be in
// [0, d); out-of-range values are clamped to the nearest cell.
func (a *Axis) CellOf(v int) int {
	if v < 0 {
		return 0
	}
	if v >= a.domain {
		return a.cells - 1
	}
	if a.bounds != nil {
		// Binary search the largest i with bounds[i] <= v.
		lo, hi := 0, a.cells-1
		for lo < hi {
			mid := (lo + hi + 1) / 2
			if a.bounds[mid] <= v {
				lo = mid
			} else {
				hi = mid - 1
			}
		}
		return lo
	}
	// Invert bounds[i] = ⌊i·d/l⌋: i = ⌈l(v+1)/d⌉ − 1.
	i := (a.cells*(v+1) + a.domain - 1) / a.domain
	i--
	// Guard against any rounding surprise.
	if lo, hi := a.CellRange(i); v < lo {
		i--
	} else if v >= hi {
		i++
	}
	return i
}

// OverlapFraction returns the fraction of cell i's values that fall inside
// the inclusive value range [lo, hi]. It is the per-cell coverage used when
// answering range queries under the uniformity assumption.
func (a *Axis) OverlapFraction(i, lo, hi int) float64 {
	cLo, cHi := a.CellRange(i) // [cLo, cHi)
	if lo < cLo {
		lo = cLo
	}
	if hi >= cHi {
		hi = cHi - 1
	}
	if hi < lo {
		return 0
	}
	return float64(hi-lo+1) / float64(cHi-cLo)
}

// SelectedFraction returns the fraction of cell i's values v for which
// sel[v] is true. sel must have length d. It generalizes OverlapFraction to
// arbitrary (categorical IN) predicates.
func (a *Axis) SelectedFraction(i int, sel []bool) float64 {
	lo, hi := a.CellRange(i)
	count := 0
	for v := lo; v < hi; v++ {
		if sel[v] {
			count++
		}
	}
	return float64(count) / float64(hi-lo)
}

// Boundaries returns the l+1 cell boundary points 0 = b₀ < b₁ < … < b_l = d.
func (a *Axis) Boundaries() []int {
	out := make([]int, a.cells+1)
	for i := range out {
		out[i] = a.lowerBound(i)
	}
	return out
}

// String renders e.g. "Axis(d=50,l=7)".
func (a *Axis) String() string {
	return fmt.Sprintf("Axis(d=%d,l=%d)", a.domain, a.cells)
}
