package grid

import "fmt"

// Grid1D bins a single attribute's domain and carries one estimated
// frequency per cell. Freq is nil until the aggregator fills it.
type Grid1D struct {
	// Attr is the schema index of the binned attribute.
	Attr int
	// Axis is the binning of the attribute's domain.
	Axis *Axis
	// Freq holds the estimated frequency of each cell (length Axis.Cells()).
	Freq []float64
}

// NewGrid1D creates a 1-D grid over attribute attr with the given axis.
func NewGrid1D(attr int, axis *Axis) *Grid1D {
	return &Grid1D{Attr: attr, Axis: axis}
}

// L returns the number of cells, i.e. the report domain size for this grid.
func (g *Grid1D) L() int { return g.Axis.Cells() }

// CellOf maps a user's attribute value to the reported cell index.
func (g *Grid1D) CellOf(v int) int { return g.Axis.CellOf(v) }

// SetFreq installs estimated cell frequencies (must have length L()).
func (g *Grid1D) SetFreq(f []float64) error {
	if len(f) != g.L() {
		return fmt.Errorf("grid: Grid1D freq length %d != cells %d", len(f), g.L())
	}
	g.Freq = f
	return nil
}

// Mass returns the estimated probability mass of the arbitrary value
// selection sel (length = domain) under the uniformity assumption.
func (g *Grid1D) Mass(sel []bool) float64 {
	var total float64
	for c := 0; c < g.L(); c++ {
		if frac := g.Axis.SelectedFraction(c, sel); frac > 0 {
			total += g.Freq[c] * frac
		}
	}
	return total
}

// RangeMass returns the estimated probability mass of the inclusive value
// range [lo, hi] under the uniformity assumption.
func (g *Grid1D) RangeMass(lo, hi int) float64 {
	var total float64
	for c := 0; c < g.L(); c++ {
		if frac := g.Axis.OverlapFraction(c, lo, hi); frac > 0 {
			total += g.Freq[c] * frac
		}
	}
	return total
}

// ValueMarginal expands the cell frequencies to a per-value distribution by
// spreading each cell's mass uniformly over the values it covers.
func (g *Grid1D) ValueMarginal() []float64 {
	out := make([]float64, g.Axis.Domain())
	for c := 0; c < g.L(); c++ {
		lo, hi := g.Axis.CellRange(c)
		share := g.Freq[c] / float64(hi-lo)
		for v := lo; v < hi; v++ {
			out[v] = share
		}
	}
	return out
}

// Grid2D bins the 2-D domain of an attribute pair and carries one estimated
// frequency per 2-D cell. Cell (cx, cy) is stored at Freq[cx*Y.Cells()+cy].
type Grid2D struct {
	// XAttr and YAttr are the schema indexes of the two attributes (X < Y by
	// FELIP convention).
	XAttr, YAttr int
	// X and Y are the binnings of each attribute's domain.
	X, Y *Axis
	// Freq holds the estimated frequency of each cell, row-major by X cell.
	Freq []float64
}

// NewGrid2D creates a 2-D grid over attributes (xAttr, yAttr).
func NewGrid2D(xAttr, yAttr int, x, y *Axis) *Grid2D {
	return &Grid2D{XAttr: xAttr, YAttr: yAttr, X: x, Y: y}
}

// L returns the total number of cells lx·ly, i.e. the report domain size.
func (g *Grid2D) L() int { return g.X.Cells() * g.Y.Cells() }

// CellOf maps a user's pair of attribute values to the reported cell index.
func (g *Grid2D) CellOf(vx, vy int) int {
	return g.X.CellOf(vx)*g.Y.Cells() + g.Y.CellOf(vy)
}

// CellXY splits a flat cell index into its (cx, cy) coordinates.
func (g *Grid2D) CellXY(cell int) (cx, cy int) {
	return cell / g.Y.Cells(), cell % g.Y.Cells()
}

// At returns the frequency of cell (cx, cy).
func (g *Grid2D) At(cx, cy int) float64 { return g.Freq[cx*g.Y.Cells()+cy] }

// SetFreq installs estimated cell frequencies (must have length L()).
func (g *Grid2D) SetFreq(f []float64) error {
	if len(f) != g.L() {
		return fmt.Errorf("grid: Grid2D freq length %d != cells %d", len(f), g.L())
	}
	g.Freq = f
	return nil
}

// Mass returns the estimated probability mass of the rectangle selX × selY
// (each a per-value selection over the respective domain) under the
// uniformity assumption: each cell contributes freq·fracX·fracY.
func (g *Grid2D) Mass(selX, selY []bool) float64 {
	lx, ly := g.X.Cells(), g.Y.Cells()
	fracX := make([]float64, lx)
	for cx := 0; cx < lx; cx++ {
		fracX[cx] = g.X.SelectedFraction(cx, selX)
	}
	fracY := make([]float64, ly)
	for cy := 0; cy < ly; cy++ {
		fracY[cy] = g.Y.SelectedFraction(cy, selY)
	}
	var total float64
	for cx := 0; cx < lx; cx++ {
		if fracX[cx] == 0 {
			continue
		}
		row := g.Freq[cx*ly : (cx+1)*ly]
		for cy := 0; cy < ly; cy++ {
			if fracY[cy] > 0 {
				total += row[cy] * fracX[cx] * fracY[cy]
			}
		}
	}
	return total
}

// XMarginal returns the per-X-cell frequency sums (collapsing Y).
func (g *Grid2D) XMarginal() []float64 {
	lx, ly := g.X.Cells(), g.Y.Cells()
	out := make([]float64, lx)
	for cx := 0; cx < lx; cx++ {
		var s float64
		for cy := 0; cy < ly; cy++ {
			s += g.Freq[cx*ly+cy]
		}
		out[cx] = s
	}
	return out
}

// YMarginal returns the per-Y-cell frequency sums (collapsing X).
func (g *Grid2D) YMarginal() []float64 {
	lx, ly := g.X.Cells(), g.Y.Cells()
	out := make([]float64, ly)
	for cx := 0; cx < lx; cx++ {
		for cy := 0; cy < ly; cy++ {
			out[cy] += g.Freq[cx*ly+cy]
		}
	}
	return out
}

// MarginalAxis returns the axis binning attribute attr, which must be XAttr
// or YAttr.
func (g *Grid2D) MarginalAxis(attr int) (*Axis, error) {
	switch attr {
	case g.XAttr:
		return g.X, nil
	case g.YAttr:
		return g.Y, nil
	default:
		return nil, fmt.Errorf("grid: attribute %d not on grid (%d,%d)", attr, g.XAttr, g.YAttr)
	}
}

// ValueMarginal expands the grid's marginal along attribute attr to a
// per-value distribution under the uniformity assumption.
func (g *Grid2D) ValueMarginal(attr int) ([]float64, error) {
	axis, err := g.MarginalAxis(attr)
	if err != nil {
		return nil, err
	}
	var cellFreq []float64
	if attr == g.XAttr {
		cellFreq = g.XMarginal()
	} else {
		cellFreq = g.YMarginal()
	}
	out := make([]float64, axis.Domain())
	for c := 0; c < axis.Cells(); c++ {
		lo, hi := axis.CellRange(c)
		share := cellFreq[c] / float64(hi-lo)
		for v := lo; v < hi; v++ {
			out[v] = share
		}
	}
	return out, nil
}

// Sum returns the total frequency mass currently on the grid.
func Sum(freq []float64) float64 {
	var s float64
	for _, f := range freq {
		s += f
	}
	return s
}

// EquiMassBoundaries returns l+1 cell boundaries over [0, len(marginal))
// placed at the quantiles of the (non-negative) per-value marginal, so each
// cell holds roughly mass/l — the data-aware binning of the paper's §7
// extension ("avoid cells with low true counts"). Cells are at least one
// value wide; if the marginal concentrates on fewer than l values the
// remaining cuts fall back to equal-width placement. l is clamped to
// [1, len(marginal)].
func EquiMassBoundaries(marginal []float64, l int) []int {
	d := len(marginal)
	if d == 0 {
		return nil
	}
	if l < 1 {
		l = 1
	}
	if l > d {
		l = d
	}
	var total float64
	for _, m := range marginal {
		if m > 0 {
			total += m
		}
	}
	bounds := make([]int, 0, l+1)
	bounds = append(bounds, 0)
	if total <= 0 {
		// Degenerate marginal: equal width.
		for i := 1; i < l; i++ {
			bounds = append(bounds, i*d/l)
		}
		bounds = append(bounds, d)
		return dedupeAscending(bounds, d, l)
	}
	var cum float64
	next := 1
	for v := 0; v < d && next < l; v++ {
		if marginal[v] > 0 {
			cum += marginal[v]
		}
		// Place the next-th cut after accumulating next·total/l mass, but
		// never produce an empty cell. The tolerance absorbs accumulated
		// floating-point error at exact quantile boundaries.
		for next < l && cum >= float64(next)*total/float64(l)-1e-9*total {
			cut := v + 1
			if cut <= bounds[len(bounds)-1] {
				cut = bounds[len(bounds)-1] + 1
			}
			if cut >= d {
				break
			}
			bounds = append(bounds, cut)
			next++
		}
	}
	bounds = append(bounds, d)
	return dedupeAscending(bounds, d, l)
}

// dedupeAscending repairs a boundary list so it is strictly increasing from
// 0 to d with at most l cells, padding missing cuts equal-width if the mass
// was too concentrated to place them all.
func dedupeAscending(bounds []int, d, l int) []int {
	out := []int{0}
	for _, b := range bounds[1:] {
		if b > out[len(out)-1] && b <= d {
			out = append(out, b)
		}
	}
	if out[len(out)-1] != d {
		out = append(out, d)
	}
	// Pad with extra equal-width cuts while we have fewer than l cells and
	// room to split the widest cell.
	for len(out)-1 < l {
		widest, width := -1, 1
		for i := 0; i+1 < len(out); i++ {
			if w := out[i+1] - out[i]; w > width {
				widest, width = i, w
			}
		}
		if widest < 0 {
			break
		}
		mid := out[widest] + width/2
		out = append(out, 0)
		copy(out[widest+2:], out[widest+1:])
		out[widest+1] = mid
	}
	return out
}
