package hio

import (
	"fmt"
	"math"
	"sort"

	"felip/internal/dataset"
	"felip/internal/domain"
	"felip/internal/fo"
	"felip/internal/query"
)

// DefaultBranching is the branching factor the FELIP paper uses for HIO (§6.2).
const DefaultBranching = 4

// Options configures an HIO collection round.
type Options struct {
	// Epsilon is the per-user privacy budget ε.
	Epsilon float64
	// Branching is the hierarchy fanout b (default 4).
	Branching int
	// Seed makes the round deterministic. Zero draws a fresh seed.
	Seed uint64
}

// report is one user's OLH report of their k-dim interval identifier.
type report struct {
	seed  uint64
	value uint8
}

// group holds the reports of one k-dim level.
type group struct {
	reports []report
}

// Aggregator is HIO's server side after collection: it estimates frequencies
// of arbitrary k-dim intervals and answers multidimensional queries.
type Aggregator struct {
	schema *domain.Schema
	opts   Options
	hiers  []hierarchy
	// radix[i] = number of levels of attribute i; group ids are mixed-radix.
	radix       []int64
	totalGroups int64
	groups      map[int64]*group
	n           int
	g           int
	p           float64
}

// Collect runs a full HIO round over the dataset: every user is assigned a
// uniform random k-dim level and reports, via OLH with budget ε, the
// identifier of the k-dim interval containing their record at that level.
func Collect(ds *dataset.Dataset, opts Options) (*Aggregator, error) {
	if opts.Epsilon <= 0 {
		return nil, fmt.Errorf("hio: epsilon must be positive, got %v", opts.Epsilon)
	}
	if opts.Branching == 0 {
		opts.Branching = DefaultBranching
	}
	if opts.Branching < 2 {
		return nil, fmt.Errorf("hio: branching must be >= 2, got %d", opts.Branching)
	}
	if opts.Seed == 0 {
		opts.Seed = fo.AutoSeed()
	}
	schema := ds.Schema()
	k := schema.Len()
	if k < 1 {
		return nil, fmt.Errorf("hio: empty schema")
	}

	hiers := make([]hierarchy, k)
	radix := make([]int64, k)
	total := int64(1)
	for i := 0; i < k; i++ {
		hiers[i] = newHierarchy(schema.Attr(i), opts.Branching)
		radix[i] = int64(hiers[i].levels)
		if total > (1<<62)/radix[i] {
			return nil, fmt.Errorf("hio: k-dim level count overflows")
		}
		total *= radix[i]
	}

	g := fo.OptimalG(opts.Epsilon)
	ee := math.Exp(opts.Epsilon)
	agg := &Aggregator{
		schema:      schema,
		opts:        opts,
		hiers:       hiers,
		radix:       radix,
		totalGroups: total,
		groups:      make(map[int64]*group),
		n:           ds.N(),
		g:           g,
		p:           ee / (ee + float64(g) - 1),
	}

	rng := fo.NewRand(opts.Seed)
	levels := make([]int, k)
	for row := 0; row < ds.N(); row++ {
		gid := int64(rng.IntN(int(total)))
		decodeLevels(gid, radix, levels)
		vid := uint64(0xABCD)
		for i := 0; i < k; i++ {
			vid = fo.MixID(vid, uint64(hiers[i].intervalOf(levels[i], ds.Value(row, i))))
		}
		seed := rng.Uint64()
		hv := fo.OLHHash(seed, vid, g)
		rep := hv
		if rng.Float64() >= agg.p {
			x := rng.IntN(g - 1)
			if x >= hv {
				x++
			}
			rep = x
		}
		grp := agg.groups[gid]
		if grp == nil {
			grp = &group{}
			agg.groups[gid] = grp
		}
		grp.reports = append(grp.reports, report{seed: seed, value: uint8(rep)})
	}
	return agg, nil
}

// decodeLevels expands a mixed-radix group id into per-attribute levels.
func decodeLevels(gid int64, radix []int64, out []int) {
	for i := range radix {
		out[i] = int(gid % radix[i])
		gid /= radix[i]
	}
}

// encodeLevels packs per-attribute levels into a group id.
func encodeLevels(levels []int, radix []int64) int64 {
	gid := int64(0)
	mul := int64(1)
	for i := range radix {
		gid += int64(levels[i]) * mul
		mul *= radix[i]
	}
	return gid
}

// estimate returns the estimated global frequencies of the given k-dim
// interval ids using the reports of one group. Missing or empty groups
// estimate zero.
func (a *Aggregator) estimate(gid int64, vids []uint64) []float64 {
	out := make([]float64, len(vids))
	grp := a.groups[gid]
	if grp == nil || len(grp.reports) == 0 {
		return out
	}
	support := make([]int64, len(vids))
	for _, rep := range grp.reports {
		for i, vid := range vids {
			if fo.OLHHash(rep.seed, vid, a.g) == int(rep.value) {
				support[i]++
			}
		}
	}
	n := float64(len(grp.reports))
	invg := 1 / float64(a.g)
	for i := range out {
		out[i] = (float64(support[i])/n - invg) / (a.p - invg)
	}
	return out
}

// N returns the population size.
func (a *Aggregator) N() int { return a.n }

// TotalGroups returns the number of k-dim levels (user groups).
func (a *Aggregator) TotalGroups() int64 { return a.totalGroups }

// Schema returns the schema the aggregator was built over.
func (a *Aggregator) Schema() *domain.Schema { return a.schema }

// Answer estimates the fractional answer of a query: the query is expanded
// with root intervals for unqueried attributes, each predicate is decomposed
// into minimal hierarchy intervals, and the noisy frequencies of all
// resulting k-dim intervals are summed.
func (a *Aggregator) Answer(q query.Query) (float64, error) {
	if err := q.Validate(a.schema); err != nil {
		return 0, err
	}
	k := a.schema.Len()
	perAttr := make([][]interval, k)
	for i := 0; i < k; i++ {
		p, constrained := q.Predicate(i)
		if !constrained {
			perAttr[i] = []interval{{level: 0, index: 0}}
			continue
		}
		switch p.Op {
		case query.Between:
			perAttr[i] = a.hiers[i].decomposeRange(p.Lo, p.Hi)
		default:
			ivs, err := a.hiers[i].decomposeSet(p.Values)
			if err != nil {
				return 0, err
			}
			perAttr[i] = ivs
		}
		if len(perAttr[i]) == 0 {
			return 0, nil // empty range selects nothing
		}
	}

	// Walk the cartesian product, bucketing k-dim intervals by group id.
	byGroup := make(map[int64][]uint64)
	levels := make([]int, k)
	choice := make([]int, k)
	var walk func(attr int)
	walk = func(attr int) {
		if attr == k {
			vid := uint64(0xABCD)
			for i := 0; i < k; i++ {
				iv := perAttr[i][choice[i]]
				levels[i] = iv.level
				vid = fo.MixID(vid, uint64(iv.index))
			}
			gid := encodeLevels(levels, a.radix)
			byGroup[gid] = append(byGroup[gid], vid)
			return
		}
		for c := range perAttr[attr] {
			choice[attr] = c
			walk(attr + 1)
		}
	}
	walk(0)

	// Sum in sorted group order so answers are deterministic.
	gids := make([]int64, 0, len(byGroup))
	for gid := range byGroup {
		gids = append(gids, gid)
	}
	sort.Slice(gids, func(i, j int) bool { return gids[i] < gids[j] })
	var total float64
	for _, gid := range gids {
		for _, f := range a.estimate(gid, byGroup[gid]) {
			total += f
		}
	}
	// The answer is a frequency; clamp the raw noisy sum to [0,1] (with many
	// near-empty groups the unclamped sum can stray far outside).
	if total < 0 {
		total = 0
	}
	if total > 1 {
		total = 1
	}
	return total, nil
}
