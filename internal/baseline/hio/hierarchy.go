// Package hio implements the HIO baseline (Wang et al., SIGMOD'19;
// summarized in the FELIP paper §3.1): hierarchy-based answering of
// multidimensional analytical queries under LDP.
//
// Each attribute gets a 1-D hierarchy of intervals with branching factor b
// (two levels — root and leaves — for categorical attributes). A k-dim level
// is one choice of per-attribute levels; users are divided uniformly across
// all ∏(hᵢ+1) k-dim levels and report the identifier of their k-dim interval
// at their assigned level through OLH. A query expands unqueried attributes
// to the root interval, decomposes each constrained attribute into minimal
// hierarchy intervals, and sums the estimated frequencies of the resulting
// k-dim intervals.
package hio

import (
	"fmt"

	"felip/internal/domain"
)

// hierarchy describes one attribute's interval hierarchy.
type hierarchy struct {
	// levels counts hierarchy levels including the root (level 0).
	levels int
	// branching is the fanout below each interval (numerical attributes).
	branching int
	// domain is the attribute's true domain size d.
	domain int
	// padded is the hierarchy's covered domain: b^(levels-1) for numerical
	// attributes (≥ d), or d for categorical ones.
	padded int
	// categorical marks the two-level {root, leaves} hierarchy.
	categorical bool
}

// newHierarchy builds the hierarchy for one attribute.
func newHierarchy(a domain.Attribute, b int) hierarchy {
	if a.IsCategorical() {
		levels := 2
		if a.Size == 1 {
			levels = 1 // the root already is a leaf
		}
		return hierarchy{levels: levels, branching: a.Size, domain: a.Size, padded: a.Size, categorical: true}
	}
	levels := 1
	padded := 1
	for padded < a.Size {
		padded *= b
		levels++
	}
	return hierarchy{levels: levels, branching: b, domain: a.Size, padded: padded}
}

// intervalsAt returns the number of intervals at a level.
func (h hierarchy) intervalsAt(level int) int64 {
	if level == 0 {
		return 1
	}
	if h.categorical {
		return int64(h.domain)
	}
	n := int64(1)
	for i := 0; i < level; i++ {
		n *= int64(h.branching)
	}
	return n
}

// width returns the number of (padded) domain values an interval at the
// level covers. Categorical levels are root (whole domain) or leaves (1).
func (h hierarchy) width(level int) int {
	if level == 0 {
		return h.padded
	}
	if h.categorical {
		return 1
	}
	w := h.padded
	for i := 0; i < level; i++ {
		w /= h.branching
	}
	return w
}

// intervalOf returns the index of the interval containing value v at level.
func (h hierarchy) intervalOf(level, v int) int64 {
	return int64(v / h.width(level))
}

// interval is one node of a hierarchy: the intervals at `level` are numbered
// left to right by `index`.
type interval struct {
	level int
	index int64
}

// decomposeRange returns the minimal canonical set of hierarchy intervals
// exactly covering the inclusive value range [lo, hi] (clipped to the true
// domain; padded values beyond d hold no users, so including them in a
// larger interval is harmless only when they are empty — the canonical
// decomposition therefore never emits an interval extending past hi).
func (h hierarchy) decomposeRange(lo, hi int) []interval {
	if lo < 0 {
		lo = 0
	}
	if hi >= h.domain {
		hi = h.domain - 1
	}
	if hi < lo {
		return nil
	}
	if h.categorical {
		if lo == 0 && hi == h.domain-1 {
			return []interval{{level: 0, index: 0}}
		}
		out := make([]interval, 0, hi-lo+1)
		for v := lo; v <= hi; v++ {
			out = append(out, interval{level: 1, index: int64(v)})
		}
		return out
	}
	var out []interval
	var rec func(level int, index int64)
	rec = func(level int, index int64) {
		w := h.width(level)
		s := int(index) * w
		e := s + w // half-open
		if s > hi || e <= lo {
			return
		}
		if s >= lo && e-1 <= hi {
			out = append(out, interval{level: level, index: index})
			return
		}
		if level == h.levels-1 {
			return // leaf partially outside [lo,hi] cannot happen (leaves are width 1)
		}
		for c := int64(0); c < int64(h.branching); c++ {
			rec(level+1, index*int64(h.branching)+c)
		}
	}
	rec(0, 0)
	return out
}

// decomposeSet returns the hierarchy intervals for a categorical IN set.
func (h hierarchy) decomposeSet(values []int) ([]interval, error) {
	if !h.categorical {
		return nil, fmt.Errorf("hio: set decomposition on numerical hierarchy")
	}
	seen := make(map[int]bool, len(values))
	for _, v := range values {
		if v < 0 || v >= h.domain {
			return nil, fmt.Errorf("hio: value %d outside domain %d", v, h.domain)
		}
		seen[v] = true
	}
	if len(seen) == h.domain {
		return []interval{{level: 0, index: 0}}, nil
	}
	out := make([]interval, 0, len(seen))
	for v := 0; v < h.domain; v++ {
		if seen[v] {
			out = append(out, interval{level: 1, index: int64(v)})
		}
	}
	return out, nil
}
