package hio

import (
	"math"
	"testing"
	"testing/quick"

	"felip/internal/dataset"
	"felip/internal/domain"
	"felip/internal/query"
)

func numAttr(name string, d int) domain.Attribute {
	return domain.Attribute{Name: name, Kind: domain.Numerical, Size: d}
}

func catAttr(name string, d int) domain.Attribute {
	return domain.Attribute{Name: name, Kind: domain.Categorical, Size: d}
}

func TestNewHierarchyNumerical(t *testing.T) {
	h := newHierarchy(numAttr("a", 64), 4)
	if h.levels != 4 { // 64 = 4^3 → root + 3 levels
		t.Errorf("levels = %d, want 4", h.levels)
	}
	if h.padded != 64 {
		t.Errorf("padded = %d, want 64", h.padded)
	}
	if h.intervalsAt(0) != 1 || h.intervalsAt(3) != 64 {
		t.Errorf("interval counts wrong: %d, %d", h.intervalsAt(0), h.intervalsAt(3))
	}
	if h.width(0) != 64 || h.width(1) != 16 || h.width(3) != 1 {
		t.Error("widths wrong")
	}
	// Non-power domain pads up.
	h = newHierarchy(numAttr("a", 100), 4)
	if h.padded != 256 || h.levels != 5 {
		t.Errorf("d=100: padded=%d levels=%d, want 256/5", h.padded, h.levels)
	}
}

func TestNewHierarchyCategorical(t *testing.T) {
	h := newHierarchy(catAttr("c", 8), 4)
	if !h.categorical || h.levels != 2 || h.padded != 8 {
		t.Errorf("categorical hierarchy wrong: %+v", h)
	}
	if h.intervalsAt(0) != 1 || h.intervalsAt(1) != 8 {
		t.Error("categorical interval counts wrong")
	}
	if h.width(0) != 8 || h.width(1) != 1 {
		t.Error("categorical widths wrong")
	}
	// Singleton domain collapses to the root.
	h = newHierarchy(catAttr("c", 1), 4)
	if h.levels != 1 {
		t.Errorf("singleton levels = %d, want 1", h.levels)
	}
}

func TestIntervalOf(t *testing.T) {
	h := newHierarchy(numAttr("a", 64), 4)
	if h.intervalOf(1, 17) != 1 { // width 16: 17 → interval 1
		t.Error("intervalOf level 1 wrong")
	}
	if h.intervalOf(3, 63) != 63 {
		t.Error("intervalOf leaf wrong")
	}
	if h.intervalOf(0, 42) != 0 {
		t.Error("intervalOf root wrong")
	}
}

// The canonical decomposition must exactly cover the range with whole
// intervals and be minimal in count compared to leaves.
func TestDecomposeRangeCoversExactly(t *testing.T) {
	h := newHierarchy(numAttr("a", 64), 4)
	check := func(lo, hi int) {
		t.Helper()
		ivs := h.decomposeRange(lo, hi)
		covered := make([]bool, 64)
		for _, iv := range ivs {
			w := h.width(iv.level)
			s := int(iv.index) * w
			for v := s; v < s+w; v++ {
				if v >= 64 {
					t.Fatalf("[%d,%d]: interval %+v exceeds domain", lo, hi, iv)
				}
				if covered[v] {
					t.Fatalf("[%d,%d]: value %d covered twice", lo, hi, v)
				}
				covered[v] = true
			}
		}
		for v := 0; v < 64; v++ {
			want := v >= lo && v <= hi
			if covered[v] != want {
				t.Fatalf("[%d,%d]: value %d covered=%v want %v", lo, hi, v, covered[v], want)
			}
		}
	}
	check(0, 63)
	check(5, 38)
	check(0, 0)
	check(63, 63)
	check(16, 31) // exactly one level-1 interval
	check(1, 62)
}

func TestDecomposeRangeMinimal(t *testing.T) {
	h := newHierarchy(numAttr("a", 64), 4)
	// [16,31] is one level-1 interval; canonical must use exactly 1.
	if ivs := h.decomposeRange(16, 31); len(ivs) != 1 || ivs[0].level != 1 {
		t.Errorf("aligned range used %v", ivs)
	}
	// Full domain = root.
	if ivs := h.decomposeRange(0, 63); len(ivs) != 1 || ivs[0].level != 0 {
		t.Errorf("full domain used %v", ivs)
	}
}

func TestDecomposeRangeClipsAndEmpty(t *testing.T) {
	h := newHierarchy(numAttr("a", 64), 4)
	if ivs := h.decomposeRange(-5, 70); len(ivs) != 1 || ivs[0].level != 0 {
		t.Errorf("clipped full range = %v", ivs)
	}
	if ivs := h.decomposeRange(10, 5); ivs != nil {
		t.Errorf("inverted range = %v", ivs)
	}
}

func TestDecomposeSet(t *testing.T) {
	h := newHierarchy(catAttr("c", 4), 4)
	ivs, err := h.decomposeSet([]int{1, 3})
	if err != nil || len(ivs) != 2 || ivs[0].level != 1 {
		t.Errorf("set decomposition = %v, %v", ivs, err)
	}
	// Full set → root.
	ivs, err = h.decomposeSet([]int{0, 1, 2, 3})
	if err != nil || len(ivs) != 1 || ivs[0].level != 0 {
		t.Errorf("full set = %v, %v", ivs, err)
	}
	if _, err := h.decomposeSet([]int{9}); err == nil {
		t.Error("out-of-domain value accepted")
	}
	hn := newHierarchy(numAttr("a", 16), 4)
	if _, err := hn.decomposeSet([]int{1}); err == nil {
		t.Error("set decomposition on numerical hierarchy accepted")
	}
}

func TestGroupCodecRoundTrip(t *testing.T) {
	if err := quick.Check(func(a, b, c uint8) bool {
		radix := []int64{4, 2, 5}
		levels := []int{int(a % 4), int(b % 2), int(c % 5)}
		out := make([]int, 3)
		decodeLevels(encodeLevels(levels, radix), radix, out)
		return out[0] == levels[0] && out[1] == levels[1] && out[2] == levels[2]
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCollectValidation(t *testing.T) {
	s := domain.MustSchema(numAttr("a", 16), catAttr("b", 4))
	ds := dataset.NewUniform().Generate(s, 100, 1)
	if _, err := Collect(ds, Options{}); err == nil {
		t.Error("eps=0 accepted")
	}
	if _, err := Collect(ds, Options{Epsilon: 1, Branching: 1}); err == nil {
		t.Error("branching=1 accepted")
	}
}

func TestCollectGroupCount(t *testing.T) {
	s := domain.MustSchema(numAttr("a", 16), catAttr("b", 4))
	ds := dataset.NewUniform().Generate(s, 5000, 2)
	agg, err := Collect(ds, Options{Epsilon: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// a: 16=4^2 → 3 levels; b: 2 levels → 6 k-dim levels.
	if agg.TotalGroups() != 6 {
		t.Errorf("TotalGroups = %d, want 6", agg.TotalGroups())
	}
	if agg.N() != 5000 {
		t.Errorf("N = %d", agg.N())
	}
	if agg.Schema() != s {
		t.Error("Schema not returned")
	}
	// Every group should have roughly n/6 users.
	for gid, grp := range agg.groups {
		if len(grp.reports) < 5000/6-200 || len(grp.reports) > 5000/6+200 {
			t.Errorf("group %d has %d reports", gid, len(grp.reports))
		}
	}
}

func TestAnswerAccuracy(t *testing.T) {
	s := domain.MustSchema(numAttr("a", 16), catAttr("b", 4))
	ds := dataset.NewNormal().Generate(s, 60000, 7)
	agg, err := Collect(ds, Options{Epsilon: 2, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	cols := [][]uint16{ds.Col(0), ds.Col(1)}
	for _, q := range []query.Query{
		{Preds: []query.Predicate{query.NewRange(0, 4, 11)}},
		{Preds: []query.Predicate{query.NewIn(1, 0, 1)}},
		{Preds: []query.Predicate{query.NewRange(0, 4, 11), query.NewIn(1, 0, 1)}},
	} {
		truth := query.Evaluate(q, cols)
		got, err := agg.Answer(q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-truth) > 0.12 {
			t.Errorf("query %v: got %v, truth %v", q, got, truth)
		}
	}
}

func TestAnswerDeterministic(t *testing.T) {
	s := domain.MustSchema(numAttr("a", 16), numAttr("b", 16))
	ds := dataset.NewUniform().Generate(s, 5000, 13)
	q := query.Query{Preds: []query.Predicate{query.NewRange(0, 3, 12), query.NewRange(1, 0, 7)}}
	a1, _ := Collect(ds, Options{Epsilon: 1, Seed: 17})
	a2, _ := Collect(ds, Options{Epsilon: 1, Seed: 17})
	r1, err := a1.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := a2.Answer(q)
	if r1 != r2 {
		t.Errorf("same seed answers differ: %v vs %v", r1, r2)
	}
}

func TestAnswerValidation(t *testing.T) {
	s := domain.MustSchema(numAttr("a", 16), catAttr("b", 4))
	ds := dataset.NewUniform().Generate(s, 1000, 19)
	agg, err := Collect(ds, Options{Epsilon: 1, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := agg.Answer(query.Query{}); err == nil {
		t.Error("empty query accepted")
	}
	if _, err := agg.Answer(query.Query{Preds: []query.Predicate{query.NewRange(1, 0, 2)}}); err == nil {
		t.Error("range on categorical accepted")
	}
}

// HIO's documented limitation (paper §3.1): error grows with domain size,
// because users spread over more k-dim levels. Verify the group count grows.
func TestGroupCountGrowsWithDomain(t *testing.T) {
	small := domain.MustSchema(numAttr("a", 16), numAttr("b", 16))
	large := domain.MustSchema(numAttr("a", 1024), numAttr("b", 1024))
	dsS := dataset.NewUniform().Generate(small, 500, 1)
	dsL := dataset.NewUniform().Generate(large, 500, 1)
	aS, err := Collect(dsS, Options{Epsilon: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	aL, err := Collect(dsL, Options{Epsilon: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if aL.TotalGroups() <= aS.TotalGroups() {
		t.Errorf("groups %d (d=1024) <= %d (d=16)", aL.TotalGroups(), aS.TotalGroups())
	}
}

// Ten attributes with large domains must not overflow and must still answer.
func TestHighDimensional(t *testing.T) {
	attrs := make([]domain.Attribute, 10)
	for i := range attrs {
		attrs[i] = numAttr(string(rune('a'+i)), 256)
	}
	s := domain.MustSchema(attrs...)
	ds := dataset.NewUniform().Generate(s, 2000, 3)
	agg, err := Collect(ds, Options{Epsilon: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// 256 = 4^4 → 5 levels each → 5^10 ≈ 9.7M groups.
	if agg.TotalGroups() != 9765625 {
		t.Errorf("TotalGroups = %d", agg.TotalGroups())
	}
	q := query.Query{Preds: []query.Predicate{query.NewRange(0, 0, 127), query.NewRange(5, 64, 191)}}
	got, err := agg.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(got) || math.IsInf(got, 0) {
		t.Errorf("non-finite answer %v", got)
	}
}
