package hdg

import (
	"math"
	"strings"
	"testing"

	"felip/internal/dataset"
	"felip/internal/query"
)

func TestVariantString(t *testing.T) {
	if TDG.String() != "TDG" || HDG.String() != "HDG" {
		t.Error("variant names wrong")
	}
	if !strings.Contains(Variant(9).String(), "9") {
		t.Error("unknown variant string")
	}
}

func TestSnapPow2(t *testing.T) {
	cases := map[float64]int{
		0.5:  1,
		1:    1,
		1.6:  2,
		3:    4, // log2(3)=1.585 → rounds to 2 → 4
		5:    4,
		6:    8,
		11:   8, // log2(11)=3.46 → 8: the paper's example of suboptimality
		25:   32,
		1000: 64, // clamped to d=64
	}
	for x, want := range cases {
		if got := snapPow2(x, 64); got != want {
			t.Errorf("snapPow2(%v) = %d, want %d", x, got, want)
		}
	}
}

func TestGranularities(t *testing.T) {
	opts := Options{Variant: HDG, Epsilon: 1}
	g1, g2, err := Granularities(opts, 6, 100, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if g1 < g2 {
		t.Errorf("g1 = %d < g2 = %d; 1-D grids should be finer", g1, g2)
	}
	// Powers of two.
	for _, g := range []int{g1, g2} {
		if g&(g-1) != 0 {
			t.Errorf("granularity %d not a power of two", g)
		}
	}
	if _, _, err := Granularities(Options{Variant: HDG}, 6, 100, 100); err == nil {
		t.Error("eps=0 accepted")
	}
}

func TestCollectValidation(t *testing.T) {
	s := dataset.NumericSchema(3, 32)
	ds := dataset.NewUniform().Generate(s, 1000, 1)
	if _, err := Collect(ds, Options{Variant: TDG}); err == nil {
		t.Error("eps=0 accepted")
	}
	if _, err := Collect(ds, Options{Variant: Variant(9), Epsilon: 1}); err == nil {
		t.Error("unknown variant accepted")
	}
	mixed := dataset.MixedSchema(2, 32, 1, 4)
	dsm := dataset.NewUniform().Generate(mixed, 1000, 1)
	if _, err := Collect(dsm, Options{Variant: TDG, Epsilon: 1}); err == nil {
		t.Error("categorical attribute accepted")
	}
	one := dataset.NumericSchema(1, 32)
	ds1 := dataset.NewUniform().Generate(one, 100, 1)
	if _, err := Collect(ds1, Options{Variant: TDG, Epsilon: 1}); err == nil {
		t.Error("single attribute accepted")
	}
}

func TestCollectShapes(t *testing.T) {
	s := dataset.NumericSchema(3, 64)
	ds := dataset.NewUniform().Generate(s, 30000, 2)
	tdg, err := Collect(ds, Options{Variant: TDG, Epsilon: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if tdg.G1() != 0 {
		t.Error("TDG should have no 1-D grids")
	}
	if tdg.G2() < 1 {
		t.Error("TDG g2 < 1")
	}
	if tdg.N() != 30000 {
		t.Error("N wrong")
	}

	h, err := Collect(ds, Options{Variant: HDG, Epsilon: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if h.G1() < h.G2() {
		t.Errorf("HDG g1 %d < g2 %d", h.G1(), h.G2())
	}
	for i := 0; i < 3; i++ {
		if h.grids1[i] == nil {
			t.Fatalf("HDG missing 1-D grid %d", i)
		}
	}
}

func TestGridsAreDistributions(t *testing.T) {
	s := dataset.NumericSchema(3, 64)
	ds := dataset.NewNormal().Generate(s, 30000, 5)
	for _, v := range []Variant{TDG, HDG} {
		agg, err := Collect(ds, Options{Variant: v, Epsilon: 1, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		check := func(freq []float64, what string) {
			var sum float64
			for _, f := range freq {
				if f < -1e-9 {
					t.Errorf("%v %s: negative freq %v", v, what, f)
				}
				sum += f
			}
			if math.Abs(sum-1) > 1e-6 {
				t.Errorf("%v %s: sums to %v", v, what, sum)
			}
		}
		for key, g2 := range agg.grids2 {
			check(g2.Freq, "2-D "+string(rune('0'+key[0]))+string(rune('0'+key[1])))
		}
		for _, g1 := range agg.grids1 {
			if g1 != nil {
				check(g1.Freq, "1-D")
			}
		}
	}
}

func TestAnswerAccuracy(t *testing.T) {
	s := dataset.NumericSchema(3, 64)
	ds := dataset.NewNormal().Generate(s, 60000, 11)
	cols := [][]uint16{ds.Col(0), ds.Col(1), ds.Col(2)}
	qs := []query.Query{
		{Preds: []query.Predicate{query.NewRange(0, 16, 47)}},
		{Preds: []query.Predicate{query.NewRange(0, 16, 47), query.NewRange(1, 0, 31)}},
		{Preds: []query.Predicate{query.NewRange(0, 16, 47), query.NewRange(1, 0, 31), query.NewRange(2, 16, 63)}},
	}
	for _, v := range []Variant{TDG, HDG} {
		agg, err := Collect(ds, Options{Variant: v, Epsilon: 2, Seed: 13})
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range qs {
			truth := query.Evaluate(q, cols)
			got, err := agg.Answer(q)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-truth) > 0.1 {
				t.Errorf("%v query %v: got %v, truth %v", v, q, got, truth)
			}
		}
	}
}

func TestAnswerRejectsNonRange(t *testing.T) {
	s := dataset.NumericSchema(2, 16)
	ds := dataset.NewUniform().Generate(s, 2000, 17)
	agg, err := Collect(ds, Options{Variant: TDG, Epsilon: 1, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	q := query.Query{Preds: []query.Predicate{query.NewIn(0, 1, 2)}}
	if _, err := agg.Answer(q); err == nil {
		t.Error("IN predicate accepted by TDG")
	}
	if _, err := agg.Answer(query.Query{}); err == nil {
		t.Error("empty query accepted")
	}
}

func TestAnswerDeterministic(t *testing.T) {
	s := dataset.NumericSchema(2, 32)
	ds := dataset.NewUniform().Generate(s, 5000, 23)
	q := query.Query{Preds: []query.Predicate{query.NewRange(0, 4, 20), query.NewRange(1, 8, 30)}}
	for _, v := range []Variant{TDG, HDG} {
		a1, err := Collect(ds, Options{Variant: v, Epsilon: 1, Seed: 29})
		if err != nil {
			t.Fatal(err)
		}
		a2, _ := Collect(ds, Options{Variant: v, Epsilon: 1, Seed: 29})
		r1, err := a1.Answer(q)
		if err != nil {
			t.Fatal(err)
		}
		r2, _ := a2.Answer(q)
		if r1 != r2 {
			t.Errorf("%v: same seed answers differ: %v vs %v", v, r1, r2)
		}
	}
}
