// Package hdg implements the TDG and HDG baselines (Yang et al., VLDB'21;
// summarized in the FELIP paper §3.2): grid-based answering of
// multidimensional *range* queries under LDP.
//
// Both baselines treat every attribute as numerical with a common domain,
// use the OLH protocol exclusively, give every 2-D grid the same granularity
// g₂ (and every 1-D grid the same g₁ for HDG), and snap granularities to the
// nearest power of two — the design decisions FELIP's OUG/OHG improve on.
package hdg

import (
	"fmt"
	"math"
	"sync"

	"felip/internal/dataset"
	"felip/internal/domain"
	"felip/internal/estimate"
	"felip/internal/fo"
	"felip/internal/grid"
	"felip/internal/gridopt"
	"felip/internal/postproc"
	"felip/internal/query"
)

// Variant selects the baseline.
type Variant uint8

const (
	// TDG (Two-Dimensional Grid) collects only 2-D grids and answers with
	// the uniformity assumption.
	TDG Variant = iota
	// HDG (Hybrid-Dimensional Grid) adds 1-D grids and response matrices.
	HDG
)

// String returns "TDG" or "HDG".
func (v Variant) String() string {
	switch v {
	case TDG:
		return "TDG"
	case HDG:
		return "HDG"
	default:
		return fmt.Sprintf("Variant(%d)", uint8(v))
	}
}

// Options configures a TDG/HDG collection round.
type Options struct {
	// Variant is TDG or HDG.
	Variant Variant
	// Epsilon is the per-user privacy budget ε.
	Epsilon float64
	// Alpha1 and Alpha2 are the non-uniformity constants (default 0.7, 0.03,
	// shared with FELIP per the paper's §6.3 setup).
	Alpha1, Alpha2 float64
	// Seed makes the round deterministic. Zero draws a fresh seed.
	Seed uint64
	// PostProcessRounds is the number of consistency ↔ Norm-Sub alternations.
	PostProcessRounds int
	// MatrixMaxIter caps response-matrix sweeps (HDG only).
	MatrixMaxIter int
	// LambdaMaxIter caps the λ-D IPF sweeps.
	LambdaMaxIter int
}

func (o Options) withDefaults() (Options, error) {
	if o.Epsilon <= 0 {
		return o, fmt.Errorf("hdg: epsilon must be positive, got %v", o.Epsilon)
	}
	if o.Variant != TDG && o.Variant != HDG {
		return o, fmt.Errorf("hdg: unknown variant %v", o.Variant)
	}
	if o.Alpha1 == 0 {
		o.Alpha1 = gridopt.DefaultAlpha1
	}
	if o.Alpha2 == 0 {
		o.Alpha2 = gridopt.DefaultAlpha2
	}
	if o.Seed == 0 {
		o.Seed = fo.AutoSeed()
	}
	if o.PostProcessRounds <= 0 {
		o.PostProcessRounds = 3
	}
	if o.MatrixMaxIter <= 0 {
		o.MatrixMaxIter = 50
	}
	if o.LambdaMaxIter <= 0 {
		o.LambdaMaxIter = 100
	}
	return o, nil
}

// snapPow2 returns the power of two nearest to x (in log scale), clamped to
// [1, d] — the granularity rounding TDG/HDG require so cells divide the
// domain evenly (§3.2).
func snapPow2(x float64, d int) int {
	if x <= 1 {
		return 1
	}
	exp := math.Round(math.Log2(x))
	g := 1 << int(exp)
	for g > d {
		g >>= 1
	}
	if g < 1 {
		g = 1
	}
	return g
}

// Granularities returns the paper-formula grid sizes before and after the
// power-of-two snapping: g₁ (HDG's 1-D grids) and g₂ (2-D grids), derived
// from the error analysis at the fixed assumed selectivity r = 0.5.
func Granularities(opts Options, k, d, n int) (g1, g2 int, err error) {
	opts, err = opts.withDefaults()
	if err != nil {
		return 0, 0, err
	}
	m := k * (k - 1) / 2
	if opts.Variant == HDG {
		m += k
	}
	p := gridopt.Params{Epsilon: opts.Epsilon, N: n, M: m, Alpha1: opts.Alpha1, Alpha2: opts.Alpha2}
	g1raw := gridopt.Optimal1DOLH(p, 0.5)
	ee := math.Exp(opts.Epsilon)
	g2raw := math.Sqrt(2*opts.Alpha2) * math.Pow(float64(n)*(ee-1)*(ee-1)/(float64(m)*ee), 0.25)
	return snapPow2(g1raw, d), snapPow2(g2raw, d), nil
}

// Aggregator is the server side of a TDG/HDG round.
type Aggregator struct {
	schema *domain.Schema
	opts   Options
	n      int
	g1, g2 int

	grids1 []*grid.Grid1D // HDG only, indexed by attribute
	grids2 map[[2]int]*grid.Grid2D
	var01  float64
	var02  float64

	mu       sync.Mutex
	matrices map[[2]int]*estimate.Matrix
}

// Collect runs a full TDG or HDG round over the dataset. Every attribute
// must be numerical (the baselines only support range queries); domains may
// differ, but the granularity formulas use the first attribute's domain as
// the common d, as the baselines assume equal domains.
func Collect(ds *dataset.Dataset, opts Options) (*Aggregator, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	schema := ds.Schema()
	k := schema.Len()
	if k < 2 {
		return nil, fmt.Errorf("hdg: need at least 2 attributes, got %d", k)
	}
	for i := 0; i < k; i++ {
		if !schema.Attr(i).IsNumerical() {
			return nil, fmt.Errorf("hdg: attribute %q is categorical; TDG/HDG support numerical attributes only", schema.Attr(i).Name)
		}
	}
	n := ds.N()
	if n < 1 {
		return nil, fmt.Errorf("hdg: need at least 1 user")
	}
	d := schema.Attr(0).Size
	g1, g2, err := Granularities(opts, k, d, n)
	if err != nil {
		return nil, err
	}

	pairs := schema.Pairs()
	m := len(pairs)
	if opts.Variant == HDG {
		m += k
	}

	agg := &Aggregator{
		schema:   schema,
		opts:     opts,
		n:        n,
		g1:       g1,
		g2:       g2,
		grids2:   make(map[[2]int]*grid.Grid2D, len(pairs)),
		matrices: make(map[[2]int]*estimate.Matrix),
	}
	if opts.Variant == HDG {
		agg.grids1 = make([]*grid.Grid1D, k)
	}

	// Build the grid specs in deterministic order: 1-D grids (HDG) then all
	// pairs.
	type spec struct {
		attrX, attrY int // attrY = -1 for 1-D
		axX, axY     *grid.Axis
	}
	var specs []spec
	if opts.Variant == HDG {
		for i := 0; i < k; i++ {
			ax, err := grid.NewAxis(schema.Attr(i).Size, g1)
			if err != nil {
				return nil, err
			}
			specs = append(specs, spec{attrX: i, attrY: -1, axX: ax})
		}
	}
	for _, pq := range pairs {
		axX, err := grid.NewAxis(schema.Attr(pq[0]).Size, g2)
		if err != nil {
			return nil, err
		}
		axY, err := grid.NewAxis(schema.Attr(pq[1]).Size, g2)
		if err != nil {
			return nil, err
		}
		specs = append(specs, spec{attrX: pq[0], attrY: pq[1], axX: axX, axY: axY})
	}

	rng := fo.NewRand(opts.Seed)
	assign := ds.Split(m, rng)
	groupVals := make([][]int, m)
	for row, g := range assign {
		sp := specs[g]
		var cell int
		if sp.attrY < 0 {
			cell = sp.axX.CellOf(ds.Value(row, sp.attrX))
		} else {
			cell = sp.axX.CellOf(ds.Value(row, sp.attrX))*sp.axY.Cells() + sp.axY.CellOf(ds.Value(row, sp.attrY))
		}
		groupVals[g] = append(groupVals[g], cell)
	}

	for gi, sp := range specs {
		L := sp.axX.Cells()
		if sp.attrY >= 0 {
			L *= sp.axY.Cells()
		}
		freq, err := fo.Estimate(fo.OLH, opts.Epsilon, L, groupVals[gi], rng.Uint64())
		if err != nil {
			return nil, err
		}
		if sp.attrY < 0 {
			g1d := grid.NewGrid1D(sp.attrX, sp.axX)
			if err := g1d.SetFreq(freq); err != nil {
				return nil, err
			}
			agg.grids1[sp.attrX] = g1d
		} else {
			g2d := grid.NewGrid2D(sp.attrX, sp.attrY, sp.axX, sp.axY)
			if err := g2d.SetFreq(freq); err != nil {
				return nil, err
			}
			agg.grids2[[2]int{sp.attrX, sp.attrY}] = g2d
		}
	}

	nGroup := n/m + 1
	agg.var01 = fo.OLHVariance(opts.Epsilon, nGroup)
	agg.var02 = agg.var01
	agg.postProcess()
	return agg, nil
}

// postProcess mirrors the aggregator-side negativity removal and consistency
// of the baselines (§3.2).
func (a *Aggregator) postProcess() {
	k := a.schema.Len()
	var attrViews [][]postproc.View
	for attr := 0; attr < k; attr++ {
		var views []postproc.View
		if a.opts.Variant == HDG {
			g1 := a.grids1[attr]
			views = append(views, postproc.View{
				Axis: g1.Axis, Freq: g1.Freq,
				Cols: postproc.Columns1D(g1.L()), Var0: a.var01,
			})
		}
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				g2, ok := a.grids2[[2]int{i, j}]
				if !ok {
					continue
				}
				switch attr {
				case i:
					views = append(views, postproc.View{
						Axis: g2.X, Freq: g2.Freq,
						Cols: postproc.ColumnsX(g2.X.Cells(), g2.Y.Cells()), Var0: a.var02,
					})
				case j:
					views = append(views, postproc.View{
						Axis: g2.Y, Freq: g2.Freq,
						Cols: postproc.ColumnsY(g2.X.Cells(), g2.Y.Cells()), Var0: a.var02,
					})
				}
			}
		}
		if len(views) > 1 {
			attrViews = append(attrViews, views)
		}
	}
	var freqs [][]float64
	for _, g1 := range a.grids1 {
		if g1 != nil {
			freqs = append(freqs, g1.Freq)
		}
	}
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			if g2, ok := a.grids2[[2]int{i, j}]; ok {
				freqs = append(freqs, g2.Freq)
			}
		}
	}
	postproc.Pipeline(attrViews, freqs, a.opts.PostProcessRounds)
}

// G1 returns the (snapped) 1-D granularity; 0 for TDG.
func (a *Aggregator) G1() int {
	if a.opts.Variant == TDG {
		return 0
	}
	return a.g1
}

// G2 returns the (snapped) 2-D granularity.
func (a *Aggregator) G2() int { return a.g2 }

// N returns the population size.
func (a *Aggregator) N() int { return a.n }

// Answer estimates the fractional answer of a range query: 1-D queries read
// the best marginal, and λ ≥ 2 queries recombine the C(λ,2) associated 2-D
// answers with the IPF of Algorithm 4 (which TDG/HDG introduced).
func (a *Aggregator) Answer(q query.Query) (float64, error) {
	if err := q.Validate(a.schema); err != nil {
		return 0, err
	}
	for _, p := range q.Preds {
		if p.Op != query.Between {
			return 0, fmt.Errorf("hdg: %v only supports range (BETWEEN) predicates", a.opts.Variant)
		}
	}
	lambda := q.Lambda()
	if lambda == 1 {
		p := q.Preds[0]
		sel := p.Selection(a.schema.Attr(p.Attr).Size)
		if a.opts.Variant == HDG {
			return a.grids1[p.Attr].Mass(sel), nil
		}
		for i := 0; i < a.schema.Len(); i++ {
			for j := i + 1; j < a.schema.Len(); j++ {
				if i != p.Attr && j != p.Attr {
					continue
				}
				g2 := a.grids2[[2]int{i, j}]
				marg, err := g2.ValueMarginal(p.Attr)
				if err != nil {
					return 0, err
				}
				var s float64
				for v, f := range marg {
					if sel[v] {
						s += f
					}
				}
				return s, nil
			}
		}
		return 0, fmt.Errorf("hdg: no grid covers attribute %d", p.Attr)
	}

	attrs := q.Attrs()
	sels := make(map[int][]bool, lambda)
	for _, p := range q.Preds {
		sels[p.Attr] = p.Selection(a.schema.Attr(p.Attr).Size)
	}
	var pairs []estimate.PairAnswer
	for ii := 0; ii < lambda; ii++ {
		for jj := ii + 1; jj < lambda; jj++ {
			ai, aj := attrs[ii], attrs[jj]
			pa, err := a.pairAnswer(ai, aj, sels[ai], sels[aj])
			if err != nil {
				return 0, err
			}
			pa.I, pa.J = ii, jj
			pairs = append(pairs, pa)
		}
	}
	return estimate.EstimateLambda(lambda, pairs, 1/float64(a.n), a.opts.LambdaMaxIter)
}

func negate(sel []bool) []bool {
	out := make([]bool, len(sel))
	for i, b := range sel {
		out[i] = !b
	}
	return out
}

func (a *Aggregator) pairAnswer(i, j int, selI, selJ []bool) (estimate.PairAnswer, error) {
	notI, notJ := negate(selI), negate(selJ)
	if a.opts.Variant == HDG {
		m, err := a.responseMatrix(i, j)
		if err != nil {
			return estimate.PairAnswer{}, err
		}
		return estimate.PairAnswer{
			PP: m.MaskSum(selI, selJ),
			PN: m.MaskSum(selI, notJ),
			NP: m.MaskSum(notI, selJ),
			NN: m.MaskSum(notI, notJ),
		}, nil
	}
	g2, ok := a.grids2[[2]int{i, j}]
	if !ok {
		return estimate.PairAnswer{}, fmt.Errorf("hdg: no grid for pair (%d,%d)", i, j)
	}
	return estimate.PairAnswer{
		PP: g2.Mass(selI, selJ),
		PN: g2.Mass(selI, notJ),
		NP: g2.Mass(notI, selJ),
		NN: g2.Mass(notI, notJ),
	}, nil
}

// responseMatrix builds (and caches) the per-value response matrix of a pair
// from Γ = {G(i), G(j), G(i,j)} via Algorithm 3.
func (a *Aggregator) responseMatrix(i, j int) (*estimate.Matrix, error) {
	key := [2]int{i, j}
	a.mu.Lock()
	defer a.mu.Unlock()
	if m, ok := a.matrices[key]; ok {
		return m, nil
	}
	g2, ok := a.grids2[key]
	if !ok {
		return nil, fmt.Errorf("hdg: no grid for pair (%d,%d)", i, j)
	}
	di, dj := a.schema.Attr(i).Size, a.schema.Attr(j).Size
	m, err := estimate.NewMatrix(di, dj)
	if err != nil {
		return nil, err
	}
	var cons []estimate.Constraint
	lx, ly := g2.X.Cells(), g2.Y.Cells()
	for cx := 0; cx < lx; cx++ {
		xLo, xHi := g2.X.CellRange(cx)
		for cy := 0; cy < ly; cy++ {
			yLo, yHi := g2.Y.CellRange(cy)
			cons = append(cons, estimate.Constraint{
				R:      estimate.Rect{XLo: xLo, XHi: xHi, YLo: yLo, YHi: yHi},
				Target: g2.At(cx, cy),
			})
		}
	}
	for c := 0; c < a.grids1[i].L(); c++ {
		lo, hi := a.grids1[i].Axis.CellRange(c)
		cons = append(cons, estimate.Constraint{
			R:      estimate.Rect{XLo: lo, XHi: hi, YLo: 0, YHi: dj},
			Target: a.grids1[i].Freq[c],
		})
	}
	for c := 0; c < a.grids1[j].L(); c++ {
		lo, hi := a.grids1[j].Axis.CellRange(c)
		cons = append(cons, estimate.Constraint{
			R:      estimate.Rect{XLo: 0, XHi: di, YLo: lo, YHi: hi},
			Target: a.grids1[j].Freq[c],
		})
	}
	m.Fit(cons, 1/float64(a.n), a.opts.MatrixMaxIter)
	a.matrices[key] = m
	return m, nil
}
