package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	const workers, each = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*each {
		t.Errorf("Value = %d, want %d", got, workers*each)
	}
	c.Add(-3)
	if got := c.Value(); got != workers*each-3 {
		t.Errorf("after Add(-3): %d", got)
	}
}

func TestTimerAccumulates(t *testing.T) {
	var tm Timer
	tm.Observe(3 * time.Millisecond)
	tm.Observe(7 * time.Millisecond)
	if got := tm.Count(); got != 2 {
		t.Errorf("Count = %d, want 2", got)
	}
	if got := tm.TotalNS(); got != int64(10*time.Millisecond) {
		t.Errorf("TotalNS = %d, want %d", got, int64(10*time.Millisecond))
	}
}

func TestRegistryAndSnapshot(t *testing.T) {
	c := GetCounter("test.registry.counter")
	if GetCounter("test.registry.counter") != c {
		t.Error("GetCounter returned a different instance for the same name")
	}
	c.Add(5)
	tm := GetTimer("test.registry.timer")
	if GetTimer("test.registry.timer") != tm {
		t.Error("GetTimer returned a different instance for the same name")
	}
	tm.Observe(2 * time.Second)

	snap := Snapshot()
	if snap["test.registry.counter"] != 5 {
		t.Errorf("snapshot counter = %d, want 5", snap["test.registry.counter"])
	}
	if snap["test.registry.timer.count"] != 1 {
		t.Errorf("snapshot timer count = %d, want 1", snap["test.registry.timer.count"])
	}
	if snap["test.registry.timer.ns"] != int64(2*time.Second) {
		t.Errorf("snapshot timer ns = %d", snap["test.registry.timer.ns"])
	}
	// The snapshot is a copy: mutating it must not touch the registry.
	snap["test.registry.counter"] = 0
	if c.Value() != 5 {
		t.Error("mutating the snapshot changed the live counter")
	}

	names := InstrumentNames()
	var haveC, haveT bool
	for _, n := range names {
		if n == "test.registry.counter" {
			haveC = true
		}
		if n == "test.registry.timer" {
			haveT = true
		}
	}
	if !haveC || !haveT {
		t.Errorf("InstrumentNames missing test instruments: %v", names)
	}
}

func TestGaugeSetAndSnapshot(t *testing.T) {
	g := GetGauge("test.gauge.rounds")
	if GetGauge("test.gauge.rounds") != g {
		t.Fatal("GetGauge returned a different instance for the same name")
	}
	g.Set(3)
	g.Set(7)
	if got := g.Value(); got != 7 {
		t.Fatalf("Value = %d, want 7 (gauges are set, not accumulated)", got)
	}
	if got := Snapshot()["test.gauge.rounds"]; got != 7 {
		t.Fatalf("Snapshot gauge = %d, want 7", got)
	}
	found := false
	for _, name := range InstrumentNames() {
		if name == "test.gauge.rounds" {
			found = true
		}
	}
	if !found {
		t.Fatal("gauge missing from InstrumentNames")
	}
}
