// Package metrics provides the error measures of the paper's evaluation
// (§6.1) and small summary-statistics helpers used by the experiment harness.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// MAE returns the Mean Absolute Error between estimated and true answers:
// (1/|Q|)·Σ|f_q − f̄_q| (paper §6.1).
func MAE(estimated, truth []float64) (float64, error) {
	if len(estimated) != len(truth) {
		return 0, fmt.Errorf("metrics: length mismatch %d vs %d", len(estimated), len(truth))
	}
	if len(estimated) == 0 {
		return 0, fmt.Errorf("metrics: empty input")
	}
	var sum float64
	for i := range estimated {
		sum += math.Abs(estimated[i] - truth[i])
	}
	return sum / float64(len(estimated)), nil
}

// MSE returns the Mean Squared Error between estimated and true answers.
func MSE(estimated, truth []float64) (float64, error) {
	if len(estimated) != len(truth) {
		return 0, fmt.Errorf("metrics: length mismatch %d vs %d", len(estimated), len(truth))
	}
	if len(estimated) == 0 {
		return 0, fmt.Errorf("metrics: empty input")
	}
	var sum float64
	for i := range estimated {
		d := estimated[i] - truth[i]
		sum += d * d
	}
	return sum / float64(len(estimated)), nil
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Median returns the median (0 for empty input). The input is not modified.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	mid := len(cp) / 2
	if len(cp)%2 == 1 {
		return cp[mid]
	}
	return 0.5 * (cp[mid-1] + cp[mid])
}

// StdDev returns the sample standard deviation (0 for fewer than 2 points).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}
