package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMAE(t *testing.T) {
	got, err := MAE([]float64{0.1, 0.5}, []float64{0.2, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.15) > 1e-12 {
		t.Errorf("MAE = %v, want 0.15", got)
	}
	if _, err := MAE([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := MAE(nil, nil); err == nil {
		t.Error("empty input accepted")
	}
}

func TestMSE(t *testing.T) {
	got, err := MSE([]float64{0, 1}, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.5) > 1e-12 {
		t.Errorf("MSE = %v, want 0.5", got)
	}
	if _, err := MSE([]float64{1}, nil); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := MSE(nil, nil); err == nil {
		t.Error("empty input accepted")
	}
}

func TestMeanMedianStdDev(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if Mean(xs) != 2.5 {
		t.Errorf("Mean = %v", Mean(xs))
	}
	if Median(xs) != 2.5 {
		t.Errorf("Median = %v", Median(xs))
	}
	if Median([]float64{3, 1, 2}) != 2 {
		t.Error("odd median wrong")
	}
	if Mean(nil) != 0 || Median(nil) != 0 || StdDev(nil) != 0 {
		t.Error("empty summaries should be 0")
	}
	if StdDev([]float64{5}) != 0 {
		t.Error("single-point stddev should be 0")
	}
	if math.Abs(StdDev(xs)-math.Sqrt(5.0/3)) > 1e-12 {
		t.Errorf("StdDev = %v", StdDev(xs))
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 || xs[1] != 1 {
		t.Error("Median mutated input")
	}
}

func TestMAEProperties(t *testing.T) {
	// MAE(x, x) == 0; MAE symmetric; MAE >= 0; MSE <= MAE when all diffs <= 1.
	if err := quick.Check(func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		a := make([]float64, len(raw))
		b := make([]float64, len(raw))
		for i, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				x = 0
			}
			a[i] = math.Mod(x, 1)
			b[i] = math.Mod(x/2, 1)
		}
		self, _ := MAE(a, a)
		ab, _ := MAE(a, b)
		ba, _ := MAE(b, a)
		return self == 0 && ab == ba && ab >= 0
	}, nil); err != nil {
		t.Fatal(err)
	}
}
