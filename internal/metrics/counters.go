package metrics

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing, concurrency-safe event counter.
// The zero value is ready to use.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n may be any sign; counters used as gauges subtract).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a concurrency-safe instantaneous value — unlike a Counter it is
// set, not accumulated (e.g. the round currently being served). The zero
// value is ready to use.
type Gauge struct {
	v atomic.Int64
}

// Set stores the current value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Timer accumulates durations of a repeated operation: how many times it ran
// and the total nanoseconds spent. Both fields update atomically, so a Timer
// can be observed from hot paths without locks.
type Timer struct {
	n  atomic.Int64
	ns atomic.Int64
}

// Observe records one completed run of duration d.
func (t *Timer) Observe(d time.Duration) {
	t.n.Add(1)
	t.ns.Add(int64(d))
}

// Count returns how many runs were observed.
func (t *Timer) Count() int64 { return t.n.Load() }

// TotalNS returns the accumulated nanoseconds across all runs.
func (t *Timer) TotalNS() int64 { return t.ns.Load() }

// registry is the process-wide named instrument table. Named counters and
// timers exist so that deep components (the fo aggregation kernel, the
// collector) can record what they did without threading instrument handles
// through every constructor; operators read the result via Snapshot (the
// HTTP API exposes it in /v1/status).
var registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	timers   map[string]*Timer
	gauges   map[string]*Gauge
}

// GetCounter returns the process-wide counter with the given name, creating
// it on first use. Names are dotted paths, e.g. "fo.olh.fold_reports".
func GetCounter(name string) *Counter {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if registry.counters == nil {
		registry.counters = make(map[string]*Counter)
	}
	c, ok := registry.counters[name]
	if !ok {
		c = new(Counter)
		registry.counters[name] = c
	}
	return c
}

// GetTimer returns the process-wide timer with the given name, creating it on
// first use.
func GetTimer(name string) *Timer {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if registry.timers == nil {
		registry.timers = make(map[string]*Timer)
	}
	t, ok := registry.timers[name]
	if !ok {
		t = new(Timer)
		registry.timers[name] = t
	}
	return t
}

// GetGauge returns the process-wide gauge with the given name, creating it on
// first use.
func GetGauge(name string) *Gauge {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if registry.gauges == nil {
		registry.gauges = make(map[string]*Gauge)
	}
	g, ok := registry.gauges[name]
	if !ok {
		g = new(Gauge)
		registry.gauges[name] = g
	}
	return g
}

// Snapshot returns the current value of every registered instrument: counters
// and gauges under their own name, timers as "<name>.count" and "<name>.ns".
// Keys are returned in a fresh map the caller owns.
func Snapshot() map[string]int64 {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	out := make(map[string]int64, len(registry.counters)+len(registry.gauges)+2*len(registry.timers))
	for name, c := range registry.counters {
		out[name] = c.Value()
	}
	for name, g := range registry.gauges {
		out[name] = g.Value()
	}
	for name, t := range registry.timers {
		out[name+".count"] = t.Count()
		out[name+".ns"] = t.TotalNS()
	}
	return out
}

// InstrumentNames returns the sorted names of all registered instruments,
// mostly for tests and debug output.
func InstrumentNames() []string {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	names := make([]string, 0, len(registry.counters)+len(registry.gauges)+len(registry.timers))
	for name := range registry.counters {
		names = append(names, name)
	}
	for name := range registry.gauges {
		names = append(names, name)
	}
	for name := range registry.timers {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
