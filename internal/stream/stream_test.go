package stream

import (
	"math"
	"testing"

	"felip/internal/core"
	"felip/internal/dataset"
	"felip/internal/query"
)

func streamOpts() Options {
	return Options{Core: core.Options{Strategy: core.OUG, Epsilon: 2, Seed: 5}}
}

func TestNewValidation(t *testing.T) {
	s := dataset.MixedSchema(2, 32, 1, 4)
	if _, err := New(nil, streamOpts()); err == nil {
		t.Error("nil schema accepted")
	}
	if _, err := New(s, Options{Core: core.Options{Strategy: core.OUG}}); err == nil {
		t.Error("eps=0 accepted")
	}
	if _, err := New(s, Options{MaxWindows: -1, Core: core.Options{Strategy: core.OUG, Epsilon: 1}}); err == nil {
		t.Error("negative MaxWindows accepted")
	}
	c, err := New(s, streamOpts())
	if err != nil {
		t.Fatal(err)
	}
	if c.Windows() != 0 || c.LatestIndex() != -1 {
		t.Error("fresh collector not empty")
	}
}

func TestIngestValidation(t *testing.T) {
	s := dataset.MixedSchema(2, 32, 1, 4)
	c, err := New(s, streamOpts())
	if err != nil {
		t.Fatal(err)
	}
	other := dataset.MixedSchema(2, 32, 1, 4)
	foreign := dataset.NewUniform().Generate(other, 100, 1)
	if err := c.Ingest(foreign); err == nil {
		t.Error("foreign schema accepted")
	}
	if err := c.Ingest(dataset.New(s, 0)); err == nil {
		t.Error("empty batch accepted")
	}
}

func TestAnswersBeforeIngest(t *testing.T) {
	s := dataset.MixedSchema(2, 32, 1, 4)
	c, _ := New(s, streamOpts())
	q := query.Query{Preds: []query.Predicate{query.NewRange(0, 0, 15), query.NewRange(1, 0, 15)}}
	if _, err := c.AnswerLatest(q); err == nil {
		t.Error("AnswerLatest on empty collector accepted")
	}
	if _, err := c.AnswerHorizon(q); err == nil {
		t.Error("AnswerHorizon on empty collector accepted")
	}
	if _, err := c.AnswerWindow(0, q); err == nil {
		t.Error("AnswerWindow on empty collector accepted")
	}
}

func TestWindowedCollection(t *testing.T) {
	s := dataset.MixedSchema(2, 32, 1, 4)
	c, err := New(s, streamOpts())
	if err != nil {
		t.Fatal(err)
	}
	q := query.Query{Preds: []query.Predicate{query.NewRange(0, 0, 15), query.NewRange(1, 0, 15)}}

	// Window 0: uniform data — answer ≈ 0.25. Window 1: data concentrated
	// low — answer ≈ higher.
	uni := dataset.NewUniform().Generate(s, 30000, 1)
	if err := c.Ingest(uni); err != nil {
		t.Fatal(err)
	}
	norm := dataset.NewNormal().Generate(s, 30000, 2)
	if err := c.Ingest(norm); err != nil {
		t.Fatal(err)
	}
	if c.Windows() != 2 || c.LatestIndex() != 1 {
		t.Fatalf("windows=%d latest=%d", c.Windows(), c.LatestIndex())
	}

	colsU := [][]uint16{uni.Col(0), uni.Col(1), uni.Col(2)}
	colsN := [][]uint16{norm.Col(0), norm.Col(1), norm.Col(2)}
	truthU := query.Evaluate(q, colsU)
	truthN := query.Evaluate(q, colsN)

	gotLatest, err := c.AnswerLatest(q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gotLatest-truthN) > 0.06 {
		t.Errorf("latest window: got %v, truth %v", gotLatest, truthN)
	}
	got0, err := c.AnswerWindow(0, q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got0-truthU) > 0.06 {
		t.Errorf("window 0: got %v, truth %v", got0, truthU)
	}
	horizon, err := c.AnswerHorizon(q)
	if err != nil {
		t.Fatal(err)
	}
	wantHorizon := (truthU + truthN) / 2 // equal batch sizes
	if math.Abs(horizon-wantHorizon) > 0.06 {
		t.Errorf("horizon: got %v, want ~%v", horizon, wantHorizon)
	}
}

func TestDecayedLeansToNewest(t *testing.T) {
	s := dataset.MixedSchema(2, 32, 1, 4)
	c, err := New(s, streamOpts())
	if err != nil {
		t.Fatal(err)
	}
	q := query.Query{Preds: []query.Predicate{query.NewRange(0, 0, 15), query.NewRange(1, 0, 15)}}
	if err := c.Ingest(dataset.NewUniform().Generate(s, 20000, 1)); err != nil {
		t.Fatal(err)
	}
	if err := c.Ingest(dataset.NewNormal().Generate(s, 20000, 2)); err != nil {
		t.Fatal(err)
	}
	horizon, err := c.AnswerHorizon(q)
	if err != nil {
		t.Fatal(err)
	}
	decayed, err := c.AnswerDecayed(q, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	latest, err := c.AnswerLatest(q)
	if err != nil {
		t.Fatal(err)
	}
	// Strong decay must sit between the plain average and the newest window,
	// closer to the newest.
	if math.Abs(decayed-latest) > math.Abs(horizon-latest) {
		t.Errorf("decayed %v not closer to latest %v than horizon %v", decayed, latest, horizon)
	}
	if _, err := c.AnswerDecayed(q, 0); err == nil {
		t.Error("zero half-life accepted")
	}
}

func TestRingEviction(t *testing.T) {
	s := dataset.MixedSchema(2, 16, 1, 4)
	c, err := New(s, Options{MaxWindows: 2, Core: core.Options{Strategy: core.OUG, Epsilon: 1, Seed: 3}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := c.Ingest(dataset.NewUniform().Generate(s, 2000, uint64(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	if c.Windows() != 2 {
		t.Fatalf("retained %d windows, want 2", c.Windows())
	}
	if c.LatestIndex() != 3 {
		t.Errorf("latest index %d, want 3", c.LatestIndex())
	}
	q := query.Query{Preds: []query.Predicate{query.NewRange(0, 0, 7), query.NewRange(1, 0, 7)}}
	if _, err := c.AnswerWindow(0, q); err == nil {
		t.Error("evicted window still answerable")
	}
	if _, err := c.AnswerWindow(3, q); err != nil {
		t.Errorf("retained window failed: %v", err)
	}
}
