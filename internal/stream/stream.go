// Package stream extends FELIP to data streams, the paper's third
// future-work direction (§7): "investigate how to leverage low-dimensional
// grids to answer queries over data streams".
//
// The stream is processed in windows: each arriving batch of users runs one
// complete FELIP collection round (every user in the batch reports once with
// full ε, so the per-user ε-LDP guarantee is unchanged as long as a user
// appears in at most one window), and the collector retains a bounded ring
// of per-window aggregators. Queries can then be answered over the latest
// window, any retained window, the whole retained horizon (user-weighted),
// or with exponential decay toward the present.
//
// If the same user can appear in multiple windows, the per-user guarantee
// degrades by composition; use package privacy's Accountant to track and
// cap each user's cumulative budget across windows.
package stream

import (
	"fmt"
	"math"
	"sync"

	"felip/internal/core"
	"felip/internal/dataset"
	"felip/internal/domain"
	"felip/internal/fo"
	"felip/internal/query"
)

// Options configures a streaming collector.
type Options struct {
	// Core carries the per-window FELIP options (strategy, ε, ...). The
	// window seed is derived per batch from Core.Seed.
	Core core.Options
	// MaxWindows bounds how many window aggregators are retained (ring
	// buffer, default 16). Older windows are evicted.
	MaxWindows int
}

// window is one ingested batch.
type window struct {
	// Index is the global sequence number of the window (0-based).
	Index int
	// N is the batch's population size.
	N   int
	agg *core.Aggregator
}

// Collector ingests batches and answers queries over the retained horizon.
// It is safe for concurrent use.
type Collector struct {
	schema *domain.Schema
	opts   Options
	rngMu  sync.Mutex
	rng    *fo.Rand

	mu      sync.RWMutex
	windows []window
	next    int
}

// New creates a streaming collector over the schema.
func New(schema *domain.Schema, opts Options) (*Collector, error) {
	if schema == nil {
		return nil, fmt.Errorf("stream: nil schema")
	}
	if opts.MaxWindows == 0 {
		opts.MaxWindows = 16
	}
	if opts.MaxWindows < 1 {
		return nil, fmt.Errorf("stream: MaxWindows must be >= 1, got %d", opts.MaxWindows)
	}
	if opts.Core.Epsilon <= 0 {
		return nil, fmt.Errorf("stream: epsilon must be positive, got %v", opts.Core.Epsilon)
	}
	if opts.Core.Seed == 0 {
		opts.Core.Seed = fo.AutoSeed()
	}
	return &Collector{
		schema: schema,
		opts:   opts,
		rng:    fo.NewRand(opts.Core.Seed),
	}, nil
}

// Ingest runs one FELIP collection round over the batch and appends it as
// the newest window. The batch's schema must match the collector's.
func (c *Collector) Ingest(batch *dataset.Dataset) error {
	if batch.Schema() != c.schema {
		return fmt.Errorf("stream: batch schema %v does not match collector schema %v",
			batch.Schema(), c.schema)
	}
	if batch.N() < 1 {
		return fmt.Errorf("stream: empty batch")
	}
	opts := c.opts.Core
	c.rngMu.Lock()
	opts.Seed = c.rng.Uint64()
	c.rngMu.Unlock()
	agg, err := core.Collect(batch, opts)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.windows = append(c.windows, window{Index: c.next, N: batch.N(), agg: agg})
	c.next++
	if len(c.windows) > c.opts.MaxWindows {
		c.windows = c.windows[len(c.windows)-c.opts.MaxWindows:]
	}
	return nil
}

// Windows returns the retained window count.
func (c *Collector) Windows() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.windows)
}

// LatestIndex returns the newest window's global index, or -1 when empty.
func (c *Collector) LatestIndex() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if len(c.windows) == 0 {
		return -1
	}
	return c.windows[len(c.windows)-1].Index
}

// AnswerLatest answers the query on the newest window.
func (c *Collector) AnswerLatest(q query.Query) (float64, error) {
	c.mu.RLock()
	if len(c.windows) == 0 {
		c.mu.RUnlock()
		return 0, fmt.Errorf("stream: no windows ingested")
	}
	agg := c.windows[len(c.windows)-1].agg
	c.mu.RUnlock()
	return agg.Answer(q)
}

// AnswerWindow answers the query on the window with the given global index;
// it fails if the window was evicted or never existed.
func (c *Collector) AnswerWindow(index int, q query.Query) (float64, error) {
	c.mu.RLock()
	var agg *core.Aggregator
	for _, w := range c.windows {
		if w.Index == index {
			agg = w.agg
			break
		}
	}
	c.mu.RUnlock()
	if agg == nil {
		return 0, fmt.Errorf("stream: window %d not retained", index)
	}
	return agg.Answer(q)
}

// AnswerHorizon answers the query over all retained windows, weighting each
// window's answer by its population size — the estimate for the union of the
// retained batches.
func (c *Collector) AnswerHorizon(q query.Query) (float64, error) {
	return c.weightedAnswer(q, func(w window) float64 { return float64(w.N) })
}

// AnswerDecayed answers the query with exponential decay toward the newest
// window: window i (age a in windows) gets weight N_i·2^(−a/halfLife).
func (c *Collector) AnswerDecayed(q query.Query, halfLife float64) (float64, error) {
	if halfLife <= 0 {
		return 0, fmt.Errorf("stream: half-life must be positive, got %v", halfLife)
	}
	c.mu.RLock()
	newest := 0
	if len(c.windows) > 0 {
		newest = c.windows[len(c.windows)-1].Index
	}
	c.mu.RUnlock()
	return c.weightedAnswer(q, func(w window) float64 {
		return DecayWeight(w.N, float64(newest-w.Index), halfLife)
	})
}

func (c *Collector) weightedAnswer(q query.Query, weight func(window) float64) (float64, error) {
	c.mu.RLock()
	ws := make([]window, len(c.windows))
	copy(ws, c.windows)
	c.mu.RUnlock()
	if len(ws) == 0 {
		return 0, fmt.Errorf("stream: no windows ingested")
	}
	items := make([]Item, len(ws))
	for i, w := range ws {
		items[i] = Item{Weight: weight(w), Answer: w.agg.Answer}
	}
	return WeightedAnswer(q, items)
}

// Item is one weighted answer source: a window, a round, or anything else
// that can answer a query. Weight carries the source's contribution to the
// aggregate (typically its population size, possibly decayed).
type Item struct {
	Weight float64
	Answer func(query.Query) (float64, error)
}

// DecayWeight is the exponential-decay weight of a source of population n at
// the given age (in windows or rounds): n·2^(−age/halfLife). It is the weight
// AnswerDecayed applies per window, exported so the archive's historical
// query plane decays rounds with identical semantics.
func DecayWeight(n int, age, halfLife float64) float64 {
	return float64(n) * math.Exp2(-age/halfLife)
}

// WeightedAnswer answers the query over every item, combining the answers as
// the weighted mean Σ wᵢ·fᵢ / Σ wᵢ. Items must be supplied in a deterministic
// order (windows oldest-first here; rounds ascending in the archive) so the
// floating-point summation reproduces bit-for-bit across restarts.
func WeightedAnswer(q query.Query, items []Item) (float64, error) {
	if len(items) == 0 {
		return 0, fmt.Errorf("stream: no windows ingested")
	}
	var num, den float64
	for _, it := range items {
		f, err := it.Answer(q)
		if err != nil {
			return 0, err
		}
		num += it.Weight * f
		den += it.Weight
	}
	if den == 0 {
		return 0, fmt.Errorf("stream: zero total weight")
	}
	return num / den, nil
}
