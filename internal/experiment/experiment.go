// Package experiment defines and runs the paper's evaluation scenarios
// (§6): one FigureSpec per paper figure plus the ablations, a cell runner
// that generates data and queries, executes every strategy, and reports MAE,
// and a plain-text printer for the resulting series.
package experiment

import (
	"fmt"
	"math"

	"felip/internal/adaptive"
	"felip/internal/baseline/hdg"
	"felip/internal/baseline/hio"
	"felip/internal/core"
	"felip/internal/dataset"
	"felip/internal/domain"
	"felip/internal/fo"
	"felip/internal/metrics"
	"felip/internal/query"
)

// Strategy identifies one estimation strategy in experiment output.
type Strategy string

// The strategies compared across the paper's figures.
const (
	StratOUG       Strategy = "OUG"
	StratOHG       Strategy = "OHG"
	StratOUGOLH    Strategy = "OUG-OLH"
	StratOHGOLH    Strategy = "OHG-OLH"
	StratOUGGRR    Strategy = "OUG-GRR"
	StratOHGGRR    Strategy = "OHG-GRR"
	StratHIO       Strategy = "HIO"
	StratTDG       Strategy = "TDG"
	StratHDG       Strategy = "HDG"
	StratOHGBudget Strategy = "OHG-budget"  // divides ε instead of users (§5.1 ablation)
	StratOHGFixSel Strategy = "OHG-fix-sel" // ignores true selectivity, assumes 0.5
	StratOHGEqMass Strategy = "OHG-eqmass"  // two-phase data-aware binning (§7 extension)
)

// Config is one experiment cell: a dataset, a population, a privacy budget,
// a query workload and the strategies to compare.
type Config struct {
	// Dataset is the generator name (uniform, normal, ipums-sim, loan-sim).
	Dataset string
	// Schema describes the attributes.
	Schema *domain.Schema
	// N is the population size.
	N int
	// Epsilon is the privacy budget.
	Epsilon float64
	// Selectivity is the per-attribute query selectivity s.
	Selectivity float64
	// PriorSelectivity is the selectivity prior given to FELIP's grid
	// optimizer; zero means "use the true Selectivity" (the aggregator
	// incorporating workload knowledge, §5).
	PriorSelectivity float64
	// Lambda is the query dimension λ.
	Lambda int
	// NumQueries is |Q|.
	NumQueries int
	// Seed makes the cell deterministic.
	Seed uint64
	// Strategies lists the strategies to run.
	Strategies []Strategy
}

func (c Config) withDefaults() (Config, error) {
	if c.Schema == nil {
		return c, fmt.Errorf("experiment: nil schema")
	}
	if c.Dataset == "" {
		c.Dataset = "uniform"
	}
	if c.N <= 0 {
		return c, fmt.Errorf("experiment: N must be positive")
	}
	if c.Epsilon <= 0 {
		return c, fmt.Errorf("experiment: epsilon must be positive")
	}
	if c.Selectivity == 0 {
		c.Selectivity = 0.5
	}
	if c.Lambda == 0 {
		c.Lambda = 2
	}
	if c.Lambda < 1 || c.Lambda > c.Schema.Len() {
		return c, fmt.Errorf("experiment: lambda %d outside [1,%d]", c.Lambda, c.Schema.Len())
	}
	if c.NumQueries == 0 {
		c.NumQueries = 10
	}
	if c.Seed == 0 {
		c.Seed = fo.AutoSeed()
	}
	if len(c.Strategies) == 0 {
		c.Strategies = []Strategy{StratOUG, StratOHG, StratHIO}
	}
	return c, nil
}

// Result holds the per-strategy MAE of one cell.
type Result struct {
	// X labels the cell on its figure's x axis (e.g. "1.0" for ε).
	X string
	// MAE maps strategy → mean absolute error over the cell's queries.
	MAE map[Strategy]float64
}

// RunCell executes one experiment cell: generate the dataset, draw the query
// workload, compute exact answers, run every strategy, and measure MAE.
func RunCell(cfg Config) (Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return Result{}, err
	}
	gen, err := dataset.ByName(cfg.Dataset)
	if err != nil {
		return Result{}, err
	}
	ds := gen.Generate(cfg.Schema, cfg.N, cfg.Seed)

	qgen, err := query.NewGenerator(cfg.Schema, cfg.Selectivity, cfg.Seed+1)
	if err != nil {
		return Result{}, err
	}
	queries, err := qgen.GenerateMany(cfg.NumQueries, cfg.Lambda)
	if err != nil {
		return Result{}, err
	}
	cols := make([][]uint16, cfg.Schema.Len())
	for i := range cols {
		cols[i] = ds.Col(i)
	}
	truth := make([]float64, len(queries))
	for i, q := range queries {
		truth[i] = query.Evaluate(q, cols)
	}

	res := Result{MAE: make(map[Strategy]float64, len(cfg.Strategies))}
	for _, strat := range cfg.Strategies {
		answers, err := runStrategy(strat, ds, cfg, queries)
		if err != nil {
			return Result{}, fmt.Errorf("experiment: %s: %w", strat, err)
		}
		mae, err := metrics.MAE(answers, truth)
		if err != nil {
			return Result{}, err
		}
		res.MAE[strat] = mae
	}
	return res, nil
}

// answerer is the common query interface of all strategies' aggregators.
type answerer interface {
	Answer(q query.Query) (float64, error)
}

// runStrategy runs one strategy's full collection round and answers the
// workload. Strategies that cannot express a query (e.g. TDG/HDG facing an
// IN predicate) report the error.
func runStrategy(strat Strategy, ds *dataset.Dataset, cfg Config, queries []query.Query) ([]float64, error) {
	prior := cfg.PriorSelectivity
	if prior == 0 {
		prior = cfg.Selectivity
	}
	seed := cfg.Seed + 100

	var (
		agg answerer
		err error
	)
	olh := fo.OLH
	grr := fo.GRR
	base := core.Options{Epsilon: cfg.Epsilon, Selectivity: prior, Seed: seed}
	switch strat {
	case StratOUG:
		base.Strategy = core.OUG
		agg, err = core.Collect(ds, base)
	case StratOHG:
		base.Strategy = core.OHG
		agg, err = core.Collect(ds, base)
	case StratOUGOLH:
		base.Strategy = core.OUG
		base.ForceProtocol = &olh
		agg, err = core.Collect(ds, base)
	case StratOHGOLH:
		base.Strategy = core.OHG
		base.ForceProtocol = &olh
		agg, err = core.Collect(ds, base)
	case StratOUGGRR:
		base.Strategy = core.OUG
		base.ForceProtocol = &grr
		agg, err = core.Collect(ds, base)
	case StratOHGGRR:
		base.Strategy = core.OHG
		base.ForceProtocol = &grr
		agg, err = core.Collect(ds, base)
	case StratOHGBudget:
		base.Strategy = core.OHG
		base.DivideBudget = true
		agg, err = core.Collect(ds, base)
	case StratOHGFixSel:
		base.Strategy = core.OHG
		base.Selectivity = 0.5
		agg, err = core.Collect(ds, base)
	case StratOHGEqMass:
		base.Strategy = core.OHG
		agg, err = adaptive.Collect(ds, adaptive.Options{Core: base})
	case StratHIO:
		agg, err = hio.Collect(ds, hio.Options{Epsilon: cfg.Epsilon, Seed: seed})
	case StratTDG:
		agg, err = hdg.Collect(ds, hdg.Options{Variant: hdg.TDG, Epsilon: cfg.Epsilon, Seed: seed})
	case StratHDG:
		agg, err = hdg.Collect(ds, hdg.Options{Variant: hdg.HDG, Epsilon: cfg.Epsilon, Seed: seed})
	default:
		return nil, fmt.Errorf("unknown strategy %q", strat)
	}
	if err != nil {
		return nil, err
	}

	answers := make([]float64, len(queries))
	for i, q := range queries {
		a, err := agg.Answer(q)
		if err != nil {
			return nil, err
		}
		if math.IsNaN(a) || math.IsInf(a, 0) {
			return nil, fmt.Errorf("non-finite answer %v for %v", a, q)
		}
		answers[i] = a
	}
	return answers, nil
}
