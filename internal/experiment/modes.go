package experiment

import (
	"fmt"

	"felip/internal/core"
	"felip/internal/dataset"
	"felip/internal/fo"
	"felip/internal/wire"
)

// This file is the reporting-mode shootout: FELIP's divide-users design
// against SPL (every user reports every grid at ε/m) and RS+FD (every user
// reports every grid at the amplified ε', fake data on the unsampled grids),
// run through the real client→wire pipeline so each mode is charged its true
// wire cost, not just its statistical error.

// ModeCell is one shootout cell: a population reporting under one mode at one
// (ε, dimensionality) point.
type ModeCell struct {
	// Mode names the reporting design (FELIP, SPL, RS+FD).
	Mode string `json:"mode"`
	// Epsilon is the end-to-end per-user budget ε.
	Epsilon float64 `json:"epsilon"`
	// Attrs is the schema dimensionality d.
	Attrs int `json:"attrs"`
	// Domain is the per-attribute domain size.
	Domain int `json:"domain"`
	// N is the population size.
	N int `json:"n"`
	// Grids is the plan size m (reports per user for SPL and RS+FD).
	Grids int `json:"grids"`
	// Reports is the total report count the population shipped.
	Reports int `json:"reports"`
	// WireBytes is the total encoded frame traffic the reports cost on the
	// batched binary path, mode framing included.
	WireBytes int64 `json:"wire_bytes"`
	// BytesPerUser is WireBytes / N.
	BytesPerUser float64 `json:"bytes_per_user"`
	// MSE is the mean squared error of the estimated per-attribute value
	// frequencies against the dataset's true frequencies.
	MSE float64 `json:"mse"`
}

// ModeShootoutConfig parameterizes the sweep. Zero values take the defaults
// noted per field.
type ModeShootoutConfig struct {
	// N is the population per cell (default 20000).
	N int
	// Epsilons is the ε sweep (default 0.5 and 2.0).
	Epsilons []float64
	// Dims is the dimensionality sweep (default 4 and 8 attributes).
	Dims []int
	// Domains is the per-attribute domain-size sweep (default just Domain).
	// Domain size moves every mode's error differently — GRR's variance grows
	// with the cell count while OLH's does not — so a fair shootout sweeps it.
	Domains []int
	// Domain is the per-attribute domain size when Domains is empty
	// (default 32; kept for callers of the single-domain shape).
	Domain int
	// BatchReports is the frame size the wire cost is metered at
	// (default 512, the Batcher's default flush trigger).
	BatchReports int
	// Seed makes the sweep deterministic (default 1).
	Seed uint64
	// Progress, when non-nil, receives one line per finished cell.
	Progress func(string)
}

func (c ModeShootoutConfig) withDefaults() ModeShootoutConfig {
	if c.N <= 0 {
		c.N = 20000
	}
	if len(c.Epsilons) == 0 {
		c.Epsilons = []float64{0.5, 2.0}
	}
	if len(c.Dims) == 0 {
		c.Dims = []int{4, 8}
	}
	if c.Domain <= 0 {
		c.Domain = 32
	}
	if len(c.Domains) == 0 {
		c.Domains = []int{c.Domain}
	}
	if c.BatchReports <= 0 || c.BatchReports > wire.MaxFrameReports {
		c.BatchReports = 512
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// shootoutModes is the fixed three-way comparison, FELIP first.
var shootoutModes = []fo.ReportMode{fo.ModeFELIP, fo.ModeSPL, fo.ModeRSFD}

// RunModeShootout sweeps every (ε, d) point across the three reporting modes.
// Each cell runs the full incremental pipeline — plan, per-user mode client,
// batch frames, collector fold, estimation — and scores the result against
// the same dataset, so within a (ε, d) point only the mode differs.
func RunModeShootout(cfg ModeShootoutConfig) ([]ModeCell, error) {
	cfg = cfg.withDefaults()
	var cells []ModeCell
	for _, dom := range cfg.Domains {
		for _, d := range cfg.Dims {
			for _, eps := range cfg.Epsilons {
				for _, mode := range shootoutModes {
					cell, err := runModeCell(cfg, dom, d, eps, mode)
					if err != nil {
						return nil, fmt.Errorf("experiment: mode %v dom=%d d=%d eps=%g: %w", mode, dom, d, eps, err)
					}
					cells = append(cells, cell)
					if cfg.Progress != nil {
						cfg.Progress(fmt.Sprintf("modes: dom=%d d=%d eps=%g %-5s mse=%.3e bytes/user=%.1f",
							dom, d, eps, cell.Mode, cell.MSE, cell.BytesPerUser))
					}
				}
			}
		}
	}
	return cells, nil
}

// runModeCell runs one population through one mode end to end.
func runModeCell(cfg ModeShootoutConfig, domain, d int, eps float64, mode fo.ReportMode) (ModeCell, error) {
	schema := dataset.NumericSchema(d, domain)
	gen, err := dataset.ByName("normal")
	if err != nil {
		return ModeCell{}, err
	}
	// The dataset depends only on (domain, d, seed): every mode at a
	// (ε, domain, d) point estimates the same ground truth.
	ds := gen.Generate(schema, cfg.N, cfg.Seed+uint64(d)+uint64(domain)<<16)

	col, err := core.NewCollector(schema, cfg.N, core.Options{
		Strategy: core.OUG,
		Epsilon:  eps,
		Mode:     mode,
		Seed:     cfg.Seed + 10,
	})
	if err != nil {
		return ModeCell{}, err
	}
	specs := col.Specs()
	client, err := core.NewModeClient(specs, mode, eps, cfg.Seed+100)
	if err != nil {
		return ModeCell{}, err
	}

	var (
		wireBytes int64
		reports   int
		batch     = make([]wire.BatchReport, 0, cfg.BatchReports)
	)
	flush := func() {
		if len(batch) > 0 {
			wireBytes += int64(wire.FrameSizeMode(mode, batch))
			batch = batch[:0]
		}
	}
	for u := 0; u < cfg.N; u++ {
		group := col.AssignGroup()
		reps, err := client.PerturbAll(group, func(attr int) int { return ds.Value(u, attr) })
		if err != nil {
			return ModeCell{}, err
		}
		for j, rep := range reps {
			if err := col.Add(rep.Report); err != nil {
				return ModeCell{}, err
			}
			batch = append(batch, wire.BatchReport{
				ID:     fmt.Sprintf("u-%d-%d", u, j),
				Report: rep.Report,
				Attr:   rep.Attr,
			})
			if len(batch) == cfg.BatchReports {
				flush()
			}
			reports++
		}
	}
	flush()

	agg, err := col.Finalize()
	if err != nil {
		return ModeCell{}, err
	}
	mse, err := marginalMSE(agg, ds, schema.Len())
	if err != nil {
		return ModeCell{}, err
	}
	return ModeCell{
		Mode:         mode.String(),
		Epsilon:      eps,
		Attrs:        d,
		Domain:       domain,
		N:            cfg.N,
		Grids:        len(specs),
		Reports:      reports,
		WireBytes:    wireBytes,
		BytesPerUser: float64(wireBytes) / float64(cfg.N),
		MSE:          mse,
	}, nil
}

// marginalMSE scores the aggregator's per-attribute value-frequency estimates
// against the dataset's exact frequencies: the mean of (est − true)² over
// every (attribute, value) pair.
func marginalMSE(agg *core.Aggregator, ds *dataset.Dataset, attrs int) (float64, error) {
	var sum float64
	var count int
	for attr := 0; attr < attrs; attr++ {
		var est []float64
		if g1, ok := agg.Grid1D(attr); ok {
			est = g1.ValueMarginal()
		} else if pair, ok := agg.CoveringGrid2D(attr); ok {
			g2, ok := agg.Grid2D(pair[0], pair[1])
			if !ok {
				return 0, fmt.Errorf("experiment: covering grid (%d,%d) missing", pair[0], pair[1])
			}
			marg, err := g2.ValueMarginal(attr)
			if err != nil {
				return 0, err
			}
			est = marg
		} else {
			return 0, fmt.Errorf("experiment: no grid covers attribute %d", attr)
		}
		truth := make([]float64, len(est))
		col := ds.Col(attr)
		for _, v := range col {
			if int(v) < len(truth) {
				truth[int(v)]++
			}
		}
		n := float64(len(col))
		for v := range est {
			diff := est[v] - truth[v]/n
			sum += diff * diff
			count++
		}
	}
	if count == 0 {
		return 0, fmt.Errorf("experiment: empty marginal comparison")
	}
	return sum / float64(count), nil
}
