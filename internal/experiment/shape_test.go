package experiment

import "testing"

// These regression tests pin the paper's headline comparative claims at a
// small-but-sufficient scale: if a refactor breaks an estimator, the
// strategy ordering flips long before unit tests notice a subtle bias.

func runMAE(t *testing.T, cfg Config) map[Strategy]float64 {
	t.Helper()
	res, err := RunCell(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res.MAE
}

// Paper Figure 1: on skewed data OHG beats OUG, and both beat HIO by a wide
// margin.
func TestShapeFELIPBeatsHIO(t *testing.T) {
	mae := runMAE(t, Config{
		Dataset:    "normal",
		Schema:     defaultSchema(),
		N:          30000,
		Epsilon:    1,
		Lambda:     2,
		NumQueries: 8,
		Seed:       101,
		Strategies: []Strategy{StratOUG, StratOHG, StratHIO},
	})
	if !(mae[StratOHG] < mae[StratHIO]) || !(mae[StratOUG] < mae[StratHIO]) {
		t.Errorf("HIO should lose on normal data: %v", mae)
	}
	if !(mae[StratOHG] < mae[StratOUG]) {
		t.Errorf("OHG should beat OUG on normal data: %v", mae)
	}
	// The gap to HIO is an order of magnitude in the paper; require 3× here.
	if mae[StratHIO] < 3*mae[StratOHG] {
		t.Errorf("HIO gap too small: %v", mae)
	}
}

// Theorem 5.1: dividing users beats dividing the privacy budget.
func TestShapeDividingUsersWins(t *testing.T) {
	mae := runMAE(t, Config{
		Dataset:    "normal",
		Schema:     defaultSchema(),
		N:          30000,
		Epsilon:    1,
		Lambda:     2,
		NumQueries: 8,
		Seed:       103,
		Strategies: []Strategy{StratOHG, StratOHGBudget},
	})
	if !(mae[StratOHG] < mae[StratOHGBudget]) {
		t.Errorf("dividing users should win: %v", mae)
	}
}

// Paper Figure 1/6: more privacy budget and more users both reduce error
// (compared at a 4× gap so sampling noise cannot flip the ordering).
func TestShapeErrorShrinksWithBudgetAndUsers(t *testing.T) {
	base := Config{
		Dataset:    "normal",
		Schema:     defaultSchema(),
		N:          20000,
		Epsilon:    0.5,
		Lambda:     2,
		NumQueries: 8,
		Seed:       107,
		Strategies: []Strategy{StratOHG},
	}
	low := runMAE(t, base)[StratOHG]

	richer := base
	richer.Epsilon = 3
	if highEps := runMAE(t, richer)[StratOHG]; !(highEps < low) {
		t.Errorf("MAE did not shrink with eps: %v -> %v", low, highEps)
	}
	bigger := base
	bigger.N = 160000
	if bigN := runMAE(t, bigger)[StratOHG]; !(bigN < low) {
		t.Errorf("MAE did not shrink with n: %v -> %v", low, bigN)
	}
}

// Paper §6.3 / Fig 7: the optimized grids beat TDG/HDG on skewed data in the
// range-only setting.
func TestShapeOptimizedGridsBeatBaselines(t *testing.T) {
	cfg := Config{
		Dataset:    "normal",
		Schema:     defaultSchemaNumeric(),
		N:          60000,
		Epsilon:    1,
		Lambda:     3,
		NumQueries: 10,
		Seed:       109,
		Strategies: []Strategy{StratOHG, StratHDG, StratOUG, StratTDG},
	}
	mae := runMAE(t, cfg)
	// The hybrid strategies must beat the uniform ones on normal data, and
	// FELIP's per-grid sizing should not lose badly to its baseline: allow a
	// small noise margin.
	if !(mae[StratOHG] < mae[StratOUG]) {
		t.Errorf("OHG should beat OUG: %v", mae)
	}
	if mae[StratOHG] > 1.5*mae[StratHDG] {
		t.Errorf("OHG much worse than HDG: %v", mae)
	}
	if mae[StratOUG] > 1.5*mae[StratTDG] {
		t.Errorf("OUG much worse than TDG: %v", mae)
	}
}
