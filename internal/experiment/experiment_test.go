package experiment

import (
	"bytes"
	"strings"
	"testing"

	"felip/internal/dataset"
)

func smallParams() Params {
	return Params{N: 8000, NumQueries: 4, Seed: 7, Lambdas: []int{2}, Datasets: []string{"uniform"}}
}

func TestConfigDefaults(t *testing.T) {
	cfg, err := (Config{Schema: defaultSchema(), N: 100, Epsilon: 1}).withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Dataset != "uniform" || cfg.Selectivity != 0.5 || cfg.Lambda != 2 ||
		cfg.NumQueries != 10 || cfg.Seed == 0 || len(cfg.Strategies) != 3 {
		t.Errorf("defaults wrong: %+v", cfg)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := (Config{N: 10, Epsilon: 1}).withDefaults(); err == nil {
		t.Error("nil schema accepted")
	}
	if _, err := (Config{Schema: defaultSchema(), Epsilon: 1}).withDefaults(); err == nil {
		t.Error("N=0 accepted")
	}
	if _, err := (Config{Schema: defaultSchema(), N: 10}).withDefaults(); err == nil {
		t.Error("eps=0 accepted")
	}
	if _, err := (Config{Schema: defaultSchema(), N: 10, Epsilon: 1, Lambda: 99}).withDefaults(); err == nil {
		t.Error("lambda > k accepted")
	}
}

func TestRunCellAllStrategies(t *testing.T) {
	cfg := Config{
		Dataset: "normal",
		Schema:  defaultSchema(),
		N:       8000,
		Epsilon: 1,
		Lambda:  2,
		Seed:    11,
		Strategies: []Strategy{
			StratOUG, StratOHG, StratOUGOLH, StratOHGOLH, StratOUGGRR,
			StratOHGGRR, StratHIO, StratOHGBudget, StratOHGFixSel,
		},
		NumQueries: 3,
	}
	res, err := RunCell(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range cfg.Strategies {
		mae, ok := res.MAE[s]
		if !ok {
			t.Errorf("missing MAE for %s", s)
		}
		if mae < 0 || mae > 2 {
			t.Errorf("%s MAE = %v looks wrong", s, mae)
		}
	}
}

func TestRunCellTDGHDGNeedNumeric(t *testing.T) {
	cfg := Config{
		Dataset:    "uniform",
		Schema:     dataset.NumericSchema(3, 32),
		N:          5000,
		Epsilon:    1,
		Lambda:     2,
		Seed:       13,
		Strategies: []Strategy{StratTDG, StratHDG},
		NumQueries: 3,
	}
	if _, err := RunCell(cfg); err != nil {
		t.Fatalf("numeric schema should work for TDG/HDG: %v", err)
	}
	cfg.Schema = defaultSchema()
	if _, err := RunCell(cfg); err == nil {
		t.Error("TDG on mixed schema should fail")
	}
}

func TestRunCellUnknownStrategy(t *testing.T) {
	cfg := Config{
		Dataset:    "uniform",
		Schema:     defaultSchema(),
		N:          2000,
		Epsilon:    1,
		Seed:       17,
		Strategies: []Strategy{Strategy("nope")},
	}
	if _, err := RunCell(cfg); err == nil {
		t.Error("unknown strategy accepted")
	}
}

func TestRunCellDeterministic(t *testing.T) {
	cfg := Config{
		Dataset:    "uniform",
		Schema:     defaultSchema(),
		N:          5000,
		Epsilon:    1,
		Seed:       19,
		Strategies: []Strategy{StratOUG},
		NumQueries: 3,
	}
	a, err := RunCell(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := RunCell(cfg)
	if a.MAE[StratOUG] != b.MAE[StratOUG] {
		t.Errorf("same config gave %v vs %v", a.MAE[StratOUG], b.MAE[StratOUG])
	}
}

func TestFiguresSpecsWellFormed(t *testing.T) {
	p := smallParams()
	figs := Figures(p)
	if len(figs) != 11 {
		t.Fatalf("got %d figures, want 11", len(figs))
	}
	ids := map[string]bool{}
	for _, f := range figs {
		if f.ID == "" || f.Title == "" || f.XLabel == "" {
			t.Errorf("figure %q incomplete", f.ID)
		}
		if ids[f.ID] {
			t.Errorf("duplicate figure id %q", f.ID)
		}
		ids[f.ID] = true
		if len(f.Groups) == 0 {
			t.Errorf("figure %q has no groups", f.ID)
		}
		for _, g := range f.Groups {
			if len(g.Cells) == 0 {
				t.Errorf("figure %q group %q empty", f.ID, g.Name)
			}
			for _, c := range g.Cells {
				if _, err := c.Config.withDefaults(); err != nil {
					t.Errorf("figure %q group %q cell %q invalid: %v", f.ID, g.Name, c.X, err)
				}
				if c.Config.Seed == 0 {
					t.Errorf("figure %q cell %q has zero seed", f.ID, c.X)
				}
			}
		}
	}
	for _, want := range []string{"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "abl-part", "abl-afo", "abl-sel", "abl-eqmass"} {
		if !ids[want] {
			t.Errorf("missing figure %q", want)
		}
	}
}

func TestFigureCellSeedsDistinct(t *testing.T) {
	p := smallParams()
	seen := map[uint64]string{}
	for _, f := range Figures(p) {
		for _, g := range f.Groups {
			for _, c := range g.Cells {
				key := f.ID + "/" + g.Name + "/" + c.X
				if prev, dup := seen[c.Config.Seed]; dup {
					t.Errorf("seed collision between %s and %s", prev, key)
				}
				seen[c.Config.Seed] = key
			}
		}
	}
}

func TestFigureByID(t *testing.T) {
	p := smallParams()
	f, err := FigureByID(p, "fig7")
	if err != nil || f.ID != "fig7" {
		t.Errorf("FigureByID(fig7) = %v, %v", f.ID, err)
	}
	if _, err := FigureByID(p, "nope"); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestRunFigureAndPrint(t *testing.T) {
	p := smallParams()
	// A miniature bespoke figure to keep the test fast.
	spec := FigureSpec{
		ID: "mini", Title: "mini sweep", XLabel: "eps",
		Groups: []FigureGroup{{
			Name: "uniform λ=2",
			Cells: []Cell{
				{X: "1.0", Config: p.finish(Config{
					Dataset: "uniform", Schema: defaultSchema(), N: 4000,
					Epsilon: 1, Lambda: 2,
					Strategies: []Strategy{StratOUG, StratOHG},
				}, 99, 0)},
				{X: "2.0", Config: p.finish(Config{
					Dataset: "uniform", Schema: defaultSchema(), N: 4000,
					Epsilon: 2, Lambda: 2,
					Strategies: []Strategy{StratOUG, StratOHG},
				}, 99, 1)},
			},
		}},
	}
	var progress bytes.Buffer
	groups, err := RunFigure(spec, &progress)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 1 || len(groups[0].Results) != 2 {
		t.Fatalf("groups = %+v", groups)
	}
	if !strings.Contains(progress.String(), "done in") {
		t.Error("no progress output")
	}
	var out bytes.Buffer
	Print(&out, spec, groups)
	text := out.String()
	for _, want := range []string{"mini", "uniform λ=2", "OUG", "OHG", "1.0", "2.0"} {
		if !strings.Contains(text, want) {
			t.Errorf("printed table missing %q:\n%s", want, text)
		}
	}

	sum := Summary(groups)
	if len(sum) != 2 {
		t.Errorf("summary = %v", sum)
	}
	order := SortedStrategies(sum)
	if len(order) != 2 || sum[order[0]] > sum[order[1]] {
		t.Errorf("order wrong: %v / %v", order, sum)
	}

	var csv bytes.Buffer
	if err := WriteCSV(&csv, spec, groups); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	// header + 2 cells × 2 strategies.
	if len(lines) != 5 {
		t.Fatalf("CSV lines = %d:\n%s", len(lines), csv.String())
	}
	if lines[0] != "figure,group,eps,strategy,mae" {
		t.Errorf("CSV header = %q", lines[0])
	}
	for _, line := range lines[1:] {
		if !strings.HasPrefix(line, "mini,uniform λ=2,") {
			t.Errorf("CSV row = %q", line)
		}
	}
}
