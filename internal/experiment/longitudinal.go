package experiment

import (
	"fmt"

	"felip/internal/core"
	"felip/internal/dataset"
	"felip/internal/domain"
	"felip/internal/fo"
	"felip/internal/longitudinal"
)

// This file is the longitudinal-privacy benchmark: the same device population
// reporting across R rounds under memoized two-stage reporting (ε_perm once,
// ε_1 per round, cumulative spend fixed) against the fresh-ε baseline (a new
// GRR(ε_1) randomization every round, cumulative spend growing k·ε_1). Both
// arms run the real plan → perturb → collector → estimate pipeline on the same
// dataset and the same grids, so within a round only the reporting chain
// differs.

// LongitudinalRound is one collection round's scoreboard for both arms.
type LongitudinalRound struct {
	// Round is 1-based.
	Round int `json:"round"`
	// MSELongitudinal is the memoized two-stage arm's marginal MSE this round.
	MSELongitudinal float64 `json:"mse_longitudinal"`
	// MSEFresh is the fresh-ε baseline's marginal MSE this round.
	MSEFresh float64 `json:"mse_fresh"`
	// EpsCumLongitudinal is what an observer of rounds 1..Round learns under
	// memoization: fixed at ε_perm + ε_1.
	EpsCumLongitudinal float64 `json:"eps_cum_longitudinal"`
	// EpsCumFresh is the same observer's knowledge under the baseline: Round·ε_1.
	EpsCumFresh float64 `json:"eps_cum_fresh"`
}

// LongitudinalResult is one (ε_perm, ε_1) budget point's full trajectory.
type LongitudinalResult struct {
	EpsPerm float64 `json:"eps_perm"`
	Eps1    float64 `json:"eps1"`
	N       int     `json:"n"`
	Attrs   int     `json:"attrs"`
	Domain  int     `json:"domain"`
	Grids   int     `json:"grids"`

	Rounds []LongitudinalRound `json:"rounds"`

	// MeanMSELongitudinal and MeanMSEFresh average the per-round MSEs; MSERatio
	// is their quotient (longitudinal / fresh — the accuracy price of capping
	// the cumulative spend; the composed channel is exactly GRR(ε_1), so the
	// ratio should sit near 1).
	MeanMSELongitudinal float64 `json:"mean_mse_longitudinal"`
	MeanMSEFresh        float64 `json:"mean_mse_fresh"`
	MSERatio            float64 `json:"mse_ratio"`
	// EpsCumFinal and EpsFreshFinal are the two arms' cumulative spends after
	// the last round.
	EpsCumFinal   float64 `json:"eps_cum_final"`
	EpsFreshFinal float64 `json:"eps_fresh_final"`
}

// LongitudinalConfig parameterizes the benchmark. Zero values take the
// defaults noted per field.
type LongitudinalConfig struct {
	// N is the device population (default 20000); the same devices report in
	// every round.
	N int
	// Rounds is the number of collection rounds R (default 10).
	Rounds int
	// Budgets is the (ε_perm, ε_1) sweep (default {2,1} and {4,1}).
	Budgets []fo.Longitudinal
	// Attrs is the schema dimensionality (default 4).
	Attrs int
	// Domain is the per-attribute domain size (default 32).
	Domain int
	// Seed makes the run deterministic (default 1).
	Seed uint64
	// Progress, when non-nil, receives one line per finished round.
	Progress func(string)
}

func (c LongitudinalConfig) withDefaults() LongitudinalConfig {
	if c.N <= 0 {
		c.N = 20000
	}
	if c.Rounds <= 0 {
		c.Rounds = 10
	}
	if len(c.Budgets) == 0 {
		c.Budgets = []fo.Longitudinal{
			{EpsPerm: 2, Eps1: 1},
			{EpsPerm: 4, Eps1: 1},
		}
	}
	if c.Attrs <= 0 {
		c.Attrs = 4
	}
	if c.Domain <= 0 {
		c.Domain = 32
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// RunLongitudinal runs every budget point through R rounds with both arms.
func RunLongitudinal(cfg LongitudinalConfig) ([]LongitudinalResult, error) {
	cfg = cfg.withDefaults()
	results := make([]LongitudinalResult, 0, len(cfg.Budgets))
	for _, budget := range cfg.Budgets {
		res, err := runLongitudinalPoint(cfg, budget)
		if err != nil {
			return nil, fmt.Errorf("experiment: longitudinal eps_perm=%g eps1=%g: %w",
				budget.EpsPerm, budget.Eps1, err)
		}
		results = append(results, res)
	}
	return results, nil
}

// runLongitudinalPoint runs one (ε_perm, ε_1) trajectory end to end.
func runLongitudinalPoint(cfg LongitudinalConfig, budget fo.Longitudinal) (LongitudinalResult, error) {
	schema := dataset.NumericSchema(cfg.Attrs, cfg.Domain)
	gen, err := dataset.ByName("normal")
	if err != nil {
		return LongitudinalResult{}, err
	}
	// The population's true values are static across rounds — the
	// longitudinal threat model — so the dataset is drawn once.
	ds := gen.Generate(schema, cfg.N, cfg.Seed+7)

	longOpts := core.Options{
		Strategy:     core.OUG,
		Epsilon:      budget.Eps1,
		Seed:         cfg.Seed + 10,
		Longitudinal: &fo.Longitudinal{EpsPerm: budget.EpsPerm, Eps1: budget.Eps1},
	}
	// The baseline runs the identical grids: GRR forced at the same per-round
	// ε_1, only the chain in front of the collector differs.
	grr := fo.GRR
	freshOpts := core.Options{
		Strategy:      core.OUG,
		Epsilon:       budget.Eps1,
		Seed:          cfg.Seed + 10,
		ForceProtocol: &grr,
	}

	planner, err := core.NewCollector(schema, cfg.N, longOpts)
	if err != nil {
		return LongitudinalResult{}, err
	}
	specs := planner.Specs()
	m := len(specs)

	// Per-device fixed state: the group (FELIP's divide-users assignment must
	// survive rounds — a device reports the same grid forever), the true cell,
	// and the memoized permanent randomization drawn exactly once.
	groups := make([]int, cfg.N)
	cells := make([]int, cfg.N)
	memos := make([]int, cfg.N)
	longStages := make([]longitudinal.Stages, m)
	freshStages := make([]longitudinal.Stages, m)
	for g, sp := range specs {
		if longStages[g], err = longitudinal.NewStages(budget, sp.L()); err != nil {
			return LongitudinalResult{}, err
		}
		// With ε_perm = ε_1 the permanent stage alone is GRR(ε_1), so its
		// Memoize doubles as the baseline's fresh per-round randomizer.
		if freshStages[g], err = longitudinal.NewStages(fo.Longitudinal{EpsPerm: budget.Eps1, Eps1: budget.Eps1}, sp.L()); err != nil {
			return LongitudinalResult{}, err
		}
	}
	rng := fo.NewRand(cfg.Seed + 100)
	for u := 0; u < cfg.N; u++ {
		g := u % m
		groups[u] = g
		cells[u] = specs[g].CellOf(func(attr int) int { return ds.Value(u, attr) })
		if memos[u], err = longStages[g].Memoize(cells[u], rng); err != nil {
			return LongitudinalResult{}, err
		}
	}

	acct := longitudinal.Accountant{Cfg: budget}
	res := LongitudinalResult{
		EpsPerm: budget.EpsPerm,
		Eps1:    budget.Eps1,
		N:       cfg.N,
		Attrs:   cfg.Attrs,
		Domain:  cfg.Domain,
		Grids:   m,
	}
	for round := 1; round <= cfg.Rounds; round++ {
		mseLong, err := runLongitudinalRound(schema, ds, cfg.N, longOpts, specs, groups, func(u int) (int, error) {
			return longStages[groups[u]].Perturb(memos[u], rng)
		})
		if err != nil {
			return LongitudinalResult{}, err
		}
		mseFresh, err := runLongitudinalRound(schema, ds, cfg.N, freshOpts, specs, groups, func(u int) (int, error) {
			return freshStages[groups[u]].Memoize(cells[u], rng)
		})
		if err != nil {
			return LongitudinalResult{}, err
		}
		r := LongitudinalRound{
			Round:              round,
			MSELongitudinal:    mseLong,
			MSEFresh:           mseFresh,
			EpsCumLongitudinal: acct.Cumulative(round),
			EpsCumFresh:        acct.FreshCumulative(round),
		}
		res.Rounds = append(res.Rounds, r)
		res.MeanMSELongitudinal += mseLong / float64(cfg.Rounds)
		res.MeanMSEFresh += mseFresh / float64(cfg.Rounds)
		if cfg.Progress != nil {
			cfg.Progress(fmt.Sprintf(
				"longitudinal: eps_perm=%g eps1=%g round=%d mse=%.3e fresh=%.3e eps_cum=%.2f fresh_cum=%.2f",
				budget.EpsPerm, budget.Eps1, round, mseLong, mseFresh, r.EpsCumLongitudinal, r.EpsCumFresh))
		}
	}
	if res.MeanMSEFresh > 0 {
		res.MSERatio = res.MeanMSELongitudinal / res.MeanMSEFresh
	}
	res.EpsCumFinal = acct.Cumulative(cfg.Rounds)
	res.EpsFreshFinal = acct.FreshCumulative(cfg.Rounds)
	return res, nil
}

// runLongitudinalRound folds one round's reports — produced by draw, whatever
// chain it implements — into a fresh collector over the given plan and scores
// the finalized estimates.
func runLongitudinalRound(schema *domain.Schema, ds *dataset.Dataset, n int,
	opts core.Options, specs []core.GridSpec, groups []int, draw func(u int) (int, error)) (float64, error) {
	col, err := core.NewCollector(schema, n, opts)
	if err != nil {
		return 0, err
	}
	if got := len(col.Specs()); got != len(specs) {
		return 0, fmt.Errorf("experiment: arm planned %d grids, expected %d (plans diverged)", got, len(specs))
	}
	for u := 0; u < n; u++ {
		v, err := draw(u)
		if err != nil {
			return 0, err
		}
		if err := col.Add(core.Report{Group: groups[u], Proto: fo.GRR, Value: v}); err != nil {
			return 0, err
		}
	}
	agg, err := col.Finalize()
	if err != nil {
		return 0, err
	}
	return marginalMSE(agg, ds, schema.Len())
}
