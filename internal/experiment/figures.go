package experiment

import (
	"fmt"

	"felip/internal/dataset"
	"felip/internal/domain"
	"felip/internal/fo"
)

// Cell binds an x-axis label to the Config producing its point.
type Cell struct {
	X      string
	Config Config
}

// FigureSpec describes one reproducible paper figure: a set of panels, each
// a series of cells yielding one x-axis point with one MAE per strategy.
type FigureSpec struct {
	// ID is the short identifier, e.g. "fig1".
	ID string
	// Title describes the sweep.
	Title string
	// XLabel names the x axis.
	XLabel string
	// Groups partition the cells into printed tables (dataset × λ panels).
	Groups []FigureGroup
}

// FigureGroup is one panel of a figure (typically a dataset × λ combination).
type FigureGroup struct {
	// Name labels the panel, e.g. "uniform λ=2".
	Name string
	// Cells are the panel's x-axis points in order.
	Cells []Cell
}

// Params controls the scale of the generated figure specs.
type Params struct {
	// N is the default population size (the paper uses 10⁶; the CLI scales
	// this down by default so the suite runs quickly).
	N int
	// NumQueries is |Q| per cell (paper: 10).
	NumQueries int
	// Seed derives every cell's seed deterministically.
	Seed uint64
	// Lambdas are the query dimensions for the mixed figures (paper: 2, 4).
	Lambdas []int
	// Datasets are the generator names to sweep (paper: all four).
	Datasets []string
}

// WithDefaults fills the paper's default parameters (the paper-scale n=10⁶
// when N is zero).
func (p Params) WithDefaults() Params {
	if p.N == 0 {
		p.N = 1_000_000
	}
	if p.NumQueries == 0 {
		p.NumQueries = 10
	}
	if p.Seed == 0 {
		p.Seed = 20230328 // fixed default so runs are reproducible
	}
	if len(p.Lambdas) == 0 {
		p.Lambdas = []int{2, 4}
	}
	if len(p.Datasets) == 0 {
		p.Datasets = []string{"uniform", "normal", "ipums-sim", "loan-sim"}
	}
	return p
}

// defaultSchema is the mixed default: 3 numerical attributes of domain 64
// and 3 categorical attributes of domain 8 (DESIGN.md §7 item 6).
func defaultSchema() *domain.Schema { return dataset.MixedSchema(3, 64, 3, 8) }

// defaultSchemaNumeric is the Fig 7 range-only schema: 6 numerical
// attributes of domain 100.
func defaultSchemaNumeric() *domain.Schema { return dataset.NumericSchema(6, 100) }

// epsSweep is the privacy-budget x axis shared by Fig 1, Fig 7 and the
// ablations.
var epsSweep = []float64{0.5, 1.0, 1.5, 2.0, 2.5, 3.0}

// cellSeed derives a deterministic per-cell seed.
func cellSeed(base uint64, parts ...uint64) uint64 {
	s := base
	for _, p := range parts {
		s = fo.MixID(s, p)
	}
	if s == 0 {
		s = 1
	}
	return s
}

func (p Params) finish(cfg Config, salt ...uint64) Config {
	cfg.NumQueries = p.NumQueries
	cfg.Seed = cellSeed(p.Seed, salt...)
	return cfg
}

// mixedPanels builds the dataset × λ panels shared by Figs 1–3 and 6: for
// each panel, `build` returns the cells of the sweep.
func (p Params) mixedPanels(figSalt uint64, build func(dsName string, lambda int, salt func(...uint64) uint64) []Cell) []FigureGroup {
	var groups []FigureGroup
	for di, dsName := range p.Datasets {
		for li, lambda := range p.Lambdas {
			salt := func(extra ...uint64) uint64 {
				parts := append([]uint64{figSalt, uint64(di), uint64(li)}, extra...)
				return cellSeed(p.Seed, parts...)
			}
			_ = salt
			groups = append(groups, FigureGroup{
				Name:  fmt.Sprintf("%s λ=%d", dsName, lambda),
				Cells: build(dsName, lambda, func(extra ...uint64) uint64 { return 0 }),
			})
		}
	}
	return groups
}

// Fig1 varies the privacy budget ε (paper Figure 1).
func Fig1(p Params) FigureSpec {
	p = p.WithDefaults()
	var groups []FigureGroup
	for di, dsName := range p.Datasets {
		for li, lambda := range p.Lambdas {
			var cells []Cell
			for ei, eps := range epsSweep {
				cells = append(cells, Cell{
					X: fmt.Sprintf("%.1f", eps),
					Config: p.finish(Config{
						Dataset:     dsName,
						Schema:      defaultSchema(),
						N:           p.N,
						Epsilon:     eps,
						Selectivity: 0.5,
						Lambda:      lambda,
						Strategies:  []Strategy{StratOUG, StratOHG, StratHIO},
					}, 1, uint64(di), uint64(li), uint64(ei)),
				})
			}
			groups = append(groups, FigureGroup{Name: fmt.Sprintf("%s λ=%d", dsName, lambda), Cells: cells})
		}
	}
	return FigureSpec{ID: "fig1", Title: "MAE vs privacy budget ε", XLabel: "eps", Groups: groups}
}

// Fig2 varies the query selectivity s (paper Figure 2).
func Fig2(p Params) FigureSpec {
	p = p.WithDefaults()
	sweep := []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	var groups []FigureGroup
	for di, dsName := range p.Datasets {
		for li, lambda := range p.Lambdas {
			var cells []Cell
			for si, s := range sweep {
				cells = append(cells, Cell{
					X: fmt.Sprintf("%.1f", s),
					Config: p.finish(Config{
						Dataset:     dsName,
						Schema:      defaultSchema(),
						N:           p.N,
						Epsilon:     1.0,
						Selectivity: s,
						Lambda:      lambda,
						Strategies:  []Strategy{StratOUG, StratOHG, StratHIO},
					}, 2, uint64(di), uint64(li), uint64(si)),
				})
			}
			groups = append(groups, FigureGroup{Name: fmt.Sprintf("%s λ=%d", dsName, lambda), Cells: cells})
		}
	}
	return FigureSpec{ID: "fig2", Title: "MAE vs query selectivity s", XLabel: "s", Groups: groups}
}

// Fig3 varies the attribute domain sizes (paper Figure 3): numerical domains
// 25–1600, categorical domains 2–8, paired as in §6.2.3.
func Fig3(p Params) FigureSpec {
	p = p.WithDefaults()
	sweep := []struct{ dNum, dCat int }{
		{25, 2}, {50, 3}, {100, 4}, {200, 5}, {400, 6}, {800, 7}, {1600, 8},
	}
	var groups []FigureGroup
	for di, dsName := range p.Datasets {
		for li, lambda := range p.Lambdas {
			var cells []Cell
			for xi, d := range sweep {
				cells = append(cells, Cell{
					X: fmt.Sprintf("%d/%d", d.dNum, d.dCat),
					Config: p.finish(Config{
						Dataset:     dsName,
						Schema:      dataset.MixedSchema(3, d.dNum, 3, d.dCat),
						N:           p.N,
						Epsilon:     1.0,
						Selectivity: 0.5,
						Lambda:      lambda,
						Strategies:  []Strategy{StratOUG, StratOHG, StratHIO},
					}, 3, uint64(di), uint64(li), uint64(xi)),
				})
			}
			groups = append(groups, FigureGroup{Name: fmt.Sprintf("%s λ=%d", dsName, lambda), Cells: cells})
		}
	}
	return FigureSpec{ID: "fig3", Title: "MAE vs attribute domain size d (num/cat)", XLabel: "d", Groups: groups}
}

// Fig4 varies the query dimension λ from 2 to 10 over a 10-attribute schema
// (paper Figure 4).
func Fig4(p Params) FigureSpec {
	p = p.WithDefaults()
	schema := func() *domain.Schema { return dataset.MixedSchema(5, 64, 5, 8) }
	var groups []FigureGroup
	for di, dsName := range p.Datasets {
		var cells []Cell
		for lambda := 2; lambda <= 10; lambda++ {
			cells = append(cells, Cell{
				X: fmt.Sprintf("%d", lambda),
				Config: p.finish(Config{
					Dataset:     dsName,
					Schema:      schema(),
					N:           p.N,
					Epsilon:     1.0,
					Selectivity: 0.5,
					Lambda:      lambda,
					Strategies:  []Strategy{StratOUG, StratOHG, StratHIO},
				}, 4, uint64(di), uint64(lambda)),
			})
		}
		groups = append(groups, FigureGroup{Name: dsName, Cells: cells})
	}
	return FigureSpec{ID: "fig4", Title: "MAE vs query dimension λ (k=10)", XLabel: "lambda", Groups: groups}
}

// Fig5 varies the number of attributes k from 4 to 10 (paper Figure 5).
func Fig5(p Params) FigureSpec {
	p = p.WithDefaults()
	var groups []FigureGroup
	for di, dsName := range p.Datasets {
		for li, lambda := range p.Lambdas {
			var cells []Cell
			for k := 4; k <= 10; k++ {
				kNum := (k + 1) / 2
				kCat := k / 2
				cells = append(cells, Cell{
					X: fmt.Sprintf("%d", k),
					Config: p.finish(Config{
						Dataset:     dsName,
						Schema:      dataset.MixedSchema(kNum, 64, kCat, 8),
						N:           p.N,
						Epsilon:     1.0,
						Selectivity: 0.5,
						Lambda:      lambda,
						Strategies:  []Strategy{StratOUG, StratOHG, StratHIO},
					}, 5, uint64(di), uint64(li), uint64(k)),
				})
			}
			groups = append(groups, FigureGroup{Name: fmt.Sprintf("%s λ=%d", dsName, lambda), Cells: cells})
		}
	}
	return FigureSpec{ID: "fig5", Title: "MAE vs number of attributes k", XLabel: "k", Groups: groups}
}

// Fig6 varies the population size n (paper Figure 6): 0.1×–10× the base
// population (the paper sweeps 100k–10m; Loan 10k–1m).
func Fig6(p Params) FigureSpec {
	p = p.WithDefaults()
	factors := []float64{0.1, 0.3, 1, 3, 10}
	var groups []FigureGroup
	for di, dsName := range p.Datasets {
		for li, lambda := range p.Lambdas {
			var cells []Cell
			for fi, f := range factors {
				n := int(float64(p.N) * f)
				if dsName == "loan-sim" {
					n = int(float64(p.N) * f / 10) // the paper's Loan sweep is 10× smaller
				}
				if n < 1000 {
					n = 1000
				}
				cells = append(cells, Cell{
					X: fmt.Sprintf("%d", n),
					Config: p.finish(Config{
						Dataset:     dsName,
						Schema:      defaultSchema(),
						N:           n,
						Epsilon:     1.0,
						Selectivity: 0.5,
						Lambda:      lambda,
						Strategies:  []Strategy{StratOUG, StratOHG, StratHIO},
					}, 6, uint64(di), uint64(li), uint64(fi)),
				})
			}
			groups = append(groups, FigureGroup{Name: fmt.Sprintf("%s λ=%d", dsName, lambda), Cells: cells})
		}
	}
	return FigureSpec{ID: "fig6", Title: "MAE vs number of users n", XLabel: "n", Groups: groups}
}

// Fig7 is the range-constraints-only comparison against TDG/HDG (paper
// Figure 7): all-numerical schema, d=100, k=6, λ=3, uniform and normal
// datasets, uniform-grid and hybrid-grid strategy panels.
func Fig7(p Params) FigureSpec {
	p = p.WithDefaults()
	schema := defaultSchemaNumeric
	panels := []struct {
		name   string
		strats []Strategy
	}{
		{"uniform-grid", []Strategy{StratOUG, StratOUGOLH, StratTDG}},
		{"hybrid-grid", []Strategy{StratOHG, StratOHGOLH, StratHDG}},
	}
	var groups []FigureGroup
	for di, dsName := range []string{"uniform", "normal"} {
		for pi, panel := range panels {
			var cells []Cell
			for ei, eps := range epsSweep {
				cells = append(cells, Cell{
					X: fmt.Sprintf("%.1f", eps),
					Config: p.finish(Config{
						Dataset:     dsName,
						Schema:      schema(),
						N:           p.N,
						Epsilon:     eps,
						Selectivity: 0.5,
						Lambda:      3,
						Strategies:  panel.strats,
					}, 7, uint64(di), uint64(pi), uint64(ei)),
				})
			}
			groups = append(groups, FigureGroup{Name: fmt.Sprintf("%s %s", dsName, panel.name), Cells: cells})
		}
	}
	return FigureSpec{ID: "fig7", Title: "Range-only comparison vs TDG/HDG, MAE vs ε", XLabel: "eps", Groups: groups}
}

// AblationPartitioning compares dividing users against dividing the privacy
// budget (Theorem 5.1).
func AblationPartitioning(p Params) FigureSpec {
	p = p.WithDefaults()
	var cells []Cell
	for ei, eps := range epsSweep {
		cells = append(cells, Cell{
			X: fmt.Sprintf("%.1f", eps),
			Config: p.finish(Config{
				Dataset:     "normal",
				Schema:      defaultSchema(),
				N:           p.N,
				Epsilon:     eps,
				Selectivity: 0.5,
				Lambda:      2,
				Strategies:  []Strategy{StratOHG, StratOHGBudget},
			}, 8, uint64(ei)),
		})
	}
	return FigureSpec{
		ID:     "abl-part",
		Title:  "Ablation: dividing users vs dividing ε (Theorem 5.1)",
		XLabel: "eps",
		Groups: []FigureGroup{{Name: "normal λ=2", Cells: cells}},
	}
}

// AblationAFO compares the adaptive frequency oracle against forcing OLH or
// GRR everywhere (§6.3 extended).
func AblationAFO(p Params) FigureSpec {
	p = p.WithDefaults()
	var groups []FigureGroup
	for di, dsName := range []string{"uniform", "normal"} {
		var cells []Cell
		for ei, eps := range epsSweep {
			cells = append(cells, Cell{
				X: fmt.Sprintf("%.1f", eps),
				Config: p.finish(Config{
					Dataset:     dsName,
					Schema:      defaultSchema(),
					N:           p.N,
					Epsilon:     eps,
					Selectivity: 0.5,
					Lambda:      2,
					Strategies:  []Strategy{StratOHG, StratOHGOLH, StratOHGGRR},
				}, 9, uint64(di), uint64(ei)),
			})
		}
		groups = append(groups, FigureGroup{Name: dsName + " λ=2", Cells: cells})
	}
	return FigureSpec{
		ID:     "abl-afo",
		Title:  "Ablation: adaptive FO vs OLH-only vs GRR-only",
		XLabel: "eps",
		Groups: groups,
	}
}

// AblationSelectivity compares sizing grids with the true workload
// selectivity against the fixed 0.5 assumption TDG/HDG make (§5.8).
func AblationSelectivity(p Params) FigureSpec {
	p = p.WithDefaults()
	sweep := []float64{0.1, 0.2, 0.3, 0.7, 0.8, 0.9}
	var cells []Cell
	for si, s := range sweep {
		cells = append(cells, Cell{
			X: fmt.Sprintf("%.1f", s),
			Config: p.finish(Config{
				Dataset:     "normal",
				Schema:      defaultSchema(),
				N:           p.N,
				Epsilon:     1.0,
				Selectivity: s,
				Lambda:      2,
				Strategies:  []Strategy{StratOHG, StratOHGFixSel},
			}, 10, uint64(si)),
		})
	}
	return FigureSpec{
		ID:     "abl-sel",
		Title:  "Ablation: true selectivity prior vs fixed 0.5 assumption",
		XLabel: "s",
		Groups: []FigureGroup{{Name: "normal λ=2", Cells: cells}},
	}
}

// AblationEquiMass compares plain OHG against the two-phase data-aware
// equi-mass extension (§7 future work) on the spiky loan-sim data, where
// within-cell non-uniformity hurts equal-width binning most.
func AblationEquiMass(p Params) FigureSpec {
	p = p.WithDefaults()
	var cells []Cell
	for ei, eps := range epsSweep {
		cells = append(cells, Cell{
			X: fmt.Sprintf("%.1f", eps),
			Config: p.finish(Config{
				Dataset:     "loan-sim",
				Schema:      dataset.MixedSchema(3, 256, 3, 8),
				N:           p.N,
				Epsilon:     eps,
				Selectivity: 0.3,
				Lambda:      2,
				Strategies:  []Strategy{StratOHG, StratOHGEqMass},
			}, 11, uint64(ei)),
		})
	}
	return FigureSpec{
		ID:     "abl-eqmass",
		Title:  "Ablation: equal-width vs two-phase equi-mass binning (§7 extension)",
		XLabel: "eps",
		Groups: []FigureGroup{{Name: "loan-sim λ=2 s=0.3", Cells: cells}},
	}
}

// Figures returns all figure specs at the given scale.
func Figures(p Params) []FigureSpec {
	p = p.WithDefaults()
	return []FigureSpec{
		Fig1(p), Fig2(p), Fig3(p), Fig4(p), Fig5(p), Fig6(p), Fig7(p),
		AblationPartitioning(p), AblationAFO(p), AblationSelectivity(p),
		AblationEquiMass(p),
	}
}

// FigureByID returns the figure with the given id.
func FigureByID(p Params, id string) (FigureSpec, error) {
	for _, f := range Figures(p) {
		if f.ID == id {
			return f, nil
		}
	}
	return FigureSpec{}, fmt.Errorf("experiment: unknown figure %q (want fig1..fig7, abl-part, abl-afo, abl-sel)", id)
}
