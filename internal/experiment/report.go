package experiment

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// GroupResult holds the computed series of one figure panel.
type GroupResult struct {
	Name       string
	XLabel     string
	Strategies []Strategy
	Results    []Result
}

// RunFigure executes every cell of the figure and streams progress to w (if
// non-nil). It returns one GroupResult per panel.
func RunFigure(spec FigureSpec, w io.Writer) ([]GroupResult, error) {
	var out []GroupResult
	for _, g := range spec.Groups {
		gr := GroupResult{Name: g.Name, XLabel: spec.XLabel}
		for _, cell := range g.Cells {
			start := time.Now()
			res, err := RunCell(cell.Config)
			if err != nil {
				return nil, fmt.Errorf("%s [%s %s=%s]: %w", spec.ID, g.Name, spec.XLabel, cell.X, err)
			}
			res.X = cell.X
			gr.Results = append(gr.Results, res)
			if len(gr.Strategies) == 0 {
				gr.Strategies = append(gr.Strategies, cell.Config.Strategies...)
			}
			if w != nil {
				fmt.Fprintf(w, "# %s %s %s=%s done in %v\n", spec.ID, g.Name, spec.XLabel, cell.X, time.Since(start).Round(time.Millisecond))
			}
		}
		out = append(out, gr)
	}
	return out, nil
}

// Print renders the figure's panels as aligned text tables of MAE values,
// one row per x point and one column per strategy — the same series the
// paper plots.
func Print(w io.Writer, spec FigureSpec, groups []GroupResult) {
	fmt.Fprintf(w, "== %s: %s ==\n", spec.ID, spec.Title)
	for _, g := range groups {
		fmt.Fprintf(w, "\n-- %s --\n", g.Name)
		fmt.Fprintf(w, "%-12s", g.XLabel)
		for _, s := range g.Strategies {
			fmt.Fprintf(w, "%14s", s)
		}
		fmt.Fprintln(w)
		for _, res := range g.Results {
			fmt.Fprintf(w, "%-12s", res.X)
			for _, s := range g.Strategies {
				if mae, ok := res.MAE[s]; ok {
					fmt.Fprintf(w, "%14.5f", mae)
				} else {
					fmt.Fprintf(w, "%14s", "-")
				}
			}
			fmt.Fprintln(w)
		}
	}
	fmt.Fprintln(w)
}

// WriteCSV renders the figure's results as machine-readable CSV with the
// columns figure,group,x,strategy,mae — one row per (panel, x, strategy).
func WriteCSV(w io.Writer, spec FigureSpec, groups []GroupResult) error {
	if _, err := fmt.Fprintln(w, "figure,group,"+spec.XLabel+",strategy,mae"); err != nil {
		return err
	}
	for _, g := range groups {
		for _, res := range g.Results {
			for _, s := range g.Strategies {
				mae, ok := res.MAE[s]
				if !ok {
					continue
				}
				if _, err := fmt.Fprintf(w, "%s,%s,%s,%s,%.8f\n", spec.ID, g.Name, res.X, s, mae); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// Summary aggregates a panel's series into per-strategy mean MAE, useful for
// quick shape checks ("who wins").
func Summary(groups []GroupResult) map[Strategy]float64 {
	sums := map[Strategy]float64{}
	counts := map[Strategy]int{}
	for _, g := range groups {
		for _, res := range g.Results {
			for s, m := range res.MAE {
				sums[s] += m
				counts[s]++
			}
		}
	}
	out := make(map[Strategy]float64, len(sums))
	for s, sum := range sums {
		out[s] = sum / float64(counts[s])
	}
	return out
}

// SortedStrategies returns the summary's strategies ordered by ascending
// mean MAE (best first).
func SortedStrategies(summary map[Strategy]float64) []Strategy {
	out := make([]Strategy, 0, len(summary))
	for s := range summary {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if summary[out[i]] != summary[out[j]] {
			return summary[out[i]] < summary[out[j]]
		}
		return out[i] < out[j]
	})
	return out
}
