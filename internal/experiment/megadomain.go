package experiment

import (
	"fmt"
	"time"

	"felip/internal/core"
	"felip/internal/dataset"
	"felip/internal/fo"
	"felip/internal/gridopt"
	"felip/internal/wire"
)

// The mega-domain shootout drives every frequency oracle over a single
// categorical attribute whose domain is far past the paper's grid sizes
// (2^10 .. 2^17 values), on two axes at once: estimation MSE against the
// sample's exact frequencies, and bytes on the wire per user. The regime is
// the one HR exists for — OUE's report is L bits, OLH's server fold is
// O(n·L) hash evaluations, while HR's report is one (row, sign) pair and its
// fold is two integer increments — so the sweep records fold+estimate wall
// time alongside the two axes, and what the AFO planner would pick at each
// (L, ε) point.

// MegaDomainCell is one (protocol, domain, ε) measurement.
type MegaDomainCell struct {
	// Proto names the frequency oracle (GRR, OLH, OUE, HR).
	Proto string `json:"proto"`
	// Epsilon is the per-user privacy budget.
	Epsilon float64 `json:"epsilon"`
	// Domain is the categorical domain size L.
	Domain int `json:"domain"`
	// PaddedDomain is HR's power-of-two Hadamard order K (0 for others).
	PaddedDomain int `json:"padded_domain,omitempty"`
	// N is the population size.
	N int `json:"n"`
	// WireBytes is the total on-the-wire cost of shipping all n reports in
	// batched binary frames (frame headers included). OUE reports do not fit
	// the frame record format, so their figure is the analytic cost of the
	// packed bitset record described in the methodology.
	WireBytes int64 `json:"wire_bytes"`
	// BytesPerUser is WireBytes / N.
	BytesPerUser float64 `json:"bytes_per_user"`
	// RecordBytes is the per-report record size excluding frame headers.
	RecordBytes float64 `json:"record_bytes_per_report"`
	// MSE is the mean squared error of the estimated frequencies over the
	// full domain against the sample's exact frequencies. For analytic-only
	// cells it is the closed-form variance (the expected MSE).
	MSE float64 `json:"mse"`
	// AnalyticVariance is the closed-form per-value estimator variance at
	// this (proto, ε, n) — the quantity MSE converges to on a mostly-empty
	// mega-domain.
	AnalyticVariance float64 `json:"analytic_variance"`
	// EstimateMillis is the wall time of the aggregator's estimate step
	// (OLH's deferred fold included — the O(n·L) term the threshold rule
	// charges it for).
	EstimateMillis float64 `json:"estimate_ms"`
	// AFOChoice is the protocol the variance-aware planner picks at this
	// (L, ε, n) — identical across the cell's protocol rows.
	AFOChoice string `json:"afo_choice"`
	// Simulated is false for analytic-only cells (OUE beyond the simulation
	// cap, where the O(n·L) perturbation loop is the bottleneck being
	// demonstrated).
	Simulated bool `json:"simulated"`
}

// MegaDomainConfig parameterizes the sweep.
type MegaDomainConfig struct {
	// N is the population per cell (default 20000; must be ≤ 65536 so the
	// fixed 4-hex-digit report ids stay unique).
	N int
	// Domains is the domain-size sweep (default 2^10, 2^14, 2^17).
	Domains []int
	// Epsilons is the ε sweep (default 0.5 and 1.0 — inside the regime where
	// HR's variance stays within the AFO's bounded ratio of OLH's).
	Epsilons []float64
	// Zipf is the sample's Zipf exponent (default 1.1).
	Zipf float64
	// BatchReports is the frame size wire costs are metered at (default 512).
	BatchReports int
	// OUESimLimit is the largest domain OUE is simulated at (default 2^14);
	// beyond it the cell is analytic-only.
	OUESimLimit int
	// Seed makes the sweep deterministic (default 1).
	Seed uint64
	// Progress, when non-nil, receives one line per finished cell.
	Progress func(string)
}

func (c MegaDomainConfig) withDefaults() (MegaDomainConfig, error) {
	if c.N <= 0 {
		c.N = 20000
	}
	if c.N > 65536 {
		return c, fmt.Errorf("experiment: mega-domain N %d exceeds the 4-hex-digit id space", c.N)
	}
	if len(c.Domains) == 0 {
		c.Domains = []int{1 << 10, 1 << 14, 1 << 17}
	}
	if len(c.Epsilons) == 0 {
		c.Epsilons = []float64{0.5, 1.0}
	}
	if c.Zipf <= 0 {
		c.Zipf = 1.1
	}
	if c.BatchReports <= 0 {
		c.BatchReports = 512
	}
	if c.OUESimLimit <= 0 {
		c.OUESimLimit = 1 << 14
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c, nil
}

var megaDomainProtos = []fo.Protocol{fo.GRR, fo.OLH, fo.OUE, fo.HR}

// RunMegaDomain runs the sweep and returns one cell per (domain, ε, proto).
func RunMegaDomain(cfg MegaDomainConfig) ([]MegaDomainCell, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	var cells []MegaDomainCell
	for _, L := range cfg.Domains {
		md, err := dataset.GenerateMegaDomain(L, cfg.N, cfg.Zipf, cfg.Seed)
		if err != nil {
			return nil, err
		}
		truth := md.Frequencies()
		for _, eps := range cfg.Epsilons {
			afo := gridopt.Plan1DCategorical(
				gridopt.Params{Epsilon: eps, N: cfg.N, M: 1}, L, 0.5).Proto.String()
			for _, proto := range megaDomainProtos {
				cell, err := runMegaDomainCell(cfg, md, truth, L, eps, proto)
				if err != nil {
					return nil, fmt.Errorf("experiment: megadomain %v L=%d eps=%g: %w", proto, L, eps, err)
				}
				cell.AFOChoice = afo
				cells = append(cells, cell)
				if cfg.Progress != nil {
					cfg.Progress(fmt.Sprintf(
						"megadomain: L=%d eps=%g %-3s mse=%.3e bytes/user=%.2f estimate=%.1fms sim=%v",
						L, eps, cell.Proto, cell.MSE, cell.BytesPerUser, cell.EstimateMillis, cell.Simulated))
				}
			}
		}
	}
	return cells, nil
}

// analyticVariance returns the closed-form per-value estimator variance.
func analyticVariance(proto fo.Protocol, eps float64, L, n int) float64 {
	return proto.Variance(eps, L, n)
}

// megaID returns the fixed-width report id for user i: 4 hex digits, the
// shortest id that keeps 65536 users unique — report ids are part of the
// wire cost, so the bench keeps them as small as a production batcher could.
func megaID(i int) string { return fmt.Sprintf("%04x", i) }

func runMegaDomainCell(cfg MegaDomainConfig, md *dataset.MegaDomain, truth []float64, L int, eps float64, proto fo.Protocol) (MegaDomainCell, error) {
	cell := MegaDomainCell{
		Proto:            proto.String(),
		Epsilon:          eps,
		Domain:           L,
		N:                cfg.N,
		AnalyticVariance: analyticVariance(proto, eps, L, cfg.N),
		Simulated:        true,
	}
	if proto == fo.HR {
		cell.PaddedDomain = fo.HRPaddedSize(L)
	}

	// OUE's report is a packed L-bit vector; it has no frame record form, so
	// its wire figures are analytic everywhere and past the simulation cap
	// the whole cell is (the per-user O(L) perturbation loop is exactly the
	// bloat the cell documents).
	if proto == fo.OUE {
		rec := float64(1+len(megaID(0))+5) + float64((L+7)/8)
		cell.RecordBytes = rec
		cell.WireBytes = int64(rec * float64(cfg.N))
		cell.BytesPerUser = rec
		if L > cfg.OUESimLimit {
			cell.MSE = cell.AnalyticVariance
			cell.Simulated = false
			return cell, nil
		}
		r := fo.NewRand(cfg.Seed + uint64(L) + uint64(eps*1000))
		client, err := fo.NewOUEClient(eps, L)
		if err != nil {
			return cell, err
		}
		agg := fo.NewOUEAggregator(eps, L)
		for _, v := range md.Values {
			rep, err := client.Perturb(v, r)
			if err != nil {
				return cell, err
			}
			agg.Add(rep)
		}
		t0 := time.Now()
		est := agg.Estimates()
		cell.EstimateMillis = float64(time.Since(t0).Microseconds()) / 1000
		cell.MSE = mseOver(est, truth)
		return cell, nil
	}

	// The frame-capable oracles ship real batched binary frames and meter
	// the encoded bytes, headers included.
	r := fo.NewRand(cfg.Seed + uint64(L) + uint64(eps*1000))
	var (
		grrClient *fo.GRRClient
		olhClient *fo.OLHClient
		hrClient  *fo.HRClient
		grrAgg    *fo.GRRAggregator
		olhAgg    *fo.OLHAggregator
		hrAgg     *fo.HRAggregator
		err       error
	)
	switch proto {
	case fo.GRR:
		if grrClient, err = fo.NewGRRClient(eps, L); err != nil {
			return cell, err
		}
		grrAgg = fo.NewGRRAggregator(eps, L)
	case fo.OLH:
		if olhClient, err = fo.NewOLHClient(eps, L); err != nil {
			return cell, err
		}
		olhAgg = fo.NewOLHAggregator(eps, L)
	case fo.HR:
		if hrClient, err = fo.NewHRClient(eps, L); err != nil {
			return cell, err
		}
		hrAgg = fo.NewHRAggregator(eps, L)
	}

	batch := make([]wire.BatchReport, 0, cfg.BatchReports)
	var frameBuf []byte
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		frameBuf, err = wire.AppendFrame(frameBuf[:0], batch)
		if err != nil {
			return err
		}
		cell.WireBytes += int64(len(frameBuf))
		batch = batch[:0]
		return nil
	}
	for i, v := range md.Values {
		var rep core.Report
		switch proto {
		case fo.GRR:
			out, err := grrClient.Perturb(v, r)
			if err != nil {
				return cell, err
			}
			grrAgg.Add(out)
			rep = core.Report{Group: 0, Proto: fo.GRR, Value: out}
		case fo.OLH:
			out, err := olhClient.Perturb(v, r)
			if err != nil {
				return cell, err
			}
			olhAgg.Add(out)
			rep = core.Report{Group: 0, Proto: fo.OLH, Value: int(out.Value), Seed: out.Seed}
		case fo.HR:
			out, err := hrClient.Perturb(v, r)
			if err != nil {
				return cell, err
			}
			hrAgg.Add(out)
			var sign uint64
			if out.Sign < 0 {
				sign = 1
			}
			rep = core.Report{Group: 0, Proto: fo.HR, Value: out.Row, Seed: sign}
		}
		batch = append(batch, wire.BatchReport{ID: megaID(i), Report: rep})
		if len(batch) == cfg.BatchReports {
			if err := flush(); err != nil {
				return cell, err
			}
		}
	}
	if err := flush(); err != nil {
		return cell, err
	}
	cell.BytesPerUser = float64(cell.WireBytes) / float64(cfg.N)
	tail := 17
	if proto == fo.HR {
		tail = 10
	}
	cell.RecordBytes = float64(1 + len(megaID(0)) + tail)

	var est []float64
	t0 := time.Now()
	switch proto {
	case fo.GRR:
		est = grrAgg.Estimates()
	case fo.OLH:
		est = olhAgg.Estimates()
	case fo.HR:
		est = hrAgg.Estimates()
	}
	cell.EstimateMillis = float64(time.Since(t0).Microseconds()) / 1000
	cell.MSE = mseOver(est, truth)
	return cell, nil
}

// mseOver is the mean squared error over the full domain.
func mseOver(est, truth []float64) float64 {
	var sum float64
	for v := range truth {
		d := est[v] - truth[v]
		sum += d * d
	}
	return sum / float64(len(truth))
}
