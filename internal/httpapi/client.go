package httpapi

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"

	"felip/internal/core"
	"felip/internal/wire"
)

// Client talks to a FELIP aggregator service. The typical device flow is
// Plan once, then per user Assign → core.Client.Perturb → Report; the
// analyst flow is Finalize once and Query thereafter.
type Client struct {
	base string
	http *http.Client
}

// Dial returns a client for the service at base (e.g. "http://host:8377").
func Dial(base string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(base, "/"), http: httpClient}
}

func (c *Client) get(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	return c.do(req, out)
}

func (c *Client) post(ctx context.Context, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		buf, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	return c.do(req, out)
}

func (c *Client) do(req *http.Request, out any) error {
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		var e struct {
			Error string `json:"error"`
		}
		if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
			return fmt.Errorf("httpapi: %s: %s", resp.Status, e.Error)
		}
		return fmt.Errorf("httpapi: %s", resp.Status)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Plan fetches the published collection plan.
func (c *Client) Plan(ctx context.Context) (wire.PlanMessage, error) {
	var msg wire.PlanMessage
	err := c.get(ctx, "/v1/plan", &msg)
	return msg, err
}

// Assign fetches the next user-group assignment.
func (c *Client) Assign(ctx context.Context) (int, error) {
	var out struct {
		Group int `json:"group"`
	}
	err := c.get(ctx, "/v1/assign", &out)
	return out.Group, err
}

// Report submits one user's ε-LDP report.
func (c *Client) Report(ctx context.Context, rep core.Report) error {
	return c.post(ctx, "/v1/report", wire.NewReportMessage(rep), nil)
}

// Finalize closes the collection round; returns the accepted report count.
func (c *Client) Finalize(ctx context.Context) (int, error) {
	var out struct {
		Reports int `json:"reports"`
	}
	err := c.post(ctx, "/v1/finalize", nil, &out)
	return out.Reports, err
}

// Query answers a WHERE expression (see query.Parse for the grammar).
func (c *Client) Query(ctx context.Context, where string) (wire.QueryResponse, error) {
	var out wire.QueryResponse
	err := c.get(ctx, "/v1/query?where="+url.QueryEscape(where), &out)
	return out, err
}

// Status reports the round's progress.
func (c *Client) Status(ctx context.Context) (reports, groups int, finalized bool, err error) {
	var out struct {
		Reports   int  `json:"reports"`
		Groups    int  `json:"groups"`
		Finalized bool `json:"finalized"`
	}
	err = c.get(ctx, "/v1/status", &out)
	return out.Reports, out.Groups, out.Finalized, err
}
