package httpapi

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"felip/internal/core"
	"felip/internal/fo"
	"felip/internal/wire"
)

// RetryPolicy configures how the client rides out transient failures:
// transport errors, per-attempt timeouts, and 5xx/429 responses are retried
// with exponential backoff and full jitter; other 4xx responses are not.
// Report submissions reuse one idempotency key across every retry of the
// same report, so the aggregator never double-counts a resubmission.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per call (≤ 1 disables
	// retries).
	MaxAttempts int
	// BaseDelay seeds the backoff: the wait before attempt k+1 is drawn
	// uniformly from (0, min(BaseDelay·2^(k-1), MaxDelay)]. Default 50ms.
	BaseDelay time.Duration
	// MaxDelay caps the backoff. Default 2s.
	MaxDelay time.Duration
	// Timeout bounds each individual attempt (0 = no per-attempt bound; the
	// caller's context still applies).
	Timeout time.Duration
	// Seed makes the jitter sequence reproducible (0 = random).
	Seed uint64
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 1
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	if p.Seed == 0 {
		p.Seed = fo.AutoSeed()
	}
	return p
}

// Client talks to a FELIP aggregator service. The typical device flow is
// Plan once, then per user Assign → core.Client.Perturb → Report; the
// analyst flow is Finalize once and Query thereafter. Safe for concurrent
// use.
type Client struct {
	base  string
	http  *http.Client
	retry RetryPolicy

	mu  sync.Mutex
	rng *rand.Rand
}

// Dial returns a client for the service at base (e.g. "http://host:8377")
// that fails fast: no retries, no per-attempt timeout.
func Dial(base string, httpClient *http.Client) *Client {
	return DialRetrying(base, httpClient, RetryPolicy{MaxAttempts: 1})
}

// DialRetrying returns a client that retries per policy. This is what a
// device deployment wants: submissions survive flaky transport, and the
// idempotency key guarantees at-most-once counting server-side.
func DialRetrying(base string, httpClient *http.Client, policy RetryPolicy) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	policy = policy.withDefaults()
	return &Client{
		base:  strings.TrimRight(base, "/"),
		http:  httpClient,
		retry: policy,
		rng:   rand.New(rand.NewSource(int64(policy.Seed))),
	}
}

// backoff returns the jittered wait before the given retry (1-based).
func (c *Client) backoff(retry int) time.Duration {
	d := c.retry.BaseDelay << (retry - 1)
	if d <= 0 || d > c.retry.MaxDelay {
		d = c.retry.MaxDelay
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return time.Duration(c.rng.Int63n(int64(d))) + 1
}

// apiError is a non-retryable error response from the service.
type apiError struct {
	status string
	msg    string
}

func (e *apiError) Error() string {
	if e.msg != "" {
		return fmt.Sprintf("httpapi: %s: %s", e.status, e.msg)
	}
	return fmt.Sprintf("httpapi: %s", e.status)
}

// do performs one JSON API call with retries, returning the final HTTP
// status. body is re-sent verbatim on every attempt, so an idempotency key
// embedded in it is automatically reused.
func (c *Client) do(ctx context.Context, method, path string, body []byte, out any) (int, error) {
	return c.doTyped(ctx, method, path, body, "application/json", out)
}

// doTyped is do with an explicit request content type — the batch ingest
// path posts binary frames, not JSON. Responses are always JSON.
func (c *Client) doTyped(ctx context.Context, method, path string, body []byte, contentType string, out any) (int, error) {
	var lastErr error
	for attempt := 0; attempt < c.retry.MaxAttempts; attempt++ {
		// A caller whose round deadline already passed must not burn another
		// attempt — the first exchange below would be issued even on a dead
		// context, and against a wedged server each such attempt costs a full
		// per-attempt timeout.
		if err := ctx.Err(); err != nil {
			if lastErr != nil {
				return 0, fmt.Errorf("httpapi: %w (last error: %v)", err, lastErr)
			}
			return 0, fmt.Errorf("httpapi: %w", err)
		}
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return 0, fmt.Errorf("httpapi: %w (last error: %v)", ctx.Err(), lastErr)
			case <-time.After(c.backoff(attempt)):
			}
		}
		status, retryable, err := c.attempt(ctx, method, path, body, contentType, out)
		if err == nil {
			return status, nil
		}
		if ctx.Err() != nil || !retryable {
			return status, err
		}
		lastErr = err
	}
	return 0, fmt.Errorf("httpapi: giving up after %d attempts: %w", c.retry.MaxAttempts, lastErr)
}

// attempt performs a single HTTP exchange.
func (c *Client) attempt(ctx context.Context, method, path string, body []byte, contentType string, out any) (status int, retryable bool, err error) {
	actx := ctx
	if c.retry.Timeout > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, c.retry.Timeout)
		defer cancel()
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(actx, method, c.base+path, rd)
	if err != nil {
		return 0, false, err
	}
	if body != nil {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return 0, true, err
	}
	defer resp.Body.Close()
	// Read fully before the per-attempt context is cancelled.
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, true, err
	}
	if resp.StatusCode >= 400 {
		retryable := resp.StatusCode >= 500 || resp.StatusCode == http.StatusTooManyRequests
		var e struct {
			Error string `json:"error"`
		}
		json.Unmarshal(payload, &e)
		return resp.StatusCode, retryable, &apiError{status: resp.Status, msg: e.Error}
	}
	if out == nil {
		return resp.StatusCode, false, nil
	}
	if err := json.Unmarshal(payload, out); err != nil {
		return resp.StatusCode, false, fmt.Errorf("httpapi: decoding %s response: %w", path, err)
	}
	return resp.StatusCode, false, nil
}

func (c *Client) get(ctx context.Context, path string, out any) error {
	_, err := c.do(ctx, http.MethodGet, path, nil, out)
	return err
}

func (c *Client) post(ctx context.Context, path string, in, out any) (int, error) {
	var body []byte
	if in != nil {
		var err error
		body, err = json.Marshal(in)
		if err != nil {
			return 0, err
		}
	}
	return c.do(ctx, http.MethodPost, path, body, out)
}

// Plan fetches the published collection plan.
func (c *Client) Plan(ctx context.Context) (wire.PlanMessage, error) {
	var msg wire.PlanMessage
	err := c.get(ctx, "/v1/plan", &msg)
	return msg, err
}

// Assign fetches the next user-group assignment. The server hands groups out
// round-robin, which keeps them perfectly balanced but is not idempotent: an
// assignment whose response is lost in transit stays consumed. Deployments on
// unreliable transport should prefer DeriveGroup.
func (c *Client) Assign(ctx context.Context) (int, error) {
	var out struct {
		Group int `json:"group"`
	}
	err := c.get(ctx, "/v1/assign", &out)
	return out.Group, err
}

// DeriveGroup assigns a device to one of the plan's groups by hashing its
// report ID — the stateless, idempotent alternative to Assign: retries,
// crashes, and restarts all land the same device in the same group, and no
// server state is consumed. The hash partitions the population uniformly,
// which is exactly the random uniform division the paper's Theorem 5.1
// analyzes (round-robin balance is not required, only uniformity).
func DeriveGroup(reportID string, groups int) int {
	h := fnv.New64a()
	h.Write([]byte(reportID))
	return int(h.Sum64() % uint64(groups))
}

// Report submits one user's ε-LDP report under a fresh idempotency key. The
// key is reused across the client's internal retries, so a lost
// acknowledgment never double-counts the user.
func (c *Client) Report(ctx context.Context, rep core.Report) error {
	_, err := c.ReportWithID(ctx, wire.NewReportID(), rep)
	return err
}

// ReportWithID submits a report under a caller-chosen idempotency key — for
// devices that persist the key themselves and may resubmit across process
// restarts. duplicate reports whether the aggregator had already counted
// this key (i.e. this call was a replay).
func (c *Client) ReportWithID(ctx context.Context, id string, rep core.Report) (duplicate bool, err error) {
	status, err := c.post(ctx, "/v1/report", wire.NewReportMessage(id, rep), nil)
	return status == http.StatusOK, err
}

// ReportModeWithID submits one mode-produced report under a caller-chosen
// idempotency key. FELIP reports send the byte-identical v1 message; SPL and
// RS+FD reports carry the mode name and the grid's attribute index, which the
// server cross-checks against the round's plan.
func (c *Client) ReportModeWithID(ctx context.Context, id string, mode fo.ReportMode, rep core.ModeReport) (duplicate bool, err error) {
	status, err := c.post(ctx, "/v1/report", wire.NewModeReportMessage(id, mode, rep), nil)
	return status == http.StatusOK, err
}

// ReportLongitudinalWithID submits one memoized two-stage report under a
// caller-chosen idempotency key. The key doubles as the device's stable
// identity across rounds: a device persists it alongside its memo and reuses
// it with a per-round suffix, so every round's submission is exactly-once.
// The server refuses the report unless the round's plan is longitudinal.
func (c *Client) ReportLongitudinalWithID(ctx context.Context, id string, rep core.Report) (duplicate bool, err error) {
	status, err := c.post(ctx, "/v1/report", wire.NewLongitudinalReportMessage(id, rep), nil)
	return status == http.StatusOK, err
}

// Finalize closes the collection round; returns the accepted report count.
func (c *Client) Finalize(ctx context.Context) (int, error) {
	var out struct {
		Reports int `json:"reports"`
	}
	_, err := c.post(ctx, "/v1/finalize", nil, &out)
	return out.Reports, err
}

// Query answers a WHERE expression (see query.Parse for the grammar).
func (c *Client) Query(ctx context.Context, where string) (wire.QueryResponse, error) {
	var out wire.QueryResponse
	err := c.get(ctx, "/v1/query?where="+url.QueryEscape(where), &out)
	return out, err
}

// QueryRound answers a WHERE expression from a specific collection round —
// the currently served one or any round the server has archived. Servers
// that predate round targeting ignore the parameter and answer from the
// current round; the client detects that from the response's round stamp and
// refuses to hand the caller the wrong round's numbers.
func (c *Client) QueryRound(ctx context.Context, round int, where string) (wire.QueryResponse, error) {
	if round < 1 {
		return wire.QueryResponse{}, fmt.Errorf("httpapi: round %d out of range (rounds are 1-based)", round)
	}
	var out wire.QueryResponse
	err := c.get(ctx, fmt.Sprintf("/v1/query?where=%s&round=%d", url.QueryEscape(where), round), &out)
	if err != nil {
		return out, err
	}
	if out.Round != round {
		return out, fmt.Errorf("httpapi: asked for round %d but the server answered from round %d — it predates round targeting (no archive support); upgrade it or query without a round",
			round, out.Round)
	}
	return out, nil
}

// Rounds lists every round the server can answer queries from (the served
// round plus its archive). Servers that predate the archive don't expose the
// endpoint; that comes back as a distinct error rather than an opaque 404.
func (c *Client) Rounds(ctx context.Context) (wire.RoundsResponse, error) {
	var out wire.RoundsResponse
	status, err := c.do(ctx, http.MethodGet, "/v1/rounds", nil, &out)
	if err != nil {
		if status == http.StatusNotFound {
			return out, fmt.Errorf("httpapi: server has no /v1/rounds endpoint — it predates the archive: %w", err)
		}
		return out, err
	}
	return out, nil
}

// QueryBatch answers many WHERE expressions in one round trip; the server
// evaluates them concurrently against the same collection round. Per-query
// failures come back in their result item, not as a call error.
func (c *Client) QueryBatch(ctx context.Context, wheres []string) (wire.BatchQueryResponse, error) {
	var out wire.BatchQueryResponse
	_, err := c.post(ctx, "/v1/query", wire.BatchQueryRequest{Queries: wheres}, &out)
	return out, err
}

// NextRound opens collection round k+1 on the aggregator; the finalized
// round k keeps serving queries while the new round collects. Returns the new
// round number.
func (c *Client) NextRound(ctx context.Context) (int, error) {
	var out struct {
		Round int `json:"round"`
	}
	_, err := c.post(ctx, "/v1/nextround", nil, &out)
	return out.Round, err
}

// Status reports the round's progress and durability counters.
func (c *Client) Status(ctx context.Context) (Status, error) {
	var out Status
	err := c.get(ctx, "/v1/status", &out)
	return out, err
}

// Healthz probes liveness.
func (c *Client) Healthz(ctx context.Context) error {
	return c.get(ctx, "/v1/healthz", nil)
}
