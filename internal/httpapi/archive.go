package httpapi

import (
	"fmt"

	"felip/internal/archive"
	"felip/internal/core"
	"felip/internal/reportlog"
	"felip/internal/serve"
	"felip/internal/wire"
)

// PlanFingerprint returns the fingerprint of the server's published plan —
// the value archive snapshots are stamped with so a restore can refuse a
// drifted configuration.
func (s *Server) PlanFingerprint() uint32 { return s.plan.Fingerprint() }

// UseArchive attaches a snapshot store: every finalized round is archived
// durably (temp file + fsync + rename) and served historically through the
// query plane's round targeting. segments, when non-nil, names the server's
// WAL segment chain; fully archived segments are truncated — strictly after
// the covering snapshot is fsynced — so the log stops growing without bound.
func (s *Server) UseArchive(store *archive.Store, segments *reportlog.Segments) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.store != nil {
		return fmt.Errorf("httpapi: archive already attached")
	}
	s.store = store
	s.segments = segments
	s.qp.SetHistory(store)
	return nil
}

// MarkDurable declares that every collection round must run against a WAL
// segment (opened via the SetWALFactory opener). UseWAL implies it; a server
// recovered purely from a snapshot — whose own segments were truncated — has
// no log to attach for the restored round but must still open one for the
// next.
func (s *Server) MarkDurable() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.durable = true
}

// RestoreArchivedRound restores the newest archived round into the serving
// plane of a fresh server: the round's engine is rebuilt from the snapshot
// (bit-identical answers — see serve.FromSnapshot), warmed, and swapped in;
// the server's round cursor moves to the archived round, finalized. WAL
// segments the snapshot covers are re-truncated — a crash between a snapshot
// and its truncation leaves stale segments that must not be replayed over the
// snapshot. Returns the restored round, or 0 when the archive is empty.
func (s *Server) RestoreArchivedRound() (int, error) {
	s.mu.Lock()
	store := s.store
	s.mu.Unlock()
	if store == nil {
		return 0, fmt.Errorf("httpapi: no archive attached (UseArchive first)")
	}
	latest := store.LatestRound()
	if latest == 0 {
		return 0, nil
	}
	snap, err := store.Load(latest)
	if err != nil {
		return 0, err
	}
	agg, err := core.Restore(snap.Aggregate)
	if err != nil {
		return 0, err
	}
	eng, err := serve.NewEngine(agg)
	if err != nil {
		return 0, err
	}
	if err := eng.Warmup(); err != nil {
		return 0, err
	}

	s.mu.Lock()
	if s.col.N() > 0 || s.agg != nil || s.wal != nil || s.round != 1 {
		s.mu.Unlock()
		return 0, fmt.Errorf("httpapi: cannot restore an archived round into a server already in use")
	}
	s.round = latest
	s.agg = agg
	s.finalN = snap.Reports
	s.restored = true
	segments := s.segments
	s.mu.Unlock()
	s.qp.Serve(eng, latest)

	if segments != nil {
		if removed, err := segments.TruncateThrough(latest); err != nil {
			s.logf("httpapi: truncating segments covered by round %d snapshot: %v", latest, err)
		} else if len(removed) > 0 {
			s.logf("httpapi: removed stale wal segments %v already covered by the round %d snapshot", removed, latest)
		}
	}
	return latest, nil
}

// ArchiveNow archives the round the server is currently serving, if an
// archive is attached and the round is not a restored one (those are already
// on disk). It is the backfill for rounds finalized before the archive
// existed or recovered by WAL replay: the snapshot is written from the
// serving engine's aggregator, with the exact pre-estimation counts included
// when the finalized collector is still at hand.
func (s *Server) ArchiveNow() error {
	s.mu.Lock()
	store := s.store
	if store == nil {
		s.mu.Unlock()
		return fmt.Errorf("httpapi: no archive attached (UseArchive first)")
	}
	var col *core.Collector
	if s.agg != nil && !s.restored {
		col = s.col
	}
	s.mu.Unlock()

	st := s.qp.serving.Load()
	if st == nil {
		return nil // nothing finalized yet
	}
	for _, r := range store.Rounds() {
		if r == st.round {
			return nil // already archived
		}
	}
	s.archiveRound(col, st.eng.Aggregator(), st.round)
	return nil
}

// archiveRound persists one finalized round and then — only once the
// snapshot is durable — truncates the WAL segments it covers. Runs outside
// s.mu (disk I/O must not block ingest or status); failures are logged, not
// returned: the WAL still covers an unarchived round, so finalize must not
// fail because the archive did. col, when non-nil, contributes the round's
// exact pre-estimation integer counts.
func (s *Server) archiveRound(col *core.Collector, agg *core.Aggregator, round int) {
	snap := archive.RoundSnapshot{
		Round:           round,
		PlanFingerprint: s.plan.Fingerprint(),
		Reports:         agg.N(),
		Aggregate:       agg.Snapshot(),
	}
	if col != nil {
		if parts, err := col.ExportPartials(); err != nil {
			s.logf("httpapi: exporting round %d partial states for archive: %v", round, err)
		} else {
			snap.Partials = wire.GridStates(parts)
		}
	}
	if err := s.store.WriteRound(snap); err != nil {
		// Do not truncate: the WAL is the round's only durable copy now.
		s.logf("httpapi: archiving round %d: %v", round, err)
		return
	}
	if s.segments != nil {
		if removed, err := s.segments.TruncateThrough(round); err != nil {
			s.logf("httpapi: truncating wal segments through round %d: %v", round, err)
		} else if len(removed) > 0 {
			s.logf("httpapi: archived round %d and truncated wal segments %v", round, removed)
		}
	}
}
