package httpapi

import (
	"context"
	"fmt"
	"math"
	"net/http/httptest"
	"net/url"
	"path/filepath"
	"strings"
	"testing"

	"felip/internal/archive"
	"felip/internal/core"
	"felip/internal/dataset"
	"felip/internal/fo"
	"felip/internal/longitudinal"
	"felip/internal/reportlog"
	"felip/internal/wire"
)

// longOptions is the canonical longitudinal round configuration the tests
// share: Epsilon is the per-round budget ε_1, EpsPerm the permanent stage.
func longOptions() core.Options {
	return core.Options{
		Strategy:     core.OHG,
		Epsilon:      2,
		Seed:         31,
		Longitudinal: &fo.Longitudinal{EpsPerm: 3},
	}
}

// longServer boots a non-durable longitudinal server.
func longServer(t *testing.T, n int) (*Server, *httptest.Server, *Client) {
	t.Helper()
	schema := dataset.MixedSchema(2, 32, 2, 4)
	srv, err := NewServer(schema, n, longOptions())
	if err != nil {
		t.Fatal(err)
	}
	srv.SetLogger(t.Logf)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts, Dial(ts.URL, ts.Client())
}

// longPopulation owns a fleet of memoized devices that report across rounds:
// the same devices, the same memo store, exactly one report per device per
// round.
type longPopulation struct {
	store   *longitudinal.MemoStore
	fp      string
	stages  []longitudinal.Stages // per group
	specs   []core.GridSpec
	ds      *dataset.Dataset
	rng     *fo.Rand
	devices int
}

func newLongPopulation(t *testing.T, plan wire.PlanMessage, memoPath string, devices int, dataSeed, rngSeed uint64) *longPopulation {
	t.Helper()
	if plan.Longitudinal == nil {
		t.Fatal("plan does not advertise longitudinal reporting")
	}
	specs, err := plan.Specs()
	if err != nil {
		t.Fatal(err)
	}
	stages := make([]longitudinal.Stages, len(specs))
	for g, sp := range specs {
		if sp.Proto != fo.GRR {
			t.Fatalf("longitudinal plan grid %d runs %v, want GRR", g, sp.Proto)
		}
		stages[g], err = longitudinal.NewStages(*plan.Longitudinal, sp.L())
		if err != nil {
			t.Fatal(err)
		}
	}
	store, err := longitudinal.OpenMemoStore(memoPath)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	schema, err := plan.Schema()
	if err != nil {
		t.Fatal(err)
	}
	return &longPopulation{
		store:   store,
		fp:      fmt.Sprintf("%08x", plan.Fingerprint()),
		stages:  stages,
		specs:   specs,
		ds:      dataset.NewNormal().Generate(schema, devices, dataSeed),
		rng:     fo.NewRand(rngSeed),
		devices: devices,
	}
}

// report submits device dev's round-r report; the idempotency key is
// deterministic in (device, round), so a retry after a lost ack dedupes.
func (p *longPopulation) report(ctx context.Context, t *testing.T, cl *Client, dev, round int) {
	t.Helper()
	group := dev % len(p.specs)
	cell := p.specs[group].CellOf(func(attr int) int { return p.ds.Value(dev, attr) })
	d, err := longitudinal.NewDevice(fmt.Sprintf("dev-%d", dev), p.fp, group, cell, p.stages[group], p.store, p.rng)
	if err != nil {
		t.Fatal(err)
	}
	v, err := d.Report()
	if err != nil {
		t.Fatal(err)
	}
	rep := core.Report{Group: group, Proto: fo.GRR, Value: v}
	if _, err := cl.ReportLongitudinalWithID(ctx, fmt.Sprintf("dev-%d-r%d", dev, round), rep); err != nil {
		t.Fatal(err)
	}
}

// TestLongitudinalEndToEndOverHTTP runs the tentpole path: the same device
// population reports across three rounds through the memoized two-stage
// chain; each round finalizes and serves queries; the status accounting shows
// a fixed cumulative spend (ε_perm + ε_1) while the fresh-ε equivalent grows
// linearly with the round count.
func TestLongitudinalEndToEndOverHTTP(t *testing.T) {
	const n, rounds = 240, 3
	ctx := context.Background()
	_, _, cl := longServer(t, n)

	plan, err := cl.Plan(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Longitudinal == nil {
		t.Fatal("longitudinal plan published without the budgets")
	}
	if plan.Longitudinal.EpsPerm != 3 || plan.Longitudinal.Eps1 != 2 {
		t.Fatalf("plan budgets %+v, want eps_perm=3 eps1=2", plan.Longitudinal)
	}
	pop := newLongPopulation(t, plan, filepath.Join(t.TempDir(), "memo.jsonl"), n, 41, 43)

	for r := 1; r <= rounds; r++ {
		for dev := 0; dev < n; dev++ {
			pop.report(ctx, t, cl, dev, r)
		}
		if total, err := cl.Finalize(ctx); err != nil || total != n {
			t.Fatalf("round %d finalize: total=%d err=%v, want %d", r, total, err, n)
		}
		st, err := cl.Status(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if st.Round != r {
			t.Fatalf("status round %d, want %d", st.Round, r)
		}
		if !st.Longitudinal.Equal(plan.Longitudinal) {
			t.Fatalf("status longitudinal %+v, want %+v", st.Longitudinal, plan.Longitudinal)
		}
		if st.EpsPerRound != 2 {
			t.Fatalf("round %d: eps_per_round = %v, want 2", r, st.EpsPerRound)
		}
		if st.EpsCumulative != 5 {
			t.Fatalf("round %d: eps_cumulative = %v, want fixed 5 (= eps_perm + eps1)", r, st.EpsCumulative)
		}
		if want := float64(r) * 2; st.EpsFreshEquivalent != want {
			t.Fatalf("round %d: eps_fresh_equivalent = %v, want %v", r, st.EpsFreshEquivalent, want)
		}
		resp, err := cl.Query(ctx, "num0=0..15")
		if err != nil {
			t.Fatal(err)
		}
		if math.IsNaN(resp.Estimate) || resp.Estimate < -1 || resp.Estimate > 2 {
			t.Fatalf("round %d estimate %v out of any plausible range", r, resp.Estimate)
		}
		if r < rounds {
			if _, err := cl.NextRound(ctx); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Exactly one memoization per device across all rounds: the ε_perm spend
	// happened once, not once per round.
	if got := pop.store.Len(); got != n {
		t.Fatalf("memo store holds %d entries after %d rounds, want %d (one per device)", got, rounds, n)
	}
}

// TestLongitudinalRefusalBothDirections pins the round-integrity contract on
// the single-report path: a longitudinal round refuses one-shot reports, a
// one-shot round refuses longitudinal reports, and both chargings land in the
// rejection counters.
func TestLongitudinalRefusalBothDirections(t *testing.T) {
	ctx := context.Background()

	_, _, longCl := longServer(t, 100)
	plan, err := longCl.Plan(ctx)
	if err != nil {
		t.Fatal(err)
	}
	specs, err := plan.Specs()
	if err != nil {
		t.Fatal(err)
	}
	oneShot := core.Report{Group: 0, Proto: specs[0].Proto, Value: 0}
	if _, err := longCl.ReportWithID(ctx, "stray-one-shot", oneShot); err == nil {
		t.Fatal("one-shot report accepted by a longitudinal round")
	} else if !strings.Contains(err.Error(), "longitudinal") {
		t.Fatalf("refusal does not name the longitudinal plan: %v", err)
	}
	st, err := longCl.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Rejected == 0 {
		t.Fatal("refused one-shot report not counted")
	}

	_, _, plainCl := modeServer(t, fo.ModeFELIP, 100)
	if _, err := plainCl.ReportLongitudinalWithID(ctx, "stray-long",
		core.Report{Group: 0, Proto: fo.GRR, Value: 0}); err == nil {
		t.Fatal("longitudinal report accepted by a one-shot round")
	} else if !strings.Contains(err.Error(), "one-shot") {
		t.Fatalf("refusal does not name the one-shot plan: %v", err)
	}
}

// TestLongitudinalRoundRefusesBatchFrames pins that the binary batch path —
// whose frame format carries no longitudinal marker — is refused wholesale by
// a longitudinal round, with every claimed report charged.
func TestLongitudinalRoundRefusesBatchFrames(t *testing.T) {
	ctx := context.Background()
	srv, _, cl := longServer(t, 100)
	batch := []wire.BatchReport{
		{ID: "f-0", Report: core.Report{Group: 0, Proto: fo.GRR, Value: 0}},
		{ID: "f-1", Report: core.Report{Group: 1, Proto: fo.GRR, Value: 1}},
	}
	frame, err := wire.EncodeFrame(batch)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := srv.IngestFrame(frame); err == nil || !strings.Contains(err.Error(), "longitudinal") {
		t.Fatalf("batch frame ingested by a longitudinal round: %v", err)
	}
	st, err := cl.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Rejected < len(batch) {
		t.Fatalf("rejected = %d, want at least %d (every report the frame claimed)", st.Rejected, len(batch))
	}
	if st.Reports != 0 {
		t.Fatalf("reports = %d after a refused frame, want 0", st.Reports)
	}
}

// TestLongitudinalWALCrossReplayRefused pins satellite (c): a WAL segment of
// longitudinal records must refuse to replay into a one-shot round, and a
// one-shot segment must refuse to replay into a longitudinal round — loudly,
// at UseWAL time, before any record is counted.
func TestLongitudinalWALCrossReplayRefused(t *testing.T) {
	schema := dataset.MixedSchema(2, 32, 2, 4)

	t.Run("longitudinal records vs one-shot plan", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "long.wal")
		l, recs, err := reportlog.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != 0 {
			t.Fatal("fresh log not empty")
		}
		for i := 0; i < 5; i++ {
			if err := l.Append(reportlog.ReportRecordLongitudinal(fmt.Sprintf("d-%d", i), 0, "GRR", 0, 0)); err != nil {
				t.Fatal(err)
			}
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}

		srv, err := NewServer(schema, 100, core.Options{Strategy: core.OHG, Epsilon: 2, Seed: 31})
		if err != nil {
			t.Fatal(err)
		}
		srv.SetLogger(t.Logf)
		l2, recs2, err := reportlog.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		defer l2.Close()
		err = srv.UseWAL(l2, recs2)
		if err == nil || !strings.Contains(err.Error(), "longitudinal report against the round's one-shot plan") {
			t.Fatalf("longitudinal segment replayed into a one-shot round: %v", err)
		}
	})

	t.Run("one-shot records vs longitudinal plan", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "oneshot.wal")
		l, _, err := reportlog.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			if err := l.Append(reportlog.ReportRecord(fmt.Sprintf("d-%d", i), 0, "GRR", 0, 0)); err != nil {
				t.Fatal(err)
			}
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}

		srv, err := NewServer(schema, 100, longOptions())
		if err != nil {
			t.Fatal(err)
		}
		srv.SetLogger(t.Logf)
		l2, recs2, err := reportlog.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		defer l2.Close()
		err = srv.UseWAL(l2, recs2)
		if err == nil || !strings.Contains(err.Error(), "one-shot report against the round's longitudinal plan") {
			t.Fatalf("one-shot segment replayed into a longitudinal round: %v", err)
		}
	})
}

// TestLongitudinalChaosRestartMidSequenceHTTP is the end-to-end chaos drill:
// mid-round, both the server (kill -9, WAL replay) and the device fleet
// (memo store closed and reopened) restart. The memoized permanent values
// must survive bit-identically — no device re-spends ε_perm — the replayed
// server must accept the longitudinal segment against its longitudinal plan,
// retries must dedupe, and the round must finalize with every device counted
// exactly once.
func TestLongitudinalChaosRestartMidSequenceHTTP(t *testing.T) {
	const n = 160
	ctx := context.Background()
	dir := t.TempDir()
	walPath := filepath.Join(dir, "round.wal")
	memoPath := filepath.Join(dir, "memo.jsonl")
	schema := dataset.MixedSchema(2, 32, 2, 4)

	boot := func() (*Server, *httptest.Server, *Client, int) {
		srv, err := NewServer(schema, n, longOptions())
		if err != nil {
			t.Fatal(err)
		}
		srv.SetLogger(t.Logf)
		l, recs, err := reportlog.Open(walPath)
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.UseWAL(l, recs); err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		return srv, ts, Dial(ts.URL, ts.Client()), len(recs)
	}

	srv, ts, cl, replayed := boot()
	if replayed != 0 {
		t.Fatalf("fresh WAL replayed %d records", replayed)
	}
	plan, err := cl.Plan(ctx)
	if err != nil {
		t.Fatal(err)
	}
	pop := newLongPopulation(t, plan, memoPath, n, 41, 43)
	for dev := 0; dev < n/2; dev++ {
		pop.report(ctx, t, cl, dev, 1)
	}
	memoBefore := make([]int, n/2)
	for dev := 0; dev < n/2; dev++ {
		e, ok := pop.store.Get(fmt.Sprintf("dev-%d", dev))
		if !ok {
			t.Fatalf("device %d reported without a memo entry", dev)
		}
		memoBefore[dev] = e.Value
	}

	// kill -9 both planes.
	ts.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := pop.store.Close(); err != nil {
		t.Fatal(err)
	}

	// Server restart: the longitudinal segment replays into the longitudinal
	// plan; every acknowledged report survived.
	srv2, ts2, cl2, replayed2 := boot()
	defer ts2.Close()
	defer srv2.Close()
	if replayed2 != n/2 {
		t.Fatalf("replayed %d records after restart, want %d", replayed2, n/2)
	}

	// Device fleet restart: same memo store, same plan. The permanent values
	// must be bit-identical and no fresh ε_perm randomness may be drawn.
	pop2 := newLongPopulation(t, plan, memoPath, n, 41, 47)
	if got := pop2.store.Len(); got != n/2 {
		t.Fatalf("memo store lost entries across restart: %d, want %d", got, n/2)
	}
	rngBefore := *pop2.rng
	for dev := 0; dev < n/2; dev++ {
		e, ok := pop2.store.Get(fmt.Sprintf("dev-%d", dev))
		if !ok || e.Value != memoBefore[dev] {
			t.Fatalf("device %d memo drifted across restart: %+v, want value %d", dev, e, memoBefore[dev])
		}
		group := dev % len(pop2.specs)
		cell := pop2.specs[group].CellOf(func(attr int) int { return pop2.ds.Value(dev, attr) })
		d, err := longitudinal.NewDevice(fmt.Sprintf("dev-%d", dev), pop2.fp, group, cell, pop2.stages[group], pop2.store, pop2.rng)
		if err != nil {
			t.Fatal(err)
		}
		if d.Memo() != memoBefore[dev] {
			t.Fatalf("device %d re-memoized after restart: %d, want %d", dev, d.Memo(), memoBefore[dev])
		}
	}
	if rngAfter := *pop2.rng; rngAfter != rngBefore {
		t.Fatal("restart consumed device randomness: a fresh eps_perm was spent re-memoizing")
	}

	// A retried pre-crash report dedupes instead of double-counting.
	group := 0 % len(pop2.specs)
	cell := pop2.specs[group].CellOf(func(attr int) int { return pop2.ds.Value(0, attr) })
	d0, err := longitudinal.NewDevice("dev-0", pop2.fp, group, cell, pop2.stages[group], pop2.store, pop2.rng)
	if err != nil {
		t.Fatal(err)
	}
	v, err := d0.Report()
	if err != nil {
		t.Fatal(err)
	}
	// Same idempotency key, possibly different per-round draw — the server's
	// dedup answers by key; submit the original payload shape (fresh draw is
	// fine for a conflict check only if the key matches the payload, so reuse
	// a fresh key-compatible call only when payloads match; here we assert
	// via a brand-new submission of the SAME key and accept either duplicate
	// or conflict as "not double-counted").
	_, _ = v, err
	stBefore, err := cl2.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl2.ReportLongitudinalWithID(ctx, "dev-0-r1",
		core.Report{Group: group, Proto: fo.GRR, Value: v}); err != nil {
		// A differing per-round draw under a reused key is a 409 conflict —
		// also "not double-counted".
		if !strings.Contains(err.Error(), "reused") {
			t.Fatal(err)
		}
	}
	stAfter, err := cl2.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stAfter.Reports != stBefore.Reports {
		t.Fatalf("retried report changed the count: %d -> %d", stBefore.Reports, stAfter.Reports)
	}

	// The second half of the fleet completes the round.
	for dev := n / 2; dev < n; dev++ {
		pop2.report(ctx, t, cl2, dev, 1)
	}
	if total, err := cl2.Finalize(ctx); err != nil || total != n {
		t.Fatalf("finalize after chaos: total=%d err=%v, want %d", total, err, n)
	}
}

// TestLongitudinalTrendOverRounds runs the archive integration: a durable
// longitudinal server collects several rounds from the same memoized
// population, archives each, and then answers "trend" window queries
// (AnswerRange and AnswerDecayed semantics) across the archived rounds —
// all under the fixed cumulative budget ε_perm + ε_1.
func TestLongitudinalTrendOverRounds(t *testing.T) {
	const n, rounds = 200, 4
	ctx := context.Background()
	dir := t.TempDir()

	schema := dataset.MixedSchema(2, 32, 2, 4)
	srv, err := NewServer(schema, n, longOptions())
	if err != nil {
		t.Fatal(err)
	}
	srv.SetLogger(t.Logf)
	segs := reportlog.NewSegments(filepath.Join(dir, "round.wal"))
	store, err := archive.Open(filepath.Join(dir, "arch"), archive.Options{
		PlanFingerprint: srv.PlanFingerprint(),
		Logf:            t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.UseArchive(store, segs); err != nil {
		t.Fatal(err)
	}
	srv.SetWALFactory(func(round int) (*reportlog.Log, error) {
		l, _, err := segs.Open(round)
		return l, err
	})
	l1, recs, err := segs.Open(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.UseWAL(l1, recs); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cl := Dial(ts.URL, ts.Client())

	plan, err := cl.Plan(ctx)
	if err != nil {
		t.Fatal(err)
	}
	pop := newLongPopulation(t, plan, filepath.Join(dir, "memo.jsonl"), n, 41, 43)
	for r := 1; r <= rounds; r++ {
		for dev := 0; dev < n; dev++ {
			pop.report(ctx, t, cl, dev, r)
		}
		if _, err := cl.Finalize(ctx); err != nil {
			t.Fatal(err)
		}
		if r < rounds {
			if _, err := cl.NextRound(ctx); err != nil {
				t.Fatal(err)
			}
		}
	}
	if got := store.Rounds(); len(got) != rounds {
		t.Fatalf("archived rounds = %v, want %d of them", got, rounds)
	}

	// Window queries across the archived longitudinal rounds: a plain range
	// mean and a half-life-decayed trend, both population-weighted.
	where := url.QueryEscape("num0=0..15")
	var rangeResp wire.QueryResponse
	getJSON(t, ts.URL+"/v1/query?where="+where+"&rounds=1..4", &rangeResp)
	if rangeResp.N != n*rounds {
		t.Fatalf("window query N = %d, want %d (population-weighted across rounds)", rangeResp.N, n*rounds)
	}
	if rangeResp.Round != rounds {
		t.Fatalf("window query freshest round = %d, want %d", rangeResp.Round, rounds)
	}
	if math.IsNaN(rangeResp.Estimate) || rangeResp.Estimate < -1 || rangeResp.Estimate > 2 {
		t.Fatalf("window estimate %v out of any plausible range", rangeResp.Estimate)
	}
	var decayResp wire.QueryResponse
	getJSON(t, ts.URL+"/v1/query?where="+where+"&rounds=all&halflife=2", &decayResp)
	if math.IsNaN(decayResp.Estimate) || decayResp.Estimate < -1 || decayResp.Estimate > 2 {
		t.Fatalf("decayed estimate %v out of any plausible range", decayResp.Estimate)
	}

	// The per-round answers agree with each other to within noise: the same
	// memoized population reported every round, so the trend is flat up to
	// per-round perturbation noise.
	var r1, r4 wire.QueryResponse
	getJSON(t, ts.URL+"/v1/query?where="+where+"&round=1", &r1)
	getJSON(t, ts.URL+"/v1/query?where="+where+"&round=4", &r4)
	if math.Abs(r1.Estimate-r4.Estimate) > 0.5 {
		t.Fatalf("flat trend drifted implausibly: round1=%v round4=%v", r1.Estimate, r4.Estimate)
	}

	// The fixed-budget claim, from the operator's view after 4 rounds.
	st, err := cl.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.EpsCumulative != 5 {
		t.Fatalf("after %d rounds eps_cumulative = %v, want fixed 5", rounds, st.EpsCumulative)
	}
	if st.EpsFreshEquivalent != float64(rounds)*2 {
		t.Fatalf("eps_fresh_equivalent = %v, want %v", st.EpsFreshEquivalent, float64(rounds)*2)
	}
}
