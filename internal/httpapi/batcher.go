package httpapi

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"time"

	"felip/internal/core"
	"felip/internal/fo"
	"felip/internal/wire"
)

// frameContentType is the POST /v1/reports request body type: a binary
// wire frame, not JSON.
const frameContentType = "application/x-felip-frame"

// ReportBatch submits many reports in one binary frame (POST /v1/reports)
// and returns the per-report dispositions in submission order. The frame
// bytes — idempotency keys included — are re-sent verbatim across the
// client's retries, so a response lost in transit turns the resubmission
// into duplicates, never double counts. Callers needing the single-report
// error semantics can inspect each disposition; the call itself only fails
// on transport or frame-level refusal.
func (c *Client) ReportBatch(ctx context.Context, reports []wire.BatchReport) (wire.BatchReportResponse, error) {
	frame, err := wire.EncodeFrame(reports)
	if err != nil {
		return wire.BatchReportResponse{}, err
	}
	return c.ReportFrame(ctx, frame, len(reports))
}

// ReportBatchMode is ReportBatch under a reporting mode: FELIP batches ship
// the identical v1 frame bytes, SPL and RS+FD batches ship a v2 frame
// carrying the mode and each report's attribute index.
func (c *Client) ReportBatchMode(ctx context.Context, mode fo.ReportMode, reports []wire.BatchReport) (wire.BatchReportResponse, error) {
	frame, err := wire.EncodeFrameMode(mode, reports)
	if err != nil {
		return wire.BatchReportResponse{}, err
	}
	return c.ReportFrame(ctx, frame, len(reports))
}

// ReportFrame submits an already-encoded batch frame. Callers that reuse a
// frame buffer across submissions (the Batcher, the load generator) encode
// once and post the same bytes on every retry. n is the report count the
// frame carries, used only to validate the response shape.
func (c *Client) ReportFrame(ctx context.Context, frame []byte, n int) (wire.BatchReportResponse, error) {
	var resp wire.BatchReportResponse
	if _, err := c.doTyped(ctx, http.MethodPost, "/v1/reports", frame, frameContentType, &resp); err != nil {
		return wire.BatchReportResponse{}, err
	}
	if len(resp.Dispositions) != n {
		return wire.BatchReportResponse{}, fmt.Errorf("httpapi: batch of %d reports answered with %d dispositions", n, len(resp.Dispositions))
	}
	return resp, nil
}

// FrameSender is the submission half of Client a Batcher needs — satisfied
// by *Client and by the cluster's routing client.
type FrameSender interface {
	ReportBatch(ctx context.Context, reports []wire.BatchReport) (wire.BatchReportResponse, error)
}

// ModeFrameSender is the mode-aware submission half: a Batcher configured
// with a non-FELIP mode requires its sender to implement it (both *Client and
// the cluster's routing client do).
type ModeFrameSender interface {
	FrameSender
	ReportBatchMode(ctx context.Context, mode fo.ReportMode, reports []wire.BatchReport) (wire.BatchReportResponse, error)
}

// BatcherConfig tunes a Batcher's flush triggers.
type BatcherConfig struct {
	// Mode is the reporting mode the batcher's frames claim (default FELIP,
	// which ships v1 frames). Non-FELIP modes need a ModeFrameSender and every
	// Add must carry the report's attribute index (use AddMode).
	Mode fo.ReportMode
	// MaxReports flushes when this many reports are buffered (default 512,
	// capped at wire.MaxFrameReports).
	MaxReports int
	// MaxAge flushes the buffer when its oldest report has waited this long,
	// even if the size trigger is far away (default 250ms). The age flush
	// fires from a timer, so a trickle of reports still ships promptly.
	MaxAge time.Duration
	// FlushCtx bounds timer-driven flushes (default context.Background();
	// explicit Flush calls use the caller's context).
	FlushCtx context.Context
	// OnResult, when set, is called once per report after its flush settles,
	// with the server's disposition (wire.Disposition*). Called without the
	// batcher lock held for accepted flushes.
	OnResult func(report wire.BatchReport, disposition int)
}

// BatcherStats counts a batcher's lifetime outcomes.
type BatcherStats struct {
	Accepted   int
	Duplicate  int
	Conflict   int
	Rejected   int
	Frames     int
	FlushFails int
	// FrameBytes is the total encoded size of every successfully shipped
	// frame — the wire cost of this batcher's traffic, which is what the
	// mode shootout compares across FELIP/SPL/RS+FD.
	FrameBytes int64
}

// Batcher coalesces single reports into batch frames with size and age flush
// triggers — the device-fleet edge of the batched ingest path. A flush that
// fails keeps its reports buffered and retries them in the next flush under
// the same idempotency keys, so no report is lost and none can double-count.
// Safe for concurrent use; Add may block while a flush is in flight (the
// flush owns the buffer until the server answers).
type Batcher struct {
	send FrameSender
	cfg  BatcherConfig

	mu     sync.Mutex
	buf    []wire.BatchReport
	timer  *time.Timer
	closed bool
	stats  BatcherStats
}

// NewBatcher builds a batcher submitting through send (typically a *Client).
// A non-FELIP cfg.Mode panics unless send implements ModeFrameSender — a
// misconfiguration, not a runtime condition.
func NewBatcher(send FrameSender, cfg BatcherConfig) *Batcher {
	if cfg.Mode != fo.ModeFELIP {
		if _, ok := send.(ModeFrameSender); !ok {
			panic(fmt.Sprintf("httpapi: batcher mode %v needs a ModeFrameSender, got %T", cfg.Mode, send))
		}
	}
	if cfg.MaxReports <= 0 {
		cfg.MaxReports = 512
	}
	if cfg.MaxReports > wire.MaxFrameReports {
		cfg.MaxReports = wire.MaxFrameReports
	}
	if cfg.MaxAge <= 0 {
		cfg.MaxAge = 250 * time.Millisecond
	}
	if cfg.FlushCtx == nil {
		cfg.FlushCtx = context.Background()
	}
	return &Batcher{send: send, cfg: cfg}
}

// Add buffers one report, flushing if the size trigger fires. The id is the
// report's idempotency key and must be stable across any caller-side
// resubmission of the same report.
func (b *Batcher) Add(ctx context.Context, id string, rep core.Report) error {
	return b.add(ctx, wire.BatchReport{ID: id, Report: rep})
}

// AddMode buffers one mode-produced report, attribute index included — what
// non-FELIP frames carry per record. Works for FELIP too (the attr simply
// never reaches the v1 wire).
func (b *Batcher) AddMode(ctx context.Context, id string, rep core.ModeReport) error {
	return b.add(ctx, wire.BatchReport{ID: id, Report: rep.Report, Attr: rep.Attr})
}

func (b *Batcher) add(ctx context.Context, br wire.BatchReport) error {
	if br.ID == "" {
		return fmt.Errorf("httpapi: batcher needs an idempotency key per report")
	}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return fmt.Errorf("httpapi: batcher closed")
	}
	b.buf = append(b.buf, br)
	if len(b.buf) >= b.cfg.MaxReports {
		return b.flushLocked(ctx) // unlocks
	}
	if b.timer == nil {
		b.timer = time.AfterFunc(b.cfg.MaxAge, b.ageFlush)
	}
	b.mu.Unlock()
	return nil
}

// Flush ships everything buffered now. A no-op on an empty buffer.
func (b *Batcher) Flush(ctx context.Context) error {
	b.mu.Lock()
	if len(b.buf) == 0 {
		b.mu.Unlock()
		return nil
	}
	return b.flushLocked(ctx) // unlocks
}

// Close flushes the tail and stops the age timer. The batcher refuses Adds
// afterwards.
func (b *Batcher) Close(ctx context.Context) error {
	err := b.Flush(ctx)
	b.mu.Lock()
	b.closed = true
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	b.mu.Unlock()
	return err
}

// Stats snapshots the lifetime counters.
func (b *Batcher) Stats() BatcherStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stats
}

// Pending reports how many reports are buffered awaiting a flush.
func (b *Batcher) Pending() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.buf)
}

// ageFlush is the timer callback: flush whatever aged in the buffer.
func (b *Batcher) ageFlush() {
	b.mu.Lock()
	if b.closed || len(b.buf) == 0 {
		b.timer = nil
		b.mu.Unlock()
		return
	}
	// Errors surface through stats (and the reports stay buffered for the
	// next trigger); an age flush has no caller to hand them to.
	_ = b.flushLocked(b.cfg.FlushCtx) // unlocks
}

// flushLocked ships the buffer as one frame. Called with b.mu held; always
// unlocks. On failure the reports stay buffered — identical keys on the next
// attempt mean the server dedups anything it already counted.
func (b *Batcher) flushLocked(ctx context.Context) error {
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	batch := b.buf
	var resp wire.BatchReportResponse
	var err error
	if b.cfg.Mode != fo.ModeFELIP {
		resp, err = b.send.(ModeFrameSender).ReportBatchMode(ctx, b.cfg.Mode, batch)
	} else {
		resp, err = b.send.ReportBatch(ctx, batch)
	}
	if err != nil {
		b.stats.FlushFails++
		if len(b.buf) > 0 {
			b.timer = time.AfterFunc(b.cfg.MaxAge, b.ageFlush)
		}
		b.mu.Unlock()
		return fmt.Errorf("httpapi: batch flush of %d reports: %w", len(batch), err)
	}
	b.buf = b.buf[len(batch):]
	if len(b.buf) == 0 {
		// Reclaim the slice so a long-lived batcher doesn't pin the high-water
		// buffer forever via the advancing slice header.
		b.buf = nil
	} else {
		b.timer = time.AfterFunc(b.cfg.MaxAge, b.ageFlush)
	}
	b.stats.Frames++
	b.stats.FrameBytes += int64(wire.FrameSizeMode(b.cfg.Mode, batch))
	b.stats.Accepted += resp.Accepted
	b.stats.Duplicate += resp.Duplicate
	b.stats.Conflict += resp.Conflict
	b.stats.Rejected += resp.Rejected
	onResult := b.cfg.OnResult
	b.mu.Unlock()
	if onResult != nil {
		for i, r := range batch {
			onResult(r, resp.Dispositions[i])
		}
	}
	return nil
}
