package httpapi

import (
	"context"
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"felip/internal/core"
	"felip/internal/dataset"
	"felip/internal/fo"
	"felip/internal/reportlog"
	"felip/internal/wire"
)

// TestWALReplayHRBitIdentical: HR reports ride the existing WAL record
// format (the protocol travels as its name, "HR"), so a crashed server
// replays them into the same plus/minus counters and finalizes to estimates
// bit-identical to a server that never crashed. This is the replay half of
// the compat guarantee: the WAL machinery needed no changes to carry the
// fourth oracle.
func TestWALReplayHRBitIdentical(t *testing.T) {
	const n = 900
	schema := dataset.MixedSchema(2, 32, 2, 4)
	ds := dataset.NewNormal().Generate(schema, n, 801)
	hrProto := fo.HR
	opts := core.Options{Strategy: core.OHG, Epsilon: 1.2, Seed: 803, ForceProtocol: &hrProto}
	ctx := context.Background()
	queries := []string{"num0=0..15", "num1=8..23", "cat0=0,1", "num0=8..23; cat1=2,3"}

	newServer := func(walPath string) (*Server, *httptest.Server, *Client) {
		srv, err := NewServer(schema, n, opts)
		if err != nil {
			t.Fatal(err)
		}
		srv.SetLogger(t.Logf)
		if walPath != "" {
			l, recs, err := reportlog.Open(walPath)
			if err != nil {
				t.Fatal(err)
			}
			if err := srv.UseWAL(l, recs); err != nil {
				t.Fatal(err)
			}
		}
		ts := httptest.NewServer(srv.Handler())
		return srv, ts, Dial(ts.URL, ts.Client())
	}

	reports := func(cl *Client) {
		plan, err := cl.Plan(ctx)
		if err != nil {
			t.Fatal(err)
		}
		specs, err := plan.Specs()
		if err != nil {
			t.Fatal(err)
		}
		// Half on the JSON path, half in one batch frame: both ingest paths
		// must log HR records the replay understands.
		frame := make([]wire.BatchReport, 0, n/2)
		for row := 0; row < n; row++ {
			id := fmt.Sprintf("user-%d", row)
			device, err := core.NewClient(specs, plan.Epsilon, 811+uint64(row))
			if err != nil {
				t.Fatal(err)
			}
			rep, err := device.Perturb(DeriveGroup(id, len(specs)), func(attr int) int { return ds.Value(row, attr) })
			if err != nil {
				t.Fatal(err)
			}
			if rep.Proto != fo.HR {
				t.Fatalf("forced-HR plan produced %v report", rep.Proto)
			}
			if row%2 == 0 {
				if dup, err := cl.ReportWithID(ctx, id, rep); err != nil || dup {
					t.Fatalf("row %d: dup=%v err=%v", row, dup, err)
				}
			} else {
				frame = append(frame, wire.BatchReport{ID: id, Report: rep})
			}
		}
		resp, err := cl.ReportBatch(ctx, frame)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Accepted != len(frame) {
			t.Fatalf("batch accepted %d of %d", resp.Accepted, len(frame))
		}
	}

	// Control: no WAL, no crash.
	_, tsControl, clControl := newServer("")
	defer tsControl.Close()
	reports(clControl)
	if count, err := clControl.Finalize(ctx); err != nil || count != n {
		t.Fatalf("control finalize: %d, %v", count, err)
	}
	control := make([]float64, len(queries))
	for i, where := range queries {
		resp, err := clControl.Query(ctx, where)
		if err != nil {
			t.Fatal(err)
		}
		control[i] = resp.Estimate
	}

	// Durable: collect, crash before finalize, replay, finalize.
	walPath := filepath.Join(t.TempDir(), "hr.wal")
	_, ts1, cl1 := newServer(walPath)
	reports(cl1)
	ts1.Close() // crash: no graceful shutdown, nothing finalized

	_, ts2, cl2 := newServer(walPath)
	defer ts2.Close()
	st, err := cl2.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.WALReplayed != n || st.Reports != n {
		t.Fatalf("post-restart status: replayed=%d reports=%d, want %d", st.WALReplayed, st.Reports, n)
	}
	if count, err := cl2.Finalize(ctx); err != nil || count != n {
		t.Fatalf("replayed finalize: %d, %v", count, err)
	}
	for i, where := range queries {
		resp, err := cl2.Query(ctx, where)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Estimate != control[i] {
			t.Fatalf("query %q: replayed %v != control %v (WAL replay not bit-identical)",
				where, resp.Estimate, control[i])
		}
	}
}
