// Package httpapi exposes a FELIP collection round over HTTP — the
// deployment architecture the paper assumes (untrusted aggregator, users
// submitting ε-LDP reports from their own devices) — plus the matching Go
// client.
//
// Endpoints (JSON):
//
//	GET  /v1/plan      the published collection plan (wire.PlanMessage)
//	GET  /v1/assign    {"group": g} — next user-group assignment
//	POST /v1/report    one wire.ReportMessage; 204 first accept, 200 replay
//	POST /v1/finalize  close the round; {"reports": n}
//	GET  /v1/query     ?where=<expr> — wire.QueryResponse (409 until finalized)
//	POST /v1/query     wire.BatchQueryRequest — answers N queries concurrently
//	POST /v1/nextround open collection round k+1; round k keeps serving
//	GET  /v1/status    round progress + durability counters (see Status)
//	GET  /v1/healthz   liveness probe; always {"ok": true}
//
// The server separates the ingest plane from the serving plane: finalizing a
// round builds an immutable serve.Engine and swaps it in behind an atomic
// pointer, so queries never contend with report ingest. POST /v1/nextround
// then opens a fresh collector (same plan) for round k+1 while round k keeps
// answering /v1/query — serving an already-published DP output during a new
// collection is pure post-processing and does not touch the ε-LDP argument.
//
// Reports carry a device-chosen idempotency key (report_id). The first
// submission under a key is counted and answered 204; an identical
// resubmission — a device retrying because its acknowledgment was lost — is
// answered 200 without being counted again; a key reused for a different
// payload is refused with 409. With a write-ahead log attached (UseWAL),
// every counted report is durable before it is acknowledged, so a crashed
// server replays the log and resumes the round with nothing double-counted
// and nothing acknowledged lost.
package httpapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"sync"

	"felip/internal/archive"
	"felip/internal/core"
	"felip/internal/domain"
	"felip/internal/fo"
	"felip/internal/longitudinal"
	"felip/internal/metrics"
	"felip/internal/reportlog"
	"felip/internal/serve"
	"felip/internal/wire"
)

// testHookFinalize, when non-nil, runs after finalize releases the server
// lock and before the collector's estimation starts. Tests use it to probe
// endpoint liveness at a deterministic point inside an in-flight finalize.
var testHookFinalize func()

// maxReportBody caps a POST /v1/report body. A legitimate report is well
// under 200 bytes; the cap only exists so a hostile payload cannot exhaust
// memory.
const maxReportBody = 64 << 10

// reportKey fingerprints a report's payload so a reused report_id with a
// different payload can be told apart from an honest retry.
type reportKey struct {
	group int
	proto string
	value int
	seed  uint64
}

func keyOf(m wire.ReportMessage) reportKey {
	return reportKey{group: m.Group, proto: m.Proto, value: m.Value, seed: m.Seed}
}

// Server drives FELIP collection rounds over HTTP: an ingest plane (the
// current round's Collector, guarded by mu) and a serving plane (the last
// finalized round's engine, behind the QueryPlane's atomic pointer).
type Server struct {
	schema *domain.Schema
	planN  int
	opts   core.Options
	plan   wire.PlanMessage
	logf   func(format string, args ...any)
	// mode is the round's reporting mode; every report must claim it (FELIP
	// reports claim it by omission). modeName is its wire spelling ("" for
	// FELIP) and specAttrs each group's primary attribute index, against which
	// non-FELIP reports' attr fields are validated. All three are fixed by the
	// plan, which is identical every round.
	mode      fo.ReportMode
	modeName  string
	specAttrs []int
	// longitudinal holds the round's two-stage memoized-reporting budgets
	// (normalized by the collector), nil on a one-shot server. Every report
	// must match the claim: a longitudinal round refuses one-shot reports and
	// vice versa — mixing the two channels would corrupt the inversion.
	longitudinal *fo.Longitudinal

	// qp answers /v1/query from the last finalized round's engine; empty
	// until the first round finalizes.
	qp *QueryPlane

	mu    sync.RWMutex
	col   *core.Collector
	round int // collection round the collector belongs to (1-based)
	// walFactory opens round k's write-ahead log segment when NextRound runs
	// on a durable server.
	walFactory func(round int) (*reportlog.Log, error)
	agg        *core.Aggregator
	finalN     int
	wal        *reportlog.Log
	closed     bool // a WAL was attached and has been closed
	// dedup spans rounds: a device retrying its round-k report during round
	// k+1 must be answered "duplicate", not double-counted into a new round.
	dedup map[string]reportKey
	// finalizing is non-nil while a finalize is in flight; it closes when
	// the attempt's outcome is stored. Estimation runs outside mu so status,
	// health and (refused) reports stay live during finalization.
	finalizing chan struct{}
	finalErr   error
	// wireRejected counts report submissions refused before reaching the
	// collector (malformed body, failed wire validation, oversized,
	// idempotency-key conflicts). The collector counts plan-level rejects.
	wireRejected int
	// modeAccepted/modeRejected split the round's accepted and refused report
	// submissions by the reporting mode they claimed on the wire (display
	// names; unparseable claims charge the round's own mode). With one mode
	// per round the accepted map has a single key, but the rejected map shows
	// exactly which foreign-mode traffic is being refused.
	modeAccepted map[string]int
	modeRejected map[string]int
	// wireBytes totals the accepted reports' on-the-wire bytes by protocol
	// name since the round opened on this process: the JSON body on the
	// single-report path, the frame record on the batch path (frame headers
	// are shared transport overhead and are not attributed). It is the
	// server-side mirror of the client batcher's FrameBytes accounting, and
	// the operator's view of what each oracle's reports actually cost —
	// at mega-domains the per-report size, not the variance, is the axis
	// that separates HR from OUE/OLH.
	wireBytes map[string]int64
	// durable marks a server whose rounds must run against WAL segments.
	// UseWAL sets it; MarkDurable sets it for a server recovered purely from
	// an archive snapshot (its own segments were truncated, so there is no
	// log to attach, but the next round must still open one).
	durable bool
	// restored marks a server whose serving plane came from an archive
	// snapshot rather than live collection: the round is finalized but the
	// collector is empty and no WAL segment backs it.
	restored bool
	// store archives finalized rounds; nil = archiving disabled. segments
	// names the WAL segment chain so fully archived segments can be
	// truncated — only ever after the covering snapshot is fsynced.
	store    *archive.Store
	segments *reportlog.Segments

	// shardID names this server when it runs as a cluster shard; it travels
	// in the shard-state message so the coordinator can attribute counters.
	shardID string
	// walReplayed counts report records replayed from the WAL since startup —
	// nonzero means this process recovered from a crash.
	walReplayed int
	// shardState caches the sealed round's exported partial-aggregate state:
	// once the coordinator's first state pull seals the round, every repeat
	// pull (a lost response, a coordinator restart) re-serves the identical
	// message.
	shardState *wire.ShardStateMessage
	// sealedEmpty marks a round replayed from a finalize-of-zero WAL record:
	// the round closed with no reports, so there is no aggregate to rebuild
	// (Finalize refuses an empty round) but the round is over — reports are
	// refused and the next round may open.
	sealedEmpty bool

	// batch is the POST /v1/reports scratch, reused across frames under mu.
	batch batchScratch
}

// NewServer plans a round for an expected population of n users.
func NewServer(schema *domain.Schema, n int, opts core.Options) (*Server, error) {
	col, err := core.NewCollector(schema, n, opts)
	if err != nil {
		return nil, err
	}
	specs := col.Specs()
	specAttrs := make([]int, len(specs))
	for i, sp := range specs {
		specAttrs[i] = sp.AttrX
	}
	return &Server{
		schema:       schema,
		planN:        n,
		opts:         opts,
		col:          col,
		round:        1,
		plan:         wire.NewPlanMessage(schema, col.Epsilon(), col.Mode(), col.Longitudinal(), specs),
		mode:         col.Mode(),
		modeName:     wire.ModeName(col.Mode()),
		longitudinal: col.Longitudinal(),
		specAttrs:    specAttrs,
		logf:         log.Printf,
		qp:           NewQueryPlane(schema, log.Printf),
		dedup:        make(map[string]reportKey),
		modeAccepted: make(map[string]int),
		modeRejected: make(map[string]int),
		wireBytes:    make(map[string]int64),
	}, nil
}

// SetLogger redirects the server's operational log (default log.Printf).
func (s *Server) SetLogger(logf func(format string, args ...any)) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	s.logf = logf
	s.qp.logf = logf
}

// SetShardID names this server as a cluster shard; the name travels in the
// shard-state message served at /v1/shard/state.
func (s *Server) SetShardID(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.shardID = id
}

// UseWAL attaches an opened write-ahead log and replays its records into the
// round: every logged report is re-counted (under its original idempotency
// key) and a logged finalization re-closes the round, so the server resumes
// — or re-serves — exactly the round it crashed out of. Subsequent accepted
// reports are appended to the log before they are acknowledged.
func (s *Server) UseWAL(l *reportlog.Log, records []reportlog.Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal != nil {
		return fmt.Errorf("httpapi: write-ahead log already attached")
	}
	if s.col.N() > 0 || s.agg != nil {
		return fmt.Errorf("httpapi: cannot attach a write-ahead log to a round in progress")
	}
	if err := s.replayLocked(records); err != nil {
		return err
	}
	s.col.ResumeAssignment(s.col.N())
	s.wal = l
	s.durable = true
	return nil
}

// replayLocked re-counts one WAL segment's records into the current round's
// collector. Caller holds s.mu.
func (s *Server) replayLocked(records []reportlog.Record) error {
	for i, rec := range records {
		switch rec.Type {
		case reportlog.TypeReport:
			if _, dup := s.dedup[rec.ReportID]; dup {
				return fmt.Errorf("httpapi: wal record %d: duplicate report_id %q", i, rec.ReportID)
			}
			// A record's mode must match the round's plan: a segment written
			// under a different mode holds reports perturbed at a different
			// budget, and replaying them would silently corrupt the estimates.
			// Records without a mode (every v1 segment) replay as FELIP.
			recMode, err := fo.ParseReportMode(rec.Mode)
			if err != nil {
				return fmt.Errorf("httpapi: wal record %d: %w", i, err)
			}
			if recMode != s.mode {
				return fmt.Errorf("httpapi: wal record %d: mode %v does not match the round's plan mode %v",
					i, recMode, s.mode)
			}
			// Same discipline for the longitudinal claim: a segment of
			// two-stage reports must never fold into a one-shot round (their
			// values went through the memoized chain, not GRR(ε)), and a
			// one-shot segment must never fold into a longitudinal round.
			if rec.Longitudinal != (s.longitudinal != nil) {
				if rec.Longitudinal {
					return fmt.Errorf("httpapi: wal record %d: longitudinal report against the round's one-shot plan", i)
				}
				return fmt.Errorf("httpapi: wal record %d: one-shot report against the round's longitudinal plan", i)
			}
			msg := wire.ReportMessage{
				ReportID: rec.ReportID,
				Group:    rec.Group,
				Proto:    rec.Proto,
				Value:    rec.Value,
				Seed:     rec.Seed,
			}
			if err := msg.Validate(); err != nil {
				return fmt.Errorf("httpapi: wal record %d: %w", i, err)
			}
			rep, err := msg.Report()
			if err != nil {
				return fmt.Errorf("httpapi: wal record %d: %w", i, err)
			}
			if err := s.col.Add(rep); err != nil {
				return fmt.Errorf("httpapi: wal record %d: %w", i, err)
			}
			s.dedup[rec.ReportID] = keyOf(msg)
			s.modeAccepted[s.mode.String()]++
			s.walReplayed++
		case reportlog.TypeFinalize:
			if rec.Reports == 0 && s.col.N() == 0 {
				// The round was sealed empty. There is no aggregate to rebuild
				// (Finalize refuses a round of zero reports) — seal the
				// collector and mark the round closed so the replay chain can
				// continue into the next segment.
				s.col.Seal()
				s.sealedEmpty = true
				continue
			}
			if err := s.finalizeReplayLocked(); err != nil {
				return fmt.Errorf("httpapi: wal record %d: refinalizing: %w", i, err)
			}
		default:
			return fmt.Errorf("httpapi: wal record %d: unknown type %q", i, rec.Type)
		}
	}
	return nil
}

// finalizeReplayLocked re-closes the current round during startup replay —
// no query traffic exists yet, so estimating under the lock is fine — and
// swaps the round's engine in. Matrices are left cold; call WarmupServing
// once replay is done. Caller holds s.mu.
func (s *Server) finalizeReplayLocked() error {
	agg, err := s.col.Finalize()
	if err != nil {
		return err
	}
	eng, err := serve.NewEngine(agg)
	if err != nil {
		return err
	}
	s.agg = agg
	s.finalN = agg.N()
	s.qp.Serve(eng, s.round)
	return nil
}

// openRoundLocked replaces the collector with a fresh one for round+1 —
// BuildPlan is deterministic given schema, n and options, so every round
// publishes the same plan — and resets the per-round state. The serving
// plane is untouched: the previous round keeps answering queries. Caller
// holds s.mu.
func (s *Server) openRoundLocked() error {
	col, err := core.NewCollector(s.schema, s.planN, s.opts)
	if err != nil {
		return err
	}
	s.col = col
	s.round++
	s.agg = nil
	s.finalN = 0
	s.finalErr = nil
	s.wireRejected = 0
	clear(s.modeAccepted)
	clear(s.modeRejected)
	clear(s.wireBytes)
	s.shardState = nil
	s.sealedEmpty = false
	return nil
}

// NextRound opens collection round k+1 while the finalized round k keeps
// serving queries. On a durable server the current segment is closed and the
// factory registered with SetWALFactory opens the next one. Returns the new
// round number.
func (s *Server) NextRound() (int, error) { return s.AdvanceRound(0) }

// AdvanceRound is the idempotent round transition: target names the round the
// caller wants open. target == current round is a replayed transition and
// succeeds without side effects (the coordinator retrying a nextround whose
// acknowledgment was lost must not burn a round); target == current+1
// advances; any other target is a refused jump — a coordinator and shard that
// disagree by more than one round have diverged and must not paper over it.
// target 0 keeps the legacy unconditional advance.
func (s *Server) AdvanceRound(target int) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if target == s.round {
		return s.round, nil
	}
	if s.closed {
		return 0, fmt.Errorf("httpapi: server shutting down")
	}
	if target != 0 && target != s.round+1 {
		return 0, fmt.Errorf("httpapi: round is %d; cannot jump to round %d", s.round, target)
	}
	if s.agg == nil && s.shardState == nil && !s.sealedEmpty {
		return 0, fmt.Errorf("httpapi: round %d not finalized; finalize before opening the next round", s.round)
	}
	var next *reportlog.Log
	if s.durable {
		if s.walFactory == nil {
			return 0, fmt.Errorf("httpapi: durable server has no WAL factory for round %d (SetWALFactory)", s.round+1)
		}
		var err error
		next, err = s.walFactory(s.round + 1)
		if err != nil {
			return 0, fmt.Errorf("httpapi: opening round %d log: %w", s.round+1, err)
		}
	}
	if err := s.openRoundLocked(); err != nil {
		if next != nil {
			next.Close()
		}
		return 0, err
	}
	if s.wal != nil {
		if err := s.wal.Close(); err != nil {
			s.logf("httpapi: closing round %d log: %v", s.round-1, err)
		}
	}
	s.wal = next
	s.restored = false
	return s.round, nil
}

// ResumeNextRound replays a later round's WAL segment at startup: it opens
// round k+1, re-counts the segment's records, and attaches the segment's log.
// A segment is only ever created after its predecessor's finalize record, so
// the previous round must be finalized.
func (s *Server) ResumeNextRound(l *reportlog.Log, records []reportlog.Record) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, fmt.Errorf("httpapi: server shutting down")
	}
	if s.wal == nil && !s.restored {
		return 0, fmt.Errorf("httpapi: no write-ahead log attached (UseWAL first)")
	}
	if s.agg == nil && !s.sealedEmpty {
		return 0, fmt.Errorf("httpapi: round %d segment present but round %d never finalized", s.round+1, s.round)
	}
	if err := s.openRoundLocked(); err != nil {
		return 0, err
	}
	if err := s.replayLocked(records); err != nil {
		return 0, err
	}
	s.col.ResumeAssignment(s.col.N())
	old := s.wal
	s.wal = l
	s.durable = true
	s.restored = false
	if old != nil {
		if err := old.Close(); err != nil {
			s.logf("httpapi: closing round %d log: %v", s.round-1, err)
		}
	}
	return s.round, nil
}

// SetWALFactory registers the opener NextRound uses to create round k's WAL
// segment on a durable server.
func (s *Server) SetWALFactory(f func(round int) (*reportlog.Log, error)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.walFactory = f
}

// WarmupServing prepays every response-matrix fit of the engine currently
// serving (after a cold startup replay). No-op when nothing is served yet.
func (s *Server) WarmupServing() error { return s.qp.Warmup() }

// Close flushes and closes the write-ahead log, if one is attached. The
// server rejects reports afterwards (durability can no longer be honored).
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return nil
	}
	err := s.wal.Close()
	s.wal = nil
	s.closed = true
	return err
}

// Handler returns the HTTP handler serving the API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/plan", s.handlePlan)
	mux.HandleFunc("GET /v1/assign", s.handleAssign)
	mux.HandleFunc("POST /v1/report", s.handleReport)
	mux.HandleFunc("POST /v1/reports", s.handleReportBatch)
	mux.HandleFunc("POST /v1/finalize", s.handleFinalize)
	mux.HandleFunc("POST /v1/nextround", s.handleNextRound)
	mux.HandleFunc("GET /v1/query", s.qp.HandleQuery)
	mux.HandleFunc("POST /v1/query", s.qp.HandleQueryBatch)
	mux.HandleFunc("GET /v1/rounds", s.qp.HandleRounds(func() int {
		s.mu.RLock()
		defer s.mu.RUnlock()
		return s.round
	}))
	mux.HandleFunc("POST /v1/shard/state", s.handleShardState)
	mux.HandleFunc("GET /v1/replica/wal", s.handleReplicaWAL)
	mux.HandleFunc("GET /v1/status", s.handleStatus)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	return mux
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// The status line is gone already; all we can do is not lose the
		// evidence.
		s.logf("httpapi: encoding %T response: %v", v, err)
	}
}

func (s *Server) writeError(w http.ResponseWriter, status int, err error) {
	s.writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Server) handlePlan(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, s.plan)
}

func (s *Server) handleAssign(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	col := s.col
	finalized := s.agg != nil || s.finalizing != nil || s.shardState != nil || s.sealedEmpty
	s.mu.RUnlock()
	if finalized {
		s.writeError(w, http.StatusConflict, fmt.Errorf("collection round already finalized"))
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]int{"group": col.AssignGroup()})
}

// countWireReject records a report submission refused before it reached the
// collector's plan validation, charged to the round's own mode.
func (s *Server) countWireReject() { s.countWireRejectMode(s.mode.String()) }

// countWireRejectMode is countWireReject charged to a specific mode's
// counter — a report refused for claiming a foreign mode is charged to the
// mode it claimed, so the operator can see whose traffic is being refused.
func (s *Server) countWireRejectMode(key string) {
	s.mu.Lock()
	s.wireRejected++
	s.modeRejected[key]++
	s.mu.Unlock()
}

// countingReader counts the bytes read through it — the single-report
// path's measure of a report's on-the-wire cost.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxReportBody)
	body := &countingReader{r: r.Body}
	var msg wire.ReportMessage
	if err := json.NewDecoder(body).Decode(&msg); err != nil {
		s.countWireReject()
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("report body exceeds %d bytes", tooBig.Limit))
			return
		}
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("invalid report body: %w", err))
		return
	}
	if err := msg.Validate(); err != nil {
		s.countWireReject()
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	rep, err := msg.Report()
	if err != nil {
		s.countWireReject()
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	// Validate already proved the claim parses.
	repMode, _ := fo.ParseReportMode(msg.Mode)
	if repMode != s.mode {
		s.countWireRejectMode(repMode.String())
		s.writeError(w, http.StatusBadRequest,
			fmt.Errorf("report claims mode %v; the round's plan runs %v", repMode, s.mode))
		return
	}
	if msg.Longitudinal != (s.longitudinal != nil) {
		s.countWireReject()
		if msg.Longitudinal {
			s.writeError(w, http.StatusBadRequest,
				fmt.Errorf("report claims longitudinal reporting; the round's plan is one-shot"))
		} else {
			s.writeError(w, http.StatusBadRequest,
				fmt.Errorf("one-shot report refused: the round's plan is longitudinal (memoized two-stage)"))
		}
		return
	}
	if s.mode != fo.ModeFELIP {
		if msg.Attr == nil {
			s.countWireReject()
			s.writeError(w, http.StatusBadRequest, fmt.Errorf("%v report missing attr", s.mode))
			return
		}
		if msg.Group >= 0 && msg.Group < len(s.specAttrs) && *msg.Attr != s.specAttrs[msg.Group] {
			s.countWireReject()
			s.writeError(w, http.StatusBadRequest,
				fmt.Errorf("report attr %d does not match group %d's attribute %d",
					*msg.Attr, msg.Group, s.specAttrs[msg.Group]))
			return
		}
	}

	s.mu.Lock()
	if prev, seen := s.dedup[msg.ReportID]; seen {
		if prev != keyOf(msg) {
			s.wireRejected++
			s.modeRejected[s.mode.String()]++
			s.mu.Unlock()
			s.writeError(w, http.StatusConflict,
				fmt.Errorf("report_id %q reused with a different payload", msg.ReportID))
			return
		}
		s.mu.Unlock()
		// An honest retry: already counted, tell the device it can stop.
		s.writeJSON(w, http.StatusOK, map[string]string{"status": "duplicate"})
		return
	}
	if s.agg != nil || s.finalizing != nil || s.shardState != nil || s.sealedEmpty {
		// Finalized, sealed as a shard, or a finalize is in flight: the round
		// is closing and the
		// collector may not have sealed itself yet, so refuse here — otherwise
		// a report could slip in after the operator asked to close and before
		// the collector's snapshot, and be silently absent from the published
		// estimates.
		s.mu.Unlock()
		s.writeError(w, http.StatusConflict, core.ErrFinalized)
		return
	}
	if s.closed {
		s.mu.Unlock()
		s.writeError(w, http.StatusServiceUnavailable, fmt.Errorf("server shutting down"))
		return
	}
	// Validate against the plan first so the WAL only ever receives reports
	// the collector is guaranteed to accept on replay.
	if err := s.col.Check(rep); err != nil {
		s.mu.Unlock()
		// During an in-flight finalize s.agg is still nil but the collector
		// already refuses reports; that is a round-state conflict, not a bad
		// request.
		if errors.Is(err, core.ErrFinalized) {
			s.writeError(w, http.StatusConflict, err)
			return
		}
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	if s.wal != nil {
		rec := reportlog.ReportRecordMode(msg.ReportID, msg.Group, msg.Proto, msg.Value, msg.Seed, s.modeName)
		rec.Longitudinal = msg.Longitudinal
		if err := s.wal.Append(rec); err != nil {
			s.mu.Unlock()
			s.logf("httpapi: wal append: %v", err)
			// Not counted, not acknowledged: the device will retry.
			s.writeError(w, http.StatusInternalServerError, fmt.Errorf("report log unavailable"))
			return
		}
	}
	if err := s.col.Add(rep); err != nil {
		// Check passed under the same lock; this is unreachable short of a
		// bug, and the WAL record is harmless (replay revalidates).
		s.mu.Unlock()
		s.writeError(w, http.StatusInternalServerError, err)
		return
	}
	s.dedup[msg.ReportID] = keyOf(msg)
	s.modeAccepted[s.mode.String()]++
	s.wireBytes[msg.Proto] += body.n
	s.mu.Unlock()
	w.WriteHeader(http.StatusNoContent)
}

// finalize closes the round once; subsequent calls return the same count.
// The server lock is dropped while the collector estimates (the collector
// serializes concurrent finalizations itself and refuses new reports) and
// while the round's serving engine is built and warmed, so /v1/status,
// /v1/healthz and /v1/query — still answering from the previous round's
// engine — stay live; concurrent finalize requests wait for the in-flight
// attempt's outcome instead of re-running it. The new engine is swapped in
// fully warmed, before finalize acknowledges, so a client that saw the 200
// can immediately query the new round.
func (s *Server) finalize() (int, error) {
	s.mu.Lock()
	for {
		if s.agg != nil {
			n := s.finalN
			s.mu.Unlock()
			return n, nil
		}
		if s.finalizing == nil {
			break
		}
		inflight := s.finalizing
		s.mu.Unlock()
		<-inflight
		s.mu.Lock()
		if s.finalizing == nil {
			// The attempt settled: either s.agg is set (loop returns it) or
			// it failed and left the error for its waiters.
			if s.agg == nil {
				err := s.finalErr
				s.mu.Unlock()
				return 0, err
			}
		}
	}
	done := make(chan struct{})
	s.finalizing = done
	col := s.col
	round := s.round
	s.mu.Unlock()

	if hook := testHookFinalize; hook != nil {
		hook()
	}

	agg, err := col.Finalize()
	var eng *serve.Engine
	if err == nil {
		eng, err = serve.NewEngine(agg)
	}
	if err == nil {
		err = eng.Warmup()
	}

	s.mu.Lock()
	settle := func() {
		s.finalizing = nil
		close(done)
		s.mu.Unlock()
	}
	if err != nil {
		s.finalErr = err
		settle()
		return 0, err
	}
	if s.wal != nil {
		if err := s.wal.Append(reportlog.FinalizeRecord(agg.N())); err != nil {
			s.finalErr = fmt.Errorf("persisting finalization: %w", err)
			settle()
			return 0, s.finalErr
		}
		if err := s.wal.Sync(); err != nil {
			s.finalErr = fmt.Errorf("syncing report log: %w", err)
			settle()
			return 0, s.finalErr
		}
	}
	s.agg = agg
	n := agg.N()
	s.finalN = n
	s.qp.Serve(eng, round)
	store := s.store
	settle()
	// Archive outside the lock: snapshot fsync is disk I/O and must not block
	// status or the next round's ingest. Ordering is what matters — the WAL
	// finalize record is already synced, so a crash anywhere in here replays;
	// and archiveRound truncates segments only after its snapshot is durable.
	if store != nil {
		s.archiveRound(col, agg, round)
	}
	return n, nil
}

func (s *Server) handleFinalize(w http.ResponseWriter, _ *http.Request) {
	n, err := s.finalize()
	if err != nil {
		s.writeError(w, http.StatusConflict, err)
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]int{"reports": n})
}

// handleNextRound accepts an optional body {"round": k} naming the target
// round, making the transition idempotent: repeating an already-applied
// transition answers 200 with the current round, a skip answers 409. An empty
// body keeps the legacy unconditional advance.
func (s *Server) handleNextRound(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Round int `json:"round"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("invalid nextround body: %w", err))
		return
	}
	if req.Round < 0 {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("negative target round %d", req.Round))
		return
	}
	round, err := s.AdvanceRound(req.Round)
	if err != nil {
		s.writeError(w, http.StatusConflict, err)
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]int{"round": round})
}

// Status is the operator view of the round returned by GET /v1/status.
type Status struct {
	Reports   int  `json:"reports"`
	Groups    int  `json:"groups"`
	Finalized bool `json:"finalized"`
	// Round is the collection round the collector belongs to (1-based).
	Round int `json:"round"`
	// ServedRound is the round whose engine is answering queries (0 until the
	// first finalize). During a new collection it trails Round by one.
	ServedRound int `json:"served_round,omitempty"`
	// Finalizing reports that the round is closing: estimation is running
	// and new reports are refused, but the final aggregator is not ready.
	Finalizing bool `json:"finalizing,omitempty"`
	// GroupCounts is the number of accepted reports per group.
	GroupCounts []int `json:"group_counts"`
	// Rejected is the number of report submissions refused since the round
	// opened — malformed bodies, failed validation, unknown groups,
	// out-of-range values, idempotency-key conflicts. A nonzero value means
	// misbehaving or malicious clients; before this counter they were
	// dropped invisibly.
	Rejected int `json:"rejected"`
	// Mode is the round's reporting mode ("FELIP", "SPL", "RS+FD").
	Mode string `json:"mode"`
	// Longitudinal echoes the round's two-stage budgets when memoized
	// reporting is on (absent otherwise), and the three accounting figures
	// below state the privacy spend for a device that reported every round so
	// far: EpsPerRound is what a single-round observer learns (ε_1),
	// EpsCumulative what an unbounded all-rounds observer learns — fixed at
	// ε_perm + ε_1, independent of Round — and EpsFreshEquivalent what the
	// same device would have leaked under fresh-ε reporting at the same
	// per-round budget (Round·ε_1, growing without bound).
	Longitudinal       *fo.Longitudinal `json:"longitudinal,omitempty"`
	EpsPerRound        float64          `json:"eps_per_round,omitempty"`
	EpsCumulative      float64          `json:"eps_cumulative,omitempty"`
	EpsFreshEquivalent float64          `json:"eps_fresh_equivalent,omitempty"`
	// ModeAccepted and ModeRejected split the accepted and wire-refused
	// submissions by the mode the report claimed. A round runs one mode, so
	// nonzero rejected counts under another mode mean clients configured for
	// the wrong pipeline are knocking.
	ModeAccepted map[string]int `json:"mode_accepted,omitempty"`
	ModeRejected map[string]int `json:"mode_rejected,omitempty"`
	// WireBytesTotal totals the accepted reports' on-the-wire bytes by
	// protocol since the round opened on this process: JSON body bytes on
	// the single-report path, frame record bytes on the batch path. At
	// mega-domains this is the axis that separates HR (constant ~10-byte
	// records) from the O(L) protocols.
	WireBytesTotal map[string]int64 `json:"wire_bytes_total,omitempty"`
	// Durable reports whether a write-ahead log is attached.
	Durable bool `json:"durable"`
	// WALPos is the log's end offset in bytes (0 when not durable).
	WALPos int64 `json:"wal_pos,omitempty"`
	// DedupEntries is the size of the idempotency-key index.
	DedupEntries int `json:"dedup_entries"`
	// ShardID names this server when it runs as a cluster shard.
	ShardID string `json:"shard_id,omitempty"`
	// Sealed reports that the round was sealed by a coordinator state pull:
	// its partial aggregate is exported and new reports are refused.
	Sealed bool `json:"sealed,omitempty"`
	// WALReplayed is the number of report records replayed from the
	// write-ahead log since startup — nonzero means this process recovered
	// from a crash.
	WALReplayed int `json:"wal_replayed,omitempty"`
	// Restored reports that the serving plane was recovered from an archive
	// snapshot rather than rebuilt by WAL replay.
	Restored bool `json:"restored,omitempty"`
	// RoundsRetained is the number of rounds the archive currently holds
	// (0 when archiving is disabled).
	RoundsRetained int `json:"rounds_retained,omitempty"`
	// Metrics is the process-wide instrument snapshot (fold/estimation
	// timers and counters; see internal/metrics).
	Metrics map[string]int64 `json:"metrics,omitempty"`
}

func (s *Server) handleStatus(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	col := s.col
	st := Status{
		Round:        s.round,
		Finalized:    s.agg != nil,
		Finalizing:   s.agg == nil && s.finalizing != nil,
		Durable:      s.wal != nil || s.durable,
		DedupEntries: len(s.dedup),
		Rejected:     s.wireRejected,
		Mode:         s.mode.String(),
		ShardID:      s.shardID,
		Sealed:       s.shardState != nil || s.sealedEmpty,
		WALReplayed:  s.walReplayed,
		Restored:     s.restored,
	}
	if s.longitudinal != nil {
		acct := longitudinal.Accountant{Cfg: *s.longitudinal}
		st.Longitudinal = s.longitudinal
		st.EpsPerRound = acct.PerRound()
		st.EpsCumulative = acct.Cumulative(s.round)
		st.EpsFreshEquivalent = acct.FreshCumulative(s.round)
	}
	if len(s.modeAccepted) > 0 {
		st.ModeAccepted = make(map[string]int, len(s.modeAccepted))
		for k, v := range s.modeAccepted {
			st.ModeAccepted[k] = v
		}
	}
	if len(s.modeRejected) > 0 {
		st.ModeRejected = make(map[string]int, len(s.modeRejected))
		for k, v := range s.modeRejected {
			st.ModeRejected[k] = v
		}
	}
	if len(s.wireBytes) > 0 {
		st.WireBytesTotal = make(map[string]int64, len(s.wireBytes))
		for k, v := range s.wireBytes {
			st.WireBytesTotal[k] = v
		}
	}
	if s.wal != nil {
		st.WALPos = s.wal.Pos()
	}
	finalN := s.finalN
	store := s.store
	s.mu.RUnlock()
	if round, ok := s.qp.ServedRound(); ok {
		st.ServedRound = round
	}
	if store != nil {
		st.RoundsRetained = len(store.Rounds())
	}
	st.Rejected += col.Rejected()
	// A restored round's collector is empty; the snapshot's count is the
	// round's report total.
	if st.Finalized {
		st.Reports = finalN
	} else {
		st.Reports = col.N()
	}
	st.Groups = len(s.plan.Grids)
	st.GroupCounts = col.GroupCounts()
	st.Metrics = metrics.Snapshot()
	s.writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}
