// Package httpapi exposes a FELIP collection round over HTTP — the
// deployment architecture the paper assumes (untrusted aggregator, users
// submitting ε-LDP reports from their own devices) — plus the matching Go
// client.
//
// Endpoints (JSON):
//
//	GET  /v1/plan      the published collection plan (wire.PlanMessage)
//	GET  /v1/assign    {"group": g} — next user-group assignment
//	POST /v1/report    one wire.ReportMessage; 204 on success
//	POST /v1/finalize  close the round; {"reports": n}
//	GET  /v1/query     ?where=<expr> — wire.QueryResponse (409 until finalized)
//	GET  /v1/status    {"reports": n, "groups": m, "finalized": bool}
package httpapi

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"felip/internal/core"
	"felip/internal/domain"
	"felip/internal/query"
	"felip/internal/wire"
)

// Server drives one FELIP collection round over HTTP.
type Server struct {
	schema *domain.Schema
	col    *core.Collector
	plan   wire.PlanMessage

	mu  sync.RWMutex
	agg *core.Aggregator
}

// NewServer plans a round for an expected population of n users.
func NewServer(schema *domain.Schema, n int, opts core.Options) (*Server, error) {
	col, err := core.NewCollector(schema, n, opts)
	if err != nil {
		return nil, err
	}
	return &Server{
		schema: schema,
		col:    col,
		plan:   wire.NewPlanMessage(schema, col.Epsilon(), col.Specs()),
	}, nil
}

// Handler returns the HTTP handler serving the API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/plan", s.handlePlan)
	mux.HandleFunc("GET /v1/assign", s.handleAssign)
	mux.HandleFunc("POST /v1/report", s.handleReport)
	mux.HandleFunc("POST /v1/finalize", s.handleFinalize)
	mux.HandleFunc("GET /v1/query", s.handleQuery)
	mux.HandleFunc("GET /v1/status", s.handleStatus)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Server) handlePlan(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.plan)
}

func (s *Server) handleAssign(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	finalized := s.agg != nil
	s.mu.RUnlock()
	if finalized {
		writeError(w, http.StatusConflict, fmt.Errorf("collection round already finalized"))
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"group": s.col.AssignGroup()})
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	var msg wire.ReportMessage
	if err := json.NewDecoder(r.Body).Decode(&msg); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid report body: %w", err))
		return
	}
	rep, err := msg.Report()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := s.col.Add(rep); err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// finalize closes the round once; subsequent calls return the same count.
func (s *Server) finalize() (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.agg != nil {
		return s.agg.N(), nil
	}
	agg, err := s.col.Finalize()
	if err != nil {
		return 0, err
	}
	s.agg = agg
	return agg.N(), nil
}

func (s *Server) handleFinalize(w http.ResponseWriter, _ *http.Request) {
	n, err := s.finalize()
	if err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"reports": n})
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	agg := s.agg
	s.mu.RUnlock()
	if agg == nil {
		writeError(w, http.StatusConflict, fmt.Errorf("collection round not finalized yet"))
		return
	}
	where := r.URL.Query().Get("where")
	if where == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("missing where parameter"))
		return
	}
	q, err := query.Parse(where, s.schema)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	est, err := agg.Answer(q)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	resp := wire.QueryResponse{Query: q.String(), Estimate: est, N: agg.N()}
	if ee, err := agg.ExpectedError(q); err == nil {
		resp.ExpectedError = ee
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleStatus(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	finalized := s.agg != nil
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"reports":   s.col.N(),
		"groups":    len(s.plan.Grids),
		"finalized": finalized,
	})
}
