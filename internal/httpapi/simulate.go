package httpapi

import (
	"fmt"

	"felip/internal/core"
	"felip/internal/dataset"
	"felip/internal/fo"
)

// Simulate drives the server's collection round in-process with a synthetic
// population drawn from the named generator, then finalizes the round so
// /v1/query is immediately usable. Intended for demos and smoke tests; real
// deployments receive reports over HTTP instead.
func Simulate(s *Server, genName string, users int, seed uint64) error {
	if users < 1 {
		return fmt.Errorf("httpapi: need at least 1 simulated user")
	}
	gen, err := dataset.ByName(genName)
	if err != nil {
		return err
	}
	if seed == 0 {
		seed = fo.AutoSeed()
	}
	// Capture the current round's collector: a concurrent NextRound must not
	// make the simulation straddle two rounds.
	s.mu.RLock()
	col := s.col
	s.mu.RUnlock()
	ds := gen.Generate(s.schema, users, seed)
	device, err := core.NewModeClient(col.Specs(), col.Mode(), col.Epsilon(), seed+1)
	if err != nil {
		return err
	}
	for row := 0; row < users; row++ {
		reps, err := device.PerturbAll(col.AssignGroup(), func(attr int) int { return ds.Value(row, attr) })
		if err != nil {
			return err
		}
		for _, rep := range reps {
			if err := col.Add(rep.Report); err != nil {
				return err
			}
		}
	}
	_, err = s.finalize()
	return err
}
