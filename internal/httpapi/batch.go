package httpapi

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"

	"felip/internal/core"
	"felip/internal/fo"
	"felip/internal/reportlog"
	"felip/internal/wire"
)

// This file is the server half of the batched binary ingest path
// (POST /v1/reports): one wire frame carries N reports, and the whole frame
// is ingested under a single lock hold with a single WAL write and a single
// fsync. The batch is a transport optimization, not a semantic unit — every
// report inside it gets the byte-identical disposition it would get on the
// single-report JSON path, and the final estimates cannot tell the two
// ingest paths apart.
//
// Durability contract: a frame's accepted reports are appended to the WAL in
// one Write and fsynced once before the 200 goes out. A crash before the
// sync loses at most an unacknowledged frame; the client retries it and the
// idempotency keys turn the re-ingest into duplicates. Holding s.mu across
// the frame makes the batch atomic with respect to a concurrent seal or
// finalize: a frame never straddles a round boundary.

// maxBatchFrameBody caps a POST /v1/reports body: the largest legal frame plus
// its header, with nothing to spare for a hostile length claim.
const maxBatchFrameBody = wire.MaxFramePayload + 64

// batchBodyPool recycles frame read buffers across batch requests so a
// steady ingest load costs zero body allocations.
var batchBodyPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 64<<10)
		return &b
	},
}

// stagedReport is one frame report that passed every admission check and
// awaits the frame's single WAL write.
type stagedReport struct {
	id  string
	key reportKey
	rep core.Report
	// bytes is the report's share of the frame — its record's encoded size,
	// excluding the frame header — charged to the per-protocol wire counter
	// only if the whole frame lands.
	bytes int
}

// batchScratch is the batch ingest path's reusable per-server scratch. It is
// only touched while s.mu is held, so one set of buffers serves every
// request without per-report allocations.
type batchScratch struct {
	reader wire.FrameReader
	staged []stagedReport
	// seen maps a report_id staged earlier in this frame to its staged index,
	// so within-frame duplicates get the same duplicate/conflict answer as
	// cross-request retries.
	seen map[string]int
	recs []reportlog.Record
}

// IngestFrame ingests one binary batch frame and returns the per-report
// dispositions. A frame-level refusal (damage, malformed records, a closed
// server, a failed WAL write) returns a non-nil error with the HTTP status
// to answer; the whole frame is charged to the wire-rejection counter per
// report, and no report of the frame was counted. On success every report
// was classified exactly as the single-report path would have and the
// accepted ones are durable.
//
// Exported so the benchmark harness can drive the decode→dedup→fold path
// directly and meter its allocations.
func (s *Server) IngestFrame(frame []byte) (wire.BatchReportResponse, int, error) {
	var resp wire.BatchReportResponse

	s.mu.Lock()
	b := &s.batch
	n, err := b.reader.Reset(frame)
	if err != nil {
		s.wireRejected += wire.FrameReportCount(frame)
		s.modeRejected[s.mode.String()] += wire.FrameReportCount(frame)
		s.mu.Unlock()
		return resp, http.StatusBadRequest, err
	}
	if s.longitudinal != nil {
		// The binary frame format has no longitudinal marker, so a frame can
		// only ever carry one-shot reports — and a longitudinal round must not
		// fold those: they were perturbed through a different channel than the
		// round's two-stage chain inverts. Refuse the frame wholesale; the
		// longitudinal path is the single-report JSON endpoint.
		s.wireRejected += n
		s.modeRejected[s.mode.String()] += n
		s.mu.Unlock()
		return resp, http.StatusBadRequest,
			fmt.Errorf("the round's plan is longitudinal; batch frames carry one-shot reports only — use POST /v1/report")
	}
	if b.reader.Mode != s.mode {
		// A frame claims its mode once for all its reports; a foreign-mode
		// frame is refused wholesale — its reports were perturbed under a
		// different budget and none of them can be folded here.
		s.wireRejected += n
		s.modeRejected[b.reader.Mode.String()] += n
		s.mu.Unlock()
		return resp, http.StatusBadRequest,
			fmt.Errorf("frame claims mode %v; the round's plan runs %v", b.reader.Mode, s.mode)
	}
	if s.closed {
		s.mu.Unlock()
		return resp, http.StatusServiceUnavailable, fmt.Errorf("server shutting down")
	}

	b.staged = b.staged[:0]
	if b.seen == nil {
		b.seen = make(map[string]int)
	} else {
		clear(b.seen)
	}
	dispositions := make([]int, 0, n)
	closedRound := s.agg != nil || s.finalizing != nil || s.shardState != nil || s.sealedEmpty

	// Pass 1 — classify every report without mutating round state, so a
	// malformed record discovered mid-frame can still refuse the whole frame
	// with nothing counted.
	for b.reader.Next() {
		disp := 0
		rep := b.reader.Report
		key := reportKey{
			group: rep.Group,
			proto: wire.ProtoName(rep.Proto),
			value: rep.Value,
			seed:  rep.Seed,
		}
		if prev, dup := s.dedup[string(b.reader.ID)]; dup {
			if prev == key {
				disp = wire.DispositionDuplicate
			} else {
				disp = wire.DispositionConflict
				s.wireRejected++
				s.modeRejected[s.mode.String()]++
			}
		} else if j, dup := b.seen[string(b.reader.ID)]; dup {
			if b.staged[j].key == key {
				disp = wire.DispositionDuplicate
			} else {
				disp = wire.DispositionConflict
				s.wireRejected++
				s.modeRejected[s.mode.String()]++
			}
		} else if closedRound {
			disp = wire.DispositionConflict
		} else if err := s.col.Check(rep); err != nil {
			if errors.Is(err, core.ErrFinalized) {
				disp = wire.DispositionConflict
			} else {
				disp = wire.DispositionRejected
			}
		} else if s.mode != fo.ModeFELIP && b.reader.Attr != s.specAttrs[rep.Group] {
			// Check proved the group in range; a v2 record whose attr does not
			// name that group's attribute is a confused encoder.
			disp = wire.DispositionRejected
			s.wireRejected++
			s.modeRejected[s.mode.String()]++
		} else {
			disp = wire.DispositionAccepted
			id := string(b.reader.ID)
			b.seen[id] = len(b.staged)
			b.staged = append(b.staged, stagedReport{id: id, key: key, rep: rep, bytes: b.reader.RecordBytes()})
		}
		dispositions = append(dispositions, disp)
	}
	if err := b.reader.Err(); err != nil {
		// The envelope checksum held but a record inside lied: a buggy or
		// hostile encoder. Refuse the frame wholesale — some reports may
		// already have classified clean, but none were counted.
		s.wireRejected += wire.FrameReportCount(frame)
		s.modeRejected[s.mode.String()] += wire.FrameReportCount(frame)
		s.mu.Unlock()
		return resp, http.StatusBadRequest, err
	}

	// Pass 2 — one WAL write for the whole frame, then fold. A failed write
	// refuses the frame before anything is counted, so the client's retry
	// cannot double-count.
	if len(b.staged) > 0 && s.wal != nil {
		b.recs = b.recs[:0]
		for i := range b.staged {
			st := &b.staged[i]
			b.recs = append(b.recs, reportlog.ReportRecordMode(st.id, st.rep.Group, st.key.proto, st.rep.Value, st.rep.Seed, s.modeName))
		}
		if err := s.wal.AppendBatch(b.recs); err != nil {
			s.mu.Unlock()
			s.logf("httpapi: wal batch append: %v", err)
			return resp, http.StatusInternalServerError, fmt.Errorf("report log unavailable")
		}
	}
	for i := range b.staged {
		st := &b.staged[i]
		if err := s.col.Add(st.rep); err != nil {
			// Check passed under this same lock hold; unreachable short of a
			// bug. Reports staged before this one are counted and logged —
			// answer the frame as a server error so the client retries and the
			// dedup index sorts it out.
			s.mu.Unlock()
			return resp, http.StatusInternalServerError, err
		}
		s.dedup[st.id] = st.key
		s.wireBytes[st.key.proto] += int64(st.bytes)
	}
	s.modeAccepted[s.mode.String()] += len(b.staged)
	accepted := len(b.staged)
	wal := s.wal
	resp.Round = s.round
	s.mu.Unlock()

	// One fsync per frame, outside the lock so concurrent frames overlap
	// their disk waits with other shards' classification. The ack only goes
	// out after the sync: a crash in between loses nothing acknowledged.
	if accepted > 0 && wal != nil {
		if err := wal.Sync(); err != nil {
			s.logf("httpapi: wal batch sync: %v", err)
			// Counted but not durable and not acknowledged; the retry turns
			// into all-duplicates.
			return resp, http.StatusInternalServerError, fmt.Errorf("report log unavailable")
		}
	}

	for _, d := range dispositions {
		switch d {
		case wire.DispositionAccepted:
			resp.Accepted++
		case wire.DispositionDuplicate:
			resp.Duplicate++
		case wire.DispositionConflict:
			resp.Conflict++
		default:
			resp.Rejected++
		}
	}
	resp.Dispositions = dispositions
	return resp, http.StatusOK, nil
}

// handleReportBatch serves POST /v1/reports: a binary wire frame in, a JSON
// BatchReportResponse out.
func (s *Server) handleReportBatch(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxBatchFrameBody)
	bufp := batchBodyPool.Get().(*[]byte)
	defer batchBodyPool.Put(bufp)
	buf, err := readAllInto((*bufp)[:0], r.Body)
	*bufp = buf[:0]
	if err != nil {
		// An oversized or unreadable frame is N refused submissions, not one:
		// charge the header's claim (or 1 if even that is gone).
		s.countWireRejects(wire.FrameReportCount(buf))
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("batch frame exceeds %d bytes", tooBig.Limit))
			return
		}
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("reading batch frame: %w", err))
		return
	}
	resp, status, err := s.IngestFrame(buf)
	if err != nil {
		s.writeError(w, status, err)
		return
	}
	s.writeJSON(w, status, resp)
}

// countWireRejects charges n refused report submissions to the rejection
// counter — a refused batch frame counts every report it claimed to carry.
func (s *Server) countWireRejects(n int) {
	s.mu.Lock()
	s.wireRejected += n
	s.mu.Unlock()
}

// readAllInto is io.ReadAll into a caller-owned buffer, so pooled buffers
// absorb the growth across requests.
func readAllInto(buf []byte, r io.Reader) ([]byte, error) {
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := r.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err != nil {
			if err == io.EOF {
				return buf, nil
			}
			return buf, err
		}
	}
}
