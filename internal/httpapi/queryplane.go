package httpapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync/atomic"

	"felip/internal/domain"
	"felip/internal/metrics"
	"felip/internal/query"
	"felip/internal/serve"
	"felip/internal/wire"
)

// roundServed reports the collection round whose engine is currently
// answering queries (0 until the first round finalizes).
var roundServed = metrics.GetGauge("httpapi.round_served")

// servingState is the immutable query-serving side of one finalized round;
// the owner swaps a new one in atomically at each finalize, so readers never
// take a lock.
type servingState struct {
	eng   *serve.Engine
	round int
}

// QueryPlane is the read-only half of a FELIP service: the last finalized
// round's engine behind an atomic pointer, plus the HTTP handlers that answer
// /v1/query against it. Both the single-node Server and the cluster
// coordinator embed one — the serving surface is identical whether the
// estimates came from one collector or from an exact merge of shard states.
type QueryPlane struct {
	schema *domain.Schema
	logf   func(format string, args ...any)

	// serving is nil until the first round finalizes. Swapped whole — never
	// mutated in place.
	serving atomic.Pointer[servingState]
}

// NewQueryPlane returns an empty plane (no round served yet).
func NewQueryPlane(schema *domain.Schema, logf func(format string, args ...any)) *QueryPlane {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &QueryPlane{schema: schema, logf: logf}
}

// Serve swaps in a finalized round's engine; queries answer from it until the
// next swap. The previous engine keeps answering in-flight requests.
func (p *QueryPlane) Serve(eng *serve.Engine, round int) {
	p.serving.Store(&servingState{eng: eng, round: round})
	roundServed.Set(int64(round))
}

// ServedRound reports the round currently answering queries (0, false before
// the first finalize).
func (p *QueryPlane) ServedRound() (int, bool) {
	if st := p.serving.Load(); st != nil {
		return st.round, true
	}
	return 0, false
}

// Warmup prepays every response-matrix fit of the engine currently serving.
// No-op when nothing is served yet.
func (p *QueryPlane) Warmup() error {
	if st := p.serving.Load(); st != nil {
		return st.eng.Warmup()
	}
	return nil
}

func writeJSONWith(logf func(string, ...any), w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// The status line is gone already; all we can do is not lose the
		// evidence.
		logf("httpapi: encoding %T response: %v", v, err)
	}
}

func writeErrorWith(logf func(string, ...any), w http.ResponseWriter, status int, err error) {
	writeJSONWith(logf, w, status, map[string]string{"error": err.Error()})
}

// HandleQuery answers GET /v1/query?where=<expr>.
func (p *QueryPlane) HandleQuery(w http.ResponseWriter, r *http.Request) {
	st := p.serving.Load()
	if st == nil {
		writeErrorWith(p.logf, w, http.StatusConflict, fmt.Errorf("collection round not finalized yet"))
		return
	}
	where := r.URL.Query().Get("where")
	if where == "" {
		writeErrorWith(p.logf, w, http.StatusBadRequest, fmt.Errorf("missing where parameter"))
		return
	}
	q, err := query.Parse(where, p.schema)
	if err != nil {
		writeErrorWith(p.logf, w, http.StatusBadRequest, err)
		return
	}
	est, err := st.eng.Answer(q)
	if err != nil {
		writeErrorWith(p.logf, w, http.StatusBadRequest, err)
		return
	}
	resp := wire.QueryResponse{Query: q.String(), Estimate: est, N: st.eng.N(), Round: st.round}
	if ee, err := st.eng.ExpectedError(q); err == nil {
		resp.ExpectedError = ee
	}
	writeJSONWith(p.logf, w, http.StatusOK, resp)
}

// Batch query limits: enough for real analyst workloads, small enough that a
// hostile batch cannot monopolize the process.
const (
	maxBatchQueries = 1024
	maxBatchBody    = 1 << 20
)

// HandleQueryBatch answers POST /v1/query (wire.BatchQueryRequest).
func (p *QueryPlane) HandleQueryBatch(w http.ResponseWriter, r *http.Request) {
	st := p.serving.Load()
	if st == nil {
		writeErrorWith(p.logf, w, http.StatusConflict, fmt.Errorf("collection round not finalized yet"))
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxBatchBody)
	var req wire.BatchQueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeErrorWith(p.logf, w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("batch body exceeds %d bytes", tooBig.Limit))
			return
		}
		writeErrorWith(p.logf, w, http.StatusBadRequest, fmt.Errorf("invalid batch body: %w", err))
		return
	}
	if len(req.Queries) == 0 {
		writeErrorWith(p.logf, w, http.StatusBadRequest, fmt.Errorf("empty batch"))
		return
	}
	if len(req.Queries) > maxBatchQueries {
		writeErrorWith(p.logf, w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("batch of %d queries exceeds %d", len(req.Queries), maxBatchQueries))
		return
	}

	// Parse failures stay per-item: the rest of the batch is still answered,
	// concurrently, by the engine.
	items := make([]wire.BatchQueryItem, len(req.Queries))
	qs := make([]query.Query, 0, len(req.Queries))
	idx := make([]int, 0, len(req.Queries))
	for i, where := range req.Queries {
		items[i].Query = where
		q, err := query.Parse(where, p.schema)
		if err != nil {
			items[i].Error = err.Error()
			continue
		}
		items[i].Query = q.String()
		qs = append(qs, q)
		idx = append(idx, i)
	}
	for k, res := range st.eng.AnswerBatch(qs) {
		i := idx[k]
		if res.Err != nil {
			items[i].Error = res.Err.Error()
			continue
		}
		items[i].Estimate = res.Estimate
		if ee, err := st.eng.ExpectedError(qs[k]); err == nil {
			items[i].ExpectedError = ee
		}
	}
	writeJSONWith(p.logf, w, http.StatusOK, wire.BatchQueryResponse{Round: st.round, N: st.eng.N(), Results: items})
}
