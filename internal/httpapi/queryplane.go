package httpapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"

	"felip/internal/archive"
	"felip/internal/domain"
	"felip/internal/metrics"
	"felip/internal/query"
	"felip/internal/serve"
	"felip/internal/wire"
)

// roundServed reports the collection round whose engine is currently
// answering queries (0 until the first round finalizes).
var roundServed = metrics.GetGauge("httpapi.round_served")

// servingState is the immutable query-serving side of one finalized round;
// the owner swaps a new one in atomically at each finalize, so readers never
// take a lock.
type servingState struct {
	eng   *serve.Engine
	round int
}

// QueryPlane is the read-only half of a FELIP service: the last finalized
// round's engine behind an atomic pointer, plus the HTTP handlers that answer
// /v1/query against it. Both the single-node Server and the cluster
// coordinator embed one — the serving surface is identical whether the
// estimates came from one collector or from an exact merge of shard states.
type QueryPlane struct {
	schema *domain.Schema
	logf   func(format string, args ...any)

	// serving is nil until the first round finalizes. Swapped whole — never
	// mutated in place.
	serving atomic.Pointer[servingState]
	// history, when set, answers round-targeted and window/decay queries from
	// archived rounds (the time-travel plane). Nil = current round only.
	history atomic.Pointer[archive.Store]
}

// SetHistory attaches the archive the plane answers historical queries from.
func (p *QueryPlane) SetHistory(store *archive.Store) {
	p.history.Store(store)
}

// NewQueryPlane returns an empty plane (no round served yet).
func NewQueryPlane(schema *domain.Schema, logf func(format string, args ...any)) *QueryPlane {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &QueryPlane{schema: schema, logf: logf}
}

// Serve swaps in a finalized round's engine; queries answer from it until the
// next swap. The previous engine keeps answering in-flight requests.
func (p *QueryPlane) Serve(eng *serve.Engine, round int) {
	p.serving.Store(&servingState{eng: eng, round: round})
	roundServed.Set(int64(round))
}

// ServedRound reports the round currently answering queries (0, false before
// the first finalize).
func (p *QueryPlane) ServedRound() (int, bool) {
	if st := p.serving.Load(); st != nil {
		return st.round, true
	}
	return 0, false
}

// Warmup prepays every response-matrix fit of the engine currently serving.
// No-op when nothing is served yet.
func (p *QueryPlane) Warmup() error {
	if st := p.serving.Load(); st != nil {
		return st.eng.Warmup()
	}
	return nil
}

func writeJSONWith(logf func(string, ...any), w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// The status line is gone already; all we can do is not lose the
		// evidence.
		logf("httpapi: encoding %T response: %v", v, err)
	}
}

func writeErrorWith(logf func(string, ...any), w http.ResponseWriter, status int, err error) {
	writeJSONWith(logf, w, status, map[string]string{"error": err.Error()})
}

// resolveEngine picks the engine a round-targeted request answers from:
// round 0 or the served round → the live engine; any other round → the
// archive. A server without an archive refuses foreign rounds loudly — a
// silent current-round answer would let an analyst mistake today's data for
// history.
func (p *QueryPlane) resolveEngine(round int) (*serve.Engine, int, int, error) {
	st := p.serving.Load()
	if round != 0 && (st == nil || st.round != round) {
		hist := p.history.Load()
		if hist == nil {
			return nil, 0, http.StatusConflict,
				fmt.Errorf("round %d requested but this server keeps no archive; only the current round is queryable", round)
		}
		eng, err := hist.Engine(round)
		if err != nil {
			return nil, 0, http.StatusNotFound, err
		}
		return eng, round, 0, nil
	}
	if st == nil {
		return nil, 0, http.StatusConflict, fmt.Errorf("collection round not finalized yet")
	}
	return st.eng, st.round, 0, nil
}

// parseRoundRange parses the rounds= window selector: "all", "<a>..<b>", or
// a single round "<a>". lo..0 is not expressible; hi = 0 means "newest".
func parseRoundRange(spec string) (lo, hi int, err error) {
	if spec == "all" {
		return 1, 0, nil
	}
	a, b, found := strings.Cut(spec, "..")
	lo, err = strconv.Atoi(a)
	if err != nil || lo < 1 {
		return 0, 0, fmt.Errorf("invalid rounds selector %q (want \"all\", \"a..b\", or a round number)", spec)
	}
	if !found {
		return lo, lo, nil
	}
	hi, err = strconv.Atoi(b)
	if err != nil || hi < lo {
		return 0, 0, fmt.Errorf("invalid rounds selector %q (want \"all\", \"a..b\", or a round number)", spec)
	}
	return lo, hi, nil
}

// handleWindowQuery answers a rounds=… aggregate: the query evaluated over
// every archived round in the window, combined as a population-weighted mean
// (internal/stream horizon semantics), or with exponential decay toward the
// newest selected round when halflife is given.
func (p *QueryPlane) handleWindowQuery(w http.ResponseWriter, q query.Query, spec, halflife string) {
	hist := p.history.Load()
	if hist == nil {
		writeErrorWith(p.logf, w, http.StatusConflict,
			fmt.Errorf("window query requested but this server keeps no archive"))
		return
	}
	lo, hi, err := parseRoundRange(spec)
	if err != nil {
		writeErrorWith(p.logf, w, http.StatusBadRequest, err)
		return
	}
	var est float64
	if halflife != "" {
		h, err := strconv.ParseFloat(halflife, 64)
		if err != nil || h <= 0 {
			writeErrorWith(p.logf, w, http.StatusBadRequest,
				fmt.Errorf("invalid halflife %q (want a positive number of rounds)", halflife))
			return
		}
		est, err = hist.AnswerDecayed(q, lo, hi, h)
		if err != nil {
			writeErrorWith(p.logf, w, http.StatusBadRequest, err)
			return
		}
	} else {
		est, err = hist.AnswerRange(q, lo, hi)
		if err != nil {
			writeErrorWith(p.logf, w, http.StatusBadRequest, err)
			return
		}
	}
	// N totals the selected rounds' populations; Round reports the newest
	// round in the window (what the answer is freshest as of).
	var n, newest int
	for _, r := range hist.Rounds() {
		if r >= lo && (hi == 0 || r <= hi) {
			rep, _, _ := hist.Info(r)
			n += rep
			if r > newest {
				newest = r
			}
		}
	}
	writeJSONWith(p.logf, w, http.StatusOK,
		wire.QueryResponse{Query: q.String(), Estimate: est, N: n, Round: newest})
}

// HandleQuery answers GET /v1/query?where=<expr>. Optional parameters:
// round=<k> answers from an archived round, rounds=<a..b|all> (with optional
// halflife=<h>) answers a window/decay aggregate over archived rounds.
func (p *QueryPlane) HandleQuery(w http.ResponseWriter, r *http.Request) {
	params := r.URL.Query()
	where := params.Get("where")
	if where == "" {
		writeErrorWith(p.logf, w, http.StatusBadRequest, fmt.Errorf("missing where parameter"))
		return
	}
	q, err := query.Parse(where, p.schema)
	if err != nil {
		writeErrorWith(p.logf, w, http.StatusBadRequest, err)
		return
	}
	if spec := params.Get("rounds"); spec != "" {
		p.handleWindowQuery(w, q, spec, params.Get("halflife"))
		return
	}
	round := 0
	if v := params.Get("round"); v != "" {
		round, err = strconv.Atoi(v)
		if err != nil || round < 1 {
			writeErrorWith(p.logf, w, http.StatusBadRequest, fmt.Errorf("invalid round %q", v))
			return
		}
	}
	eng, answeredRound, status, err := p.resolveEngine(round)
	if err != nil {
		writeErrorWith(p.logf, w, status, err)
		return
	}
	est, err := eng.Answer(q)
	if err != nil {
		writeErrorWith(p.logf, w, http.StatusBadRequest, err)
		return
	}
	resp := wire.QueryResponse{Query: q.String(), Estimate: est, N: eng.N(), Round: answeredRound}
	if ee, err := eng.ExpectedError(q); err == nil {
		resp.ExpectedError = ee
	}
	writeJSONWith(p.logf, w, http.StatusOK, resp)
}

// Batch query limits: enough for real analyst workloads, small enough that a
// hostile batch cannot monopolize the process.
const (
	maxBatchQueries = 1024
	maxBatchBody    = 1 << 20
)

// HandleQueryBatch answers POST /v1/query (wire.BatchQueryRequest). A
// request naming an archived round answers the whole batch from that round's
// engine, resolved once.
func (p *QueryPlane) HandleQueryBatch(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxBatchBody)
	var req wire.BatchQueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeErrorWith(p.logf, w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("batch body exceeds %d bytes", tooBig.Limit))
			return
		}
		writeErrorWith(p.logf, w, http.StatusBadRequest, fmt.Errorf("invalid batch body: %w", err))
		return
	}
	if len(req.Queries) == 0 {
		writeErrorWith(p.logf, w, http.StatusBadRequest, fmt.Errorf("empty batch"))
		return
	}
	if len(req.Queries) > maxBatchQueries {
		writeErrorWith(p.logf, w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("batch of %d queries exceeds %d", len(req.Queries), maxBatchQueries))
		return
	}
	if req.Round < 0 {
		writeErrorWith(p.logf, w, http.StatusBadRequest, fmt.Errorf("invalid round %d", req.Round))
		return
	}
	eng, round, status, err := p.resolveEngine(req.Round)
	if err != nil {
		writeErrorWith(p.logf, w, status, err)
		return
	}

	// Parse failures stay per-item: the rest of the batch is still answered,
	// concurrently, by the engine.
	items := make([]wire.BatchQueryItem, len(req.Queries))
	qs := make([]query.Query, 0, len(req.Queries))
	idx := make([]int, 0, len(req.Queries))
	for i, where := range req.Queries {
		items[i].Query = where
		q, err := query.Parse(where, p.schema)
		if err != nil {
			items[i].Error = err.Error()
			continue
		}
		items[i].Query = q.String()
		qs = append(qs, q)
		idx = append(idx, i)
	}
	for k, res := range eng.AnswerBatch(qs) {
		i := idx[k]
		if res.Err != nil {
			items[i].Error = res.Err.Error()
			continue
		}
		items[i].Estimate = res.Estimate
		if ee, err := eng.ExpectedError(qs[k]); err == nil {
			items[i].ExpectedError = ee
		}
	}
	writeJSONWith(p.logf, w, http.StatusOK, wire.BatchQueryResponse{Round: round, N: eng.N(), Results: items})
}

// Rounds builds the /v1/rounds listing: every archived round plus the one
// currently served (they usually overlap), in ascending order, with the
// caller's collecting round as the cursor.
func (p *QueryPlane) Rounds(current int) wire.RoundsResponse {
	resp := wire.RoundsResponse{Current: current, Rounds: []wire.RoundInfo{}}
	byRound := make(map[int]wire.RoundInfo)
	if hist := p.history.Load(); hist != nil {
		for _, r := range hist.Rounds() {
			reports, bytes, _ := hist.Info(r)
			byRound[r] = wire.RoundInfo{Round: r, Reports: reports, SnapshotBytes: bytes, Archived: true}
		}
	}
	if st := p.serving.Load(); st != nil {
		resp.Served = st.round
		info, ok := byRound[st.round]
		if !ok {
			info = wire.RoundInfo{Round: st.round, Reports: st.eng.N()}
		}
		info.Served = true
		byRound[st.round] = info
	}
	order := make([]int, 0, len(byRound))
	for r := range byRound {
		order = append(order, r)
	}
	sort.Ints(order)
	for _, r := range order {
		resp.Rounds = append(resp.Rounds, byRound[r])
	}
	return resp
}

// HandleRounds serves GET /v1/rounds. current reports the collecting round
// (server or coordinator state the plane does not own).
func (p *QueryPlane) HandleRounds(current func() int) http.HandlerFunc {
	return func(w http.ResponseWriter, _ *http.Request) {
		writeJSONWith(p.logf, w, http.StatusOK, p.Rounds(current()))
	}
}
