package httpapi

import (
	"context"
	"net/http/httptest"
	"testing"

	"felip/internal/core"
	"felip/internal/dataset"
)

// feedReports drives n simulated devices straight into the server's collector
// without finalizing (Simulate closes the round, which these tests must do
// themselves, under the test hook).
func feedReports(t *testing.T, srv *Server, n int, seed uint64) {
	t.Helper()
	ds := dataset.NewNormal().Generate(srv.schema, n, seed)
	device, err := core.NewClient(srv.col.Specs(), srv.col.Epsilon(), seed+1)
	if err != nil {
		t.Fatal(err)
	}
	for row := 0; row < n; row++ {
		rep, err := device.Perturb(srv.col.AssignGroup(), func(attr int) int { return ds.Value(row, attr) })
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.col.Add(rep); err != nil {
			t.Fatal(err)
		}
	}
}

// TestStatusLiveDuringFinalize pins the server-level half of the tentpole:
// with the collector's estimation held open by the test hook, /v1/status and
// /v1/healthz must answer immediately (the old code held s.mu across the whole
// estimation, so both blocked), a new report must be refused with 409, and a
// concurrent finalize must wait for the in-flight attempt instead of
// re-running it.
func TestStatusLiveDuringFinalize(t *testing.T) {
	const n = 2000
	schema := dataset.MixedSchema(2, 32, 2, 4)
	srv, err := NewServer(schema, n, core.Options{Strategy: core.OUG, Epsilon: 1, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	srv.SetLogger(t.Logf)
	feedReports(t, srv, n, 41)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cl := Dial(ts.URL, ts.Client())
	ctx := context.Background()

	plan, err := cl.Plan(ctx)
	if err != nil {
		t.Fatal(err)
	}
	specs, err := plan.Specs()
	if err != nil {
		t.Fatal(err)
	}

	probed := make(chan struct{})
	release := make(chan struct{})
	testHookFinalize = func() {
		close(probed) // server lock released, estimation about to run
		<-release     // hold the finalize open until the probes are done
	}
	defer func() { testHookFinalize = nil }()

	type finResult struct {
		n   int
		err error
	}
	finDone := make(chan finResult, 2)
	go func() {
		n, err := cl.Finalize(ctx)
		finDone <- finResult{n, err}
	}()

	<-probed
	// Finalize is provably in flight (release is unclosed). Every liveness
	// surface must answer now.
	st, err := cl.Status(ctx)
	if err != nil {
		t.Fatalf("status during finalize: %v", err)
	}
	if st.Finalized {
		t.Error("status during finalize reports Finalized")
	}
	if !st.Finalizing {
		t.Error("status during finalize does not report Finalizing")
	}
	if st.Reports != n {
		t.Errorf("Reports during finalize = %d, want %d", st.Reports, n)
	}
	if st.Rejected != 0 {
		t.Errorf("Rejected during finalize = %d, want 0", st.Rejected)
	}
	if err := cl.Healthz(ctx); err != nil {
		t.Errorf("healthz during finalize: %v", err)
	}
	// A report arriving while the round closes is a state conflict, not a bad
	// request — and not counted as a reject.
	device, err := core.NewClient(specs, plan.Epsilon, 43)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := device.Perturb(0, func(int) int { return 0 })
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Report(ctx, rep); err == nil {
		t.Error("report during finalize accepted")
	}
	if st, err := cl.Status(ctx); err != nil {
		t.Fatalf("status after refused report: %v", err)
	} else if st.Rejected != 0 {
		t.Errorf("round-closed refusal counted as reject: %d", st.Rejected)
	}
	// A second finalize must join the in-flight attempt, not start another.
	go func() {
		n, err := cl.Finalize(ctx)
		finDone <- finResult{n, err}
	}()
	select {
	case r := <-finDone:
		t.Fatalf("finalize returned (%d, %v) before the hook released it", r.n, r.err)
	default:
	}

	close(release)
	for i := 0; i < 2; i++ {
		r := <-finDone
		if r.err != nil {
			t.Fatalf("finalize %d: %v", i, r.err)
		}
		if r.n != n {
			t.Errorf("finalize %d count = %d, want %d", i, r.n, n)
		}
	}
	st, err = cl.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Finalized || st.Finalizing {
		t.Errorf("after finalize: Finalized=%v Finalizing=%v", st.Finalized, st.Finalizing)
	}
	if len(st.Metrics) == 0 {
		t.Error("status carries no metrics snapshot after finalize")
	}
}

// TestStatusSurfacesRejected: before this PR a malformed submission got its
// error response and vanished — no operator-visible trace. Both reject layers
// (wire-level and plan-level) must show up in the status counter.
func TestStatusSurfacesRejected(t *testing.T) {
	schema := dataset.MixedSchema(2, 32, 2, 4)
	srv, err := NewServer(schema, 1000, core.Options{Strategy: core.OUG, Epsilon: 1, Seed: 37})
	if err != nil {
		t.Fatal(err)
	}
	srv.SetLogger(func(string, ...any) {})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cl := Dial(ts.URL, ts.Client())
	ctx := context.Background()

	specs := srv.col.Specs()
	// Wire-level reject: negative group fails message validation.
	if err := cl.Report(ctx, core.Report{Group: -1, Proto: specs[0].Proto}); err == nil {
		t.Error("negative-group report accepted")
	}
	// Plan-level reject: value outside the protocol's range.
	if err := cl.Report(ctx, core.Report{Group: 0, Proto: specs[0].Proto, Value: 1 << 20}); err == nil {
		t.Error("out-of-range report accepted")
	}
	st, err := cl.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Rejected != 2 {
		t.Errorf("Rejected = %d, want 2", st.Rejected)
	}
	if st.Reports != 0 {
		t.Errorf("Reports = %d, want 0", st.Reports)
	}
}
