package httpapi

import (
	"context"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"felip/internal/core"
	"felip/internal/dataset"
	"felip/internal/faultinject"
	"felip/internal/reportlog"
	"felip/internal/wire"
)

// These tests pin the batch ingest path's idempotency under faults: whatever
// the transport or the disk does to a frame, every device is counted exactly
// once and the final estimates are bit-identical to the single-report path
// over the same multiset.

// batchDevice builds the deterministic report a given row's device submits.
func batchDevice(t *testing.T, specs []core.GridSpec, eps float64, ds *dataset.Dataset, row int, devSeed uint64) wire.BatchReport {
	t.Helper()
	id := fmt.Sprintf("dev-%04d", row)
	device, err := core.NewClient(specs, eps, devSeed+uint64(row))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := device.Perturb(DeriveGroup(id, len(specs)), func(attr int) int { return ds.Value(row, attr) })
	if err != nil {
		t.Fatal(err)
	}
	return wire.BatchReport{ID: id, Report: rep}
}

// TestBatchFrameInternalDuplicates: duplicates *within* one frame get the
// same answers as cross-request retries — same payload is a duplicate, a
// different payload under the same key is a conflict — and a report already
// counted on the single-report JSON path is recognized by the batch path.
func TestBatchFrameInternalDuplicates(t *testing.T) {
	const n = 200
	schema := dataset.MixedSchema(2, 32, 2, 4)
	ds := dataset.NewNormal().Generate(schema, n, 501)
	srv, err := NewServer(schema, n, core.Options{Strategy: core.OHG, Epsilon: 1.7, Seed: 503})
	if err != nil {
		t.Fatal(err)
	}
	srv.SetLogger(t.Logf)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cl := Dial(ts.URL, ts.Client())
	ctx := context.Background()
	plan, err := cl.Plan(ctx)
	if err != nil {
		t.Fatal(err)
	}
	specs, err := plan.Specs()
	if err != nil {
		t.Fatal(err)
	}

	// Row 0 arrives on the single-report path first.
	r0 := batchDevice(t, specs, plan.Epsilon, ds, 0, 511)
	if dup, err := cl.ReportWithID(ctx, r0.ID, r0.Report); err != nil || dup {
		t.Fatalf("single-path warmup: dup=%v err=%v", dup, err)
	}

	r1 := batchDevice(t, specs, plan.Epsilon, ds, 1, 511)
	r2 := batchDevice(t, specs, plan.Epsilon, ds, 2, 511)
	r2forged := r2
	r2forged.Report.Seed++ // same key, different payload: an equivocation
	frame := []wire.BatchReport{
		r0,       // counted already via /v1/report -> duplicate
		r1,       // fresh -> accepted
		r1,       // same payload again in the same frame -> duplicate
		r2,       // fresh -> accepted
		r2forged, // same key, different payload, same frame -> conflict
	}
	resp, err := cl.ReportBatch(ctx, frame)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{
		wire.DispositionDuplicate,
		wire.DispositionAccepted,
		wire.DispositionDuplicate,
		wire.DispositionAccepted,
		wire.DispositionConflict,
	}
	for i, d := range resp.Dispositions {
		if d != want[i] {
			t.Fatalf("disposition[%d] = %d, want %d (full: %v)", i, d, want[i], resp.Dispositions)
		}
	}
	if resp.Accepted != 2 || resp.Duplicate != 2 || resp.Conflict != 1 {
		t.Fatalf("tallies %+v", resp)
	}
	st, err := cl.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Reports != 3 {
		t.Fatalf("server counted %d reports, want 3 (r0, r1, r2 exactly once each)", st.Reports)
	}
	// The conflicting equivocation was charged to the wire-rejection counter.
	if st.Rejected != 1 {
		t.Fatalf("rejected counter = %d, want 1", st.Rejected)
	}
}

// TestBatchRejectCountsPerReport: a damaged frame is N refused submissions,
// not one — the rejection counter must move by the header's report claim.
func TestBatchRejectCountsPerReport(t *testing.T) {
	const n = 100
	schema := dataset.MixedSchema(2, 32, 2, 4)
	ds := dataset.NewNormal().Generate(schema, n, 521)
	srv, err := NewServer(schema, n, core.Options{Strategy: core.OHG, Epsilon: 1.7, Seed: 523})
	if err != nil {
		t.Fatal(err)
	}
	srv.SetLogger(t.Logf)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cl := Dial(ts.URL, ts.Client())
	ctx := context.Background()
	plan, err := cl.Plan(ctx)
	if err != nil {
		t.Fatal(err)
	}
	specs, err := plan.Specs()
	if err != nil {
		t.Fatal(err)
	}

	const batch = 37
	reports := make([]wire.BatchReport, batch)
	for i := range reports {
		reports[i] = batchDevice(t, specs, plan.Epsilon, ds, i, 527)
	}
	frame, err := wire.EncodeFrame(reports)
	if err != nil {
		t.Fatal(err)
	}
	frame[len(frame)-1] ^= 0xFF // corrupt the payload; the header still claims 37
	if _, err := cl.ReportFrame(ctx, frame, batch); err == nil {
		t.Fatal("damaged frame accepted")
	}
	st, err := cl.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Rejected != batch {
		t.Fatalf("rejected counter = %d after refusing a %d-report frame, want %d", st.Rejected, batch, batch)
	}
	if st.Reports != 0 {
		t.Fatalf("damaged frame counted %d reports", st.Reports)
	}
}

// TestBatchRetryAfterMidBatchCrash: the disk dies partway through a frame's
// single WAL write. The server refuses the frame (nothing acknowledged), the
// restart sheds the torn record and replays the complete prefix, and the
// client's verbatim retry of the same frame bytes turns the survivors into
// duplicates and counts the rest — every device exactly once, estimates
// bit-identical to a clean single-report run.
func TestBatchRetryAfterMidBatchCrash(t *testing.T) {
	const (
		n       = 400
		batch   = 200
		devSeed = 541
	)
	schema := dataset.MixedSchema(2, 32, 2, 4)
	ds := dataset.NewNormal().Generate(schema, n, 547)
	opts := core.Options{Strategy: core.OHG, Epsilon: 1.6, Seed: 557}
	ctx := context.Background()
	walPath := filepath.Join(t.TempDir(), "batch.wal")

	boot := func(crashAfter int64) (*Server, *httptest.Server, *Client) {
		srv, err := NewServer(schema, n, opts)
		if err != nil {
			t.Fatal(err)
		}
		srv.SetLogger(t.Logf)
		f, err := os.OpenFile(walPath, os.O_RDWR|os.O_CREATE, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		var file reportlog.File = f
		if crashAfter > 0 {
			file = faultinject.NewCrashFile(f, crashAfter)
		}
		l, recs, err := reportlog.OpenFile(file)
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.UseWAL(l, recs); err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		return srv, ts, Dial(ts.URL, ts.Client())
	}

	// Encode the frame once; the retry must re-send these exact bytes.
	srv1, ts1, cl1 := boot(3000) // dies ~3000 bytes into the batch append
	plan, err := cl1.Plan(ctx)
	if err != nil {
		t.Fatal(err)
	}
	specs, err := plan.Specs()
	if err != nil {
		t.Fatal(err)
	}
	reports := make([]wire.BatchReport, batch)
	for i := range reports {
		reports[i] = batchDevice(t, specs, plan.Epsilon, ds, i, devSeed)
	}
	frame, err := wire.EncodeFrame(reports)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := cl1.ReportFrame(ctx, frame, batch); err == nil {
		t.Fatal("frame acknowledged despite the WAL dying mid-append")
	}
	ts1.Close()
	_ = srv1.Close() // the crashed file refuses the shutdown sync; expected

	// Restart on the real file: the torn record at the crash point is shed,
	// the complete prefix replays.
	srv2, ts2, cl2 := boot(0)
	defer ts2.Close()
	defer srv2.Close()
	st, err := cl2.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Reports <= 0 || st.Reports >= batch {
		t.Fatalf("replayed %d reports, want a strict mid-batch prefix of %d (did the crash land inside the frame?)", st.Reports, batch)
	}
	survivors := st.Reports

	// The client retries the identical frame bytes.
	resp, err := cl2.ReportFrame(ctx, frame, batch)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Duplicate != survivors || resp.Accepted != batch-survivors || resp.Conflict != 0 || resp.Rejected != 0 {
		t.Fatalf("retry after crash: %+v with %d survivors", resp, survivors)
	}
	if st, _ := cl2.Status(ctx); st.Reports != batch {
		t.Fatalf("after retry the server holds %d reports, want %d", st.Reports, batch)
	}

	// Bit-identical to the single-report path over the same multiset.
	if count, err := cl2.Finalize(ctx); err != nil || count != batch {
		t.Fatalf("finalize: %d, %v", count, err)
	}
	refSrv, err := NewServer(schema, n, opts)
	if err != nil {
		t.Fatal(err)
	}
	refSrv.SetLogger(t.Logf)
	refTS := httptest.NewServer(refSrv.Handler())
	defer refTS.Close()
	refCl := Dial(refTS.URL, refTS.Client())
	for _, br := range reports {
		if _, err := refCl.ReportWithID(ctx, br.ID, br.Report); err != nil {
			t.Fatal(err)
		}
	}
	if count, err := refCl.Finalize(ctx); err != nil || count != batch {
		t.Fatalf("reference finalize: %d, %v", count, err)
	}
	for _, where := range []string{"num0=0..15", "num1=4..11", "cat0=0,1", "num0=8..23; cat1=1,2"} {
		got, err := cl2.Query(ctx, where)
		if err != nil {
			t.Fatal(err)
		}
		want, err := refCl.Query(ctx, where)
		if err != nil {
			t.Fatal(err)
		}
		if got.Estimate != want.Estimate {
			t.Fatalf("query %q: batch-path %v != single-path %v", where, got.Estimate, want.Estimate)
		}
	}
}

// TestBatchStraddlingSeal: a frame is atomic with respect to a seal — and a
// frame retried *after* the round sealed answers duplicate for everything the
// round counted and conflict for everything it never saw, changing nothing.
func TestBatchStraddlingSeal(t *testing.T) {
	const n = 300
	schema := dataset.MixedSchema(2, 32, 2, 4)
	ds := dataset.NewNormal().Generate(schema, n, 561)
	opts := core.Options{Strategy: core.OHG, Epsilon: 1.6, Seed: 569}
	ctx := context.Background()
	dir := t.TempDir()

	srv, err := NewServer(schema, n, opts)
	if err != nil {
		t.Fatal(err)
	}
	srv.SetLogger(t.Logf)
	srv.SetShardID("shard0")
	segs := reportlog.NewSegments(filepath.Join(dir, "seal.wal"))
	l, recs, err := segs.Open(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.UseWAL(l, recs); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()
	cl := Dial(ts.URL, ts.Client())
	plan, err := cl.Plan(ctx)
	if err != nil {
		t.Fatal(err)
	}
	specs, err := plan.Specs()
	if err != nil {
		t.Fatal(err)
	}

	// Frame 1 lands before the seal.
	first := make([]wire.BatchReport, 80)
	for i := range first {
		first[i] = batchDevice(t, specs, plan.Epsilon, ds, i, 571)
	}
	resp, err := cl.ReportBatch(ctx, first)
	if err != nil || resp.Accepted != len(first) {
		t.Fatalf("pre-seal frame: %+v, %v", resp, err)
	}

	state, err := cl.ShardState(ctx) // seals round 1
	if err != nil {
		t.Fatal(err)
	}
	if state.Reports != len(first) {
		t.Fatalf("sealed with %d reports, want %d", state.Reports, len(first))
	}

	// The device fleet's retry straddles the seal: the same 80 reports plus
	// 40 stragglers the round never saw, in one frame.
	straddle := make([]wire.BatchReport, 0, 120)
	straddle = append(straddle, first...)
	for i := len(first); i < len(first)+40; i++ {
		straddle = append(straddle, batchDevice(t, specs, plan.Epsilon, ds, i, 571))
	}
	resp, err = cl.ReportBatch(ctx, straddle)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Accepted != 0 || resp.Duplicate != len(first) || resp.Conflict != 40 || resp.Rejected != 0 {
		t.Fatalf("straddling frame: %+v, want %d duplicates and 40 conflicts", resp, len(first))
	}
	for i, d := range resp.Dispositions {
		want := wire.DispositionDuplicate
		if i >= len(first) {
			want = wire.DispositionConflict
		}
		if d != want {
			t.Fatalf("disposition[%d] = %d, want %d", i, d, want)
		}
	}

	// The seal's export is untouched: re-pulling yields the identical
	// canonical checksum, so downstream merges cannot tell the retry happened.
	after, err := cl.ShardState(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if after.Checksum != state.Checksum || after.Reports != state.Reports {
		t.Fatalf("straddling frame disturbed the sealed state: %08x/%d -> %08x/%d",
			state.Checksum, state.Reports, after.Checksum, after.Reports)
	}
}
