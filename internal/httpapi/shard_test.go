package httpapi

import (
	"context"
	"fmt"
	"net/http/httptest"
	"testing"

	"felip/internal/core"
	"felip/internal/dataset"
)

// submitRows feeds rows [0, n) of ds as deterministic devices.
func submitRows(t *testing.T, cl *Client, specs []core.GridSpec, eps float64, ds *dataset.Dataset, n int, devSeed uint64) {
	t.Helper()
	ctx := context.Background()
	for row := 0; row < n; row++ {
		id := fmt.Sprintf("dev-%d-%d", row, devSeed)
		device, err := core.NewClient(specs, eps, devSeed+uint64(row))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := device.Perturb(DeriveGroup(id, len(specs)),
			func(attr int) int { return ds.Value(row, attr) })
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cl.ReportWithID(ctx, id, rep); err != nil {
			t.Fatalf("row %d: %v", row, err)
		}
	}
}

// TestNextRoundIdempotentTransitions: POST /v1/nextround with a target round
// must be safely repeatable — the same transition twice advances once — and a
// skipped round must be refused, while an empty body keeps the legacy
// unconditional advance.
func TestNextRoundIdempotentTransitions(t *testing.T) {
	const n = 400
	schema := dataset.MixedSchema(2, 32, 2, 4)
	ds := dataset.NewNormal().Generate(schema, n, 565)
	opts := core.Options{Strategy: core.OHG, Epsilon: 1.3, Seed: 563}
	ctx := context.Background()

	srv, err := NewServer(schema, n, opts)
	if err != nil {
		t.Fatal(err)
	}
	srv.SetLogger(t.Logf)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cl := Dial(ts.URL, ts.Client())
	plan, err := cl.Plan(ctx)
	if err != nil {
		t.Fatal(err)
	}
	specs, err := plan.Specs()
	if err != nil {
		t.Fatal(err)
	}

	// A replayed transition into the round we are already in succeeds even
	// before any finalize — the transition was (vacuously) applied.
	if round, err := cl.NextRoundTo(ctx, 1); err != nil || round != 1 {
		t.Fatalf("replay into round 1: %d, %v", round, err)
	}
	// Advancing an unfinalized round must still be refused.
	if _, err := cl.NextRoundTo(ctx, 2); err == nil {
		t.Fatal("advance of unfinalized round accepted")
	}

	submitRows(t, cl, specs, opts.Epsilon, ds, n, 101)
	if _, err := cl.Finalize(ctx); err != nil {
		t.Fatal(err)
	}

	// The real transition, then its retry: exactly one advance.
	if round, err := cl.NextRoundTo(ctx, 2); err != nil || round != 2 {
		t.Fatalf("advance to 2: %d, %v", round, err)
	}
	if round, err := cl.NextRoundTo(ctx, 2); err != nil || round != 2 {
		t.Fatalf("retried advance to 2: %d, %v", round, err)
	}
	st, err := cl.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Round != 2 || st.Reports != 0 {
		t.Fatalf("after retried transition: round %d with %d reports", st.Round, st.Reports)
	}

	// Skips — forward or backward — are divergence, not idempotence.
	if _, err := cl.NextRoundTo(ctx, 4); err == nil {
		t.Fatal("round skip 2 → 4 accepted")
	}
	if _, err := cl.NextRoundTo(ctx, 1); err == nil {
		t.Fatal("round rollback 2 → 1 accepted")
	}

	// The legacy body-less advance still works after a finalize.
	submitRows(t, cl, specs, opts.Epsilon, ds, n, 202)
	if _, err := cl.Finalize(ctx); err != nil {
		t.Fatal(err)
	}
	if round, err := cl.NextRound(ctx); err != nil || round != 3 {
		t.Fatalf("legacy advance: %d, %v", round, err)
	}
}

// TestShardStateSealsRound: the first state pull seals the round — reports
// and assignments are refused, status says so — repeat pulls serve the
// identical cached message, and the idempotent round transition reopens the
// shard for the next round.
func TestShardStateSealsRound(t *testing.T) {
	const n = 500
	schema := dataset.MixedSchema(2, 32, 2, 4)
	ds := dataset.NewNormal().Generate(schema, n, 665)
	opts := core.Options{Strategy: core.OHG, Epsilon: 1.3, Seed: 663}
	ctx := context.Background()

	srv, err := NewServer(schema, n, opts)
	if err != nil {
		t.Fatal(err)
	}
	srv.SetLogger(t.Logf)
	srv.SetShardID("s7")
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cl := Dial(ts.URL, ts.Client())
	plan, err := cl.Plan(ctx)
	if err != nil {
		t.Fatal(err)
	}
	specs, err := plan.Specs()
	if err != nil {
		t.Fatal(err)
	}
	submitRows(t, cl, specs, opts.Epsilon, ds, n, 301)

	first, err := cl.ShardState(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if first.ShardID != "s7" || first.Round != 1 || first.Reports != n {
		t.Fatalf("sealed state: %+v", first)
	}
	if len(first.Grids) != len(specs) {
		t.Fatalf("state carries %d grids for a %d-grid plan", len(first.Grids), len(specs))
	}

	// Sealed: new reports 409, assignment 409, status shows it.
	id := fmt.Sprintf("dev-%d-%d", 0, 999)
	device, err := core.NewClient(specs, opts.Epsilon, 999)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := device.Perturb(DeriveGroup(id, len(specs)), func(attr int) int { return ds.Value(0, attr) })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.ReportWithID(ctx, id, rep); err == nil {
		t.Fatal("sealed shard accepted a new report")
	}
	if _, err := cl.Assign(ctx); err == nil {
		t.Fatal("sealed shard handed out an assignment")
	}
	st, err := cl.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Sealed || st.ShardID != "s7" {
		t.Fatalf("status after seal: %+v", st)
	}

	// Re-pull: identical bytes (same checksum), still 200.
	second, err := cl.ShardState(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if second.Checksum != first.Checksum || second.Reports != first.Reports {
		t.Fatalf("re-pull differs: %08x vs %08x", second.Checksum, first.Checksum)
	}

	// A sealed (but locally unfinalized) shard advances rounds and reopens.
	if round, err := cl.NextRoundTo(ctx, 2); err != nil || round != 2 {
		t.Fatalf("advance sealed shard: %d, %v", round, err)
	}
	st, err = cl.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Sealed || st.Round != 2 || st.Reports != 0 {
		t.Fatalf("after reopen: %+v", st)
	}
	submitRows(t, cl, specs, opts.Epsilon, ds, 50, 401)
	if st, _ := cl.Status(ctx); st.Reports != 50 {
		t.Fatalf("reopened round ingested %d reports, want 50", st.Reports)
	}
}
