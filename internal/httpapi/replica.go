package httpapi

import (
	"context"
	"fmt"
	"net/http"
	"os"
	"strconv"

	"felip/internal/reportlog"
	"felip/internal/wire"
)

// This file is the replication surface a shard server exposes to its
// follower, plus the client verbs the elastic-cluster membership protocol
// rides on (register, heartbeat, membership, promote). The server side of
// register/heartbeat/promote lives with their owners — the coordinator
// (internal/cluster) and the follower — but every HTTP verb is defined here
// so the wire contract has one home.

// SetSegments names the server's WAL segment chain so the replication
// endpoint can serve sealed (earlier-round) segments from disk. UseArchive
// sets it implicitly; durable servers without an archive call this directly.
func (s *Server) SetSegments(segs *reportlog.Segments) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.segments = segs
}

// BeginAtRound fast-forwards a *fresh* server — no reports accepted, nothing
// finalized, round 1 — to the given collection round. This is how a shard
// that registers mid-deployment joins the cluster's current round (the
// registration response names it) and how a follower taking over an empty
// shard opens the right round: jumping a server with state would detach that
// state from its round, so anything but a pristine server is refused.
func (s *Server) BeginAtRound(round int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if round < 1 {
		return fmt.Errorf("httpapi: round %d out of range (rounds are 1-based)", round)
	}
	if s.round != 1 || s.col.N() > 0 || s.agg != nil || s.shardState != nil || len(s.dedup) > 0 {
		return fmt.Errorf("httpapi: cannot begin at round %d: round %d already has state", round, s.round)
	}
	s.round = round
	return nil
}

// Round reports the collection round the server is in (1-based).
func (s *Server) Round() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.round
}

// WALPos reports the current round's write-ahead-log end offset (0 when the
// server is not durable) — what a primary's heartbeat carries so the
// coordinator can compute its follower's replication lag.
func (s *Server) WALPos() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.wal == nil {
		return 0
	}
	return s.wal.Pos()
}

// handleReplicaWAL serves GET /v1/replica/wal?round=R&from=F — one chunk of
// the server's write-ahead log for a follower to replicate. The current
// round's bytes come from the live log under its lock; earlier rounds from
// the sealed segment files. Bytes are served exactly as Append framed them
// and checksummed end to end, so the follower's copy is bit-identical.
func (s *Server) handleReplicaWAL(w http.ResponseWriter, r *http.Request) {
	round, err := strconv.Atoi(r.URL.Query().Get("round"))
	if err != nil || round < 1 {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("replica wal: invalid round %q", r.URL.Query().Get("round")))
		return
	}
	from := int64(0)
	if v := r.URL.Query().Get("from"); v != "" {
		if from, err = strconv.ParseInt(v, 10, 64); err != nil || from < 0 {
			s.writeError(w, http.StatusBadRequest, fmt.Errorf("replica wal: invalid offset %q", v))
			return
		}
	}

	s.mu.RLock()
	cur, wal, segs, id, store := s.round, s.wal, s.segments, s.shardID, s.store
	s.mu.RUnlock()

	switch {
	case round > cur:
		s.writeError(w, http.StatusConflict, fmt.Errorf("replica wal: round %d not open (server in round %d)", round, cur))
	case round == cur:
		if wal == nil {
			s.writeError(w, http.StatusConflict, fmt.Errorf("replica wal: server is not durable; replication requires a write-ahead log"))
			return
		}
		data, pos, err := wal.ReadFrom(from)
		if err != nil {
			s.writeError(w, http.StatusConflict, err)
			return
		}
		s.writeJSON(w, http.StatusOK, wire.NewSegmentChunk(id, round, from, data, pos, false, cur))
	default:
		if segs == nil {
			s.writeError(w, http.StatusConflict, fmt.Errorf("replica wal: no segment chain attached (SetSegments)"))
			return
		}
		raw, err := os.ReadFile(segs.Path(round))
		if os.IsNotExist(err) {
			// No segment file. Two very different histories end here: the round
			// was archived and its segment truncated (the reports existed — a
			// follower must not verify a chain that skips them), or the round
			// genuinely never wrote a segment. The archive listing tells them
			// apart; conflating the two was how a follower could promote with a
			// hole in its history.
			if store != nil {
				if _, _, archived := store.Info(round); archived {
					s.writeJSON(w, http.StatusOK, wire.NewTruncatedSegmentChunk(id, round, from, cur))
					return
				}
			}
			raw, err = nil, nil
		}
		if err != nil {
			s.writeError(w, http.StatusInternalServerError, err)
			return
		}
		pos := int64(len(raw))
		if from > pos {
			s.writeError(w, http.StatusConflict, fmt.Errorf("replica wal: offset %d beyond sealed segment end %d", from, pos))
			return
		}
		s.writeJSON(w, http.StatusOK, wire.NewSegmentChunk(id, round, from, raw[from:], pos, true, cur))
	}
}

// ReplicaWAL pulls one replication chunk from a primary and verifies its
// checksum before returning it.
func (c *Client) ReplicaWAL(ctx context.Context, round int, from int64) (wire.SegmentChunk, error) {
	var chunk wire.SegmentChunk
	err := c.get(ctx, fmt.Sprintf("/v1/replica/wal?round=%d&from=%d", round, from), &chunk)
	if err != nil {
		return wire.SegmentChunk{}, err
	}
	if err := chunk.Verify(); err != nil {
		return wire.SegmentChunk{}, err
	}
	if chunk.Round != round || chunk.From != from {
		return wire.SegmentChunk{}, fmt.Errorf("httpapi: asked for round %d offset %d, got round %d offset %d",
			round, from, chunk.Round, chunk.From)
	}
	return chunk, nil
}

// RegisterShard announces a node to the coordinator's membership.
func (c *Client) RegisterShard(ctx context.Context, msg wire.RegisterMessage) (wire.RegisterResponse, error) {
	var out wire.RegisterResponse
	_, err := c.post(ctx, "/v1/shard/register", msg, &out)
	return out, err
}

// ShardHeartbeat reports a node's liveness (and replication positions) to the
// coordinator.
func (c *Client) ShardHeartbeat(ctx context.Context, msg wire.HeartbeatMessage) (wire.HeartbeatResponse, error) {
	var out wire.HeartbeatResponse
	_, err := c.post(ctx, "/v1/shard/heartbeat", msg, &out)
	return out, err
}

// Membership fetches the coordinator's routable membership snapshot.
func (c *Client) Membership(ctx context.Context) (wire.MembershipMessage, error) {
	var out wire.MembershipMessage
	err := c.get(ctx, "/v1/membership", &out)
	return out, err
}

// PromoteReplica asks a follower to take over its logical shard for the
// given round. The coordinator calls it when the primary's heartbeat lapses;
// it is idempotent, so a promotion whose acknowledgment was lost can simply
// be retried.
func (c *Client) PromoteReplica(ctx context.Context, round int) (wire.PromoteResponse, error) {
	var out wire.PromoteResponse
	_, err := c.post(ctx, "/v1/replica/promote", wire.PromoteRequest{Round: round}, &out)
	return out, err
}
