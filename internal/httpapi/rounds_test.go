package httpapi

import (
	"context"
	"fmt"
	"math"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"

	"felip/internal/core"
	"felip/internal/dataset"
	"felip/internal/reportlog"
)

// roundServer starts a server plus HTTP client for multi-round tests.
func roundServer(t *testing.T, n int) (*Server, *Client, *dataset.Dataset) {
	t.Helper()
	schema := dataset.MixedSchema(2, 32, 2, 4)
	ds := dataset.NewNormal().Generate(schema, n, 7)
	srv, err := NewServer(schema, n, core.Options{Strategy: core.OHG, Epsilon: 2, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	srv.SetLogger(t.Logf)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, Dial(ts.URL, ts.Client()), ds
}

// reportAll perturbs and submits every dataset row through the HTTP client.
func reportAll(t *testing.T, cl *Client, ds *dataset.Dataset, seed uint64) {
	t.Helper()
	ctx := context.Background()
	plan, err := cl.Plan(ctx)
	if err != nil {
		t.Fatal(err)
	}
	specs, err := plan.Specs()
	if err != nil {
		t.Fatal(err)
	}
	device, err := core.NewClient(specs, plan.Epsilon, seed)
	if err != nil {
		t.Fatal(err)
	}
	for row := 0; row < ds.N(); row++ {
		group, err := cl.Assign(ctx)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := device.Perturb(group, func(attr int) int { return ds.Value(row, attr) })
		if err != nil {
			t.Fatal(err)
		}
		if err := cl.Report(ctx, rep); err != nil {
			t.Fatal(err)
		}
	}
}

// Acceptance test for the round lifecycle: after round k finalizes, reports
// for round k+1 are accepted while round k keeps answering queries.
func TestNextRoundCollectsWhileServing(t *testing.T) {
	const n = 4000
	srv, cl, ds := roundServer(t, n)
	ctx := context.Background()

	// NextRound before any finalize must refuse.
	if _, err := cl.NextRound(ctx); err == nil {
		t.Fatal("NextRound on an open round accepted")
	}

	reportAll(t, cl, ds, 13)
	if _, err := cl.Finalize(ctx); err != nil {
		t.Fatal(err)
	}
	r1, err := cl.Query(ctx, "num0=8..23")
	if err != nil {
		t.Fatal(err)
	}
	if r1.Round != 1 {
		t.Fatalf("round-1 answer tagged round %d", r1.Round)
	}

	round, err := cl.NextRound(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if round != 2 {
		t.Fatalf("NextRound = %d, want 2", round)
	}
	st, err := cl.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Round != 2 || st.ServedRound != 1 || st.Finalized || st.Reports != 0 {
		t.Fatalf("post-NextRound status = %+v", st)
	}

	// Interleave: submit round-2 reports while querying round 1 — every
	// report must be accepted and every query answered from round 1.
	ds2 := dataset.NewUniform().Generate(srv.schema, n, 99)
	plan, _ := cl.Plan(ctx)
	specs, _ := plan.Specs()
	device, err := core.NewClient(specs, plan.Epsilon, 17)
	if err != nil {
		t.Fatal(err)
	}
	for row := 0; row < n; row++ {
		rep, err := device.Perturb(row%len(specs), func(attr int) int { return ds2.Value(row, attr) })
		if err != nil {
			t.Fatal(err)
		}
		if err := cl.Report(ctx, rep); err != nil {
			t.Fatalf("row %d: report for round 2 refused while round 1 serves: %v", row, err)
		}
		if row%500 == 0 {
			resp, err := cl.Query(ctx, "num0=8..23")
			if err != nil {
				t.Fatalf("row %d: round-1 query failed during round-2 ingest: %v", row, err)
			}
			if resp.Round != 1 || resp.Estimate != r1.Estimate {
				t.Fatalf("row %d: round-1 answer drifted during ingest: %+v vs %+v", row, resp, r1)
			}
		}
	}

	// Finalize round 2: queries swap to the new round atomically.
	count, err := cl.Finalize(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("round-2 finalize count = %d", count)
	}
	r2, err := cl.Query(ctx, "num0=8..23")
	if err != nil {
		t.Fatal(err)
	}
	if r2.Round != 2 {
		t.Fatalf("post-swap answer tagged round %d", r2.Round)
	}
	st, _ = cl.Status(ctx)
	if st.Round != 2 || st.ServedRound != 2 || !st.Finalized {
		t.Fatalf("post-round-2 status = %+v", st)
	}
}

// A batch answers exactly what N single queries answer, with per-item errors
// for the entries that cannot be parsed or answered.
func TestBatchQueryMatchesSingles(t *testing.T) {
	srv, cl, _ := roundServer(t, 3000)
	ctx := context.Background()
	if err := Simulate(srv, "normal", 3000, 21); err != nil {
		t.Fatal(err)
	}
	wheres := []string{
		"num0=8..23",
		"num0=0..15; cat0=0,1",
		"num0=8..23; num1=4..27; cat1=0,1,2",
		"cat0=0",
		"not a query", // parse error
		"cat0=0..1",   // BETWEEN on categorical: answer error
		"num0<=12; cat1=1,3",
	}
	batch, err := cl.QueryBatch(ctx, wheres)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.Results) != len(wheres) {
		t.Fatalf("%d results for %d queries", len(batch.Results), len(wheres))
	}
	if batch.Round != 1 || batch.N != 3000 {
		t.Fatalf("batch metadata: round=%d n=%d", batch.Round, batch.N)
	}
	for i, item := range batch.Results {
		if i == 4 || i == 5 {
			if item.Error == "" {
				t.Errorf("item %d (%q): expected an error", i, wheres[i])
			}
			continue
		}
		if item.Error != "" {
			t.Errorf("item %d (%q): %s", i, wheres[i], item.Error)
			continue
		}
		single, err := cl.Query(ctx, wheres[i])
		if err != nil {
			t.Fatal(err)
		}
		if item.Estimate != single.Estimate {
			t.Errorf("item %d: batch %v vs single %v", i, item.Estimate, single.Estimate)
		}
		if math.Abs(item.ExpectedError-single.ExpectedError) > 0 {
			t.Errorf("item %d: expected error %v vs %v", i, item.ExpectedError, single.ExpectedError)
		}
	}
	// Oversized and empty batches are refused whole.
	if _, err := cl.QueryBatch(ctx, nil); err == nil {
		t.Error("empty batch accepted")
	}
	big := make([]string, maxBatchQueries+1)
	for i := range big {
		big[i] = "num0=0..3"
	}
	if _, err := cl.QueryBatch(ctx, big); err == nil {
		t.Error("oversized batch accepted")
	}
}

// Race hammer: mixed single and batch queries run flat out while the next
// round ingests reports, finalizes, and swaps the serving engine. Run under
// -race (make check); every query must succeed against round 1 or round 2.
func TestQueryServingDuringNextRoundHammer(t *testing.T) {
	const n = 1500
	srv, cl, ds := roundServer(t, n)
	ctx := context.Background()
	if err := Simulate(srv, "normal", n, 31); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.NextRound(ctx); err != nil {
		t.Fatal(err)
	}

	wheres := []string{
		"num0=8..23",
		"num0=0..15; cat0=0,1",
		"num0=8..23; num1=4..27",
		"cat0=0; cat1=1,2",
		"num1>=20",
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if i%3 == 0 {
					batch, err := cl.QueryBatch(ctx, wheres)
					if err != nil {
						t.Errorf("worker %d: batch: %v", w, err)
						return
					}
					for _, item := range batch.Results {
						if item.Error != "" {
							t.Errorf("worker %d: batch item: %s", w, item.Error)
							return
						}
					}
					if batch.Round != 1 && batch.Round != 2 {
						t.Errorf("worker %d: batch round %d", w, batch.Round)
						return
					}
				} else {
					resp, err := cl.Query(ctx, wheres[(i+w)%len(wheres)])
					if err != nil {
						t.Errorf("worker %d: query: %v", w, err)
						return
					}
					if resp.Round != 1 && resp.Round != 2 {
						t.Errorf("worker %d: round %d", w, resp.Round)
						return
					}
				}
			}
		}()
	}

	// Meanwhile: ingest round 2 and finalize it (engine swap under fire).
	plan, _ := cl.Plan(ctx)
	specs, _ := plan.Specs()
	device, err := core.NewClient(specs, plan.Epsilon, 37)
	if err != nil {
		t.Fatal(err)
	}
	for row := 0; row < n; row++ {
		rep, err := device.Perturb(row%len(specs), func(attr int) int { return ds.Value(row, attr) })
		if err != nil {
			t.Fatal(err)
		}
		if err := cl.Report(ctx, rep); err != nil {
			t.Fatalf("row %d: %v", row, err)
		}
	}
	if _, err := cl.Finalize(ctx); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	resp, err := cl.Query(ctx, wheres[0])
	if err != nil || resp.Round != 2 {
		t.Fatalf("final query: %+v, %v", resp, err)
	}
}

// Durable multi-round: each round writes its own WAL segment; a restart
// replays the segments in order and resumes serving the last finalized round
// and collecting the open one.
func TestDurableMultiRoundRestart(t *testing.T) {
	const n = 600
	dir := t.TempDir()
	segPath := func(round int) string {
		return filepath.Join(dir, fmt.Sprintf("round.r%d.wal", round))
	}
	schema := dataset.MixedSchema(2, 32, 2, 4)
	opts := core.Options{Strategy: core.OHG, Epsilon: 2, Seed: 11}

	newServer := func() *Server {
		srv, err := NewServer(schema, n, opts)
		if err != nil {
			t.Fatal(err)
		}
		srv.SetLogger(t.Logf)
		srv.SetWALFactory(func(round int) (*reportlog.Log, error) {
			l, _, err := reportlog.Open(segPath(round))
			return l, err
		})
		return srv
	}

	// Round 1: collect, finalize, open round 2, collect half of it.
	srv := newServer()
	l1, recs, err := reportlog.Open(segPath(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh segment has %d records", len(recs))
	}
	if err := srv.UseWAL(l1, recs); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	cl := Dial(ts.URL, ts.Client())
	ds := dataset.NewNormal().Generate(schema, n, 41)
	reportAll(t, cl, ds, 43)
	ctx := context.Background()
	if _, err := cl.Finalize(ctx); err != nil {
		t.Fatal(err)
	}
	want1, err := cl.Query(ctx, "num0=8..23")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.NextRound(ctx); err != nil {
		t.Fatal(err)
	}
	ds2 := dataset.NewUniform().Generate(schema, n, 47)
	plan, _ := cl.Plan(ctx)
	specs, _ := plan.Specs()
	device, err := core.NewClient(specs, plan.Epsilon, 53)
	if err != nil {
		t.Fatal(err)
	}
	for row := 0; row < n/2; row++ {
		rep, err := device.Perturb(row%len(specs), func(attr int) int { return ds2.Value(row, attr) })
		if err != nil {
			t.Fatal(err)
		}
		if err := cl.Report(ctx, rep); err != nil {
			t.Fatal(err)
		}
	}
	ts.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": replay segment 1 then segment 2.
	srv2 := newServer()
	l1b, recs1, err := reportlog.Open(segPath(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := srv2.UseWAL(l1b, recs1); err != nil {
		t.Fatal(err)
	}
	l2b, recs2, err := reportlog.Open(segPath(2))
	if err != nil {
		t.Fatal(err)
	}
	round, err := srv2.ResumeNextRound(l2b, recs2)
	if err != nil {
		t.Fatal(err)
	}
	if round != 2 {
		t.Fatalf("resumed round = %d, want 2", round)
	}
	if err := srv2.WarmupServing(); err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	defer srv2.Close()
	cl2 := Dial(ts2.URL, ts2.Client())

	// Round 1's answers survive the restart bit-identically (same replayed
	// reports, deterministic pipeline), and round 2's ingest resumes.
	got1, err := cl2.Query(ctx, "num0=8..23")
	if err != nil {
		t.Fatal(err)
	}
	if got1.Estimate != want1.Estimate || got1.Round != 1 {
		t.Fatalf("restarted round-1 answer %+v, want %+v", got1, want1)
	}
	st, err := cl2.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Round != 2 || st.ServedRound != 1 || st.Reports != n/2 || !st.Durable {
		t.Fatalf("restarted status = %+v", st)
	}
	for row := n / 2; row < n; row++ {
		rep, err := device.Perturb(row%len(specs), func(attr int) int { return ds2.Value(row, attr) })
		if err != nil {
			t.Fatal(err)
		}
		if err := cl2.Report(ctx, rep); err != nil {
			t.Fatal(err)
		}
	}
	if count, err := cl2.Finalize(ctx); err != nil || count != n {
		t.Fatalf("round-2 finalize after restart: %d, %v", count, err)
	}
	if resp, err := cl2.Query(ctx, "num0=8..23"); err != nil || resp.Round != 2 {
		t.Fatalf("round-2 query after restart: %+v, %v", resp, err)
	}
}
